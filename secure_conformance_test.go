package thetacrypt_test

// Conformance for the secure mesh: identity-authenticated links and
// sealed complaint-round DKG exercised end to end on both transports.
// The memnet cluster and the tcpnet deployment run the same lifecycle
// (generate → sign → reshare), an impostor is rejected at the handshake
// while the rest of the mesh stays live, a dealer that seals one bad
// sub-share is disqualified by the complaint round on both transports,
// and a wire capture of a tcpnet DKG proves no sub-share material —
// and no protocol plaintext at all — leaves a node unencrypted.

import (
	"bytes"
	"context"
	"crypto/rand"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"thetacrypt"
	"thetacrypt/internal/dkg"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// secureIdentities generates n node identities and the roster they
// prove.
func secureIdentities(t *testing.T, n int) ([]*identity.Key, identity.Roster) {
	t.Helper()
	ids := make([]*identity.Key, n)
	roster := make(identity.Roster, n)
	for i := 1; i <= n; i++ {
		k, err := identity.Generate(rand.Reader, i)
		if err != nil {
			t.Fatal(err)
		}
		ids[i-1] = k
		roster[i] = k.Public()
	}
	return ids, roster
}

// secureNodeDeployment stands up a 4-node tcpnet deployment in secure
// mode. ids[i] is node i+1's private identity — a test plants an
// impostor by swapping in a key that does not match the roster.
func secureNodeDeployment(t *testing.T, ids []*identity.Key, roster identity.Roster) []*thetacrypt.Node {
	t.Helper()
	const tt, n = 1, 4
	stores, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*thetacrypt.Node, n)
	for i := 0; i < n; i++ {
		node, err := thetacrypt.NewNode(thetacrypt.NodeConfig{
			Keys:       stores[i],
			ListenAddr: "127.0.0.1:0",
			Identity:   ids[i],
			Roster:     roster,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(node.Close)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].SetPeer(j+1, nodes[j].P2PAddr())
			}
		}
	}
	return nodes
}

// exerciseSecureLifecycle is the acceptance lifecycle: DKG-generate a
// KG20 key over sealed dealings, sign under it, then run the full
// reshare conformance (generate → reshare → epoch-guarded decrypt).
func exerciseSecureLifecycle(t *testing.T, svc thetacrypt.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	kh, err := svc.GenerateKey(ctx, thetacrypt.KG20, thetacrypt.GenerateKeyOptions{KeyID: "sec-sign"})
	if err != nil {
		t.Fatal(err)
	}
	if kres, err := svc.Wait(ctx, kh); err != nil || kres.Err != nil {
		t.Fatalf("sealed keygen: %v / %+v", err, kres)
	}
	sig, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.KG20, KeyID: "sec-sign", Op: thetacrypt.OpSign,
		Payload: []byte("signed under a sealed-DKG key"),
	})
	if err != nil {
		t.Fatalf("sign under sealed-DKG key: %v", err)
	}
	if len(sig) == 0 {
		t.Fatal("empty signature under sealed-DKG key")
	}
	exerciseReshare(t, svc)
}

func TestSecureConformanceEmbedded(t *testing.T) {
	cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.SG02, thetacrypt.CKS05},
		Secure:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	exerciseSecureLifecycle(t, cluster)
}

func TestSecureConformanceNodeTCP(t *testing.T) {
	ids, roster := secureIdentities(t, 4)
	nodes := secureNodeDeployment(t, ids, roster)
	exerciseSecureLifecycle(t, nodes[0])
	// Every link of the deployment reports the handshake marker.
	ts := nodes[0].Stats().Transport
	if ts == nil || !ts.Authenticated {
		t.Fatalf("secure transport not marked authenticated: %+v", ts)
	}
	for _, p := range ts.Peers {
		if !p.Authenticated {
			t.Fatalf("peer %d link not authenticated after traffic: %+v", p.Peer, p)
		}
	}
}

// TestSecureImpostorRejectedTCP plants an impostor: node 4 runs with a
// fresh identity that is not the rostered one. Every handshake it is
// part of fails, so it never joins — while the mesh of honest nodes
// stays live and serves quorum operations throughout.
func TestSecureImpostorRejectedTCP(t *testing.T) {
	ids, roster := secureIdentities(t, 4)
	impostor, err := identity.Generate(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids[3] = impostor
	nodes := secureNodeDeployment(t, ids, roster)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Quorum operations (t+1 = 2 of the 3 honest nodes) succeed with
	// the impostor present: the mesh is live.
	secret := []byte("quorum survives the impostor")
	ct, err := nodes[0].Encrypt(ctx, thetacrypt.SG02, "", secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := thetacrypt.Execute(ctx, nodes[0], thetacrypt.Request{
		Scheme: thetacrypt.SG02, Op: thetacrypt.OpDecrypt, Payload: ct,
	})
	if err != nil {
		t.Fatalf("decrypt with impostor in the mesh: %v", err)
	}
	if string(plain) != string(secret) {
		t.Fatalf("decrypted %q", plain)
	}
	// Honest links authenticate; the impostor's never does.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ts := nodes[0].Stats().Transport
		p2, _ := ts.Peer(2)
		p3, _ := ts.Peer(3)
		if p2.Authenticated && p3.Authenticated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("honest links never authenticated: %+v", ts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p4, ok := nodes[0].Stats().Transport.Peer(4); ok && p4.Authenticated {
		t.Fatalf("impostor link marked authenticated: %+v", p4)
	}
	// ...and from the impostor's side, no link ever authenticates.
	for _, p := range nodes[3].Stats().Transport.Peers {
		if p.Authenticated {
			t.Fatalf("impostor authenticated a link to peer %d", p.Peer)
		}
	}
}

// TestSecureFaultyDealerDisqualified corrupts node 2's sub-share for
// node 3 before it is sealed, on both transports: the complaint round
// disqualifies the dealer deterministically and the DKG still
// completes, with every node landing the same public key and the key
// signing normally.
func TestSecureFaultyDealerDisqualified(t *testing.T) {
	protocols.TestFaultDealing = func(node int, d *dkg.Dealing) {
		if node == 2 {
			d.SubShares[2].Value.SetInt64(42) // f_2(3) forged
		}
	}
	defer func() { protocols.TestFaultDealing = nil }()

	t.Run("memnet", func(t *testing.T) {
		cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{thetacrypt.SG02},
			Secure:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		exerciseFaultyDealerKeygen(t, cluster, func() []keyFetcherAt {
			fs := make([]keyFetcherAt, cluster.N())
			for i := range fs {
				i := i
				fs[i] = func(ctx context.Context) ([]thetacrypt.KeyInfo, error) {
					ks := cluster.KeystoreAt(i + 1)
					infos := make([]thetacrypt.KeyInfo, 0)
					for _, info := range ks.List() {
						infos = append(infos, thetacrypt.KeyInfo{
							Scheme: string(info.Scheme), KeyID: info.ID, PublicKey: info.Public,
						})
					}
					return infos, nil
				}
			}
			return fs
		}())
	})

	t.Run("tcpnet", func(t *testing.T) {
		ids, roster := secureIdentities(t, 4)
		nodes := secureNodeDeployment(t, ids, roster)
		exerciseFaultyDealerKeygen(t, nodes[0], func() []keyFetcherAt {
			fs := make([]keyFetcherAt, len(nodes))
			for i := range fs {
				i := i
				fs[i] = func(ctx context.Context) ([]thetacrypt.KeyInfo, error) {
					return nodes[i].Keys(ctx)
				}
			}
			return fs
		}())
	})
}

type keyFetcherAt func(context.Context) ([]thetacrypt.KeyInfo, error)

// exerciseFaultyDealerKeygen drives one sealed DKG with the faulty
// dealer hook armed and checks the black-box complaint-round outcome:
// the run completes, every node installs the identical public key, and
// the key signs.
func exerciseFaultyDealerKeygen(t *testing.T, svc thetacrypt.Service, fetchers []keyFetcherAt) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	kh, err := svc.GenerateKey(ctx, thetacrypt.KG20, thetacrypt.GenerateKeyOptions{KeyID: "complaint-key"})
	if err != nil {
		t.Fatal(err)
	}
	if kres, err := svc.Wait(ctx, kh); err != nil || kres.Err != nil {
		t.Fatalf("keygen with faulty dealer: %v / %+v", err, kres)
	}
	var ref []byte
	deadline := time.Now().Add(20 * time.Second)
	for i, fetch := range fetchers {
		for {
			infos, err := fetch(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var pub []byte
			for _, k := range infos {
				if k.Scheme == string(thetacrypt.KG20) && k.KeyID == "complaint-key" {
					pub = k.PublicKey
				}
			}
			if pub != nil {
				if i == 0 {
					ref = pub
				} else if !bytes.Equal(pub, ref) {
					t.Fatalf("node %d landed a different public key after the complaint round", i+1)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never installed the key", i+1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	sig, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.KG20, KeyID: "complaint-key", Op: thetacrypt.OpSign,
		Payload: []byte("signed by the qualified majority"),
	})
	if err != nil || len(sig) == 0 {
		t.Fatalf("sign after disqualification: %v (%d bytes)", err, len(sig))
	}
}

// recorder accumulates every byte a tap forwards, in both directions.
type recorder struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Write(p)
}

func (r *recorder) Bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

// tapAddr starts a TCP tap in front of target: every accepted
// connection is forwarded byte-for-byte while both directions are
// recorded.
func tapAddr(t *testing.T, target string, rec *recorder) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				done := make(chan struct{}, 2)
				go func() {
					io.Copy(io.MultiWriter(up, rec), c)
					if tc, ok := up.(*net.TCPConn); ok {
						tc.CloseWrite()
					}
					done <- struct{}{}
				}()
				go func() {
					io.Copy(io.MultiWriter(c, rec), up)
					if tc, ok := c.(*net.TCPConn); ok {
						tc.CloseWrite()
					}
					done <- struct{}{}
				}()
				<-done
				<-done
			}(c)
		}
	}()
	return ln.Addr().String()
}

// wireCaptureDeployment wires a 4-node tcpnet deployment so that every
// inter-node connection passes through a recording tap.
func wireCaptureDeployment(t *testing.T, ids []*identity.Key, roster identity.Roster, rec *recorder) []*thetacrypt.Node {
	t.Helper()
	const tt, n = 1, 4
	stores, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*thetacrypt.Node, n)
	for i := 0; i < n; i++ {
		cfg := thetacrypt.NodeConfig{Keys: stores[i], ListenAddr: "127.0.0.1:0"}
		if ids != nil {
			cfg.Identity = ids[i]
			cfg.Roster = roster
		}
		node, err := thetacrypt.NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(node.Close)
	}
	taps := make([]string, n)
	for i := 0; i < n; i++ {
		taps[i] = tapAddr(t, nodes[i].P2PAddr(), rec)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].SetPeer(j+1, taps[j])
			}
		}
	}
	return nodes
}

// TestSecureDKGWireCapture runs a sealed DKG over tcpnet with every
// link tapped and asserts that neither the sub-share scalars (captured
// at the dealing seam before sealing) nor even the instance-ID
// plaintext appear anywhere in the traffic. A control run without
// secure mode proves the taps see real protocol bytes: the same
// instance-ID canary IS on the wire there.
func TestSecureDKGWireCapture(t *testing.T) {
	const canary = "wire-capture-canary"
	run := func(t *testing.T, secure bool) ([]byte, [][]byte) {
		var rec recorder
		var nodes []*thetacrypt.Node
		if secure {
			ids, roster := secureIdentities(t, 4)
			nodes = wireCaptureDeployment(t, ids, roster, &rec)
		} else {
			nodes = wireCaptureDeployment(t, nil, nil, &rec)
		}
		var mu sync.Mutex
		var subShares [][]byte
		protocols.TestFaultDealing = func(node int, d *dkg.Dealing) {
			mu.Lock()
			defer mu.Unlock()
			for _, s := range d.SubShares {
				subShares = append(subShares, s.Value.Bytes())
			}
		}
		defer func() { protocols.TestFaultDealing = nil }()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		kh, err := nodes[0].GenerateKey(ctx, thetacrypt.KG20, thetacrypt.GenerateKeyOptions{KeyID: canary})
		if err != nil {
			t.Fatal(err)
		}
		if kres, err := nodes[0].Wait(ctx, kh); err != nil || kres.Err != nil {
			t.Fatalf("keygen over taps: %v / %+v", err, kres)
		}
		mu.Lock()
		defer mu.Unlock()
		return rec.Bytes(), subShares
	}

	captured, subShares := run(t, true)
	if len(captured) == 0 {
		t.Fatal("taps captured no traffic — the deployment bypassed them")
	}
	if len(subShares) != 16 {
		t.Fatalf("captured %d sub-shares at the dealing seam, want 16", len(subShares))
	}
	for i, s := range subShares {
		if len(s) > 8 && bytes.Contains(captured, s) {
			t.Fatalf("sub-share %d appears in plaintext on the wire", i)
		}
	}
	if bytes.Contains(captured, []byte(canary)) {
		t.Fatal("instance-ID plaintext appears on the secured wire")
	}

	// Control: the identical run without -secure leaks the canary,
	// proving the taps observe the real protocol stream.
	control, _ := run(t, false)
	if !bytes.Contains(control, []byte(canary)) {
		t.Fatal("control capture does not contain the canary — the tap harness is not observing protocol traffic")
	}
}
