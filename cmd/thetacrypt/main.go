// Command thetacrypt runs one standalone Thetacrypt service node: TCP
// P2P mesh to its peers plus the HTTP service layer for applications.
// With -router it instead runs the stateless routing tier in front of
// several committee deployments, serving the same /v2 surface.
//
// Usage:
//
//	thetacrypt -key keys/node1.key -peers keys/peers.txt -listen :7001 -http :8081
//	thetacrypt -key keys/node1.key -peers keys/peers.txt -listen :7001 -http :8081 \
//	           -secure -identity keys/node1.id -roster keys/roster.json
//	thetacrypt -router -committees alpha=http://10.0.0.1:8081,beta=http://10.0.1.1:8081 -http :8080
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"thetacrypt"
	"thetacrypt/client"
	"thetacrypt/internal/keys"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thetacrypt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		keyPath     = flag.String("key", "", "path to this node's key file")
		peersPath   = flag.String("peers", "", "path to the peers file (index addr per line)")
		listen      = flag.String("listen", ":7001", "P2P listen address")
		httpAddr    = flag.String("http", ":8081", "service-layer HTTP listen address")
		workers     = flag.Int("workers", 0, "engine worker goroutines (0 = default 1)")
		queueLen    = flag.Int("queue", 0, "engine event-queue length; a full queue answers HTTP 429 (0 = default 4096)")
		retainTTL   = flag.Duration("retain-ttl", 0, "how long finished results stay retrievable (0 = default 2m)")
		retainMax   = flag.Int("retain-max", 0, "max finished results retained, oldest evicted first (0 = default 4096)")
		peerQueue   = flag.Int("peer-queue", 0, "per-peer outbound queue length, in frames (0 = default 1024)")
		peerPolicy  = flag.String("peer-policy", "block", "full-queue policy per peer: block, drop-oldest, or fail-fast")
		ackWindow   = flag.Int("ack-window", 0, "per-peer in-flight window: unacknowledged frames retained for resend-on-reconnect (0 = default 1024)")
		ackInterval = flag.Duration("ack-interval", 0, "coalescing delay for delivery acknowledgements and the resend scan cadence (0 = default 25ms)")
		resendAfter = flag.Duration("resend-timeout", 0, "how long a frame stays unacknowledged before retransmission (0 = default 500ms)")
		dialRetry   = flag.Duration("dial-retry", 0, "initial peer reconnect backoff, doubling per failure (0 = default 250ms)")
		dialMax     = flag.Duration("dial-backoff-max", 0, "cap on the peer reconnect backoff (0 = default 4s)")
		sendTimeout = flag.Duration("send-timeout", 0, "bound on each round broadcast; bites only when a block-policy peer queue is saturated (0 = default 5s)")
		persist     = flag.Bool("persist", false, "spill keystore mutations (generated keys, reshared epochs) back to the -key file atomically")
		refresh     = flag.Duration("refresh-interval", 0, "proactive-refresh schedule: reshare every reshareable key to its own committee at this interval (0 = disabled)")
		frostPool   = flag.Int("frost-pool", 0, "FROST preprocessed nonce pool depth per key; every committee node must use the same value (0 = disabled, two-round signing)")
		frostRefill = flag.Int("frost-refill", 0, "refill the FROST nonce pool when it drops below this watermark (0 = half the pool depth)")
		routerMode  = flag.Bool("router", false, "run the stateless routing tier over committee endpoints instead of a node")
		committees  = flag.String("committees", "", "router mode: comma-separated committee endpoints, each \"url\" or \"name=url\"")
		secure      = flag.Bool("secure", false, "authenticated mesh: require -identity and -roster, run every link through the mutual-auth handshake and AEAD layer, seal DKG sub-shares")
		idPath      = flag.String("identity", "", "path to this node's private identity file (node<i>.id from thetakeygen)")
		rosterPath  = flag.String("roster", "", "path to the mesh roster file (roster.json from thetakeygen)")
	)
	flag.Parse()
	if *routerMode {
		return runRouter(*committees, *httpAddr)
	}
	policy, err := thetacrypt.ParseQueuePolicy(*peerPolicy)
	if err != nil {
		return err
	}
	if *keyPath == "" || *peersPath == "" {
		return fmt.Errorf("both -key and -peers are required")
	}
	raw, err := os.ReadFile(*keyPath)
	if err != nil {
		return fmt.Errorf("read key file: %w", err)
	}
	nk, err := keys.UnmarshalKeystore(raw)
	if err != nil {
		return fmt.Errorf("parse key file: %w", err)
	}
	peers, err := readPeers(*peersPath, nk.Index)
	if err != nil {
		return err
	}
	// Secure mode: -identity and -roster travel together; naming either
	// one implies the intent, and -secure guards against silently
	// falling back to plaintext links when a path is forgotten.
	if *secure && (*idPath == "" || *rosterPath == "") {
		return fmt.Errorf("-secure requires both -identity and -roster")
	}
	if (*idPath == "") != (*rosterPath == "") {
		return fmt.Errorf("-identity and -roster must be given together")
	}
	var nodeID *thetacrypt.IdentityKey
	var roster thetacrypt.IdentityRoster
	if *idPath != "" {
		if nodeID, err = thetacrypt.LoadIdentity(*idPath); err != nil {
			return err
		}
		if roster, err = thetacrypt.LoadRoster(*rosterPath); err != nil {
			return err
		}
	}
	keyFile := ""
	if *persist {
		keyFile = *keyPath
	}
	node, err := thetacrypt.NewNode(thetacrypt.NodeConfig{
		Keys:       nk,
		KeyFile:    keyFile,
		ListenAddr: *listen,
		Peers:      peers,
		Identity:   nodeID,
		Roster:     roster,
		Engine: thetacrypt.EngineOptions{
			Workers:         *workers,
			QueueLen:        *queueLen,
			RetainTTL:       *retainTTL,
			RetainMax:       *retainMax,
			SendTimeout:     *sendTimeout,
			RefreshInterval: *refresh,
			FrostPoolDepth:  *frostPool,
			FrostPoolRefill: *frostRefill,
		},
		Transport: thetacrypt.TransportOptions{
			OutQueueLen:    *peerQueue,
			Policy:         policy,
			AckWindow:      *ackWindow,
			AckInterval:    *ackInterval,
			ResendTimeout:  *resendAfter,
			DialRetry:      *dialRetry,
			DialBackoffMax: *dialMax,
		},
	})
	if err != nil {
		return err
	}
	defer node.Close()

	st := node.Stats()
	mesh := "plaintext mesh"
	if nodeID != nil {
		mesh = "secure mesh"
	}
	fmt.Printf("node %d up: p2p %s (%s), http %s, n=%d t=%d, queue=%d, retention: see /v2/info stats\n",
		nk.Index, *listen, mesh, *httpAddr, nk.N, nk.T, st.QueueCap)
	return serveUntilSignal(&http.Server{Addr: *httpAddr, Handler: node.Handler()})
}

// runRouter serves the /v2 surface of a stateless routing tier over the
// named committee endpoints: the router owns no shares and no engine,
// only the key→committee placement map, so any number of identically
// configured replicas can front the same fleet.
func runRouter(committees, httpAddr string) error {
	if committees == "" {
		return fmt.Errorf("-router requires -committees (url or name=url, comma-separated)")
	}
	var backends []thetacrypt.RouterBackend
	for _, entry := range strings.Split(committees, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url := "", entry
		if at := strings.IndexByte(entry, '='); at >= 0 {
			name, url = entry[:at], entry[at+1:]
		}
		if !strings.Contains(url, "://") {
			return fmt.Errorf("committee endpoint %q is not a URL (want http://host:port)", url)
		}
		backends = append(backends, thetacrypt.RouterBackend{Name: name, Service: client.New(url)})
	}
	if len(backends) == 0 {
		return fmt.Errorf("-committees named no endpoints")
	}
	rt := thetacrypt.NewRouter(backends...)

	// Probing Info at startup is advisory: committees that are still
	// coming up are reported down and picked up on first use.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	info, err := rt.Info(ctx)
	cancel()
	if err != nil {
		fmt.Printf("router up: http %s, %d committees (none reachable yet: %v)\n", httpAddr, len(backends), err)
	} else {
		down := 0
		for _, c := range info.Committees {
			if c.Down {
				down++
			}
		}
		fmt.Printf("router up: http %s, %d committees (%d reachable), %d keys placed\n",
			httpAddr, len(backends), len(backends)-down, len(info.Keys))
	}
	return serveUntilSignal(&http.Server{Addr: httpAddr, Handler: thetacrypt.ServiceHandler(rt)})
}

// serveUntilSignal runs the HTTP server until it fails or the process
// is asked to stop.
func serveUntilSignal(srv *http.Server) error {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		fmt.Println("shutting down")
		return srv.Close()
	}
}

// readPeers parses "index host:port" lines, excluding self.
func readPeers(path string, self int) (map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open peers file: %w", err)
	}
	defer f.Close()
	peers := make(map[int]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad peers line %q", line)
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer index in %q: %w", line, err)
		}
		if idx == self {
			continue
		}
		peers[idx] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read peers file: %w", err)
	}
	return peers, nil
}
