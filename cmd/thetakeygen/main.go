// Command thetakeygen is the trusted dealer: it generates threshold key
// material for all schemes and writes one key file per node plus a
// peers file template for cmd/thetacrypt.
//
// Usage:
//
//	thetakeygen -n 4 -t 1 -out ./keys [-rsa-bits 2048] [-rsa-fixture]
//	            [-schemes SG02,BLS04,...] [-group edwards25519|p256]
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"thetacrypt/internal/group"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thetakeygen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n          = flag.Int("n", 4, "number of nodes")
		t          = flag.Int("t", 1, "threshold (any t+1 cooperate; up to t corrupted)")
		out        = flag.String("out", "keys", "output directory")
		rsaBits    = flag.Int("rsa-bits", 2048, "SH00 modulus size")
		rsaFixture = flag.Bool("rsa-fixture", false, "use embedded deterministic safe primes (TEST ONLY)")
		schemeList = flag.String("schemes", "", "comma-separated scheme subset (default: all)")
		groupName  = flag.String("group", "edwards25519", "DL group for SG02/KG20/CKS05")
	)
	flag.Parse()

	g, err := group.ByName(*groupName)
	if err != nil {
		return err
	}
	var subset []schemes.ID
	if *schemeList != "" {
		for _, s := range strings.Split(*schemeList, ",") {
			id := schemes.ID(strings.TrimSpace(s))
			if _, err := schemes.Lookup(id); err != nil {
				return err
			}
			subset = append(subset, id)
		}
	}
	if err := os.MkdirAll(*out, 0o700); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	fmt.Printf("dealing keys for n=%d t=%d (quorum %d)...\n", *n, *t, *t+1)
	nodes, err := keys.Deal(rand.Reader, *t, *n, keys.Options{
		Group:         g,
		RSABits:       *rsaBits,
		UseRSAFixture: *rsaFixture,
		Schemes:       subset,
	})
	if err != nil {
		return err
	}
	for _, nk := range nodes {
		path := filepath.Join(*out, fmt.Sprintf("node%d.key", nk.Index))
		if err := os.WriteFile(path, nk.Marshal(), 0o600); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Println("wrote", path)
	}
	// Peers file template: node index to host:port, edited by the
	// operator.
	var sb strings.Builder
	for i := 1; i <= *n; i++ {
		fmt.Fprintf(&sb, "%d 127.0.0.1:%d\n", i, 7000+i)
	}
	peersPath := filepath.Join(*out, "peers.txt")
	if err := os.WriteFile(peersPath, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("write peers file: %w", err)
	}
	fmt.Println("wrote", peersPath)
	return nil
}
