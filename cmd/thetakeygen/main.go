// Command thetakeygen is the trusted dealer: it generates named
// threshold key material for all schemes and writes one keystore file
// per node, one transport identity file per node, the mesh roster, a
// keyring manifest describing the dealt keys and the roster, and a
// peers file template for cmd/thetacrypt.
//
// Usage:
//
//	thetakeygen -n 4 -t 1 -out ./keys [-rsa-bits 2048] [-rsa-fixture]
//	            [-schemes SG02,BLS04,...] [-group edwards25519|p256]
//	            [-key-id default]
package main

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"thetacrypt/internal/atomicfile"
	"thetacrypt/internal/group"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thetakeygen:", err)
		os.Exit(1)
	}
}

// manifest is the keyring.json the dealer writes next to the key
// files: the deployment parameters, the per-node files, and one entry
// per dealt key (public material only).
type manifest struct {
	N      int           `json:"n"`
	T      int           `json:"t"`
	Quorum int           `json:"quorum"`
	Files  []string      `json:"files"`
	Keys   []manifestKey `json:"keys"`
	// Peers is the transport identity roster (node index → public
	// identity keys), the same shape as the standalone roster.json.
	// Nodes running with -secure enforce it on every link.
	Peers map[string]identity.PublicJSON `json:"peers,omitempty"`
}

type manifestKey struct {
	Scheme  string `json:"scheme"`
	KeyID   string `json:"key_id"`
	Group   string `json:"group,omitempty"`
	Default bool   `json:"default,omitempty"`
	// Epoch is the dealt share version (1 for fresh keys); a live
	// resharing advances it on the running nodes.
	Epoch     int    `json:"epoch"`
	PublicKey string `json:"public_key,omitempty"` // base64
}

func run() error {
	var (
		n          = flag.Int("n", 4, "number of nodes")
		t          = flag.Int("t", 1, "threshold (any t+1 cooperate; up to t corrupted)")
		out        = flag.String("out", "keys", "output directory")
		rsaBits    = flag.Int("rsa-bits", 2048, "SH00 modulus size")
		rsaFixture = flag.Bool("rsa-fixture", false, "use embedded deterministic safe primes (TEST ONLY)")
		schemeList = flag.String("schemes", "", "comma-separated scheme subset (default: all)")
		groupName  = flag.String("group", "edwards25519", "DL group for SG02/KG20/CKS05")
		keyID      = flag.String("key-id", keys.DefaultKeyID, "name of the dealt keys")
	)
	flag.Parse()

	g, err := group.ByName(*groupName)
	if err != nil {
		return err
	}
	var subset []schemes.ID
	seen := make(map[schemes.ID]bool)
	if *schemeList != "" {
		for _, s := range strings.Split(*schemeList, ",") {
			id := schemes.ID(strings.TrimSpace(s))
			if _, err := schemes.Lookup(id); err != nil {
				return err
			}
			if seen[id] {
				continue // repeated -schemes entries are dealt once
			}
			seen[id] = true
			subset = append(subset, id)
		}
	}
	if err := os.MkdirAll(*out, 0o700); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	fmt.Printf("dealing keys for n=%d t=%d (quorum %d)...\n", *n, *t, *t+1)
	nodes, err := keys.Deal(rand.Reader, *t, *n, keys.Options{
		Group:         g,
		RSABits:       *rsaBits,
		UseRSAFixture: *rsaFixture,
		Schemes:       subset,
		KeyID:         *keyID,
	})
	if err != nil {
		return err
	}
	man := manifest{N: *n, T: *t, Quorum: *t + 1}
	for _, nk := range nodes {
		name := fmt.Sprintf("node%d.key", nk.Index)
		path := filepath.Join(*out, name)
		if err := atomicfile.WriteFile(path, nk.Marshal(), 0o600); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		man.Files = append(man.Files, name)
		fmt.Println("wrote", path)
	}
	// Transport identities: one private identity file per node plus the
	// shared roster, consumed by cmd/thetacrypt's -identity/-roster
	// flags. Generated unconditionally so a deployment can turn on
	// -secure later without re-dealing shares.
	roster := make(identity.Roster, *n)
	for i := 1; i <= *n; i++ {
		id, err := identity.Generate(rand.Reader, i)
		if err != nil {
			return fmt.Errorf("generate identity %d: %w", i, err)
		}
		path := filepath.Join(*out, fmt.Sprintf("node%d.id", i))
		if err := id.Save(path); err != nil {
			return fmt.Errorf("write identity: %w", err)
		}
		roster[i] = id.Public()
		fmt.Println("wrote", path)
	}
	rosterPath := filepath.Join(*out, "roster.json")
	if err := roster.Save(rosterPath); err != nil {
		return fmt.Errorf("write roster: %w", err)
	}
	fmt.Println("wrote", rosterPath)
	man.Peers = identity.MarshalRoster(roster)
	// The manifest lists the shared public material; every node's
	// listing is identical, so node 1's serves.
	for _, info := range nodes[0].List() {
		man.Keys = append(man.Keys, manifestKey{
			Scheme:    string(info.Scheme),
			KeyID:     info.ID,
			Group:     info.Group,
			Default:   info.Default,
			Epoch:     info.Epoch,
			PublicKey: base64.StdEncoding.EncodeToString(info.Public),
		})
	}
	manPath := filepath.Join(*out, "keyring.json")
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(manPath, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("write keyring manifest: %w", err)
	}
	fmt.Println("wrote", manPath)
	// Peers file template: node index to host:port, edited by the
	// operator.
	var sb strings.Builder
	for i := 1; i <= *n; i++ {
		fmt.Fprintf(&sb, "%d 127.0.0.1:%d\n", i, 7000+i)
	}
	peersPath := filepath.Join(*out, "peers.txt")
	if err := atomicfile.WriteFile(peersPath, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("write peers file: %w", err)
	}
	fmt.Println("wrote", peersPath)
	fmt.Println("dealt keys:")
	for _, k := range man.Keys {
		fmt.Printf("  %s/%s (%s)\n", k.Scheme, k.KeyID, k.Group)
	}
	return nil
}
