package main

// The secure benchmark quantifies what the authenticated mesh costs on
// the signing hot path: the same TCP loopback deployment is driven
// twice — once over plaintext links, once with every link running the
// mutual-auth handshake and AEAD record layer — and the report
// contrasts the two. memnet's secure mode is roster-enforcement only,
// so this bench deliberately uses real tcpnet nodes where AES-GCM
// actually seals every frame.

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
)

// secureBench implements the "secure" subcommand.
func secureBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("secure", flag.ContinueOnError)
	var (
		scheme   = fs.String("scheme", "BLS04", "signing scheme to drive")
		requests = fs.Int("requests", 48, "signing requests per mode")
		nodes    = fs.Int("n", 4, "cluster size")
		thresh   = fs.Int("t", 1, "corruption threshold")
		jsonOut  = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := schemes.ID(*scheme)
	if _, err := schemes.Lookup(id); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	plain, err := secureBenchMode(ctx, "plaintext", false, id, *requests, *nodes, *thresh)
	if err != nil {
		return err
	}
	sec, err := secureBenchMode(ctx, "secure(aead)", true, id, *requests, *nodes, *thresh)
	if err != nil {
		return err
	}

	if *jsonOut {
		doc := benchDoc{
			Bench:    "thetabench secure",
			Scheme:   string(id),
			Op:       thetacrypt.OpSign.String(),
			N:        *nodes,
			T:        *thresh,
			Requests: *requests,
			Modes:    []benchMode{plain, sec},
		}
		if plain.WallMS > 0 {
			doc.SecureOverPlaintext = sec.WallMS / plain.WallMS
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	fmt.Fprintf(w, "# tcpnet loopback, scheme %s op sign, n=%d t=%d, %d requests per mode\n",
		id, *nodes, *thresh, *requests)
	printMode(w, plain)
	printMode(w, sec)
	if plain.WallMS > 0 {
		fmt.Fprintf(w, "secure/plaintext wall-clock: %.2fx\n", sec.WallMS/plain.WallMS)
	}
	return nil
}

// secureBenchMode stands up one n-node tcpnet deployment on loopback —
// with or without transport identities — and times sequential signing
// through node 1. Links are warmed before the timed window so both
// modes measure steady-state signing, not dialing (or, in secure mode,
// the one-time handshakes).
func secureBenchMode(ctx context.Context, name string, secure bool, id schemes.ID, requests, n, t int) (benchMode, error) {
	stores, err := keys.Deal(rand.Reader, t, n, keys.Options{Schemes: []schemes.ID{id}})
	if err != nil {
		return benchMode{}, err
	}
	var ids []*identity.Key
	var roster identity.Roster
	if secure {
		ids = make([]*identity.Key, n)
		roster = make(identity.Roster, n)
		for i := 0; i < n; i++ {
			k, err := identity.Generate(rand.Reader, i+1)
			if err != nil {
				return benchMode{}, err
			}
			ids[i] = k
			roster[i+1] = k.Public()
		}
	}
	ns := make([]*thetacrypt.Node, n)
	defer func() {
		for _, node := range ns {
			if node != nil {
				node.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		cfg := thetacrypt.NodeConfig{Keys: stores[i], ListenAddr: "127.0.0.1:0"}
		if secure {
			cfg.Identity = ids[i]
			cfg.Roster = roster
		}
		if ns[i], err = thetacrypt.NewNode(cfg); err != nil {
			return benchMode{}, err
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				ns[i].SetPeer(j+1, ns[j].P2PAddr())
			}
		}
	}

	sign := func(session string) error {
		_, err := api.Execute(ctx, ns[0], thetacrypt.Request{
			Scheme:  id,
			Op:      thetacrypt.OpSign,
			Session: session,
			Payload: []byte("secure bench payload " + session),
		})
		return err
	}
	for i := 0; i < 3; i++ {
		if err := sign(fmt.Sprintf("%s-warm-%d", name, i)); err != nil {
			return benchMode{}, fmt.Errorf("%s warmup %d: %w", name, i, err)
		}
	}
	lat := make([]time.Duration, 0, requests)
	start := time.Now()
	for i := 0; i < requests; i++ {
		reqStart := time.Now()
		if err := sign(fmt.Sprintf("%s-%d", name, i)); err != nil {
			return benchMode{}, fmt.Errorf("%s request %d: %w", name, i, err)
		}
		lat = append(lat, time.Since(reqStart))
	}
	return modeReport(name, requests, time.Since(start), 0, lat), nil
}
