package main

// The sharded benchmark measures the router tier's scaling claim: a
// fleet of K*n nodes split into K independent committees of n behind
// one stateless router, against the same K*n nodes forming one large
// committee. Threshold protocols pay per committee size — every member
// computes a share per request and the broadcast is O(n^2) — so
// sharding keeps the per-request cost at the small-committee rate
// while the router spreads keys (and load) across the fleet. Both
// sides run embedded (memnet) committees driven through the Service
// interface at the same concurrency, so the comparison isolates the
// sharding effect from transport differences.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// shardedBench implements the "sharded" subcommand.
func shardedBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sharded", flag.ContinueOnError)
	var (
		committees  = fs.Int("committees", 2, "number of committees behind the router")
		nodes       = fs.Int("n", 4, "nodes per committee")
		thresh      = fs.Int("t", 1, "corruption threshold per committee")
		scheme      = fs.String("scheme", "SG02", "scheme to drive")
		op          = fs.String("op", "decrypt", "operation: sign|decrypt|coin")
		requests    = fs.Int("requests", 64, "total requests per side")
		concurrency = fs.Int("concurrency", 8, "concurrent in-flight requests")
		pool        = fs.Int("pool", 0, "FROST nonce pool depth per node (KG20 only; 0 = disabled, two-round signing)")
		jsonOut     = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *committees < 2 {
		return fmt.Errorf("sharding needs at least 2 committees, got %d", *committees)
	}
	id := schemes.ID(*scheme)
	if _, err := schemes.Lookup(id); err != nil {
		return err
	}
	operation, err := protocols.ParseOperation(*op)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	banner := func(format string, a ...any) {
		if !*jsonOut {
			fmt.Fprintf(w, format, a...)
		}
	}

	// Baseline: the whole fleet as one committee. The threshold scales
	// with the size so both sides tolerate the same corruption fraction.
	nTotal, tTotal := *committees**nodes, *committees**thresh
	engine := thetacrypt.EngineOptions{FrostPoolDepth: *pool}
	baseline, err := thetacrypt.NewCluster(tTotal, nTotal, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{id},
		Engine:  engine,
	})
	if err != nil {
		return fmt.Errorf("baseline committee: %w", err)
	}
	defer baseline.Close()

	// Sharded side: the same fleet split into K committees, each dealt
	// its key under a distinct name, so the router's placement map
	// sends a request to exactly the committee that can serve it.
	backends := make([]thetacrypt.RouterBackend, *committees)
	shards := make([]*thetacrypt.Cluster, *committees)
	keyIDs := make([]string, *committees)
	for i := range backends {
		keyIDs[i] = fmt.Sprintf("shard-%d", i)
		c, err := thetacrypt.NewCluster(*thresh, *nodes, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{id},
			KeyID:   keyIDs[i],
			Engine:  engine,
		})
		if err != nil {
			return fmt.Errorf("committee %d: %w", i, err)
		}
		defer c.Close()
		shards[i] = c
		backends[i] = thetacrypt.RouterBackend{Name: keyIDs[i], Service: c}
	}
	rt := thetacrypt.NewRouter(backends...)

	// Warm the FROST nonce pools outside the timed window so the
	// measured runs take the one-round online path from the first
	// request instead of paying the preprocessing round inline.
	if *pool > 0 && id == schemes.KG20 {
		if err := baseline.WarmNoncePools(ctx); err != nil {
			return fmt.Errorf("warm baseline nonce pools: %w", err)
		}
		for i, c := range shards {
			if err := c.WarmNoncePools(ctx); err != nil {
				return fmt.Errorf("warm committee %d nonce pools: %w", i, err)
			}
		}
		banner("# FROST nonce pools warmed: depth %d per node, one-round online signing\n", *pool)
	}
	banner("# sharded bench: fleet of %d nodes as %d committees of n=%d t=%d behind the router, vs one n=%d t=%d committee\n",
		nTotal, *committees, *nodes, *thresh, nTotal, tTotal)
	banner("# scheme %s op %s, %d requests at concurrency %d\n", id, operation, *requests, *concurrency)

	// Requests name their shard's key explicitly; decrypt payloads are
	// prepared outside the timed sections, through the router so each
	// ciphertext is bound to its owning committee's key.
	build := func(svc api.Service, side, keyID string, i int) (thetacrypt.Request, error) {
		req := thetacrypt.Request{
			Scheme:  id,
			KeyID:   keyID,
			Op:      operation,
			Session: fmt.Sprintf("shardbench-%s-%d", side, i),
			Payload: []byte(fmt.Sprintf("shard payload %s %d", side, i)),
		}
		if operation == thetacrypt.OpDecrypt {
			ct, err := svc.Encrypt(ctx, id, req.KeyID, req.Payload, nil)
			if err != nil {
				return thetacrypt.Request{}, fmt.Errorf("prepare ciphertext: %w", err)
			}
			req.Payload = ct
		}
		return req, nil
	}
	singleReqs := make([]thetacrypt.Request, *requests)
	shardReqs := make([]thetacrypt.Request, *requests)
	for i := 0; i < *requests; i++ {
		if singleReqs[i], err = build(baseline, "single", "", i); err != nil {
			return err
		}
		if shardReqs[i], err = build(rt, "router", keyIDs[i%*committees], i); err != nil {
			return err
		}
	}

	// Baseline: the large committee, driven directly, carrying the full
	// load.
	singleWall, singleLat, err := runLoad(ctx, baseline, singleReqs, *concurrency)
	if err != nil {
		return fmt.Errorf("single-committee side: %w", err)
	}
	single := modeReport(fmt.Sprintf("single(n=%d)", nTotal), *requests, singleWall, 0, singleLat)

	// Sharded: the same load through the router, spread round-robin
	// over all committees by key.
	shardWall, shardLat, err := runLoad(ctx, rt, shardReqs, *concurrency)
	if err != nil {
		return fmt.Errorf("sharded side: %w", err)
	}
	sharded := modeReport(fmt.Sprintf("sharded(%d)", *committees), *requests, shardWall, 0, shardLat)

	ratio := 0.0
	if singleWall > 0 && shardWall > 0 {
		ratio = sharded.ThroughputRPS / single.ThroughputRPS
	}
	if *jsonOut {
		doc := shardDoc{
			Bench:            "thetabench sharded",
			Scheme:           string(id),
			Op:               operation.String(),
			Committees:       *committees,
			N:                *nodes,
			T:                *thresh,
			Requests:         *requests,
			Concurrency:      *concurrency,
			Pool:             *pool,
			Modes:            []benchMode{single, sharded},
			RouterOverSingle: ratio,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	printMode(w, single)
	printMode(w, sharded)
	fmt.Fprintf(w, "router/single throughput: %.2fx\n", ratio)
	return nil
}

// shardDoc is the machine-readable report of the sharded benchmark; CI
// archives it to track the router tier's scaling over time.
type shardDoc struct {
	Bench            string      `json:"bench"`
	Scheme           string      `json:"scheme"`
	Op               string      `json:"op"`
	Committees       int         `json:"committees"`
	N                int         `json:"n"`
	T                int         `json:"t"`
	Requests         int         `json:"requests"`
	Concurrency      int         `json:"concurrency"`
	Pool             int         `json:"pool"`
	Modes            []benchMode `json:"modes"`
	RouterOverSingle float64     `json:"router_over_single_throughput"`
}

// runLoad drives reqs through svc with the given number of concurrent
// workers, timing each request individually.
func runLoad(ctx context.Context, svc api.Service, reqs []thetacrypt.Request, concurrency int) (time.Duration, []time.Duration, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex // guards lat and firstErr
		firstErr error
		wg       sync.WaitGroup
	)
	lat := make([]time.Duration, len(reqs))
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				reqStart := time.Now()
				_, err := api.Execute(ctx, svc, reqs[i])
				d := time.Since(reqStart)
				mu.Lock()
				lat[i] = d
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("request %d: %w", i, err)
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), lat, firstErr
}
