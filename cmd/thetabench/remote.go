package main

// The remote benchmark drives a deployment through the unified Service
// interface (API v2): the same load loop runs against an embedded
// cluster or, via the client SDK, against a deployed node over HTTP.
// It contrasts batched submission (one round-trip per batch, one SSE
// stream for the results) with sequential submit+wait cycles.

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// remoteBench implements the "remote" subcommand.
func remoteBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("remote", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "service URL of a deployed node; empty runs an embedded cluster through the same code path")
		scheme   = fs.String("scheme", "CKS05", "scheme to drive")
		op       = fs.String("op", "coin", "operation: sign|decrypt|coin")
		requests = fs.Int("requests", 64, "total requests per mode")
		batch    = fs.Int("batch", 16, "batch size for the batched mode")
		nodes    = fs.Int("n", 4, "cluster size (embedded only)")
		thresh   = fs.Int("t", 1, "corruption threshold (embedded only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := schemes.ID(*scheme)
	if _, err := schemes.Lookup(id); err != nil {
		return err
	}
	operation, err := protocols.ParseOperation(*op)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	var svc api.Service
	var cl *client.Client
	if *addr != "" {
		cl = client.New(*addr)
		svc = cl
		fmt.Fprintf(w, "# remote bench against %s via the v2 client SDK\n", *addr)
	} else {
		cluster, err := thetacrypt.NewCluster(*thresh, *nodes, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{id},
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		svc = cluster
		fmt.Fprintf(w, "# embedded bench (n=%d t=%d) through the same Service interface\n", *nodes, *thresh)
	}
	info, err := svc.Info(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# deployment n=%d t=%d, scheme %s op %s, %d requests\n",
		info.N, info.T, id, operation, *requests)

	// Payloads are prepared outside the timed sections: decrypt needs
	// ciphertexts from the scheme API.
	build := func(mode string, i int) (thetacrypt.Request, error) {
		req := thetacrypt.Request{
			Scheme:  id,
			Op:      operation,
			Session: fmt.Sprintf("bench-%s-%d", mode, i),
			Payload: []byte(fmt.Sprintf("bench payload %s %d", mode, i)),
		}
		if operation == thetacrypt.OpDecrypt {
			ct, err := svc.Encrypt(ctx, id, "", req.Payload, nil)
			if err != nil {
				return thetacrypt.Request{}, fmt.Errorf("prepare ciphertext: %w", err)
			}
			req.Payload = ct
		}
		return req, nil
	}

	seqReqs := make([]thetacrypt.Request, *requests)
	batchReqs := make([]thetacrypt.Request, *requests)
	for i := 0; i < *requests; i++ {
		if seqReqs[i], err = build("seq", i); err != nil {
			return err
		}
		if batchReqs[i], err = build("batch", i); err != nil {
			return err
		}
	}

	// Mode 1: sequential submit+wait cycles.
	tripsBefore := clientTrips(cl)
	start := time.Now()
	for i, req := range seqReqs {
		if _, err := api.Execute(ctx, svc, req); err != nil {
			return fmt.Errorf("sequential request %d: %w", i, err)
		}
	}
	seqWall := time.Since(start)
	seqTrips := clientTrips(cl) - tripsBefore
	report(w, "sequential", *requests, seqWall, seqTrips)

	// Mode 2: batched submission + streamed results.
	tripsBefore = clientTrips(cl)
	start = time.Now()
	for off := 0; off < *requests; off += *batch {
		size := min(*batch, *requests-off)
		results, err := api.ExecuteBatch(ctx, svc, batchReqs[off:off+size])
		if err != nil {
			return fmt.Errorf("batch at offset %d: %w", off, err)
		}
		for i, res := range results {
			if res.Err != nil {
				return fmt.Errorf("batch request %d: %w", off+i, res.Err)
			}
		}
	}
	batchWall := time.Since(start)
	batchTrips := clientTrips(cl) - tripsBefore
	report(w, fmt.Sprintf("batched(%d)", *batch), *requests, batchWall, batchTrips)
	if seqWall > 0 && batchWall > 0 {
		fmt.Fprintf(w, "batched/sequential wall-clock: %.2fx\n", float64(batchWall)/float64(seqWall))
	}
	return nil
}

// clientTrips reports HTTP round-trips so far, or 0 when embedded.
func clientTrips(cl *client.Client) int64 {
	if cl == nil {
		return 0
	}
	return cl.RoundTrips()
}

func report(w io.Writer, mode string, n int, wall time.Duration, trips int64) {
	fmt.Fprintf(w, "%-14s %d requests in %v (%.1f req/s)", mode, n, wall.Round(time.Millisecond),
		float64(n)/wall.Seconds())
	if trips > 0 {
		fmt.Fprintf(w, ", %d HTTP round-trips", trips)
	}
	fmt.Fprintln(w)
}
