package main

// The remote benchmark drives a deployment through the unified Service
// interface (API v2): the same load loop runs against an embedded
// cluster or, via the client SDK, against a deployed node over HTTP.
// It contrasts batched submission (one round-trip per batch, one SSE
// stream for the results) with sequential submit+wait cycles.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// remoteBench implements the "remote" subcommand.
func remoteBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("remote", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "service URL of a deployed node; empty runs an embedded cluster through the same code path")
		scheme   = fs.String("scheme", "CKS05", "scheme to drive")
		op       = fs.String("op", "coin", "operation: sign|decrypt|coin")
		requests = fs.Int("requests", 64, "total requests per mode")
		batch    = fs.Int("batch", 16, "batch size for the batched mode")
		nodes    = fs.Int("n", 4, "cluster size (embedded only)")
		thresh   = fs.Int("t", 1, "corruption threshold (embedded only)")
		jsonOut  = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := schemes.ID(*scheme)
	if _, err := schemes.Lookup(id); err != nil {
		return err
	}
	operation, err := protocols.ParseOperation(*op)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// In JSON mode the banners are suppressed so stdout stays a single
	// parseable document.
	banner := func(format string, a ...any) {
		if !*jsonOut {
			fmt.Fprintf(w, format, a...)
		}
	}
	var svc api.Service
	var cl *client.Client
	if *addr != "" {
		cl = client.New(*addr)
		svc = cl
		banner("# remote bench against %s via the v2 client SDK\n", *addr)
	} else {
		cluster, err := thetacrypt.NewCluster(*thresh, *nodes, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{id},
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		svc = cluster
		banner("# embedded bench (n=%d t=%d) through the same Service interface\n", *nodes, *thresh)
	}
	info, err := svc.Info(ctx)
	if err != nil {
		return err
	}
	banner("# deployment n=%d t=%d, scheme %s op %s, %d requests\n",
		info.N, info.T, id, operation, *requests)

	// Payloads are prepared outside the timed sections: decrypt needs
	// ciphertexts from the scheme API.
	build := func(mode string, i int) (thetacrypt.Request, error) {
		req := thetacrypt.Request{
			Scheme:  id,
			Op:      operation,
			Session: fmt.Sprintf("bench-%s-%d", mode, i),
			Payload: []byte(fmt.Sprintf("bench payload %s %d", mode, i)),
		}
		if operation == thetacrypt.OpDecrypt {
			ct, err := svc.Encrypt(ctx, id, "", req.Payload, nil)
			if err != nil {
				return thetacrypt.Request{}, fmt.Errorf("prepare ciphertext: %w", err)
			}
			req.Payload = ct
		}
		return req, nil
	}

	seqReqs := make([]thetacrypt.Request, *requests)
	batchReqs := make([]thetacrypt.Request, *requests)
	for i := 0; i < *requests; i++ {
		if seqReqs[i], err = build("seq", i); err != nil {
			return err
		}
		if batchReqs[i], err = build("batch", i); err != nil {
			return err
		}
	}

	// Mode 1: sequential submit+wait cycles. Each request is timed
	// individually, so the percentiles are true per-request latencies.
	tripsBefore := clientTrips(cl)
	seqLat := make([]time.Duration, 0, *requests)
	start := time.Now()
	for i, req := range seqReqs {
		reqStart := time.Now()
		if _, err := api.Execute(ctx, svc, req); err != nil {
			return fmt.Errorf("sequential request %d: %w", i, err)
		}
		seqLat = append(seqLat, time.Since(reqStart))
	}
	seqWall := time.Since(start)
	seq := modeReport("sequential", *requests, seqWall, clientTrips(cl)-tripsBefore, seqLat)

	// Mode 2: batched submission + streamed results. Each request's
	// latency is stamped when its own entry arrives on the result
	// stream, not when the whole batch drains — so batched and
	// sequential percentiles measure the same thing and the batch wall
	// clock only shows up in throughput.
	tripsBefore = clientTrips(cl)
	batchLat := make([]time.Duration, 0, *requests)
	start = time.Now()
	for off := 0; off < *requests; off += *batch {
		size := min(*batch, *requests-off)
		batchStart := time.Now()
		hs, err := svc.SubmitBatch(ctx, batchReqs[off:off+size])
		if err != nil {
			return fmt.Errorf("batch at offset %d: %w", off, err)
		}
		lat := make([]time.Duration, size)
		var failed error
		waitErr := api.WaitEach(ctx, svc, hs, func(i int, res api.Result) {
			lat[i] = time.Since(batchStart)
			if res.Err != nil && failed == nil {
				failed = fmt.Errorf("batch request %d: %w", off+i, res.Err)
			}
		})
		if waitErr != nil {
			return fmt.Errorf("batch at offset %d: %w", off, waitErr)
		}
		if failed != nil {
			return failed
		}
		batchLat = append(batchLat, lat...)
	}
	batchWall := time.Since(start)
	batched := modeReport(fmt.Sprintf("batched(%d)", *batch), *requests, batchWall, clientTrips(cl)-tripsBefore, batchLat)

	if *jsonOut {
		doc := benchDoc{
			Bench:    "thetabench remote",
			Scheme:   string(id),
			Op:       operation.String(),
			N:        info.N,
			T:        info.T,
			Requests: *requests,
			Batch:    *batch,
			Remote:   *addr != "",
			Modes:    []benchMode{seq, batched},
		}
		if seqWall > 0 {
			doc.BatchedOverSequential = float64(batchWall) / float64(seqWall)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	printMode(w, seq)
	printMode(w, batched)
	if seqWall > 0 && batchWall > 0 {
		fmt.Fprintf(w, "batched/sequential wall-clock: %.2fx\n", float64(batchWall)/float64(seqWall))
	}
	return nil
}

// benchDoc is the machine-readable report emitted by -json; CI archives
// it as a build artifact to track throughput and tail latency over time.
type benchDoc struct {
	Bench                 string      `json:"bench"`
	Scheme                string      `json:"scheme"`
	Op                    string      `json:"op"`
	N                     int         `json:"n"`
	T                     int         `json:"t"`
	Requests              int         `json:"requests"`
	Batch                 int         `json:"batch"`
	Remote                bool        `json:"remote"`
	Modes                 []benchMode `json:"modes"`
	BatchedOverSequential float64     `json:"batched_over_sequential_wall,omitempty"`
	SecureOverPlaintext   float64     `json:"secure_over_plaintext_wall,omitempty"`
}

type benchMode struct {
	Mode          string  `json:"mode"`
	Requests      int     `json:"requests"`
	WallMS        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"latency_p50_ms"`
	P99MS         float64 `json:"latency_p99_ms"`
	RoundTrips    int64   `json:"http_round_trips,omitempty"`
}

func modeReport(mode string, n int, wall time.Duration, trips int64, lat []time.Duration) benchMode {
	return benchMode{
		Mode:          mode,
		Requests:      n,
		WallMS:        float64(wall) / float64(time.Millisecond),
		ThroughputRPS: float64(n) / wall.Seconds(),
		P50MS:         percentileMS(lat, 50),
		P99MS:         percentileMS(lat, 99),
		RoundTrips:    trips,
	}
}

// percentileMS returns the p-th percentile of the samples in
// milliseconds, using the nearest-rank method on a sorted copy.
func percentileMS(lat []time.Duration, p int) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * len)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1]) / float64(time.Millisecond)
}

func printMode(w io.Writer, m benchMode) {
	fmt.Fprintf(w, "%-14s %d requests in %.0fms (%.1f req/s), p50 %.1fms p99 %.1fms",
		m.Mode, m.Requests, m.WallMS, m.ThroughputRPS, m.P50MS, m.P99MS)
	if m.RoundTrips > 0 {
		fmt.Fprintf(w, ", %d HTTP round-trips", m.RoundTrips)
	}
	fmt.Fprintln(w)
}

// clientTrips reports HTTP round-trips so far, or 0 when embedded.
func clientTrips(cl *client.Client) int64 {
	if cl == nil {
		return 0
	}
	return cl.RoundTrips()
}
