// Command thetabench regenerates the paper's evaluation: every table
// and figure of Section 4, plus the ablations in DESIGN.md.
//
// Subcommands:
//
//	table1 | table2 | table3   static inventories
//	fig4                       capacity test (throughput-latency)
//	table4                     knee capacity, δres, ηθ on DO-31-G
//	fig5a                      latency percentiles at knee capacity
//	fig5b                      payload-size sweep
//	micro                      primitive micro-benchmarks (calibration)
//	validate                   simulator vs real-stack cross check
//	remote                     drive a deployment through the v2 Service
//	                           API (embedded, or -addr URL via the SDK)
//	sharded                    router-vs-single-committee scaling: K
//	                           embedded committees behind the router
//	secure                     authenticated-mesh cost: tcpnet signing
//	                           throughput with secure links off vs on
//	all                        everything above (except remote/sharded/secure)
//
// Flags: -duration (capacity window, default 5s), -steady (steady-state
// window, default 30s), -schemes, -deployments, -seed. The paper's full
// windows are -duration 60s -steady 5m.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"thetacrypt/internal/eval"
	"thetacrypt/internal/schemes"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "thetabench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration    = flag.Duration("duration", 5*time.Second, "virtual load window per capacity point")
		steady      = flag.Duration("steady", 30*time.Second, "virtual window for steady-state runs")
		schemesFlag = flag.String("schemes", "", "comma-separated scheme subset")
		deploysFlag = flag.String("deployments", "", "comma-separated deployment subset")
		seed        = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("missing subcommand (table1|table2|table3|fig4|table4|fig5a|fig5b|micro|validate|remote|sharded|secure|all)")
	}
	opts := eval.Options{
		Duration:       *duration,
		SteadyDuration: *steady,
		Seed:           *seed,
	}
	if *schemesFlag != "" {
		for _, s := range strings.Split(*schemesFlag, ",") {
			id := schemes.ID(strings.TrimSpace(s))
			if _, err := schemes.Lookup(id); err != nil {
				return err
			}
			opts.Schemes = append(opts.Schemes, id)
		}
	}
	if *deploysFlag != "" {
		opts.Deployments = strings.Split(*deploysFlag, ",")
	}

	w := os.Stdout
	cmd := flag.Arg(0)
	switch cmd {
	case "remote":
		return remoteBench(w, flag.Args()[1:])
	case "sharded":
		return shardedBench(w, flag.Args()[1:])
	case "secure":
		return secureBench(w, flag.Args()[1:])
	case "table1":
		eval.Table1(w)
	case "table2":
		eval.Table2Print(w)
	case "table3":
		eval.Table3(w)
	case "fig4":
		return eval.Fig4(w, opts)
	case "table4":
		return eval.Table4(w, opts)
	case "fig5a":
		return eval.Fig5a(w, opts)
	case "fig5b":
		return eval.Fig5b(w, opts)
	case "micro":
		ids := opts.Schemes
		return eval.MicroBench(w, 10, 31, 256, ids)
	case "validate":
		ids := opts.Schemes
		if len(ids) == 0 {
			ids = []schemes.ID{schemes.CKS05, schemes.BLS04}
		}
		fmt.Fprintln(w, "# simulator vs real stack, DO-7-L at 4 req/s")
		for _, id := range ids {
			if err := eval.Validate(w, id, 3*time.Second); err != nil {
				return err
			}
		}
		return nil
	case "all":
		eval.Table1(w)
		fmt.Fprintln(w)
		eval.Table2Print(w)
		fmt.Fprintln(w)
		eval.Table3(w)
		fmt.Fprintln(w)
		if err := eval.Fig4(w, opts); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := eval.Table4(w, opts); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := eval.Fig5a(w, opts); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return eval.Fig5b(w, opts)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}
