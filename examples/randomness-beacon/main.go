// Randomness beacon (the paper's second motivating application, in the
// style of drand): every round, the Θ-network evaluates the CKS05
// threshold-random function on the round number chained with the
// previous value. No quorum smaller than t+1 can predict or bias the
// output, and every quorum derives the same value.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"thetacrypt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "randomness-beacon:", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := thetacrypt.NewCluster(2, 7, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.CKS05},
		Latency: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	fmt.Println("7-node beacon, threshold 3 (any 3 of 7 produce the value)")
	prev := []byte("genesis")
	for round := 1; round <= 5; round++ {
		name := fmt.Sprintf("round-%d|%s", round, hex.EncodeToString(prev))
		value, err := cluster.Execute(ctx, thetacrypt.Request{
			Scheme:  thetacrypt.CKS05,
			Op:      thetacrypt.OpCoin,
			Payload: []byte(name),
		})
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Printf("round %d: %s\n", round, hex.EncodeToString(value))
		prev = value
	}
	return nil
}
