// Randomness beacon (the paper's second motivating application, in the
// style of drand): every round, the Θ-network evaluates the CKS05
// threshold-random function on the round number chained with the
// previous value. No quorum smaller than t+1 can predict or bias the
// output, and every quorum derives the same value.
//
// The beacon loop is written against the unified Service interface and
// runs embedded (default) or against a deployed node (-remote URL).
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"thetacrypt"
	"thetacrypt/client"
)

func main() {
	remote := flag.String("remote", "", "service URL of a deployed node (empty: embedded cluster)")
	flag.Parse()
	if err := run(*remote); err != nil {
		fmt.Fprintln(os.Stderr, "randomness-beacon:", err)
		os.Exit(1)
	}
}

func run(remote string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var svc thetacrypt.Service
	if remote != "" {
		svc = client.New(remote)
	} else {
		cluster, err := thetacrypt.NewCluster(2, 7, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{thetacrypt.CKS05},
			Latency: time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		svc = cluster
	}
	info, err := svc.Info(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%d-node beacon, threshold %d (any %d of %d produce the value)\n",
		info.N, info.T, info.T+1, info.N)

	prev := []byte("genesis")
	for round := 1; round <= 5; round++ {
		name := fmt.Sprintf("round-%d|%s", round, hex.EncodeToString(prev))
		value, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
			Scheme:  thetacrypt.CKS05,
			Op:      thetacrypt.OpCoin,
			Payload: []byte(name),
		})
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Printf("round %d: %s\n", round, hex.EncodeToString(value))
		prev = value
	}
	return nil
}
