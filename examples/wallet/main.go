// Threshold wallet (the paper's key-management application): the
// signing key of a cryptocurrency wallet is split across custodian
// nodes; transactions are approved with FROST (KG20) threshold Schnorr
// signatures, so no single custodian can spend and the resulting
// signature is indistinguishable from a single-signer Schnorr signature.
//
// The approval flow is written against the unified Service interface
// and runs embedded (default) or against a deployed custodian node
// (-remote URL). The pending transactions are approved as one batch
// submission.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"thetacrypt"
	"thetacrypt/client"
	"thetacrypt/internal/schemes/frost"
)

func main() {
	remote := flag.String("remote", "", "service URL of a custodian node (empty: embedded cluster)")
	flag.Parse()
	if err := run(*remote); err != nil {
		fmt.Fprintln(os.Stderr, "wallet:", err)
		os.Exit(1)
	}
}

func run(remote string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var svc thetacrypt.Service
	var cluster *thetacrypt.Cluster
	if remote != "" {
		svc = client.New(remote)
		fmt.Println("driving a deployed custodian network over the v2 API")
	} else {
		// 5 custodians, any 3 approve a spend.
		var err error
		cluster, err = thetacrypt.NewCluster(2, 5, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{thetacrypt.KG20},
			Latency: 2 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		svc = cluster
		fmt.Println("wallet key split across 5 custodians, quorum 3 (FROST two-round signing)")
	}

	// Create a dedicated wallet key at runtime: a distributed key
	// generation runs across the custodians, no dealer ever holds the
	// secret, and the key is addressable by its ID from then on. (A
	// fixed name via GenerateKeyOptions.KeyID works too; the random ID
	// keeps the example re-runnable against a long-lived deployment.)
	kh, err := svc.GenerateKey(ctx, thetacrypt.KG20, thetacrypt.GenerateKeyOptions{})
	if err != nil {
		return fmt.Errorf("generate wallet key: %w", err)
	}
	kres, err := svc.Wait(ctx, kh)
	if err != nil {
		return err
	}
	if kres.Err != nil {
		return fmt.Errorf("wallet key DKG: %w", kres.Err)
	}
	walletKey := string(kres.Value)
	fmt.Printf("wallet key %q generated on-demand via DKG\n", walletKey)

	var pk *frost.PublicKey
	if cluster != nil {
		if pk, err = thetacrypt.PublicKeyOf[*frost.PublicKey](cluster.KeystoreAt(1), thetacrypt.KG20, walletKey); err != nil {
			return err
		}
	}

	txs := []string{
		`{"to":"bc1q...","amount":"0.5 BTC","nonce":1}`,
		`{"to":"bc1p...","amount":"1.2 BTC","nonce":2}`,
	}
	reqs := make([]thetacrypt.Request, len(txs))
	for i, tx := range txs {
		reqs[i] = thetacrypt.Request{
			Scheme:  thetacrypt.KG20,
			KeyID:   walletKey,
			Op:      thetacrypt.OpSign,
			Payload: []byte(tx),
		}
	}

	// One batch submission approves the whole pending set.
	start := time.Now()
	results, err := thetacrypt.ExecuteBatch(ctx, svc, reqs)
	if err != nil {
		return fmt.Errorf("approve batch: %w", err)
	}
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("sign tx %d: %w", i+1, res.Err)
		}
		if pk != nil {
			sig, err := frost.UnmarshalSignature(pk.Group, res.Value)
			if err != nil {
				return err
			}
			if err := frost.Verify(pk, []byte(txs[i]), sig); err != nil {
				return fmt.Errorf("tx %d signature invalid: %w", i+1, err)
			}
			fmt.Printf("tx %d approved; Schnorr signature verifies under the wallet key\n", i+1)
		} else {
			fmt.Printf("tx %d approved (%d signature bytes)\n", i+1, len(res.Value))
		}
	}
	fmt.Printf("batch of %d approvals in %v\n", len(txs), time.Since(start).Round(time.Millisecond))
	fmt.Println("no single custodian ever held the spending key")
	return nil
}
