// Threshold wallet (the paper's key-management application): the
// signing key of a cryptocurrency wallet is split across custodian
// nodes; transactions are approved with FROST (KG20) threshold Schnorr
// signatures, so no single custodian can spend and the resulting
// signature is indistinguishable from a single-signer Schnorr signature.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"thetacrypt"
	"thetacrypt/internal/schemes/frost"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wallet:", err)
		os.Exit(1)
	}
}

func run() error {
	// 5 custodians, any 3 approve a spend.
	cluster, err := thetacrypt.NewCluster(2, 5, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.KG20},
		Latency: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	pk := cluster.Keys(1).FrostPK
	fmt.Println("wallet key split across 5 custodians, quorum 3 (FROST two-round signing)")

	for i, tx := range []string{
		`{"to":"bc1q...","amount":"0.5 BTC","nonce":1}`,
		`{"to":"bc1p...","amount":"1.2 BTC","nonce":2}`,
	} {
		start := time.Now()
		sigBytes, err := cluster.Execute(ctx, thetacrypt.Request{
			Scheme:  thetacrypt.KG20,
			Op:      thetacrypt.OpSign,
			Payload: []byte(tx),
		})
		if err != nil {
			return fmt.Errorf("sign tx %d: %w", i+1, err)
		}
		sig, err := frost.UnmarshalSignature(pk.Group, sigBytes)
		if err != nil {
			return err
		}
		if err := frost.Verify(pk, []byte(tx), sig); err != nil {
			return fmt.Errorf("tx %d signature invalid: %w", i+1, err)
		}
		fmt.Printf("tx %d approved in %v; Schnorr signature verifies under the wallet key\n",
			i+1, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("no single custodian ever held the spending key")
	return nil
}
