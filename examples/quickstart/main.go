// Quickstart: start an embedded 4-node Θ-network, produce a threshold
// BLS signature, and run a threshold decryption — the two headline
// operations of the protocol API.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"thetacrypt"
	"thetacrypt/internal/schemes/bls04"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4-node cluster tolerating t = 1 Byzantine node (n = 3t+1).
	cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.BLS04, thetacrypt.SG02},
		Latency: 500 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// 1. Threshold signature: any t+1 = 2 nodes jointly sign; the result
	// is an ordinary BLS signature under the service-wide public key.
	msg := []byte("hello, threshold world")
	sigBytes, err := cluster.Execute(ctx, thetacrypt.Request{
		Scheme:  thetacrypt.BLS04,
		Op:      thetacrypt.OpSign,
		Payload: msg,
	})
	if err != nil {
		return fmt.Errorf("threshold sign: %w", err)
	}
	sig, err := bls04.UnmarshalSignature(sigBytes)
	if err != nil {
		return err
	}
	if err := bls04.Verify(cluster.Keys(1).BLS04PK, msg, sig); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	fmt.Printf("threshold BLS signature over %q verifies (%d bytes)\n", msg, len(sigBytes))

	// 2. Threshold decryption: anyone encrypts against the service
	// public key (scheme API); decryption requires a quorum.
	secret := []byte("launch code: 0000")
	ct, err := cluster.Encrypt(thetacrypt.SG02, secret, []byte("label-1"))
	if err != nil {
		return fmt.Errorf("encrypt: %w", err)
	}
	plain, err := cluster.Execute(ctx, thetacrypt.Request{
		Scheme:  thetacrypt.SG02,
		Op:      thetacrypt.OpDecrypt,
		Payload: ct,
	})
	if err != nil {
		return fmt.Errorf("threshold decrypt: %w", err)
	}
	fmt.Printf("threshold decryption recovered %q\n", plain)
	return nil
}
