// Quickstart: produce a threshold BLS signature and run a threshold
// decryption — the two headline operations of the protocol API — then
// submit a signature batch in one call.
//
// The demo is written once against the unified Service interface
// (API v2) and runs against either deployment style:
//
//	go run ./examples/quickstart                              # embedded cluster
//	go run ./examples/quickstart -remote http://127.0.0.1:8081  # deployed node
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"thetacrypt"
	"thetacrypt/client"
	"thetacrypt/internal/schemes/bls04"
)

func main() {
	remote := flag.String("remote", "", "service URL of a deployed node (empty: embedded cluster)")
	flag.Parse()
	if err := run(*remote); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(remote string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var svc thetacrypt.Service
	var cluster *thetacrypt.Cluster // non-nil only embedded; holds the public keys
	if remote != "" {
		svc = client.New(remote)
	} else {
		// A 4-node cluster tolerating t = 1 Byzantine node (n = 3t+1).
		var err error
		cluster, err = thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{thetacrypt.BLS04, thetacrypt.SG02},
			Latency: 500 * time.Microsecond,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		svc = cluster
	}
	info, err := svc.Info(ctx)
	if err != nil {
		return fmt.Errorf("info: %w", err)
	}
	fmt.Printf("deployment: n=%d t=%d schemes=%v\n", info.N, info.T, info.Schemes)

	// 1. Threshold signature: any t+1 nodes jointly sign; the result is
	// an ordinary BLS signature under the service-wide public key.
	msg := []byte("hello, threshold world")
	sigBytes, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme:  thetacrypt.BLS04,
		Op:      thetacrypt.OpSign,
		Payload: msg,
	})
	if err != nil {
		return fmt.Errorf("threshold sign: %w", err)
	}
	if cluster != nil {
		// Verification needs the service public key, available here
		// through the embedded scheme API.
		sig, err := bls04.UnmarshalSignature(sigBytes)
		if err != nil {
			return err
		}
		pk, err := thetacrypt.PublicKeyOf[*bls04.PublicKey](cluster.KeystoreAt(1), thetacrypt.BLS04, "")
		if err != nil {
			return err
		}
		if err := bls04.Verify(pk, msg, sig); err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		fmt.Printf("threshold BLS signature over %q verifies (%d bytes)\n", msg, len(sigBytes))
	} else {
		fmt.Printf("threshold BLS signature over %q produced (%d bytes)\n", msg, len(sigBytes))
	}

	// 2. Threshold decryption: anyone encrypts against the service
	// public key (scheme API); decryption requires a quorum.
	secret := []byte("launch code: 0000")
	ct, err := svc.Encrypt(ctx, thetacrypt.SG02, "", secret, []byte("label-1"))
	if err != nil {
		return fmt.Errorf("encrypt: %w", err)
	}
	plain, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme:  thetacrypt.SG02,
		Op:      thetacrypt.OpDecrypt,
		Payload: ct,
	})
	if err != nil {
		return fmt.Errorf("threshold decrypt: %w", err)
	}
	fmt.Printf("threshold decryption recovered %q\n", plain)

	// 3. Batch submission: sign several messages in one call — one
	// round-trip for the batch instead of one per request.
	batch := make([]thetacrypt.Request, 4)
	for i := range batch {
		batch[i] = thetacrypt.Request{
			Scheme:  thetacrypt.BLS04,
			Op:      thetacrypt.OpSign,
			Payload: []byte(fmt.Sprintf("batch message %d", i)),
		}
	}
	results, err := thetacrypt.ExecuteBatch(ctx, svc, batch)
	if err != nil {
		return fmt.Errorf("batch sign: %w", err)
	}
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("batch item %d: %w", i, res.Err)
		}
	}
	fmt.Printf("batch of %d signatures completed\n", len(results))
	return nil
}
