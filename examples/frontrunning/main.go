// Front-running prevention (the paper's Section 2.3 motivating
// application): clients encrypt transactions under the service-wide
// threshold key, validators order the ciphertexts through total-order
// broadcast WITHOUT seeing their content, and only after the order is
// fixed does the Θ-network jointly decrypt. A front-running validator
// learns the transaction contents only when reordering is no longer
// possible.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"thetacrypt"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/tob"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frontrunning:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 4
	cluster, err := thetacrypt.NewCluster(1, n, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.SG02},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// The blockchain substrate: a total-order broadcast channel among
	// the validators (in production this is the host chain's consensus;
	// here the sequencer-based TOB from the network layer).
	hub := memnet.NewHub(n, memnet.Options{Latency: memnet.Uniform(time.Millisecond)})
	defer hub.Close()
	channels := make([]*tob.Sequencer, n)
	for i := 1; i <= n; i++ {
		ch, err := tob.New(hub.Endpoint(i), i, 1)
		if err != nil {
			return err
		}
		channels[i-1] = ch
	}
	defer func() {
		for _, c := range channels {
			_ = c.Close()
		}
	}()

	// Clients submit ENCRYPTED transactions to the mempool.
	txs := []string{
		"swap 100 ETH for DAI at pool X",
		"buy  500 ABC tokens",
		"sell 250 ABC tokens",
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fmt.Println("== clients submit encrypted transactions ==")
	for i, tx := range txs {
		ct, err := cluster.Encrypt(ctx, thetacrypt.SG02, "", []byte(tx), []byte(fmt.Sprintf("tx-%d", i)))
		if err != nil {
			return err
		}
		// Each client submits through a different validator.
		if err := channels[i%n].Submit(ctx, network.Envelope{
			Instance: fmt.Sprintf("tx-%d", i),
			Payload:  ct,
		}); err != nil {
			return err
		}
		fmt.Printf("  tx %d: %d ciphertext bytes submitted (content hidden)\n", i, len(ct))
	}

	// Validators deliver the same order everywhere. Once the order is
	// fixed, the whole committed block is decrypted as one batch
	// submission against the unified Service interface.
	fmt.Println("== validators decrypt in committed order ==")
	var ordered []string
	var reqs []thetacrypt.Request
	for i := 0; i < len(txs); i++ {
		select {
		case env := <-channels[0].Delivered():
			ordered = append(ordered, env.Instance)
			reqs = append(reqs, thetacrypt.Request{
				Scheme:  thetacrypt.SG02,
				Op:      thetacrypt.OpDecrypt,
				Payload: env.Payload,
				Session: env.Instance,
			})
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	results, err := thetacrypt.ExecuteBatch(ctx, cluster, reqs)
	if err != nil {
		return fmt.Errorf("decrypt block: %w", err)
	}
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("decrypt %s: %w", ordered[i], res.Err)
		}
		fmt.Printf("  position %d (%s): %s\n", i+1, ordered[i], res.Value)
	}
	fmt.Println("order was fixed before any validator could read the transactions")
	return nil
}
