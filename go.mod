module thetacrypt

go 1.22
