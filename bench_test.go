// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Section 4), plus the ablations listed in
// DESIGN.md. Each target regenerates the corresponding rows/series
// through internal/eval with scaled-down virtual windows; the full-size
// runs (60 s capacity windows, 5 min steady state) are produced by
// `go run ./cmd/thetabench -duration 60s -steady 5m all`.
package thetacrypt_test

import (
	"crypto/rand"
	"io"
	"os"
	"testing"
	"time"

	"thetacrypt/internal/eval"
	"thetacrypt/internal/group"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/sg02"
)

// benchWriter streams experiment rows to stdout when -v is given,
// otherwise discards them (the series still get computed).
func benchWriter(b *testing.B) io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

// quickOpts keeps the per-point virtual windows small enough for a
// benchmark run; shapes (knee ordering, percentile gaps) are preserved.
func quickOpts() eval.Options {
	return eval.Options{
		Duration:       time.Second,
		SteadyDuration: 3 * time.Second,
		Seed:           7,
	}
}

// BenchmarkTable1SchemeInventory regenerates Table 1 (E1).
func BenchmarkTable1SchemeInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eval.Table1(benchWriter(b))
	}
}

// BenchmarkTable2Deployments regenerates Table 2 (E2).
func BenchmarkTable2Deployments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eval.Table2Print(benchWriter(b))
	}
}

// BenchmarkTable3SchemeParams regenerates Table 3 (E3).
func BenchmarkTable3SchemeParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eval.Table3(benchWriter(b))
	}
}

// BenchmarkFig4CapacityTest regenerates the Figure 4 capacity series
// (E4) on a representative deployment subset (small local, small
// global, medium global); the CLI covers all six.
func BenchmarkFig4CapacityTest(b *testing.B) {
	opts := quickOpts()
	opts.Deployments = []string{"DO-7-L", "DO-7-G", "DO-31-G"}
	for i := 0; i < b.N; i++ {
		if err := eval.Fig4(benchWriter(b), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Steady regenerates Table 4 (E5): knee capacity, δres,
// ηθ on DO-31-G.
func BenchmarkTable4Steady(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.Table4(benchWriter(b), quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5aPercentiles regenerates Figure 5a (E6).
func BenchmarkFig5aPercentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.Fig5a(benchWriter(b), quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bPayload regenerates Figure 5b (E7) for two
// representative schemes (the CLI covers all six).
func BenchmarkFig5bPayload(b *testing.B) {
	opts := quickOpts()
	opts.Schemes = []schemes.ID{schemes.SG02, schemes.BLS04}
	for i := 0; i < b.N; i++ {
		if err := eval.Fig5b(benchWriter(b), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroPrimitives is ablation A1: the per-primitive
// micro-benchmark view the paper contrasts with system-level results.
func BenchmarkMicroPrimitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := eval.MicroBench(benchWriter(b), 10, 31, 256, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFrostPrecompute is ablation A2: FROST's one-round
// precomputed mode against the two-round protocol on DO-31-G.
func BenchmarkAblationFrostPrecompute(b *testing.B) {
	dep, err := eval.DeploymentByName("DO-31-G")
	if err != nil {
		b.Fatal(err)
	}
	for _, pre := range []bool{false, true} {
		name := "two-round"
		if pre {
			name = "precomputed"
		}
		b.Run(name, func(b *testing.B) {
			var last *eval.RunResult
			for i := 0; i < b.N; i++ {
				r, err := eval.Run(eval.RunSpec{
					Scheme:      schemes.KG20,
					Deployment:  dep,
					Rate:        4,
					Duration:    2 * time.Second,
					Precomputed: pre,
					Seed:        21,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.LnetTheta)/1e6, "Ltheta-ms")
		})
	}
}

// BenchmarkAblationGroups is ablation A3: the SG02 decryption-share
// primitive on the from-scratch edwards25519 group against the
// stdlib-backed P-256 group.
func BenchmarkAblationGroups(b *testing.B) {
	for _, g := range []group.Group{group.Edwards25519(), group.P256()} {
		g := g
		b.Run(g.Name(), func(b *testing.B) {
			pk, ks, err := sg02.Deal(rand.Reader, g, 2, 7)
			if err != nil {
				b.Fatal(err)
			}
			ct, err := sg02.Encrypt(rand.Reader, pk, []byte("bench message"), nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sg02.DecryptShare(rand.Reader, pk, ks[0], ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
