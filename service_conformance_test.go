package thetacrypt_test

// Conformance: the same application code runs against every Service
// implementation — the embedded Cluster (memnet), a standalone Node
// deployment (tcpnet), and the remote client SDK over the /v2 HTTP
// endpoints — exercising submit, wait, batch, idempotent
// re-submission, the scheme API, the keychain API (key listings,
// on-demand DKG, per-key submission), and structured errors
// identically.

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/service"
)

// remoteService stands up a 4-node Θ-network with HTTP front ends and
// returns the SDK client of node 1.
func remoteService(t *testing.T) thetacrypt.Service {
	t.Helper()
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, memnet.Options{})
	var first thetacrypt.Service
	for i := 0; i < n; i++ {
		engine := orchestration.New(orchestration.Config{
			Keys: nodes[i],
			Net:  hub.Endpoint(i + 1),
		})
		srv := httptest.NewServer(service.NewServer(engine, nodes[i]))
		if i == 0 {
			first = client.New(srv.URL)
		}
		t.Cleanup(srv.Close)
		t.Cleanup(engine.Stop)
	}
	t.Cleanup(hub.Close)
	return first
}

func embeddedService(t *testing.T) thetacrypt.Service {
	t.Helper()
	cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.SG02, thetacrypt.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// nodeDeployment stands up a real 4-node tcpnet deployment on loopback
// (dynamic ports, peers wired after construction) and returns all
// nodes; node 1 serves as the standalone-Node Service implementation.
func nodeDeployment(t *testing.T) []*thetacrypt.Node {
	t.Helper()
	const tt, n = 1, 4
	stores, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*thetacrypt.Node, n)
	for i := 0; i < n; i++ {
		node, err := thetacrypt.NewNode(thetacrypt.NodeConfig{
			Keys:       stores[i],
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(node.Close)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].SetPeer(j+1, nodes[j].P2PAddr())
			}
		}
	}
	return nodes
}

// exercise is the application code written once against the interface.
func exercise(t *testing.T, svc thetacrypt.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	info, err := svc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 4 || info.T != 1 || len(info.Schemes) != 2 {
		t.Fatalf("info: %+v", info)
	}

	// Keychain listing: Keys and Info report the same keychain, one
	// default key per dealt scheme.
	listed, err := svc.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 2 || !sameKeyLists(listed, info.Keys) {
		t.Fatalf("key lists diverge: Keys=%+v Info=%+v", listed, info.Keys)
	}
	for _, k := range listed {
		if k.KeyID != thetacrypt.DefaultKeyID || !k.Default || len(k.PublicKey) == 0 {
			t.Fatalf("dealt key listing wrong: %+v", k)
		}
	}

	// Single-key fetch: every implementation answers GET-one-key with
	// the same record the listing carries, and misses use the typed 404
	// vocabulary (scheme_unknown before key_unknown).
	kf, ok := svc.(api.KeyFetcher)
	if !ok {
		t.Fatalf("%T does not implement api.KeyFetcher", svc)
	}
	one, err := kf.Key(ctx, thetacrypt.SG02, "")
	if err != nil {
		t.Fatal(err)
	}
	if one.Scheme != string(thetacrypt.SG02) || one.KeyID != thetacrypt.DefaultKeyID || !one.Default || len(one.PublicKey) == 0 {
		t.Fatalf("single-key fetch: %+v", one)
	}
	for _, k := range listed {
		if k.Scheme == one.Scheme && k.KeyID == one.KeyID && !sameKeyLists([]thetacrypt.KeyInfo{one}, []thetacrypt.KeyInfo{k}) {
			t.Fatalf("single-key fetch diverges from listing: %+v vs %+v", one, k)
		}
	}
	if _, err := kf.Key(ctx, thetacrypt.SG02, "no-such-key"); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key fetch: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := kf.Key(ctx, "NOPE", ""); api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("unknown scheme fetch: got %v (code %s)", err, api.CodeOf(err))
	}

	// Scheme API + protocol API round-trip under the default key.
	secret := []byte("interface-portable secret")
	ct, err := svc.Encrypt(ctx, thetacrypt.SG02, "", secret, []byte("L"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.SG02, Op: thetacrypt.OpDecrypt, Payload: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(secret) {
		t.Fatalf("decrypted %q", plain)
	}

	// Keychain API: generate a named SG02 key on demand — a real DKG
	// through the orchestration engines — and use it immediately.
	kh, err := svc.GenerateKey(ctx, thetacrypt.SG02, thetacrypt.GenerateKeyOptions{KeyID: "conf-genkey"})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := svc.Wait(ctx, kh)
	if err != nil {
		t.Fatal(err)
	}
	if kres.Err != nil || string(kres.Value) != "conf-genkey" {
		t.Fatalf("keygen result: %+v", kres)
	}
	ct2, err := svc.Encrypt(ctx, thetacrypt.SG02, "conf-genkey", secret, []byte("L2"))
	if err != nil {
		t.Fatal(err)
	}
	plain2, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.SG02, KeyID: "conf-genkey", Op: thetacrypt.OpDecrypt, Payload: ct2,
	})
	if err != nil {
		t.Fatalf("decrypt under generated key: %v", err)
	}
	if string(plain2) != string(secret) {
		t.Fatalf("generated-key decryption yielded %q", plain2)
	}
	// The keychain now lists the generated key, non-default.
	listed, err = svc.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range listed {
		if k.Scheme == string(thetacrypt.SG02) && k.KeyID == "conf-genkey" && !k.Default {
			found = true
		}
	}
	if !found {
		t.Fatalf("generated key missing from listing: %+v", listed)
	}
	// ...and is fetchable by name through the single-key endpoint.
	gen, err := kf.Key(ctx, thetacrypt.SG02, "conf-genkey")
	if err != nil {
		t.Fatalf("fetch generated key: %v", err)
	}
	if gen.KeyID != "conf-genkey" || gen.Default || len(gen.PublicKey) == 0 {
		t.Fatalf("generated key fetch: %+v", gen)
	}
	// Re-generating the same name conflicts.
	if _, err := svc.GenerateKey(ctx, thetacrypt.SG02, thetacrypt.GenerateKeyOptions{KeyID: "conf-genkey"}); api.CodeOf(err) != api.CodeKeyExists {
		t.Fatalf("duplicate keygen: got %v (code %s)", err, api.CodeOf(err))
	}
	// DKG cannot produce RSA keys.
	if _, err := svc.GenerateKey(ctx, thetacrypt.SH00, thetacrypt.GenerateKeyOptions{}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("SH00 keygen: got %v (code %s)", err, api.CodeOf(err))
	}

	// Batch submission with order-preserving results.
	reqs := make([]thetacrypt.Request, 6)
	for i := range reqs {
		reqs[i] = thetacrypt.Request{
			Scheme: thetacrypt.CKS05, Op: thetacrypt.OpCoin,
			Payload: []byte(fmt.Sprintf("conf-coin-%d", i)),
		}
	}
	hs, err := svc.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := api.WaitAll(ctx, svc, hs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil || len(res.Value) == 0 {
			t.Fatalf("batch result %d: %+v", i, res)
		}
		if res.InstanceID != hs[i].InstanceID {
			t.Fatalf("result %d out of order", i)
		}
	}

	// Idempotent re-submission: the same request yields the same handle
	// and resolves to the same finished result.
	again, err := svc.Submit(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if again.InstanceID != hs[0].InstanceID {
		t.Fatalf("re-submission changed handles: %s != %s", again.InstanceID, hs[0].InstanceID)
	}
	res, err := svc.Wait(ctx, again)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || string(res.Value) != string(results[0].Value) {
		t.Fatalf("re-submission diverged: %+v", res)
	}

	// The explicit default key ID names the same instance as the empty
	// one (idempotency is per effective key).
	named := reqs[0]
	named.KeyID = thetacrypt.DefaultKeyID
	alias, err := svc.Submit(ctx, named)
	if err != nil {
		t.Fatal(err)
	}
	if alias.InstanceID != hs[0].InstanceID {
		t.Fatalf("explicit default key changed handles: %s != %s", alias.InstanceID, hs[0].InstanceID)
	}

	// Structured errors carry the same codes on every implementation.
	if _, err := svc.Submit(ctx, thetacrypt.Request{
		Scheme: "NOPE", Op: thetacrypt.OpSign, Payload: []byte("x"),
	}); api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("unknown scheme: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Submit(ctx, thetacrypt.Request{
		Scheme: thetacrypt.CKS05, KeyID: "no-such-key", Op: thetacrypt.OpCoin, Payload: []byte("x"),
	}); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key submit: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Encrypt(ctx, thetacrypt.SG02, "no-such-key", []byte("x"), nil); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key encrypt: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Submit(ctx, thetacrypt.Request{
		Scheme: thetacrypt.CKS05, KeyID: "bad key!", Op: thetacrypt.OpCoin, Payload: []byte("x"),
	}); api.CodeOf(err) != api.CodeBadRequest {
		t.Fatalf("malformed key id: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Encrypt(ctx, thetacrypt.CKS05, "", []byte("x"), nil); api.CodeOf(err) != api.CodeSchemeNotCipher {
		t.Fatalf("non-cipher encrypt: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Encrypt(ctx, thetacrypt.BZ03, "", []byte("x"), nil); api.CodeOf(err) != api.CodeSchemeNoKeys {
		t.Fatalf("no-keys encrypt: got %v (code %s)", err, api.CodeOf(err))
	}
}

// sameKeyLists compares two keychain listings field by field,
// including the share-version epoch and committee membership.
func sameKeyLists(a, b []thetacrypt.KeyInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Scheme != b[i].Scheme || a[i].KeyID != b[i].KeyID ||
			a[i].Group != b[i].Group || a[i].Default != b[i].Default ||
			a[i].Epoch != b[i].Epoch || !slices.Equal(a[i].Members, b[i].Members) ||
			!bytes.Equal(a[i].PublicKey, b[i].PublicKey) {
			return false
		}
	}
	return true
}

// routerService stands up two independent embedded committees behind
// the stateless router — the fourth Service implementation. Both
// committees are dealt the same default key IDs, so the router's
// first-wins placement shadows the duplicates and the fleet presents
// the same two-key keychain the single-committee harnesses do.
func routerService(t *testing.T) *thetacrypt.Router {
	t.Helper()
	backends := make([]thetacrypt.RouterBackend, 2)
	for i := range backends {
		cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{thetacrypt.SG02, thetacrypt.CKS05},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		backends[i] = thetacrypt.RouterBackend{Service: cluster}
	}
	return thetacrypt.NewRouter(backends...)
}

func TestServiceConformanceEmbedded(t *testing.T) {
	exercise(t, embeddedService(t))
}

// TestServiceConformanceRouter runs the application code verbatim
// against the router tier: submissions route by key, the generated key
// lands on the least-loaded committee, and every structured error code
// survives the indirection.
func TestServiceConformanceRouter(t *testing.T) {
	exercise(t, routerService(t))
}

// TestServiceConformanceRouterHTTP runs the suite against a full
// sharded deployment: two committees behind the router behind the
// generic /v2 HTTP front, driven through the untouched client SDK.
func TestServiceConformanceRouterHTTP(t *testing.T) {
	srv := httptest.NewServer(thetacrypt.ServiceHandler(routerService(t)))
	t.Cleanup(srv.Close)
	exercise(t, client.New(srv.URL))
}

func TestServiceConformanceRemote(t *testing.T) {
	exercise(t, remoteService(t))
}

func TestServiceConformanceNodeTCP(t *testing.T) {
	exercise(t, nodeDeployment(t)[0])
}

// TestRouterInfoMergesCommittees checks the router's fleet view against
// the backing committees directly: Keys (including Epoch and Members,
// after a live reshare through the router) must be exactly the union of
// the committees' keychains, Info must carry one CommitteeInfo block
// per backend with that committee's own key count and engine stats, and
// engine activity driven through the router must show up in the owning
// committee's block.
func TestRouterInfoMergesCommittees(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Distinct per-committee key names: nothing is shadowed, so the
	// union is the full fleet keychain.
	keyIDs := []string{"shard-a", "shard-b"}
	clusters := make([]*thetacrypt.Cluster, 2)
	backends := make([]thetacrypt.RouterBackend, 2)
	for i := range clusters {
		cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
			Schemes: []thetacrypt.SchemeID{thetacrypt.SG02, thetacrypt.CKS05},
			KeyID:   keyIDs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cluster.Close)
		clusters[i] = cluster
		backends[i] = thetacrypt.RouterBackend{Name: keyIDs[i], Service: cluster}
	}
	rt := thetacrypt.NewRouter(backends...)

	// Drive work through the router so the second committee's engine has
	// activity of its own: a reshare of its key (epoch 1 -> 2).
	rh, err := rt.ReshareKey(ctx, thetacrypt.SG02, "shard-b", thetacrypt.ReshareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rt.Wait(ctx, rh)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Err != nil || string(rres.Value) != "2" {
		t.Fatalf("reshare through router: %+v", rres)
	}

	// The union check: every key a committee lists appears in the router
	// listing with identical fields (epoch and members included), and
	// nothing else does.
	routerKeys, err := rt.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var union []thetacrypt.KeyInfo
	for _, c := range clusters {
		ks, err := c.Keys(ctx)
		if err != nil {
			t.Fatal(err)
		}
		union = append(union, ks...)
	}
	if len(routerKeys) != len(union) {
		t.Fatalf("router lists %d keys, committees hold %d", len(routerKeys), len(union))
	}
	for _, want := range union {
		found := false
		for _, got := range routerKeys {
			if got.Scheme == want.Scheme && got.KeyID == want.KeyID {
				if !sameKeyLists([]thetacrypt.KeyInfo{got}, []thetacrypt.KeyInfo{want}) {
					t.Fatalf("router key %s/%s diverges from its committee: %+v vs %+v",
						want.Scheme, want.KeyID, got, want)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("committee key %s/%s missing from router listing", want.Scheme, want.KeyID)
		}
	}
	// The reshared key reports its bumped epoch through the router.
	for _, k := range routerKeys {
		if k.Scheme == string(thetacrypt.SG02) && k.KeyID == "shard-b" && k.Epoch != 2 {
			t.Fatalf("reshared key epoch through router = %d, want 2", k.Epoch)
		}
	}

	// Info: one committee block per backend, each matching the backend's
	// own view — key counts and the engine-stats snapshot the paper's
	// operators monitor.
	info, err := rt.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeyLists(info.Keys, routerKeys) {
		t.Fatalf("Info.Keys diverges from Keys: %+v vs %+v", info.Keys, routerKeys)
	}
	if len(info.Committees) != 2 {
		t.Fatalf("got %d committee blocks, want 2", len(info.Committees))
	}
	for i, block := range info.Committees {
		cinfo, err := clusters[i].Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if block.Name != keyIDs[i] || block.Down {
			t.Fatalf("block %d: %+v", i, block)
		}
		if block.N != cinfo.N || block.T != cinfo.T || block.Keys != len(cinfo.Keys) {
			t.Fatalf("block %d diverges from committee info: %+v vs %+v", i, block, cinfo)
		}
		if block.Stats == nil {
			t.Fatalf("block %d has no engine stats", i)
		}
	}
	// The reshare ran on the second committee's engine, not the first's.
	if info.Committees[1].Stats.Finished == 0 {
		t.Fatalf("owning committee shows no finished instances: %+v", info.Committees[1].Stats)
	}
	if info.Committees[0].Stats.Finished != 0 {
		t.Fatalf("idle committee shows finished instances: %+v", info.Committees[0].Stats)
	}
}

// TestKeyListsAgreeAcrossImplementations drives one tcpnet deployment
// through two Service fronts — the in-process Node and the remote
// client SDK over its HTTP handler — and checks that both report the
// identical keychain, before and after an on-demand DKG, and that a
// key generated through one front is visible and usable through the
// other on every node.
func TestKeyListsAgreeAcrossImplementations(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nodes := nodeDeployment(t)

	srv := httptest.NewServer(nodes[0].Handler())
	t.Cleanup(srv.Close)
	remote := client.New(srv.URL)
	fronts := []thetacrypt.Service{nodes[0], remote}

	baseline, err := nodes[0].Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fronts {
		got, err := f.Keys(ctx)
		if err != nil {
			t.Fatal(err)
		}
		info, err := f.Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeyLists(got, baseline) || !sameKeyLists(info.Keys, baseline) {
			t.Fatalf("front %d keychain diverges: %+v vs %+v", i, got, baseline)
		}
	}

	// Generate through the REMOTE front; observe through both.
	kh, err := remote.GenerateKey(ctx, schemes.CKS05, api.GenerateKeyOptions{KeyID: "agreed"})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := remote.Wait(ctx, kh)
	if err != nil {
		t.Fatal(err)
	}
	if kres.Err != nil || string(kres.Value) != "agreed" {
		t.Fatalf("keygen result: %+v", kres)
	}
	// Every node of the deployment landed the same key ID and public
	// key (the DKG agreement property, end to end over TCP).
	deadline := time.Now().Add(10 * time.Second)
	var ref thetacrypt.KeyInfo
	for i, node := range nodes {
		for {
			ks, err := node.Keys(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var got *thetacrypt.KeyInfo
			for j := range ks {
				if ks[j].Scheme == string(schemes.CKS05) && ks[j].KeyID == "agreed" {
					got = &ks[j]
				}
			}
			if got != nil {
				if i == 0 {
					ref = *got
				} else if !bytes.Equal(got.PublicKey, ref.PublicKey) {
					t.Fatalf("node %d landed a different public key", i+1)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never installed the generated key", i+1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// ...and the key is usable through the in-process front at once.
	coin, err := thetacrypt.Execute(ctx, nodes[0], thetacrypt.Request{
		Scheme: schemes.CKS05, KeyID: "agreed", Op: thetacrypt.OpCoin, Payload: []byte("agreed-coin"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(coin) == 0 {
		t.Fatal("empty coin under generated key")
	}
	// The remote front sees the grown keychain identically.
	after, err := nodes[0].Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rgot, err := remote.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeyLists(after, rgot) {
		t.Fatalf("post-keygen keychains diverge: %+v vs %+v", after, rgot)
	}
}
