package thetacrypt_test

// Conformance: the same application code runs against every Service
// implementation — the embedded Cluster and the remote client SDK over
// the /v2 HTTP endpoints — exercising submit, wait, batch, idempotent
// re-submission, the scheme API, and structured errors identically.

import (
	"context"
	"crypto/rand"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/service"
)

// remoteService stands up a 4-node Θ-network with HTTP front ends and
// returns the SDK client of node 1.
func remoteService(t *testing.T) thetacrypt.Service {
	t.Helper()
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, memnet.Options{})
	var first thetacrypt.Service
	for i := 0; i < n; i++ {
		engine := orchestration.New(orchestration.Config{
			Keys: keys.NewManager(nodes[i]),
			Net:  hub.Endpoint(i + 1),
		})
		srv := httptest.NewServer(service.NewServer(engine, nodes[i]))
		if i == 0 {
			first = client.New(srv.URL)
		}
		t.Cleanup(srv.Close)
		t.Cleanup(engine.Stop)
	}
	t.Cleanup(hub.Close)
	return first
}

func embeddedService(t *testing.T) thetacrypt.Service {
	t.Helper()
	cluster, err := thetacrypt.NewCluster(1, 4, thetacrypt.ClusterOptions{
		Schemes: []thetacrypt.SchemeID{thetacrypt.SG02, thetacrypt.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// exercise is the application code written once against the interface.
func exercise(t *testing.T, svc thetacrypt.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	info, err := svc.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 4 || info.T != 1 || len(info.Schemes) != 2 {
		t.Fatalf("info: %+v", info)
	}

	// Scheme API + protocol API round-trip.
	secret := []byte("interface-portable secret")
	ct, err := svc.Encrypt(ctx, thetacrypt.SG02, secret, []byte("L"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.SG02, Op: thetacrypt.OpDecrypt, Payload: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(secret) {
		t.Fatalf("decrypted %q", plain)
	}

	// Batch submission with order-preserving results.
	reqs := make([]thetacrypt.Request, 6)
	for i := range reqs {
		reqs[i] = thetacrypt.Request{
			Scheme: thetacrypt.CKS05, Op: thetacrypt.OpCoin,
			Payload: []byte(fmt.Sprintf("conf-coin-%d", i)),
		}
	}
	hs, err := svc.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := api.WaitAll(ctx, svc, hs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil || len(res.Value) == 0 {
			t.Fatalf("batch result %d: %+v", i, res)
		}
		if res.InstanceID != hs[i].InstanceID {
			t.Fatalf("result %d out of order", i)
		}
	}

	// Idempotent re-submission: the same request yields the same handle
	// and resolves to the same finished result.
	again, err := svc.Submit(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if again.InstanceID != hs[0].InstanceID {
		t.Fatalf("re-submission changed handles: %s != %s", again.InstanceID, hs[0].InstanceID)
	}
	res, err := svc.Wait(ctx, again)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || string(res.Value) != string(results[0].Value) {
		t.Fatalf("re-submission diverged: %+v", res)
	}

	// Structured errors carry the same codes on every implementation.
	if _, err := svc.Submit(ctx, thetacrypt.Request{
		Scheme: "NOPE", Op: thetacrypt.OpSign, Payload: []byte("x"),
	}); api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("unknown scheme: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Encrypt(ctx, thetacrypt.CKS05, []byte("x"), nil); api.CodeOf(err) != api.CodeSchemeNotCipher {
		t.Fatalf("non-cipher encrypt: got %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := svc.Encrypt(ctx, thetacrypt.BZ03, []byte("x"), nil); api.CodeOf(err) != api.CodeSchemeNoKeys {
		t.Fatalf("no-keys encrypt: got %v (code %s)", err, api.CodeOf(err))
	}
}

func TestServiceConformanceEmbedded(t *testing.T) {
	exercise(t, embeddedService(t))
}

func TestServiceConformanceRemote(t *testing.T) {
	exercise(t, remoteService(t))
}
