// Package client is the typed Go SDK for a remote Thetacrypt
// deployment. It speaks the /v2 HTTP API — batch submission, long-poll
// and SSE result streaming, structured errors — and implements
// api.Service, so applications written against the interface swap
// between an embedded thetacrypt.Cluster and a remote node by changing
// one constructor call.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// pollWindow is the server-side long-poll window requested per result
// round-trip when the caller's context does not impose a tighter one.
const pollWindow = 30 * time.Second

// Overload retry defaults: a submission rejected with HTTP 429
// (api.CodeOverloaded) is retried with exponential backoff, since the
// server guarantees a rejected submission had no effect.
const (
	defaultRetryAttempts = 4
	defaultRetryBase     = 50 * time.Millisecond
	maxRetryDelay        = 2 * time.Second
)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, instrumentation). The client must tolerate long-running
// requests: result waits hold connections open up to the poll window.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry tunes the overload retry policy: up to attempts re-issues
// of a submission rejected with api.CodeOverloaded, starting at base
// delay and doubling per attempt. attempts = 0 disables retries and
// surfaces the 429 to the caller.
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) {
		c.retryAttempts = attempts
		c.retryBase = base
	}
}

// Client talks to one node's service layer, e.g.
// client.New("http://127.0.0.1:8081").
type Client struct {
	base          string
	hc            *http.Client
	retryAttempts int
	retryBase     time.Duration
	trips         atomic.Int64
}

// New targets a node's service endpoint.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		// No global timeout: waits are bounded by contexts and the
		// server's poll window, not by a transport-wide cutoff.
		hc:            &http.Client{},
		retryAttempts: defaultRetryAttempts,
		retryBase:     defaultRetryBase,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// retryOverload runs fn, re-issuing it with exponential backoff while
// it fails with api.CodeOverloaded (the server sheds load before any
// state is created, so the re-issue is safe). Any other outcome is
// returned as is.
func (c *Client) retryOverload(ctx context.Context, fn func() error) error {
	delay := c.retryBase
	if delay <= 0 {
		delay = defaultRetryBase
	}
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || api.CodeOf(err) != api.CodeOverloaded || attempt >= c.retryAttempts {
			return err
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		delay = min(2*delay, maxRetryDelay)
	}
}

var (
	_ api.Service     = (*Client)(nil)
	_ api.BatchWaiter = (*Client)(nil)
	_ api.EachWaiter  = (*Client)(nil)
)

// RoundTrips reports the number of HTTP requests issued so far; the
// benchmark harness uses it to demonstrate batch amortization.
func (c *Client) RoundTrips() int64 { return c.trips.Load() }

// BaseURL returns the service endpoint this client targets.
func (c *Client) BaseURL() string { return c.base }

// do issues one HTTP request and decodes a JSON response, mapping
// non-2xx bodies to *api.Error.
func (c *Client) do(req *http.Request, out any) error {
	c.trips.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var body api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != nil {
		return body.Error
	}
	return api.Errf(api.CodeInternal, "unexpected response %s", resp.Status)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// items converts requests to wire form, propagating the caller's
// context deadline as the per-request deadline on every item.
func items(ctx context.Context, reqs []protocols.Request) []api.SubmitItem {
	var timeoutMS int64
	if d, ok := ctx.Deadline(); ok {
		timeoutMS = max(time.Until(d).Milliseconds(), 1)
	}
	out := make([]api.SubmitItem, len(reqs))
	for i, req := range reqs {
		out[i] = api.Item(req)
		out[i].TimeoutMS = timeoutMS
	}
	return out
}

// SubmitDetailed submits a batch and returns the raw per-item entries,
// including idempotent-duplicate flags and per-item errors. Most
// callers use Submit or SubmitBatch. An overloaded node (HTTP 429) is
// retried with backoff per the client's retry policy before the error
// surfaces.
func (c *Client) SubmitDetailed(ctx context.Context, reqs []protocols.Request) ([]api.SubmitEntry, error) {
	var out api.SubmitBatchResponse
	err := c.retryOverload(ctx, func() error {
		out = api.SubmitBatchResponse{}
		return c.postJSON(ctx, "/v2/protocol/submit", api.SubmitBatchRequest{Requests: items(ctx, reqs)}, &out)
	})
	if err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, api.Errf(api.CodeInternal, "submit returned %d entries for %d requests", len(out.Results), len(reqs))
	}
	return out.Results, nil
}

// Submit starts one protocol instance.
func (c *Client) Submit(ctx context.Context, req protocols.Request) (api.Handle, error) {
	hs, err := c.SubmitBatch(ctx, []protocols.Request{req})
	if err != nil {
		return api.Handle{}, err
	}
	return hs[0], nil
}

// SubmitBatch starts 1..N instances in one round-trip. Any rejected
// item fails the call; use SubmitDetailed for partial acceptance.
func (c *Client) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]api.Handle, error) {
	entries, err := c.SubmitDetailed(ctx, reqs)
	if err != nil {
		return nil, err
	}
	hs := make([]api.Handle, len(entries))
	for i, e := range entries {
		if e.Error != nil {
			return nil, fmt.Errorf("client: request %d rejected: %w", i, e.Error)
		}
		hs[i] = api.Handle{InstanceID: e.InstanceID}
	}
	return hs, nil
}

// resultsURL builds the results query for one poll round.
func (c *Client) resultsURL(ctx context.Context, ids []string, stream bool) string {
	window := pollWindow
	if d, ok := ctx.Deadline(); ok {
		window = min(window, max(time.Until(d), time.Millisecond))
	}
	q := url.Values{}
	q.Set("ids", strings.Join(ids, ","))
	q.Set("timeout_ms", strconv.FormatInt(window.Milliseconds(), 10))
	if stream {
		q.Set("stream", "1")
	}
	return c.base + "/v2/protocol/results?" + q.Encode()
}

// Wait long-polls until the instance is final or ctx expires. Instance
// failures and expired per-request deadlines are reported inside the
// Result (Result.Err); transport failures and the caller's own deadline
// surface as the second return value.
func (c *Client) Wait(ctx context.Context, h api.Handle) (api.Result, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.resultsURL(ctx, []string{h.InstanceID}, false), nil)
		if err != nil {
			return api.Result{}, err
		}
		var out api.ResultsResponse
		if err := c.do(req, &out); err != nil {
			return api.Result{}, err
		}
		for _, entry := range out.Results {
			if entry.InstanceID == h.InstanceID && (entry.Done || entry.Error != nil) {
				return entry.Result(), nil
			}
		}
		// Poll window elapsed with the instance still pending.
		if err := ctx.Err(); err != nil {
			return api.Result{}, err
		}
	}
}

// WaitBatch streams all results over a single SSE connection (one
// round-trip per stream window instead of one per instance), returning
// them in handle order.
func (c *Client) WaitBatch(ctx context.Context, hs []api.Handle) ([]api.Result, error) {
	results := make([]api.Result, len(hs))
	err := c.WaitEach(ctx, hs, func(i int, res api.Result) { results[i] = res })
	if err != nil {
		return nil, err
	}
	return results, nil
}

// WaitEach streams results over the same SSE connection as WaitBatch
// but hands each one to fn the moment its entry arrives, in completion
// order — per-request completion times are observable instead of being
// flattened to the batch's wall clock.
func (c *Client) WaitEach(ctx context.Context, hs []api.Handle, fn func(i int, res api.Result)) error {
	// The same handle may appear several times (idempotent duplicates);
	// every final entry fires fn for all its positions.
	pending := make(map[string][]int, len(hs))
	for i, h := range hs {
		pending[h.InstanceID] = append(pending[h.InstanceID], i)
	}
	for len(pending) > 0 {
		ids := make([]string, 0, len(pending))
		for id := range pending {
			ids = append(ids, id)
		}
		if err := c.streamOnce(ctx, ids, func(entry api.ResultEntry) {
			for _, i := range pending[entry.InstanceID] {
				fn(i, entry.Result())
			}
			delete(pending, entry.InstanceID)
		}); err != nil {
			return err
		}
		if len(pending) > 0 {
			// Stream window closed with instances still pending.
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// streamOnce consumes one SSE results stream, invoking fn per final
// entry, until the server closes the window or ctx expires.
func (c *Client) streamOnce(ctx context.Context, ids []string, fn func(api.ResultEntry)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.resultsURL(ctx, ids, true), nil)
	if err != nil {
		return err
	}
	c.trips.Add(1)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // comments / blank keep-alive lines
		}
		var entry api.ResultEntry
		if err := json.Unmarshal([]byte(data), &entry); err != nil {
			return api.Errf(api.CodeInternal, "bad stream entry: %v", err)
		}
		fn(entry)
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil && err != io.ErrUnexpectedEOF {
		return err
	}
	return nil
}

// Encrypt calls the scheme API's local encryption at the remote node;
// the empty keyID selects the scheme's default key.
func (c *Client) Encrypt(ctx context.Context, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error) {
	var out api.EncryptResponse
	err := c.postJSON(ctx, "/v2/scheme/encrypt", api.EncryptRequest{
		Scheme: string(scheme), KeyID: keyID, Message: message, Label: label,
	}, &out)
	if err != nil {
		return nil, err
	}
	return out.Ciphertext, nil
}

// Info fetches deployment metadata.
func (c *Client) Info(ctx context.Context) (api.Info, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/info", nil)
	if err != nil {
		return api.Info{}, err
	}
	var out api.InfoResponse
	if err := c.do(req, &out); err != nil {
		return api.Info{}, err
	}
	return out.Info(), nil
}

// Keys lists the remote node's keychain (GET /v2/keys).
func (c *Client) Keys(ctx context.Context) ([]api.KeyInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/keys", nil)
	if err != nil {
		return nil, err
	}
	var out api.KeysResponse
	if err := c.do(req, &out); err != nil {
		return nil, err
	}
	return out.Keys, nil
}

// Key resolves one named key of the remote keychain without
// transferring the whole listing (GET /v2/keys/{scheme}/{id}); the
// empty keyID selects the scheme's default key. A missing key reports
// CodeKeyUnknown (api.KeyFetcher).
func (c *Client) Key(ctx context.Context, scheme schemes.ID, keyID string) (api.KeyInfo, error) {
	if keyID == "" {
		keyID = keys.DefaultKeyID
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v2/keys/"+url.PathEscape(string(scheme))+"/"+url.PathEscape(keyID), nil)
	if err != nil {
		return api.KeyInfo{}, err
	}
	var out api.KeyResponse
	if err := c.do(req, &out); err != nil {
		return api.KeyInfo{}, err
	}
	return out.Key, nil
}

// GenerateKey starts a distributed key generation at the remote
// deployment (POST /v2/keys) and returns the keygen instance's handle;
// waiting on it yields the new key's ID as the result value. An
// overloaded node is retried with backoff like a submission.
func (c *Client) GenerateKey(ctx context.Context, scheme schemes.ID, opts api.GenerateKeyOptions) (api.Handle, error) {
	var out api.GenerateKeyResponse
	err := c.retryOverload(ctx, func() error {
		out = api.GenerateKeyResponse{}
		return c.postJSON(ctx, "/v2/keys", api.GenerateKeyRequest{
			Scheme: string(scheme), KeyID: opts.KeyID, Group: opts.Group,
		}, &out)
	})
	if err != nil {
		return api.Handle{}, err
	}
	return api.Handle{InstanceID: out.InstanceID}, nil
}

// ReshareKey starts a live resharing of a named key at the remote
// deployment (POST /v2/keys/{id}/reshare) and returns the reshare
// instance's handle; waiting on it yields the key's new epoch in
// decimal. The empty keyID selects the scheme's default key. An
// overloaded node is retried with backoff like a submission.
func (c *Client) ReshareKey(ctx context.Context, scheme schemes.ID, keyID string, opts api.ReshareOptions) (api.Handle, error) {
	if keyID == "" {
		keyID = keys.DefaultKeyID
	}
	var out api.ReshareKeyResponse
	err := c.retryOverload(ctx, func() error {
		out = api.ReshareKeyResponse{}
		return c.postJSON(ctx, "/v2/keys/"+url.PathEscape(keyID)+"/reshare", api.ReshareKeyRequest{
			Scheme: string(scheme), NewT: opts.NewT, Members: opts.Members,
		}, &out)
	})
	if err != nil {
		return api.Handle{}, err
	}
	return api.Handle{InstanceID: out.InstanceID}, nil
}
