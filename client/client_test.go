package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// overloadedThen answers the first n submissions with HTTP 429 and the
// structured overloaded code, then accepts.
func overloadedThen(n int32, calls *atomic.Int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) <= n {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{
				Error: api.Errf(api.CodeOverloaded, "event queue full"),
			})
			return
		}
		_ = json.NewEncoder(w).Encode(api.SubmitBatchResponse{
			Results: []api.SubmitEntry{{InstanceID: "inst-1"}},
		})
	})
}

func req() protocols.Request {
	return protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("x")}
}

// TestSubmitRetriesOverload: the SDK re-issues a 429'd submission with
// backoff until the node admits it.
func TestSubmitRetriesOverload(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(overloadedThen(2, &calls))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL, client.WithRetry(4, time.Millisecond))

	h, err := cl.Submit(context.Background(), req())
	if err != nil {
		t.Fatalf("submit with retry: %v", err)
	}
	if h.InstanceID != "inst-1" {
		t.Fatalf("handle %+v", h)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d submissions, want 3 (2 rejected + 1 admitted)", got)
	}
	if cl.RoundTrips() != 3 {
		t.Fatalf("round-trip counter %d, want 3", cl.RoundTrips())
	}
}

// TestSubmitRetryDisabledSurfaces429: attempts=0 turns the policy off
// and the structured overloaded error reaches the caller on the first
// rejection.
func TestSubmitRetryDisabledSurfaces429(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(overloadedThen(100, &calls))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL, client.WithRetry(0, 0))

	_, err := cl.Submit(context.Background(), req())
	if api.CodeOf(err) != api.CodeOverloaded {
		t.Fatalf("got %v (code %s), want %s", err, api.CodeOf(err), api.CodeOverloaded)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d submissions, want exactly 1", calls.Load())
	}
}

// TestSubmitRetryExhaustion: a persistently overloaded node surfaces
// the overloaded error after the configured attempts, not an infinite
// loop.
func TestSubmitRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(overloadedThen(100, &calls))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL, client.WithRetry(3, time.Millisecond))

	_, err := cl.Submit(context.Background(), req())
	if api.CodeOf(err) != api.CodeOverloaded {
		t.Fatalf("got %v, want overloaded after exhaustion", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("server saw %d submissions, want 4 (1 + 3 retries)", calls.Load())
	}
}

// TestSubmitRetryHonorsContext: cancellation during backoff wins over
// further retries.
func TestSubmitRetryHonorsContext(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(overloadedThen(100, &calls))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL, client.WithRetry(10, 50*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Submit(ctx, req())
	if err == nil {
		t.Fatal("submit succeeded against an always-overloaded node")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("retry loop outlived its context")
	}
}
