// Package thetacrypt is the public facade of the Thetacrypt
// reproduction: a distributed service for threshold cryptography
// on-demand. It re-exports the request vocabulary of the protocol API
// and provides two integration styles, mirroring the paper's dual API:
//
//   - Cluster: an embedded in-process Θ-network (simulated transport)
//     for applications, tests, and the examples/ programs.
//   - Node: one member of a real deployment over TCP, exposing the
//     HTTP service layer (used by cmd/thetacrypt).
//
// Low-level scheme access (the paper's scheme API) is available through
// the re-exported key material: sg02/bz03 ciphertexts can be created
// with Cluster.Encrypt, signatures verified with the scheme packages.
package thetacrypt

import (
	"context"
	"crypto/rand"
	"fmt"
	"time"

	"thetacrypt/internal/group"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/network/tcpnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/service"
)

// Re-exported request vocabulary.
type (
	// Request is a threshold operation request.
	Request = protocols.Request
	// Operation selects sign, decrypt, or coin.
	Operation = protocols.Operation
	// SchemeID identifies one of the six schemes.
	SchemeID = schemes.ID
	// Result is a finished operation's outcome.
	Result = orchestration.Result
	// Future resolves to a Result.
	Future = orchestration.Future
	// NodeKeys is the per-node key material produced by the dealer.
	NodeKeys = keys.NodeKeys
)

// Operations.
const (
	OpSign    = protocols.OpSign
	OpDecrypt = protocols.OpDecrypt
	OpCoin    = protocols.OpCoin
)

// Scheme identifiers (Table 1).
const (
	SG02  = schemes.SG02
	BZ03  = schemes.BZ03
	SH00  = schemes.SH00
	BLS04 = schemes.BLS04
	KG20  = schemes.KG20
	CKS05 = schemes.CKS05
)

// ClusterOptions configures an embedded cluster.
type ClusterOptions struct {
	// Schemes to deal keys for; empty means all six.
	Schemes []SchemeID
	// RSABits for SH00 (default 2048). Fixture keys are used so cluster
	// startup stays fast; see keys.Options.
	RSABits int
	// Latency is the simulated one-way network delay between nodes.
	Latency time.Duration
}

// Cluster is an embedded in-process Θ-network of n nodes.
type Cluster struct {
	nodes   []*keys.NodeKeys
	engines []*orchestration.Engine
	hub     *memnet.Hub
}

// NewCluster deals fresh keys and starts n in-process nodes with
// threshold t (any t+1 cooperate, up to t may be corrupted).
func NewCluster(t, n int, opts ClusterOptions) (*Cluster, error) {
	nodes, err := keys.Deal(rand.Reader, t, n, keys.Options{
		Schemes:       opts.Schemes,
		RSABits:       opts.RSABits,
		UseRSAFixture: true,
	})
	if err != nil {
		return nil, fmt.Errorf("thetacrypt: deal keys: %w", err)
	}
	var latency memnet.LatencyFunc
	if opts.Latency > 0 {
		latency = memnet.Uniform(opts.Latency)
	}
	hub := memnet.NewHub(n, memnet.Options{Latency: latency})
	engines := make([]*orchestration.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = orchestration.New(orchestration.Config{
			Keys: keys.NewManager(nodes[i]),
			Net:  hub.Endpoint(i + 1),
		})
	}
	return &Cluster{nodes: nodes, engines: engines, hub: hub}, nil
}

// Close stops all nodes.
func (c *Cluster) Close() {
	for _, e := range c.engines {
		e.Stop()
	}
	c.hub.Close()
}

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.nodes) }

// Keys returns node i's key material (1-indexed); the public parts serve
// as the scheme API.
func (c *Cluster) Keys(i int) *NodeKeys { return c.nodes[i-1] }

// Submit starts a threshold operation at node i (1-indexed).
func (c *Cluster) Submit(ctx context.Context, i int, req Request) (*Future, error) {
	return c.engines[i-1].Submit(ctx, req)
}

// Execute submits at node 1 and waits for the result.
func (c *Cluster) Execute(ctx context.Context, req Request) ([]byte, error) {
	f, err := c.Submit(ctx, 1, req)
	if err != nil {
		return nil, err
	}
	res, err := f.Wait(ctx)
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Value, nil
}

// Encrypt creates a threshold ciphertext under the cluster's public key
// (scheme API; SG02 or BZ03).
func (c *Cluster) Encrypt(scheme SchemeID, message, label []byte) ([]byte, error) {
	switch scheme {
	case SG02:
		ct, err := sg02.Encrypt(rand.Reader, c.nodes[0].SG02PK, message, label)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	case BZ03:
		ct, err := bz03.Encrypt(rand.Reader, c.nodes[0].BZ03PK, message, label)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	default:
		return nil, fmt.Errorf("thetacrypt: scheme %q is not a cipher", scheme)
	}
}

// DefaultGroup returns the group used by the DL-based schemes.
func DefaultGroup() group.Group { return group.Edwards25519() }

// NodeConfig configures a standalone deployment member.
type NodeConfig struct {
	// Keys is this node's material (from cmd/thetakeygen or keys.Deal).
	Keys *NodeKeys
	// ListenAddr is the P2P listen address.
	ListenAddr string
	// Peers maps node index to P2P address for all other nodes.
	Peers map[int]string
}

// Node is one standalone Thetacrypt service node over TCP.
type Node struct {
	engine    *orchestration.Engine
	transport *tcpnet.Transport
	handler   *service.Server
}

// NewNode starts the network transport and orchestration engine.
func NewNode(cfg NodeConfig) (*Node, error) {
	transport, err := tcpnet.New(tcpnet.Config{
		Self:       cfg.Keys.Index,
		ListenAddr: cfg.ListenAddr,
		Peers:      cfg.Peers,
	})
	if err != nil {
		return nil, fmt.Errorf("thetacrypt: transport: %w", err)
	}
	engine := orchestration.New(orchestration.Config{
		Keys: keys.NewManager(cfg.Keys),
		Net:  transport,
	})
	return &Node{
		engine:    engine,
		transport: transport,
		handler:   service.NewServer(engine, cfg.Keys),
	}, nil
}

// Handler returns the HTTP handler of the service layer.
func (n *Node) Handler() *service.Server { return n.handler }

// Submit starts a threshold operation locally.
func (n *Node) Submit(ctx context.Context, req Request) (*Future, error) {
	return n.engine.Submit(ctx, req)
}

// Close stops the node.
func (n *Node) Close() {
	n.engine.Stop()
	_ = n.transport.Close()
}
