// Package thetacrypt is the public facade of the Thetacrypt
// reproduction: a distributed service for threshold cryptography
// on-demand. It re-exports the request vocabulary of the protocol API
// and provides two integration styles, mirroring the paper's dual API:
//
//   - Cluster: an embedded in-process Θ-network (simulated transport)
//     for applications, tests, and the examples/ programs.
//   - Node: one member of a real deployment over TCP, exposing the
//     HTTP service layer (used by cmd/thetacrypt).
//
// Low-level scheme access (the paper's scheme API) is available through
// the re-exported key material: sg02/bz03 ciphertexts can be created
// with Cluster.Encrypt, signatures verified with the scheme packages.
package thetacrypt

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/committee"
	"thetacrypt/internal/group"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/network/securelink"
	"thetacrypt/internal/network/tcpnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/router"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/service"
)

// Re-exported request vocabulary (API v2; see package api).
type (
	// Request is a threshold operation request.
	Request = protocols.Request
	// Operation selects sign, decrypt, or coin.
	Operation = protocols.Operation
	// SchemeID identifies one of the six schemes.
	SchemeID = schemes.ID
	// Service is the one client-facing interface over every deployment
	// style: Cluster and Node here, client.Client for remote access.
	Service = api.Service
	// Handle identifies a submitted protocol instance.
	Handle = api.Handle
	// Result is a finished operation's outcome.
	Result = api.Result
	// ServiceInfo describes a deployment endpoint.
	ServiceInfo = api.Info
	// EngineStats is a node's engine snapshot: instance lifecycle and
	// flow control counters.
	EngineStats = api.EngineStats
	// CryptoStats is the precompute layer's snapshot inside EngineStats:
	// Lagrange cache hit rate, verification batching, FROST nonce pool.
	CryptoStats = api.CryptoStats
	// TransportStats is the per-peer health snapshot of a node's P2P
	// links (state, queue depth, send/drop counters).
	TransportStats = api.TransportStats
	// PeerStats is one peer link's health inside TransportStats.
	PeerStats = api.PeerStats
	// QueuePolicy selects what a send does when a peer's bounded
	// outbound queue is full (see PolicyBlock, PolicyDropOldest,
	// PolicyFailFast).
	QueuePolicy = network.QueuePolicy
	// Future resolves to a raw engine result (embedded deployments
	// only; the Service interface uses Wait).
	Future = orchestration.Future
	// Keystore is a node's keychain: named keys addressed by
	// (scheme, key ID), dealt offline or generated at runtime.
	Keystore = keys.Keystore
	// Key is one named key of a keystore.
	Key = keys.Key
	// KeyInfo describes one named key in listings (Service.Keys, Info).
	KeyInfo = api.KeyInfo
	// GenerateKeyOptions configures Service.GenerateKey.
	GenerateKeyOptions = api.GenerateKeyOptions
	// ReshareOptions configures Service.ReshareKey: the new threshold
	// and committee of a live resharing.
	ReshareOptions = api.ReshareOptions
)

// DefaultKeyID names the key a request without an explicit KeyID
// resolves to.
const DefaultKeyID = keys.DefaultKeyID

// PublicKeyOf resolves a named key's public material, typed — e.g.
// PublicKeyOf[*frost.PublicKey](ks, KG20, ""). The empty key ID
// selects the scheme's default key.
func PublicKeyOf[P any](ks *Keystore, scheme SchemeID, keyID string) (P, error) {
	return keys.Public[P](ks, scheme, keyID)
}

// Execute submits one request against any Service and waits for its
// value.
func Execute(ctx context.Context, s Service, req Request) ([]byte, error) {
	return api.Execute(ctx, s, req)
}

// ExecuteBatch submits a batch against any Service and waits for all
// results, in request order.
func ExecuteBatch(ctx context.Context, s Service, reqs []Request) ([]Result, error) {
	return api.ExecuteBatch(ctx, s, reqs)
}

// Operations.
const (
	OpSign    = protocols.OpSign
	OpDecrypt = protocols.OpDecrypt
	OpCoin    = protocols.OpCoin
	OpKeyGen  = protocols.OpKeyGen
	OpReshare = protocols.OpReshare
)

// Scheme identifiers (Table 1).
const (
	SG02  = schemes.SG02
	BZ03  = schemes.BZ03
	SH00  = schemes.SH00
	BLS04 = schemes.BLS04
	KG20  = schemes.KG20
	CKS05 = schemes.CKS05
)

// Full-queue policies for the per-peer outbound queues.
const (
	// PolicyBlock waits for queue space, bounded by the send context
	// (the default: lossless backpressure).
	PolicyBlock = network.PolicyBlock
	// PolicyDropOldest evicts the oldest queued frame to admit the new
	// one; sends never block or fail.
	PolicyDropOldest = network.PolicyDropOldest
	// PolicyFailFast rejects the new frame with a typed backlog error;
	// sends never block.
	PolicyFailFast = network.PolicyFailFast
)

// ParseQueuePolicy maps "block", "drop-oldest", or "fail-fast" onto a
// QueuePolicy (empty selects PolicyBlock).
func ParseQueuePolicy(s string) (QueuePolicy, error) { return network.ParseQueuePolicy(s) }

// TransportOptions tunes the per-peer outbound pipeline of a node's
// P2P transport: queue capacity, full-queue policy, the reliability
// (seq/ack) layer, and (for TCP deployments) the background dial
// backoff. Zero values select the transport defaults (queue 1024,
// PolicyBlock, ack window 1024, ack interval 25ms, resend 500ms, 250ms
// initial backoff doubling to 4s).
type TransportOptions struct {
	// OutQueueLen bounds each peer's outbound queue, in frames.
	OutQueueLen int
	// Policy selects the full-queue behavior.
	Policy QueuePolicy
	// AckWindow bounds the unacknowledged frames the reliability layer
	// retains per peer link for resend-on-reconnect; a full window is
	// resolved by Policy.
	AckWindow int
	// AckInterval coalesces standalone delivery acknowledgements and
	// paces the resend scan.
	AckInterval time.Duration
	// ResendTimeout is how long a frame stays unacknowledged before it
	// is retransmitted.
	ResendTimeout time.Duration
	// DialRetry is the initial reconnect backoff (TCP deployments).
	DialRetry time.Duration
	// DialBackoffMax caps the exponential backoff (TCP deployments).
	DialBackoffMax time.Duration
}

// EngineOptions tunes each node's orchestration engine: worker count,
// event-queue admission control, and the finished-instance retention
// window. Zero values select the engine defaults (1 worker, queue 4096,
// 2 minute TTL, 4096 retained instances).
type EngineOptions struct {
	// Workers is the number of event-processing goroutines per node.
	Workers int
	// QueueLen bounds the event queue; a full queue rejects submissions
	// with an overloaded error (HTTP 429 on the service layer) instead
	// of blocking.
	QueueLen int
	// RetainTTL is how long finished results stay retrievable before
	// eviction; later queries report an expired error.
	RetainTTL time.Duration
	// RetainMax caps retained finished instances (oldest evicted
	// first), bounding node memory under sustained load.
	RetainMax int
	// SendTimeout bounds each protocol round broadcast onto the
	// transport (default 5s); it only bites when a block-policy peer
	// queue is saturated.
	SendTimeout time.Duration
	// RefreshInterval enables scheduled proactive refresh: every
	// interval, the node submits a same-committee resharing for each
	// reshareable key, advancing its epoch without changing the public
	// key. All nodes of a deployment should use the same interval; the
	// submissions are idempotent, so overlapping schedules join the
	// same instances. Zero disables the schedule.
	RefreshInterval time.Duration
	// FrostPoolDepth enables the FROST preprocessed nonce pool: each
	// KG20 key banks this many commitment slots per epoch off the
	// critical path, making online signing a single message round while
	// the pool is warm. All nodes of a deployment must use the same
	// setting. Zero disables pooling (classic two-round signing).
	FrostPoolDepth int
	// FrostPoolRefill is the pool's low-water mark (default
	// FrostPoolDepth/2): dropping below it schedules a refill run.
	FrostPoolRefill int
}

// engineConfig merges the options into an engine config.
func (o EngineOptions) engineConfig(cfg orchestration.Config) orchestration.Config {
	cfg.Workers = o.Workers
	cfg.QueueLen = o.QueueLen
	cfg.RetainTTL = o.RetainTTL
	cfg.RetainMax = o.RetainMax
	cfg.SendTimeout = o.SendTimeout
	cfg.RefreshInterval = o.RefreshInterval
	cfg.FrostPoolDepth = o.FrostPoolDepth
	cfg.FrostPoolRefill = o.FrostPoolRefill
	return cfg
}

// ClusterOptions configures an embedded cluster.
type ClusterOptions struct {
	// Schemes to deal keys for; empty means all six.
	Schemes []SchemeID
	// RSABits for SH00 (default 2048). Fixture keys are used so cluster
	// startup stays fast; see keys.Options.
	RSABits int
	// KeyID names the dealt keys; empty selects DefaultKeyID. Sharded
	// deployments give each committee distinct key names so the router's
	// placement map spreads traffic instead of shadowing duplicates.
	KeyID string
	// Latency is the simulated one-way network delay between nodes.
	Latency time.Duration
	// Engine tunes every node's orchestration engine (flow control and
	// instance retention).
	Engine EngineOptions
	// Transport tunes the simulated per-peer outbound queues (capacity
	// and full-queue policy; the dial fields do not apply in-process).
	Transport TransportOptions
	// Secure switches the cluster to the authenticated mesh: each node
	// gets a fresh transport identity, the simulated hub enforces the
	// shared roster (mirroring tcpnet's handshake semantics), and
	// DKG/reshare dealings ride per-recipient sealed boxes with
	// complaint rounds instead of plaintext sub-shares.
	Secure bool
}

// Cluster is an embedded in-process Θ-network of n nodes: one
// committee.Committee behind the facade's option types.
type Cluster struct {
	com *committee.Committee
}

// NewCluster deals fresh keys and starts n in-process nodes with
// threshold t (any t+1 cooperate, up to t may be corrupted).
func NewCluster(t, n int, opts ClusterOptions) (*Cluster, error) {
	com, err := committee.New(t, n, committee.Config{
		Schemes: opts.Schemes,
		RSABits: opts.RSABits,
		KeyID:   opts.KeyID,
		Latency: opts.Latency,
		Engine:  opts.Engine.engineConfig,
		Net: memnet.Options{
			OutQueueLen:   opts.Transport.OutQueueLen,
			Policy:        opts.Transport.Policy,
			AckWindow:     opts.Transport.AckWindow,
			AckInterval:   opts.Transport.AckInterval,
			ResendTimeout: opts.Transport.ResendTimeout,
		},
		Secure: opts.Secure,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{com: com}, nil
}

// Close stops all nodes.
func (c *Cluster) Close() { c.com.Close() }

// N returns the cluster size.
func (c *Cluster) N() int { return c.com.N() }

// KeystoreAt returns node i's keystore (1-indexed); the public parts
// serve as the scheme API.
func (c *Cluster) KeystoreAt(i int) *Keystore { return c.com.UnitAt(i).Store }

// Cluster implements the unified Service interface.
var _ Service = (*Cluster)(nil)

// SubmitAt starts a threshold operation at node i (1-indexed) and
// returns its raw engine future — embedded-only access for tests and
// fault-injection scenarios. Applications use the Service methods.
func (c *Cluster) SubmitAt(ctx context.Context, i int, req Request) (*Future, error) {
	u := c.com.UnitAt(i)
	if e := api.ValidateRequest(req); e != nil {
		return nil, e
	}
	if e := api.CheckRequestKey(u.Store, req); e != nil {
		return nil, e
	}
	return u.Engine.Submit(ctx, req)
}

// Submit starts a threshold operation at node 1 (Service interface).
func (c *Cluster) Submit(ctx context.Context, req Request) (Handle, error) {
	return c.com.Submit(ctx, req)
}

// SubmitBatch starts 1..N operations with a single engine hand-off,
// amortizing dispatch across the batch. Invalid requests fail the whole
// call (the engine is never reached).
func (c *Cluster) SubmitBatch(ctx context.Context, reqs []Request) ([]Handle, error) {
	return c.com.SubmitBatch(ctx, reqs)
}

// Wait blocks until the instance finishes or ctx expires.
func (c *Cluster) Wait(ctx context.Context, h Handle) (Result, error) {
	return c.com.Wait(ctx, h)
}

// Execute submits at node 1 and waits for the result.
func (c *Cluster) Execute(ctx context.Context, req Request) ([]byte, error) {
	return api.Execute(ctx, c, req)
}

// Encrypt creates a threshold ciphertext under a named public key of
// the cluster (scheme API; SG02 or BZ03). The empty keyID selects the
// scheme's default key.
func (c *Cluster) Encrypt(ctx context.Context, scheme SchemeID, keyID string, message, label []byte) ([]byte, error) {
	return c.com.Encrypt(ctx, scheme, keyID, message, label)
}

// Info reports the deployment parameters, the keychain, and node 1's
// engine snapshot (Service interface).
func (c *Cluster) Info(ctx context.Context) (ServiceInfo, error) {
	return c.com.Info(ctx)
}

// Keys lists the named keys of node 1's keystore (Service interface).
func (c *Cluster) Keys(ctx context.Context) ([]KeyInfo, error) {
	return c.com.Keys(ctx)
}

// Key resolves one named key of node 1's keystore (api.KeyFetcher).
func (c *Cluster) Key(ctx context.Context, scheme SchemeID, keyID string) (KeyInfo, error) {
	return c.com.Key(ctx, scheme, keyID)
}

// WarmNoncePools fills every node's FROST nonce pools synchronously and
// returns when the banked slots are usable: benchmarks call it before a
// timed run to measure the steady warm-pool state instead of racing the
// background refills. A no-op when the pool is disabled.
func (c *Cluster) WarmNoncePools(ctx context.Context) error {
	for i := 1; i <= c.com.N(); i++ {
		if err := c.com.UnitAt(i).Engine.WarmNoncePools(ctx); err != nil {
			return err
		}
	}
	return nil
}

// GenerateKey runs a distributed key generation across the cluster
// (Service interface): a real protocol instance through the
// orchestration engines, after which every node holds a share of the
// new key under the returned handle's result ID.
func (c *Cluster) GenerateKey(ctx context.Context, scheme SchemeID, opts GenerateKeyOptions) (Handle, error) {
	return c.com.GenerateKey(ctx, scheme, opts)
}

// ReshareKey runs a live resharing of a named key across the cluster
// (Service interface): the key's epoch advances by one and its shares
// move to the committee in opts, while the public key — and every
// ciphertext and signature under it — stays valid.
func (c *Cluster) ReshareKey(ctx context.Context, scheme SchemeID, keyID string, opts ReshareOptions) (Handle, error) {
	return c.com.ReshareKey(ctx, scheme, keyID, opts)
}

// StatsAt snapshots node i's engine (1-indexed): instance lifecycle and
// flow control counters.
func (c *Cluster) StatsAt(i int) EngineStats {
	return c.com.UnitAt(i).Stats()
}

// Router is the stateless router tier over several committees — the
// fourth Service implementation (see internal/router).
type Router = router.Router

// RouterBackend names one committee behind a Router; its Service may be
// an embedded Cluster, a client.Client pointed at a deployment, or any
// other Service implementation.
type RouterBackend = router.Backend

// NewRouter fronts the given committees with a stateless router: keys
// are placed on the committee that holds them (first backend wins on
// duplicates), requests are forwarded to the owning committee, batches
// scatter/gather, and Info/Keys merge the fleet view.
func NewRouter(backends ...RouterBackend) *Router {
	return router.New(backends)
}

// ServiceHandler serves the /v2 HTTP surface over any Service — the
// handler a router deployment mounts so the client SDK talks to a
// sharded fleet exactly as it talks to one node.
func ServiceHandler(svc api.Service) http.Handler {
	return service.NewFront(svc)
}

// DefaultGroup returns the group used by the DL-based schemes.
func DefaultGroup() group.Group { return group.Edwards25519() }

// Secure-mesh identity material (see internal/identity).
type (
	// IdentityKey is one node's private transport identity: the Ed25519
	// key that authenticates its links and the X25519 key DKG sub-share
	// boxes are sealed to.
	IdentityKey = identity.Key
	// IdentityRoster maps node index → public identity; it is the
	// membership authority every secure node enforces.
	IdentityRoster = identity.Roster
)

// LoadIdentity reads a private identity file written by
// cmd/thetakeygen (or IdentityKey.Save).
func LoadIdentity(path string) (*IdentityKey, error) { return identity.LoadKey(path) }

// LoadRoster reads a roster file written by cmd/thetakeygen (or
// IdentityRoster.Save).
func LoadRoster(path string) (IdentityRoster, error) { return identity.LoadRoster(path) }

// NodeConfig configures a standalone deployment member.
type NodeConfig struct {
	// Keys is this node's keystore (from cmd/thetakeygen or keys.Deal).
	Keys *Keystore
	// KeyFile makes the keystore durable: every mutation — a
	// DKG-generated key, a resharing's epoch bump — is spilled to this
	// path with an atomic write-temp-fsync-rename, and the file is
	// (re)written once at startup, so a restarted node resumes at the
	// epoch it crashed at. Empty keeps the keystore in memory only.
	KeyFile string
	// ListenAddr is the P2P listen address.
	ListenAddr string
	// Peers maps node index to P2P address for all other nodes.
	Peers map[int]string
	// Engine tunes the orchestration engine (flow control and instance
	// retention).
	Engine EngineOptions
	// Transport tunes the per-peer outbound pipeline (queue capacity,
	// full-queue policy, dial backoff).
	Transport TransportOptions
	// Identity is this node's private transport identity (from
	// cmd/thetakeygen's node<i>.id file or identity.Generate). Set
	// together with Roster it switches the node to secure mode: every
	// P2P link runs the mutual-authentication handshake and AEAD record
	// layer, unrostered peers are rejected before any protocol byte
	// flows, and DKG/reshare dealings ride sealed boxes with complaint
	// rounds. All nodes of a deployment must agree on the mode — it
	// changes both the link and the dealing wire format.
	Identity *IdentityKey
	// Roster maps node index → public identity for every deployment
	// member, this node included. Required in secure mode.
	Roster IdentityRoster
}

// Node is one standalone Thetacrypt service node over TCP: a
// committee.Unit bound to a real transport and the HTTP service layer.
type Node struct {
	unit      committee.Unit
	transport *tcpnet.Transport
	handler   *service.Server
}

// NewNode starts the network transport and orchestration engine.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.KeyFile != "" {
		cfg.Keys.SetPersistPath(cfg.KeyFile)
		if err := cfg.Keys.Save(); err != nil {
			return nil, fmt.Errorf("thetacrypt: persist keystore: %w", err)
		}
	}
	var secure *securelink.Config
	if cfg.Identity != nil || len(cfg.Roster) > 0 {
		if cfg.Identity == nil || len(cfg.Roster) == 0 {
			return nil, fmt.Errorf("thetacrypt: secure mode needs both Identity and Roster")
		}
		if cfg.Identity.Node != cfg.Keys.Index {
			return nil, fmt.Errorf("thetacrypt: identity is for node %d but keystore is node %d",
				cfg.Identity.Node, cfg.Keys.Index)
		}
		secure = &securelink.Config{Key: cfg.Identity, Roster: cfg.Roster}
	}
	transport, err := tcpnet.New(tcpnet.Config{
		Self:           cfg.Keys.Index,
		ListenAddr:     cfg.ListenAddr,
		Peers:          cfg.Peers,
		OutQueueLen:    cfg.Transport.OutQueueLen,
		Policy:         cfg.Transport.Policy,
		AckWindow:      cfg.Transport.AckWindow,
		AckInterval:    cfg.Transport.AckInterval,
		ResendTimeout:  cfg.Transport.ResendTimeout,
		DialRetry:      cfg.Transport.DialRetry,
		DialBackoffMax: cfg.Transport.DialBackoffMax,
		Secure:         secure,
	})
	if err != nil {
		return nil, fmt.Errorf("thetacrypt: transport: %w", err)
	}
	engine := orchestration.New(cfg.Engine.engineConfig(orchestration.Config{
		Keys:     cfg.Keys,
		Net:      transport,
		Identity: cfg.Identity,
		Roster:   cfg.Roster,
	}))
	return &Node{
		unit:      committee.Unit{Store: cfg.Keys, Engine: engine},
		transport: transport,
		handler:   service.NewServer(engine, cfg.Keys),
	}, nil
}

// Node implements the unified Service interface for in-process use by
// the hosting application; remote applications reach the same surface
// through Handler's /v2 endpoints and the client SDK.
var _ Service = (*Node)(nil)

// Handler returns the HTTP handler of the service layer (/v1 and /v2).
func (n *Node) Handler() *service.Server { return n.handler }

// P2PAddr returns the bound P2P listen address (useful with a ":0"
// ListenAddr).
func (n *Node) P2PAddr() string { return n.transport.Addr() }

// SetPeer registers (or updates) a peer's P2P address after
// construction, enabling deployments with dynamically assigned ports:
// start every node on ":0", then exchange the bound addresses.
func (n *Node) SetPeer(index int, addr string) { n.transport.SetPeer(index, addr) }

// Submit starts a threshold operation locally (Service interface).
func (n *Node) Submit(ctx context.Context, req Request) (Handle, error) {
	return n.unit.Submit(ctx, req)
}

// SubmitBatch starts 1..N operations with a single engine hand-off.
func (n *Node) SubmitBatch(ctx context.Context, reqs []Request) ([]Handle, error) {
	return n.unit.SubmitBatch(ctx, reqs)
}

// Wait blocks until the instance finishes or ctx expires.
func (n *Node) Wait(ctx context.Context, h Handle) (Result, error) {
	return n.unit.Wait(ctx, h)
}

// Encrypt creates a threshold ciphertext under a named public key of
// the deployment (scheme API).
func (n *Node) Encrypt(ctx context.Context, scheme SchemeID, keyID string, message, label []byte) ([]byte, error) {
	return n.unit.Encrypt(ctx, scheme, keyID, message, label)
}

// Info reports the deployment parameters, the keychain, and the engine
// snapshot (Service interface).
func (n *Node) Info(ctx context.Context) (ServiceInfo, error) {
	return n.unit.Info(ctx)
}

// Keys lists the named keys of the node's keystore (Service
// interface).
func (n *Node) Keys(ctx context.Context) ([]KeyInfo, error) {
	return n.unit.Keys(ctx)
}

// Key resolves one named key of the node's keystore (api.KeyFetcher).
func (n *Node) Key(ctx context.Context, scheme SchemeID, keyID string) (KeyInfo, error) {
	return n.unit.Key(ctx, scheme, keyID)
}

// WarmNoncePools fills the node's FROST nonce pools synchronously (see
// Cluster.WarmNoncePools); only the designated refill initiator of a
// key banks anything, other nodes return immediately.
func (n *Node) WarmNoncePools(ctx context.Context) error {
	return n.unit.Engine.WarmNoncePools(ctx)
}

// GenerateKey runs a distributed key generation across the deployment
// (Service interface).
func (n *Node) GenerateKey(ctx context.Context, scheme SchemeID, opts GenerateKeyOptions) (Handle, error) {
	return n.unit.GenerateKey(ctx, scheme, opts)
}

// ReshareKey runs a live resharing of a named key across the
// deployment (Service interface).
func (n *Node) ReshareKey(ctx context.Context, scheme SchemeID, keyID string, opts ReshareOptions) (Handle, error) {
	return n.unit.ReshareKey(ctx, scheme, keyID, opts)
}

// Stats snapshots the node's engine: instance lifecycle and flow
// control counters.
func (n *Node) Stats() EngineStats {
	return n.unit.Stats()
}

// Close stops the node.
func (n *Node) Close() {
	n.unit.Engine.Stop()
	_ = n.transport.Close()
}
