package dkg

import (
	"crypto/rand"
	"math/big"
	"reflect"
	"testing"

	"thetacrypt/internal/group"
	"thetacrypt/internal/share"
)

func TestComplaintLogResolution(t *testing.T) {
	c := NewComplaintLog()
	c.Complain(3, 2)
	c.Complain(4, 2)
	c.Complain(1, 5)
	if got := c.Against(2); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("Against(2) = %v", got)
	}
	if got := c.Unresolved(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("Unresolved = %v", got)
	}
	c.Resolve(2, 3)
	if got := c.Unresolved(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Fatalf("partially justified dealer dropped: %v", got)
	}
	c.Resolve(2, 4)
	c.Resolve(5, 1)
	if got := c.Unresolved(); len(got) != 0 {
		t.Fatalf("Unresolved after full justification = %v", got)
	}
}

// TestComplaintLogOutOfOrder pins the order-independence contract: a
// justification recorded BEFORE its complaint still discharges it.
func TestComplaintLogOutOfOrder(t *testing.T) {
	c := NewComplaintLog()
	c.Resolve(2, 3) // justification overtakes the complaint
	c.Complain(3, 2)
	if got := c.Unresolved(); len(got) != 0 {
		t.Fatalf("early justification lost: %v", got)
	}
}

// fullExchange deals for every participant and delivers all commitments
// and sub-shares, returning the dealings by dealer.
func fullExchange(t *testing.T, parts []*Participant, corrupt func(dealer int, d *Dealing)) map[int]*Dealing {
	t.Helper()
	dealings := make(map[int]*Dealing, len(parts))
	for _, p := range parts {
		d, err := p.Deal(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if corrupt != nil {
			corrupt(d.Dealer, d)
		}
		dealings[d.Dealer] = d
	}
	for _, p := range parts {
		for dealer, d := range dealings {
			if dealer == p.index {
				continue
			}
			if err := p.ReceiveCommitment(&PublicDealing{Dealer: dealer, Commitment: d.Commitment}); err != nil {
				t.Fatal(err)
			}
			// Errors are complaint fodder, not fatal: the complaint
			// round settles them.
			_ = p.ReceiveSubShare(dealer, d.SubShares[p.index-1])
		}
	}
	return dealings
}

// TestComplaintRoundDisqualifiesBadDealer runs the full GJKR complaint
// flow against a dealer whose sub-share for party 3 is forged: party 3
// complains, the dealer's justification reveals the same bad share and
// fails verification everywhere, and FinishComplaints excludes the
// dealer identically on every node — which still finalizes with the
// same public key from the three honest dealers.
func TestComplaintRoundDisqualifiesBadDealer(t *testing.T) {
	g := group.Edwards25519()
	const tt, n, bad, victim = 1, 4, 2, 3
	parts := make([]*Participant, n)
	for i := range parts {
		p, err := NewParticipant(g, i+1, tt, n)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	fullExchange(t, parts, func(dealer int, d *Dealing) {
		if dealer == bad {
			d.SubShares[victim-1].Value = big.NewInt(42)
		}
	})
	// Complaint round: only the victim has anything to say.
	for _, p := range parts {
		want := []int(nil)
		if p.index == victim {
			want = []int{bad}
		}
		if got := p.PendingComplaints(); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("party %d complaints %v, want %v", p.index, got, want)
		}
	}
	for _, p := range parts {
		if p.index != victim {
			if err := p.ReceiveComplaint(victim, bad); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Justification round: the bad dealer reveals what it dealt — the
	// forged share — and every node (itself included) rejects it.
	js := parts[bad-1].JustificationShares()
	if len(js) != 1 || js[0].Index != victim {
		t.Fatalf("bad dealer justifications %v", js)
	}
	for _, p := range parts {
		if err := p.ReceiveJustification(bad, js[0]); err == nil {
			t.Fatalf("party %d accepted a forged justification", p.index)
		}
		p.FinishComplaints()
	}
	var refKey group.Point
	for _, p := range parts {
		if got, want := p.Qualified(), []int{1, 3, 4}; !reflect.DeepEqual(got, want) {
			t.Fatalf("party %d qualified %v, want %v", p.index, got, want)
		}
		res, err := p.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if refKey == nil {
			refKey = res.PublicKey
		} else if !res.PublicKey.Equal(refKey) {
			t.Fatalf("party %d derived a different public key", p.index)
		}
		if !g.BaseMul(res.Share).Equal(res.VK[p.index-1]) {
			t.Fatalf("party %d share inconsistent with its verification key", p.index)
		}
	}
}

// TestJustificationRepairsFalseComplaint covers the other complaint
// outcome: the dealer is honest, so its justification verifies and the
// complainer ADOPTS the revealed share — the dealer stays qualified and
// the complainer still finalizes consistently. This is also the path a
// recipient takes when its sealed box is undecryptable in transit.
func TestJustificationRepairsFalseComplaint(t *testing.T) {
	g := group.Edwards25519()
	const tt, n, accused, complainer = 1, 3, 1, 3
	parts := make([]*Participant, n)
	for i := range parts {
		p, err := NewParticipant(g, i+1, tt, n)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	dealings := make(map[int]*Dealing, n)
	for _, p := range parts {
		d, err := p.Deal(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		dealings[d.Dealer] = d
	}
	for _, p := range parts {
		for dealer, d := range dealings {
			if dealer == p.index {
				continue
			}
			if err := p.ReceiveCommitment(&PublicDealing{Dealer: dealer, Commitment: d.Commitment}); err != nil {
				t.Fatal(err)
			}
			// The complainer never sees the accused dealer's sub-share
			// (an unopenable box): it must recover it from the
			// justification.
			if p.index == complainer && dealer == accused {
				continue
			}
			if err := p.ReceiveSubShare(dealer, d.SubShares[p.index-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	parts[complainer-1].Complain(accused)
	for _, p := range parts {
		if p.index != complainer {
			if err := p.ReceiveComplaint(complainer, accused); err != nil {
				t.Fatal(err)
			}
		}
	}
	js := parts[accused-1].JustificationShares()
	if len(js) != 1 || js[0].Index != complainer {
		t.Fatalf("accused dealer justifications %v", js)
	}
	for _, p := range parts {
		if err := p.ReceiveJustification(accused, js[0]); err != nil {
			t.Fatalf("party %d rejected a valid justification: %v", p.index, err)
		}
		p.FinishComplaints()
	}
	var refKey group.Point
	for _, p := range parts {
		if got, want := p.Qualified(), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
			t.Fatalf("party %d qualified %v, want %v", p.index, got, want)
		}
		res, err := p.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if refKey == nil {
			refKey = res.PublicKey
		} else if !res.PublicKey.Equal(refKey) {
			t.Fatalf("party %d derived a different public key", p.index)
		}
	}
}

// TestComplaintSurfaceValidation pins the guard rails of the complaint
// API: out-of-range parties, self-complaints, justifications without
// commitments, and public exclusion.
func TestComplaintSurfaceValidation(t *testing.T) {
	g := group.Edwards25519()
	p, err := NewParticipant(g, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ReceiveComplaint(0, 2); err == nil {
		t.Fatal("accepted complaint from party 0")
	}
	if err := p.ReceiveComplaint(2, 4); err == nil {
		t.Fatal("accepted complaint against out-of-range dealer")
	}
	p.Complain(1) // self-complaint: ignored
	p.Complain(9) // out of range: ignored
	if got := p.PendingComplaints(); len(got) != 0 {
		t.Fatalf("bogus complaints recorded: %v", got)
	}
	if err := p.ReceiveJustification(2, share.Share{Index: 1, Value: big.NewInt(1)}); err == nil {
		t.Fatal("accepted justification without a commitment")
	}
	if _, err := p.Deal(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if js := p.JustificationShares(); len(js) != 0 {
		t.Fatalf("justifications with no complaints: %v", js)
	}
	p.Exclude(0) // out of range: ignored
	p.Exclude(2)
	if !p.excluded[2] || p.excluded[0] {
		t.Fatal("Exclude range handling wrong")
	}
}
