package dkg

import (
	"fmt"
	"sort"

	"thetacrypt/internal/share"
)

// ComplaintLog tracks the complaint/justification state of a DKG or
// reshare run: who complained against which dealer, and which of those
// complaints a valid justification has since discharged. It is
// deliberately order-independent — a justification may be recorded
// before the complaint it answers (messages from faster peers can
// overtake slower ones across links) and the resolution still comes
// out right, because Unresolved is computed as complaints minus
// justifications only when the rounds are complete.
//
// The keys are opaque: the DKG uses party indices for both sides,
// resharing uses old share indices for dealers and new share indices
// for complainers. The same machinery serves both.
type ComplaintLog struct {
	complaints map[int]map[int]bool // dealer -> complainer set
	justified  map[int]map[int]bool // dealer -> discharged complainer set
}

// NewComplaintLog returns an empty log.
func NewComplaintLog() *ComplaintLog {
	return &ComplaintLog{
		complaints: make(map[int]map[int]bool),
		justified:  make(map[int]map[int]bool),
	}
}

// Complain records complainer's complaint against dealer.
func (c *ComplaintLog) Complain(complainer, dealer int) {
	set, ok := c.complaints[dealer]
	if !ok {
		set = make(map[int]bool)
		c.complaints[dealer] = set
	}
	set[complainer] = true
}

// Resolve records that dealer's justification toward complainer
// verified; the matching complaint (present or still in flight) is
// discharged.
func (c *ComplaintLog) Resolve(dealer, complainer int) {
	set, ok := c.justified[dealer]
	if !ok {
		set = make(map[int]bool)
		c.justified[dealer] = set
	}
	set[complainer] = true
}

// Against returns the sorted complainers with a complaint recorded
// against dealer (discharged or not) — the set a dealer must answer in
// the justification round.
func (c *ComplaintLog) Against(dealer int) []int {
	out := make([]int, 0, len(c.complaints[dealer]))
	for complainer := range c.complaints[dealer] {
		out = append(out, complainer)
	}
	sort.Ints(out)
	return out
}

// Unresolved returns the sorted dealers with at least one complaint no
// valid justification discharged. Once the justification round is
// complete, these dealers are disqualified on every honest node —
// deterministically, because complaints and justifications are all
// broadcast.
func (c *ComplaintLog) Unresolved() []int {
	var out []int
	for dealer, set := range c.complaints {
		for complainer := range set {
			if !c.justified[dealer][complainer] {
				out = append(out, dealer)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// --- Participant complaint surface -----------------------------------

// Exclude disqualifies a dealer for publicly-verifiable misbehavior (a
// malformed dealing, a wrong-degree commitment, a garbled broadcast).
// Public misbehavior needs no complaint round: every honest node
// observes the same broadcast bytes and excludes identically.
func (p *Participant) Exclude(dealer int) {
	if dealer >= 1 && dealer <= p.n {
		p.excluded[dealer] = true
	}
}

// Complain records that dealer's private sub-share for this party is
// missing or invalid — an unopenable sealed box, or a share failing
// Feldman verification. The dealer is NOT excluded yet: it gets the
// justification round to reveal the disputed sub-share, per GJKR.
func (p *Participant) Complain(dealer int) {
	if dealer < 1 || dealer > p.n || dealer == p.index {
		return
	}
	p.mine[dealer] = true
	p.log.Complain(p.index, dealer)
}

// PendingComplaints returns the sorted dealers this party complains
// about: the payload of its complaint-round broadcast.
func (p *Participant) PendingComplaints() []int {
	out := make([]int, 0, len(p.mine))
	for dealer := range p.mine {
		out = append(out, dealer)
	}
	sort.Ints(out)
	return out
}

// ReceiveComplaint records another party's broadcast complaint against
// a dealer.
func (p *Participant) ReceiveComplaint(complainer, dealer int) error {
	if complainer < 1 || complainer > p.n || dealer < 1 || dealer > p.n {
		return fmt.Errorf("dkg: complaint %d→%d out of range", complainer, dealer)
	}
	p.log.Complain(complainer, dealer)
	return nil
}

// JustificationShares returns the sub-shares this party must reveal to
// answer the complaints lodged against it as a dealer: f_self(j) for
// every complainer j, straight from its dealing. Revealing a disputed
// sub-share is safe — a single point of a degree-t polynomial — and a
// dealer that dealt honestly survives; one that cannot produce a
// verifying share is disqualified by all nodes.
func (p *Participant) JustificationShares() []share.Share {
	if p.dealing == nil {
		return nil
	}
	complainers := p.log.Against(p.index)
	out := make([]share.Share, 0, len(complainers))
	for _, j := range complainers {
		if j >= 1 && j <= p.n {
			out = append(out, p.dealing.SubShares[j-1].Clone())
		}
	}
	return out
}

// ReceiveJustification verifies a dealer's revealed sub-share against
// its commitment. A verifying share discharges the matching complaint
// (whether already recorded or still in flight); when it is addressed
// to this party, it is adopted as the dealer's sub-share — the
// complainer ends up with a valid share either way. An invalid
// justification is simply not a justification: the complaint stands
// and FinishComplaints disqualifies the dealer.
func (p *Participant) ReceiveJustification(dealer int, s share.Share) error {
	com, ok := p.public[dealer]
	if !ok {
		return fmt.Errorf("dkg: justification from dealer %d without a commitment", dealer)
	}
	if s.Index < 1 || s.Index > p.n || s.Value == nil {
		return fmt.Errorf("dkg: malformed justification from dealer %d", dealer)
	}
	if !com.VerifyShare(s) {
		return fmt.Errorf("dkg: dealer %d justification for party %d does not verify", dealer, s.Index)
	}
	p.log.Resolve(dealer, s.Index)
	if s.Index == p.index {
		p.received[dealer] = s.Clone()
	}
	return nil
}

// FinishComplaints disqualifies every dealer left with an unresolved
// complaint. Call it exactly once, after the justification round
// completes; because every complaint and justification was broadcast,
// all honest nodes compute the same exclusion set.
func (p *Participant) FinishComplaints() {
	for _, dealer := range p.log.Unresolved() {
		p.excluded[dealer] = true
	}
}
