package dkg

import (
	"crypto/rand"
	"math/big"
	"testing"

	"thetacrypt/internal/group"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/share"
)

// runDKG executes the happy path among n honest participants.
func runDKG(t *testing.T, g group.Group, tt, n int) []*Result {
	t.Helper()
	parts := make([]*Participant, n)
	dealings := make([]*Dealing, n)
	for i := 1; i <= n; i++ {
		p, err := NewParticipant(g, i, tt, n)
		if err != nil {
			t.Fatal(err)
		}
		parts[i-1] = p
	}
	for i, p := range parts {
		d, err := p.Deal(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		dealings[i] = d
	}
	// Broadcast commitments; deliver private sub-shares.
	for _, p := range parts {
		for _, d := range dealings {
			if d.Dealer == p.index {
				continue
			}
			if err := p.ReceiveCommitment(&PublicDealing{Dealer: d.Dealer, Commitment: d.Commitment}); err != nil {
				t.Fatal(err)
			}
			if err := p.ReceiveSubShare(d.Dealer, d.SubShares[p.index-1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	results := make([]*Result, n)
	for i, p := range parts {
		r, err := p.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	return results
}

func TestHappyPathAgreement(t *testing.T) {
	g := group.Edwards25519()
	const tt, n = 2, 7
	results := runDKG(t, g, tt, n)
	for _, r := range results[1:] {
		if !r.PublicKey.Equal(results[0].PublicKey) {
			t.Fatal("participants derived different public keys")
		}
		if len(r.Qualified) != n {
			t.Fatalf("qualified set %v, want all %d", r.Qualified, n)
		}
	}
	// Shares are consistent: key shares reconstruct the discrete log of
	// the public key.
	shares := make([]share.Share, 0, tt+1)
	for _, r := range results[:tt+1] {
		shares = append(shares, share.Share{Index: r.Index, Value: r.Share})
	}
	x, err := share.Reconstruct(shares, tt, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	if !g.BaseMul(x).Equal(results[0].PublicKey) {
		t.Fatal("reconstructed secret does not match DKG public key")
	}
	// Verification keys match the shares.
	for _, r := range results {
		if !g.BaseMul(r.Share).Equal(results[0].VK[r.Index-1]) {
			t.Fatalf("VK of party %d inconsistent", r.Index)
		}
	}
}

func TestDKGKeysDriveAScheme(t *testing.T) {
	// End-to-end: DKG output used as CKS05 coin keys (dealerless setup).
	g := group.Edwards25519()
	const tt, n = 1, 4
	results := runDKG(t, g, tt, n)
	pk := &cks05.PublicKey{Group: g, Y: results[0].PublicKey, VK: results[0].VK, T: tt, N: n}
	name := []byte("dkg-coin")
	var css []*cks05.CoinShare
	for _, r := range results[:tt+1] {
		cs, err := cks05.Share(rand.Reader, pk, cks05.KeyShare{Index: r.Index, X: r.Share}, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cks05.VerifyShare(pk, name, cs); err != nil {
			t.Fatalf("share %d: %v", r.Index, err)
		}
		css = append(css, cs)
	}
	if _, err := cks05.Combine(pk, name, css); err != nil {
		t.Fatal(err)
	}
}

func TestBadDealerExcluded(t *testing.T) {
	g := group.Edwards25519()
	const tt, n = 1, 4
	parts := make([]*Participant, n)
	dealings := make([]*Dealing, n)
	for i := 1; i <= n; i++ {
		p, _ := NewParticipant(g, i, tt, n)
		parts[i-1] = p
	}
	for i, p := range parts {
		d, err := p.Deal(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		dealings[i] = d
	}
	// Dealer 4 corrupts the sub-share it sends to party 1.
	bad := dealings[3].SubShares[0].Clone()
	bad.Value.Add(bad.Value, big.NewInt(1))

	p1 := parts[0]
	for _, d := range dealings[1:] {
		if err := p1.ReceiveCommitment(&PublicDealing{Dealer: d.Dealer, Commitment: d.Commitment}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p1.ReceiveSubShare(2, dealings[1].SubShares[0]); err != nil {
		t.Fatal(err)
	}
	if err := p1.ReceiveSubShare(3, dealings[2].SubShares[0]); err != nil {
		t.Fatal(err)
	}
	if err := p1.ReceiveSubShare(4, bad); err == nil {
		t.Fatal("corrupted sub-share accepted")
	}
	res, err := p1.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range res.Qualified {
		if q == 4 {
			t.Fatal("bad dealer remained qualified")
		}
	}
}

func TestTooFewDealers(t *testing.T) {
	g := group.Edwards25519()
	p, _ := NewParticipant(g, 1, 2, 7)
	if _, err := p.Deal(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Finalize(); err == nil {
		t.Fatal("finalize with a single dealing should fail (quorum 3)")
	}
}

func TestParamAndRecipientValidation(t *testing.T) {
	g := group.Edwards25519()
	if _, err := NewParticipant(g, 0, 1, 4); err == nil {
		t.Fatal("index 0 accepted")
	}
	if _, err := NewParticipant(g, 1, 4, 4); err == nil {
		t.Fatal("t+1 > n accepted")
	}
	p, _ := NewParticipant(g, 1, 1, 4)
	q, _ := NewParticipant(g, 2, 1, 4)
	d, _ := q.Deal(rand.Reader)
	_ = p
	pp, _ := NewParticipant(g, 1, 1, 4)
	_ = pp.ReceiveCommitment(&PublicDealing{Dealer: 2, Commitment: d.Commitment})
	// Sub-share addressed to party 3 must be rejected by party 1.
	if err := pp.ReceiveSubShare(2, d.SubShares[2]); err == nil {
		t.Fatal("misaddressed sub-share accepted")
	}
}
