// Package dkg implements Pedersen's distributed key generation
// (JF-DKG, the [37] citation of the paper): the dealerless alternative
// to the trusted-dealer setup in internal/keys. Every participant deals
// a Feldman verifiable sharing of a random secret; the group key is the
// sum of the qualified dealings, and no party ever learns it.
//
// The protocol: (1) every participant broadcasts its coefficient
// commitments and sends each peer its sub-share, (2) each participant
// verifies its own sub-shares against the commitments. When sub-shares
// travel sealed (ECIES boxes to each recipient's identity key), other
// nodes cannot check a dealer's full dealing, so the DKG grows
// complaint/justification rounds toward GJKR: a recipient whose
// sub-share is missing or fails Feldman verification broadcasts a
// complaint, the accused dealer must broadcast the disputed sub-share
// as a justification, and dealers whose justifications do not verify
// are disqualified deterministically by every honest node. Legacy
// cleartext deployments skip the complaint rounds; a dealer whose share
// fails simply never becomes qualified.
package dkg

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/share"
)

// Errors reported by the DKG.
var (
	ErrWrongRecipient = errors.New("dkg: sub-share addressed to another party")
	ErrTooFewDealers  = errors.New("dkg: fewer than t+1 qualified dealers")
)

// Dealing is participant i's round-1 output: public commitments plus one
// private sub-share per participant.
type Dealing struct {
	Dealer     int
	Commitment *share.FeldmanCommitment
	// SubShares[j-1] is f_i(j), to be sent privately to party j.
	SubShares []share.Share
}

// PublicDealing is the broadcastable part of a dealing.
type PublicDealing struct {
	Dealer     int
	Commitment *share.FeldmanCommitment
}

// Participant is one party's DKG state machine.
type Participant struct {
	g     group.Group
	index int
	t, n  int

	poly     *share.Polynomial
	dealing  *Dealing
	received map[int]share.Share              // verified sub-shares by dealer
	public   map[int]*share.FeldmanCommitment // commitments by dealer
	excluded map[int]bool
	mine     map[int]bool // dealers this party will complain about
	log      *ComplaintLog
}

// NewParticipant initializes party `index` of an (t, n) DKG over g.
func NewParticipant(g group.Group, index, t, n int) (*Participant, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, err
	}
	if index < 1 || index > n {
		return nil, fmt.Errorf("dkg: index %d out of range", index)
	}
	return &Participant{
		g: g, index: index, t: t, n: n,
		received: make(map[int]share.Share, n),
		public:   make(map[int]*share.FeldmanCommitment, n),
		excluded: make(map[int]bool),
		mine:     make(map[int]bool),
		log:      NewComplaintLog(),
	}, nil
}

// Deal is round 1: sample a random secret, share it, and commit.
func (p *Participant) Deal(rand io.Reader) (*Dealing, error) {
	secret, err := p.g.RandomScalar(rand)
	if err != nil {
		return nil, fmt.Errorf("sample secret: %w", err)
	}
	poly, err := share.NewPolynomial(rand, secret, p.t, p.g.Order())
	if err != nil {
		return nil, err
	}
	com, err := poly.Commit(p.g)
	if err != nil {
		return nil, err
	}
	p.poly = poly
	p.dealing = &Dealing{
		Dealer:     p.index,
		Commitment: com,
		SubShares:  poly.Shares(p.n),
	}
	// Account for the self-dealt sub-share immediately.
	p.public[p.index] = com
	p.received[p.index] = p.dealing.SubShares[p.index-1]
	return p.dealing, nil
}

// ReceiveCommitment records a dealer's broadcast commitment.
func (p *Participant) ReceiveCommitment(pd *PublicDealing) error {
	if pd == nil || pd.Commitment == nil || pd.Dealer < 1 || pd.Dealer > p.n {
		return fmt.Errorf("dkg: malformed public dealing")
	}
	if len(pd.Commitment.Points) != p.t+1 {
		p.excluded[pd.Dealer] = true
		return fmt.Errorf("dkg: dealer %d committed to degree %d, want %d",
			pd.Dealer, len(pd.Commitment.Points)-1, p.t)
	}
	p.public[pd.Dealer] = pd.Commitment
	return nil
}

// ReceiveSubShare is round 2: verify dealer's private sub-share against
// its commitment. A share failing Feldman verification records a
// pending complaint against the dealer (GJKR-style) — the dealer is
// disqualified only if the justification round does not discharge it
// (see FinishComplaints). Callers that do not run complaint rounds can
// treat the returned error as a final verdict: the dealer is never
// added to the received set, so it stays unqualified either way.
func (p *Participant) ReceiveSubShare(dealer int, s share.Share) error {
	if s.Index != p.index {
		return ErrWrongRecipient
	}
	com, ok := p.public[dealer]
	if !ok {
		return fmt.Errorf("dkg: no commitment from dealer %d yet", dealer)
	}
	if p.excluded[dealer] {
		return fmt.Errorf("dkg: dealer %d already disqualified", dealer)
	}
	if !com.VerifyShare(s) {
		p.Complain(dealer)
		return fmt.Errorf("dkg: dealer %d sent an invalid sub-share", dealer)
	}
	p.received[dealer] = s.Clone()
	return nil
}

// Qualified returns the sorted set of dealers whose sub-share and
// commitment verified.
func (p *Participant) Qualified() []int {
	out := make([]int, 0, len(p.received))
	for dealer := range p.received {
		if !p.excluded[dealer] {
			out = append(out, dealer)
		}
	}
	sort.Ints(out)
	return out
}

// Result is the outcome of the DKG for one party.
type Result struct {
	// Index is the party, Share its secret key share x_i.
	Index int
	Share *big.Int
	// PublicKey is the group key Y = x*G; VK are per-party verification
	// keys x_j*G for the qualified polynomial.
	PublicKey group.Point
	VK        []group.Point
	Qualified []int
}

// Finalize combines the qualified dealings into the final key share and
// group public key. All honest parties that agree on the qualified set
// derive a consistent (t, n) sharing whose secret nobody knows.
func (p *Participant) Finalize() (*Result, error) {
	qual := p.Qualified()
	if len(qual) < p.t+1 {
		return nil, ErrTooFewDealers
	}
	// x_i = Σ_{d ∈ QUAL} f_d(i)
	xi := new(big.Int)
	for _, dealer := range qual {
		xi = mathutil.AddMod(xi, p.received[dealer].Value, p.g.Order())
	}
	// Y = Σ A_{d,0}; VK_j = Σ_d f_d(j)*G evaluated in the exponent.
	y := p.g.Identity()
	for _, dealer := range qual {
		y = y.Add(p.public[dealer].PublicKey())
	}
	vk := make([]group.Point, p.n)
	for j := 1; j <= p.n; j++ {
		acc := p.g.Identity()
		for _, dealer := range qual {
			acc = acc.Add(p.public[dealer].EvalInExponent(j))
		}
		vk[j-1] = acc
	}
	return &Result{
		Index:     p.index,
		Share:     xi,
		PublicKey: y,
		VK:        vk,
		Qualified: qual,
	}, nil
}
