// Package identity implements the transport identity layer of the
// secure mesh: each node holds a long-lived Ed25519 signing key (used
// by the link handshake to authenticate the node) and an X25519 box
// key (used to seal per-recipient DKG sub-shares), and every node
// knows the roster mapping node index → identity public keys. The
// roster is the mesh's membership authority: a peer whose handshake
// does not prove possession of the rostered signing key is rejected
// before any protocol traffic flows, and a sealed sub-share can only
// be opened by the rostered recipient.
//
// Key and roster files persist through internal/atomicfile, like the
// keystore, so a crash mid-write never leaves a truncated identity on
// disk.
package identity

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"thetacrypt/internal/atomicfile"
)

// Typed errors. ErrUnknownPeer surfaces when a node index has no
// roster entry (an unrostered peer can never authenticate); ErrOpen
// when a sealed box fails to decrypt (wrong recipient or tampering).
var (
	ErrUnknownPeer = errors.New("identity: peer not in roster")
	ErrOpen        = errors.New("identity: sealed box cannot be opened")
)

// Public is one node's public identity: the Ed25519 key peers verify
// handshake signatures against, and the X25519 key sub-share boxes
// are sealed to.
type Public struct {
	Sign ed25519.PublicKey
	Box  *ecdh.PublicKey
}

// Key is one node's private identity: the node index it speaks for,
// the Ed25519 signing half, and the X25519 box half.
type Key struct {
	Node int
	Sign ed25519.PrivateKey
	Box  *ecdh.PrivateKey
}

// Public returns the shareable half of the key.
func (k *Key) Public() Public {
	return Public{
		Sign: k.Sign.Public().(ed25519.PublicKey),
		Box:  k.Box.PublicKey(),
	}
}

// Generate creates a fresh identity for node index node.
func Generate(rand io.Reader, node int) (*Key, error) {
	if node < 1 {
		return nil, fmt.Errorf("identity: node index %d out of range", node)
	}
	_, sign, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("identity: generate sign key: %w", err)
	}
	box, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("identity: generate box key: %w", err)
	}
	return &Key{Node: node, Sign: sign, Box: box}, nil
}

// Roster maps node index → public identity. It is the authenticated
// membership of the mesh: transports reject peers without an entry,
// and DKG dealings seal sub-shares only to rostered recipients.
type Roster map[int]Public

// Lookup returns the public identity of node, or ErrUnknownPeer.
func (r Roster) Lookup(node int) (Public, error) {
	p, ok := r[node]
	if !ok {
		return Public{}, fmt.Errorf("%w: node %d", ErrUnknownPeer, node)
	}
	return p, nil
}

// Nodes returns the rostered node indices in ascending order.
func (r Roster) Nodes() []int {
	nodes := make([]int, 0, len(r))
	for i := range r {
		nodes = append(nodes, i)
	}
	sort.Ints(nodes)
	return nodes
}

// --- persistence -----------------------------------------------------

// keyFile is the JSON shape of a node identity file. Private scalars
// are hex so the file stays greppable during incident response without
// being mistaken for a certificate.
type keyFile struct {
	Version int    `json:"version"`
	Node    int    `json:"node"`
	Sign    string `json:"sign"` // ed25519 seed, hex
	Box     string `json:"box"`  // x25519 scalar, hex
}

// rosterFile is the JSON shape of a roster file, and also the shape
// embedded into thetakeygen's keyring.json.
type rosterFile struct {
	Version int                   `json:"version"`
	Peers   map[string]PublicJSON `json:"peers"`
}

// PublicJSON is the serialized form of a Public entry (hex keys), used
// by roster files and by cmd/thetakeygen's keyring manifest.
type PublicJSON struct {
	Sign string `json:"sign"`
	Box  string `json:"box"`
}

// MarshalPublic converts a Public into its JSON wire shape.
func MarshalPublic(p Public) PublicJSON {
	return PublicJSON{
		Sign: hex.EncodeToString(p.Sign),
		Box:  hex.EncodeToString(p.Box.Bytes()),
	}
}

// UnmarshalPublic parses the JSON wire shape back into a Public.
func UnmarshalPublic(pj PublicJSON) (Public, error) {
	sign, err := hex.DecodeString(pj.Sign)
	if err != nil || len(sign) != ed25519.PublicKeySize {
		return Public{}, fmt.Errorf("identity: bad sign key encoding")
	}
	raw, err := hex.DecodeString(pj.Box)
	if err != nil {
		return Public{}, fmt.Errorf("identity: bad box key encoding")
	}
	box, err := ecdh.X25519().NewPublicKey(raw)
	if err != nil {
		return Public{}, fmt.Errorf("identity: bad box key: %w", err)
	}
	return Public{Sign: ed25519.PublicKey(sign), Box: box}, nil
}

// Save writes the private identity to path (mode 0600) atomically.
func (k *Key) Save(path string) error {
	data, err := json.MarshalIndent(keyFile{
		Version: 1,
		Node:    k.Node,
		Sign:    hex.EncodeToString(k.Sign.Seed()),
		Box:     hex.EncodeToString(k.Box.Bytes()),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("identity: marshal key: %w", err)
	}
	return atomicfile.WriteFile(path, append(data, '\n'), 0o600)
}

// LoadKey reads a private identity file written by Save.
func LoadKey(path string) (*Key, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("identity: %w", err)
	}
	var kf keyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, fmt.Errorf("identity: parse %s: %w", path, err)
	}
	if kf.Version != 1 {
		return nil, fmt.Errorf("identity: %s: unsupported version %d", path, kf.Version)
	}
	seed, err := hex.DecodeString(kf.Sign)
	if err != nil || len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("identity: %s: bad sign key", path)
	}
	scalar, err := hex.DecodeString(kf.Box)
	if err != nil {
		return nil, fmt.Errorf("identity: %s: bad box key", path)
	}
	box, err := ecdh.X25519().NewPrivateKey(scalar)
	if err != nil {
		return nil, fmt.Errorf("identity: %s: bad box key: %w", path, err)
	}
	if kf.Node < 1 {
		return nil, fmt.Errorf("identity: %s: node index %d out of range", path, kf.Node)
	}
	return &Key{Node: kf.Node, Sign: ed25519.NewKeyFromSeed(seed), Box: box}, nil
}

// Save writes the roster to path (mode 0644) atomically. Rosters hold
// only public material.
func (r Roster) Save(path string) error {
	rf := rosterFile{Version: 1, Peers: make(map[string]PublicJSON, len(r))}
	for i, p := range r {
		rf.Peers[fmt.Sprint(i)] = MarshalPublic(p)
	}
	data, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return fmt.Errorf("identity: marshal roster: %w", err)
	}
	return atomicfile.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRoster reads a roster file written by Save.
func LoadRoster(path string) (Roster, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("identity: %w", err)
	}
	var rf rosterFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, fmt.Errorf("identity: parse %s: %w", path, err)
	}
	if rf.Version != 1 {
		return nil, fmt.Errorf("identity: %s: unsupported version %d", path, rf.Version)
	}
	return ParseRoster(rf.Peers)
}

// ParseRoster converts the JSON peer map (node index as string →
// public identity) into a Roster. thetakeygen embeds this same shape
// into keyring.json, so the manifest and the standalone roster file
// parse through one code path.
func ParseRoster(peers map[string]PublicJSON) (Roster, error) {
	r := make(Roster, len(peers))
	for key, pj := range peers {
		var node int
		if _, err := fmt.Sscanf(key, "%d", &node); err != nil || node < 1 {
			return nil, fmt.Errorf("identity: bad roster node index %q", key)
		}
		p, err := UnmarshalPublic(pj)
		if err != nil {
			return nil, fmt.Errorf("identity: roster node %d: %w", node, err)
		}
		r[node] = p
	}
	return r, nil
}

// MarshalRoster converts a Roster into the JSON peer map shape used by
// roster files and keyring.json.
func MarshalRoster(r Roster) map[string]PublicJSON {
	peers := make(map[string]PublicJSON, len(r))
	for i, p := range r {
		peers[fmt.Sprint(i)] = MarshalPublic(p)
	}
	return peers
}
