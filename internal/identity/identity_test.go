package identity

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
)

func TestKeyRoundTrip(t *testing.T) {
	k, err := Generate(rand.Reader, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "node3.identity")
	if err := k.Save(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o600 {
		t.Fatalf("identity file mode %o, want 600", perm)
	}
	got, err := LoadKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != 3 {
		t.Fatalf("node = %d, want 3", got.Node)
	}
	if !got.Sign.Equal(k.Sign) {
		t.Fatal("sign key did not round-trip")
	}
	if !got.Box.Equal(k.Box) {
		t.Fatal("box key did not round-trip")
	}
}

func TestLoadKeyRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"missing":  "", // never written
		"garbage":  "not json",
		"version":  `{"version":9,"node":1,"sign":"00","box":"00"}`,
		"badsign":  `{"version":1,"node":1,"sign":"zz","box":"00"}`,
		"badnode":  `{"version":1,"node":0,"sign":"` + hex64() + `","box":"` + hex64() + `"}`,
		"shortbox": `{"version":1,"node":1,"sign":"` + hex64() + `","box":"00"}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if content != "" {
			if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := LoadKey(path); err == nil {
			t.Errorf("LoadKey(%s) accepted a bad file", name)
		}
	}
}

// hex64 returns 32 zero bytes in hex — a structurally valid scalar.
func hex64() string {
	return "0000000000000000000000000000000000000000000000000000000000000001"
}

func TestRosterRoundTrip(t *testing.T) {
	r := make(Roster)
	for i := 1; i <= 4; i++ {
		k, err := Generate(rand.Reader, i)
		if err != nil {
			t.Fatal(err)
		}
		r[i] = k.Public()
	}
	path := filepath.Join(t.TempDir(), "roster.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(r) {
		t.Fatalf("roster size %d, want %d", len(got), len(r))
	}
	for i, p := range r {
		gp, err := got.Lookup(i)
		if err != nil {
			t.Fatal(err)
		}
		if !gp.Sign.Equal(p.Sign) || !gp.Box.Equal(p.Box) {
			t.Fatalf("node %d identity did not round-trip", i)
		}
	}
	if _, err := got.Lookup(99); err == nil {
		t.Fatal("Lookup(99) found an unrostered node")
	}
	nodes := got.Nodes()
	for i, n := range nodes {
		if n != i+1 {
			t.Fatalf("Nodes() = %v, want 1..4 ascending", nodes)
		}
	}
}

func TestSealOpen(t *testing.T) {
	alice, _ := Generate(rand.Reader, 1)
	bob, _ := Generate(rand.Reader, 2)
	ctx := []byte("dkg/conf-genkey/dealer=1/to=2")
	msg := []byte("the sub-share")

	box, err := Seal(rand.Reader, bob.Public(), ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(box, msg) {
		t.Fatal("sealed box contains the plaintext")
	}
	got, err := bob.Open(ctx, box)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("opened %q, want %q", got, msg)
	}

	// Wrong recipient, wrong context, and tampering all fail closed.
	if _, err := alice.Open(ctx, box); err == nil {
		t.Fatal("wrong recipient opened the box")
	}
	if _, err := bob.Open([]byte("other context"), box); err == nil {
		t.Fatal("wrong context opened the box")
	}
	flipped := bytes.Clone(box)
	flipped[len(flipped)-1] ^= 1
	if _, err := bob.Open(ctx, flipped); err == nil {
		t.Fatal("tampered box opened")
	}
	if _, err := bob.Open(ctx, box[:boxOverhead-1]); err == nil {
		t.Fatal("truncated box opened")
	}
}

// TestHKDFVector pins the expansion against RFC 5869 test case 1, so
// the hand-rolled derivation cannot drift from the standard.
func TestHKDFVector(t *testing.T) {
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}
	info := []byte{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9}
	want := "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
	got := HKDF(ikm, salt, info, 42)
	if len(got) != 42 {
		t.Fatalf("len = %d, want 42", len(got))
	}
	if gotHex := hexEncode(got); gotHex != want {
		t.Fatalf("HKDF = %s, want %s", gotHex, want)
	}
	// A nil salt must behave as the RFC's zero-filled default.
	zero := make([]byte, sha256.Size)
	a := HKDF([]byte("secret"), nil, []byte("info"), 32)
	b := HKDF([]byte("secret"), zero, []byte("info"), 32)
	if !hmac.Equal(a, b) {
		t.Fatal("nil salt differs from zero-filled salt")
	}
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 2*len(b))
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}
