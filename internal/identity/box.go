package identity

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"fmt"
	"io"
)

// boxInfo labels the sealed-box key derivation. Bumping it is a wire
// break for DKG dealings (see the README's coordinated-upgrade note).
const boxInfo = "thetacrypt/box/v1"

// boxOverhead is the sealed-box size overhead: the ephemeral X25519
// public key plus the AES-GCM tag.
const boxOverhead = 32 + 16

// Seal encrypts plaintext to the recipient's box key (ECIES-style): a
// fresh ephemeral X25519 key agrees with the recipient's static key,
// the shared secret expands through HKDF bound to both public keys and
// the caller's context string, and AES-256-GCM seals the payload. The
// context binds the box to its protocol slot — a dealing box carries
// (instance, dealer, recipient), so a box replayed into another
// instance or recipient fails to open.
func Seal(rand io.Reader, to Public, context, plaintext []byte) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("identity: seal: %w", err)
	}
	aead, err := boxAEAD(eph, to.Box, eph.PublicKey(), context)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 32, 32+len(plaintext)+16)
	copy(out, eph.PublicKey().Bytes())
	// The key is single-use (fresh ephemeral per box), so a fixed
	// all-zero nonce is safe and saves 12 bytes per box.
	return aead.Seal(out, make([]byte, aead.NonceSize()), plaintext, context), nil
}

// Open decrypts a sealed box addressed to this identity's box key. The
// caller must pass the same context the sealer used; any mismatch —
// wrong recipient, wrong context, or a flipped bit — returns ErrOpen.
func (k *Key) Open(context, box []byte) ([]byte, error) {
	if len(box) < boxOverhead {
		return nil, fmt.Errorf("%w: truncated", ErrOpen)
	}
	ephPub, err := ecdh.X25519().NewPublicKey(box[:32])
	if err != nil {
		return nil, fmt.Errorf("%w: bad ephemeral key", ErrOpen)
	}
	aead, err := boxAEAD(k.Box, ephPub, ephPub, context)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, make([]byte, aead.NonceSize()), box[32:], context)
	if err != nil {
		return nil, ErrOpen
	}
	return pt, nil
}

// boxAEAD derives the sealed-box AEAD from the X25519 agreement
// between priv and pub, bound to the ephemeral public key and context.
func boxAEAD(priv *ecdh.PrivateKey, pub, ephPub *ecdh.PublicKey, context []byte) (cipher.AEAD, error) {
	secret, err := priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("identity: box agreement: %w", err)
	}
	info := make([]byte, 0, len(boxInfo)+32+len(context))
	info = append(info, boxInfo...)
	info = append(info, ephPub.Bytes()...)
	info = append(info, context...)
	key := HKDF(secret, nil, info, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("identity: box cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("identity: box aead: %w", err)
	}
	return aead, nil
}
