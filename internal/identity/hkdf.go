package identity

import (
	"crypto/hmac"
	"crypto/sha256"
)

// HKDF is RFC 5869 extract-then-expand over HMAC-SHA256, producing n
// output bytes (n ≤ 255·32). The standard library only grew a hkdf
// package after this module's floor, so the mesh carries its own —
// the secure-link handshake and the sealed-box layer both derive
// their AEAD keys through it.
func HKDF(secret, salt, info []byte, n int) []byte {
	// Extract: PRK = HMAC(salt, secret). A nil salt hashes as the
	// RFC's zero-filled default by way of HMAC's key padding.
	ext := hmac.New(sha256.New, salt)
	ext.Write(secret)
	prk := ext.Sum(nil)

	// Expand: T(i) = HMAC(PRK, T(i-1) || info || i).
	out := make([]byte, 0, n)
	var block []byte
	for i := byte(1); len(out) < n; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(block)
		exp.Write(info)
		exp.Write([]byte{i})
		block = exp.Sum(nil)
		out = append(out, block...)
	}
	return out[:n]
}
