// Package zkp implements the non-interactive zero-knowledge proofs used
// across the threshold schemes: Chaum-Pedersen proofs of discrete
// logarithm equality (DLEQ), made non-interactive with the Fiat-Shamir
// transform. SG02 uses DLEQ for decryption-share correctness, CKS05 for
// coin-share correctness, and SH00 uses the RSA analogue implemented in
// the sh00 package.
//
// Proofs are stored in commitment form (A1, A2, F) rather than
// challenge form (E, F): the challenge is recomputable from the
// commitments, and verification then reduces to two LINEAR point
// equations — F*g1 - A1 - e*h1 == 0 and F*g2 - A2 - e*h2 == 0 — which
// the precompute layer folds across many proofs into one random-linear-
// combination multi-scalar multiplication (batch verification). The
// challenge-form proof cannot be batched: recomputing the challenge
// needs the commitments as hash inputs.
//
// COMPATIBILITY: the commitment-form encoding (A1, A2, F) replaced the
// earlier challenge-form encoding (E, F) and is NOT wire-compatible
// with it — a node on either side of the change rejects every SG02
// decryption share and CKS05 coin share sent by the other side, taking
// those operations below threshold in a mixed-version committee.
// Upgrade a deployment in a coordinated step (stop all nodes, upgrade,
// restart), not by rolling nodes one at a time.
package zkp

import (
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/wire"
)

// DLEQProof proves knowledge of x with h1 = x*g1 and h2 = x*g2 without
// revealing x. A1, A2 are the prover's nonce commitments (s*g1, s*g2)
// and F the response s + x*e for the Fiat-Shamir challenge e.
type DLEQProof struct {
	A1 group.Point
	A2 group.Point
	F  *big.Int
}

// ProveDLEQ produces a proof bound to a domain string and an optional
// transcript (message, context) to prevent proof replay across contexts.
func ProveDLEQ(rand io.Reader, g group.Group, domain string, g1, h1, g2, h2 group.Point, x *big.Int, transcript ...[]byte) (*DLEQProof, error) {
	s, err := g.RandomScalar(rand)
	if err != nil {
		return nil, fmt.Errorf("dleq nonce: %w", err)
	}
	a1 := g1.Mul(s)
	a2 := g2.Mul(s)
	e := challenge(g, domain, g1, h1, g2, h2, a1, a2, transcript)
	// f = s + x*e mod q
	f := mathutil.AddMod(s, mathutil.MulMod(x, e, g.Order()), g.Order())
	return &DLEQProof{A1: a1, A2: a2, F: f}, nil
}

// VerifyDLEQ checks a proof against the same domain and transcript.
func VerifyDLEQ(g group.Group, domain string, g1, h1, g2, h2 group.Point, proof *DLEQProof, transcript ...[]byte) bool {
	rels, err := DLEQRelations(g, domain, g1, h1, g2, h2, proof, transcript...)
	if err != nil {
		return false
	}
	for _, rel := range rels {
		if !rel.Holds(g) {
			return false
		}
	}
	return true
}

// DLEQRelations performs the cheap part of verification eagerly — the
// structural checks and the Fiat-Shamir challenge recomputation — and
// returns the two linear point relations whose truth is equivalent to
// the proof verifying. Callers either check them directly (VerifyDLEQ)
// or hand them to a batch verifier that folds many proofs' relations
// into one multi-scalar multiplication.
func DLEQRelations(g group.Group, domain string, g1, h1, g2, h2 group.Point, proof *DLEQProof, transcript ...[]byte) ([]group.Relation, error) {
	if proof == nil || proof.A1 == nil || proof.A2 == nil || proof.F == nil {
		return nil, fmt.Errorf("zkp: malformed dleq proof")
	}
	if proof.F.Sign() < 0 || proof.F.Cmp(g.Order()) >= 0 {
		return nil, fmt.Errorf("zkp: dleq response out of range")
	}
	e := challenge(g, domain, g1, h1, g2, h2, proof.A1, proof.A2, transcript)
	// F*g1 - A1 - e*h1 == 0 and F*g2 - A2 - e*h2 == 0.
	negOne := new(big.Int).Sub(g.Order(), big.NewInt(1))
	negE := new(big.Int).Sub(g.Order(), e)
	negE.Mod(negE, g.Order())
	return []group.Relation{
		{Points: []group.Point{g1, proof.A1, h1}, Scalars: []*big.Int{proof.F, negOne, negE}},
		{Points: []group.Point{g2, proof.A2, h2}, Scalars: []*big.Int{proof.F, negOne, negE}},
	}, nil
}

func challenge(g group.Group, domain string, g1, h1, g2, h2, a1, a2 group.Point, transcript [][]byte) *big.Int {
	data := make([][]byte, 0, 6+len(transcript))
	data = append(data, g1.Marshal(), h1.Marshal(), g2.Marshal(), h2.Marshal(), a1.Marshal(), a2.Marshal())
	data = append(data, transcript...)
	return g.HashToScalar("thetacrypt/dleq/"+domain, data...)
}

// Marshal encodes a proof.
func (p *DLEQProof) Marshal() []byte {
	return wire.NewWriter().Bytes(p.A1.Marshal()).Bytes(p.A2.Marshal()).BigInt(p.F).Out()
}

// UnmarshalDLEQ decodes a proof over the given group.
func UnmarshalDLEQ(g group.Group, data []byte) (*DLEQProof, error) {
	r := wire.NewReader(data)
	a1Raw := r.Bytes()
	a2Raw := r.Bytes()
	f := r.BigInt()
	if err := r.Err(); err != nil {
		return nil, err
	}
	a1, err := g.UnmarshalPoint(a1Raw)
	if err != nil {
		return nil, fmt.Errorf("dleq commitment A1: %w", err)
	}
	a2, err := g.UnmarshalPoint(a2Raw)
	if err != nil {
		return nil, fmt.Errorf("dleq commitment A2: %w", err)
	}
	return &DLEQProof{A1: a1, A2: a2, F: f}, nil
}
