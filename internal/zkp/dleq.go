// Package zkp implements the non-interactive zero-knowledge proofs used
// across the threshold schemes: Chaum-Pedersen proofs of discrete
// logarithm equality (DLEQ), made non-interactive with the Fiat-Shamir
// transform. SG02 uses DLEQ for decryption-share correctness, CKS05 for
// coin-share correctness, and SH00 uses the RSA analogue implemented in
// the sh00 package.
package zkp

import (
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/wire"
)

// DLEQProof proves knowledge of x with h1 = x*g1 and h2 = x*g2 without
// revealing x. E is the Fiat-Shamir challenge, F the response.
type DLEQProof struct {
	E *big.Int
	F *big.Int
}

// ProveDLEQ produces a proof bound to a domain string and an optional
// transcript (message, context) to prevent proof replay across contexts.
func ProveDLEQ(rand io.Reader, g group.Group, domain string, g1, h1, g2, h2 group.Point, x *big.Int, transcript ...[]byte) (*DLEQProof, error) {
	s, err := g.RandomScalar(rand)
	if err != nil {
		return nil, fmt.Errorf("dleq nonce: %w", err)
	}
	a1 := g1.Mul(s)
	a2 := g2.Mul(s)
	e := challenge(g, domain, g1, h1, g2, h2, a1, a2, transcript)
	// f = s + x*e mod q
	f := mathutil.AddMod(s, mathutil.MulMod(x, e, g.Order()), g.Order())
	return &DLEQProof{E: e, F: f}, nil
}

// VerifyDLEQ checks a proof against the same domain and transcript.
func VerifyDLEQ(g group.Group, domain string, g1, h1, g2, h2 group.Point, proof *DLEQProof, transcript ...[]byte) bool {
	if proof == nil || proof.E == nil || proof.F == nil {
		return false
	}
	if proof.E.Sign() < 0 || proof.E.Cmp(g.Order()) >= 0 ||
		proof.F.Sign() < 0 || proof.F.Cmp(g.Order()) >= 0 {
		return false
	}
	// a1 = f*g1 - e*h1 ; a2 = f*g2 - e*h2
	a1 := g1.Mul(proof.F).Add(h1.Mul(proof.E).Neg())
	a2 := g2.Mul(proof.F).Add(h2.Mul(proof.E).Neg())
	e := challenge(g, domain, g1, h1, g2, h2, a1, a2, transcript)
	return e.Cmp(proof.E) == 0
}

func challenge(g group.Group, domain string, g1, h1, g2, h2, a1, a2 group.Point, transcript [][]byte) *big.Int {
	data := make([][]byte, 0, 6+len(transcript))
	data = append(data, g1.Marshal(), h1.Marshal(), g2.Marshal(), h2.Marshal(), a1.Marshal(), a2.Marshal())
	data = append(data, transcript...)
	return g.HashToScalar("thetacrypt/dleq/"+domain, data...)
}

// Marshal encodes a proof.
func (p *DLEQProof) Marshal() []byte {
	return wire.NewWriter().BigInt(p.E).BigInt(p.F).Out()
}

// UnmarshalDLEQ decodes a proof.
func UnmarshalDLEQ(data []byte) (*DLEQProof, error) {
	r := wire.NewReader(data)
	e := r.BigInt()
	f := r.BigInt()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &DLEQProof{E: e, F: f}, nil
}
