package zkp

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"thetacrypt/internal/group"
)

// dleqInstance builds a valid DLEQ statement h1 = x*g1, h2 = x*g2 and a
// proof for it.
func dleqInstance(t *testing.T, g group.Group, transcript ...[]byte) (g1, h1, g2, h2 group.Point, proof *DLEQProof) {
	t.Helper()
	x, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g1 = g.Generator()
	g2 = g.HashToPoint("dleq-test/g2", []byte("base"))
	h1 = g1.Mul(x)
	h2 = g2.Mul(x)
	proof, err = ProveDLEQ(rand.Reader, g, "test", g1, h1, g2, h2, x, transcript...)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestDLEQRoundTrip(t *testing.T) {
	for _, g := range []group.Group{group.Edwards25519(), group.P256()} {
		t.Run(g.Name(), func(t *testing.T) {
			g1, h1, g2, h2, proof := dleqInstance(t, g)
			if !VerifyDLEQ(g, "test", g1, h1, g2, h2, proof) {
				t.Fatal("valid proof rejected")
			}
			// Wrong statement: h2 replaced by an unrelated point.
			if VerifyDLEQ(g, "test", g1, h1, g2, g2, proof) {
				t.Fatal("proof accepted for a statement it does not prove")
			}
			// Wrong domain.
			if VerifyDLEQ(g, "other", g1, h1, g2, h2, proof) {
				t.Fatal("proof accepted under a different domain")
			}
		})
	}
}

func TestDLEQTranscriptBinding(t *testing.T) {
	g := group.Edwards25519()
	g1, h1, g2, h2, proof := dleqInstance(t, g, []byte("ciphertext-A"))
	if !VerifyDLEQ(g, "test", g1, h1, g2, h2, proof, []byte("ciphertext-A")) {
		t.Fatal("valid proof rejected with its own transcript")
	}
	if VerifyDLEQ(g, "test", g1, h1, g2, h2, proof, []byte("ciphertext-B")) {
		t.Fatal("proof replayed under a different transcript")
	}
	if VerifyDLEQ(g, "test", g1, h1, g2, h2, proof) {
		t.Fatal("proof accepted with the transcript stripped")
	}
}

func TestDLEQRelationsEquivalentToVerify(t *testing.T) {
	g := group.Edwards25519()
	g1, h1, g2, h2, proof := dleqInstance(t, g)
	rels, err := DLEQRelations(g, "test", g1, h1, g2, h2, proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("got %d relations, want 2", len(rels))
	}
	for i, r := range rels {
		if !r.Holds(g) {
			t.Fatalf("relation %d of a valid proof does not hold", i)
		}
	}
	// Tamper with the response: relations must break.
	bad := &DLEQProof{A1: proof.A1, A2: proof.A2, F: new(big.Int).Add(proof.F, big.NewInt(1))}
	rels, err = DLEQRelations(g, "test", g1, h1, g2, h2, bad)
	if err != nil {
		t.Fatal(err)
	}
	holds := 0
	for _, r := range rels {
		if r.Holds(g) {
			holds++
		}
	}
	if holds == len(rels) {
		t.Fatal("tampered proof still satisfies all relations")
	}
}

func TestDLEQMarshalRoundTrip(t *testing.T) {
	g := group.Edwards25519()
	g1, h1, g2, h2, proof := dleqInstance(t, g)
	enc := proof.Marshal()
	dec, err := UnmarshalDLEQ(g, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.A1.Equal(proof.A1) || !dec.A2.Equal(proof.A2) || dec.F.Cmp(proof.F) != 0 {
		t.Fatal("decoded proof differs from original")
	}
	if !VerifyDLEQ(g, "test", g1, h1, g2, h2, dec) {
		t.Fatal("decoded proof does not verify")
	}
	if !bytes.Equal(dec.Marshal(), enc) {
		t.Fatal("re-encoding is not canonical")
	}
	// Truncated and garbage inputs are rejected, not panics.
	if _, err := UnmarshalDLEQ(g, enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := UnmarshalDLEQ(g, nil); err == nil {
		t.Fatal("empty encoding accepted")
	}
}

func TestDLEQRejectsMalformedProof(t *testing.T) {
	g := group.Edwards25519()
	g1, h1, g2, h2, proof := dleqInstance(t, g)
	cases := map[string]*DLEQProof{
		"nil proof": nil,
		"nil F":     {A1: proof.A1, A2: proof.A2},
		"nil A1":    {A2: proof.A2, F: proof.F},
		"F >= order": {A1: proof.A1, A2: proof.A2,
			F: new(big.Int).Add(proof.F, g.Order())},
		"negative F": {A1: proof.A1, A2: proof.A2,
			F: new(big.Int).Neg(proof.F)},
	}
	for name, p := range cases {
		if VerifyDLEQ(g, "test", g1, h1, g2, h2, p) {
			t.Fatalf("%s accepted", name)
		}
	}
}
