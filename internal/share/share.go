// Package share implements the secret-sharing substrate: Shamir sharing
// over prime fields, Feldman verifiable secret sharing over a group, and
// the integer-coefficient Lagrange interpolation (with the Δ = l!
// clearing factor) required by Shoup's threshold RSA scheme.
//
// Threshold semantics follow the paper: with parameters (t, n), any t+1
// of the n shares reconstruct the secret and any t shares reveal nothing.
// Polynomials therefore have degree t.
package share

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
)

var (
	// ErrNotEnoughShares is returned when fewer than t+1 distinct shares
	// are supplied to a reconstruction.
	ErrNotEnoughShares = errors.New("share: not enough shares")
	// ErrDuplicateIndex is returned when two shares carry the same index.
	ErrDuplicateIndex = errors.New("share: duplicate share index")
)

// Share is one evaluation point f(Index) of the sharing polynomial.
// Indices run from 1 to n; index 0 is the secret and never leaves the
// dealer.
type Share struct {
	Index int
	Value *big.Int
}

// Clone returns a deep copy.
func (s Share) Clone() Share {
	return Share{Index: s.Index, Value: mathutil.Clone(s.Value)}
}

// ValidateParams checks threshold parameters.
func ValidateParams(t, n int) error {
	if t < 0 {
		return fmt.Errorf("share: negative threshold %d", t)
	}
	if n < 1 {
		return fmt.Errorf("share: invalid group size %d", n)
	}
	if t+1 > n {
		return fmt.Errorf("share: quorum %d exceeds group size %d", t+1, n)
	}
	return nil
}

// Polynomial is a degree-t polynomial over Z_q used by the dealer and by
// DKG participants.
type Polynomial struct {
	// Coeffs[0] is the secret; len(Coeffs) == t+1.
	Coeffs  []*big.Int
	Modulus *big.Int
}

// NewPolynomial samples a random degree-t polynomial with f(0) = secret.
func NewPolynomial(rand io.Reader, secret *big.Int, t int, modulus *big.Int) (*Polynomial, error) {
	if t < 0 {
		return nil, fmt.Errorf("share: negative degree %d", t)
	}
	coeffs := make([]*big.Int, t+1)
	coeffs[0] = mathutil.Mod(secret, modulus)
	for i := 1; i <= t; i++ {
		c, err := mathutil.RandInt(rand, modulus)
		if err != nil {
			return nil, fmt.Errorf("sample coefficient: %w", err)
		}
		coeffs[i] = c
	}
	return &Polynomial{Coeffs: coeffs, Modulus: mathutil.Clone(modulus)}, nil
}

// Eval returns f(x) mod q by Horner's rule.
func (p *Polynomial) Eval(x int) *big.Int {
	xv := big.NewInt(int64(x))
	acc := new(big.Int)
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, xv)
		acc.Add(acc, p.Coeffs[i])
		acc.Mod(acc, p.Modulus)
	}
	return acc
}

// Shares returns the n shares f(1), ..., f(n).
func (p *Polynomial) Shares(n int) []Share {
	out := make([]Share, n)
	for i := 1; i <= n; i++ {
		out[i-1] = Share{Index: i, Value: p.Eval(i)}
	}
	return out
}

// Split shares a secret with threshold t among n parties over Z_q.
func Split(rand io.Reader, secret *big.Int, t, n int, modulus *big.Int) ([]Share, error) {
	if err := ValidateParams(t, n); err != nil {
		return nil, err
	}
	poly, err := NewPolynomial(rand, secret, t, modulus)
	if err != nil {
		return nil, err
	}
	return poly.Shares(n), nil
}

// CanonicalSubset is the single canonicalization point for signer/share
// index subsets: a strictly ascending copy of subset with duplicates
// removed. Callers reach interpolation with subsets in whatever order
// they were collected (map iteration, network arrival); canonicalizing
// here guarantees that equivalent sets produce identical coefficient
// maps, identical operation order, and — for the precompute layer —
// identical cache keys.
func CanonicalSubset(subset []int) []int {
	out := make([]int, len(subset))
	copy(out, subset)
	sort.Ints(out)
	dedup := out[:0]
	for i, k := range out {
		if i == 0 || k != out[i-1] {
			dedup = append(dedup, k)
		}
	}
	return dedup
}

// LagrangeCoefficient computes λ_j = Π_{k∈S, k≠j} k/(k-j) mod q, the
// weight of share j when interpolating f(0) from the index subset S.
// The subset is canonicalized, so permutations of the same set are
// indistinguishable to this function.
func LagrangeCoefficient(j int, subset []int, modulus *big.Int) (*big.Int, error) {
	num := big.NewInt(1)
	den := big.NewInt(1)
	seen := false
	for _, k := range CanonicalSubset(subset) {
		if k == j {
			seen = true
			continue
		}
		num.Mul(num, big.NewInt(int64(k)))
		num.Mod(num, modulus)
		den.Mul(den, big.NewInt(int64(k-j)))
		den.Mod(den, modulus)
	}
	if !seen {
		return nil, fmt.Errorf("share: index %d not in subset", j)
	}
	dinv, err := mathutil.InvMod(den, modulus)
	if err != nil {
		return nil, fmt.Errorf("lagrange denominator: %w", err)
	}
	return mathutil.MulMod(num, dinv, modulus), nil
}

// Coefficients computes the full coefficient map λ_j for every j of the
// canonicalized subset — the direct (uncached) CoefficientSource.
func Coefficients(subset []int, modulus *big.Int) (map[int]*big.Int, error) {
	canon := CanonicalSubset(subset)
	out := make(map[int]*big.Int, len(canon))
	for _, j := range canon {
		lambda, err := LagrangeCoefficient(j, canon, modulus)
		if err != nil {
			return nil, err
		}
		out[j] = lambda
	}
	return out, nil
}

// CoefficientSource supplies the Lagrange coefficient map of an index
// subset. The direct implementation recomputes per call; the precompute
// layer provides a cached source keyed by (scheme, key, epoch, subset).
// Callers must treat the returned map and its values as read-only.
type CoefficientSource interface {
	Lagrange(subset []int, modulus *big.Int) (map[int]*big.Int, error)
}

type directSource struct{}

func (directSource) Lagrange(subset []int, modulus *big.Int) (map[int]*big.Int, error) {
	return Coefficients(subset, modulus)
}

// DirectCoefficients is the uncached CoefficientSource: every call
// recomputes the coefficient map.
var DirectCoefficients CoefficientSource = directSource{}

// SourceOrDirect resolves the nil CoefficientSource to the direct one,
// so plumbing can pass nil for "no cache".
func SourceOrDirect(src CoefficientSource) CoefficientSource {
	if src == nil {
		return DirectCoefficients
	}
	return src
}

// Reconstruct interpolates f(0) from at least t+1 distinct shares.
func Reconstruct(shares []Share, t int, modulus *big.Int) (*big.Int, error) {
	if len(shares) < t+1 {
		return nil, ErrNotEnoughShares
	}
	use := shares[:t+1]
	subset := make([]int, len(use))
	dup := make(map[int]bool, len(use))
	for i, s := range use {
		if dup[s.Index] {
			return nil, ErrDuplicateIndex
		}
		dup[s.Index] = true
		subset[i] = s.Index
	}
	acc := new(big.Int)
	for _, s := range use {
		lambda, err := LagrangeCoefficient(s.Index, subset, modulus)
		if err != nil {
			return nil, err
		}
		acc.Add(acc, new(big.Int).Mul(lambda, s.Value))
		acc.Mod(acc, modulus)
	}
	return acc, nil
}

// InterpolateInExponent combines group elements P_j = f(j)*G into
// f(0)*G using Lagrange coefficients, the core of every threshold
// combine step. points maps share index to group element.
func InterpolateInExponent(g group.Group, points map[int]group.Point) (group.Point, error) {
	return InterpolateInExponentWith(nil, g, points)
}

// InterpolateInExponentWith is InterpolateInExponent drawing its
// coefficients from src (nil selects the direct source). The subset is
// canonicalized before the lookup, so equivalent point maps — collected
// in any order — hit the same cache entry and combine in the same
// order; the interpolation itself is one multi-scalar multiplication.
func InterpolateInExponentWith(src CoefficientSource, g group.Group, points map[int]group.Point) (group.Point, error) {
	if len(points) == 0 {
		return nil, ErrNotEnoughShares
	}
	subset := make([]int, 0, len(points))
	for idx := range points {
		subset = append(subset, idx)
	}
	subset = CanonicalSubset(subset)
	coeffs, err := SourceOrDirect(src).Lagrange(subset, g.Order())
	if err != nil {
		return nil, err
	}
	pts := make([]group.Point, len(subset))
	scalars := make([]*big.Int, len(subset))
	for i, idx := range subset {
		lambda, ok := coeffs[idx]
		if !ok {
			return nil, fmt.Errorf("share: coefficient source omitted index %d", idx)
		}
		pts[i] = points[idx]
		scalars[i] = lambda
	}
	return group.MultiScalarMul(g, pts, scalars), nil
}

// FeldmanCommitment is the public commitment A_i = a_i*G to each
// polynomial coefficient, enabling share verification.
type FeldmanCommitment struct {
	Group  group.Group
	Points []group.Point // Points[i] commits to Coeffs[i]
}

// Commit produces the Feldman commitment of a polynomial over the scalar
// field of g. The polynomial modulus must equal g.Order().
func (p *Polynomial) Commit(g group.Group) (*FeldmanCommitment, error) {
	if p.Modulus.Cmp(g.Order()) != 0 {
		return nil, fmt.Errorf("share: polynomial modulus does not match group order")
	}
	pts := make([]group.Point, len(p.Coeffs))
	for i, c := range p.Coeffs {
		pts[i] = g.BaseMul(c)
	}
	return &FeldmanCommitment{Group: g, Points: pts}, nil
}

// PublicKey returns the commitment to the secret, f(0)*G.
func (c *FeldmanCommitment) PublicKey() group.Point { return c.Points[0] }

// VerifyShare checks s.Value*G == Σ A_i * index^i.
func (c *FeldmanCommitment) VerifyShare(s Share) bool {
	expected := c.EvalInExponent(s.Index)
	return c.Group.BaseMul(s.Value).Equal(expected)
}

// EvalInExponent computes f(x)*G from the coefficient commitments.
func (c *FeldmanCommitment) EvalInExponent(x int) group.Point {
	xv := big.NewInt(int64(x))
	acc := c.Group.Identity()
	// Horner in the exponent: acc = acc*x + A_i.
	for i := len(c.Points) - 1; i >= 0; i-- {
		acc = acc.Mul(xv).Add(c.Points[i])
	}
	return acc
}

// IntegerLagrangeCoefficient computes the Shoup coefficient
// λ^S_{0,j} = Δ · Π_{k∈S, k≠j} k / (j-k)... specifically
// Δ·Π_{k∈S,k≠j} (0-k)/(j-k), which is an integer because Δ = l!
// clears all denominators. Used for combining RSA signature shares where
// no modular inverse exists.
func IntegerLagrangeCoefficient(delta *big.Int, j int, subset []int) (*big.Int, error) {
	num := new(big.Int).Set(delta)
	den := big.NewInt(1)
	seen := false
	for _, k := range subset {
		if k == j {
			seen = true
			continue
		}
		num.Mul(num, big.NewInt(int64(-k)))
		den.Mul(den, big.NewInt(int64(j-k)))
	}
	if !seen {
		return nil, fmt.Errorf("share: index %d not in subset", j)
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("share: Δ does not clear denominator for subset %v at %d", subset, j)
	}
	return q, nil
}
