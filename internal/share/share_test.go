package share

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
)

var testModulus = group.Edwards25519().Order()

func TestSplitReconstruct(t *testing.T) {
	cases := []struct{ t, n int }{
		{0, 1}, {1, 4}, {2, 7}, {3, 10}, {10, 31},
	}
	for _, tc := range cases {
		secret, _ := mathutil.RandInt(rand.Reader, testModulus)
		shares, err := Split(rand.Reader, secret, tc.t, tc.n, testModulus)
		if err != nil {
			t.Fatalf("Split(t=%d,n=%d): %v", tc.t, tc.n, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("got %d shares, want %d", len(shares), tc.n)
		}
		got, err := Reconstruct(shares, tc.t, testModulus)
		if err != nil {
			t.Fatalf("Reconstruct: %v", err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("t=%d n=%d: reconstructed %v, want %v", tc.t, tc.n, got, secret)
		}
	}
}

func TestReconstructFromAnySubset(t *testing.T) {
	const tt, n = 2, 7
	secret := big.NewInt(424242)
	shares, err := Split(rand.Reader, secret, tt, n, testModulus)
	if err != nil {
		t.Fatal(err)
	}
	// Any quorum of t+1 shares, in any order, must reconstruct.
	subsets := [][]int{{0, 1, 2}, {4, 2, 6}, {6, 5, 4}, {0, 3, 6}}
	for _, idxs := range subsets {
		sub := make([]Share, 0, len(idxs))
		for _, i := range idxs {
			sub = append(sub, shares[i])
		}
		got, err := Reconstruct(sub, tt, testModulus)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("subset %v reconstructed %v", idxs, got)
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	secret := big.NewInt(7)
	shares, _ := Split(rand.Reader, secret, 2, 5, testModulus)
	if _, err := Reconstruct(shares[:2], 2, testModulus); err == nil {
		t.Fatal("reconstruction with t shares must fail")
	}
	dup := []Share{shares[0], shares[0], shares[1]}
	if _, err := Reconstruct(dup, 2, testModulus); err == nil {
		t.Fatal("duplicate indices must be rejected")
	}
}

func TestTSharesRevealNothingAboutStructure(t *testing.T) {
	// With t shares, every candidate secret is consistent with some
	// polynomial: interpolating t shares plus a guessed secret at 0 is
	// always possible. We verify the interpolation degrees of freedom by
	// reconstructing different "secrets" from the same t shares plus one
	// forged point.
	const tt = 3
	secret := big.NewInt(1111)
	shares, _ := Split(rand.Reader, secret, tt, 7, testModulus)
	partial := shares[:tt] // only t shares
	for _, guess := range []int64{0, 5, 99} {
		forged := append(append([]Share{}, partial...), Share{Index: 7, Value: big.NewInt(guess)})
		if _, err := Reconstruct(forged, tt, testModulus); err != nil {
			t.Fatalf("t shares + arbitrary point not interpolable: %v", err)
		}
	}
}

func TestValidateParams(t *testing.T) {
	cases := []struct {
		t, n   int
		wantOK bool
	}{
		{0, 1, true}, {2, 7, true}, {3, 4, true},
		{-1, 5, false}, {3, 3, false}, {0, 0, false},
	}
	for _, tc := range cases {
		err := ValidateParams(tc.t, tc.n)
		if (err == nil) != tc.wantOK {
			t.Fatalf("ValidateParams(%d,%d) err=%v, wantOK=%v", tc.t, tc.n, err, tc.wantOK)
		}
	}
}

func TestLagrangeSumsToSecret(t *testing.T) {
	f := func(a, b, c uint32) bool {
		poly := &Polynomial{
			Coeffs:  []*big.Int{big.NewInt(int64(a)), big.NewInt(int64(b)), big.NewInt(int64(c))},
			Modulus: testModulus,
		}
		shares := poly.Shares(5)
		got, err := Reconstruct(shares[1:4], 2, testModulus)
		return err == nil && got.Cmp(big.NewInt(int64(a))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolateInExponent(t *testing.T) {
	for _, g := range []group.Group{group.Edwards25519(), group.P256()} {
		t.Run(g.Name(), func(t *testing.T) {
			secret, _ := g.RandomScalar(rand.Reader)
			shares, err := Split(rand.Reader, secret, 2, 5, g.Order())
			if err != nil {
				t.Fatal(err)
			}
			points := map[int]group.Point{
				shares[1].Index: g.BaseMul(shares[1].Value),
				shares[3].Index: g.BaseMul(shares[3].Value),
				shares[4].Index: g.BaseMul(shares[4].Value),
			}
			combined, err := InterpolateInExponent(g, points)
			if err != nil {
				t.Fatal(err)
			}
			if !combined.Equal(g.BaseMul(secret)) {
				t.Fatal("exponent interpolation does not yield secret*G")
			}
		})
	}
}

func TestFeldmanVSS(t *testing.T) {
	g := group.Edwards25519()
	secret, _ := g.RandomScalar(rand.Reader)
	poly, err := NewPolynomial(rand.Reader, secret, 2, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	com, err := poly.Commit(g)
	if err != nil {
		t.Fatal(err)
	}
	if !com.PublicKey().Equal(g.BaseMul(secret)) {
		t.Fatal("commitment public key mismatch")
	}
	for _, s := range poly.Shares(5) {
		if !com.VerifyShare(s) {
			t.Fatalf("valid share %d rejected", s.Index)
		}
		bad := s.Clone()
		bad.Value.Add(bad.Value, big.NewInt(1))
		if com.VerifyShare(bad) {
			t.Fatalf("corrupted share %d accepted", s.Index)
		}
	}
}

func TestFeldmanModulusMismatch(t *testing.T) {
	poly, _ := NewPolynomial(rand.Reader, big.NewInt(5), 1, big.NewInt(97))
	if _, err := poly.Commit(group.Edwards25519()); err == nil {
		t.Fatal("modulus mismatch must be rejected")
	}
}

func TestIntegerLagrange(t *testing.T) {
	// Share an integer secret over Z_m (m composite) and reconstruct
	// Δ^2-scaled as Shoup's combine does: Σ λ_j s_j = Δ · f(0) when
	// λ_j = Δ·Π(0-k)/(j-k).
	const n, tt = 5, 2
	delta := mathutil.Factorial(n)
	m := big.NewInt(15485863 * 2) // composite modulus, like m = p'q'
	secret := big.NewInt(123456)
	poly, err := NewPolynomial(rand.Reader, secret, tt, m)
	if err != nil {
		t.Fatal(err)
	}
	shares := poly.Shares(n)
	subset := []int{1, 3, 5}
	acc := new(big.Int)
	for _, j := range subset {
		lambda, err := IntegerLagrangeCoefficient(delta, j, subset)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(acc, new(big.Int).Mul(lambda, shares[j-1].Value))
	}
	acc.Mod(acc, m)
	want := mathutil.MulMod(delta, secret, m)
	if acc.Cmp(want) != 0 {
		t.Fatalf("Σ λ_j s_j = %v, want Δ·secret = %v", acc, want)
	}
}

func TestIntegerLagrangeExactDivision(t *testing.T) {
	// Δ = l! must clear the denominator for every subset of {1..l} and
	// every member index.
	const n = 7
	delta := mathutil.Factorial(n)
	subsets := [][]int{{1, 2, 3}, {2, 4, 6}, {1, 4, 7}, {5, 6, 7}, {1, 2, 3, 4, 5}}
	for _, s := range subsets {
		for _, j := range s {
			if _, err := IntegerLagrangeCoefficient(delta, j, s); err != nil {
				t.Fatalf("subset %v index %d: %v", s, j, err)
			}
		}
	}
}

func TestIntegerLagrangeUnknownIndex(t *testing.T) {
	if _, err := IntegerLagrangeCoefficient(mathutil.Factorial(5), 9, []int{1, 2, 3}); err == nil {
		t.Fatal("index outside subset must error")
	}
}

func TestCanonicalSubset(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{nil, []int{}},
		{[]int{}, []int{}},
		{[]int{3}, []int{3}},
		{[]int{3, 1, 2}, []int{1, 2, 3}},
		{[]int{2, 1, 2, 3, 1}, []int{1, 2, 3}},
		{[]int{5, 5, 5}, []int{5}},
	}
	for _, c := range cases {
		got := CanonicalSubset(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("CanonicalSubset(%v) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("CanonicalSubset(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
	// The input slice is never mutated.
	in := []int{4, 2, 4, 1}
	CanonicalSubset(in)
	if in[0] != 4 || in[1] != 2 || in[2] != 4 || in[3] != 1 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSourceOrDirectMatchesCoefficients(t *testing.T) {
	src := SourceOrDirect(nil)
	if src == nil {
		t.Fatal("SourceOrDirect(nil) returned nil")
	}
	subset := []int{3, 1, 2}
	viaSource, err := src.Lagrange(subset, testModulus)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Coefficients(subset, testModulus)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaSource) != len(direct) {
		t.Fatalf("coefficient map sizes differ: %d vs %d", len(viaSource), len(direct))
	}
	for idx, want := range direct {
		if got := viaSource[idx]; got == nil || got.Cmp(want) != 0 {
			t.Fatalf("coefficient for index %d differs", idx)
		}
	}
}
