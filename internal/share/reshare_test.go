package share

import (
	"crypto/rand"
	"math/big"
	"testing"

	"thetacrypt/internal/group"
)

// runReshare refreshes a (t, n) sharing into a (newT, newN) sharing and
// returns the new shares plus the new public data.
func runReshare(t *testing.T, g group.Group, secret *big.Int, tt, n, newT, newN int) ([]Share, []group.Point, group.Point) {
	t.Helper()
	old, err := Split(rand.Reader, secret, tt, n, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	oldVK := make([]group.Point, n)
	for i, s := range old {
		oldVK[i] = g.BaseMul(s.Value)
	}
	// A quorum of tt+1 old holders deals.
	dealings := make(map[int]*ReshareDealing, tt+1)
	commitments := make(map[int]*FeldmanCommitment, tt+1)
	for i := 0; i < tt+1; i++ {
		d, err := Reshare(rand.Reader, g, old[i], newT, newN)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyReshareDealing(g, d, oldVK[i], newT); err != nil {
			t.Fatalf("dealer %d rejected: %v", d.Dealer, err)
		}
		dealings[d.Dealer] = d
		commitments[d.Dealer] = d.Commitment
	}
	newShares := make([]Share, newN)
	for j := 1; j <= newN; j++ {
		sub := make(map[int]Share, tt+1)
		for d, dealing := range dealings {
			sub[d] = dealing.SubShares[j-1]
		}
		v, err := CombineReshares(g, j, tt, sub)
		if err != nil {
			t.Fatal(err)
		}
		newShares[j-1] = Share{Index: j, Value: v}
	}
	vk, pub, err := NewVerificationKeys(g, tt, newN, commitments)
	if err != nil {
		t.Fatal(err)
	}
	return newShares, vk, pub
}

func TestResharePreservesSecret(t *testing.T) {
	g := group.Edwards25519()
	secret, _ := g.RandomScalar(rand.Reader)
	newShares, vk, pub := runReshare(t, g, secret, 2, 7, 2, 7)

	got, err := Reconstruct(newShares, 2, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("resharing changed the secret")
	}
	if !pub.Equal(g.BaseMul(secret)) {
		t.Fatal("resharing changed the public key")
	}
	for j, s := range newShares {
		if !g.BaseMul(s.Value).Equal(vk[j]) {
			t.Fatalf("new VK %d inconsistent with new share", j+1)
		}
	}
}

func TestReshareToNewCommitteeSize(t *testing.T) {
	// Migrate from (2, 7) to (3, 10): the committee grows, the secret
	// stays, the old shares become useless in the new polynomial.
	g := group.Edwards25519()
	secret := big.NewInt(987654321)
	newShares, _, pub := runReshare(t, g, secret, 2, 7, 3, 10)
	if len(newShares) != 10 {
		t.Fatalf("got %d new shares", len(newShares))
	}
	got, err := Reconstruct(newShares[3:], 3, g.Order()) // any 4 of 10
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Fatal("migration changed the secret")
	}
	if !pub.Equal(g.BaseMul(secret)) {
		t.Fatal("public key drifted")
	}
}

func TestReshareRefreshInvalidatesOldShareMixing(t *testing.T) {
	// After a refresh with the SAME parameters, old and new shares must
	// not interpolate together: mixing t old and 1 new share yields a
	// wrong secret (this is what makes refresh proactive).
	g := group.Edwards25519()
	secret := big.NewInt(5555)
	old, _ := Split(rand.Reader, secret, 2, 7, g.Order())
	newShares, _, _ := runReshare(t, g, secret, 2, 7, 2, 7)
	mixed := []Share{old[0], old[1], newShares[2]}
	got, err := Reconstruct(mixed, 2, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) == 0 {
		t.Fatal("old and refreshed shares interpolated to the secret; epochs not separated")
	}
}

func TestVerifyReshareDealingRejectsCheating(t *testing.T) {
	g := group.Edwards25519()
	secret, _ := g.RandomScalar(rand.Reader)
	old, _ := Split(rand.Reader, secret, 1, 4, g.Order())
	honest, err := Reshare(rand.Reader, g, old[0], 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	rightVK := g.BaseMul(old[0].Value)
	if err := VerifyReshareDealing(g, honest, rightVK, 1); err != nil {
		t.Fatal(err)
	}
	// Dealer reshares a DIFFERENT value than its share.
	forged, _ := Reshare(rand.Reader, g, Share{Index: 1, Value: big.NewInt(1)}, 1, 4)
	if err := VerifyReshareDealing(g, forged, rightVK, 1); err == nil {
		t.Fatal("resharing of a non-share value accepted")
	}
	// Wrong degree.
	tooWide, _ := Reshare(rand.Reader, g, old[0], 2, 4)
	if err := VerifyReshareDealing(g, tooWide, rightVK, 1); err == nil {
		t.Fatal("over-degree resharing accepted")
	}
}

func TestCombineResharesErrors(t *testing.T) {
	g := group.Edwards25519()
	if _, err := CombineReshares(g, 1, 2, map[int]Share{1: {Index: 1, Value: big.NewInt(1)}}); err == nil {
		t.Fatal("sub-quorum combine accepted")
	}
	bad := map[int]Share{
		1: {Index: 2, Value: big.NewInt(1)}, // addressed to party 2, not 1
		2: {Index: 1, Value: big.NewInt(1)},
	}
	if _, err := CombineReshares(g, 1, 1, bad); err == nil {
		t.Fatal("misaddressed sub-share accepted")
	}
}

// BenchmarkReshareDeal measures one dealer's cost of re-sharing its
// share to a (1, 4) committee (CI bench smoke gates it).
func BenchmarkReshareDeal(b *testing.B) {
	g := group.Edwards25519()
	secret, _ := g.RandomScalar(rand.Reader)
	old, err := Split(rand.Reader, secret, 1, 4, g.Order())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reshare(rand.Reader, g, old[0], 1, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReshareVerifyAndCombine measures a receiving node's cost per
// reshare: verify a quorum of dealings and combine its new share.
func BenchmarkReshareVerifyAndCombine(b *testing.B) {
	g := group.Edwards25519()
	secret, _ := g.RandomScalar(rand.Reader)
	old, err := Split(rand.Reader, secret, 1, 4, g.Order())
	if err != nil {
		b.Fatal(err)
	}
	oldVK := make([]group.Point, len(old))
	for i, s := range old {
		oldVK[i] = g.BaseMul(s.Value)
	}
	dealings := make([]*ReshareDealing, 2)
	for i := range dealings {
		if dealings[i], err = Reshare(rand.Reader, g, old[i], 1, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := make(map[int]Share, len(dealings))
		for _, d := range dealings {
			if err := VerifyReshareDealing(g, d, oldVK[d.Dealer-1], 1); err != nil {
				b.Fatal(err)
			}
			sub[d.Dealer] = d.SubShares[0]
		}
		if _, err := CombineReshares(g, 1, 1, sub); err != nil {
			b.Fatal(err)
		}
	}
}
