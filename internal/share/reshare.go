package share

import (
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
)

// Proactive resharing (in the spirit of the paper's CHURP citation
// [32]): holders of a (t, n) sharing jointly refresh their shares — or
// migrate to a new (t', n') committee — without ever reconstructing the
// secret. Each participating holder deals a degree-t' sub-sharing of
// its OWN share; the new share of party j is the Lagrange-weighted sum
// of the sub-shares it received. Feldman commitments make every step
// verifiable against the existing verification keys.

// ReshareDealing is one old holder's contribution to the refresh.
type ReshareDealing struct {
	// Dealer is the old share index the sub-sharing descends from.
	Dealer int
	// Commitment commits to the dealer's sub-polynomial; its public key
	// must equal the dealer's old verification key share*G.
	Commitment *FeldmanCommitment
	// SubShares[j-1] goes privately to new party j.
	SubShares []Share
}

// Reshare produces an old holder's dealing for a new (newT, newN)
// committee.
func Reshare(rand io.Reader, g group.Group, oldShare Share, newT, newN int) (*ReshareDealing, error) {
	if err := ValidateParams(newT, newN); err != nil {
		return nil, err
	}
	poly, err := NewPolynomial(rand, oldShare.Value, newT, g.Order())
	if err != nil {
		return nil, err
	}
	com, err := poly.Commit(g)
	if err != nil {
		return nil, err
	}
	return &ReshareDealing{
		Dealer:     oldShare.Index,
		Commitment: com,
		SubShares:  poly.Shares(newN),
	}, nil
}

// VerifyReshareDealing checks a dealing against the dealer's old
// verification key (oldVK = oldShare*G): the sub-polynomial must share
// exactly the dealer's old share.
func VerifyReshareDealing(g group.Group, dealing *ReshareDealing, oldVK group.Point, newT int) error {
	if dealing == nil || dealing.Commitment == nil {
		return fmt.Errorf("share: nil reshare dealing")
	}
	if len(dealing.Commitment.Points) != newT+1 {
		return fmt.Errorf("share: reshare degree %d, want %d",
			len(dealing.Commitment.Points)-1, newT)
	}
	if !dealing.Commitment.PublicKey().Equal(oldVK) {
		return fmt.Errorf("share: dealer %d resharing a value that is not its share", dealing.Dealer)
	}
	return nil
}

// CombineReshares derives new party j's refreshed share from the
// verified sub-shares of a quorum of oldT+1 old holders. The old
// secret is preserved: f'(0) = Σ λ_d f_d(0) = Σ λ_d s_d = s.
func CombineReshares(g group.Group, j, oldT int, subShares map[int]Share) (*big.Int, error) {
	if len(subShares) < oldT+1 {
		return nil, ErrNotEnoughShares
	}
	dealers := make([]int, 0, oldT+1)
	for d := range subShares {
		dealers = append(dealers, d)
		if len(dealers) == oldT+1 {
			break
		}
	}
	acc := new(big.Int)
	for _, d := range dealers {
		s := subShares[d]
		if s.Index != j {
			return nil, fmt.Errorf("share: sub-share addressed to %d, not %d", s.Index, j)
		}
		lambda, err := LagrangeCoefficient(d, dealers, g.Order())
		if err != nil {
			return nil, err
		}
		acc = mathutil.AddMod(acc, mathutil.MulMod(lambda, s.Value, g.Order()), g.Order())
	}
	return acc, nil
}

// NewVerificationKeys recomputes the new committee's verification keys
// from the quorum's commitments: VK'_j = Σ λ_d · F_d(j) in the exponent.
func NewVerificationKeys(g group.Group, oldT, newN int, commitments map[int]*FeldmanCommitment) ([]group.Point, group.Point, error) {
	if len(commitments) < oldT+1 {
		return nil, nil, ErrNotEnoughShares
	}
	dealers := make([]int, 0, oldT+1)
	for d := range commitments {
		dealers = append(dealers, d)
		if len(dealers) == oldT+1 {
			break
		}
	}
	vk := make([]group.Point, newN)
	for j := 1; j <= newN; j++ {
		acc := g.Identity()
		for _, d := range dealers {
			lambda, err := LagrangeCoefficient(d, dealers, g.Order())
			if err != nil {
				return nil, nil, err
			}
			acc = acc.Add(commitments[d].EvalInExponent(j).Mul(lambda))
		}
		vk[j-1] = acc
	}
	pub := g.Identity()
	for _, d := range dealers {
		lambda, err := LagrangeCoefficient(d, dealers, g.Order())
		if err != nil {
			return nil, nil, err
		}
		pub = pub.Add(commitments[d].PublicKey().Mul(lambda))
	}
	return vk, pub, nil
}
