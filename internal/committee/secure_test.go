package committee

import (
	"context"
	"crypto/rand"
	"testing"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// TestSecureImpostorCutOffMemnet mirrors the tcpnet impostor test on
// the simulated transport: node 4 registers an identity that does not
// match its roster entry, so the hub refuses to carry its links —
// while the honest quorum keeps serving operations and reports the
// impostor's links as unauthenticated.
func TestSecureImpostorCutOffMemnet(t *testing.T) {
	const tt, n = 1, 4
	ids := make(map[int]*identity.Key, n)
	roster := make(identity.Roster, n)
	for i := 1; i <= n; i++ {
		k, err := identity.Generate(rand.Reader, i)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = k
		roster[i] = k.Public()
	}
	impostor, err := identity.Generate(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids[4] = impostor

	com, err := New(tt, n, Config{
		Schemes:    []schemes.ID{schemes.SG02},
		Secure:     true,
		Identities: ids,
		Roster:     roster,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(com.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	secret := []byte("memnet quorum survives the impostor")
	ct, err := com.Encrypt(ctx, schemes.SG02, "", secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := com.Submit(ctx, protocols.Request{
		Scheme: schemes.SG02, Op: protocols.OpDecrypt, Payload: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := com.Wait(ctx, h)
	if err != nil || res.Err != nil || string(res.Value) != string(secret) {
		t.Fatalf("decrypt with impostor in the mesh: %v / %+v", err, res)
	}

	// The honest node's stats mark the impostor's link unauthenticated
	// and every honest link authenticated.
	ts := com.UnitAt(1).Stats().Transport
	if ts == nil || !ts.Authenticated {
		t.Fatalf("secure hub not marked authenticated: %+v", ts)
	}
	for _, p := range ts.Peers {
		if want := p.Peer != 4; p.Authenticated != want {
			t.Fatalf("peer %d authenticated=%v, want %v", p.Peer, p.Authenticated, want)
		}
	}
	// From the impostor's own endpoint, no link authenticates.
	for _, p := range com.UnitAt(4).Stats().Transport.Peers {
		if p.Authenticated {
			t.Fatalf("impostor authenticated a link to peer %d", p.Peer)
		}
	}
}

// TestSecureCommitteeGeneratedIdentities pins the default path: Secure
// with no overrides generates a consistent identity set, and a sealed
// DKG across the committee completes.
func TestSecureCommitteeGeneratedIdentities(t *testing.T) {
	com, err := New(1, 4, Config{Schemes: []schemes.ID{schemes.SG02}, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(com.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kh, err := com.GenerateKey(ctx, schemes.KG20, api.GenerateKeyOptions{KeyID: "gen-sec"})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := com.Wait(ctx, kh); err != nil || res.Err != nil {
		t.Fatalf("sealed keygen on generated identities: %v / %+v", err, res)
	}
}
