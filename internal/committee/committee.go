// Package committee extracts the reusable committee unit from the
// embedded cluster: one node's keystore plus orchestration engine
// (Unit), and a self-contained in-process Θ-network of n such units
// over a simulated transport (Committee). Both implement api.Service,
// so a process can host one committee (the classic embedded cluster),
// point a standalone node's service layer at a Unit, or front several
// committees with the router tier — the same protocol, scheme, and
// keychain paths in every arrangement.
package committee

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/sg02"
)

// Unit is one committee member: a keystore and the engine running its
// protocol instances. It is the atom every deployment style is built
// from — Cluster and Node wrap it, the router forwards to it — and it
// implements the full api.Service against its own node.
type Unit struct {
	Store  *keys.Keystore
	Engine *orchestration.Engine
}

var _ api.Service = Unit{}

// Submit starts a threshold operation on this unit's engine: validate,
// resolve the named key, hand off, map errors onto the structured
// model.
func (u Unit) Submit(ctx context.Context, req protocols.Request) (api.Handle, error) {
	if e := api.ValidateRequest(req); e != nil {
		return api.Handle{}, e
	}
	if e := api.CheckRequestKey(u.Store, req); e != nil {
		return api.Handle{}, e
	}
	if _, err := u.Engine.Submit(ctx, req); err != nil {
		return api.Handle{}, EngineErr(err)
	}
	return api.Handle{InstanceID: req.InstanceID()}, nil
}

// SubmitBatch starts 1..N operations with a single engine hand-off,
// amortizing dispatch across the batch. Invalid requests fail the whole
// call (the engine is never reached).
func (u Unit) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]api.Handle, error) {
	for i, req := range reqs {
		if e := api.ValidateRequest(req); e != nil {
			return nil, fmt.Errorf("thetacrypt: request %d rejected: %w", i, e)
		}
		if e := api.CheckRequestKey(u.Store, req); e != nil {
			return nil, fmt.Errorf("thetacrypt: request %d rejected: %w", i, e)
		}
	}
	subs, err := u.Engine.SubmitBatch(ctx, reqs)
	if err != nil {
		return nil, EngineErr(err)
	}
	hs := make([]api.Handle, len(subs))
	for i, sub := range subs {
		hs[i] = api.Handle{InstanceID: sub.InstanceID}
	}
	return hs, nil
}

// Wait blocks until the instance finishes or ctx expires.
func (u Unit) Wait(ctx context.Context, h api.Handle) (api.Result, error) {
	res, err := u.Engine.Attach(h.InstanceID).Wait(ctx)
	if err != nil {
		return api.Result{}, err
	}
	return ResultOf(h.InstanceID, res), nil
}

// Encrypt creates a ciphertext under a named public key of an
// encryption scheme — a local computation against the unit's keystore.
func (u Unit) Encrypt(_ context.Context, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error) {
	return EncryptLocal(u.Store, scheme, keyID, message, label)
}

// Info reports the deployment parameters, the keychain, and this
// unit's engine snapshot.
func (u Unit) Info(context.Context) (api.Info, error) {
	return api.Info{
		NodeIndex: u.Store.Index,
		N:         u.Store.N,
		T:         u.Store.T,
		Schemes:   u.Store.Schemes(),
		Keys:      api.KeyInfosOf(u.Store.List()),
		Stats:     api.EngineStatsOf(u.Engine.Stats()),
	}, nil
}

// Keys lists the named keys of the unit's keystore.
func (u Unit) Keys(context.Context) ([]api.KeyInfo, error) {
	return api.KeyInfosOf(u.Store.List()), nil
}

// Key resolves one named key of the unit's keystore (api.KeyFetcher).
func (u Unit) Key(_ context.Context, scheme schemes.ID, keyID string) (api.KeyInfo, error) {
	info, e := api.KeyInfoFromStore(u.Store, scheme, keyID)
	if e != nil {
		return api.KeyInfo{}, e
	}
	return info, nil
}

// GenerateKey starts a distributed key generation: build the keygen
// request through the shared api seam, pre-check the local keystore,
// and submit it like any protocol instance.
func (u Unit) GenerateKey(ctx context.Context, scheme schemes.ID, opts api.GenerateKeyOptions) (api.Handle, error) {
	req, e := api.KeygenRequest(scheme, opts)
	if e != nil {
		return api.Handle{}, e
	}
	if e := api.CheckRequestKey(u.Store, req); e != nil {
		return api.Handle{}, e
	}
	if _, err := u.Engine.Submit(ctx, req); err != nil {
		return api.Handle{}, EngineErr(err)
	}
	return api.Handle{InstanceID: req.InstanceID()}, nil
}

// ReshareKey starts a live resharing of a named key: build the reshare
// request through the shared api seam — which pins it to the key's
// current epoch and fills threshold/committee defaults from the local
// keystore — pre-check, and submit it like any protocol instance.
func (u Unit) ReshareKey(ctx context.Context, scheme schemes.ID, keyID string, opts api.ReshareOptions) (api.Handle, error) {
	req, e := api.ReshareRequest(u.Store, scheme, keyID, opts)
	if e != nil {
		return api.Handle{}, e
	}
	if e := api.CheckRequestKey(u.Store, req); e != nil {
		return api.Handle{}, e
	}
	if _, err := u.Engine.Submit(ctx, req); err != nil {
		return api.Handle{}, EngineErr(err)
	}
	return api.Handle{InstanceID: req.InstanceID()}, nil
}

// Stats snapshots the unit's engine: instance lifecycle and flow
// control counters.
func (u Unit) Stats() api.EngineStats {
	return *api.EngineStatsOf(u.Engine.Stats())
}

// EngineErr maps engine submission failures onto the structured error
// model, so embedded deployments classify overload and shutdown exactly
// like the remote client does (api.CodeOf branches work against any
// Service implementation).
func EngineErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, orchestration.ErrOverloaded):
		return api.Errf(api.CodeOverloaded, "%v", err)
	case errors.Is(err, orchestration.ErrStopped):
		return api.Errf(api.CodeUnavailable, "%v", err)
	default:
		return err
	}
}

// ResultOf converts an engine result into the client-facing shape,
// classifying failures into the structured error model exactly like
// the HTTP service layer does.
func ResultOf(id string, res orchestration.Result) api.Result {
	out := api.Result{InstanceID: id, Value: res.Value, Err: res.Err}
	if e := api.ClassifyResultErr(res.Err); e != nil && e.Code != api.CodeInternal {
		out.Err = e
	}
	if !res.Started.IsZero() && !res.Finished.IsZero() {
		out.ServerLatency = res.Finished.Sub(res.Started)
	}
	return out
}

// EncryptLocal is the scheme API's local encryption against a node's
// named public keys, shared by every deployment style. The check order
// (unknown scheme, non-cipher scheme, scheme without keys, unknown key)
// is part of the conformance contract.
func EncryptLocal(store *keys.Keystore, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error) {
	if _, err := schemes.Lookup(scheme); err != nil {
		return nil, api.Errf(api.CodeSchemeUnknown, "%v", err)
	}
	switch scheme {
	case schemes.SG02, schemes.BZ03:
	default:
		return nil, api.Errf(api.CodeSchemeNotCipher, "scheme %s does not encrypt", scheme)
	}
	if !store.Has(scheme) {
		return nil, api.Errf(api.CodeSchemeNoKeys, "no %s keys dealt", scheme)
	}
	key, err := store.Get(scheme, keyID)
	if err != nil {
		return nil, api.Errf(api.CodeKeyUnknown, "%v", err)
	}
	switch pk := key.Public.(type) {
	case *sg02.PublicKey:
		ct, err := sg02.Encrypt(rand.Reader, pk, message, label)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	case *bz03.PublicKey:
		ct, err := bz03.Encrypt(rand.Reader, pk, message, label)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	default:
		return nil, api.Errf(api.CodeInternal, "key %s/%s holds %T", scheme, key.ID, key.Public)
	}
}

// Config configures an embedded committee.
type Config struct {
	// Schemes to deal keys for; empty means all six.
	Schemes []schemes.ID
	// RSABits for SH00 (default 2048); fixture keys keep startup fast.
	RSABits int
	// KeyID names the dealt keys; empty selects keys.DefaultKeyID.
	// Sharded deployments give each committee distinct key names so the
	// router's placement map spreads traffic instead of shadowing
	// duplicates.
	KeyID string
	// Latency is the simulated one-way network delay between nodes.
	Latency time.Duration
	// Engine post-processes each node's engine config (worker count,
	// flow control, retention); nil keeps the defaults.
	Engine func(orchestration.Config) orchestration.Config
	// Net tunes the simulated transport (queue capacity, full-queue
	// policy, ack layer). The Latency field above wins over Net.Latency
	// when set.
	Net memnet.Options
	// Secure switches the committee to the authenticated mesh: every
	// node gets a transport identity, the hub enforces the roster, and
	// DKG/reshare dealings ride per-recipient sealed boxes with
	// complaint rounds. Fresh identities are generated unless
	// Identities/Roster override them.
	Secure bool
	// Identities overrides the generated per-node identities (node
	// index → private identity). Tests model an impostor by registering
	// a key that does not match the roster entry.
	Identities map[int]*identity.Key
	// Roster overrides the roster derived from Identities.
	Roster identity.Roster
}

// Committee is an embedded in-process Θ-network of n units over a
// simulated transport. Its Service methods answer at node 1, like a
// client talking to one deployment member.
type Committee struct {
	units []Unit
	hub   *memnet.Hub
}

var _ api.Service = (*Committee)(nil)

// New deals fresh keys and starts n in-process units with threshold t
// (any t+1 cooperate, up to t may be corrupted).
func New(t, n int, cfg Config) (*Committee, error) {
	stores, err := keys.Deal(rand.Reader, t, n, keys.Options{
		Schemes:       cfg.Schemes,
		RSABits:       cfg.RSABits,
		UseRSAFixture: true,
		KeyID:         cfg.KeyID,
	})
	if err != nil {
		return nil, fmt.Errorf("thetacrypt: deal keys: %w", err)
	}
	if cfg.Latency > 0 {
		cfg.Net.Latency = memnet.Uniform(cfg.Latency)
	}
	ids := cfg.Identities
	roster := cfg.Roster
	if cfg.Secure {
		if ids == nil {
			ids = make(map[int]*identity.Key, n)
			for i := 1; i <= n; i++ {
				k, err := identity.Generate(rand.Reader, i)
				if err != nil {
					return nil, fmt.Errorf("thetacrypt: generate identity %d: %w", i, err)
				}
				ids[i] = k
			}
		}
		if roster == nil {
			roster = make(identity.Roster, len(ids))
			for i, k := range ids {
				roster[i] = k.Public()
			}
		}
		cfg.Net.Secure = &memnet.SecureOptions{Identities: ids, Roster: roster}
	}
	hub := memnet.NewHub(n, cfg.Net)
	units := make([]Unit, n)
	for i := 0; i < n; i++ {
		ecfg := orchestration.Config{Keys: stores[i], Net: hub.Endpoint(i + 1)}
		if cfg.Secure {
			ecfg.Identity = ids[i+1]
			ecfg.Roster = roster
		}
		if cfg.Engine != nil {
			ecfg = cfg.Engine(ecfg)
		}
		units[i] = Unit{Store: stores[i], Engine: orchestration.New(ecfg)}
	}
	return &Committee{units: units, hub: hub}, nil
}

// Close stops all units.
func (c *Committee) Close() {
	for _, u := range c.units {
		u.Engine.Stop()
	}
	c.hub.Close()
}

// N returns the committee size.
func (c *Committee) N() int { return len(c.units) }

// Front returns the unit answering the Service methods (node 1).
func (c *Committee) Front() Unit { return c.units[0] }

// UnitAt returns node i's unit (1-indexed).
func (c *Committee) UnitAt(i int) Unit { return c.units[i-1] }

func (c *Committee) Submit(ctx context.Context, req protocols.Request) (api.Handle, error) {
	return c.Front().Submit(ctx, req)
}

func (c *Committee) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]api.Handle, error) {
	return c.Front().SubmitBatch(ctx, reqs)
}

func (c *Committee) Wait(ctx context.Context, h api.Handle) (api.Result, error) {
	return c.Front().Wait(ctx, h)
}

func (c *Committee) Encrypt(ctx context.Context, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error) {
	return c.Front().Encrypt(ctx, scheme, keyID, message, label)
}

func (c *Committee) Info(ctx context.Context) (api.Info, error) {
	return c.Front().Info(ctx)
}

func (c *Committee) Keys(ctx context.Context) ([]api.KeyInfo, error) {
	return c.Front().Keys(ctx)
}

func (c *Committee) Key(ctx context.Context, scheme schemes.ID, keyID string) (api.KeyInfo, error) {
	return c.Front().Key(ctx, scheme, keyID)
}

func (c *Committee) GenerateKey(ctx context.Context, scheme schemes.ID, opts api.GenerateKeyOptions) (api.Handle, error) {
	return c.Front().GenerateKey(ctx, scheme, opts)
}

func (c *Committee) ReshareKey(ctx context.Context, scheme schemes.ID, keyID string, opts api.ReshareOptions) (api.Handle, error) {
	return c.Front().ReshareKey(ctx, scheme, keyID, opts)
}
