// Package proxy implements the paper's proxy modules (Section 3.6): a
// P2P proxy and a TOB proxy that delegate communication to an existing
// replicated service instead of running Thetacrypt's own transport. The
// proxy client implements the network.P2P / network.TOB interfaces and
// forwards every operation over a persistent framed TCP connection to a
// proxy server embedded in the host platform; inbound messages flow back
// on the same connection. The original system used gRPC streams for
// this; the framing here is the stdlib substitution documented in
// DESIGN.md.
package proxy

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"thetacrypt/internal/network"
)

// ops on the proxy wire.
const (
	opSend byte = iota + 1
	opBroadcast
	opDeliver
	opSubmit // TOB submit
	opStats  // transport-stats request (node -> host) and reply (host -> node)
)

// Client is the node-side proxy: a network.P2P (and network.TOB) backed
// by a remote host platform.
type Client struct {
	conn net.Conn
	in   chan network.Envelope
	stop chan struct{}
	once sync.Once
	wmu  sync.Mutex
	done sync.WaitGroup
	// statsMu serializes TransportStats callers (one outstanding
	// request on the wire); statsCh carries the host's reply from the
	// read loop to the waiting caller.
	statsMu sync.Mutex
	statsCh chan network.TransportStats
}

var (
	_ network.P2P = (*Client)(nil)
	_ network.TOB = (*Client)(nil)
)

// Dial connects to a proxy server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		in:      make(chan network.Envelope, 1024),
		stop:    make(chan struct{}),
		statsCh: make(chan network.TransportStats, 1),
	}
	c.done.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer c.done.Done()
	for {
		op, frame, err := readOpFrame(c.conn)
		if err != nil {
			return
		}
		if op == opStats {
			var ts network.TransportStats
			if json.Unmarshal(frame, &ts) == nil {
				select {
				case c.statsCh <- ts:
				default: // no caller waiting; drop the stale reply
				}
			}
			continue
		}
		if op != opDeliver {
			continue
		}
		env, err := network.UnmarshalEnvelope(frame)
		if err != nil {
			continue
		}
		select {
		case c.in <- env:
		case <-c.stop:
			return
		}
	}
}

func (c *Client) write(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeOpFrame(c.conn, op, payload)
}

// Send forwards a point-to-point message through the host platform.
func (c *Client) Send(_ context.Context, to int, env network.Envelope) error {
	env.To = to
	return c.write(opSend, env.Marshal())
}

// Broadcast forwards a broadcast through the host platform.
func (c *Client) Broadcast(_ context.Context, env network.Envelope) error {
	env.To = network.Broadcast
	return c.write(opBroadcast, env.Marshal())
}

// Submit forwards an envelope into the host's total-order broadcast.
func (c *Client) Submit(_ context.Context, env network.Envelope) error {
	return c.write(opSubmit, env.Marshal())
}

// Receive returns the inbound message stream.
func (c *Client) Receive() <-chan network.Envelope { return c.in }

// TransportStats asks the host platform for a snapshot of the peer
// links it runs on the node's behalf, so /v2/info stays truthful behind
// the proxy. The request/reply rides the same framed connection; a host
// that predates the stats op simply never answers, and the bounded wait
// degrades to the old empty snapshot.
func (c *Client) TransportStats() network.TransportStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	select {
	case <-c.statsCh: // drop a stale reply from an abandoned request
	default:
	}
	if err := c.write(opStats, nil); err != nil {
		return network.TransportStats{}
	}
	select {
	case ts := <-c.statsCh:
		return ts
	case <-c.stop:
		return network.TransportStats{}
	case <-time.After(2 * time.Second):
		return network.TransportStats{}
	}
}

// Delivered returns the ordered stream (same channel: the host platform
// guarantees the order for TOB deployments).
func (c *Client) Delivered() <-chan network.Envelope { return c.in }

// Close shuts the proxy connection down.
func (c *Client) Close() error {
	c.once.Do(func() {
		close(c.stop)
		_ = c.conn.Close()
		c.done.Wait()
		close(c.in)
	})
	return nil
}

// Server is the platform-side proxy: it accepts one Thetacrypt node and
// bridges it onto the host's communication layer (any network.P2P, and
// optionally a network.TOB).
type Server struct {
	ln    net.Listener
	inner network.P2P
	tob   network.TOB
	stop  chan struct{}
	once  sync.Once
	done  sync.WaitGroup
}

// NewServer bridges the given transports and listens on addr. tob may be
// nil when the host provides only point-to-point channels.
func NewServer(addr string, inner network.P2P, tob network.TOB) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy listen: %w", err)
	}
	s := &Server{ln: ln, inner: inner, tob: tob, stop: make(chan struct{})}
	s.done.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.done.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.done.Add(2)
		var wmu sync.Mutex
		// Downstream: host deliveries to the node.
		go func() {
			defer s.done.Done()
			for {
				select {
				case env, ok := <-s.inner.Receive():
					if !ok {
						return
					}
					wmu.Lock()
					err := writeOpFrame(conn, opDeliver, env.Marshal())
					wmu.Unlock()
					if err != nil {
						return
					}
				case <-s.stop:
					return
				}
			}
		}()
		// Upstream: node operations into the host transports.
		go func() {
			defer s.done.Done()
			defer conn.Close()
			for {
				op, frame, err := readOpFrame(conn)
				if err != nil {
					return
				}
				if op == opStats {
					// Stats requests carry no envelope; answer on the
					// shared writer before the envelope decode below.
					data, err := json.Marshal(s.inner.TransportStats())
					if err != nil {
						continue
					}
					wmu.Lock()
					err = writeOpFrame(conn, opStats, data)
					wmu.Unlock()
					if err != nil {
						return
					}
					continue
				}
				env, err := network.UnmarshalEnvelope(frame)
				if err != nil {
					continue
				}
				switch op {
				case opSend:
					_ = s.inner.Send(context.Background(), env.To, env)
				case opBroadcast:
					_ = s.inner.Broadcast(context.Background(), env)
				case opSubmit:
					if s.tob != nil {
						// Fire-and-forget: the proxy wire has no reply
						// channel, so submit failures — including the
						// sequencer's typed fail-fast while its leader
						// link is down (tob.ErrLeaderDown) — are
						// dropped here. Proxied deployments needing
						// delivery guarantees across a leader outage
						// must retry at the client.
						_ = s.tob.Submit(context.Background(), env)
					}
				}
			}
		}()
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.stop)
		_ = s.ln.Close()
	})
	return nil
}

// frame helpers --------------------------------------------------------

var errShortFrame = errors.New("proxy: short frame")

func writeOpFrame(w io.Writer, op byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = op
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readOpFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 16<<20 {
		return 0, nil, errShortFrame
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return hdr[0], buf, nil
}
