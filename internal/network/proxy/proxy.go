// Package proxy implements the paper's proxy modules (Section 3.6): a
// P2P proxy and a TOB proxy that delegate communication to an existing
// replicated service instead of running Thetacrypt's own transport. The
// proxy client implements the network.P2P / network.TOB interfaces and
// forwards every operation over a persistent framed TCP connection to a
// proxy server embedded in the host platform; inbound messages flow back
// on the same connection. The original system used gRPC streams for
// this; the framing here is the stdlib substitution documented in
// DESIGN.md.
package proxy

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"thetacrypt/internal/network"
)

// ops on the proxy wire.
const (
	opSend byte = iota + 1
	opBroadcast
	opDeliver
	opSubmit // TOB submit
)

// Client is the node-side proxy: a network.P2P (and network.TOB) backed
// by a remote host platform.
type Client struct {
	conn net.Conn
	in   chan network.Envelope
	stop chan struct{}
	once sync.Once
	wmu  sync.Mutex
	done sync.WaitGroup
}

var (
	_ network.P2P = (*Client)(nil)
	_ network.TOB = (*Client)(nil)
)

// Dial connects to a proxy server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy dial: %w", err)
	}
	c := &Client{
		conn: conn,
		in:   make(chan network.Envelope, 1024),
		stop: make(chan struct{}),
	}
	c.done.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer c.done.Done()
	for {
		op, frame, err := readOpFrame(c.conn)
		if err != nil {
			return
		}
		if op != opDeliver {
			continue
		}
		env, err := network.UnmarshalEnvelope(frame)
		if err != nil {
			continue
		}
		select {
		case c.in <- env:
		case <-c.stop:
			return
		}
	}
}

func (c *Client) write(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeOpFrame(c.conn, op, payload)
}

// Send forwards a point-to-point message through the host platform.
func (c *Client) Send(_ context.Context, to int, env network.Envelope) error {
	env.To = to
	return c.write(opSend, env.Marshal())
}

// Broadcast forwards a broadcast through the host platform.
func (c *Client) Broadcast(_ context.Context, env network.Envelope) error {
	env.To = network.Broadcast
	return c.write(opBroadcast, env.Marshal())
}

// Submit forwards an envelope into the host's total-order broadcast.
func (c *Client) Submit(_ context.Context, env network.Envelope) error {
	return c.write(opSubmit, env.Marshal())
}

// Receive returns the inbound message stream.
func (c *Client) Receive() <-chan network.Envelope { return c.in }

// TransportStats reports an empty snapshot: the host platform owns the
// peer links behind the proxy, so per-peer health is not observable
// from the node side.
func (c *Client) TransportStats() network.TransportStats { return network.TransportStats{} }

// Delivered returns the ordered stream (same channel: the host platform
// guarantees the order for TOB deployments).
func (c *Client) Delivered() <-chan network.Envelope { return c.in }

// Close shuts the proxy connection down.
func (c *Client) Close() error {
	c.once.Do(func() {
		close(c.stop)
		_ = c.conn.Close()
		c.done.Wait()
		close(c.in)
	})
	return nil
}

// Server is the platform-side proxy: it accepts one Thetacrypt node and
// bridges it onto the host's communication layer (any network.P2P, and
// optionally a network.TOB).
type Server struct {
	ln    net.Listener
	inner network.P2P
	tob   network.TOB
	stop  chan struct{}
	once  sync.Once
	done  sync.WaitGroup
}

// NewServer bridges the given transports and listens on addr. tob may be
// nil when the host provides only point-to-point channels.
func NewServer(addr string, inner network.P2P, tob network.TOB) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proxy listen: %w", err)
	}
	s := &Server{ln: ln, inner: inner, tob: tob, stop: make(chan struct{})}
	s.done.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.done.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.done.Add(2)
		var wmu sync.Mutex
		// Downstream: host deliveries to the node.
		go func() {
			defer s.done.Done()
			for {
				select {
				case env, ok := <-s.inner.Receive():
					if !ok {
						return
					}
					wmu.Lock()
					err := writeOpFrame(conn, opDeliver, env.Marshal())
					wmu.Unlock()
					if err != nil {
						return
					}
				case <-s.stop:
					return
				}
			}
		}()
		// Upstream: node operations into the host transports.
		go func() {
			defer s.done.Done()
			defer conn.Close()
			for {
				op, frame, err := readOpFrame(conn)
				if err != nil {
					return
				}
				env, err := network.UnmarshalEnvelope(frame)
				if err != nil {
					continue
				}
				switch op {
				case opSend:
					_ = s.inner.Send(context.Background(), env.To, env)
				case opBroadcast:
					_ = s.inner.Broadcast(context.Background(), env)
				case opSubmit:
					if s.tob != nil {
						// Fire-and-forget: the proxy wire has no reply
						// channel, so submit failures — including the
						// sequencer's typed fail-fast while its leader
						// link is down (tob.ErrLeaderDown) — are
						// dropped here. Proxied deployments needing
						// delivery guarantees across a leader outage
						// must retry at the client.
						_ = s.tob.Submit(context.Background(), env)
					}
				}
			}
		}()
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.once.Do(func() {
		close(s.stop)
		_ = s.ln.Close()
	})
	return nil
}

// frame helpers --------------------------------------------------------

var errShortFrame = errors.New("proxy: short frame")

func writeOpFrame(w io.Writer, op byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = op
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readOpFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 16<<20 {
		return 0, nil, errShortFrame
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return hdr[0], buf, nil
}
