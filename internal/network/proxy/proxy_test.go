package proxy_test

import (
	"context"
	"testing"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/network/proxy"
)

// TestProxyForwardsTransportStats pins the stats bridge: the node-side
// proxy client must report the host platform's peer links, not an empty
// snapshot, so /v2/info stays truthful behind the proxy.
func TestProxyForwardsTransportStats(t *testing.T) {
	hub := memnet.NewHub(3, memnet.Options{})
	defer hub.Close()
	inner := hub.Endpoint(1)

	srv, err := proxy.NewServer("127.0.0.1:0", inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := proxy.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	want := inner.TransportStats()
	got := client.TransportStats()
	if len(got.Peers) != len(want.Peers) || len(got.Peers) == 0 {
		t.Fatalf("proxied snapshot has %d peers, host has %d", len(got.Peers), len(want.Peers))
	}
	if got.Policy != want.Policy || got.Reliable != want.Reliable {
		t.Fatalf("proxied policy/reliability %v/%v, host %v/%v",
			got.Policy, got.Reliable, want.Policy, want.Reliable)
	}

	// Traffic through the proxy must show up in the forwarded counters.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	env := network.Envelope{From: 1, Instance: "stats", Kind: network.KindProto, Payload: []byte("x")}
	if err := client.Send(ctx, 2, env); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ps, ok := client.TransportStats().Peer(2)
		if ok && ps.Enqueued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send to peer 2 never surfaced in the proxied stats: %+v", ps)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A second query on the same connection must still answer (the
	// request/reply cycle leaves no residue on the shared framing).
	if again := client.TransportStats(); len(again.Peers) != len(want.Peers) {
		t.Fatalf("second stats query degraded: %+v", again)
	}
}
