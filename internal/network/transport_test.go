package network_test

import (
	"context"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/network/proxy"
	"thetacrypt/internal/network/tcpnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	env := network.Envelope{
		From: 3, To: 0, Instance: "abc", Kind: network.KindProto, Round: 2,
		Payload: []byte("hello"),
	}
	got, err := network.UnmarshalEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || got.Instance != "abc" || got.Kind != network.KindProto ||
		got.Round != 2 || string(got.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := network.UnmarshalEnvelope([]byte("junk")); err == nil {
		t.Fatal("junk envelope decoded")
	}
}

func TestTCPNetBasic(t *testing.T) {
	// Two-node mesh over real TCP sockets.
	t1, err := tcpnet.New(tcpnet.Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := tcpnet.New(tcpnet.Config{Self: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	t1.SetPeer(2, t2.Addr())
	t2.SetPeer(1, t1.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := t1.Send(ctx, 2, network.Envelope{Instance: "x", Kind: network.KindProto, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-t2.Receive():
		if string(env.Payload) != "ping" || env.From != 1 {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for envelope")
	}

	// Broadcast from node 2 reaches node 1.
	if err := t2.Broadcast(ctx, network.Envelope{Instance: "y", Kind: network.KindStart, Payload: []byte("pong")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-t1.Receive():
		if string(env.Payload) != "pong" {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for broadcast")
	}
}

func TestFullClusterOverTCP(t *testing.T) {
	// A complete threshold signature over real TCP sockets.
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	transports := make([]*tcpnet.Transport, n)
	for i := 0; i < n; i++ {
		tr, err := tcpnet.New(tcpnet.Config{Self: i + 1, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		defer tr.Close()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].SetPeer(j+1, transports[j].Addr())
			}
		}
	}
	engines := make([]*orchestration.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = orchestration.New(orchestration.Config{
			Keys: nodes[i],
			Net:  transports[i],
		})
		defer engines[i].Stop()
	}
	req := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("tcp-coin")}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	f, err := engines[0].Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Wait(ctx)
	if err != nil || r.Err != nil {
		t.Fatalf("wait: %v / %v", err, r.Err)
	}
	if len(r.Value) != 32 {
		t.Fatalf("coin value %d bytes", len(r.Value))
	}
}

func TestProxyBridgesP2P(t *testing.T) {
	// Node 1 talks through a proxy into a memnet "host platform" where
	// node 2 lives natively.
	hub := memnet.NewHub(2, memnet.Options{})
	defer hub.Close()

	srv, err := proxy.NewServer("127.0.0.1:0", hub.Endpoint(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := proxy.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Outbound: proxied node sends into the host network.
	if err := client.Send(ctx, 2, network.Envelope{From: 1, Instance: "p", Kind: network.KindProto, Payload: []byte("via-proxy")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-hub.Endpoint(2).Receive():
		if string(env.Payload) != "via-proxy" {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("outbound proxy message lost")
	}

	// Inbound: host network delivery reaches the proxied node.
	if err := hub.Endpoint(2).Send(ctx, 1, network.Envelope{Instance: "p", Kind: network.KindProto, Payload: []byte("to-proxy")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-client.Receive():
		if string(env.Payload) != "to-proxy" {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("inbound proxy message lost")
	}
}

// ---------------------------------------------------------------------
// Conformance: the asynchronous per-peer pipeline (bounded outbound
// queues, writer goroutines, health states, full-queue policies) must
// behave identically over real TCP (tcpnet) and in-process (memnet).
// Each harness builds an n-node mesh and can take one node fully down:
// closing the tcpnet transport (dials refused, writers in dial-backoff)
// or crashing the memnet node (pumps stalled).

type transportHarness struct {
	name string
	// eps[i-1] is node i's endpoint.
	eps  []network.P2P
	kill func(i int)
	// restart brings a killed node back and returns its (possibly
	// fresh-incarnation) endpoint: a new tcpnet transport bound to the
	// same address, or the memnet node un-crashed.
	restart func(t *testing.T, i int) network.P2P
	stop    func()
}

// conformanceConfig tunes the per-peer queues and the ack layer of a
// harness. Zero ack fields select the transport defaults.
type conformanceConfig struct {
	outQueue      int
	policy        network.QueuePolicy
	ackWindow     int
	ackInterval   time.Duration
	resendTimeout time.Duration
}

func tcpHarness(t *testing.T, n int, cfg conformanceConfig) *transportHarness {
	t.Helper()
	mkTransport := func(self int, addr string) *tcpnet.Transport {
		tr, err := tcpnet.New(tcpnet.Config{
			Self:          self,
			ListenAddr:    addr,
			OutQueueLen:   cfg.outQueue,
			Policy:        cfg.policy,
			AckWindow:     cfg.ackWindow,
			AckInterval:   cfg.ackInterval,
			ResendTimeout: cfg.resendTimeout,
			// A long retry keeps a dead peer's writer parked in backoff
			// for the duration of the assertions; short enough that a
			// restarted peer is re-dialed within the test window.
			DialRetry:      250 * time.Millisecond,
			DialBackoffMax: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	transports := make([]*tcpnet.Transport, n)
	for i := 0; i < n; i++ {
		transports[i] = mkTransport(i+1, "127.0.0.1:0")
	}
	addrs := make([]string, n)
	for i, tr := range transports {
		addrs[i] = tr.Addr()
	}
	wire := func(i int) {
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].SetPeer(j+1, addrs[j])
				transports[j].SetPeer(i+1, addrs[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		wire(i)
	}
	eps := make([]network.P2P, n)
	for i, tr := range transports {
		eps[i] = tr
	}
	return &transportHarness{
		name: "tcpnet",
		eps:  eps,
		kill: func(i int) { _ = transports[i-1].Close() },
		restart: func(t *testing.T, i int) network.P2P {
			// Rebind the same address: the peers' writers re-dial it and
			// the ack layer resends everything unacknowledged to the
			// fresh incarnation.
			tr := mkTransport(i, addrs[i-1])
			transports[i-1] = tr
			eps[i-1] = tr
			wire(i - 1)
			return tr
		},
		stop: func() {
			for _, tr := range transports {
				_ = tr.Close()
			}
		},
	}
}

func memHarness(t *testing.T, n int, cfg conformanceConfig) *transportHarness {
	t.Helper()
	hub := memnet.NewHub(n, memnet.Options{
		OutQueueLen:   cfg.outQueue,
		Policy:        cfg.policy,
		AckWindow:     cfg.ackWindow,
		AckInterval:   cfg.ackInterval,
		ResendTimeout: cfg.resendTimeout,
	})
	eps := make([]network.P2P, n)
	for i := 0; i < n; i++ {
		eps[i] = hub.Endpoint(i + 1)
	}
	return &transportHarness{
		name: "memnet",
		eps:  eps,
		kill: hub.Crash,
		restart: func(t *testing.T, i int) network.P2P {
			hub.Restart(i)
			return eps[i-1]
		},
		stop: hub.Close,
	}
}

// forEachTransport runs one conformance test against both transports.
func forEachTransport(t *testing.T, n int, cfg conformanceConfig, run func(t *testing.T, h *transportHarness)) {
	t.Helper()
	builders := []func(*testing.T, int, conformanceConfig) *transportHarness{tcpHarness, memHarness}
	for _, build := range builders {
		h := build(t, n, cfg)
		t.Run(h.name, func(t *testing.T) {
			defer h.stop()
			run(t, h)
		})
	}
}

// pollPeer waits until cond holds for node from's view of node peer.
func pollPeer(t *testing.T, ep network.P2P, peer int, d time.Duration, cond func(network.PeerStats) bool, msg string) network.PeerStats {
	t.Helper()
	deadline := time.Now().Add(d)
	var last network.PeerStats
	for time.Now().Before(deadline) {
		if ps, ok := ep.TransportStats().Peer(peer); ok {
			last = ps
			if cond(ps) {
				return ps
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s; last stats: %+v", msg, last)
	return network.PeerStats{}
}

// TestDeadPeerDoesNotDelayBroadcast is the regression test for the
// synchronous-transport stall: with one node fully down and its link in
// dial-backoff, Broadcast from a healthy node must enqueue in O(1) —
// bounded well under 50ms — and still deliver to the healthy peers,
// while TransportStats reports the dead peer Down with traffic backed
// up behind it.
func TestDeadPeerDoesNotDelayBroadcast(t *testing.T) {
	forEachTransport(t, 3, conformanceConfig{outQueue: 64}, func(t *testing.T, h *transportHarness) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		h.kill(3)

		// Prime the dead link so its writer observes the outage.
		for i := 0; i < 3; i++ {
			if err := h.eps[0].Send(ctx, 3, network.Envelope{Instance: "prime", Kind: network.KindProto}); err != nil {
				t.Fatal(err)
			}
		}
		pollPeer(t, h.eps[0], 3, 8*time.Second, func(ps network.PeerStats) bool {
			return ps.State == network.PeerDown && ps.QueueDepth >= 1
		}, "dead peer never reported Down with a backed-up queue")

		// The broadcast must not wait on the dead peer's dialer.
		start := time.Now()
		if err := h.eps[0].Broadcast(ctx, network.Envelope{
			Instance: "alive", Kind: network.KindProto, Payload: []byte("quorum"),
		}); err != nil {
			t.Fatalf("broadcast with a dead peer errored: %v", err)
		}
		if enq := time.Since(start); enq > 50*time.Millisecond {
			t.Fatalf("broadcast enqueue took %v with a dead peer, want <50ms", enq)
		}

		// Healthy peers still receive it.
		select {
		case env := <-h.eps[1].Receive():
			if string(env.Payload) != "quorum" {
				t.Fatalf("healthy peer received %+v", env)
			}
		case <-ctx.Done():
			t.Fatal("healthy peer never received the broadcast")
		}

		ps, ok := h.eps[0].TransportStats().Peer(3)
		if !ok || ps.State != network.PeerDown {
			t.Fatalf("dead peer stats = %+v, want Down", ps)
		}
		if ps.QueueDepth == 0 && ps.Dropped == 0 {
			t.Fatalf("dead peer stats = %+v, want nonzero queue depth or drops", ps)
		}
	})
}

// TestQueuePolicyDropOldest: on a full queue toward a dead peer, sends
// keep succeeding and the oldest frames are evicted, counted in the
// drop counter.
func TestQueuePolicyDropOldest(t *testing.T) {
	forEachTransport(t, 2, conformanceConfig{outQueue: 2, policy: network.PolicyDropOldest}, func(t *testing.T, h *transportHarness) {
		h.kill(2)
		ctx := context.Background()
		for i := 0; i < 8; i++ {
			if err := h.eps[0].Send(ctx, 2, network.Envelope{Instance: "d", Kind: network.KindProto, Round: i}); err != nil {
				t.Fatalf("drop-oldest send %d errored: %v", i, err)
			}
		}
		ps, ok := h.eps[0].TransportStats().Peer(2)
		if !ok || ps.Dropped == 0 {
			t.Fatalf("peer stats = %+v, want nonzero drops", ps)
		}
		if ps.QueueDepth > 2 {
			t.Fatalf("queue depth %d exceeds its cap 2", ps.QueueDepth)
		}
	})
}

// TestQueuePolicyFailFast: on a full queue toward a dead peer, sends
// fail immediately with the typed ErrPeerBacklogged attributed to the
// peer, and never block.
func TestQueuePolicyFailFast(t *testing.T) {
	forEachTransport(t, 2, conformanceConfig{outQueue: 2, policy: network.PolicyFailFast}, func(t *testing.T, h *transportHarness) {
		h.kill(2)
		ctx := context.Background()
		var sendErr error
		for i := 0; i < 6 && sendErr == nil; i++ {
			start := time.Now()
			sendErr = h.eps[0].Send(ctx, 2, network.Envelope{Instance: "f", Kind: network.KindProto, Round: i})
			if d := time.Since(start); d > time.Second {
				t.Fatalf("fail-fast send %d blocked for %v", i, d)
			}
		}
		if !errors.Is(sendErr, network.ErrPeerBacklogged) {
			t.Fatalf("overflow send returned %v, want ErrPeerBacklogged", sendErr)
		}
		var pe *network.PeerError
		if !errors.As(sendErr, &pe) || pe.Peer != 2 {
			t.Fatalf("overflow error %v not attributed to peer 2", sendErr)
		}
		if ps, ok := h.eps[0].TransportStats().Peer(2); !ok || ps.Dropped == 0 {
			t.Fatalf("peer stats = %+v, want nonzero drop counter", ps)
		}
	})
}

// TestQueuePolicyBlockCancelled: with the default block policy, a send
// into a full queue waits — and is released by its context deadline,
// not by the dead peer.
func TestQueuePolicyBlockCancelled(t *testing.T) {
	forEachTransport(t, 2, conformanceConfig{outQueue: 1, policy: network.PolicyBlock}, func(t *testing.T, h *transportHarness) {
		h.kill(2)
		// Fill: the writer parks one frame in its delivery retry, the
		// queue holds the next.
		for i := 0; i < 2; i++ {
			if err := h.eps[0].Send(context.Background(), 2, network.Envelope{Instance: "b", Kind: network.KindProto, Round: i}); err != nil {
				t.Fatalf("fill send %d: %v", i, err)
			}
		}
		pollPeer(t, h.eps[0], 2, 5*time.Second, func(ps network.PeerStats) bool {
			return ps.QueueDepth >= 1
		}, "queue toward the dead peer never filled")

		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		start := time.Now()
		err := h.eps[0].Send(ctx, 2, network.Envelope{Instance: "b", Kind: network.KindProto, Round: 99})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("blocked send returned %v, want DeadlineExceeded", err)
		}
		if d := time.Since(start); d > 3*time.Second {
			t.Fatalf("blocked send held for %v past its 100ms deadline", d)
		}
	})
}

// collectRounds reads exactly want envelopes and returns their Round
// values, failing the test on timeout.
func collectRounds(t *testing.T, ch <-chan network.Envelope, want int, within time.Duration) []int {
	t.Helper()
	timeout := time.After(within)
	out := make([]int, 0, want)
	for len(out) < want {
		select {
		case env := <-ch:
			out = append(out, env.Round)
		case <-timeout:
			t.Fatalf("timed out after %d/%d deliveries (got %v)", len(out), want, out)
		}
	}
	return out
}

// checkExactlyOnce asserts rounds 1..want each appear exactly once.
func checkExactlyOnce(t *testing.T, rounds []int, want int) {
	t.Helper()
	seen := make(map[int]int)
	for _, r := range rounds {
		seen[r]++
	}
	for r := 1; r <= want; r++ {
		if seen[r] != 1 {
			t.Fatalf("round %d delivered %d times (all: %v)", r, seen[r], rounds)
		}
	}
}

// TestResendOnReconnectDeliversExactlyOnce is the acceptance test of
// the ack layer: one peer is killed mid-broadcast, the outbound queue
// toward it is far smaller than the burst (so drop-oldest definitively
// evicts most frames from the queue — the old loss path), and after the
// peer restarts every frame must still reach its engine exactly once:
// the in-flight window resends what the queue lost, and the receiver
// filters the duplicates and reordering that retransmission causes. On
// tcpnet the restart is a fresh transport incarnation on the same
// address (fresh epoch, empty inbound state); on memnet the crashed
// node resumes. The healthy peer must see exactly-once delivery
// throughout, unaffected by the retransmissions.
func TestResendOnReconnectDeliversExactlyOnce(t *testing.T) {
	const frames = 32
	cfg := conformanceConfig{
		outQueue:      4, // far smaller than the burst
		policy:        network.PolicyDropOldest,
		ackWindow:     128, // but the ack window covers it
		ackInterval:   5 * time.Millisecond,
		resendTimeout: 50 * time.Millisecond,
	}
	forEachTransport(t, 3, cfg, func(t *testing.T, h *transportHarness) {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		h.kill(2)
		for i := 1; i <= frames; i++ {
			if err := h.eps[0].Broadcast(ctx, network.Envelope{
				Instance: "exactly-once", Kind: network.KindProto, Round: i,
			}); err != nil {
				t.Fatalf("broadcast %d with a dead peer errored: %v", i, err)
			}
		}
		// The healthy peer receives the full burst exactly once even
		// though its small queue also dropped frames (recovered by
		// resend, deduplicated on arrival).
		checkExactlyOnce(t, collectRounds(t, h.eps[2].Receive(), frames, 20*time.Second), frames)

		ep2 := h.restart(t, 2)
		checkExactlyOnce(t, collectRounds(t, ep2.Receive(), frames, 30*time.Second), frames)
		// Grace period of several resend timeouts: retransmissions may
		// still be in flight, none may surface as a duplicate.
		select {
		case env := <-ep2.Receive():
			t.Fatalf("duplicate delivered after the full set: %+v", env)
		case <-time.After(300 * time.Millisecond):
		}

		// Sender-side accounting: the delivered-vs-sent gap closed, the
		// window drained, and recovery demonstrably used retransmission.
		ps := pollPeer(t, h.eps[0], 2, 10*time.Second, func(ps network.PeerStats) bool {
			return ps.Delivered >= frames && ps.Inflight == 0
		}, "sender never saw the full burst acknowledged")
		if ps.Resent == 0 {
			t.Fatalf("stats %+v: expected retransmissions after the crash", ps)
		}
	})
}

// TestBroadcastReportsPerPeerFailures: Broadcast attempts every peer
// and aggregates the failures into a typed multi-peer error naming each
// failed peer, while healthy peers still receive the frame.
func TestBroadcastReportsPerPeerFailures(t *testing.T) {
	forEachTransport(t, 3, conformanceConfig{outQueue: 1, policy: network.PolicyFailFast}, func(t *testing.T, h *transportHarness) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		h.kill(3)
		// Saturate the dead peer's queue so the broadcast's enqueue
		// fails for it.
		for i := 0; i < 4; i++ {
			_ = h.eps[0].Send(ctx, 3, network.Envelope{Instance: "sat", Kind: network.KindProto, Round: i})
		}
		pollPeer(t, h.eps[0], 3, 5*time.Second, func(ps network.PeerStats) bool {
			return ps.QueueDepth >= 1
		}, "dead peer queue never saturated")

		err := h.eps[0].Broadcast(ctx, network.Envelope{Instance: "multi", Kind: network.KindProto, Payload: []byte("m")})
		if err == nil {
			t.Fatal("broadcast with a saturated dead peer returned nil")
		}
		if !errors.Is(err, network.ErrPeerBacklogged) {
			t.Fatalf("broadcast error %v does not wrap ErrPeerBacklogged", err)
		}
		var be *network.BroadcastError
		if !errors.As(err, &be) {
			t.Fatalf("broadcast error %T is not a *BroadcastError", err)
		}
		if be.Peers != 2 || len(be.Failed) != 1 || be.Failed[0].Peer != 3 {
			t.Fatalf("broadcast error %+v, want 1/2 peers failed naming peer 3", be)
		}
		if got := network.FailedPeers(err); len(got) != 1 || got[0] != 3 {
			t.Fatalf("FailedPeers = %v, want [3]", got)
		}
		// The healthy peer was not held back by the failure.
		select {
		case env := <-h.eps[1].Receive():
			if env.Instance != "multi" {
				t.Fatalf("healthy peer received %+v", env)
			}
		case <-ctx.Done():
			t.Fatal("healthy peer never received the broadcast")
		}
	})
}
