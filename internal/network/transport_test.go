package network_test

import (
	"context"
	"crypto/rand"
	"testing"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/network/proxy"
	"thetacrypt/internal/network/tcpnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	env := network.Envelope{
		From: 3, To: 0, Instance: "abc", Kind: network.KindProto, Round: 2,
		Payload: []byte("hello"),
	}
	got, err := network.UnmarshalEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || got.Instance != "abc" || got.Kind != network.KindProto ||
		got.Round != 2 || string(got.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := network.UnmarshalEnvelope([]byte("junk")); err == nil {
		t.Fatal("junk envelope decoded")
	}
}

func TestTCPNetBasic(t *testing.T) {
	// Two-node mesh over real TCP sockets.
	t1, err := tcpnet.New(tcpnet.Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := tcpnet.New(tcpnet.Config{Self: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	t1.SetPeer(2, t2.Addr())
	t2.SetPeer(1, t1.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := t1.Send(ctx, 2, network.Envelope{Instance: "x", Kind: network.KindProto, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-t2.Receive():
		if string(env.Payload) != "ping" || env.From != 1 {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for envelope")
	}

	// Broadcast from node 2 reaches node 1.
	if err := t2.Broadcast(ctx, network.Envelope{Instance: "y", Kind: network.KindStart, Payload: []byte("pong")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-t1.Receive():
		if string(env.Payload) != "pong" {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("timed out waiting for broadcast")
	}
}

func TestFullClusterOverTCP(t *testing.T) {
	// A complete threshold signature over real TCP sockets.
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	transports := make([]*tcpnet.Transport, n)
	for i := 0; i < n; i++ {
		tr, err := tcpnet.New(tcpnet.Config{Self: i + 1, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		defer tr.Close()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].SetPeer(j+1, transports[j].Addr())
			}
		}
	}
	engines := make([]*orchestration.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = orchestration.New(orchestration.Config{
			Keys: keys.NewManager(nodes[i]),
			Net:  transports[i],
		})
		defer engines[i].Stop()
	}
	req := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("tcp-coin")}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	f, err := engines[0].Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := f.Wait(ctx)
	if err != nil || r.Err != nil {
		t.Fatalf("wait: %v / %v", err, r.Err)
	}
	if len(r.Value) != 32 {
		t.Fatalf("coin value %d bytes", len(r.Value))
	}
}

func TestProxyBridgesP2P(t *testing.T) {
	// Node 1 talks through a proxy into a memnet "host platform" where
	// node 2 lives natively.
	hub := memnet.NewHub(2, memnet.Options{})
	defer hub.Close()

	srv, err := proxy.NewServer("127.0.0.1:0", hub.Endpoint(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := proxy.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Outbound: proxied node sends into the host network.
	if err := client.Send(ctx, 2, network.Envelope{From: 1, Instance: "p", Kind: network.KindProto, Payload: []byte("via-proxy")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-hub.Endpoint(2).Receive():
		if string(env.Payload) != "via-proxy" {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("outbound proxy message lost")
	}

	// Inbound: host network delivery reaches the proxied node.
	if err := hub.Endpoint(2).Send(ctx, 1, network.Envelope{Instance: "p", Kind: network.KindProto, Payload: []byte("to-proxy")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-client.Receive():
		if string(env.Payload) != "to-proxy" {
			t.Fatalf("got %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("inbound proxy message lost")
	}
}
