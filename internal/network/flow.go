package network

// Transport flow control: the per-peer outbound queue policies, peer
// health vocabulary, and typed send/broadcast errors shared by every
// P2P implementation. The paper's model assumes reliable point-to-point
// channels between all N nodes; in a real deployment a single slow or
// dead peer must not stall the other N-2 links, so sends are decoupled
// from the protocol hot path by bounded per-peer queues drained by
// dedicated writers. These types make that decoupling observable
// (TransportStats) and tunable (QueuePolicy) across tcpnet, memnet,
// and the proxy identically.

import (
	"errors"
	"fmt"
	"strings"
)

// QueuePolicy selects what an enqueue does when a peer's bounded
// outbound queue is full.
type QueuePolicy int

const (
	// PolicyBlock waits for queue space, bounded by the send context.
	// This is the default: backpressure propagates to the caller, no
	// frame is dropped.
	PolicyBlock QueuePolicy = iota
	// PolicyDropOldest evicts the oldest queued frame to admit the new
	// one. Sends never block and never fail; the drop counter records
	// the loss. Suited to traffic where the newest message supersedes
	// older ones.
	PolicyDropOldest
	// PolicyFailFast rejects the new frame with ErrPeerBacklogged.
	// Sends never block; the caller decides whether the peer matters.
	PolicyFailFast
)

// String names the policy as accepted by ParseQueuePolicy.
func (p QueuePolicy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyFailFast:
		return "fail-fast"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseQueuePolicy maps a configuration string onto a policy.
func ParseQueuePolicy(s string) (QueuePolicy, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "block":
		return PolicyBlock, nil
	case "drop-oldest", "drop_oldest", "dropoldest":
		return PolicyDropOldest, nil
	case "fail-fast", "fail_fast", "failfast":
		return PolicyFailFast, nil
	default:
		return 0, fmt.Errorf("network: unknown queue policy %q (want block, drop-oldest, or fail-fast)", s)
	}
}

// ErrPeerBacklogged reports that a peer's outbound queue is full under
// PolicyFailFast. The frame was not enqueued; the peer is lagging or
// down and its health appears in TransportStats.
var ErrPeerBacklogged = errors.New("network: peer outbound queue full")

// ErrTransportClosed is returned by sends against a closed transport.
var ErrTransportClosed = errors.New("network: transport closed")

// PeerState is the health of one peer link as seen by the local writer.
type PeerState int

const (
	// PeerUp: the link is established and the last write succeeded.
	PeerUp PeerState = iota
	// PeerDialing: a connection attempt is in flight.
	PeerDialing
	// PeerDown: the last dial or write failed; the writer is in
	// exponential backoff before the next attempt.
	PeerDown
)

// String returns the wire spelling used in stats and /v2/info.
func (s PeerState) String() string {
	switch s {
	case PeerUp:
		return "up"
	case PeerDialing:
		return "dialing"
	case PeerDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// PeerStats is a point-in-time snapshot of one peer link.
type PeerStats struct {
	// Peer is the remote node's 1-based index.
	Peer int
	// State is the link health (up, dialing, down).
	State PeerState
	// QueueDepth and QueueCap describe the bounded outbound queue.
	QueueDepth int
	QueueCap   int
	// Enqueued counts frames admitted to the queue since start.
	Enqueued uint64
	// Sent counts frames written to the wire since start.
	Sent uint64
	// Delivered counts frames the peer has acknowledged: they reached
	// the remote transport and were handed to its engine. Sent minus
	// Delivered is the delivered-vs-sent gap the ack layer closes.
	Delivered uint64
	// Inflight is the number of sequenced frames staged in the ack
	// layer's bounded window, awaiting acknowledgement; they are resent
	// after a reconnect.
	Inflight int
	// Resent counts retransmissions of unacknowledged frames.
	Resent uint64
	// Dropped counts frames rejected or evicted by the queue policy
	// (evictions under drop-oldest, rejections under fail-fast) plus
	// in-flight window evictions. On a Reliable transport a queue-policy
	// drop is recovered by the ack layer while the frame stays windowed;
	// only window evictions are definitive losses.
	Dropped uint64
	// ConsecutiveFailures counts dial/write failures since the last
	// successful write; zero on a healthy link.
	ConsecutiveFailures uint64
	// LastError is the most recent dial/write failure, empty when none.
	LastError string
	// Authenticated reports that the link's current connection completed
	// the mutual-authentication handshake against the roster (always
	// false on an insecure transport, and false while a secure link is
	// down or redialing).
	Authenticated bool
}

// TransportStats is a snapshot of every peer link of a transport,
// ordered by peer index.
type TransportStats struct {
	Peers []PeerStats
	// Policy is the transport's full-queue policy.
	Policy QueuePolicy
	// Reliable reports that the transport runs the seq/ack layer:
	// frames lost between socket and engine are resent after reconnect
	// and duplicates are filtered before Receive. Consumers that need
	// lossless delivery (the TOB sequencer) accept lossy queue policies
	// only on reliable transports.
	Reliable bool
	// Authenticated reports that the transport runs every link through
	// the identity-keyed mutual-authentication handshake: unrostered
	// peers cannot join, and frames ride per-direction AEAD channels.
	Authenticated bool
}

// Peer returns the snapshot of one peer link.
func (ts TransportStats) Peer(index int) (PeerStats, bool) {
	for _, p := range ts.Peers {
		if p.Peer == index {
			return p, true
		}
	}
	return PeerStats{}, false
}

// PeerError wraps a send failure with the peer it failed for, so a
// multi-peer Broadcast error remains attributable per peer.
type PeerError struct {
	Peer int
	Err  error
}

// AttributePeer wraps a queue-policy rejection with the peer it failed
// for; other errors (context cancellation, closed transport) pass
// through unwrapped. Shared by every transport's Send path.
func AttributePeer(peer int, err error) error {
	if errors.Is(err, ErrPeerBacklogged) {
		return &PeerError{Peer: peer, Err: err}
	}
	return err
}

// PeerFailure coerces a send failure into its per-peer form for
// Broadcast aggregation, wrapping errors that are not yet attributed.
func PeerFailure(peer int, err error) *PeerError {
	var pe *PeerError
	if errors.As(err, &pe) {
		return pe
	}
	return &PeerError{Peer: peer, Err: err}
}

// Error implements error.
func (e *PeerError) Error() string { return fmt.Sprintf("peer %d: %v", e.Peer, e.Err) }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PeerError) Unwrap() error { return e.Err }

// BroadcastError aggregates the per-peer failures of one Broadcast.
// Peers not listed received (or durably queued) the frame; callers
// decide whether the surviving set still reaches a quorum.
type BroadcastError struct {
	// Failed holds one entry per failed peer, in peer order.
	Failed []*PeerError
	// Peers is the number of peers the broadcast attempted.
	Peers int
}

// NewBroadcastError builds the aggregate, returning nil when no peer
// failed.
func NewBroadcastError(attempted int, failed []*PeerError) error {
	if len(failed) == 0 {
		return nil
	}
	return &BroadcastError{Failed: failed, Peers: attempted}
}

// Error implements error via errors.Join over the per-peer failures.
func (e *BroadcastError) Error() string {
	errs := make([]error, len(e.Failed))
	for i, pe := range e.Failed {
		errs[i] = pe
	}
	return fmt.Sprintf("network: broadcast failed for %d/%d peers: %v",
		len(e.Failed), e.Peers, errors.Join(errs...))
}

// Unwrap exposes every per-peer failure to errors.Is/As (the multi-error
// form used by errors.Join).
func (e *BroadcastError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i, pe := range e.Failed {
		errs[i] = pe
	}
	return errs
}

// FailedPeers extracts the peer indices a send or broadcast error names,
// walking wrapped and joined errors. An empty result means the error is
// not attributable to specific peers (e.g. a closed transport).
func FailedPeers(err error) []int {
	var out []int
	var walk func(error)
	seen := make(map[int]bool)
	walk = func(err error) {
		if err == nil {
			return
		}
		if pe, ok := err.(*PeerError); ok {
			if !seen[pe.Peer] {
				seen[pe.Peer] = true
				out = append(out, pe.Peer)
			}
			return
		}
		switch x := err.(type) {
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		}
	}
	walk(err)
	return out
}
