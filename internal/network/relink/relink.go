// Package relink is the reliability layer beneath Send/Broadcast: a
// per-link sequence/acknowledgement protocol shared by tcpnet and
// memnet. The paper's model assumes the platform redelivers protocol
// messages; without acks, a frame handed to the kernel before a peer
// crash is counted "sent" and silently lost. relink closes that gap:
//
//   - Every outbound data frame carries a monotonically increasing
//     per-link sequence number (Link.Stage) and is retained in a
//     bounded in-flight window until the peer acknowledges it.
//   - The receiver (Inbox) delivers frames to the engine exactly once
//     and in order per link, buffering out-of-order arrivals and
//     filtering duplicates keyed by (peer, seq).
//   - Acknowledgements are cumulative, piggybacked on reverse traffic
//     and coalesced onto a short timer otherwise; unacknowledged frames
//     are resent after the resend timeout, which is what redelivers
//     everything lost across a reconnect.
//
// A transport restart gets a fresh Epoch (incarnation id), so a peer
// can tell a restarted sender (fresh sequence space, reset the inbound
// cursor) from a sequence gap (buffer and wait for the resend). Each
// frame also carries the sender's window Base — the lowest retained
// sequence — so a receiver that lost its own state (it restarted)
// resumes from the oldest frame the sender can still deliver.
//
// The package is sans-I/O: Link and Inbox only manage state and
// counters; the owning transport moves the frames.
package relink

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sync"
	"time"

	"thetacrypt/internal/network"
)

// Config tunes one transport's ack layer. The zero value selects the
// defaults.
type Config struct {
	// Window bounds the unacknowledged frames retained per link
	// (default 1024). A full window is resolved by Policy, exactly like
	// a full outbound queue.
	Window int
	// AckInterval is the coalescing delay for standalone
	// acknowledgements when no reverse traffic piggybacks them
	// (default 25ms).
	AckInterval time.Duration
	// ResendTimeout is how long a staged frame stays unacknowledged
	// before it is retransmitted (default 500ms). It should exceed one
	// round trip plus AckInterval.
	ResendTimeout time.Duration
	// Policy resolves a full window: block (bounded by the send
	// context), drop-oldest (evict the oldest unacknowledged frame —
	// the only way a reliable transport definitively loses a frame), or
	// fail-fast (reject the new frame).
	Policy network.QueuePolicy
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.AckInterval <= 0 {
		c.AckInterval = 25 * time.Millisecond
	}
	if c.ResendTimeout <= 0 {
		c.ResendTimeout = 500 * time.Millisecond
	}
	return c
}

// NewEpoch returns a random nonzero incarnation id for one transport
// instance. 63 bits keep it positive in signed contexts.
func NewEpoch() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; fall back
			// to a clock-derived epoch rather than panicking.
			return uint64(time.Now().UnixNano()) & (1<<63 - 1)
		}
		e := binary.BigEndian.Uint64(b[:]) & (1<<63 - 1)
		if e != 0 {
			return e
		}
	}
}

// entry is one staged frame awaiting acknowledgement.
type entry struct {
	env    network.Envelope
	sentAt time.Time
}

// Link is the outbound half of one directed peer link: it assigns
// sequence numbers, retains unacknowledged frames in a bounded window,
// and hands back what must be retransmitted. Any number of goroutines
// may Stage; Ack and Resend are typically driven by the transport's
// reader and ticker.
type Link struct {
	cfg   Config
	epoch uint64

	mu      sync.Mutex
	nextSeq uint64   // next sequence number to assign; first frame is 1
	ackedTo uint64   // highest cumulative acknowledgement seen
	window  []*entry // unacknowledged frames in sequence order
	dropped uint64   // window evictions under drop-oldest
	resent  uint64
	closed  bool
	// space is closed and replaced whenever window room frees up, waking
	// block-policy stagers.
	space chan struct{}
	stop  chan struct{}
}

// NewLink creates the outbound state of one link under the given
// transport epoch.
func NewLink(epoch uint64, cfg Config) *Link {
	return &Link{
		cfg:   cfg.WithDefaults(),
		epoch: epoch,
		// Seq 0 marks unsequenced frames, so assignment starts at 1.
		nextSeq: 1,
		space:   make(chan struct{}),
		stop:    make(chan struct{}),
	}
}

// baseLocked is the lowest retained sequence number: the oldest
// unacknowledged frame, or the next to assign when nothing is pending.
func (l *Link) baseLocked() uint64 {
	if len(l.window) > 0 {
		return l.window[0].env.Seq
	}
	return l.nextSeq
}

// Stage admits one data frame to the in-flight window, assigns its
// sequence number, and returns the framed envelope to transmit. On a
// full window the policy decides: block waits for acknowledgements
// (bounded by ctx), drop-oldest evicts the oldest unacknowledged frame,
// fail-fast returns network.ErrPeerBacklogged. A staged frame is
// retained (and resent) until acknowledged, even if the transport's
// queue later rejects or evicts it.
func (l *Link) Stage(ctx context.Context, env network.Envelope) (network.Envelope, error) {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return env, network.ErrTransportClosed
		}
		if len(l.window) >= l.cfg.Window {
			switch l.cfg.Policy {
			case network.PolicyDropOldest:
				l.window = l.window[1:]
				l.dropped++
			case network.PolicyFailFast:
				l.dropped++
				l.mu.Unlock()
				return env, network.ErrPeerBacklogged
			default: // PolicyBlock
				wait := l.space
				l.mu.Unlock()
				select {
				case <-wait:
					continue
				case <-ctx.Done():
					return env, ctx.Err()
				case <-l.stop:
					return env, network.ErrTransportClosed
				}
			}
		}
		env.Seq = l.nextSeq
		l.nextSeq++
		env.Epoch = l.epoch
		l.window = append(l.window, &entry{env: env, sentAt: time.Now()})
		env.Base = l.baseLocked()
		l.mu.Unlock()
		return env, nil
	}
}

// Ack discharges every staged frame with sequence <= upTo. Acks for a
// different epoch (a previous incarnation of this sender) are ignored.
func (l *Link) Ack(epoch, upTo uint64) {
	if epoch != l.epoch {
		return
	}
	l.mu.Lock()
	freed := false
	for len(l.window) > 0 && l.window[0].env.Seq <= upTo {
		l.window = l.window[1:]
		freed = true
	}
	if upTo > l.ackedTo {
		l.ackedTo = upTo
	}
	if freed {
		close(l.space)
		l.space = make(chan struct{})
	}
	l.mu.Unlock()
}

// Resend walks the window and re-emits every frame whose last
// transmission is older than the resend timeout, with a refreshed Base.
// emit reports whether the frame was actually requeued; only then does
// its clock (and the resent counter) advance, so a full queue retries
// on the next tick instead of silently aging the frame. The scan stops
// at the first failed emit: all frames share one queue, so the rest of
// the tick would fail (and pointlessly marshal) too. Returns the
// number of frames requeued.
func (l *Link) Resend(now time.Time, emit func(network.Envelope) bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	base := l.baseLocked()
	for _, en := range l.window {
		if now.Sub(en.sentAt) < l.cfg.ResendTimeout {
			continue
		}
		env := en.env
		env.Base = base
		if !emit(env) {
			break
		}
		en.sentAt = now
		l.resent++
		n++
	}
	return n
}

// Close wakes blocked stagers; further stages fail with
// network.ErrTransportClosed. Window contents are discarded — the
// transport is going away.
func (l *Link) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.stop)
	}
	l.mu.Unlock()
}

// Delivered is the cumulative acknowledgement: frames the peer
// confirmed were handed to its engine.
func (l *Link) Delivered() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ackedTo
}

// Inflight is the number of staged, unacknowledged frames.
func (l *Link) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.window)
}

// Resent counts retransmissions since creation.
func (l *Link) Resent() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.resent
}

// Dropped counts window evictions (definitive losses) since creation.
func (l *Link) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// inboxState is the delivery cursor of one sender incarnation.
type inboxState struct {
	epoch    uint64
	expected uint64 // next sequence number to deliver
	buffer   map[uint64]network.Envelope
}

// inboxEpochs bounds the per-epoch cursors an Inbox remembers: the
// current incarnation plus the previous one, so a straggler frame from
// a dead incarnation (an old connection's read loop draining
// concurrently with the new one's) resumes its own retired cursor
// instead of resetting the live one — which would re-open already
// delivered sequence numbers and break exactly-once delivery.
const inboxEpochs = 2

// Inbox is the inbound half of one directed link: it restores per-link
// order, filters duplicates keyed by (peer, seq), and tracks what must
// be acknowledged back to the sender.
type Inbox struct {
	mu sync.Mutex
	// states is a tiny MRU of per-epoch cursors; states[0] is the
	// current incarnation (the one acks are generated for).
	states    []*inboxState
	maxBuffer int
	pending   bool // an acknowledgement is owed
	dups      uint64
}

// NewInbox creates inbound state buffering at most maxBuffer
// out-of-order frames (further ones are dropped and recovered by the
// sender's resend).
func NewInbox(maxBuffer int) *Inbox {
	if maxBuffer <= 0 {
		maxBuffer = 1024
	}
	return &Inbox{maxBuffer: maxBuffer}
}

// stateFor returns (creating if needed) the cursor of the frame's
// sender incarnation and promotes it to current (states[0]); in.mu is
// held. MRU promotion is what converges the acknowledgement target
// onto the live incarnation: a straggler from a dead epoch may briefly
// claim the front (its acks are ignored by the live sender's Link),
// but the live epoch's continuous traffic — at worst its next resend —
// re-promotes it within a resend timeout, whereas never promoting
// could leave a dead epoch in front forever and wedge the sender's
// window. Dedup is unaffected either way: every epoch keeps its own
// cursor.
func (in *Inbox) stateFor(env network.Envelope) *inboxState {
	for i, s := range in.states {
		if s.epoch == env.Epoch {
			if i != 0 {
				copy(in.states[1:i+1], in.states[:i])
				in.states[0] = s
			}
			return s
		}
	}
	// First contact with this incarnation: start at the sender's window
	// base — everything below it was acknowledged (possibly to a
	// previous incarnation of this node) or given up on.
	s := &inboxState{epoch: env.Epoch, expected: env.Base, buffer: make(map[uint64]network.Envelope)}
	if s.expected == 0 {
		s.expected = 1
	}
	in.states = append([]*inboxState{s}, in.states...)
	if len(in.states) > inboxEpochs {
		in.states = in.states[:inboxEpochs]
	}
	return s
}

// Accept processes one sequenced data frame and returns the envelopes
// now deliverable to the engine, in per-link order. Duplicates return
// nothing but still mark an acknowledgement as owed — the sender
// clearly missed our last one. A frame from an unseen sender epoch
// opens a fresh cursor (the peer restarted); a Base above the cursor
// jumps it (the sender gave the skipped frames up, e.g. window
// evictions under drop-oldest, or we restarted and everything older
// was acknowledged to our previous incarnation).
func (in *Inbox) Accept(env network.Envelope) []network.Envelope {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.stateFor(env)
	if env.Base > s.expected {
		s.expected = env.Base
		for seq := range s.buffer {
			if seq < s.expected {
				delete(s.buffer, seq)
			}
		}
	}
	in.pending = true
	switch {
	case env.Seq < s.expected:
		in.dups++
		return nil
	case env.Seq == s.expected:
		out := []network.Envelope{env}
		s.expected++
		for {
			next, ok := s.buffer[s.expected]
			if !ok {
				break
			}
			delete(s.buffer, s.expected)
			out = append(out, next)
			s.expected++
		}
		return out
	default: // future frame: hold for the gap to fill
		if _, ok := s.buffer[env.Seq]; ok {
			in.dups++
		} else if len(s.buffer) < in.maxBuffer {
			s.buffer[env.Seq] = env
		}
		return nil
	}
}

// AckValue returns the cumulative acknowledgement to send: the current
// sender incarnation and the highest in-order sequence delivered. ok
// is false before any contact.
func (in *Inbox) AckValue() (epoch, upTo uint64, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.states) == 0 {
		return 0, 0, false
	}
	return in.states[0].epoch, in.states[0].expected - 1, true
}

// PendingAck reports whether an acknowledgement is owed and its value.
func (in *Inbox) PendingAck() (epoch, upTo uint64, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.pending || len(in.states) == 0 {
		return 0, 0, false
	}
	return in.states[0].epoch, in.states[0].expected - 1, true
}

// ClearPending marks an acknowledgement as sent (standalone flush or
// piggyback), passing the value that went out. It no-ops when the owed
// acknowledgement has advanced past it since — an Accept that landed
// between reading the value and sending it must not have its ack
// obligation wiped, or the sender would only learn of the delivery a
// resend timeout later.
func (in *Inbox) ClearPending(epoch, upTo uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.states) == 0 {
		return
	}
	if s := in.states[0]; s.epoch == epoch && s.expected-1 <= upTo {
		in.pending = false
	}
}

// Dups counts duplicate frames filtered since creation.
func (in *Inbox) Dups() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dups
}
