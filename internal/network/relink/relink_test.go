package relink

import (
	"context"
	"errors"
	"testing"
	"time"

	"thetacrypt/internal/network"
)

func stage(t *testing.T, l *Link, round int) network.Envelope {
	t.Helper()
	env, err := l.Stage(context.Background(), network.Envelope{Kind: network.KindProto, Round: round})
	if err != nil {
		t.Fatalf("stage round %d: %v", round, err)
	}
	return env
}

func TestStageAssignsMonotonicSeqs(t *testing.T) {
	l := NewLink(7, Config{})
	for i := 1; i <= 5; i++ {
		env := stage(t, l, i)
		if env.Seq != uint64(i) || env.Epoch != 7 {
			t.Fatalf("frame %d staged as seq=%d epoch=%d", i, env.Seq, env.Epoch)
		}
		if env.Base != 1 {
			t.Fatalf("frame %d base = %d, want 1 (nothing acked)", i, env.Base)
		}
	}
	if got := l.Inflight(); got != 5 {
		t.Fatalf("inflight = %d, want 5", got)
	}
}

func TestAckDischargesCumulatively(t *testing.T) {
	l := NewLink(7, Config{})
	for i := 1; i <= 4; i++ {
		stage(t, l, i)
	}
	l.Ack(99, 4) // wrong epoch: ignored
	if l.Delivered() != 0 || l.Inflight() != 4 {
		t.Fatalf("foreign-epoch ack discharged frames: delivered=%d inflight=%d", l.Delivered(), l.Inflight())
	}
	l.Ack(7, 3)
	if l.Delivered() != 3 || l.Inflight() != 1 {
		t.Fatalf("after ack 3: delivered=%d inflight=%d", l.Delivered(), l.Inflight())
	}
	if env := stage(t, l, 5); env.Base != 4 {
		t.Fatalf("base after ack 3 = %d, want 4", env.Base)
	}
}

func TestWindowBlockPolicyWaitsForAck(t *testing.T) {
	l := NewLink(1, Config{Window: 2, Policy: network.PolicyBlock})
	stage(t, l, 1)
	stage(t, l, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := l.Stage(ctx, network.Envelope{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stage into full window returned %v, want DeadlineExceeded", err)
	}

	done := make(chan network.Envelope, 1)
	go func() {
		env, err := l.Stage(context.Background(), network.Envelope{})
		if err != nil {
			t.Errorf("stage after ack: %v", err)
		}
		done <- env
	}()
	time.Sleep(10 * time.Millisecond)
	l.Ack(1, 1)
	select {
	case env := <-done:
		// Seq 3 was burned by the deadline-exceeded attempt's... no: a
		// failed block never assigns a sequence number, so this is 3.
		if env.Seq != 3 {
			t.Fatalf("unblocked stage got seq %d, want 3", env.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stage not unblocked by ack")
	}
}

func TestWindowFailFast(t *testing.T) {
	l := NewLink(1, Config{Window: 1, Policy: network.PolicyFailFast})
	stage(t, l, 1)
	if _, err := l.Stage(context.Background(), network.Envelope{}); !errors.Is(err, network.ErrPeerBacklogged) {
		t.Fatalf("full fail-fast window returned %v, want ErrPeerBacklogged", err)
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", l.Dropped())
	}
}

func TestWindowDropOldestEvictsAndAdvancesBase(t *testing.T) {
	l := NewLink(1, Config{Window: 2, Policy: network.PolicyDropOldest})
	stage(t, l, 1)
	stage(t, l, 2)
	env := stage(t, l, 3) // evicts seq 1
	if env.Seq != 3 || env.Base != 2 {
		t.Fatalf("post-eviction frame seq=%d base=%d, want 3/2", env.Seq, env.Base)
	}
	if l.Dropped() != 1 || l.Inflight() != 2 {
		t.Fatalf("dropped=%d inflight=%d, want 1/2", l.Dropped(), l.Inflight())
	}
}

func TestResendOnlyStaleFramesAndHonorsEmit(t *testing.T) {
	l := NewLink(1, Config{ResendTimeout: 10 * time.Millisecond})
	stage(t, l, 1)
	stage(t, l, 2)
	if n := l.Resend(time.Now(), func(network.Envelope) bool { return true }); n != 0 {
		t.Fatalf("fresh frames resent: %d", n)
	}
	later := time.Now().Add(20 * time.Millisecond)
	var got []uint64
	n := l.Resend(later, func(env network.Envelope) bool {
		got = append(got, env.Seq)
		return env.Seq == 1 // pretend the queue only had room for one
	})
	if n != 1 || len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("resend requeued %d of %v, want 1 of [1 2]", n, got)
	}
	// Frame 2 was not requeued, so it is still due; frame 1's clock
	// advanced.
	n = l.Resend(later, func(env network.Envelope) bool { return true })
	if n != 1 || l.Resent() != 2 {
		t.Fatalf("second pass requeued %d (resent total %d), want 1 (2)", n, l.Resent())
	}
}

func TestCloseUnblocksStagers(t *testing.T) {
	l := NewLink(1, Config{Window: 1, Policy: network.PolicyBlock})
	stage(t, l, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Stage(context.Background(), network.Envelope{})
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, network.ErrTransportClosed) {
			t.Fatalf("blocked stage returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the stager")
	}
}

func frame(epoch, seq, base uint64, round int) network.Envelope {
	return network.Envelope{Kind: network.KindProto, Round: round, Seq: seq, Epoch: epoch, Base: base}
}

func rounds(envs []network.Envelope) []int {
	out := make([]int, len(envs))
	for i, e := range envs {
		out[i] = e.Round
	}
	return out
}

func TestInboxInOrderAndReorder(t *testing.T) {
	in := NewInbox(16)
	if got := in.Accept(frame(5, 1, 1, 1)); len(got) != 1 || got[0].Round != 1 {
		t.Fatalf("first frame delivered %v", rounds(got))
	}
	// Out of order: 3 before 2 is buffered, then both flush.
	if got := in.Accept(frame(5, 3, 1, 3)); len(got) != 0 {
		t.Fatalf("gap frame delivered early: %v", rounds(got))
	}
	if got := in.Accept(frame(5, 2, 1, 2)); len(got) != 2 || got[0].Round != 2 || got[1].Round != 3 {
		t.Fatalf("gap fill delivered %v, want [2 3]", rounds(got))
	}
	epoch, upTo, ok := in.AckValue()
	if !ok || epoch != 5 || upTo != 3 {
		t.Fatalf("ack value = (%d,%d,%v), want (5,3,true)", epoch, upTo, ok)
	}
}

func TestInboxFiltersDuplicates(t *testing.T) {
	in := NewInbox(16)
	in.Accept(frame(5, 1, 1, 1))
	if got := in.Accept(frame(5, 1, 1, 1)); len(got) != 0 {
		t.Fatalf("duplicate delivered: %v", rounds(got))
	}
	if in.Dups() != 1 {
		t.Fatalf("dups = %d, want 1", in.Dups())
	}
	// A duplicate still owes an ack: the sender clearly missed ours.
	in.ClearPending(5, 1)
	in.Accept(frame(5, 1, 1, 1))
	if _, _, ok := in.PendingAck(); !ok {
		t.Fatal("duplicate did not re-arm the pending ack")
	}
}

func TestClearPendingIgnoresStaleValue(t *testing.T) {
	in := NewInbox(16)
	in.Accept(frame(5, 1, 1, 1))
	epoch, upTo, _ := in.PendingAck() // (5, 1) read by a flusher...
	in.Accept(frame(5, 2, 1, 2))      // ...then a frame lands before the clear
	in.ClearPending(epoch, upTo)
	if _, got, ok := in.PendingAck(); !ok || got != 2 {
		t.Fatalf("pending ack = (%d,%v) after stale clear, want (2,true)", got, ok)
	}
	// Clearing the current value works.
	in.ClearPending(5, 2)
	if _, _, ok := in.PendingAck(); ok {
		t.Fatal("current-value clear did not take")
	}
}

func TestInboxStaleEpochStragglerDoesNotResetCursor(t *testing.T) {
	// The receiver is mid-stream on epoch B; a straggler from the dead
	// incarnation A (old connection draining concurrently) must not
	// reset B's cursor — a following resend of an already delivered B
	// frame would otherwise be delivered twice.
	in := NewInbox(16)
	in.Accept(frame(7, 1, 1, 1))                             // epoch A history
	if got := in.Accept(frame(9, 1, 1, 10)); len(got) != 1 { // epoch B takes over
		t.Fatalf("fresh epoch frame delivered %v", rounds(got))
	}
	in.Accept(frame(9, 2, 1, 11))
	if got := in.Accept(frame(7, 2, 1, 2)); len(got) != 1 || got[0].Round != 2 {
		// The straggler resumes A's own retired cursor.
		t.Fatalf("straggler delivered %v, want [2]", rounds(got))
	}
	// The straggler briefly claims the ack target (MRU) — its acks are
	// ignored by the live sender — but B's cursor survived: a resend of
	// B seq 1 is a duplicate, B's stream continues where it left off,
	// and the acknowledgement target re-converges on B.
	if got := in.Accept(frame(9, 1, 1, 10)); len(got) != 0 {
		t.Fatalf("replayed B frame delivered again: %v", rounds(got))
	}
	if got := in.Accept(frame(9, 3, 1, 12)); len(got) != 1 || got[0].Round != 12 {
		t.Fatalf("B stream broken after straggler: %v", rounds(got))
	}
	if epoch, upTo, ok := in.AckValue(); !ok || epoch != 9 || upTo != 3 {
		t.Fatalf("ack value = (%d,%d,%v) after straggler, want (9,3,true)", epoch, upTo, ok)
	}
}

func TestInboxEpochResetOnSenderRestart(t *testing.T) {
	in := NewInbox(16)
	in.Accept(frame(5, 1, 1, 1))
	in.Accept(frame(5, 2, 1, 2))
	// The sender restarts: new epoch, sequence space restarts at 1.
	if got := in.Accept(frame(9, 1, 1, 10)); len(got) != 1 || got[0].Round != 10 {
		t.Fatalf("fresh-epoch frame delivered %v, want [10]", rounds(got))
	}
	epoch, upTo, _ := in.AckValue()
	if epoch != 9 || upTo != 1 {
		t.Fatalf("ack after epoch reset = (%d,%d), want (9,1)", epoch, upTo)
	}
}

func TestInboxBaseJumpSkipsSettledFrames(t *testing.T) {
	// A fresh receiver (restarted node): the sender's window starts at 4
	// because 1..3 were acknowledged to our previous incarnation.
	in := NewInbox(16)
	if got := in.Accept(frame(5, 5, 4, 5)); len(got) != 0 {
		t.Fatalf("future frame delivered early: %v", rounds(got))
	}
	if got := in.Accept(frame(5, 4, 4, 4)); len(got) != 2 || got[0].Round != 4 || got[1].Round != 5 {
		t.Fatalf("base-jump delivery %v, want [4 5]", rounds(got))
	}
	// Mid-stream jump: the sender evicted 6 under drop-oldest.
	if got := in.Accept(frame(5, 7, 7, 7)); len(got) != 1 || got[0].Round != 7 {
		t.Fatalf("jump past evicted frame delivered %v, want [7]", rounds(got))
	}
}

func TestInboxUnsequencedPassThroughIsCallersJob(t *testing.T) {
	// Seq 0 frames never reach Accept (transports deliver them raw);
	// this guards the contract that Accept only sees sequenced frames.
	in := NewInbox(4)
	if got := in.Accept(frame(5, 1, 1, 1)); len(got) != 1 {
		t.Fatalf("sequenced frame not delivered: %v", rounds(got))
	}
}

// BenchmarkRelinkStageAckCycle measures the ack layer's hot path: stage
// one frame, accept it, discharge the window — the per-frame overhead
// added beneath every Send.
func BenchmarkRelinkStageAckCycle(b *testing.B) {
	l := NewLink(3, Config{Window: 4096})
	in := NewInbox(4096)
	ctx := context.Background()
	env := network.Envelope{Kind: network.KindProto, Payload: []byte("bench")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		staged, err := l.Stage(ctx, env)
		if err != nil {
			b.Fatal(err)
		}
		out := in.Accept(staged)
		if len(out) != 1 {
			b.Fatalf("accept delivered %d frames", len(out))
		}
		epoch, upTo, _ := in.AckValue()
		l.Ack(epoch, upTo)
	}
}

// BenchmarkRelinkResendScan measures one resend pass over a full but
// fresh window (nothing due) — the steady-state ticker cost.
func BenchmarkRelinkResendScan(b *testing.B) {
	l := NewLink(3, Config{Window: 1024, ResendTimeout: time.Hour})
	ctx := context.Background()
	for i := 0; i < 1024; i++ {
		if _, err := l.Stage(ctx, network.Envelope{Kind: network.KindProto}); err != nil {
			b.Fatal(err)
		}
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Resend(now, func(network.Envelope) bool { return true })
	}
}
