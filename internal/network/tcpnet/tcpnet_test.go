package tcpnet_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/tcpnet"
)

// slowListener accepts connections and never reads from them, so the
// peer's socket buffers fill and its writes stall — the profile of a
// wedged or overloaded node.
type slowListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newSlowListener(t *testing.T) *slowListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &slowListener{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.mu.Unlock()
		}
	}()
	return s
}

func (s *slowListener) addr() string { return s.ln.Addr().String() }

func (s *slowListener) close() {
	_ = s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		_ = c.Close()
	}
}

// TestSlowPeerDoesNotBlockOtherSends: each peer's frames flow through
// its own bounded queue and writer goroutine, so a peer that stops
// reading stalls only its own link — its queue fills and (block policy)
// its senders wait on their context, while sends to healthy peers
// proceed untouched. The small OutQueueLen keeps the wedged link's
// backlog bounded in memory, exactly what it does in production.
func TestSlowPeerDoesNotBlockOtherSends(t *testing.T) {
	t1, err := tcpnet.New(tcpnet.Config{Self: 1, ListenAddr: "127.0.0.1:0", OutQueueLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := tcpnet.New(tcpnet.Config{Self: 3, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	slow := newSlowListener(t)
	t1.SetPeer(2, slow.addr())
	t1.SetPeer(3, t3.Addr())

	// Wedge the link to peer 2: large frames into a peer that never
	// reads fill the socket buffers within a few sends.
	spamCtx, cancelSpam := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		big := network.Envelope{
			Instance: "wedge", Kind: network.KindProto,
			Payload: make([]byte, 1<<20),
		}
		for spamCtx.Err() == nil {
			if err := t1.Send(spamCtx, 2, big); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		cancelSpam()
		_ = t1.Close() // closes the wedged conn, unblocking the writer
		_ = t3.Close()
		wg.Wait()
		slow.close()
	})
	time.Sleep(300 * time.Millisecond) // let the writer fill the buffers and stall

	// A send to the healthy peer must complete promptly regardless.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sent := make(chan error, 1)
	go func() {
		sent <- t1.Send(ctx, 3, network.Envelope{
			Instance: "healthy", Kind: network.KindProto, Payload: []byte("hi"),
		})
	}()
	select {
	case err := <-sent:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send to healthy peer blocked behind the stalled peer")
	}
	select {
	case env := <-t3.Receive():
		if string(env.Payload) != "hi" || env.From != 1 {
			t.Fatalf("healthy peer received %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("healthy peer never received the envelope")
	}

	// The wedged link is visible to operators: its queue is backed up
	// while the healthy link has flowed.
	st := t1.TransportStats()
	if wedged, ok := st.Peer(2); !ok || wedged.QueueDepth < 1 {
		t.Fatalf("wedged peer stats = %+v, want a backed-up queue", wedged)
	}
	if healthy, ok := st.Peer(3); !ok || healthy.Sent < 1 || healthy.State != network.PeerUp {
		t.Fatalf("healthy peer stats = %+v, want Up with sends", healthy)
	}
}

// TestLateRegistrationDoesNotRedeliver: traffic can arrive before the
// receiver has registered the sender (dynamic wiring). The receiver
// must still deduplicate the sender's retransmissions — it cannot ack
// yet, so the sender resends — and once the peer IS registered, the
// owed acknowledgements flush, draining the sender's window and ending
// the resend loop. Nothing is ever delivered twice.
func TestLateRegistrationDoesNotRedeliver(t *testing.T) {
	mk := func(self int) *tcpnet.Transport {
		tr, err := tcpnet.New(tcpnet.Config{
			Self: self, ListenAddr: "127.0.0.1:0",
			AckInterval:   5 * time.Millisecond,
			ResendTimeout: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = tr.Close() })
		return tr
	}
	t1, t2 := mk(1), mk(2)
	t1.SetPeer(2, t2.Addr()) // t2 does NOT know peer 1 yet

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := t1.Send(ctx, 2, network.Envelope{Instance: "late", Kind: network.KindProto, Round: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-t2.Receive():
		if env.Round != 1 {
			t.Fatalf("received %+v", env)
		}
	case <-ctx.Done():
		t.Fatal("frame never delivered")
	}
	// Several resend timeouts pass; the unacked frame is retransmitted
	// but must be filtered, not redelivered.
	select {
	case env := <-t2.Receive():
		t.Fatalf("retransmission redelivered to the engine: %+v", env)
	case <-time.After(150 * time.Millisecond):
	}

	// Registration adopts the existing inbound cursor: the owed ack
	// flushes and the sender's window drains.
	t2.SetPeer(1, t1.Addr())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ps, ok := t1.TransportStats().Peer(2); ok && ps.Delivered >= 1 && ps.Inflight == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	ps, _ := t1.TransportStats().Peer(2)
	t.Fatalf("window never drained after late registration: %+v", ps)
}

// TestBroadcastAddressing: broadcast frames are addressed To=Broadcast
// (memnet semantics) on every link, even though each peer's copy now
// carries its own per-link sequence number from the ack layer.
func TestBroadcastAddressing(t *testing.T) {
	transports := make([]*tcpnet.Transport, 3)
	for i := range transports {
		tr, err := tcpnet.New(tcpnet.Config{Self: i + 1, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		t.Cleanup(func() { _ = tr.Close() })
	}
	for i := range transports {
		for j := range transports {
			if i != j {
				transports[i].SetPeer(j+1, transports[j].Addr())
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := transports[0].Broadcast(ctx, network.Envelope{
		Instance: "bcast", Kind: network.KindStart, Payload: []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	for _, tr := range transports[1:] {
		select {
		case env := <-tr.Receive():
			if env.To != network.Broadcast {
				t.Fatalf("broadcast frame addressed To=%d, want Broadcast (%d)", env.To, network.Broadcast)
			}
			if env.From != 1 || string(env.Payload) != "x" {
				t.Fatalf("broadcast frame %+v", env)
			}
		case <-ctx.Done():
			t.Fatal("broadcast not delivered")
		}
	}
}
