// Package tcpnet is the standalone P2P transport: a full mesh of
// length-prefixed TCP connections. It replaces the original system's
// libp2p gossip overlay; the paper's model only requires reliable
// point-to-point channels, which persistent TCP links provide directly.
package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"thetacrypt/internal/network"
)

// maxFrame bounds a single wire frame (16 MiB).
const maxFrame = 16 << 20

// Config describes one node's view of the mesh.
type Config struct {
	// Self is this node's index (1-based).
	Self int
	// ListenAddr is the local listen address, e.g. ":7001".
	ListenAddr string
	// Peers maps node index to dialable address for every OTHER node.
	Peers map[int]string
	// DialRetry is the backoff between reconnect attempts (default
	// 250 ms).
	DialRetry time.Duration
	// QueueLen is the inbound queue length (default 4096).
	QueueLen int
}

// Transport is a network.P2P over TCP.
type Transport struct {
	cfg Config
	ln  net.Listener
	in  chan network.Envelope

	// mu guards the connection and peer tables only; it is never held
	// across a socket write, so one stalled peer cannot block sends to
	// the others (writes serialize per connection via peerConn.mu).
	mu      sync.Mutex
	conns   map[int]*peerConn
	inbound []net.Conn
	done    sync.WaitGroup
	stop    chan struct{}
	close   sync.Once
}

// peerConn is one outbound connection with its write lock: frames to
// the same peer are serialized, frames to different peers proceed in
// parallel.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ network.P2P = (*Transport)(nil)

// New starts listening and returns the transport. Outbound connections
// are dialed lazily with retry.
func New(cfg Config) (*Transport, error) {
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	if cfg.Peers == nil {
		cfg.Peers = make(map[int]string)
	}
	t := &Transport{
		cfg:   cfg,
		ln:    ln,
		in:    make(chan network.Envelope, cfg.QueueLen),
		conns: make(map[int]*peerConn),
		stop:  make(chan struct{}),
	}
	t.done.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) a peer address; used when ports are
// assigned dynamically.
func (t *Transport) SetPeer(index int, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Peers[index] = addr
}

// peerAddr looks up a peer address.
func (t *Transport) peerAddr(index int) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.cfg.Peers[index]
	return addr, ok
}

// peerIndices snapshots the peer set.
func (t *Transport) peerIndices() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.cfg.Peers))
	for idx := range t.cfg.Peers {
		out = append(out, idx)
	}
	return out
}

func (t *Transport) acceptLoop() {
	defer t.done.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound = append(t.inbound, conn)
		t.mu.Unlock()
		t.done.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.done.Done()
	defer conn.Close()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		env, err := network.UnmarshalEnvelope(frame)
		if err != nil {
			continue // skip malformed frames
		}
		select {
		case t.in <- env:
		case <-t.stop:
			return
		}
	}
}

// connTo returns (dialing if necessary) the outbound connection to a
// peer.
func (t *Transport) connTo(ctx context.Context, to int) (*peerConn, error) {
	t.mu.Lock()
	if pc, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	t.mu.Unlock()

	addr, ok := t.peerAddr(to)
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for peer %d", to)
	}
	var dialer net.Dialer
	for {
		conn, err := dialer.DialContext(ctx, "tcp", addr)
		if err == nil {
			t.mu.Lock()
			if existing, ok := t.conns[to]; ok {
				t.mu.Unlock()
				_ = conn.Close()
				return existing, nil
			}
			pc := &peerConn{conn: conn}
			t.conns[to] = pc
			t.mu.Unlock()
			return pc, nil
		}
		select {
		case <-time.After(t.cfg.DialRetry):
		case <-ctx.Done():
			return nil, fmt.Errorf("tcpnet dial %d: %w", to, ctx.Err())
		case <-t.stop:
			return nil, errors.New("tcpnet: transport closed")
		}
	}
}

// Send delivers one envelope to a peer, redialing once on a stale
// connection.
func (t *Transport) Send(ctx context.Context, to int, env network.Envelope) error {
	env.From = t.cfg.Self
	env.To = to
	return t.sendFrame(ctx, to, env.Marshal())
}

// sendFrame writes one pre-marshaled frame to a peer. Only the
// per-connection lock is held across the (possibly blocking) socket
// write, so a stalled peer delays its own frames and nothing else.
func (t *Transport) sendFrame(ctx context.Context, to int, frame []byte) error {
	for attempt := 0; attempt < 2; attempt++ {
		pc, err := t.connTo(ctx, to)
		if err != nil {
			return err
		}
		pc.mu.Lock()
		err = writeFrame(pc.conn, frame)
		pc.mu.Unlock()
		if err == nil {
			return nil
		}
		t.dropConn(to, pc)
	}
	return fmt.Errorf("tcpnet: send to %d failed", to)
}

// dropConn discards a failed connection, unless a newer one already
// replaced it.
func (t *Transport) dropConn(to int, pc *peerConn) {
	_ = pc.conn.Close()
	t.mu.Lock()
	if t.conns[to] == pc {
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

// Broadcast sends to every configured peer; the first error is returned
// after attempting all peers. The envelope is marshaled once with
// To=Broadcast (matching memnet's semantics) and the identical frame is
// reused for every peer.
func (t *Transport) Broadcast(ctx context.Context, env network.Envelope) error {
	env.From = t.cfg.Self
	env.To = network.Broadcast
	frame := env.Marshal()
	var firstErr error
	for _, to := range t.peerIndices() {
		if err := t.sendFrame(ctx, to, frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Receive returns the inbound envelope stream.
func (t *Transport) Receive() <-chan network.Envelope { return t.in }

// Close shuts down the transport.
func (t *Transport) Close() error {
	t.close.Do(func() {
		close(t.stop)
		_ = t.ln.Close()
		t.mu.Lock()
		for _, pc := range t.conns {
			_ = pc.conn.Close()
		}
		for _, c := range t.inbound {
			_ = c.Close()
		}
		t.mu.Unlock()
		t.done.Wait()
		close(t.in)
	})
	return nil
}

// writeFrame writes one 4-byte length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(payload)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
