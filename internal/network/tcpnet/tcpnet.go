// Package tcpnet is the standalone P2P transport: a full mesh of
// length-prefixed TCP connections. It replaces the original system's
// libp2p gossip overlay; the paper's model only requires reliable
// point-to-point channels, which persistent TCP links provide directly.
//
// Sends are asynchronous: each peer has a bounded outbound queue
// drained by a dedicated writer goroutine that owns the peer's
// connection, dials in the background with exponential backoff, and
// tracks link health (up/dialing/down). Send and Broadcast enqueue in
// O(1) and never touch the dialer, so a dead or slow peer cannot stall
// the caller; a full queue is resolved by the configured
// network.QueuePolicy. TransportStats snapshots every link for
// operators and tests.
package tcpnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/outq"
)

// maxFrame bounds a single wire frame (16 MiB).
const maxFrame = 16 << 20

// Config describes one node's view of the mesh.
type Config struct {
	// Self is this node's index (1-based).
	Self int
	// ListenAddr is the local listen address, e.g. ":7001".
	ListenAddr string
	// Peers maps node index to dialable address for every OTHER node.
	Peers map[int]string
	// DialRetry is the initial backoff between reconnect attempts
	// (default 250 ms); it doubles per consecutive failure up to
	// DialBackoffMax.
	DialRetry time.Duration
	// DialBackoffMax caps the exponential dial backoff (default 4 s).
	DialBackoffMax time.Duration
	// QueueLen is the inbound queue length (default 4096).
	QueueLen int
	// OutQueueLen bounds each peer's outbound queue (default 1024
	// frames). The queue absorbs bursts and peer outages; overflow is
	// resolved by Policy.
	OutQueueLen int
	// Policy selects the full-queue behavior (default PolicyBlock:
	// wait for space, bounded by the send context).
	Policy network.QueuePolicy
	// WriteTimeout bounds one frame write on an established connection
	// (default 30 s). A peer that accepts the connection but stops
	// reading trips it, dropping the link into redial instead of
	// wedging the writer forever.
	WriteTimeout time.Duration
}

// Transport is a network.P2P over TCP.
type Transport struct {
	cfg Config
	ln  net.Listener
	in  chan network.Envelope

	// mu guards the peer and inbound-connection tables only; it is
	// never held across a dial or a socket write.
	mu      sync.Mutex
	peers   map[int]*peer
	inbound []net.Conn

	done sync.WaitGroup
	stop chan struct{}
	// dialCtx is canceled on Close, aborting in-flight dials.
	dialCtx    context.Context
	dialCancel context.CancelFunc
	close      sync.Once
}

// peer is one outbound link: its bounded queue, the writer goroutine's
// connection, and health bookkeeping.
type peer struct {
	index int
	q     *outq.Queue[[]byte]

	mu          sync.Mutex
	addr        string
	conn        net.Conn
	state       network.PeerState
	consecFails uint64
	lastErr     error

	sent atomic.Uint64
}

var _ network.P2P = (*Transport)(nil)

// New starts listening and returns the transport. Writer goroutines are
// started per configured peer; outbound connections are dialed in the
// background once traffic arrives, with exponential backoff on failure.
func New(cfg Config) (*Transport, error) {
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = 4 * time.Second
	}
	if cfg.DialBackoffMax < cfg.DialRetry {
		cfg.DialBackoffMax = cfg.DialRetry
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.OutQueueLen <= 0 {
		cfg.OutQueueLen = 1024
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	dialCtx, dialCancel := context.WithCancel(context.Background())
	t := &Transport{
		cfg:        cfg,
		ln:         ln,
		in:         make(chan network.Envelope, cfg.QueueLen),
		peers:      make(map[int]*peer),
		stop:       make(chan struct{}),
		dialCtx:    dialCtx,
		dialCancel: dialCancel,
	}
	for idx, addr := range cfg.Peers {
		t.addPeerLocked(idx, addr) // no concurrency yet; lock not needed
	}
	t.done.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// addPeerLocked registers a peer and starts its writer; t.mu must be
// held (or the transport not yet shared).
func (t *Transport) addPeerLocked(index int, addr string) *peer {
	p := &peer{
		index: index,
		addr:  addr,
		q:     outq.New[[]byte](t.cfg.OutQueueLen, t.cfg.Policy),
		// Down until the writer establishes the link: no connection
		// exists yet.
		state: network.PeerDown,
	}
	t.peers[index] = p
	t.done.Add(1)
	go t.writer(p)
	return p
}

// SetPeer registers (or re-addresses) a peer; used when ports are
// assigned dynamically.
func (t *Transport) SetPeer(index int, addr string) {
	t.mu.Lock()
	p, ok := t.peers[index]
	if !ok {
		t.addPeerLocked(index, addr)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	p.mu.Lock()
	p.addr = addr
	p.mu.Unlock()
}

// peer looks up a registered peer.
func (t *Transport) peer(index int) (*peer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[index]
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for peer %d", index)
	}
	return p, nil
}

// peerSnapshot returns the registered peers sorted by index.
func (t *Transport) peerSnapshot() []*peer {
	t.mu.Lock()
	out := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		out = append(out, p)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}

func (t *Transport) acceptLoop() {
	defer t.done.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound = append(t.inbound, conn)
		t.mu.Unlock()
		t.done.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.done.Done()
	defer conn.Close()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		env, err := network.UnmarshalEnvelope(frame)
		if err != nil {
			continue // skip malformed frames
		}
		select {
		case t.in <- env:
		case <-t.stop:
			return
		}
	}
}

// writer is peer p's dedicated goroutine: it drains the outbound queue
// and owns the connection. Dial failures and write errors put the link
// into exponential backoff (DialRetry doubling up to DialBackoffMax);
// the frame being delivered is retried, not dropped — overflow policy
// applies only at enqueue time.
func (t *Transport) writer(p *peer) {
	defer t.done.Done()
	backoff := t.cfg.DialRetry
	for {
		frame, ok := p.q.Dequeue(t.stop)
		if !ok {
			return
		}
		for {
			select {
			case <-t.stop:
				return
			default:
			}
			conn, err := t.ensureConn(p)
			if err == nil {
				_ = conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
				err = writeFrame(conn, frame)
				if err == nil {
					p.noteSent()
					backoff = t.cfg.DialRetry
					break
				}
				// A partial frame may be on the wire; the connection
				// cannot be reused.
				p.dropConn(conn)
				p.noteFailure(err)
			}
			if !t.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, t.cfg.DialBackoffMax)
		}
	}
}

// sleep waits d or until the transport stops; false means stop.
func (t *Transport) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.stop:
		return false
	}
}

// ensureConn returns the peer's established connection, dialing if none
// exists. Only the writer goroutine calls it, so at most one dial per
// peer is ever in flight.
func (t *Transport) ensureConn(p *peer) (net.Conn, error) {
	p.mu.Lock()
	if p.conn != nil {
		conn := p.conn
		p.mu.Unlock()
		return conn, nil
	}
	addr := p.addr
	p.state = network.PeerDialing
	p.mu.Unlock()
	if addr == "" {
		err := fmt.Errorf("tcpnet: no address for peer %d", p.index)
		p.noteFailure(err)
		return nil, err
	}
	// Bound the attempt: a blackholed peer (packets silently dropped)
	// must fail within the backoff cap, not pin the writer for the OS
	// SYN-retry window.
	dialer := net.Dialer{Timeout: t.cfg.DialBackoffMax}
	conn, err := dialer.DialContext(t.dialCtx, "tcp", addr)
	if err != nil {
		p.noteFailure(err)
		return nil, err
	}
	p.mu.Lock()
	p.conn = conn
	p.state = network.PeerUp
	p.consecFails = 0
	p.lastErr = nil
	p.mu.Unlock()
	return conn, nil
}

// noteSent records a successful frame write.
func (p *peer) noteSent() {
	p.sent.Add(1)
	p.mu.Lock()
	p.state = network.PeerUp
	p.consecFails = 0
	p.lastErr = nil
	p.mu.Unlock()
}

// noteFailure records a dial or write failure; the link is Down until
// the next attempt succeeds.
func (p *peer) noteFailure(err error) {
	p.mu.Lock()
	p.state = network.PeerDown
	p.consecFails++
	p.lastErr = err
	p.mu.Unlock()
}

// dropConn discards a failed connection.
func (p *peer) dropConn(conn net.Conn) {
	_ = conn.Close()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	p.mu.Unlock()
}

// Send enqueues one envelope for a peer in O(1); the peer's writer
// delivers it in the background. A full queue is resolved by the
// configured policy: block (bounded by ctx), drop-oldest, or fail-fast
// with a *network.PeerError wrapping network.ErrPeerBacklogged.
func (t *Transport) Send(ctx context.Context, to int, env network.Envelope) error {
	env.From = t.cfg.Self
	env.To = to
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	return p.enqueue(ctx, env.Marshal())
}

// enqueue admits one frame to the peer's queue, attributing policy
// failures to the peer.
func (p *peer) enqueue(ctx context.Context, frame []byte) error {
	if err := p.q.Enqueue(ctx, frame); err != nil {
		return network.AttributePeer(p.index, err)
	}
	return nil
}

// Broadcast enqueues the envelope for every registered peer. The
// envelope is marshaled once with To=Broadcast (matching memnet's
// semantics) and the identical frame is shared by every queue. All
// peers are attempted; failures are aggregated into a
// *network.BroadcastError naming each failed peer, so callers can
// judge whether the surviving set still reaches a quorum.
func (t *Transport) Broadcast(ctx context.Context, env network.Envelope) error {
	env.From = t.cfg.Self
	env.To = network.Broadcast
	frame := env.Marshal()
	peers := t.peerSnapshot()
	var failed []*network.PeerError
	for _, p := range peers {
		if err := p.enqueue(ctx, frame); err != nil {
			failed = append(failed, network.PeerFailure(p.index, err))
		}
	}
	return network.NewBroadcastError(len(peers), failed)
}

// TransportStats snapshots every peer link.
func (t *Transport) TransportStats() network.TransportStats {
	peers := t.peerSnapshot()
	out := network.TransportStats{Peers: make([]network.PeerStats, 0, len(peers))}
	for _, p := range peers {
		p.mu.Lock()
		ps := network.PeerStats{
			Peer:                p.index,
			State:               p.state,
			ConsecutiveFailures: p.consecFails,
		}
		if p.lastErr != nil {
			ps.LastError = p.lastErr.Error()
		}
		p.mu.Unlock()
		ps.QueueDepth = p.q.Len()
		ps.QueueCap = p.q.Cap()
		ps.Enqueued = p.q.Enqueued()
		ps.Dropped = p.q.Dropped()
		ps.Sent = p.sent.Load()
		out.Peers = append(out.Peers, ps)
	}
	return out
}

// Receive returns the inbound envelope stream.
func (t *Transport) Receive() <-chan network.Envelope { return t.in }

// Close shuts down the transport: writers stop, connections close, and
// the inbound channel is closed once every goroutine has exited.
func (t *Transport) Close() error {
	t.close.Do(func() {
		close(t.stop)
		t.dialCancel()
		_ = t.ln.Close()
		t.mu.Lock()
		for _, p := range t.peers {
			p.q.Close()
			p.mu.Lock()
			if p.conn != nil {
				_ = p.conn.Close()
			}
			p.mu.Unlock()
		}
		for _, c := range t.inbound {
			_ = c.Close()
		}
		t.mu.Unlock()
		t.done.Wait()
		close(t.in)
	})
	return nil
}

// writeFrame writes one 4-byte length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(payload)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
