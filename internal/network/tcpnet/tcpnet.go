// Package tcpnet is the standalone P2P transport: a full mesh of
// length-prefixed TCP connections. It replaces the original system's
// libp2p gossip overlay; the paper's model only requires reliable
// point-to-point channels, which persistent TCP links provide directly.
//
// Sends are asynchronous: each peer has a bounded outbound queue
// drained by a dedicated writer goroutine that owns the peer's
// connection, dials in the background with exponential backoff, and
// tracks link health (up/dialing/down). Send and Broadcast enqueue in
// O(1) and never touch the dialer, so a dead or slow peer cannot stall
// the caller; a full queue is resolved by the configured
// network.QueuePolicy. TransportStats snapshots every link for
// operators and tests.
//
// Beneath the queues runs the relink ack layer: every data frame
// carries a per-link sequence number and stays in a bounded in-flight
// window until the peer acknowledges delivery to its engine, so a
// frame handed to the kernel before a peer crash is resent after the
// reconnect instead of silently lost. Duplicates and reordering from
// retransmission are repaired before Receive; acknowledgements
// piggyback on reverse traffic and are otherwise coalesced on
// AckInterval.
package tcpnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/outq"
	"thetacrypt/internal/network/relink"
	"thetacrypt/internal/network/securelink"
)

// maxFrame bounds a single wire frame (16 MiB).
const maxFrame = 16 << 20

// Config describes one node's view of the mesh.
type Config struct {
	// Self is this node's index (1-based).
	Self int
	// ListenAddr is the local listen address, e.g. ":7001".
	ListenAddr string
	// Peers maps node index to dialable address for every OTHER node.
	Peers map[int]string
	// DialRetry is the initial backoff between reconnect attempts
	// (default 250 ms); it doubles per consecutive failure up to
	// DialBackoffMax.
	DialRetry time.Duration
	// DialBackoffMax caps the exponential dial backoff (default 4 s).
	DialBackoffMax time.Duration
	// QueueLen is the inbound queue length (default 4096).
	QueueLen int
	// OutQueueLen bounds each peer's outbound queue (default 1024
	// frames). The queue absorbs bursts and peer outages; overflow is
	// resolved by Policy.
	OutQueueLen int
	// Policy selects the full-queue behavior (default PolicyBlock:
	// wait for space, bounded by the send context).
	Policy network.QueuePolicy
	// WriteTimeout bounds one frame write on an established connection
	// (default 30 s). A peer that accepts the connection but stops
	// reading trips it, dropping the link into redial instead of
	// wedging the writer forever.
	WriteTimeout time.Duration
	// AckWindow bounds the unacknowledged frames retained per link for
	// resend (default 1024); a full window is resolved by Policy.
	AckWindow int
	// AckInterval coalesces standalone acknowledgements and paces the
	// resend scan (default 25 ms).
	AckInterval time.Duration
	// ResendTimeout is how long a frame stays unacknowledged before it
	// is retransmitted (default 500 ms).
	ResendTimeout time.Duration
	// Secure enables the identity-keyed secure-link layer: every
	// connection — dialed and accepted — runs the mutual-authentication
	// handshake before any relink frame flows, peers not provable
	// against the roster are rejected, and all traffic rides the
	// per-direction AEAD record layer. The handshake runs under its own
	// deadline (Secure.Timeout, defaulting to WriteTimeout) so a
	// black-holed or protocol-stalled peer releases the dialer instead
	// of wedging it. Nil means plaintext TCP, as before.
	Secure *securelink.Config
}

// Transport is a network.P2P over TCP.
type Transport struct {
	cfg   Config
	ln    net.Listener
	in    chan network.Envelope
	epoch uint64        // this incarnation's id for the ack layer
	rcfg  relink.Config // shared ack-layer configuration

	// mu guards the peer, inbox, and inbound-connection tables only; it
	// is never held across a dial or a socket write.
	mu      sync.Mutex
	peers   map[int]*peer
	inbound []net.Conn
	// inboxes holds the inbound ack-layer cursor per sender, including
	// senders whose outbound link is not registered yet (dynamic
	// wiring: traffic can arrive before SetPeer). Keeping the cursor
	// here means pre-registration frames are already deduplicated, and
	// once the peer registers it adopts the same inbox, so the owed
	// acknowledgements flush and the sender's resend loop ends.
	inboxes map[int]*relink.Inbox

	done sync.WaitGroup
	stop chan struct{}
	// dialCtx is canceled on Close, aborting in-flight dials.
	dialCtx    context.Context
	dialCancel context.CancelFunc
	close      sync.Once
}

// peer is one outbound link: its bounded queue, the writer goroutine's
// connection, the ack layer's two halves, and health bookkeeping.
type peer struct {
	index int
	q     *outq.Queue[[]byte]
	// rel is the outbound reliability state (seq assignment, in-flight
	// window, resend); inbox restores order and filters duplicates on
	// the inbound direction of the same peer.
	rel   *relink.Link
	inbox *relink.Inbox

	mu          sync.Mutex
	addr        string
	conn        net.Conn
	state       network.PeerState
	consecFails uint64
	lastErr     error
	// authed marks the current outbound connection as having completed
	// the secure-link handshake; cleared whenever the conn drops.
	authed bool

	sent atomic.Uint64
}

var _ network.P2P = (*Transport)(nil)

// New starts listening and returns the transport. Writer goroutines are
// started per configured peer; outbound connections are dialed in the
// background once traffic arrives, with exponential backoff on failure.
func New(cfg Config) (*Transport, error) {
	if cfg.DialRetry <= 0 {
		cfg.DialRetry = 250 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = 4 * time.Second
	}
	if cfg.DialBackoffMax < cfg.DialRetry {
		cfg.DialBackoffMax = cfg.DialRetry
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.OutQueueLen <= 0 {
		cfg.OutQueueLen = 1024
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.Secure != nil {
		if cfg.Secure.Key == nil || len(cfg.Secure.Roster) == 0 {
			return nil, fmt.Errorf("tcpnet: secure mode needs an identity key and a roster")
		}
		// Copy so defaulting the handshake deadline never mutates a
		// caller-shared config.
		s := *cfg.Secure
		if s.Timeout <= 0 {
			s.Timeout = cfg.WriteTimeout
		}
		cfg.Secure = &s
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet listen: %w", err)
	}
	dialCtx, dialCancel := context.WithCancel(context.Background())
	t := &Transport{
		cfg:   cfg,
		ln:    ln,
		in:    make(chan network.Envelope, cfg.QueueLen),
		epoch: relink.NewEpoch(),
		rcfg: relink.Config{
			Window:        cfg.AckWindow,
			AckInterval:   cfg.AckInterval,
			ResendTimeout: cfg.ResendTimeout,
			Policy:        cfg.Policy,
		}.WithDefaults(),
		peers:      make(map[int]*peer),
		inboxes:    make(map[int]*relink.Inbox),
		stop:       make(chan struct{}),
		dialCtx:    dialCtx,
		dialCancel: dialCancel,
	}
	for idx, addr := range cfg.Peers {
		t.addPeerLocked(idx, addr) // no concurrency yet; lock not needed
	}
	t.done.Add(2)
	go t.acceptLoop()
	go t.ackLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// addPeerLocked registers a peer and starts its writer; t.mu must be
// held (or the transport not yet shared).
func (t *Transport) addPeerLocked(index int, addr string) *peer {
	p := &peer{
		index: index,
		addr:  addr,
		q:     outq.New[[]byte](t.cfg.OutQueueLen, t.cfg.Policy),
		rel:   relink.NewLink(t.epoch, t.rcfg),
		// Adopt the sender's existing inbound cursor when its traffic
		// arrived before registration, so nothing delivered
		// pre-registration is redelivered.
		inbox: t.inboxForLocked(index),
		// Down until the writer establishes the link: no connection
		// exists yet.
		state: network.PeerDown,
	}
	t.peers[index] = p
	t.done.Add(1)
	go t.writer(p)
	return p
}

// SetPeer registers (or re-addresses) a peer; used when ports are
// assigned dynamically.
func (t *Transport) SetPeer(index int, addr string) {
	t.mu.Lock()
	p, ok := t.peers[index]
	if !ok {
		t.addPeerLocked(index, addr)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	p.mu.Lock()
	p.addr = addr
	p.mu.Unlock()
}

// peer looks up a registered peer.
func (t *Transport) peer(index int) (*peer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[index]
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address for peer %d", index)
	}
	return p, nil
}

// peerSnapshot returns the registered peers sorted by index.
func (t *Transport) peerSnapshot() []*peer {
	t.mu.Lock()
	out := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		out = append(out, p)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}

func (t *Transport) acceptLoop() {
	defer t.done.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound = append(t.inbound, conn)
		t.mu.Unlock()
		t.done.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.done.Done()
	defer conn.Close()
	// In secure mode the accepted connection must authenticate before
	// a single relink frame is read: the handshake binds the peer to a
	// roster identity (rejecting unrostered or impostor peers) and
	// replaces conn with the AEAD record layer. The handshake runs
	// under its own deadline, so a connect-and-stall peer cannot pin
	// this goroutine.
	from := 0
	if t.cfg.Secure != nil {
		sconn, peer, err := securelink.Server(conn, *t.cfg.Secure)
		if err != nil {
			return // unauthenticated connection: drop it
		}
		conn, from = sconn, peer
	}
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		env, err := network.UnmarshalEnvelope(frame)
		if err != nil {
			continue // skip malformed frames
		}
		// An authenticated link pins the sender: a rostered peer still
		// cannot speak for anyone but itself.
		if from != 0 && env.From != from {
			continue
		}
		if !t.handleInbound(env) {
			return
		}
	}
}

// maxInboxes bounds the inbound-cursor table against garbage From
// indices from misbehaving senders; past it, unregistered senders'
// frames are delivered raw (no dedup, no acks), as before the ack
// layer.
const maxInboxes = 4096

// handleInbound runs one received envelope through the ack layer:
// piggybacked and standalone acknowledgements discharge the sender
// link's window, sequenced data frames are deduplicated and reordered
// per link, and whatever became deliverable is handed to the engine.
// Returns false when the transport is stopping.
func (t *Transport) handleInbound(env network.Envelope) bool {
	p, known := t.lookupPeer(env.From)
	if known && env.AckEpoch != 0 {
		p.rel.Ack(env.AckEpoch, env.Ack)
	}
	if env.Kind == network.KindAck {
		return true // control frame, consumed here
	}
	if env.Seq == 0 {
		return t.deliver(env) // unsequenced frame: deliver raw
	}
	inbox := t.inboxFor(env.From)
	if inbox == nil {
		return t.deliver(env)
	}
	for _, d := range inbox.Accept(env) {
		if !t.deliver(d) {
			return false
		}
	}
	return true
}

// inboxFor returns (creating if needed and within bounds) the inbound
// cursor of one sender; nil when the sender is invalid or the table is
// full of unregistered senders.
func (t *Transport) inboxFor(from int) *relink.Inbox {
	if from <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.inboxes[from]; !ok {
		if _, registered := t.peers[from]; !registered && len(t.inboxes) >= maxInboxes {
			return nil
		}
	}
	return t.inboxForLocked(from)
}

// inboxForLocked returns (creating if needed) a sender's inbound
// cursor; t.mu is held (or the transport not yet shared).
func (t *Transport) inboxForLocked(from int) *relink.Inbox {
	ib, ok := t.inboxes[from]
	if !ok {
		ib = relink.NewInbox(t.rcfg.Window)
		t.inboxes[from] = ib
	}
	return ib
}

// deliver hands one envelope to the engine's receive channel.
func (t *Transport) deliver(env network.Envelope) bool {
	select {
	case t.in <- env:
		return true
	case <-t.stop:
		return false
	}
}

// lookupPeer returns the registered peer, if any.
func (t *Transport) lookupPeer(index int) (*peer, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[index]
	return p, ok
}

// ackLoop flushes coalesced acknowledgements and retransmits
// unacknowledged frames past the resend timeout. Both use the
// non-blocking TryEnqueue: a full queue is retried on the next tick
// rather than displacing fresh traffic or stalling the loop.
func (t *Transport) ackLoop() {
	defer t.done.Done()
	ticker := time.NewTicker(t.rcfg.AckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-t.stop:
			return
		}
		now := time.Now()
		for _, p := range t.peerSnapshot() {
			if epoch, upTo, ok := p.inbox.PendingAck(); ok {
				ack := network.Envelope{
					From: t.cfg.Self, To: p.index,
					Kind: network.KindAck, Ack: upTo, AckEpoch: epoch,
				}
				if p.q.TryEnqueue(ack.Marshal()) {
					p.inbox.ClearPending(epoch, upTo)
				}
			}
			p.rel.Resend(now, func(env network.Envelope) bool {
				return p.q.TryEnqueue(env.Marshal())
			})
		}
	}
}

// writer is peer p's dedicated goroutine: it drains the outbound queue
// and owns the connection. Dial failures and write errors put the link
// into exponential backoff (DialRetry doubling up to DialBackoffMax);
// the frame being delivered is retried, not dropped — overflow policy
// applies only at enqueue time.
func (t *Transport) writer(p *peer) {
	defer t.done.Done()
	backoff := t.cfg.DialRetry
	for {
		frame, ok := p.q.Dequeue(t.stop)
		if !ok {
			return
		}
		for {
			select {
			case <-t.stop:
				return
			default:
			}
			conn, err := t.ensureConn(p)
			if err == nil {
				_ = conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
				err = writeFrame(conn, frame)
				if err == nil {
					p.noteSent()
					backoff = t.cfg.DialRetry
					break
				}
				// A partial frame may be on the wire; the connection
				// cannot be reused.
				p.dropConn(conn)
				p.noteFailure(err)
			}
			if !t.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, t.cfg.DialBackoffMax)
		}
	}
}

// sleep waits d or until the transport stops; false means stop.
func (t *Transport) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.stop:
		return false
	}
}

// ensureConn returns the peer's established connection, dialing if none
// exists. Only the writer goroutine calls it, so at most one dial per
// peer is ever in flight.
func (t *Transport) ensureConn(p *peer) (net.Conn, error) {
	p.mu.Lock()
	if p.conn != nil {
		conn := p.conn
		p.mu.Unlock()
		return conn, nil
	}
	addr := p.addr
	p.state = network.PeerDialing
	p.mu.Unlock()
	if addr == "" {
		err := fmt.Errorf("tcpnet: no address for peer %d", p.index)
		p.noteFailure(err)
		return nil, err
	}
	// Bound the attempt: a blackholed peer (packets silently dropped)
	// must fail within the backoff cap, not pin the writer for the OS
	// SYN-retry window.
	dialer := net.Dialer{Timeout: t.cfg.DialBackoffMax}
	conn, err := dialer.DialContext(t.dialCtx, "tcp", addr)
	if err != nil {
		p.noteFailure(err)
		return nil, err
	}
	authed := false
	if t.cfg.Secure != nil {
		// Authenticate before the link carries a single frame. The
		// handshake runs under its own deadline (armed inside Client),
		// so a peer that accepts and stalls fails the attempt instead
		// of wedging this writer; failure lands in the same dial
		// backoff as a refused connection.
		sconn, err := securelink.Client(conn, *t.cfg.Secure, p.index)
		if err != nil {
			_ = conn.Close()
			p.noteFailure(err)
			return nil, err
		}
		conn, authed = sconn, true
	}
	p.mu.Lock()
	p.conn = conn
	p.state = network.PeerUp
	p.consecFails = 0
	p.lastErr = nil
	p.authed = authed
	p.mu.Unlock()
	return conn, nil
}

// noteSent records a successful frame write.
func (p *peer) noteSent() {
	p.sent.Add(1)
	p.mu.Lock()
	p.state = network.PeerUp
	p.consecFails = 0
	p.lastErr = nil
	p.mu.Unlock()
}

// noteFailure records a dial or write failure; the link is Down until
// the next attempt succeeds.
func (p *peer) noteFailure(err error) {
	p.mu.Lock()
	p.state = network.PeerDown
	p.consecFails++
	p.lastErr = err
	p.authed = false
	p.mu.Unlock()
}

// dropConn discards a failed connection.
func (p *peer) dropConn(conn net.Conn) {
	_ = conn.Close()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		p.authed = false
	}
	p.mu.Unlock()
}

// Send enqueues one envelope for a peer in O(1); the peer's writer
// delivers it in the background. The frame is first staged in the ack
// layer's in-flight window (resolved by the policy when full), so a
// queue-policy rejection after staging still reports the congestion to
// the caller while the ack layer guarantees eventual delivery by
// retransmission. A full queue or window is resolved by the configured
// policy: block (bounded by ctx), drop-oldest, or fail-fast with a
// *network.PeerError wrapping network.ErrPeerBacklogged.
func (t *Transport) Send(ctx context.Context, to int, env network.Envelope) error {
	env.From = t.cfg.Self
	env.To = to
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	return p.enqueue(ctx, env)
}

// enqueue stages one data frame in the peer's in-flight window,
// piggybacks the pending acknowledgement for the reverse direction,
// and admits it to the queue, attributing policy failures to the peer.
func (p *peer) enqueue(ctx context.Context, env network.Envelope) error {
	staged, err := p.rel.Stage(ctx, env)
	if err != nil {
		return network.AttributePeer(p.index, err)
	}
	epoch, upTo, hasAck := p.inbox.AckValue()
	if hasAck {
		staged.Ack, staged.AckEpoch = upTo, epoch
	}
	if err := p.q.Enqueue(ctx, staged.Marshal()); err != nil {
		// The frame stays windowed: the resend timer recovers it even
		// though the queue rejected it now. The error still surfaces so
		// callers observe the backpressure. The pending ack is NOT
		// cleared — this frame (its only carrier) never left, so the
		// standalone flusher must still send it.
		return network.AttributePeer(p.index, err)
	}
	if hasAck {
		p.inbox.ClearPending(epoch, upTo)
	}
	return nil
}

// Broadcast enqueues the envelope for every registered peer, addressed
// To=Broadcast (matching memnet's semantics). Each peer's copy is
// marshaled separately — the ack layer gives every link its own
// sequence number. All peers are attempted; failures are aggregated
// into a *network.BroadcastError naming each failed peer, so callers
// can judge whether the surviving set still reaches a quorum.
func (t *Transport) Broadcast(ctx context.Context, env network.Envelope) error {
	env.From = t.cfg.Self
	env.To = network.Broadcast
	peers := t.peerSnapshot()
	var failed []*network.PeerError
	for _, p := range peers {
		if err := p.enqueue(ctx, env); err != nil {
			failed = append(failed, network.PeerFailure(p.index, err))
		}
	}
	return network.NewBroadcastError(len(peers), failed)
}

// TransportStats snapshots every peer link.
func (t *Transport) TransportStats() network.TransportStats {
	peers := t.peerSnapshot()
	out := network.TransportStats{
		Peers:         make([]network.PeerStats, 0, len(peers)),
		Policy:        t.cfg.Policy,
		Reliable:      true,
		Authenticated: t.cfg.Secure != nil,
	}
	for _, p := range peers {
		p.mu.Lock()
		ps := network.PeerStats{
			Peer:                p.index,
			State:               p.state,
			ConsecutiveFailures: p.consecFails,
			Authenticated:       p.authed,
		}
		if p.lastErr != nil {
			ps.LastError = p.lastErr.Error()
		}
		p.mu.Unlock()
		ps.QueueDepth = p.q.Len()
		ps.QueueCap = p.q.Cap()
		ps.Enqueued = p.q.Enqueued()
		ps.Dropped = p.q.Dropped() + p.rel.Dropped()
		ps.Sent = p.sent.Load()
		ps.Delivered = p.rel.Delivered()
		ps.Inflight = p.rel.Inflight()
		ps.Resent = p.rel.Resent()
		out.Peers = append(out.Peers, ps)
	}
	return out
}

// Receive returns the inbound envelope stream.
func (t *Transport) Receive() <-chan network.Envelope { return t.in }

// Close shuts down the transport: writers stop, connections close, and
// the inbound channel is closed once every goroutine has exited.
func (t *Transport) Close() error {
	t.close.Do(func() {
		close(t.stop)
		t.dialCancel()
		_ = t.ln.Close()
		t.mu.Lock()
		for _, p := range t.peers {
			p.q.Close()
			p.rel.Close()
			p.mu.Lock()
			if p.conn != nil {
				_ = p.conn.Close()
			}
			p.mu.Unlock()
		}
		for _, c := range t.inbound {
			_ = c.Close()
		}
		t.mu.Unlock()
		t.done.Wait()
		close(t.in)
	})
	return nil
}

// writeFrame writes one 4-byte length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(payload)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
