// Package network defines the network layer of Thetacrypt: the
// peer-to-peer (P2P) and total-order broadcast (TOB) interfaces, the
// wire envelope, and the network manager that assembles a concrete stack
// from configuration (the paper's Section 3.6).
//
// Three P2P implementations exist: memnet (in-process, with a
// configurable latency matrix, substituting for the paper's multi-region
// testbed), tcpnet (length-prefixed TCP full mesh for standalone
// deployments), and proxy (delegation to a host platform). TOB is
// provided by internal/tob (sequencer-based) or by the TOB proxy.
package network

import (
	"context"
	"fmt"

	"thetacrypt/internal/wire"
)

// Kind classifies envelope contents.
type Kind int

// Envelope kinds understood by the orchestration layer.
const (
	// KindStart announces a new protocol instance and carries the
	// marshaled request.
	KindStart Kind = iota + 1
	// KindProto carries a protocol round message.
	KindProto
	// KindAck is a transport-internal standalone acknowledgement of the
	// reliability layer (see internal/network/relink). It is consumed by
	// the receiving transport and never reaches the engine.
	KindAck
)

// Broadcast is the To value addressing all peers.
const Broadcast = 0

// Envelope is the unit of internode communication.
type Envelope struct {
	From     int
	To       int // Broadcast or a node index
	Instance string
	Kind     Kind
	Round    int
	// Gen is the run generation of the instance: a re-submission after a
	// retention eviction announces a higher generation so peers that
	// still retain the previous run join the fresh one deliberately
	// instead of treating the announcement as a duplicate. Zero means
	// generation 1 (unversioned sender).
	Gen     int
	Payload []byte

	// Reliability header, managed by the transport's ack layer (see
	// internal/network/relink). Applications never set these.

	// Seq is the per-link sequence number; 0 marks an unsequenced frame
	// that bypasses the reliability layer.
	Seq uint64
	// Epoch identifies the sender's transport incarnation, so a receiver
	// can tell a restarted peer (fresh sequence space) from a gap.
	Epoch uint64
	// Base is the sender's lowest retained sequence number at send time:
	// everything below it was acknowledged or given up on, so a fresh
	// receiver starts expecting Base, not 1.
	Base uint64
	// Ack piggybacks the cumulative acknowledgement for the reverse
	// direction of this link; AckEpoch names the epoch it refers to
	// (0 = no acknowledgement attached).
	Ack      uint64
	AckEpoch uint64
}

// Marshal encodes an envelope for byte-oriented transports.
func (e Envelope) Marshal() []byte {
	return wire.NewWriter().
		Int(e.From).Int(e.To).String(e.Instance).
		Int(int(e.Kind)).Int(e.Round).Int(e.Gen).Bytes(e.Payload).
		Uint64(e.Seq).Uint64(e.Epoch).Uint64(e.Base).
		Uint64(e.Ack).Uint64(e.AckEpoch).Out()
}

// UnmarshalEnvelope decodes an envelope.
func UnmarshalEnvelope(data []byte) (Envelope, error) {
	r := wire.NewReader(data)
	env := Envelope{
		From:     r.Int(),
		To:       r.Int(),
		Instance: r.String(),
	}
	env.Kind = Kind(r.Int())
	env.Round = r.Int()
	env.Gen = r.Int()
	env.Payload = r.Bytes()
	env.Seq = r.Uint64()
	env.Epoch = r.Uint64()
	env.Base = r.Uint64()
	env.Ack = r.Uint64()
	env.AckEpoch = r.Uint64()
	if err := r.Err(); err != nil {
		return Envelope{}, fmt.Errorf("network envelope: %w", err)
	}
	return env, nil
}

// P2P provides reliable point-to-point communication with every peer.
// Implementations must deliver each sent envelope at most once per
// destination and preserve sender order on a per-link basis.
//
// Sends are asynchronous: Send and Broadcast enqueue onto a bounded
// per-peer outbound queue in O(1) and never wait for dialing or for a
// slow peer, so a dead peer cannot stall the protocol hot path. A full
// queue is resolved by the transport's QueuePolicy; Broadcast reports
// per-peer failures as a *BroadcastError (see FailedPeers).
//
// tcpnet and memnet additionally run the relink ack layer beneath
// Send/Broadcast: every frame carries a per-link sequence number, the
// receiver acknowledges delivery to the engine, and unacknowledged
// frames are resent after a reconnect (bounded by the in-flight
// window), with duplicates filtered before Receive. Such transports
// report Reliable in their TransportStats.
type P2P interface {
	// Send delivers the envelope to one peer.
	Send(ctx context.Context, to int, env Envelope) error
	// Broadcast delivers the envelope to every other peer.
	Broadcast(ctx context.Context, env Envelope) error
	// Receive returns the channel of inbound envelopes. The channel is
	// closed by Close.
	Receive() <-chan Envelope
	// TransportStats snapshots the health of every peer link: state
	// (up/dialing/down), queue depth, and send/drop counters.
	TransportStats() TransportStats
	// Close releases the transport.
	Close() error
}

// TOB provides total-order broadcast: all correct nodes deliver the
// same sequence of envelopes. Blockchains, sequencers, or the TOB proxy
// provide this primitive.
type TOB interface {
	// Submit hands an envelope to the ordering service.
	Submit(ctx context.Context, env Envelope) error
	// Delivered returns the totally ordered delivery channel.
	Delivered() <-chan Envelope
	// Close releases the channel.
	Close() error
}
