package securelink

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"thetacrypt/internal/identity"
)

// testMesh builds a roster of n identities.
func testMesh(t *testing.T, n int) ([]*identity.Key, identity.Roster) {
	t.Helper()
	keys := make([]*identity.Key, n+1)
	roster := make(identity.Roster, n)
	for i := 1; i <= n; i++ {
		k, err := identity.Generate(rand.Reader, i)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
		roster[i] = k.Public()
	}
	return keys, roster
}

// handshakePair runs Client against Server over a pipe and returns
// both ends (or the two errors).
func handshakePair(keys []*identity.Key, roster identity.Roster, clientNode, serverNode, dialTo int) (*Conn, *Conn, int, error, error) {
	cc, sc := net.Pipe()
	type serverResult struct {
		conn *Conn
		peer int
		err  error
	}
	srv := make(chan serverResult, 1)
	go func() {
		conn, peer, err := Server(sc, Config{Key: keys[serverNode], Roster: roster, Timeout: 5 * time.Second})
		if err != nil {
			sc.Close() // release a client blocked on the pipe
		}
		srv <- serverResult{conn, peer, err}
	}()
	clientConn, cerr := Client(cc, Config{Key: keys[clientNode], Roster: roster, Timeout: 5 * time.Second}, dialTo)
	if cerr != nil {
		cc.Close()
	}
	sr := <-srv
	return clientConn, sr.conn, sr.peer, cerr, sr.err
}

func TestHandshakeAndRecordLayer(t *testing.T) {
	keys, roster := testMesh(t, 3)
	client, server, peer, cerr, serr := handshakePair(keys, roster, 1, 2, 2)
	if cerr != nil || serr != nil {
		t.Fatalf("handshake failed: client=%v server=%v", cerr, serr)
	}
	if peer != 1 {
		t.Fatalf("server authenticated peer %d, want 1", peer)
	}
	defer client.Close()

	// Both directions move data; large writes span multiple records.
	msgs := [][]byte{
		[]byte("hello over the sealed link"),
		bytes.Repeat([]byte{0xab}, 3*maxRecord+17),
	}
	for _, msg := range msgs {
		go func() { client.Write(msg) }()
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(server, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("message corrupted across the link")
		}
	}
	reply := []byte("and back")
	go func() { server.Write(reply) }()
	got := make([]byte, len(reply))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatal("reply corrupted across the link")
	}
}

func TestHandshakeRejectsImpostor(t *testing.T) {
	keys, roster := testMesh(t, 3)
	// Node 3 re-keys without telling the roster: it now speaks for
	// index 3 with keys the roster does not vouch for.
	impostor, err := identity.Generate(rand.Reader, 3)
	if err != nil {
		t.Fatal(err)
	}
	forged := []*identity.Key{nil, keys[1], keys[2], impostor}

	// Impostor dials an honest node: rejected by signature check.
	_, _, _, cerr, serr := handshakePair(forged, roster, 3, 1, 1)
	if serr == nil || !errors.Is(serr, ErrBadPeer) {
		t.Fatalf("server accepted an impostor client: %v", serr)
	}
	_ = cerr // client observes a closed/failed pipe; the server verdict is what matters

	// Honest node dials the impostor: rejected by signature check.
	cc, sc := net.Pipe()
	go func() {
		if _, _, err := Server(sc, Config{Key: impostor, Roster: roster, Timeout: 5 * time.Second}); err != nil {
			sc.Close()
		}
	}()
	_, err = Client(cc, Config{Key: keys[1], Roster: roster, Timeout: 5 * time.Second}, 3)
	cc.Close()
	if err == nil || !errors.Is(err, ErrBadPeer) {
		t.Fatalf("client accepted an impostor server: %v", err)
	}
}

func TestHandshakeRejectsUnrostered(t *testing.T) {
	keys, roster := testMesh(t, 2)
	// Node 9 holds a perfectly good key — it is just not in the roster.
	stranger, err := identity.Generate(rand.Reader, 9)
	if err != nil {
		t.Fatal(err)
	}
	cc, sc := net.Pipe()
	serr := make(chan error, 1)
	go func() {
		_, _, err := Server(sc, Config{Key: keys[1], Roster: roster, Timeout: 5 * time.Second})
		if err != nil {
			sc.Close()
		}
		serr <- err
	}()
	// The stranger needs a roster to dial with; give it the real one
	// plus itself, as a compromised config would.
	r2 := identity.Roster{1: roster[1], 2: roster[2], 9: stranger.Public()}
	if _, err := Client(cc, Config{Key: stranger, Roster: r2, Timeout: 5 * time.Second}, 1); err == nil {
		cc.Close()
	}
	if err := <-serr; err == nil || !errors.Is(err, ErrBadPeer) {
		t.Fatalf("server accepted an unrostered peer: %v", err)
	}

	// Dialing an index outside the roster fails locally, before any
	// bytes move.
	if _, err := Client(nil, Config{Key: keys[1], Roster: roster}, 7); !errors.Is(err, ErrBadPeer) {
		t.Fatalf("Client dialed an unrostered index: %v", err)
	}
}

func TestHandshakeRejectsWrongServerIndex(t *testing.T) {
	keys, roster := testMesh(t, 3)
	// Client dials expecting node 2, but node 3 answers (e.g. a
	// misrouted address). Node 3's signature is valid for index 3 —
	// the client must still refuse, because it wanted node 2.
	_, _, _, cerr, _ := handshakePair(keys, roster, 1, 3, 2)
	if cerr == nil || !errors.Is(cerr, ErrBadPeer) {
		t.Fatalf("client accepted the wrong server identity: %v", cerr)
	}
}

func TestHandshakeVersionSkew(t *testing.T) {
	keys, roster := testMesh(t, 2)
	cc, sc := net.Pipe()
	serr := make(chan error, 1)
	go func() {
		_, _, err := Server(sc, Config{Key: keys[1], Roster: roster, Timeout: 5 * time.Second})
		serr <- err
	}()
	// A future-version hello: version byte 2.
	hello := append([]byte{2}, make([]byte, 36)...)
	if err := writeHandshakeFrame(cc, hello); err != nil {
		t.Fatal(err)
	}
	if err := <-serr; err == nil || !errors.Is(err, ErrVersion) {
		t.Fatalf("server did not diagnose version skew: %v", err)
	}
}

// TestHandshakeDeadline proves a black-holed peer cannot wedge the
// handshake: the deadline trips and the attempt fails.
func TestHandshakeDeadline(t *testing.T) {
	keys, roster := testMesh(t, 2)
	cc, sc := net.Pipe()
	defer sc.Close()
	defer cc.Close()
	start := time.Now()
	// The peer never responds (no Server running).
	_, err := Client(cc, Config{Key: keys[1], Roster: roster, Timeout: 100 * time.Millisecond}, 2)
	if err == nil {
		t.Fatal("handshake against a silent peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("handshake took %v; the deadline did not bound it", elapsed)
	}
}

func TestRecordLayerRejectsTampering(t *testing.T) {
	keys, roster := testMesh(t, 2)

	// Run the handshake over real sockets so we can interpose on the
	// raw ciphertext.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		conn net.Conn
		err  error
	}
	acc := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept()
		acc <- acceptResult{c, err}
	}()
	rawClient, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rawClient.Close()
	ar := <-acc
	if ar.err != nil {
		t.Fatal(ar.err)
	}
	defer ar.conn.Close()

	var server *Conn
	serverDone := make(chan error, 1)
	go func() {
		var err error
		server, _, err = Server(ar.conn, Config{Key: keys[2], Roster: roster, Timeout: 5 * time.Second})
		serverDone <- err
	}()
	client, err := Client(rawClient, Config{Key: keys[1], Roster: roster, Timeout: 5 * time.Second}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}

	// A record written by the client but tampered on the wire must be
	// rejected by the server's opener. Send a valid record first to
	// capture its shape, then replay it (same bytes, wrong counter).
	if _, err := client.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}

	// Forge: write garbage that parses as a record frame straight onto
	// the raw socket beneath the client's record layer.
	forged := []byte{0, 0, 0, 17}
	forged = append(forged, bytes.Repeat([]byte{0x42}, 17)...)
	if _, err := rawClient.Write(forged); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Read(make([]byte, 16)); !errors.Is(err, ErrReplay) {
		t.Fatalf("server accepted a forged record: %v", err)
	}
}
