// Package securelink authenticates and encrypts one mesh link. It
// implements the secure-link seam of the transport stack: a versioned
// mutual-authentication handshake over an established net.Conn that
// binds both endpoints' roster identities, followed by an AEAD record
// layer with independent per-direction keys, so everything tcpnet
// writes after the handshake — relink frames, protocol envelopes, DKG
// dealings — rides ciphertext.
//
// The handshake is Noise-IK-shaped but signature-authenticated
// (SIGMA-style): each side contributes a fresh X25519 ephemeral key,
// the shared secret comes from the ephemeral-ephemeral agreement, and
// each side proves its roster identity by signing the full handshake
// transcript with its long-lived Ed25519 key. A peer whose signature
// does not verify against the roster entry for the node index it
// claims — an impostor, or a node that was never rostered — is
// rejected before a single protocol byte flows. Per-direction
// AES-256-GCM keys derive from the agreement and the transcript hash,
// so neither direction's channel can be reflected into the other.
package securelink

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"thetacrypt/internal/identity"
)

// Version is the handshake wire version. Bumping it is a coordinated
// upgrade: a v1 node cannot complete a handshake with a v2 node (see
// the README's "Securing the mesh" upgrade note).
const Version = 1

// handshake transcript labels: domain-separate the two signatures and
// the key derivation.
const (
	labelServerSig = "thetacrypt/handshake/v1/server"
	labelClientSig = "thetacrypt/handshake/v1/client"
	labelLinkKeys  = "thetacrypt/link/v1"
)

// maxHandshakeFrame bounds one handshake message; the largest (the
// signed response) is well under 256 bytes.
const maxHandshakeFrame = 1024

// DefaultTimeout bounds the whole handshake when the config does not
// set one: a black-holed or protocol-stalled peer must release the
// dialer goroutine, not wedge it.
const DefaultTimeout = 10 * time.Second

// Typed errors. ErrVersion reports a peer speaking another handshake
// version (coordinated-upgrade skew); ErrBadPeer an identity failure —
// an unrostered node index, a signature that does not verify, or a
// peer claiming an index other than the one dialed.
var (
	ErrVersion = errors.New("securelink: handshake version mismatch")
	ErrBadPeer = errors.New("securelink: peer identity rejected")
)

// Config carries the local identity and the mesh roster into a
// handshake.
type Config struct {
	// Key is this node's private identity.
	Key *identity.Key
	// Roster maps node index → public identity for every mesh node.
	Roster identity.Roster
	// Timeout bounds the whole handshake (default DefaultTimeout). It
	// is applied to the conn as an absolute deadline and cleared once
	// the handshake completes.
	Timeout time.Duration
}

// Client runs the dialer side of the handshake, expecting the remote
// endpoint to prove it is node `to`. On success the returned Conn
// carries the AEAD record layer; the caller replaces its plaintext
// conn with it.
func Client(conn net.Conn, cfg Config, to int) (*Conn, error) {
	peerPub, err := cfg.Roster.Lookup(to)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPeer, err)
	}
	restore, err := applyDeadline(conn, cfg)
	if err != nil {
		return nil, err
	}

	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("securelink: ephemeral key: %w", err)
	}
	hello := helloMessage(cfg.Key.Node, eph.PublicKey())
	if err := writeHandshakeFrame(conn, hello); err != nil {
		return nil, fmt.Errorf("securelink: send hello: %w", err)
	}

	resp, err := readHandshakeFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("securelink: read response: %w", err)
	}
	peerNode, peerEph, sig, err := parseResponse(resp)
	if err != nil {
		return nil, err
	}
	if peerNode != to {
		return nil, fmt.Errorf("%w: dialed node %d but peer claims %d", ErrBadPeer, to, peerNode)
	}
	th := transcriptHash(hello, resp[:len(resp)-ed25519.SignatureSize])
	if !ed25519.Verify(peerPub.Sign, signed(labelServerSig, th), sig) {
		return nil, fmt.Errorf("%w: node %d handshake signature invalid", ErrBadPeer, to)
	}

	// Prove our own identity over the same transcript.
	clientSig := ed25519.Sign(cfg.Key.Sign, signed(labelClientSig, th))
	if err := writeHandshakeFrame(conn, clientSig); err != nil {
		return nil, fmt.Errorf("securelink: send confirm: %w", err)
	}

	secret, err := eph.ECDH(peerEph)
	if err != nil {
		return nil, fmt.Errorf("securelink: key agreement: %w", err)
	}
	if err := restore(); err != nil {
		return nil, err
	}
	return newConn(conn, secret, th, true)
}

// Server runs the accepter side of the handshake, returning the
// secured conn and the authenticated index of the peer. Any node in
// the roster (other than this one) may connect; the peer's claimed
// index is authenticated by its transcript signature against the
// roster.
func Server(conn net.Conn, cfg Config) (*Conn, int, error) {
	restore, err := applyDeadline(conn, cfg)
	if err != nil {
		return nil, 0, err
	}

	hello, err := readHandshakeFrame(conn)
	if err != nil {
		return nil, 0, fmt.Errorf("securelink: read hello: %w", err)
	}
	peerNode, peerEph, err := parseHello(hello)
	if err != nil {
		return nil, 0, err
	}
	if peerNode == cfg.Key.Node {
		return nil, 0, fmt.Errorf("%w: peer claims our own index %d", ErrBadPeer, peerNode)
	}
	peerPub, err := cfg.Roster.Lookup(peerNode)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadPeer, err)
	}

	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, 0, fmt.Errorf("securelink: ephemeral key: %w", err)
	}
	respBody := helloMessage(cfg.Key.Node, eph.PublicKey())
	th := transcriptHash(hello, respBody)
	sig := ed25519.Sign(cfg.Key.Sign, signed(labelServerSig, th))
	if err := writeHandshakeFrame(conn, append(respBody, sig...)); err != nil {
		return nil, 0, fmt.Errorf("securelink: send response: %w", err)
	}

	confirm, err := readHandshakeFrame(conn)
	if err != nil {
		return nil, 0, fmt.Errorf("securelink: read confirm: %w", err)
	}
	if len(confirm) != ed25519.SignatureSize ||
		!ed25519.Verify(peerPub.Sign, signed(labelClientSig, th), confirm) {
		return nil, 0, fmt.Errorf("%w: node %d handshake signature invalid", ErrBadPeer, peerNode)
	}

	secret, err := eph.ECDH(peerEph)
	if err != nil {
		return nil, 0, fmt.Errorf("securelink: key agreement: %w", err)
	}
	if err := restore(); err != nil {
		return nil, 0, err
	}
	c, err := newConn(conn, secret, th, false)
	if err != nil {
		return nil, 0, err
	}
	return c, peerNode, nil
}

// applyDeadline arms the handshake deadline on the conn and returns
// the closure that clears it after a successful handshake. The whole
// exchange — not just individual reads — runs under one absolute
// deadline, so a peer that connects and stalls mid-handshake cannot
// wedge the caller.
func applyDeadline(conn net.Conn, cfg Config) (func() error, error) {
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("securelink: arm handshake deadline: %w", err)
	}
	return func() error {
		if err := conn.SetDeadline(time.Time{}); err != nil {
			return fmt.Errorf("securelink: clear handshake deadline: %w", err)
		}
		return nil
	}, nil
}

// helloMessage builds the unsigned handshake body both sides exchange:
// version, claimed node index, ephemeral X25519 public key.
func helloMessage(node int, eph *ecdh.PublicKey) []byte {
	msg := make([]byte, 0, 1+4+32)
	msg = append(msg, Version)
	msg = binary.BigEndian.AppendUint32(msg, uint32(node))
	return append(msg, eph.Bytes()...)
}

// parseHello decodes a hello body, rejecting version skew first so a
// coordinated-upgrade mismatch diagnoses as ErrVersion, not as a
// garbled identity.
func parseHello(msg []byte) (int, *ecdh.PublicKey, error) {
	if len(msg) < 1 {
		return 0, nil, fmt.Errorf("%w: empty hello", ErrBadPeer)
	}
	if msg[0] != Version {
		return 0, nil, fmt.Errorf("%w: peer speaks v%d, this node v%d", ErrVersion, msg[0], Version)
	}
	if len(msg) != 1+4+32 {
		return 0, nil, fmt.Errorf("%w: malformed hello", ErrBadPeer)
	}
	node := int(binary.BigEndian.Uint32(msg[1:5]))
	if node < 1 {
		return 0, nil, fmt.Errorf("%w: node index %d out of range", ErrBadPeer, node)
	}
	eph, err := ecdh.X25519().NewPublicKey(msg[5:])
	if err != nil {
		return 0, nil, fmt.Errorf("%w: bad ephemeral key", ErrBadPeer)
	}
	return node, eph, nil
}

// parseResponse decodes the server's signed response: a hello body
// followed by the transcript signature.
func parseResponse(msg []byte) (int, *ecdh.PublicKey, []byte, error) {
	if len(msg) < ed25519.SignatureSize {
		return 0, nil, nil, fmt.Errorf("%w: short response", ErrBadPeer)
	}
	body, sig := msg[:len(msg)-ed25519.SignatureSize], msg[len(msg)-ed25519.SignatureSize:]
	node, eph, err := parseHello(body)
	if err != nil {
		return 0, nil, nil, err
	}
	return node, eph, sig, nil
}

// transcriptHash binds every handshake byte both sides exchanged
// before the signatures: the client hello and the server's unsigned
// response body.
func transcriptHash(hello, respBody []byte) []byte {
	h := sha256.New()
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(hello)))
	h.Write(lenbuf[:])
	h.Write(hello)
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(respBody)))
	h.Write(lenbuf[:])
	h.Write(respBody)
	return h.Sum(nil)
}

// signed prefixes a transcript hash with its role label, so the
// client's and server's signatures can never be confused for one
// another.
func signed(label string, th []byte) []byte {
	return append([]byte(label), th...)
}

// writeHandshakeFrame writes one 2-byte length-prefixed handshake
// message.
func writeHandshakeFrame(w io.Writer, msg []byte) error {
	if len(msg) > maxHandshakeFrame {
		return fmt.Errorf("securelink: handshake frame of %d bytes exceeds cap", len(msg))
	}
	var lenbuf [2]byte
	binary.BigEndian.PutUint16(lenbuf[:], uint16(len(msg)))
	if _, err := w.Write(lenbuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// readHandshakeFrame reads one length-prefixed handshake message.
func readHandshakeFrame(r io.Reader) ([]byte, error) {
	var lenbuf [2]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenbuf[:])
	if n > maxHandshakeFrame {
		return nil, fmt.Errorf("securelink: handshake frame of %d bytes exceeds cap", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
