package securelink

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"thetacrypt/internal/identity"
)

// maxRecord bounds one AEAD record's plaintext. Larger writes are
// split across records; tcpnet's own 16 MiB frame cap rides on top
// unchanged.
const maxRecord = 64 << 10

// recordOverhead is the per-record ciphertext expansion (GCM tag).
const recordOverhead = 16

// ErrReplay reports an AEAD record that failed to open: tampering,
// truncation, reordering, or a replayed record — the counter nonces
// make any of these fail authentication.
var ErrReplay = errors.New("securelink: record authentication failed")

// Conn is an established secure link: a net.Conn whose Read and Write
// move AEAD records (4-byte length prefix, AES-256-GCM body) over the
// underlying connection. Each direction has its own key and a counter
// nonce, so records cannot be replayed, reordered, or reflected.
type Conn struct {
	conn net.Conn

	wmu    sync.Mutex
	sealer cipher.AEAD
	wseq   uint64

	rmu    sync.Mutex
	opener cipher.AEAD
	rseq   uint64
	rbuf   []byte // undelivered plaintext from the last record
}

var _ net.Conn = (*Conn)(nil)

// newConn derives the per-direction keys from the handshake secret and
// transcript hash. Both sides compute the same two keys; `client`
// selects which one seals locally (client→server) and which opens.
func newConn(conn net.Conn, secret, th []byte, client bool) (*Conn, error) {
	keys := identity.HKDF(secret, th, []byte(labelLinkKeys), 64)
	c2s, err := newAEAD(keys[:32])
	if err != nil {
		return nil, err
	}
	s2c, err := newAEAD(keys[32:])
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: conn}
	if client {
		c.sealer, c.opener = c2s, s2c
	} else {
		c.sealer, c.opener = s2c, c2s
	}
	return c, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("securelink: cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("securelink: aead: %w", err)
	}
	return aead, nil
}

// nonce encodes a record counter as the 12-byte GCM nonce.
func nonce(seq uint64) []byte {
	var n [12]byte
	binary.BigEndian.PutUint64(n[4:], seq)
	return n[:]
}

// Write seals p into one or more records. It satisfies net.Conn's
// contract: on return either all of p is on the wire (as ciphertext)
// or an error is reported.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > maxRecord {
			chunk = p[:maxRecord]
		}
		record := make([]byte, 4, 4+len(chunk)+recordOverhead)
		ct := c.sealer.Seal(record[4:], nonce(c.wseq), chunk, nil)
		c.wseq++
		binary.BigEndian.PutUint32(record[:4], uint32(len(ct)))
		if _, err := c.conn.Write(record[:4+len(ct)]); err != nil {
			return total, err
		}
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// Read delivers plaintext from the record stream, reading and opening
// the next record when the buffer is empty.
func (c *Conn) Read(p []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		var lenbuf [4]byte
		if _, err := io.ReadFull(c.conn, lenbuf[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n > maxRecord+recordOverhead {
			return 0, fmt.Errorf("securelink: record of %d bytes exceeds cap", n)
		}
		ct := make([]byte, n)
		if _, err := io.ReadFull(c.conn, ct); err != nil {
			return 0, err
		}
		pt, err := c.opener.Open(ct[:0], nonce(c.rseq), ct, nil)
		if err != nil {
			return 0, ErrReplay
		}
		c.rseq++
		c.rbuf = pt // an empty record simply loops for the next one
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

func (c *Conn) Close() error                       { return c.conn.Close() }
func (c *Conn) LocalAddr() net.Addr                { return c.conn.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.conn.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.conn.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }
