package securelink

import (
	"crypto/rand"
	"io"
	"net"
	"testing"
	"time"

	"thetacrypt/internal/identity"
)

// benchMesh builds two identities and their roster without a *testing.T.
func benchMesh(b *testing.B) ([]*identity.Key, identity.Roster) {
	b.Helper()
	keys := make([]*identity.Key, 3)
	roster := make(identity.Roster, 2)
	for i := 1; i <= 2; i++ {
		k, err := identity.Generate(rand.Reader, i)
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
		roster[i] = k.Public()
	}
	return keys, roster
}

// BenchmarkHandshake measures one full mutual-authentication handshake
// over an in-memory pipe: two ephemeral X25519 agreements, two Ed25519
// transcript signatures and verifications, and the per-direction key
// schedule. This is the per-link setup cost a reconnect pays.
func BenchmarkHandshake(b *testing.B) {
	keys, roster := benchMesh(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc, sc := net.Pipe()
		done := make(chan *Conn, 1)
		go func() {
			conn, _, err := Server(sc, Config{Key: keys[2], Roster: roster, Timeout: 10 * time.Second})
			if err != nil {
				sc.Close()
			}
			done <- conn
		}()
		conn, err := Client(cc, Config{Key: keys[1], Roster: roster, Timeout: 10 * time.Second}, 2)
		if err != nil {
			b.Fatal(err)
		}
		srv := <-done
		conn.Close()
		if srv != nil {
			srv.Close()
		}
	}
}

// BenchmarkSecureLinkThroughput measures the AEAD record layer's
// steady-state throughput over loopback TCP: 16 KiB writes sealed,
// framed, and opened on the far side. b.SetBytes makes the result
// report MB/s.
func BenchmarkSecureLinkThroughput(b *testing.B) {
	keys, roster := benchMesh(b)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	type acceptResult struct {
		conn *Conn
		err  error
	}
	acc := make(chan acceptResult, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			acc <- acceptResult{nil, err}
			return
		}
		conn, _, err := Server(raw, Config{Key: keys[2], Roster: roster, Timeout: 10 * time.Second})
		acc <- acceptResult{conn, err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	client, err := Client(raw, Config{Key: keys[1], Roster: roster, Timeout: 10 * time.Second}, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	ar := <-acc
	if ar.err != nil {
		b.Fatal(ar.err)
	}
	drained := make(chan struct{})
	go func() {
		io.Copy(io.Discard, ar.conn)
		close(drained)
	}()

	const chunk = 16 * 1024
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	<-drained
}
