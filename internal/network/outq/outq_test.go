package outq_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/outq"
)

func TestFailFastRejectsWhenFull(t *testing.T) {
	q := outq.New[int](2, network.PolicyFailFast)
	defer q.Close()
	ctx := context.Background()
	if err := q.Enqueue(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(ctx, 2); err != nil {
		t.Fatal(err)
	}
	err := q.Enqueue(ctx, 3)
	if !errors.Is(err, network.ErrPeerBacklogged) {
		t.Fatalf("full queue returned %v, want ErrPeerBacklogged", err)
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", q.Dropped())
	}
	if q.Len() != 2 || q.Enqueued() != 2 {
		t.Fatalf("len=%d enqueued=%d, want 2/2", q.Len(), q.Enqueued())
	}
}

func TestDropOldestEvicts(t *testing.T) {
	q := outq.New[int](2, network.PolicyDropOldest)
	defer q.Close()
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if err := q.Enqueue(ctx, i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if q.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", q.Dropped())
	}
	// The two newest survive, in order.
	stop := make(chan struct{})
	for _, want := range []int{4, 5} {
		got, ok := q.Dequeue(stop)
		if !ok || got != want {
			t.Fatalf("dequeue = %d/%v, want %d", got, ok, want)
		}
	}
}

func TestBlockWaitsForSpaceAndCtx(t *testing.T) {
	q := outq.New[int](1, network.PolicyBlock)
	defer q.Close()
	ctx := context.Background()
	if err := q.Enqueue(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Blocked enqueue is released by a dequeue.
	released := make(chan error, 1)
	go func() { released <- q.Enqueue(ctx, 2) }()
	select {
	case err := <-released:
		t.Fatalf("enqueue on a full block-policy queue returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	stop := make(chan struct{})
	if got, ok := q.Dequeue(stop); !ok || got != 1 {
		t.Fatalf("dequeue = %d/%v", got, ok)
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked enqueue not released by dequeue")
	}

	// Blocked enqueue respects context cancellation.
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := q.Enqueue(cctx, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled enqueue returned %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled enqueue blocked past its deadline")
	}
}

func TestCloseUnblocksEveryone(t *testing.T) {
	q := outq.New[int](1, network.PolicyBlock)
	if err := q.Enqueue(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs <- q.Enqueue(context.Background(), 2) }()
	go func() {
		defer wg.Done()
		// Consume the queued item first so this blocks on an empty queue.
		stop := make(chan struct{})
		for {
			if _, ok := q.Dequeue(stop); !ok {
				errs <- nil
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, network.ErrTransportClosed) {
			t.Fatalf("shutdown surfaced %v", err)
		}
	}
	if err := q.Enqueue(context.Background(), 3); !errors.Is(err, network.ErrTransportClosed) {
		t.Fatalf("enqueue after close returned %v", err)
	}
}

func TestConcurrentProducersDropOldestRace(t *testing.T) {
	q := outq.New[int](8, network.PolicyDropOldest)
	defer q.Close()
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = q.Enqueue(context.Background(), p*1000+i)
			}
		}(p)
	}
	stop := make(chan struct{})
	consumed := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := q.Dequeue(stop); !ok {
				return
			}
			consumed++
		}
	}()
	wg.Wait()
	q.Close()
	<-done
	// Conservation: every admitted item was consumed, evicted, or is
	// still queued. Drop-oldest admits everything, so enqueued == 1600.
	if q.Enqueued() != 8*200 {
		t.Fatalf("enqueued = %d, want %d", q.Enqueued(), 8*200)
	}
	if q.Enqueued() != uint64(consumed)+q.Dropped()+uint64(q.Len()) {
		t.Fatalf("leak: enqueued=%d consumed=%d dropped=%d remaining=%d",
			q.Enqueued(), consumed, q.Dropped(), q.Len())
	}
}
