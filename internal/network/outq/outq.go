// Package outq implements the bounded outbound queue behind each peer
// link: producers (the protocol engine, the TOB sequencer) enqueue in
// O(1) under a configurable full-queue policy, one consumer (the peer's
// writer goroutine) drains. It is the flow-control seam between the
// protocol hot path and the network: the queue absorbs bursts and peer
// outages up to its capacity, then the policy decides who pays — the
// caller (block), old traffic (drop-oldest), or the new frame
// (fail-fast).
package outq

import (
	"context"
	"sync"
	"sync/atomic"

	"thetacrypt/internal/network"
)

// Queue is a bounded FIFO of T with one consumer and any number of
// producers.
type Queue[T any] struct {
	policy network.QueuePolicy
	ch     chan T
	stop   chan struct{}
	once   sync.Once

	// evict serializes the evict-then-insert of PolicyDropOldest so
	// concurrent producers cannot over-evict.
	evict sync.Mutex

	enqueued atomic.Uint64
	dropped  atomic.Uint64
}

// New creates a queue with the given capacity (minimum 1) and policy.
func New[T any](capacity int, policy network.QueuePolicy) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{
		policy: policy,
		ch:     make(chan T, capacity),
		stop:   make(chan struct{}),
	}
}

// Enqueue admits one item. On a full queue the policy decides:
// PolicyBlock waits for space (bounded by ctx and Close),
// PolicyDropOldest evicts the oldest queued item, PolicyFailFast
// returns network.ErrPeerBacklogged. Enqueue never dials, writes, or
// otherwise touches the network.
func (q *Queue[T]) Enqueue(ctx context.Context, item T) error {
	select {
	case <-q.stop:
		return network.ErrTransportClosed
	default:
	}
	select {
	case q.ch <- item:
		q.enqueued.Add(1)
		return nil
	default:
	}
	switch q.policy {
	case network.PolicyDropOldest:
		q.evict.Lock()
		defer q.evict.Unlock()
		for {
			select {
			case q.ch <- item:
				q.enqueued.Add(1)
				return nil
			default:
			}
			select {
			case <-q.ch: // evict the oldest; the consumer may win this race
				q.dropped.Add(1)
			default:
			}
		}
	case network.PolicyFailFast:
		q.dropped.Add(1)
		return network.ErrPeerBacklogged
	default: // PolicyBlock
		select {
		case q.ch <- item:
			q.enqueued.Add(1)
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-q.stop:
			return network.ErrTransportClosed
		}
	}
}

// TryEnqueue admits one item only if space is immediately available,
// regardless of policy, and reports whether it was admitted. It never
// blocks, never evicts, and does not count a rejection as a drop: the
// ack layer uses it for retransmissions and acknowledgements, which are
// retried on the next tick rather than displacing fresh traffic.
func (q *Queue[T]) TryEnqueue(item T) bool {
	select {
	case <-q.stop:
		return false
	default:
	}
	select {
	case q.ch <- item:
		q.enqueued.Add(1)
		return true
	default:
		return false
	}
}

// Dequeue blocks until an item is available or the queue (or the given
// stop channel) closes; ok is false on shutdown. Only one goroutine may
// consume.
func (q *Queue[T]) Dequeue(stop <-chan struct{}) (item T, ok bool) {
	select {
	case item = <-q.ch:
		return item, true
	default:
	}
	select {
	case item = <-q.ch:
		return item, true
	case <-q.stop:
	case <-stop:
	}
	// Shutdown wins over any backlog: the consumer's connection is being
	// torn down, so flushing would only delay Close.
	var zero T
	return zero, false
}

// Close unblocks producers and the consumer; further enqueues fail with
// network.ErrTransportClosed.
func (q *Queue[T]) Close() { q.once.Do(func() { close(q.stop) }) }

// Len is the current queue depth.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap is the queue capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Enqueued counts admitted items since creation.
func (q *Queue[T]) Enqueued() uint64 { return q.enqueued.Load() }

// Dropped counts items lost to the policy (evictions under drop-oldest,
// rejections under fail-fast).
func (q *Queue[T]) Dropped() uint64 { return q.dropped.Load() }
