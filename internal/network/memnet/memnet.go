// Package memnet provides an in-process P2P network with a configurable
// per-link latency model. It substitutes for the paper's multi-region
// DigitalOcean testbed: one-way delays are drawn from a region
// round-trip matrix plus jitter, so local (≈0.65 ms RTT) and global
// (≈43-280 ms RTT) deployments from Table 2 can be reproduced on one
// machine. It also serves as the fault-injection surface for tests
// (crashed nodes, dropped or delayed messages).
package memnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"thetacrypt/internal/network"
)

// ErrClosed is returned on operations against a closed endpoint.
var ErrClosed = errors.New("memnet: closed")

// LatencyFunc returns the one-way delay for a message from node i to
// node j (1-indexed).
type LatencyFunc func(from, to int) time.Duration

// Uniform returns a LatencyFunc with a constant one-way delay.
func Uniform(d time.Duration) LatencyFunc {
	return func(int, int) time.Duration { return d }
}

// Options configures a Hub.
type Options struct {
	// Latency is the one-way delay model; nil means zero latency.
	Latency LatencyFunc
	// JitterFrac adds uniform jitter in [0, JitterFrac) of the base
	// latency to every message.
	JitterFrac float64
	// Seed makes jitter deterministic.
	Seed uint64
	// QueueLen is the inbound queue length per node (default 4096).
	// A deep queue models kernel socket buffers; the paper's capacity
	// experiments drive nodes far beyond their service rate.
	QueueLen int
}

// Hub connects n in-process endpoints.
type Hub struct {
	n    int
	opts Options

	mu      sync.Mutex
	rng     *rand.Rand
	inbox   []chan network.Envelope
	crashed []bool
	dropFn  func(env network.Envelope) bool
	closed  bool
	wg      sync.WaitGroup
	// lastArrival and lastDone enforce per-link FIFO: a message never
	// arrives before an earlier message on the same (from, to) link,
	// matching TCP semantics.
	lastArrival map[[2]int]time.Time
	lastDone    map[[2]int]chan struct{}
}

// NewHub creates a hub for nodes 1..n.
func NewHub(n int, opts Options) *Hub {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	h := &Hub{
		n:           n,
		opts:        opts,
		rng:         rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15)),
		inbox:       make([]chan network.Envelope, n+1),
		crashed:     make([]bool, n+1),
		lastArrival: make(map[[2]int]time.Time),
		lastDone:    make(map[[2]int]chan struct{}),
	}
	for i := 1; i <= n; i++ {
		h.inbox[i] = make(chan network.Envelope, opts.QueueLen)
	}
	return h
}

// Endpoint returns node i's P2P interface.
func (h *Hub) Endpoint(i int) network.P2P {
	return &endpoint{hub: h, index: i}
}

// Crash makes a node unreachable and stops its sends, simulating a
// crashed replica.
func (h *Hub) Crash(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashed[i] = true
}

// Restart clears a crash.
func (h *Hub) Restart(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashed[i] = false
}

// DropIf installs a message filter; envelopes for which fn returns true
// are silently dropped. Passing nil removes the filter.
func (h *Hub) DropIf(fn func(env network.Envelope) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dropFn = fn
}

// Close shuts down all endpoints and waits for in-flight deliveries.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.wg.Wait()
	h.mu.Lock()
	for i := 1; i <= h.n; i++ {
		close(h.inbox[i])
	}
	h.mu.Unlock()
}

// transmit schedules delivery of env to node `to`.
func (h *Hub) transmit(to int, env network.Envelope) {
	now := time.Now()
	h.mu.Lock()
	if h.closed || h.crashed[env.From] || h.crashed[to] ||
		(h.dropFn != nil && h.dropFn(env)) {
		h.mu.Unlock()
		return
	}
	base := time.Duration(0)
	if h.opts.Latency != nil {
		base = h.opts.Latency(env.From, to)
	}
	if h.opts.JitterFrac > 0 && base > 0 {
		base += time.Duration(float64(base) * h.rng.Float64() * h.opts.JitterFrac)
	}
	arrival := now.Add(base)
	link := [2]int{env.From, to}
	if last, ok := h.lastArrival[link]; ok && arrival.Before(last) {
		arrival = last // FIFO per link
	}
	h.lastArrival[link] = arrival
	prev := h.lastDone[link]
	done := make(chan struct{})
	h.lastDone[link] = done
	h.wg.Add(1)
	h.mu.Unlock()

	go func() {
		defer h.wg.Done()
		defer close(done)
		if d := time.Until(arrival); d > 0 {
			timer := time.NewTimer(d)
			<-timer.C
		}
		if prev != nil {
			<-prev // strict per-link delivery order
		}
		h.mu.Lock()
		dead := h.closed || h.crashed[to]
		ch := h.inbox[to]
		h.mu.Unlock()
		if dead {
			return
		}
		ch <- env
	}()
}

type endpoint struct {
	hub   *Hub
	index int
}

var _ network.P2P = (*endpoint)(nil)

func (e *endpoint) Send(_ context.Context, to int, env network.Envelope) error {
	if to < 1 || to > e.hub.n {
		return fmt.Errorf("memnet: no such node %d", to)
	}
	env.From = e.index
	env.To = to
	e.hub.transmit(to, env)
	return nil
}

func (e *endpoint) Broadcast(_ context.Context, env network.Envelope) error {
	env.From = e.index
	env.To = network.Broadcast
	for to := 1; to <= e.hub.n; to++ {
		if to == e.index {
			continue
		}
		e.hub.transmit(to, env)
	}
	return nil
}

func (e *endpoint) Receive() <-chan network.Envelope {
	return e.hub.inbox[e.index]
}

func (e *endpoint) Close() error { return nil }
