// Package memnet provides an in-process P2P network with a configurable
// per-link latency model. It substitutes for the paper's multi-region
// DigitalOcean testbed: one-way delays are drawn from a region
// round-trip matrix plus jitter, so local (≈0.65 ms RTT) and global
// (≈43-280 ms RTT) deployments from Table 2 can be reproduced on one
// machine. It also serves as the fault-injection surface for tests
// (crashed nodes, dropped or delayed messages).
//
// Like tcpnet, sends are asynchronous: each directed link has a bounded
// outbound queue drained by a pump goroutine, governed by the same
// network.QueuePolicy vocabulary. A crashed destination stalls its
// pumps — the in-process analogue of a dead TCP peer holding the writer
// in dial-retry — so queues back up, policies fire, and TransportStats
// reports the peer Down, identically to the real transport.
//
// The relink ack layer runs beneath the queues exactly as in tcpnet:
// data frames carry per-link sequence numbers, receivers acknowledge
// delivery to the engine, and frames lost in flight (a crash race, a
// DropIf filter, a drop-oldest eviction) are resent and deduplicated,
// so the simulated network offers the same reliable-delivery contract
// as the real one.
package memnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt/internal/identity"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/outq"
	"thetacrypt/internal/network/relink"
)

// ErrClosed is returned on operations against a closed endpoint.
var ErrClosed = errors.New("memnet: closed")

// crashPoll is how often a stalled pump re-checks a crashed
// destination; the in-process stand-in for tcpnet's dial backoff.
const crashPoll = time.Millisecond

// LatencyFunc returns the one-way delay for a message from node i to
// node j (1-indexed).
type LatencyFunc func(from, to int) time.Duration

// Uniform returns a LatencyFunc with a constant one-way delay.
func Uniform(d time.Duration) LatencyFunc {
	return func(int, int) time.Duration { return d }
}

// Options configures a Hub.
type Options struct {
	// Latency is the one-way delay model; nil means zero latency.
	Latency LatencyFunc
	// JitterFrac adds uniform jitter in [0, JitterFrac) of the base
	// latency to every message.
	JitterFrac float64
	// Seed makes jitter deterministic.
	Seed uint64
	// QueueLen is the inbound queue length per node (default 4096).
	// A deep queue models kernel socket buffers; the paper's capacity
	// experiments drive nodes far beyond their service rate.
	QueueLen int
	// OutQueueLen bounds each directed link's outbound queue (default
	// 1024), mirroring tcpnet's per-peer queues.
	OutQueueLen int
	// Policy selects the full-queue behavior (default PolicyBlock).
	Policy network.QueuePolicy
	// AckWindow bounds the unacknowledged frames retained per link for
	// resend (default 1024); a full window is resolved by Policy.
	AckWindow int
	// AckInterval coalesces standalone acknowledgements and paces the
	// resend scan (default 25 ms).
	AckInterval time.Duration
	// ResendTimeout is how long a frame stays unacknowledged before it
	// is retransmitted (default 500 ms).
	ResendTimeout time.Duration
	// Secure enables roster enforcement, mirroring tcpnet's
	// secure-link semantics in-process so the conformance suite
	// exercises identical seams on both transports: a link carries
	// traffic only when both endpoints' identity keys match their
	// roster entries — an impostor or unrostered node is cut off
	// exactly as a failed handshake cuts it off on TCP — and
	// TransportStats reports the same Authenticated markers. Nil means
	// the polite pre-identity network, as before.
	Secure *SecureOptions
}

// SecureOptions carries the mesh identities into a secure hub. Tests
// model an impostor by registering a key that does not match the
// node's roster entry.
type SecureOptions struct {
	// Identities maps node index → that node's private identity (the
	// in-process analogue of each node's identity file).
	Identities map[int]*identity.Key
	// Roster is the shared membership authority all nodes enforce.
	Roster identity.Roster
}

// authentic reports whether node i's registered identity proves its
// roster entry — the in-process analogue of node i being able to
// complete the handshake.
func (s *SecureOptions) authentic(i int) bool {
	k, ok := s.Identities[i]
	if !ok || k == nil || k.Node != i {
		return false
	}
	p, err := s.Roster.Lookup(i)
	if err != nil {
		return false
	}
	pub := k.Public()
	return pub.Sign.Equal(p.Sign) && pub.Box.Equal(p.Box)
}

// Hub connects n in-process endpoints.
type Hub struct {
	n    int
	opts Options
	rcfg relink.Config

	mu      sync.Mutex
	rng     *rand.Rand
	inbox   []chan network.Envelope
	crashed []bool
	dropFn  func(env network.Envelope) bool
	closed  bool
	// links holds the directed outbound queues, keyed by (from, to);
	// created lazily, drained by one pump goroutine each.
	links map[[2]int]*link
	stop  chan struct{}
	pumps sync.WaitGroup
	wg    sync.WaitGroup
	// lastArrival and lastDone enforce per-link FIFO: a message never
	// arrives before an earlier message on the same (from, to) link,
	// matching TCP semantics.
	lastArrival map[[2]int]time.Time
	lastDone    map[[2]int]chan struct{}
	// rel holds each node's ack-layer state (its epoch, outbound
	// windows, and inbound dedup cursors), indexed 1..n.
	rel []*nodeRel
}

// link is one directed outbound queue with its delivery bookkeeping.
type link struct {
	from, to int
	q        *outq.Queue[network.Envelope]
	sent     atomic.Uint64
}

// nodeRel is one node's ack-layer state: the outbound in-flight window
// per destination and the inbound order/dedup cursor per sender.
type nodeRel struct {
	epoch uint64
	mu    sync.Mutex
	out   map[int]*relink.Link
	in    map[int]*relink.Inbox
}

// NewHub creates a hub for nodes 1..n.
func NewHub(n int, opts Options) *Hub {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	if opts.OutQueueLen <= 0 {
		opts.OutQueueLen = 1024
	}
	h := &Hub{
		n:    n,
		opts: opts,
		rcfg: relink.Config{
			Window:        opts.AckWindow,
			AckInterval:   opts.AckInterval,
			ResendTimeout: opts.ResendTimeout,
			Policy:        opts.Policy,
		}.WithDefaults(),
		rng:         rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15)),
		inbox:       make([]chan network.Envelope, n+1),
		crashed:     make([]bool, n+1),
		links:       make(map[[2]int]*link),
		stop:        make(chan struct{}),
		lastArrival: make(map[[2]int]time.Time),
		lastDone:    make(map[[2]int]chan struct{}),
		rel:         make([]*nodeRel, n+1),
	}
	for i := 1; i <= n; i++ {
		h.inbox[i] = make(chan network.Envelope, opts.QueueLen)
		h.rel[i] = &nodeRel{
			epoch: relink.NewEpoch(),
			out:   make(map[int]*relink.Link),
			in:    make(map[int]*relink.Inbox),
		}
	}
	h.pumps.Add(1)
	go h.flusher()
	return h
}

// outLink returns (creating if needed) node from's outbound ack window
// toward node to.
func (h *Hub) outLink(from, to int) *relink.Link {
	nr := h.rel[from]
	nr.mu.Lock()
	defer nr.mu.Unlock()
	l, ok := nr.out[to]
	if !ok {
		l = relink.NewLink(nr.epoch, h.rcfg)
		nr.out[to] = l
	}
	return l
}

// peekOutLink returns node from's outbound window toward to, or nil.
func (h *Hub) peekOutLink(from, to int) *relink.Link {
	nr := h.rel[from]
	nr.mu.Lock()
	defer nr.mu.Unlock()
	return nr.out[to]
}

// inboxOf returns (creating if needed) node at's inbound ack-layer
// cursor for frames sent by from.
func (h *Hub) inboxOf(at, from int) *relink.Inbox {
	nr := h.rel[at]
	nr.mu.Lock()
	defer nr.mu.Unlock()
	ib, ok := nr.in[from]
	if !ok {
		ib = relink.NewInbox(h.rcfg.Window)
		nr.in[from] = ib
	}
	return ib
}

// Endpoint returns node i's P2P interface.
func (h *Hub) Endpoint(i int) network.P2P {
	return &endpoint{hub: h, index: i}
}

// Crash makes a node unreachable and stops its sends, simulating a
// crashed replica. Frames already queued toward it stay queued (its
// peers' writers are "in dial-retry") and are delivered on Restart,
// matching tcpnet's reconnect semantics.
func (h *Hub) Crash(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashed[i] = true
}

// Restart clears a crash.
func (h *Hub) Restart(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.crashed[i] = false
}

// DropIf installs a message filter; envelopes for which fn returns true
// are silently dropped. Passing nil removes the filter.
func (h *Hub) DropIf(fn func(env network.Envelope) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dropFn = fn
}

// Close shuts down all endpoints and waits for in-flight deliveries.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	links := make([]*link, 0, len(h.links))
	for _, l := range h.links {
		links = append(links, l)
	}
	h.mu.Unlock()
	close(h.stop)
	for _, l := range links {
		l.q.Close()
	}
	for i := 1; i <= h.n; i++ {
		nr := h.rel[i]
		nr.mu.Lock()
		for _, l := range nr.out {
			l.Close() // unblock stagers parked on a full window
		}
		nr.mu.Unlock()
	}
	h.pumps.Wait()
	h.wg.Wait()
	h.mu.Lock()
	for i := 1; i <= h.n; i++ {
		close(h.inbox[i])
	}
	h.mu.Unlock()
}

// link returns (creating and starting if needed) the directed link
// from -> to.
func (h *Hub) link(from, to int) (*link, error) {
	key := [2]int{from, to}
	h.mu.Lock()
	defer h.mu.Unlock()
	if l, ok := h.links[key]; ok {
		return l, nil
	}
	if h.closed {
		return nil, ErrClosed
	}
	l := &link{
		from: from, to: to,
		q: outq.New[network.Envelope](h.opts.OutQueueLen, h.opts.Policy),
	}
	h.links[key] = l
	h.pumps.Add(1)
	go h.pump(l)
	return l, nil
}

// pump drains one directed link. A crashed destination stalls the pump
// (the sender's "writer" is stuck redialing a dead peer), so the
// bounded queue backs up exactly as tcpnet's does.
func (h *Hub) pump(l *link) {
	defer h.pumps.Done()
	for {
		env, ok := l.q.Dequeue(h.stop)
		if !ok {
			return
		}
		for h.destDown(l.to) {
			select {
			case <-h.stop:
				return
			case <-time.After(crashPoll):
			}
		}
		l.sent.Add(1)
		h.transmit(l.to, env)
	}
}

// destDown reports whether the destination is crashed.
func (h *Hub) destDown(to int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crashed[to] && !h.closed
}

// linkAuthentic reports whether the (from, to) link would survive the
// secure handshake: both endpoints must prove their roster entries.
// Always true on an insecure hub.
func (h *Hub) linkAuthentic(from, to int) bool {
	s := h.opts.Secure
	if s == nil {
		return true
	}
	return s.authentic(from) && s.authentic(to)
}

// transmit schedules delivery of env to node `to`. On a secure hub an
// unauthenticated link is wire loss — the handshake the frame would
// have ridden behind never completes, matching tcpnet's rejection of
// impostor and unrostered peers.
func (h *Hub) transmit(to int, env network.Envelope) {
	now := time.Now()
	if !h.linkAuthentic(env.From, to) {
		return
	}
	h.mu.Lock()
	if h.closed || h.crashed[env.From] || h.crashed[to] ||
		(h.dropFn != nil && h.dropFn(env)) {
		h.mu.Unlock()
		return
	}
	base := time.Duration(0)
	if h.opts.Latency != nil {
		base = h.opts.Latency(env.From, to)
	}
	if h.opts.JitterFrac > 0 && base > 0 {
		base += time.Duration(float64(base) * h.rng.Float64() * h.opts.JitterFrac)
	}
	arrival := now.Add(base)
	link := [2]int{env.From, to}
	if last, ok := h.lastArrival[link]; ok && arrival.Before(last) {
		arrival = last // FIFO per link
	}
	h.lastArrival[link] = arrival
	prev := h.lastDone[link]
	done := make(chan struct{})
	h.lastDone[link] = done
	h.wg.Add(1)
	h.mu.Unlock()

	go func() {
		defer h.wg.Done()
		defer close(done)
		if d := time.Until(arrival); d > 0 {
			timer := time.NewTimer(d)
			<-timer.C
		}
		if prev != nil {
			<-prev // strict per-link delivery order
		}
		h.deliverTo(to, env)
	}()
}

// deliverTo runs one arrived envelope through the receiving node's ack
// layer: acknowledgements discharge the reverse link's window, data
// frames are deduplicated and reordered per sender, and whatever became
// deliverable is pushed to the node's inbox channel.
//
// The crash check runs BEFORE the ack layer sees the frame: a frame
// arriving at a crashed node is wire loss, and accepting it first
// would advance the delivery cursor (and later acknowledge it) for a
// frame the engine never got. A crash landing after Accept is the
// frame reaching the engine queue just before the death — in memnet's
// model the inbox survives the crash, so it is still delivered.
func (h *Hub) deliverTo(to int, env network.Envelope) {
	h.mu.Lock()
	dead := h.closed || h.crashed[to]
	h.mu.Unlock()
	if dead {
		return
	}
	if env.AckEpoch != 0 {
		if l := h.peekOutLink(to, env.From); l != nil {
			l.Ack(env.AckEpoch, env.Ack)
		}
	}
	if env.Kind == network.KindAck {
		return // control frame, consumed here
	}
	if env.From < 1 || env.From > h.n || env.Seq == 0 {
		h.pushInbox(to, env) // unsequenced frame: deliver raw
		return
	}
	for _, d := range h.inboxOf(to, env.From).Accept(env) {
		h.pushInbox(to, d)
	}
}

// pushInbox hands one envelope to a node's receive channel. Only a
// closed hub drops here: an accepted frame must reach the inbox even
// if a crash landed since deliverTo's check, or the ack layer would
// acknowledge a frame the engine never saw (the inbox survives a
// crash/restart cycle, so delivering is correct).
func (h *Hub) pushInbox(to int, env network.Envelope) {
	h.mu.Lock()
	dead := h.closed
	ch := h.inbox[to]
	h.mu.Unlock()
	if dead {
		return
	}
	ch <- env
}

// flusher is the hub-wide ack/resend ticker: it flushes coalesced
// standalone acknowledgements and retransmits unacknowledged frames
// past the resend timeout, using non-blocking enqueues so a stalled
// link is retried on the next tick. A crashed node's acks and resends
// are enqueued but dropped at transmit time, exactly like traffic from
// a dead process.
func (h *Hub) flusher() {
	defer h.pumps.Done()
	ticker := time.NewTicker(h.rcfg.AckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-h.stop:
			return
		}
		now := time.Now()
		for i := 1; i <= h.n; i++ {
			nr := h.rel[i]
			nr.mu.Lock()
			inboxes := make(map[int]*relink.Inbox, len(nr.in))
			for from, ib := range nr.in {
				inboxes[from] = ib
			}
			outs := make(map[int]*relink.Link, len(nr.out))
			for to, l := range nr.out {
				outs[to] = l
			}
			nr.mu.Unlock()
			for from, ib := range inboxes {
				epoch, upTo, ok := ib.PendingAck()
				if !ok {
					continue
				}
				lq, err := h.link(i, from)
				if err != nil {
					continue
				}
				ack := network.Envelope{
					From: i, To: from,
					Kind: network.KindAck, Ack: upTo, AckEpoch: epoch,
				}
				if lq.q.TryEnqueue(ack) {
					ib.ClearPending(epoch, upTo)
				}
			}
			for to, l := range outs {
				lq, err := h.link(i, to)
				if err != nil {
					continue
				}
				l.Resend(now, func(env network.Envelope) bool {
					return lq.q.TryEnqueue(env)
				})
			}
		}
	}
}

type endpoint struct {
	hub   *Hub
	index int
}

var _ network.P2P = (*endpoint)(nil)

// send stages one envelope in the ack layer's in-flight window,
// piggybacks any pending acknowledgement for the reverse direction,
// and enqueues it onto the directed link, attributing policy failures
// to the destination peer. A frame the queue rejects after staging is
// still recovered by the resend timer.
func (e *endpoint) send(ctx context.Context, to int, env network.Envelope) error {
	l, err := e.hub.link(e.index, to)
	if err != nil {
		return err
	}
	staged, err := e.hub.outLink(e.index, to).Stage(ctx, env)
	if err != nil {
		return network.AttributePeer(to, err)
	}
	ib := e.hub.inboxOf(e.index, to)
	epoch, upTo, hasAck := ib.AckValue()
	if hasAck {
		staged.Ack, staged.AckEpoch = upTo, epoch
	}
	if err := l.q.Enqueue(ctx, staged); err != nil {
		// Pending ack not cleared: its only carrier never left; the
		// standalone flusher still sends it.
		return network.AttributePeer(to, err)
	}
	if hasAck {
		ib.ClearPending(epoch, upTo)
	}
	return nil
}

func (e *endpoint) Send(ctx context.Context, to int, env network.Envelope) error {
	if to < 1 || to > e.hub.n {
		return fmt.Errorf("memnet: no such node %d", to)
	}
	env.From = e.index
	env.To = to
	return e.send(ctx, to, env)
}

// Broadcast enqueues for every other node, attempting all of them and
// aggregating per-peer failures into a *network.BroadcastError.
func (e *endpoint) Broadcast(ctx context.Context, env network.Envelope) error {
	env.From = e.index
	env.To = network.Broadcast
	var failed []*network.PeerError
	attempted := 0
	for to := 1; to <= e.hub.n; to++ {
		if to == e.index {
			continue
		}
		attempted++
		if err := e.send(ctx, to, env); err != nil {
			failed = append(failed, network.PeerFailure(to, err))
		}
	}
	return network.NewBroadcastError(attempted, failed)
}

// TransportStats snapshots this node's view of every peer link: a
// crashed peer is Down (its pump is stalled, its queue backing up),
// everything else is Up.
func (e *endpoint) TransportStats() network.TransportStats {
	out := network.TransportStats{
		Policy:        e.hub.opts.Policy,
		Reliable:      true,
		Authenticated: e.hub.opts.Secure != nil,
	}
	for to := 1; to <= e.hub.n; to++ {
		if to == e.index {
			continue
		}
		ps := network.PeerStats{Peer: to, State: network.PeerUp}
		if out.Authenticated {
			ps.Authenticated = e.hub.linkAuthentic(e.index, to)
			if !ps.Authenticated {
				// The handshake can never complete: the link reports
				// down with the same shape a failed TCP handshake
				// produces.
				ps.State = network.PeerDown
				ps.ConsecutiveFailures = 1
				ps.LastError = "handshake rejected"
			}
		}
		e.hub.mu.Lock()
		crashed := e.hub.crashed[to]
		l := e.hub.links[[2]int{e.index, to}]
		e.hub.mu.Unlock()
		if crashed {
			ps.State = network.PeerDown
			ps.ConsecutiveFailures = 1
			ps.LastError = "peer crashed"
		}
		if l != nil {
			ps.QueueDepth = l.q.Len()
			ps.QueueCap = l.q.Cap()
			ps.Enqueued = l.q.Enqueued()
			ps.Dropped = l.q.Dropped()
			ps.Sent = l.sent.Load()
		} else {
			ps.QueueCap = e.hub.opts.OutQueueLen
		}
		if rl := e.hub.peekOutLink(e.index, to); rl != nil {
			ps.Delivered = rl.Delivered()
			ps.Inflight = rl.Inflight()
			ps.Resent = rl.Resent()
			ps.Dropped += rl.Dropped()
		}
		out.Peers = append(out.Peers, ps)
	}
	return out
}

func (e *endpoint) Receive() <-chan network.Envelope {
	return e.hub.inbox[e.index]
}

func (e *endpoint) Close() error { return nil }
