package memnet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"thetacrypt/internal/network"
)

func recvOne(t *testing.T, ch <-chan network.Envelope, within time.Duration) network.Envelope {
	t.Helper()
	select {
	case env := <-ch:
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for envelope")
		return network.Envelope{}
	}
}

func TestSendAndBroadcast(t *testing.T) {
	hub := NewHub(3, Options{})
	defer hub.Close()
	e1, e2, e3 := hub.Endpoint(1), hub.Endpoint(2), hub.Endpoint(3)

	if err := e1.Send(context.Background(), 2, network.Envelope{Payload: []byte("direct")}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, e2.Receive(), time.Second)
	if env.From != 1 || string(env.Payload) != "direct" {
		t.Fatalf("got %+v", env)
	}

	if err := e2.Broadcast(context.Background(), network.Envelope{Payload: []byte("all")}); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []network.P2P{e1, e3} {
		env := recvOne(t, ep.Receive(), time.Second)
		if env.From != 2 || string(env.Payload) != "all" {
			t.Fatalf("got %+v", env)
		}
	}
	if err := e1.Send(context.Background(), 9, network.Envelope{}); err == nil {
		t.Fatal("send to unknown node accepted")
	}
}

func TestLatencyIsApplied(t *testing.T) {
	const delay = 30 * time.Millisecond
	hub := NewHub(2, Options{Latency: Uniform(delay)})
	defer hub.Close()
	start := time.Now()
	if err := hub.Endpoint(1).Send(context.Background(), 2, network.Envelope{Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, hub.Endpoint(2).Receive(), time.Second)
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivered in %v, want >= %v", elapsed, delay)
	}
}

func TestPerLinkFIFOUnderJitter(t *testing.T) {
	hub := NewHub(2, Options{Latency: Uniform(2 * time.Millisecond), JitterFrac: 1.0, Seed: 3})
	defer hub.Close()
	const msgs = 25
	for i := 0; i < msgs; i++ {
		if err := hub.Endpoint(1).Send(context.Background(), 2, network.Envelope{
			Payload: []byte(fmt.Sprintf("%02d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		env := recvOne(t, hub.Endpoint(2).Receive(), time.Second)
		want := fmt.Sprintf("%02d", i)
		if string(env.Payload) != want {
			t.Fatalf("position %d: got %s, want %s (per-link FIFO violated)", i, env.Payload, want)
		}
	}
}

func TestCrashAndRestart(t *testing.T) {
	hub := NewHub(2, Options{})
	defer hub.Close()
	hub.Crash(2)
	// A send toward a crashed node queues on the link (the "writer" is
	// stuck redialing the dead peer, as over TCP); nothing is delivered
	// while the node is down.
	if err := hub.Endpoint(1).Send(context.Background(), 2, network.Envelope{Payload: []byte("queued")}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-hub.Endpoint(2).Receive():
		t.Fatalf("crashed node received %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
	if st, ok := hub.Endpoint(1).TransportStats().Peer(2); !ok || st.State != network.PeerDown {
		t.Fatalf("crashed peer stats = %+v, want Down", st)
	}
	hub.Restart(2)
	if err := hub.Endpoint(1).Send(context.Background(), 2, network.Envelope{Payload: []byte("back")}); err != nil {
		t.Fatal(err)
	}
	// The backlog drains in order after the restart, like a TCP
	// reconnect replaying the peer's outbound queue.
	env := recvOne(t, hub.Endpoint(2).Receive(), time.Second)
	if string(env.Payload) != "queued" {
		t.Fatalf("got %+v, want the queued frame first", env)
	}
	env = recvOne(t, hub.Endpoint(2).Receive(), time.Second)
	if string(env.Payload) != "back" {
		t.Fatalf("got %+v", env)
	}
}

func TestDropFilterLossIsRepairedByResend(t *testing.T) {
	// DropIf models in-flight loss (a frame written to the kernel just
	// before the peer dies). The ack layer repairs it: while the filter
	// holds, nothing after the gap is delivered either (per-link order);
	// once it lifts, the resend timer redelivers the lost frame and the
	// stream resumes in order, with nothing duplicated.
	hub := NewHub(2, Options{AckInterval: 2 * time.Millisecond, ResendTimeout: 10 * time.Millisecond})
	defer hub.Close()
	hub.DropIf(func(env network.Envelope) bool { return env.Instance == "drop-me" })
	if err := hub.Endpoint(1).Send(context.Background(), 2, network.Envelope{Instance: "drop-me"}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Endpoint(1).Send(context.Background(), 2, network.Envelope{Instance: "keep"}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-hub.Endpoint(2).Receive():
		t.Fatalf("delivery slipped past the dropped frame: %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
	hub.DropIf(nil)
	env := recvOne(t, hub.Endpoint(2).Receive(), 2*time.Second)
	if env.Instance != "drop-me" {
		t.Fatalf("got %+v, want the resent frame first (per-link order)", env)
	}
	env = recvOne(t, hub.Endpoint(2).Receive(), 2*time.Second)
	if env.Instance != "keep" {
		t.Fatalf("got %+v, want the held-back frame next", env)
	}
	select {
	case env := <-hub.Endpoint(2).Receive():
		t.Fatalf("duplicate delivered: %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	hub := NewHub(2, Options{})
	hub.Close()
	hub.Close() // second close must not panic
}
