// Package bls04 implements the Boneh-Lynn-Shacham threshold signature
// scheme (BLS04) over the BN254 pairing: short deterministic signatures
// in G1 with public keys in G2. The key homomorphism makes the scheme
// directly threshold-friendly; signature shares are verified with a
// pairing equation instead of a ZKP (the paper's Table 1).
package bls04

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/pairing"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// Scheme-level errors suitable for errors.Is matching.
var (
	ErrInvalidShare     = errors.New("bls04: invalid signature share")
	ErrInvalidSignature = errors.New("bls04: invalid signature")
)

// PublicKey is the group public key Y = x*G2 with per-party verification
// keys VK[i-1] = x_i*G2.
type PublicKey struct {
	Y  *pairing.G2
	VK []*pairing.G2
	T  int
	N  int
}

// KeyShare is party i's share x_i of the signing key.
type KeyShare struct {
	Index int
	X     *big.Int
}

// Deal runs the trusted-dealer setup.
func Deal(rand io.Reader, t, n int) (*PublicKey, []KeyShare, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, nil, err
	}
	x, err := mathutil.RandInt(rand, pairing.Order())
	if err != nil {
		return nil, nil, fmt.Errorf("sample secret: %w", err)
	}
	shares, err := share.Split(rand, x, t, n, pairing.Order())
	if err != nil {
		return nil, nil, err
	}
	pk := &PublicKey{Y: pairing.G2BaseMul(x), VK: make([]*pairing.G2, n), T: t, N: n}
	ks := make([]KeyShare, n)
	for i, s := range shares {
		ks[i] = KeyShare{Index: s.Index, X: s.Value}
		pk.VK[i] = pairing.G2BaseMul(s.Value)
	}
	return pk, ks, nil
}

// SigShare is party i's partial signature x_i*H(m).
type SigShare struct {
	Index int
	S     *pairing.G1
}

// Signature is a combined BLS signature, a single G1 point.
type Signature struct {
	S *pairing.G1
}

// hashToPoint maps a message to G1.
func hashToPoint(msg []byte) *pairing.G1 {
	return pairing.HashToG1("bls04/msg", msg)
}

// SignShare produces party i's deterministic signature share.
func SignShare(ks KeyShare, msg []byte) *SigShare {
	return &SigShare{Index: ks.Index, S: hashToPoint(msg).Mul(ks.X)}
}

// VerifyShare checks e(S_i, G2) == e(H(m), VK_i).
func VerifyShare(pk *PublicKey, msg []byte, ss *SigShare) error {
	if ss == nil || ss.S == nil || ss.Index < 1 || ss.Index > pk.N {
		return ErrInvalidShare
	}
	if !pairing.PairingCheck(ss.S, pairing.G2Generator(), hashToPoint(msg), pk.VK[ss.Index-1]) {
		return ErrInvalidShare
	}
	return nil
}

// Combine interpolates t+1 signature shares in G1 and verifies the
// result against the group public key (the paper's result verification).
func Combine(pk *PublicKey, msg []byte, shares []*SigShare) (*Signature, error) {
	return CombineWith(nil, pk, msg, shares)
}

// CombineWith is Combine drawing Lagrange coefficients from src (nil
// selects direct computation). The pairing group cannot join the
// precompute layer's multi-scalar batches, but the coefficient cache
// still amortizes repeated signer subsets.
func CombineWith(src share.CoefficientSource, pk *PublicKey, msg []byte, shares []*SigShare) (*Signature, error) {
	if len(shares) < pk.T+1 {
		return nil, share.ErrNotEnoughShares
	}
	chosen := make(map[int]*pairing.G1, pk.T+1)
	for _, ss := range shares {
		if len(chosen) == pk.T+1 {
			break
		}
		chosen[ss.Index] = ss.S
	}
	if len(chosen) < pk.T+1 {
		return nil, share.ErrDuplicateIndex
	}
	subset := make([]int, 0, len(chosen))
	for idx := range chosen {
		subset = append(subset, idx)
	}
	coeffs, err := share.SourceOrDirect(src).Lagrange(subset, pairing.Order())
	if err != nil {
		return nil, err
	}
	acc := pairing.G1Identity()
	for idx, s := range chosen {
		lambda, ok := coeffs[idx]
		if !ok {
			return nil, fmt.Errorf("bls04: signer %d missing from coefficient map", idx)
		}
		acc = acc.Add(s.Mul(lambda))
	}
	sig := &Signature{S: acc}
	if err := Verify(pk, msg, sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// Verify checks e(σ, G2) == e(H(m), Y).
func Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	if sig == nil || sig.S == nil || sig.S.IsIdentity() {
		return ErrInvalidSignature
	}
	if !pairing.PairingCheck(sig.S, pairing.G2Generator(), hashToPoint(msg), pk.Y) {
		return ErrInvalidSignature
	}
	return nil
}

// Marshal encodes the signature share.
func (ss *SigShare) Marshal() []byte {
	return wire.NewWriter().Int(ss.Index).Bytes(ss.S.Marshal()).Out()
}

// UnmarshalSigShare decodes a signature share.
func UnmarshalSigShare(data []byte) (*SigShare, error) {
	r := wire.NewReader(data)
	idx := r.Int()
	sRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bls04 share: %w", err)
	}
	s, ok := pairing.UnmarshalG1(sRaw)
	if !ok {
		return nil, fmt.Errorf("bls04 share point: %w", ErrInvalidShare)
	}
	return &SigShare{Index: idx, S: s}, nil
}

// Marshal encodes the signature.
func (sig *Signature) Marshal() []byte { return sig.S.Marshal() }

// UnmarshalSignature decodes a signature.
func UnmarshalSignature(data []byte) (*Signature, error) {
	s, ok := pairing.UnmarshalG1(data)
	if !ok {
		return nil, ErrInvalidSignature
	}
	return &Signature{S: s}, nil
}
