package bls04

import (
	"crypto/rand"
	"errors"
	"testing"

	"thetacrypt/internal/pairing"
	"thetacrypt/internal/share"
)

func deal(t *testing.T, tt, n int) (*PublicKey, []KeyShare) {
	t.Helper()
	pk, ks, err := Deal(rand.Reader, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return pk, ks
}

func TestSignCombineVerify(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	msg := []byte("block #1337")
	var shares []*SigShare
	for _, k := range []KeyShare{ks[1], ks[3]} {
		ss := SignShare(k, msg)
		if err := VerifyShare(pk, msg, ss); err != nil {
			t.Fatalf("valid share %d rejected: %v", ss.Index, err)
		}
		shares = append(shares, ss)
	}
	sig, err := Combine(pk, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk, msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk, []byte("other message"), sig); err == nil {
		t.Fatal("signature verified for wrong message")
	}
}

func TestSignatureIsUniqueAcrossQuorums(t *testing.T) {
	// BLS signatures are unique: any quorum combines to the same point.
	pk, ks := deal(t, 2, 7)
	msg := []byte("determinism")
	combineWith := func(idxs []int) *Signature {
		var shares []*SigShare
		for _, i := range idxs {
			shares = append(shares, SignShare(ks[i], msg))
		}
		sig, err := Combine(pk, msg, shares)
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}
	s1 := combineWith([]int{0, 1, 2})
	s2 := combineWith([]int{4, 5, 6})
	if !s1.S.Equal(s2.S) {
		t.Fatal("different quorums produced different signatures")
	}
}

func TestForgedShareRejected(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	msg := []byte("m")
	ss := SignShare(ks[0], msg)

	wrongIndex := &SigShare{Index: 2, S: ss.S}
	if err := VerifyShare(pk, msg, wrongIndex); err == nil {
		t.Fatal("share attributed to wrong party accepted")
	}
	if err := VerifyShare(pk, []byte("other"), ss); err == nil {
		t.Fatal("share verified for wrong message")
	}
	forged := &SigShare{Index: 1, S: pairing.G1Generator()}
	if err := VerifyShare(pk, msg, forged); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("forged share accepted")
	}
	oob := &SigShare{Index: 99, S: ss.S}
	if err := VerifyShare(pk, msg, oob); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("out-of-range index accepted")
	}
}

func TestCombineQuorumRules(t *testing.T) {
	pk, ks := deal(t, 2, 5)
	msg := []byte("m")
	s0 := SignShare(ks[0], msg)
	s1 := SignShare(ks[1], msg)
	if _, err := Combine(pk, msg, []*SigShare{s0, s1}); !errors.Is(err, share.ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
	if _, err := Combine(pk, msg, []*SigShare{s0, s0, s1}); err == nil {
		t.Fatal("duplicate shares satisfied the quorum")
	}
}

func TestCombineDetectsBadQuorum(t *testing.T) {
	// An unverified bad share reaching Combine is caught by the result
	// verification.
	pk, ks := deal(t, 1, 4)
	msg := []byte("m")
	good := SignShare(ks[0], msg)
	bad := SignShare(ks[1], msg)
	bad.S = bad.S.Add(pairing.G1Generator())
	if _, err := Combine(pk, msg, []*SigShare{good, bad}); err == nil {
		t.Fatal("corrupted quorum produced a verifying signature")
	}
}

func TestShareMarshalRoundTrip(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	msg := []byte("wire")
	ss := SignShare(ks[2], msg)
	ss2, err := UnmarshalSigShare(ss.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pk, msg, ss2); err != nil {
		t.Fatalf("round-tripped share invalid: %v", err)
	}
	if _, err := UnmarshalSigShare([]byte("junk")); err == nil {
		t.Fatal("junk share decoded")
	}
	sig, _ := Combine(pk, msg, []*SigShare{SignShare(ks[0], msg), ss})
	sig2, err := UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk, msg, sig2); err != nil {
		t.Fatalf("round-tripped signature invalid: %v", err)
	}
}

func TestKeyShareConsistency(t *testing.T) {
	// Reconstructing the secret from key shares yields the public key's
	// discrete log.
	pk, ks := deal(t, 1, 3)
	sh := []share.Share{
		{Index: ks[0].Index, Value: ks[0].X},
		{Index: ks[1].Index, Value: ks[1].X},
	}
	x, err := share.Reconstruct(sh, 1, pairing.Order())
	if err != nil {
		t.Fatal(err)
	}
	if !pairing.G2BaseMul(x).Equal(pk.Y) {
		t.Fatal("reconstructed secret does not match public key")
	}
}
