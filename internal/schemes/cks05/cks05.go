// Package cks05 implements the Diffie-Hellman based coin-tossing scheme
// of Cachin, Kursawe, and Shoup (CKS05): a threshold-random function that
// maps a coin name C to an unpredictable pseudorandom value, secure in
// the random-oracle model. Every coin share carries a proof of equality
// of discrete logarithms (DLEQ) ensuring its correctness, as described in
// the paper's Section 3.5.
package cks05

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/group"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
	"thetacrypt/internal/zkp"
)

// ErrInvalidShare is returned for coin shares that fail verification.
var ErrInvalidShare = errors.New("cks05: invalid coin share")

// ValueSize is the size of a coin value in bytes.
const ValueSize = 32

// PublicKey holds the coin verification keys: Y = x*G and per-party
// VK[i-1] = x_i*G.
type PublicKey struct {
	Group group.Group
	Y     group.Point
	VK    []group.Point
	T     int
	N     int
}

// KeyShare is party i's share x_i of the coin secret.
type KeyShare struct {
	Index int
	X     *big.Int
}

// Deal runs the trusted-dealer setup.
func Deal(rand io.Reader, g group.Group, t, n int) (*PublicKey, []KeyShare, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, nil, err
	}
	x, err := g.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("sample secret: %w", err)
	}
	shares, err := share.Split(rand, x, t, n, g.Order())
	if err != nil {
		return nil, nil, err
	}
	pk := &PublicKey{Group: g, Y: g.BaseMul(x), VK: make([]group.Point, n), T: t, N: n}
	ks := make([]KeyShare, n)
	for i, s := range shares {
		ks[i] = KeyShare{Index: s.Index, X: s.Value}
		pk.VK[i] = g.BaseMul(s.Value)
	}
	return pk, ks, nil
}

// CoinShare is party i's share Ĥ(C)^{x_i} with its DLEQ validity proof.
type CoinShare struct {
	Index int
	Sigma group.Point
	Proof *zkp.DLEQProof
}

// coinBase maps the coin name into the group.
func coinBase(g group.Group, name []byte) group.Point {
	return g.HashToPoint("cks05/coin", name)
}

// Share produces party i's coin share for the named coin.
func Share(rand io.Reader, pk *PublicKey, ks KeyShare, name []byte) (*CoinShare, error) {
	g := pk.Group
	base := coinBase(g, name)
	sigma := base.Mul(ks.X)
	proof, err := zkp.ProveDLEQ(rand, g, "cks05/share",
		g.Generator(), pk.VK[ks.Index-1], base, sigma, ks.X, name)
	if err != nil {
		return nil, err
	}
	return &CoinShare{Index: ks.Index, Sigma: sigma, Proof: proof}, nil
}

// VerifyShare checks a coin share against the issuing party's
// verification key.
func VerifyShare(pk *PublicKey, name []byte, cs *CoinShare) error {
	rels, err := ShareRelations(pk, name, cs)
	if err != nil {
		return err
	}
	for _, rel := range rels {
		if !rel.Holds(pk.Group) {
			return ErrInvalidShare
		}
	}
	return nil
}

// ShareRelations does the structural checks and challenge recomputation
// eagerly and returns the linear point relations completing share
// verification, for the batch verifier to fold across shares.
func ShareRelations(pk *PublicKey, name []byte, cs *CoinShare) ([]group.Relation, error) {
	if cs == nil || cs.Sigma == nil || cs.Index < 1 || cs.Index > pk.N {
		return nil, ErrInvalidShare
	}
	g := pk.Group
	base := coinBase(g, name)
	rels, err := zkp.DLEQRelations(g, "cks05/share",
		g.Generator(), pk.VK[cs.Index-1], base, cs.Sigma, cs.Proof, name)
	if err != nil {
		return nil, ErrInvalidShare
	}
	return rels, nil
}

// Combine interpolates t+1 coin shares into Ĥ(C)^x and hashes it to the
// coin value. Shares must have been verified; the combine is
// deterministic, so all correct parties derive the same value.
func Combine(pk *PublicKey, name []byte, css []*CoinShare) ([]byte, error) {
	return CombineWith(nil, pk, name, css)
}

// CombineWith is Combine drawing Lagrange coefficients from src (nil
// selects direct computation).
func CombineWith(src share.CoefficientSource, pk *PublicKey, name []byte, css []*CoinShare) ([]byte, error) {
	if len(css) < pk.T+1 {
		return nil, share.ErrNotEnoughShares
	}
	points := make(map[int]group.Point, pk.T+1)
	for _, cs := range css {
		if len(points) == pk.T+1 {
			break
		}
		points[cs.Index] = cs.Sigma
	}
	if len(points) < pk.T+1 {
		return nil, share.ErrDuplicateIndex
	}
	sigma, err := share.InterpolateInExponentWith(src, pk.Group, points)
	if err != nil {
		return nil, err
	}
	return coinValue(name, sigma), nil
}

// coinValue derives the final pseudorandom value H'(C, σ).
func coinValue(name []byte, sigma group.Point) []byte {
	h := sha256.New()
	h.Write([]byte("cks05/value"))
	h.Write(name)
	h.Write(sigma.Marshal())
	return h.Sum(nil)
}

// Bit reduces a coin value to a single bit, the common-coin interface
// used by randomized agreement protocols.
func Bit(value []byte) int {
	if len(value) == 0 {
		return 0
	}
	return int(value[0] & 1)
}

// Marshal encodes the coin share.
func (cs *CoinShare) Marshal() []byte {
	return wire.NewWriter().
		Int(cs.Index).Bytes(cs.Sigma.Marshal()).Bytes(cs.Proof.Marshal()).Out()
}

// UnmarshalCoinShare decodes a coin share for the given group.
func UnmarshalCoinShare(g group.Group, data []byte) (*CoinShare, error) {
	r := wire.NewReader(data)
	idx := r.Int()
	sigmaRaw := r.Bytes()
	proofRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cks05 share: %w", err)
	}
	sigma, err := g.UnmarshalPoint(sigmaRaw)
	if err != nil {
		return nil, fmt.Errorf("cks05 share sigma: %w", err)
	}
	proof, err := zkp.UnmarshalDLEQ(g, proofRaw)
	if err != nil {
		return nil, fmt.Errorf("cks05 share proof: %w", err)
	}
	return &CoinShare{Index: idx, Sigma: sigma, Proof: proof}, nil
}
