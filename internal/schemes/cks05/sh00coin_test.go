package cks05

import (
	"bytes"
	"crypto/rand"
	"testing"

	"thetacrypt/internal/schemes/sh00"
)

func sh00Coin(t *testing.T, tt, n int) (*SH00Coin, []sh00.KeyShare) {
	t.Helper()
	pk, ks, err := sh00.FixedTestKey(rand.Reader, 512, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return &SH00Coin{PK: pk}, ks
}

func TestSH00CoinAgreement(t *testing.T) {
	// Unique signatures mean every quorum derives the same coin.
	coin, ks := sh00Coin(t, 2, 7)
	name := []byte("epoch-5")
	flip := func(idxs []int) []byte {
		var shares []*SH00CoinShare
		for _, i := range idxs {
			cs, err := coin.Share(rand.Reader, ks[i], name)
			if err != nil {
				t.Fatal(err)
			}
			if err := coin.VerifyShare(name, cs); err != nil {
				t.Fatal(err)
			}
			shares = append(shares, cs)
		}
		v, err := coin.Combine(name, shares)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1 := flip([]int{0, 1, 2})
	v2 := flip([]int{4, 5, 6})
	if !bytes.Equal(v1, v2) {
		t.Fatal("different quorums derived different SH00-based coins")
	}
	if bytes.Equal(v1, flip2(t, coin, ks, []byte("epoch-6"))) {
		t.Fatal("distinct names collided")
	}
}

func flip2(t *testing.T, coin *SH00Coin, ks []sh00.KeyShare, name []byte) []byte {
	t.Helper()
	var shares []*SH00CoinShare
	for _, k := range ks[:3] {
		cs, err := coin.Share(rand.Reader, k, name)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, cs)
	}
	v, err := coin.Combine(name, shares)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSH00CoinRejectsBadShare(t *testing.T) {
	coin, ks := sh00Coin(t, 1, 4)
	name := []byte("coin")
	cs, err := coin.Share(rand.Reader, ks[0], name)
	if err != nil {
		t.Fatal(err)
	}
	if err := coin.VerifyShare([]byte("other"), cs); err == nil {
		t.Fatal("share verified under wrong coin name")
	}
	// Both constructions on the same name are independent functions.
	other, err := coin.Share(rand.Reader, ks[1], name)
	if err != nil {
		t.Fatal(err)
	}
	v, err := coin.Combine(name, []*SH00CoinShare{cs, other})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != ValueSize {
		t.Fatalf("coin value %d bytes", len(v))
	}
}
