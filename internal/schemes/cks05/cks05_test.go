package cks05

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"thetacrypt/internal/group"
	"thetacrypt/internal/share"
)

func deal(t *testing.T, g group.Group, tt, n int) (*PublicKey, []KeyShare) {
	t.Helper()
	pk, ks, err := Deal(rand.Reader, g, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return pk, ks
}

func TestCoinAgreement(t *testing.T) {
	// All quorums must derive the same coin value: the coin is a
	// deterministic function of the name and the shared secret.
	for _, g := range []group.Group{group.Edwards25519(), group.P256()} {
		t.Run(g.Name(), func(t *testing.T) {
			pk, ks := deal(t, g, 2, 7)
			name := []byte("round-17")
			combineWith := func(idxs []int) []byte {
				var css []*CoinShare
				for _, i := range idxs {
					cs, err := Share(rand.Reader, pk, ks[i], name)
					if err != nil {
						t.Fatal(err)
					}
					if err := VerifyShare(pk, name, cs); err != nil {
						t.Fatalf("valid share %d rejected: %v", cs.Index, err)
					}
					css = append(css, cs)
				}
				v, err := Combine(pk, name, css)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			v1 := combineWith([]int{0, 1, 2})
			v2 := combineWith([]int{4, 5, 6})
			v3 := combineWith([]int{0, 3, 6})
			if !bytes.Equal(v1, v2) || !bytes.Equal(v1, v3) {
				t.Fatal("different quorums derived different coin values")
			}
			if len(v1) != ValueSize {
				t.Fatalf("coin value has %d bytes, want %d", len(v1), ValueSize)
			}
		})
	}
}

func TestDistinctNamesGiveDistinctCoins(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 4)
	coin := func(name string) []byte {
		var css []*CoinShare
		for _, k := range ks[:2] {
			cs, _ := Share(rand.Reader, pk, k, []byte(name))
			css = append(css, cs)
		}
		v, err := Combine(pk, []byte(name), css)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if bytes.Equal(coin("epoch-1"), coin("epoch-2")) {
		t.Fatal("distinct coin names collided")
	}
}

func TestForgedShareRejected(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 4)
	name := []byte("coin")
	cs, _ := Share(rand.Reader, pk, ks[0], name)

	wrongSigma := *cs
	wrongSigma.Sigma = g.Generator()
	if err := VerifyShare(pk, name, &wrongSigma); err == nil {
		t.Fatal("share with wrong sigma accepted")
	}
	wrongIndex := *cs
	wrongIndex.Index = 3
	if err := VerifyShare(pk, name, &wrongIndex); err == nil {
		t.Fatal("share attributed to wrong party accepted")
	}
	if err := VerifyShare(pk, []byte("other-coin"), cs); err == nil {
		t.Fatal("share replayed across coin names")
	}
	oob := *cs
	oob.Index = 0
	if err := VerifyShare(pk, name, &oob); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("zero index accepted")
	}
}

func TestCombineQuorumRules(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 2, 5)
	name := []byte("coin")
	c0, _ := Share(rand.Reader, pk, ks[0], name)
	c1, _ := Share(rand.Reader, pk, ks[1], name)
	if _, err := Combine(pk, name, []*CoinShare{c0, c1}); !errors.Is(err, share.ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
	if _, err := Combine(pk, name, []*CoinShare{c0, c0, c1}); err == nil {
		t.Fatal("duplicate shares satisfied the quorum")
	}
}

func TestBit(t *testing.T) {
	if Bit(nil) != 0 {
		t.Fatal("Bit(nil) != 0")
	}
	if Bit([]byte{0x01}) != 1 || Bit([]byte{0xfe}) != 0 {
		t.Fatal("Bit parity wrong")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 3)
	name := []byte("coin")
	cs, _ := Share(rand.Reader, pk, ks[1], name)
	cs2, err := UnmarshalCoinShare(g, cs.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pk, name, cs2); err != nil {
		t.Fatalf("round-tripped share invalid: %v", err)
	}
	if _, err := UnmarshalCoinShare(g, []byte("junk")); err == nil {
		t.Fatal("junk share decoded")
	}
}

func TestUnpredictabilityStructure(t *testing.T) {
	// t shares of the coin leave the value undetermined: combining t
	// shares with a share forged from a random scalar yields a different
	// value than the true coin.
	g := group.Edwards25519()
	pk, ks := deal(t, g, 2, 5)
	name := []byte("target")
	var css []*CoinShare
	for _, k := range ks[:3] {
		cs, _ := Share(rand.Reader, pk, k, name)
		css = append(css, cs)
	}
	truth, _ := Combine(pk, name, css)

	// Adversary holds only shares 1 and 2 and guesses the third.
	fake, _ := g.RandomScalar(rand.Reader)
	guess := &CoinShare{Index: 3, Sigma: coinBase(g, name).Mul(fake)}
	guessed, err := Combine(pk, name, []*CoinShare{css[0], css[1], guess})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(truth, guessed) {
		t.Fatal("coin predictable from t shares plus a guess")
	}
}
