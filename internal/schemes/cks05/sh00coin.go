package cks05

import (
	"crypto/sha256"
	"io"

	"thetacrypt/internal/schemes/sh00"
)

// The paper notes that CKS05 proposes two coin constructions: the
// Diffie-Hellman one implemented above, and one from any threshold
// signature scheme with UNIQUE signatures, such as the RSA-based SH00.
// This file provides that first construction as an extension: the coin
// value is the hash of the unique threshold RSA signature of the coin
// name. Uniqueness is essential — with a randomized scheme different
// quorums would flip different coins.

// SH00Coin derives coins from a threshold RSA key.
type SH00Coin struct {
	PK *sh00.PublicKey
}

// SH00CoinShare is party i's contribution: its RSA signature share on
// the coin name.
type SH00CoinShare = sh00.SigShare

// Share produces party i's coin share.
func (c *SH00Coin) Share(rand io.Reader, ks sh00.KeyShare, name []byte) (*SH00CoinShare, error) {
	return sh00.SignShare(rand, c.PK, ks, name)
}

// VerifyShare checks a coin share (the SH00 share-correctness proof).
func (c *SH00Coin) VerifyShare(name []byte, cs *SH00CoinShare) error {
	return sh00.VerifyShare(c.PK, name, cs)
}

// Combine assembles the unique signature and hashes it to the coin
// value. The embedded signature verification is the result check: all
// correct parties derive the same 32-byte value.
func (c *SH00Coin) Combine(name []byte, shares []*SH00CoinShare) ([]byte, error) {
	sig, err := sh00.Combine(c.PK, name, shares)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	h.Write([]byte("cks05/sh00coin"))
	h.Write(name)
	h.Write(sig.Marshal())
	return h.Sum(nil), nil
}
