package frost

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"thetacrypt/internal/group"
)

type signer struct {
	ks    KeyShare
	nonce *Nonce
	comm  *NonceCommitment
}

func setup(t *testing.T, g group.Group, tt, n int, signerIdx []int) (*PublicKey, []signer, []*NonceCommitment) {
	t.Helper()
	pk, ks, err := Deal(rand.Reader, g, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	var signers []signer
	var comms []*NonceCommitment
	for _, i := range signerIdx {
		nonce, comm, err := GenerateNonce(rand.Reader, g, ks[i].Index)
		if err != nil {
			t.Fatal(err)
		}
		signers = append(signers, signer{ks: ks[i], nonce: nonce, comm: comm})
		comms = append(comms, comm)
	}
	return pk, signers, comms
}

func TestTwoRoundSigning(t *testing.T) {
	for _, g := range []group.Group{group.Edwards25519(), group.P256()} {
		t.Run(g.Name(), func(t *testing.T) {
			pk, signers, comms := setup(t, g, 2, 5, []int{0, 2, 4})
			msg := []byte("transfer 10 coins")
			var shares []*SignatureShare
			for _, s := range signers {
				ss, err := Sign(pk, s.ks, s.nonce, msg, comms)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyShare(pk, msg, comms, ss); err != nil {
					t.Fatalf("valid share %d rejected: %v", ss.Index, err)
				}
				shares = append(shares, ss)
			}
			sig, err := Combine(pk, msg, comms, shares)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(pk, msg, sig); err != nil {
				t.Fatal(err)
			}
			if err := Verify(pk, []byte("other"), sig); err == nil {
				t.Fatal("signature verified for wrong message")
			}
		})
	}
}

func TestPrecomputedOneRoundSigning(t *testing.T) {
	// With precomputed nonce batches, signing needs only round 2.
	g := group.Edwards25519()
	pk, ks, err := Deal(rand.Reader, g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 4
	nonces := make(map[int][]*Nonce)
	comms := make(map[int][]*NonceCommitment)
	for _, k := range ks[:2] {
		n, c, err := Precompute(rand.Reader, g, k.Index, batch)
		if err != nil {
			t.Fatal(err)
		}
		nonces[k.Index], comms[k.Index] = n, c
	}
	// Sign `batch` messages, consuming one precomputed nonce each.
	for round := 0; round < batch; round++ {
		msg := []byte{byte(round)}
		set := []*NonceCommitment{comms[1][round], comms[2][round]}
		var shares []*SignatureShare
		for _, k := range ks[:2] {
			ss, err := Sign(pk, k, nonces[k.Index][round], msg, set)
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, ss)
		}
		if _, err := Combine(pk, msg, set, shares); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestNonceReuseAcrossSetsRejected(t *testing.T) {
	// Using a nonce that does not match the signer's broadcast
	// commitment must be refused (nonce reuse leaks the key share).
	g := group.Edwards25519()
	pk, signers, comms := setup(t, g, 1, 3, []int{0, 1})
	otherNonce, _, _ := GenerateNonce(rand.Reader, g, 1)
	if _, err := Sign(pk, signers[0].ks, otherNonce, []byte("m"), comms); err == nil {
		t.Fatal("nonce/commitment mismatch accepted")
	}
}

func TestMisbehavingSignerIdentified(t *testing.T) {
	// FROST is not robust: a bad share aborts the signature, but the
	// culprit is identified by VerifyShare.
	g := group.Edwards25519()
	pk, signers, comms := setup(t, g, 1, 3, []int{0, 1})
	msg := []byte("m")
	good, err := Sign(pk, signers[0].ks, signers[0].nonce, msg, comms)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Sign(pk, signers[1].ks, signers[1].nonce, msg, comms)
	if err != nil {
		t.Fatal(err)
	}
	bad.Z = new(big.Int).Add(bad.Z, big.NewInt(1))

	if err := VerifyShare(pk, msg, comms, good); err != nil {
		t.Fatal("honest signer flagged")
	}
	if err := VerifyShare(pk, msg, comms, bad); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("misbehaving signer not identified")
	}
	// Combining with the bad share fails result verification (abort).
	if _, err := Combine(pk, msg, comms, []*SignatureShare{good, bad}); err == nil {
		t.Fatal("combine succeeded despite bad share")
	}
}

func TestCombineRequiresFullSignerSet(t *testing.T) {
	g := group.Edwards25519()
	pk, signers, comms := setup(t, g, 2, 5, []int{0, 1, 2})
	msg := []byte("m")
	var shares []*SignatureShare
	for _, s := range signers[:2] { // one signer missing
		ss, _ := Sign(pk, s.ks, s.nonce, msg, comms)
		shares = append(shares, ss)
	}
	if _, err := Combine(pk, msg, comms, shares); err == nil {
		t.Fatal("combine succeeded without the full signer set")
	}
}

func TestSignerOutsideSetRejected(t *testing.T) {
	g := group.Edwards25519()
	pk, ks, _ := Deal(rand.Reader, g, 1, 4)
	_, comm1, _ := GenerateNonce(rand.Reader, g, 1)
	_, comm2, _ := GenerateNonce(rand.Reader, g, 2)
	comms := []*NonceCommitment{comm1, comm2}
	outsider, outsiderComm, _ := GenerateNonce(rand.Reader, g, 4)
	_ = outsiderComm
	if _, err := Sign(pk, ks[3], outsider, []byte("m"), comms); !errors.Is(err, ErrNotInSignerSet) {
		t.Fatal("signer outside commitment set accepted")
	}
}

func TestBadCommitmentSets(t *testing.T) {
	g := group.Edwards25519()
	pk, signers, comms := setup(t, g, 2, 5, []int{0, 1, 2})
	msg := []byte("m")
	tooFew := comms[:2]
	if _, err := Sign(pk, signers[0].ks, signers[0].nonce, msg, tooFew); !errors.Is(err, ErrBadCommitmentSet) {
		t.Fatal("undersized commitment set accepted")
	}
	dup := []*NonceCommitment{comms[0], comms[0], comms[1]}
	if _, err := Sign(pk, signers[0].ks, signers[0].nonce, msg, dup); !errors.Is(err, ErrBadCommitmentSet) {
		t.Fatal("duplicate commitment set accepted")
	}
}

func TestShareBoundToCommitmentSet(t *testing.T) {
	// A share computed for one commitment set must not verify against a
	// different set (the binding value ρ covers the whole set).
	g := group.Edwards25519()
	pk, signers, comms := setup(t, g, 1, 4, []int{0, 1})
	msg := []byte("m")
	ss, _ := Sign(pk, signers[0].ks, signers[0].nonce, msg, comms)

	_, comm3, _ := GenerateNonce(rand.Reader, g, signers[1].ks.Index)
	otherSet := []*NonceCommitment{comms[0], comm3}
	if err := VerifyShare(pk, msg, otherSet, ss); err == nil {
		t.Fatal("share accepted under a different commitment set")
	}
}

func TestMarshalRoundTrips(t *testing.T) {
	g := group.Edwards25519()
	pk, signers, comms := setup(t, g, 1, 3, []int{0, 1})
	msg := []byte("wire")

	comm2, err := UnmarshalNonceCommitment(g, comms[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if comm2.Index != comms[0].Index || !comm2.D.Equal(comms[0].D) {
		t.Fatal("commitment round trip mismatch")
	}

	ss, _ := Sign(pk, signers[0].ks, signers[0].nonce, msg, comms)
	ss2, err := UnmarshalSignatureShare(ss.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pk, msg, comms, ss2); err != nil {
		t.Fatal("round-tripped share invalid")
	}

	ssB, _ := Sign(pk, signers[1].ks, signers[1].nonce, msg, comms)
	sig, err := Combine(pk, msg, comms, []*SignatureShare{ss, ssB})
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := UnmarshalSignature(g, sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk, msg, sig2); err != nil {
		t.Fatal("round-tripped signature invalid")
	}
}
