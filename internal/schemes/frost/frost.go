// Package frost implements the Komlo-Goldberg FROST threshold Schnorr
// signature scheme (KG20): a two-round interactive protocol (nonce
// commitment, then signing) with an optional precomputation phase that
// generates batches of nonces in advance, reducing signing to a single
// round. FROST is not robust: a misbehaving signer causes the protocol to
// abort (and to identify the culprit), matching the paper's description.
package frost

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// Scheme-level errors suitable for errors.Is matching.
var (
	ErrInvalidShare     = errors.New("frost: invalid signature share")
	ErrInvalidSignature = errors.New("frost: invalid signature")
	ErrNotInSignerSet   = errors.New("frost: signer not in commitment set")
	ErrBadCommitmentSet = errors.New("frost: malformed commitment set")
)

// PublicKey is the group key Y = x*G with per-party verification keys.
type PublicKey struct {
	Group group.Group
	Y     group.Point
	VK    []group.Point
	T     int
	N     int
}

// KeyShare is party i's share x_i of the signing key.
type KeyShare struct {
	Index int
	X     *big.Int
}

// Deal runs the trusted-dealer setup.
func Deal(rand io.Reader, g group.Group, t, n int) (*PublicKey, []KeyShare, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, nil, err
	}
	x, err := g.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("sample secret: %w", err)
	}
	shares, err := share.Split(rand, x, t, n, g.Order())
	if err != nil {
		return nil, nil, err
	}
	pk := &PublicKey{Group: g, Y: g.BaseMul(x), VK: make([]group.Point, n), T: t, N: n}
	ks := make([]KeyShare, n)
	for i, s := range shares {
		ks[i] = KeyShare{Index: s.Index, X: s.Value}
		pk.VK[i] = g.BaseMul(s.Value)
	}
	return pk, ks, nil
}

// Nonce is a signer's secret nonce pair (d, e); it must be used for
// exactly one signature.
type Nonce struct {
	D, E *big.Int
}

// NonceCommitment is the public commitment (D, E) = (d*G, e*G) broadcast
// in round 1.
type NonceCommitment struct {
	Index int
	D, E  group.Point
}

// GenerateNonce produces a fresh nonce pair and its commitment (FROST
// round 1 for one signature).
func GenerateNonce(rand io.Reader, g group.Group, index int) (*Nonce, *NonceCommitment, error) {
	d, err := g.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("sample d: %w", err)
	}
	e, err := g.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("sample e: %w", err)
	}
	return &Nonce{D: d, E: e},
		&NonceCommitment{Index: index, D: g.BaseMul(d), E: g.BaseMul(e)}, nil
}

// Precompute generates a batch of nonces and commitments, FROST's
// preprocessing optimization: with a stock of precomputed nonces the
// signing protocol needs only one communication round.
func Precompute(rand io.Reader, g group.Group, index, batch int) ([]*Nonce, []*NonceCommitment, error) {
	nonces := make([]*Nonce, batch)
	comms := make([]*NonceCommitment, batch)
	for i := 0; i < batch; i++ {
		n, c, err := GenerateNonce(rand, g, index)
		if err != nil {
			return nil, nil, err
		}
		nonces[i], comms[i] = n, c
	}
	return nonces, comms, nil
}

// SignatureShare is signer i's round-2 response.
type SignatureShare struct {
	Index int
	Z     *big.Int
}

// Signature is a standard Schnorr signature (R, z): z*G == R + c*Y with
// c = H2(R, Y, m).
type Signature struct {
	R group.Point
	Z *big.Int
}

// sortedCommitments validates and canonically orders a commitment set.
func sortedCommitments(pk *PublicKey, comms []*NonceCommitment) ([]*NonceCommitment, error) {
	if len(comms) < pk.T+1 {
		return nil, ErrBadCommitmentSet
	}
	out := make([]*NonceCommitment, len(comms))
	copy(out, comms)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	seen := make(map[int]bool, len(out))
	for _, c := range out {
		if c == nil || c.D == nil || c.E == nil || c.Index < 1 || c.Index > pk.N || seen[c.Index] {
			return nil, ErrBadCommitmentSet
		}
		seen[c.Index] = true
	}
	return out, nil
}

// bindingValue computes ρ_j = H1(j, m, B) binding each signer's nonce to
// the message and the full commitment list.
func bindingValue(pk *PublicKey, j int, msg []byte, comms []*NonceCommitment) *big.Int {
	data := make([][]byte, 0, 2+2*len(comms))
	idx := wire.NewWriter().Int(j).Out()
	data = append(data, idx, msg)
	for _, c := range comms {
		data = append(data, wire.NewWriter().Int(c.Index).Bytes(c.D.Marshal()).Bytes(c.E.Marshal()).Out())
	}
	return pk.Group.HashToScalar("frost/rho", data...)
}

// groupCommitment computes R = Π D_j + ρ_j*E_j.
func groupCommitment(pk *PublicKey, msg []byte, comms []*NonceCommitment) group.Point {
	acc := pk.Group.Identity()
	for _, c := range comms {
		rho := bindingValue(pk, c.Index, msg, comms)
		acc = acc.Add(c.D).Add(c.E.Mul(rho))
	}
	return acc
}

// challenge computes c = H2(R, Y, m).
func challenge(pk *PublicKey, r group.Point, msg []byte) *big.Int {
	return pk.Group.HashToScalar("frost/challenge", r.Marshal(), pk.Y.Marshal(), msg)
}

// signerIndices returns the sorted index set of a commitment list.
func signerIndices(comms []*NonceCommitment) []int {
	out := make([]int, len(comms))
	for i, c := range comms {
		out[i] = c.Index
	}
	return out
}

// Sign is FROST round 2: signer i computes its signature share
// z_i = d_i + e_i*ρ_i + λ_i*x_i*c for the signer set fixed by comms.
func Sign(pk *PublicKey, ks KeyShare, nonce *Nonce, msg []byte, comms []*NonceCommitment) (*SignatureShare, error) {
	return SignWith(nil, pk, ks, nonce, msg, comms)
}

// SignWith is Sign drawing Lagrange coefficients from src (nil selects
// direct computation), letting the precompute layer's epoch-scoped
// cache serve repeated signer subsets.
func SignWith(src share.CoefficientSource, pk *PublicKey, ks KeyShare, nonce *Nonce, msg []byte, comms []*NonceCommitment) (*SignatureShare, error) {
	sorted, err := sortedCommitments(pk, comms)
	if err != nil {
		return nil, err
	}
	var own *NonceCommitment
	for _, c := range sorted {
		if c.Index == ks.Index {
			own = c
			break
		}
	}
	if own == nil {
		return nil, ErrNotInSignerSet
	}
	g := pk.Group
	// The signer must only use a nonce matching its own broadcast
	// commitment; mixing nonces leaks the key share.
	if !g.BaseMul(nonce.D).Equal(own.D) || !g.BaseMul(nonce.E).Equal(own.E) {
		return nil, fmt.Errorf("frost: nonce does not match own commitment")
	}
	rho := bindingValue(pk, ks.Index, msg, sorted)
	r := groupCommitment(pk, msg, sorted)
	c := challenge(pk, r, msg)
	lambda, err := lagrangeFor(src, ks.Index, sorted, g.Order())
	if err != nil {
		return nil, err
	}
	z := mathutil.AddMod(nonce.D, mathutil.MulMod(nonce.E, rho, g.Order()), g.Order())
	z = mathutil.AddMod(z, mathutil.MulMod(mathutil.MulMod(lambda, ks.X, g.Order()), c, g.Order()), g.Order())
	return &SignatureShare{Index: ks.Index, Z: z}, nil
}

// VerifyShare checks z_i*G == D_i + ρ_i*E_i + c*λ_i*Y_i, identifying
// misbehaving signers (FROST aborts on failure rather than recovering).
func VerifyShare(pk *PublicKey, msg []byte, comms []*NonceCommitment, ss *SignatureShare) error {
	return VerifyShareWith(nil, pk, msg, comms, ss)
}

// VerifyShareWith is VerifyShare drawing Lagrange coefficients from src.
func VerifyShareWith(src share.CoefficientSource, pk *PublicKey, msg []byte, comms []*NonceCommitment, ss *SignatureShare) error {
	rels, err := ShareRelations(src, pk, msg, comms, ss)
	if err != nil {
		return err
	}
	for _, rel := range rels {
		if !rel.Holds(pk.Group) {
			return ErrInvalidShare
		}
	}
	return nil
}

// ShareRelations does the structural checks, binding-value and
// challenge recomputation of share verification eagerly and returns the
// single linear relation completing it,
// z_i*G - D_i - ρ_i*E_i - c*λ_i*Y_i == 0, for a batch verifier to fold
// across shares.
func ShareRelations(src share.CoefficientSource, pk *PublicKey, msg []byte, comms []*NonceCommitment, ss *SignatureShare) ([]group.Relation, error) {
	if ss == nil || ss.Z == nil || ss.Index < 1 || ss.Index > pk.N {
		return nil, ErrInvalidShare
	}
	if ss.Z.Sign() < 0 || ss.Z.Cmp(pk.Group.Order()) >= 0 {
		return nil, ErrInvalidShare
	}
	sorted, err := sortedCommitments(pk, comms)
	if err != nil {
		return nil, err
	}
	var own *NonceCommitment
	for _, c := range sorted {
		if c.Index == ss.Index {
			own = c
			break
		}
	}
	if own == nil {
		return nil, ErrNotInSignerSet
	}
	g := pk.Group
	rho := bindingValue(pk, ss.Index, msg, sorted)
	r := groupCommitment(pk, msg, sorted)
	c := challenge(pk, r, msg)
	lambda, err := lagrangeFor(src, ss.Index, sorted, g.Order())
	if err != nil {
		return nil, err
	}
	ord := g.Order()
	neg := func(v *big.Int) *big.Int {
		out := new(big.Int).Sub(ord, new(big.Int).Mod(v, ord))
		return out.Mod(out, ord)
	}
	return []group.Relation{{
		Points:  []group.Point{g.Generator(), own.D, own.E, pk.VK[ss.Index-1]},
		Scalars: []*big.Int{ss.Z, neg(big.NewInt(1)), neg(rho), neg(mathutil.MulMod(c, lambda, ord))},
	}}, nil
}

// lagrangeFor resolves signer j's coefficient for the sorted commitment
// set through a CoefficientSource.
func lagrangeFor(src share.CoefficientSource, j int, sorted []*NonceCommitment, order *big.Int) (*big.Int, error) {
	coeffs, err := share.SourceOrDirect(src).Lagrange(signerIndices(sorted), order)
	if err != nil {
		return nil, err
	}
	lambda, ok := coeffs[j]
	if !ok {
		return nil, fmt.Errorf("frost: signer %d missing from coefficient map", j)
	}
	return lambda, nil
}

// Combine aggregates the signature shares of the full signer set into a
// Schnorr signature and verifies it. Every signer in the commitment set
// must contribute: FROST waits for its a-priori fixed signing group.
func Combine(pk *PublicKey, msg []byte, comms []*NonceCommitment, shares []*SignatureShare) (*Signature, error) {
	sorted, err := sortedCommitments(pk, comms)
	if err != nil {
		return nil, err
	}
	byIndex := make(map[int]*SignatureShare, len(shares))
	for _, ss := range shares {
		byIndex[ss.Index] = ss
	}
	g := pk.Group
	z := new(big.Int)
	for _, c := range sorted {
		ss, ok := byIndex[c.Index]
		if !ok {
			return nil, fmt.Errorf("frost: missing share from signer %d: %w", c.Index, share.ErrNotEnoughShares)
		}
		z = mathutil.AddMod(z, ss.Z, g.Order())
	}
	sig := &Signature{R: groupCommitment(pk, msg, sorted), Z: z}
	if err := Verify(pk, msg, sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// Verify checks the combined signature as a plain Schnorr signature; the
// output is indistinguishable from a single-signer Schnorr signature.
func Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	if sig == nil || sig.R == nil || sig.Z == nil {
		return ErrInvalidSignature
	}
	g := pk.Group
	c := challenge(pk, sig.R, msg)
	if !g.BaseMul(sig.Z).Equal(sig.R.Add(pk.Y.Mul(c))) {
		return ErrInvalidSignature
	}
	return nil
}

// Marshal encodes a nonce commitment.
func (nc *NonceCommitment) Marshal() []byte {
	return wire.NewWriter().Int(nc.Index).Bytes(nc.D.Marshal()).Bytes(nc.E.Marshal()).Out()
}

// UnmarshalNonceCommitment decodes a nonce commitment.
func UnmarshalNonceCommitment(g group.Group, data []byte) (*NonceCommitment, error) {
	r := wire.NewReader(data)
	idx := r.Int()
	dRaw := r.Bytes()
	eRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("frost commitment: %w", err)
	}
	d, err := g.UnmarshalPoint(dRaw)
	if err != nil {
		return nil, fmt.Errorf("frost commitment D: %w", err)
	}
	e, err := g.UnmarshalPoint(eRaw)
	if err != nil {
		return nil, fmt.Errorf("frost commitment E: %w", err)
	}
	return &NonceCommitment{Index: idx, D: d, E: e}, nil
}

// Marshal encodes a signature share.
func (ss *SignatureShare) Marshal() []byte {
	return wire.NewWriter().Int(ss.Index).BigInt(ss.Z).Out()
}

// UnmarshalSignatureShare decodes a signature share.
func UnmarshalSignatureShare(data []byte) (*SignatureShare, error) {
	r := wire.NewReader(data)
	idx := r.Int()
	z := r.BigInt()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("frost share: %w", err)
	}
	return &SignatureShare{Index: idx, Z: z}, nil
}

// Marshal encodes a signature.
func (sig *Signature) Marshal() []byte {
	return wire.NewWriter().Bytes(sig.R.Marshal()).BigInt(sig.Z).Out()
}

// UnmarshalSignature decodes a signature.
func UnmarshalSignature(g group.Group, data []byte) (*Signature, error) {
	r := wire.NewReader(data)
	rRaw := r.Bytes()
	z := r.BigInt()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("frost signature: %w", err)
	}
	rp, err := g.UnmarshalPoint(rRaw)
	if err != nil {
		return nil, fmt.Errorf("frost signature R: %w", err)
	}
	return &Signature{R: rp, Z: z}, nil
}
