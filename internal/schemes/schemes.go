// Package schemes defines the common vocabulary of the cryptographic
// core: scheme identifiers, kinds, and the static registry reproduced in
// the paper's Table 1 and Table 3. The concrete schemes live in the
// child packages sg02, bz03, sh00, bls04, frost, and cks05.
package schemes

import (
	"errors"
	"fmt"
)

// ErrUnknown is wrapped by every failed registry lookup, so callers
// (api.ValidateRequest) can distinguish "no such scheme" from other
// validation failures without string matching.
var ErrUnknown = errors.New("schemes: unknown scheme")

// Kind classifies a threshold scheme by its function.
type Kind int

// Scheme kinds, matching the paper's three categories.
const (
	KindCipher Kind = iota + 1
	KindSignature
	KindRandomness
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindCipher:
		return "cipher"
	case KindSignature:
		return "signature"
	case KindRandomness:
		return "randomness"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ID identifies a scheme implementation.
type ID string

// The six schemes of the paper's Table 1.
const (
	SG02  ID = "SG02"
	BZ03  ID = "BZ03"
	SH00  ID = "SH00"
	BLS04 ID = "BLS04"
	KG20  ID = "KG20"
	CKS05 ID = "CKS05"
)

// Info is the static description of a scheme: Table 1 columns (kind,
// hardness assumption, verification strategy) plus Table 3 columns
// (arithmetic structure, key length, communication complexity, rounds).
type Info struct {
	ID           ID
	Kind         Kind
	Reference    string
	Hardness     string
	Verification string
	Arithmetic   string
	KeyBits      int
	Complexity   string
	Rounds       int
}

// Registry returns the scheme inventory in the paper's Table 1 order.
func Registry() []Info {
	return []Info{
		{ID: SH00, Kind: KindSignature, Reference: "Shoup, EUROCRYPT 2000", Hardness: "RSA", Verification: "ZKP", Arithmetic: "RSA", KeyBits: 2048, Complexity: "O(n)", Rounds: 1},
		{ID: KG20, Kind: KindSignature, Reference: "Komlo-Goldberg, SAC 2020 (FROST)", Hardness: "DL", Verification: "ZKP", Arithmetic: "EC (Ed25519)", KeyBits: 256, Complexity: "O(n^2)", Rounds: 2},
		{ID: BLS04, Kind: KindSignature, Reference: "Boneh-Lynn-Shacham, J.Cryptol 2004", Hardness: "DL", Verification: "Pairings", Arithmetic: "EC (Bn254)", KeyBits: 254, Complexity: "O(n)", Rounds: 1},
		{ID: SG02, Kind: KindCipher, Reference: "Shoup-Gennaro, J.Cryptol 2002 (TDH2)", Hardness: "DL", Verification: "ZKP", Arithmetic: "EC (Ed25519)", KeyBits: 256, Complexity: "O(n)", Rounds: 1},
		{ID: BZ03, Kind: KindCipher, Reference: "Baek-Zheng, GLOBECOM 2003", Hardness: "DL", Verification: "Pairings", Arithmetic: "EC (Bn254)", KeyBits: 254, Complexity: "O(n)", Rounds: 1},
		{ID: CKS05, Kind: KindRandomness, Reference: "Cachin-Kursawe-Shoup, J.Cryptol 2005", Hardness: "DL", Verification: "ZKP", Arithmetic: "EC (Ed25519)", KeyBits: 256, Complexity: "O(n)", Rounds: 1},
	}
}

// Lookup returns the registry entry for an ID.
func Lookup(id ID) (Info, error) {
	for _, info := range Registry() {
		if info.ID == id {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("%w %q", ErrUnknown, id)
}

// All returns the scheme IDs in registry order.
func All() []ID {
	reg := Registry()
	out := make([]ID, len(reg))
	for i, info := range reg {
		out[i] = info.ID
	}
	return out
}
