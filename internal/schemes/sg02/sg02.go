// Package sg02 implements the Shoup-Gennaro TDH2 threshold cryptosystem
// (SG02): a non-interactive, CCA-secure threshold public-key encryption
// scheme over a discrete-logarithm group, with zero-knowledge proofs for
// both ciphertext validity and decryption-share correctness.
//
// The implementation follows the hybrid approach of the paper: the
// threshold layer encapsulates a 256-bit data-encapsulation key and the
// actual payload is sealed with an AEAD under that key.
package sg02

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
	"thetacrypt/internal/zkp"
)

// Scheme-level errors suitable for errors.Is matching.
var (
	ErrInvalidCiphertext = errors.New("sg02: invalid ciphertext")
	ErrInvalidShare      = errors.New("sg02: invalid decryption share")
)

// PublicKey is the scheme public key together with the per-party
// verification keys.
type PublicKey struct {
	Group group.Group
	// H is the encryption key h = x*G.
	H group.Point
	// VK holds per-party verification keys h_i = x_i*G (1-indexed by
	// share index; VK[0] belongs to party 1).
	VK []group.Point
	T  int
	N  int
}

// KeyShare is party i's share x_i of the decryption key.
type KeyShare struct {
	Index int
	X     *big.Int
}

// Deal runs the trusted-dealer setup: it samples the secret key, shares
// it with threshold t among n parties, and derives the verification keys.
func Deal(rand io.Reader, g group.Group, t, n int) (*PublicKey, []KeyShare, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, nil, err
	}
	x, err := g.RandomScalar(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("sample secret: %w", err)
	}
	shares, err := share.Split(rand, x, t, n, g.Order())
	if err != nil {
		return nil, nil, err
	}
	pk := &PublicKey{Group: g, H: g.BaseMul(x), VK: make([]group.Point, n), T: t, N: n}
	ks := make([]KeyShare, n)
	for i, s := range shares {
		ks[i] = KeyShare{Index: s.Index, X: s.Value}
		pk.VK[i] = g.BaseMul(s.Value)
	}
	return pk, ks, nil
}

// Ciphertext is a TDH2 hybrid ciphertext:
//
//	EncKey  = H1(h^r) XOR dek            (key encapsulation)
//	Payload = AEAD(dek, message, label)  (data encapsulation)
//	U = r*G, UBar = r*Ḡ                  (encryption randomness)
//	E, F                                  (Fiat-Shamir validity proof)
type Ciphertext struct {
	Label   []byte
	EncKey  []byte
	Payload []byte
	U       group.Point
	UBar    group.Point
	E       *big.Int
	F       *big.Int
}

// gBar derives the second independent generator Ḡ whose discrete log is
// unknown.
func gBar(g group.Group) group.Point {
	return g.HashToPoint("sg02/gbar", []byte(g.Name()))
}

// Encrypt produces a ciphertext of message bound to label.
func Encrypt(rand io.Reader, pk *PublicKey, message, label []byte) (*Ciphertext, error) {
	g := pk.Group
	dek, err := schemes.NewDEK(rand)
	if err != nil {
		return nil, err
	}
	payload, err := schemes.SealPayload(rand, dek, message, label)
	if err != nil {
		return nil, err
	}
	r, err := g.RandomScalar(rand)
	if err != nil {
		return nil, fmt.Errorf("sample r: %w", err)
	}
	s, err := g.RandomScalar(rand)
	if err != nil {
		return nil, fmt.Errorf("sample s: %w", err)
	}
	gb := gBar(g)
	u := g.BaseMul(r)
	w := g.BaseMul(s)
	ub := gb.Mul(r)
	wb := gb.Mul(s)
	encKey, err := schemes.XORBytes(kdf(pk.H.Mul(r)), dek)
	if err != nil {
		return nil, err
	}
	e := validityChallenge(g, encKey, label, u, w, ub, wb)
	f := mathutil.AddMod(s, mathutil.MulMod(r, e, g.Order()), g.Order())
	return &Ciphertext{
		Label: append([]byte(nil), label...), EncKey: encKey, Payload: payload,
		U: u, UBar: ub, E: e, F: f,
	}, nil
}

// VerifyCiphertext checks the TDH2 validity proof; invalid ciphertexts
// are rejected before any decryption share is produced (CCA security).
func VerifyCiphertext(pk *PublicKey, ct *Ciphertext) error {
	g := pk.Group
	if ct == nil || ct.U == nil || ct.UBar == nil || ct.E == nil || ct.F == nil {
		return ErrInvalidCiphertext
	}
	if ct.E.Sign() < 0 || ct.E.Cmp(g.Order()) >= 0 || ct.F.Sign() < 0 || ct.F.Cmp(g.Order()) >= 0 {
		return ErrInvalidCiphertext
	}
	if len(ct.EncKey) != schemes.DEKSize {
		return ErrInvalidCiphertext
	}
	gb := gBar(g)
	// w = f*G - e*U ; wBar = f*Ḡ - e*UBar
	w := g.BaseMul(ct.F).Add(ct.U.Mul(ct.E).Neg())
	wb := gb.Mul(ct.F).Add(ct.UBar.Mul(ct.E).Neg())
	e := validityChallenge(g, ct.EncKey, ct.Label, ct.U, w, ct.UBar, wb)
	if e.Cmp(ct.E) != 0 {
		return ErrInvalidCiphertext
	}
	return nil
}

// DecShare is party i's decryption share U_i = x_i*U with a DLEQ proof
// that it matches the party's verification key.
type DecShare struct {
	Index int
	U     group.Point
	Proof *zkp.DLEQProof
}

// DecryptShare produces party i's decryption share for a valid
// ciphertext. The ciphertext proof is checked first: decrypting invalid
// ciphertexts would break CCA security.
func DecryptShare(rand io.Reader, pk *PublicKey, ks KeyShare, ct *Ciphertext) (*DecShare, error) {
	if err := VerifyCiphertext(pk, ct); err != nil {
		return nil, err
	}
	g := pk.Group
	ui := ct.U.Mul(ks.X)
	proof, err := zkp.ProveDLEQ(rand, g, "sg02/share",
		g.Generator(), pk.VK[ks.Index-1], ct.U, ui, ks.X, ct.EncKey)
	if err != nil {
		return nil, err
	}
	return &DecShare{Index: ks.Index, U: ui, Proof: proof}, nil
}

// VerifyShare checks a decryption share against the ciphertext and the
// issuing party's verification key.
func VerifyShare(pk *PublicKey, ct *Ciphertext, ds *DecShare) error {
	rels, err := ShareRelations(pk, ct, ds)
	if err != nil {
		return err
	}
	for _, rel := range rels {
		if !rel.Holds(pk.Group) {
			return ErrInvalidShare
		}
	}
	return nil
}

// ShareRelations performs the structural checks and Fiat-Shamir
// recomputation of share verification eagerly and returns the linear
// point relations whose truth completes it — the batch-verification
// split: a batch verifier folds many shares' relations into one
// multi-scalar multiplication.
func ShareRelations(pk *PublicKey, ct *Ciphertext, ds *DecShare) ([]group.Relation, error) {
	if ds == nil || ds.U == nil || ds.Index < 1 || ds.Index > pk.N {
		return nil, ErrInvalidShare
	}
	g := pk.Group
	rels, err := zkp.DLEQRelations(g, "sg02/share",
		g.Generator(), pk.VK[ds.Index-1], ct.U, ds.U, ds.Proof, ct.EncKey)
	if err != nil {
		return nil, ErrInvalidShare
	}
	return rels, nil
}

// Combine interpolates t+1 verified decryption shares into h^r, unwraps
// the data-encapsulation key, and opens the payload. The AEAD tag is the
// result verification: a wrong combination cannot authenticate.
func Combine(pk *PublicKey, ct *Ciphertext, dss []*DecShare) ([]byte, error) {
	return CombineWith(nil, pk, ct, dss)
}

// CombineWith is Combine drawing Lagrange coefficients from src (nil
// selects direct computation), letting the precompute layer's
// epoch-scoped cache serve repeated signer subsets.
func CombineWith(src share.CoefficientSource, pk *PublicKey, ct *Ciphertext, dss []*DecShare) ([]byte, error) {
	if err := VerifyCiphertext(pk, ct); err != nil {
		return nil, err
	}
	if len(dss) < pk.T+1 {
		return nil, share.ErrNotEnoughShares
	}
	points := make(map[int]group.Point, pk.T+1)
	for _, ds := range dss {
		if len(points) == pk.T+1 {
			break
		}
		points[ds.Index] = ds.U
	}
	if len(points) < pk.T+1 {
		return nil, share.ErrDuplicateIndex
	}
	hr, err := share.InterpolateInExponentWith(src, pk.Group, points)
	if err != nil {
		return nil, err
	}
	dek, err := schemes.XORBytes(kdf(hr), ct.EncKey)
	if err != nil {
		return nil, err
	}
	msg, err := schemes.OpenPayload(dek, ct.Payload, ct.Label)
	if err != nil {
		return nil, fmt.Errorf("sg02 combine: %w", err)
	}
	return msg, nil
}

// kdf derives the 32-byte key-encapsulation pad H1(point).
func kdf(p group.Point) []byte {
	h := sha256.Sum256(append([]byte("sg02/kdf"), p.Marshal()...))
	return h[:]
}

func validityChallenge(g group.Group, encKey, label []byte, u, w, ub, wb group.Point) *big.Int {
	return g.HashToScalar("sg02/validity",
		encKey, label, u.Marshal(), w.Marshal(), ub.Marshal(), wb.Marshal())
}

// Marshal encodes the ciphertext.
func (ct *Ciphertext) Marshal() []byte {
	return wire.NewWriter().
		Bytes(ct.Label).Bytes(ct.EncKey).Bytes(ct.Payload).
		Bytes(ct.U.Marshal()).Bytes(ct.UBar.Marshal()).
		BigInt(ct.E).BigInt(ct.F).Out()
}

// UnmarshalCiphertext decodes a ciphertext for the given group.
func UnmarshalCiphertext(g group.Group, data []byte) (*Ciphertext, error) {
	r := wire.NewReader(data)
	ct := &Ciphertext{
		Label:   r.Bytes(),
		EncKey:  r.Bytes(),
		Payload: r.Bytes(),
	}
	uRaw := r.Bytes()
	ubRaw := r.Bytes()
	ct.E = r.BigInt()
	ct.F = r.BigInt()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sg02 ciphertext: %w", err)
	}
	var err error
	if ct.U, err = g.UnmarshalPoint(uRaw); err != nil {
		return nil, fmt.Errorf("sg02 ciphertext U: %w", err)
	}
	if ct.UBar, err = g.UnmarshalPoint(ubRaw); err != nil {
		return nil, fmt.Errorf("sg02 ciphertext UBar: %w", err)
	}
	return ct, nil
}

// Marshal encodes the decryption share.
func (ds *DecShare) Marshal() []byte {
	return wire.NewWriter().
		Int(ds.Index).Bytes(ds.U.Marshal()).Bytes(ds.Proof.Marshal()).Out()
}

// UnmarshalDecShare decodes a decryption share for the given group.
func UnmarshalDecShare(g group.Group, data []byte) (*DecShare, error) {
	r := wire.NewReader(data)
	idx := r.Int()
	uRaw := r.Bytes()
	proofRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sg02 share: %w", err)
	}
	u, err := g.UnmarshalPoint(uRaw)
	if err != nil {
		return nil, fmt.Errorf("sg02 share U: %w", err)
	}
	proof, err := zkp.UnmarshalDLEQ(g, proofRaw)
	if err != nil {
		return nil, fmt.Errorf("sg02 share proof: %w", err)
	}
	return &DecShare{Index: idx, U: u, Proof: proof}, nil
}
