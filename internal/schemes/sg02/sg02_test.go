package sg02

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"thetacrypt/internal/group"
	"thetacrypt/internal/share"
)

func deal(t *testing.T, g group.Group, tt, n int) (*PublicKey, []KeyShare) {
	t.Helper()
	pk, ks, err := Deal(rand.Reader, g, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return pk, ks
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, g := range []group.Group{group.Edwards25519(), group.P256()} {
		t.Run(g.Name(), func(t *testing.T) {
			pk, ks := deal(t, g, 2, 5)
			msg := []byte("the quick brown fox")
			label := []byte("tx-42")
			ct, err := Encrypt(rand.Reader, pk, msg, label)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyCiphertext(pk, ct); err != nil {
				t.Fatalf("fresh ciphertext rejected: %v", err)
			}
			var shares []*DecShare
			for _, k := range []KeyShare{ks[0], ks[2], ks[4]} {
				ds, err := DecryptShare(rand.Reader, pk, k, ct)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyShare(pk, ct, ds); err != nil {
					t.Fatalf("valid share %d rejected: %v", ds.Index, err)
				}
				shares = append(shares, ds)
			}
			got, err := Combine(pk, ct, shares)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("decrypted %q, want %q", got, msg)
			}
		})
	}
}

func TestAnyQuorumDecrypts(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 2, 7)
	msg := []byte("quorum independence")
	ct, _ := Encrypt(rand.Reader, pk, msg, nil)
	for _, subset := range [][]int{{0, 1, 2}, {4, 5, 6}, {0, 3, 6}} {
		var shares []*DecShare
		for _, i := range subset {
			ds, err := DecryptShare(rand.Reader, pk, ks[i], ct)
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, ds)
		}
		got, err := Combine(pk, ct, shares)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("subset %v failed: %v", subset, err)
		}
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 4)
	ct, _ := Encrypt(rand.Reader, pk, []byte("secret"), []byte("L"))

	mutations := map[string]func(*Ciphertext){
		"enckey":  func(c *Ciphertext) { c.EncKey[0] ^= 1 },
		"label":   func(c *Ciphertext) { c.Label = []byte("other") },
		"e":       func(c *Ciphertext) { c.E = new(big.Int).Add(c.E, big.NewInt(1)) },
		"f":       func(c *Ciphertext) { c.F = new(big.Int).Add(c.F, big.NewInt(1)) },
		"u":       func(c *Ciphertext) { c.U = g.Generator() },
		"uBarNil": func(c *Ciphertext) { c.UBar = nil },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			clone, err := UnmarshalCiphertext(g, ct.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			mutate(clone)
			if err := VerifyCiphertext(pk, clone); err == nil {
				t.Fatal("tampered ciphertext accepted")
			}
			if _, err := DecryptShare(rand.Reader, pk, ks[0], clone); err == nil {
				t.Fatal("decrypt share produced for tampered ciphertext")
			}
		})
	}
	// Payload tampering is not covered by the validity proof but must be
	// caught by the AEAD at combine time.
	clone, _ := UnmarshalCiphertext(g, ct.Marshal())
	clone.Payload[len(clone.Payload)-1] ^= 1
	var shares []*DecShare
	for _, k := range ks[:2] {
		ds, err := DecryptShare(rand.Reader, pk, k, clone)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, ds)
	}
	if _, err := Combine(pk, clone, shares); err == nil {
		t.Fatal("tampered payload decrypted successfully")
	}
}

func TestForgedShareRejected(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 4)
	ct, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	ds, _ := DecryptShare(rand.Reader, pk, ks[0], ct)

	wrongPoint := *ds
	wrongPoint.U = g.Generator()
	if err := VerifyShare(pk, ct, &wrongPoint); err == nil {
		t.Fatal("share with wrong point accepted")
	}
	wrongIndex := *ds
	wrongIndex.Index = 2
	if err := VerifyShare(pk, ct, &wrongIndex); err == nil {
		t.Fatal("share with wrong index accepted")
	}
	outOfRange := *ds
	outOfRange.Index = 9
	if !errors.Is(VerifyShare(pk, ct, &outOfRange), ErrInvalidShare) {
		t.Fatal("out-of-range index not rejected")
	}
	// A share for a different ciphertext must not verify (transcript
	// binding).
	ct2, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	if err := VerifyShare(pk, ct2, ds); err == nil {
		t.Fatal("share replayed across ciphertexts")
	}
}

func TestCombineWithTooFewShares(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 2, 5)
	ct, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	ds, _ := DecryptShare(rand.Reader, pk, ks[0], ct)
	if _, err := Combine(pk, ct, []*DecShare{ds}); !errors.Is(err, share.ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
	// Duplicate shares must not count towards the quorum.
	ds2, _ := DecryptShare(rand.Reader, pk, ks[1], ct)
	if _, err := Combine(pk, ct, []*DecShare{ds, ds, ds2}); err == nil {
		t.Fatal("duplicate shares satisfied the quorum")
	}
}

func TestCorruptQuorumCannotDecrypt(t *testing.T) {
	// A wrong share that somehow reaches Combine produces garbage that
	// the AEAD rejects (result verification).
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 4)
	msg := []byte("m")
	ct, _ := Encrypt(rand.Reader, pk, msg, nil)
	good, _ := DecryptShare(rand.Reader, pk, ks[0], ct)
	bad, _ := DecryptShare(rand.Reader, pk, ks[1], ct)
	bad.U = bad.U.Add(g.Generator()) // corrupt after proof generation
	if _, err := Combine(pk, ct, []*DecShare{good, bad}); err == nil {
		t.Fatal("corrupted quorum still decrypted")
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 4)
	ct, _ := Encrypt(rand.Reader, pk, []byte("roundtrip"), []byte("L"))
	ct2, err := UnmarshalCiphertext(g, ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCiphertext(pk, ct2); err != nil {
		t.Fatalf("round-tripped ciphertext invalid: %v", err)
	}
	ds, _ := DecryptShare(rand.Reader, pk, ks[0], ct2)
	ds2, err := UnmarshalDecShare(g, ds.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pk, ct2, ds2); err != nil {
		t.Fatalf("round-tripped share invalid: %v", err)
	}
	if _, err := UnmarshalCiphertext(g, []byte("junk")); err == nil {
		t.Fatal("junk ciphertext decoded")
	}
	if _, err := UnmarshalDecShare(g, []byte{1, 2, 3}); err == nil {
		t.Fatal("junk share decoded")
	}
}

func TestDealParamValidation(t *testing.T) {
	g := group.Edwards25519()
	if _, _, err := Deal(rand.Reader, g, 5, 5); err == nil {
		t.Fatal("t+1 > n accepted")
	}
	if _, _, err := Deal(rand.Reader, g, -1, 3); err == nil {
		t.Fatal("negative t accepted")
	}
}

func TestEmptyAndLargeMessages(t *testing.T) {
	g := group.Edwards25519()
	pk, ks := deal(t, g, 1, 3)
	for _, size := range []int{0, 1, 4096} {
		msg := bytes.Repeat([]byte{0xab}, size)
		ct, err := Encrypt(rand.Reader, pk, msg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var shares []*DecShare
		for _, k := range ks[:2] {
			ds, _ := DecryptShare(rand.Reader, pk, k, ct)
			shares = append(shares, ds)
		}
		got, err := Combine(pk, ct, shares)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("size %d round trip failed: %v", size, err)
		}
	}
}
