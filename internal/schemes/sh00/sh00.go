// Package sh00 implements Shoup's practical threshold RSA signature
// scheme (SH00): the first non-interactive robust threshold signature.
// Signature shares are x^{2Δs_i} for x = H(m) and Δ = l!, each
// accompanied by a zero-knowledge proof of correctness (a discrete-log
// equality proof in the hidden-order group), and shares combine through
// integer Lagrange interpolation plus one extended-Euclid step.
//
// Key material uses a modulus n = pq of safe primes (p = 2p'+1,
// q = 2q'+1); the secret exponent d = e^{-1} mod m with m = p'q' is
// Shamir-shared over Z_m. The paper benchmarks moduli of 512, 1024,
// 2048, and 4096 bits; GenerateKey produces fresh keys and FixedTestKey
// returns embedded deterministic fixtures so tests and benchmarks avoid
// minutes-long safe-prime searches.
package sh00

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// Scheme-level errors suitable for errors.Is matching.
var (
	ErrInvalidShare     = errors.New("sh00: invalid signature share")
	ErrInvalidSignature = errors.New("sh00: invalid signature")
)

// secparam is the bit length of the Fiat-Shamir challenge in the share
// correctness proof (L1 in Shoup's paper).
const secparam = 128

// PublicKey holds the RSA threshold verification data.
type PublicKey struct {
	// N is the RSA modulus, E the public exponent.
	N *big.Int
	E *big.Int
	// V generates the subgroup of squares; VK[i-1] = V^{s_i} are the
	// per-party verification keys.
	V  *big.Int
	VK []*big.Int
	// T is the threshold (quorum T+1), NParties the group size.
	T        int
	NParties int
	// Delta = NParties! clears Lagrange denominators.
	Delta *big.Int
}

// KeyShare is party i's share s_i of the secret exponent.
type KeyShare struct {
	Index int
	S     *big.Int
}

// GenerateKey creates a fresh threshold RSA key with the given modulus
// size. Safe-prime generation dominates the cost (minutes at 2048+ bits).
func GenerateKey(rand io.Reader, bits, t, n int) (*PublicKey, []KeyShare, error) {
	if bits < 128 {
		return nil, nil, fmt.Errorf("sh00: modulus size %d too small", bits)
	}
	p, pp, err := mathutil.SafePrime(rand, bits/2)
	if err != nil {
		return nil, nil, fmt.Errorf("safe prime p: %w", err)
	}
	q, qq, err := mathutil.SafePrime(rand, bits/2)
	if err != nil {
		return nil, nil, fmt.Errorf("safe prime q: %w", err)
	}
	for p.Cmp(q) == 0 {
		if q, qq, err = mathutil.SafePrime(rand, bits/2); err != nil {
			return nil, nil, fmt.Errorf("safe prime q: %w", err)
		}
	}
	return dealFromPrimes(rand, p, pp, q, qq, t, n)
}

// dealFromPrimes derives the full key material from safe primes
// p = 2p'+1, q = 2q'+1.
func dealFromPrimes(rand io.Reader, p, pp, q, qq *big.Int, t, n int) (*PublicKey, []KeyShare, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, nil, err
	}
	modulus := new(big.Int).Mul(p, q)
	m := new(big.Int).Mul(pp, qq)
	e := big.NewInt(65537)
	if big.NewInt(int64(n)).Cmp(e) >= 0 {
		return nil, nil, fmt.Errorf("sh00: group size %d must be below public exponent %v", n, e)
	}
	d, err := mathutil.InvMod(e, m)
	if err != nil {
		return nil, nil, fmt.Errorf("sh00: e not invertible mod m: %w", err)
	}
	shares, err := share.Split(rand, d, t, n, m)
	if err != nil {
		return nil, nil, err
	}
	// V must generate the squares Q_n: a random square does with
	// overwhelming probability.
	r, err := mathutil.RandNonZero(rand, modulus)
	if err != nil {
		return nil, nil, err
	}
	v := mathutil.MulMod(r, r, modulus)
	pk := &PublicKey{
		N: modulus, E: e, V: v,
		VK: make([]*big.Int, n), T: t, NParties: n,
		Delta: mathutil.Factorial(n),
	}
	ks := make([]KeyShare, n)
	for i, s := range shares {
		ks[i] = KeyShare{Index: s.Index, S: s.Value}
		pk.VK[i] = new(big.Int).Exp(v, s.Value, modulus)
	}
	return pk, ks, nil
}

// digest maps a message into Z_n by counter-extended hashing (full
// domain hash).
func digest(pk *PublicKey, msg []byte) *big.Int {
	need := (pk.N.BitLen() + 7) / 8
	out := make([]byte, 0, need+sha256.Size)
	for ctr := uint32(0); len(out) < need; ctr++ {
		h := sha256.New()
		h.Write([]byte("sh00/fdh"))
		h.Write([]byte{byte(ctr >> 24), byte(ctr >> 16), byte(ctr >> 8), byte(ctr)})
		h.Write(msg)
		out = h.Sum(out)
	}
	x := new(big.Int).SetBytes(out[:need])
	return x.Mod(x, pk.N)
}

// SigShare is party i's signature share x_i = x^{2Δs_i} with the Shoup
// correctness proof (challenge C, response Z).
type SigShare struct {
	Index int
	Xi    *big.Int
	C     *big.Int
	Z     *big.Int
}

// Signature is a standard RSA signature y with y^e = H(m) mod n.
type Signature struct {
	Y *big.Int
}

// SignShare produces party i's signature share with its correctness
// proof.
func SignShare(rand io.Reader, pk *PublicKey, ks KeyShare, msg []byte) (*SigShare, error) {
	x := digest(pk, msg)
	exp := new(big.Int).Lsh(new(big.Int).Mul(pk.Delta, ks.S), 1) // 2Δs_i
	xi := new(big.Int).Exp(x, exp, pk.N)

	// Shoup's proof of discrete-log equality between (v, v_i) and
	// (x~, xi^2) with x~ = x^{4Δ}:
	xt := new(big.Int).Exp(x, new(big.Int).Lsh(pk.Delta, 2), pk.N)
	// r is sampled from [0, 2^(|n|+2*secparam)).
	bound := new(big.Int).Lsh(big.NewInt(1), uint(pk.N.BitLen())+2*secparam)
	r, err := mathutil.RandInt(rand, bound)
	if err != nil {
		return nil, fmt.Errorf("proof nonce: %w", err)
	}
	vp := new(big.Int).Exp(pk.V, r, pk.N)
	xp := new(big.Int).Exp(xt, r, pk.N)
	xi2 := mathutil.MulMod(xi, xi, pk.N)
	c := proofChallenge(pk, pk.VK[ks.Index-1], xt, xi2, vp, xp)
	// z = s_i*c + r over the integers.
	z := new(big.Int).Add(new(big.Int).Mul(ks.S, c), r)
	return &SigShare{Index: ks.Index, Xi: xi, C: c, Z: z}, nil
}

// VerifyShare checks the Shoup correctness proof of a signature share.
func VerifyShare(pk *PublicKey, msg []byte, ss *SigShare) error {
	if ss == nil || ss.Xi == nil || ss.C == nil || ss.Z == nil ||
		ss.Index < 1 || ss.Index > pk.NParties {
		return ErrInvalidShare
	}
	if ss.Z.Sign() < 0 || ss.Xi.Sign() <= 0 || ss.Xi.Cmp(pk.N) >= 0 {
		return ErrInvalidShare
	}
	x := digest(pk, msg)
	xt := new(big.Int).Exp(x, new(big.Int).Lsh(pk.Delta, 2), pk.N)
	xi2 := mathutil.MulMod(ss.Xi, ss.Xi, pk.N)
	vi := pk.VK[ss.Index-1]
	// v' = v^z * v_i^{-c}, x' = xt^z * (xi^2)^{-c}
	vp := mathutil.MulMod(
		new(big.Int).Exp(pk.V, ss.Z, pk.N),
		mathutil.ExpMod(vi, new(big.Int).Neg(ss.C), pk.N), pk.N)
	xp := mathutil.MulMod(
		new(big.Int).Exp(xt, ss.Z, pk.N),
		mathutil.ExpMod(xi2, new(big.Int).Neg(ss.C), pk.N), pk.N)
	if proofChallenge(pk, vi, xt, xi2, vp, xp).Cmp(ss.C) != 0 {
		return ErrInvalidShare
	}
	return nil
}

func proofChallenge(pk *PublicKey, vi, xt, xi2, vp, xp *big.Int) *big.Int {
	h := sha256.New()
	for _, v := range []*big.Int{pk.V, xt, vi, xi2, vp, xp} {
		b := v.Bytes()
		var lenbuf [4]byte
		lenbuf[0], lenbuf[1], lenbuf[2], lenbuf[3] = byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b))
		h.Write(lenbuf[:])
		h.Write(b)
	}
	c := new(big.Int).SetBytes(h.Sum(nil))
	return c.Rsh(c, sha256.Size*8-secparam) // top secparam bits of the digest
}

// Combine assembles t+1 signature shares into a standard RSA signature
// and verifies it against the public key.
func Combine(pk *PublicKey, msg []byte, shares []*SigShare) (*Signature, error) {
	if len(shares) < pk.T+1 {
		return nil, share.ErrNotEnoughShares
	}
	chosen := make(map[int]*big.Int, pk.T+1)
	for _, ss := range shares {
		if len(chosen) == pk.T+1 {
			break
		}
		chosen[ss.Index] = ss.Xi
	}
	if len(chosen) < pk.T+1 {
		return nil, share.ErrDuplicateIndex
	}
	subset := make([]int, 0, len(chosen))
	for idx := range chosen {
		subset = append(subset, idx)
	}
	x := digest(pk, msg)
	// w = Π x_i^{2 λ_i} with integer Lagrange coefficients; then
	// w^e = x^{4Δ²}, and extended Euclid on (e, 4Δ²) finishes.
	w := big.NewInt(1)
	for idx, xi := range chosen {
		lambda, err := share.IntegerLagrangeCoefficient(pk.Delta, idx, subset)
		if err != nil {
			return nil, err
		}
		w = mathutil.MulMod(w, mathutil.ExpMod(xi, new(big.Int).Lsh(lambda, 1), pk.N), pk.N)
	}
	eprime := new(big.Int).Lsh(new(big.Int).Mul(pk.Delta, pk.Delta), 2) // 4Δ²
	gcd, a, b := new(big.Int), new(big.Int), new(big.Int)
	gcd.GCD(a, b, pk.E, eprime)
	if gcd.Cmp(big.NewInt(1)) != 0 {
		return nil, fmt.Errorf("sh00: gcd(e, 4Δ²) = %v, want 1", gcd)
	}
	// With a*e + b*e' = 1 and w^e = x^{e'}: (w^b x^a)^e = x^{e'b + ea} = x.
	y := mathutil.MulMod(mathutil.ExpMod(w, b, pk.N), mathutil.ExpMod(x, a, pk.N), pk.N)
	sig := &Signature{Y: y}
	if err := Verify(pk, msg, sig); err != nil {
		return nil, err
	}
	return sig, nil
}

// Verify checks y^e == H(m) mod n.
func Verify(pk *PublicKey, msg []byte, sig *Signature) error {
	if sig == nil || sig.Y == nil || sig.Y.Sign() <= 0 || sig.Y.Cmp(pk.N) >= 0 {
		return ErrInvalidSignature
	}
	if new(big.Int).Exp(sig.Y, pk.E, pk.N).Cmp(digest(pk, msg)) != 0 {
		return ErrInvalidSignature
	}
	return nil
}

// Marshal encodes the signature share.
func (ss *SigShare) Marshal() []byte {
	return wire.NewWriter().Int(ss.Index).BigInt(ss.Xi).BigInt(ss.C).BigInt(ss.Z).Out()
}

// UnmarshalSigShare decodes a signature share.
func UnmarshalSigShare(data []byte) (*SigShare, error) {
	r := wire.NewReader(data)
	ss := &SigShare{Index: r.Int(), Xi: r.BigInt(), C: r.BigInt(), Z: r.BigInt()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sh00 share: %w", err)
	}
	return ss, nil
}

// Marshal encodes the signature.
func (sig *Signature) Marshal() []byte { return wire.NewWriter().BigInt(sig.Y).Out() }

// UnmarshalSignature decodes a signature.
func UnmarshalSignature(data []byte) (*Signature, error) {
	r := wire.NewReader(data)
	y := r.BigInt()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sh00 signature: %w", err)
	}
	return &Signature{Y: y}, nil
}
