package sh00

import (
	"fmt"
	"io"
	"math/big"
)

// Deterministic safe-prime fixtures. Generating safe primes for 1024+
// bit moduli takes minutes, which would dominate every test run and
// benchmark; these pairs were generated once with mathutil.SafePrime and
// embedded. They are TEST KEYS: the factorization is public by
// definition, so they must never guard real data.
var fixturePrimes = map[int][2]string{
	512: {
		"f377d3e437f5032159ff7ee22dd2332190504bd04ff331cf4fbac9ade1cae717",
		"c26a20db97a59caa15e3d8c0eb896370b095760a93b598cac9397bb059c5543b",
	},
	1024: {
		"ffd32ddc4182c612c6700d72b69df667db29b5c48023a256e3062f2b612870dc806ae590b2094604c816859fe392c9019cf31a2b1d40b7f24ce0dc746c9f75cb",
		"cf46f0cb99791f5bc4726a2a087736ef266c69262014d98cb1709b50df44fd0bac7b798dcac23a2f133d6ba01bf681f11c92fbec2551ed3468e6ff021cd80eab",
	},
	2048: {
		"c909e95fbe7587c7f2f1f6caa9b52700cd032d97d8b7eba270df871815cc64c7288340e0f6e582cf5f20331cfc47e73263fef16e36db4f75d57b0c3b8b6aeebc71b528dfe2e0d5f0c93e1f960043004719b6705d1d80d2fc6ad0bfc6bc05a0360e1bf012af92be11bfba5da8ac4cd1d921a84acc9010c967b639e7b1fb6d63db",
		"c1936e8805fb9e353224fefb0a0eb3cf724bf4f3388a0d343a63455d25cf67efce738848fe089803a5235614314d3fb4a9a28dcfb5af8a92c06a407c470990c18de62d6166d6b283739d3ef1fc5f50a2c86e74e0fc028eb53190569a97269df214f1fdc7ca39abe724708cb405e677db5bd8f82bb2bb7bd4264541c9e3fc20b3",
	},
}

// FixedTestKey deals a threshold key from embedded safe-prime fixtures
// (512, 1024, or 2048-bit modulus). Sharing and verification keys still
// use the caller's randomness; only the primes are fixed.
func FixedTestKey(rand io.Reader, bits, t, n int) (*PublicKey, []KeyShare, error) {
	primes, ok := fixturePrimes[bits]
	if !ok {
		return nil, nil, fmt.Errorf("sh00: no fixture for %d-bit modulus (have 512, 1024, 2048)", bits)
	}
	p, ok1 := new(big.Int).SetString(primes[0], 16)
	q, ok2 := new(big.Int).SetString(primes[1], 16)
	if !ok1 || !ok2 {
		return nil, nil, fmt.Errorf("sh00: corrupt fixture for %d bits", bits)
	}
	one := big.NewInt(1)
	pp := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	qq := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1)
	return dealFromPrimes(rand, p, pp, q, qq, t, n)
}
