package sh00

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"thetacrypt/internal/share"
)

func deal(t *testing.T, bits, tt, n int) (*PublicKey, []KeyShare) {
	t.Helper()
	pk, ks, err := FixedTestKey(rand.Reader, bits, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return pk, ks
}

func TestSignCombineVerify(t *testing.T) {
	for _, bits := range []int{512, 1024} {
		pk, ks := deal(t, bits, 1, 4)
		msg := []byte("certificate request")
		var shares []*SigShare
		for _, k := range []KeyShare{ks[0], ks[2]} {
			ss, err := SignShare(rand.Reader, pk, k, msg)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyShare(pk, msg, ss); err != nil {
				t.Fatalf("bits=%d: valid share %d rejected: %v", bits, ss.Index, err)
			}
			shares = append(shares, ss)
		}
		sig, err := Combine(pk, msg, shares)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if err := Verify(pk, msg, sig); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if err := Verify(pk, []byte("other"), sig); err == nil {
			t.Fatal("signature verified for wrong message")
		}
	}
}

func TestSignatureMatchesPlainRSA(t *testing.T) {
	// The combined signature is an ordinary RSA signature: y^e == H(m).
	pk, ks := deal(t, 512, 1, 3)
	msg := []byte("interop")
	var shares []*SigShare
	for _, k := range ks[:2] {
		ss, _ := SignShare(rand.Reader, pk, k, msg)
		shares = append(shares, ss)
	}
	sig, err := Combine(pk, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if new(big.Int).Exp(sig.Y, pk.E, pk.N).Cmp(digest(pk, msg)) != 0 {
		t.Fatal("combined signature is not a plain RSA signature")
	}
}

func TestAnyQuorumSameSignature(t *testing.T) {
	// RSA signatures are unique, so any quorum combines to the same y.
	pk, ks := deal(t, 512, 2, 7)
	msg := []byte("uniqueness")
	combineWith := func(idxs []int) *Signature {
		var shares []*SigShare
		for _, i := range idxs {
			ss, err := SignShare(rand.Reader, pk, ks[i], msg)
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, ss)
		}
		sig, err := Combine(pk, msg, shares)
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}
	s1 := combineWith([]int{0, 1, 2})
	s2 := combineWith([]int{4, 5, 6})
	if s1.Y.Cmp(s2.Y) != 0 {
		t.Fatal("different quorums produced different RSA signatures")
	}
}

func TestForgedShareRejected(t *testing.T) {
	pk, ks := deal(t, 512, 1, 4)
	msg := []byte("m")
	ss, _ := SignShare(rand.Reader, pk, ks[0], msg)

	mutations := map[string]func(*SigShare){
		"xi":    func(s *SigShare) { s.Xi = new(big.Int).Add(s.Xi, big.NewInt(1)) },
		"c":     func(s *SigShare) { s.C = new(big.Int).Add(s.C, big.NewInt(1)) },
		"z":     func(s *SigShare) { s.Z = new(big.Int).Add(s.Z, big.NewInt(1)) },
		"index": func(s *SigShare) { s.Index = 2 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			clone, err := UnmarshalSigShare(ss.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			mutate(clone)
			if err := VerifyShare(pk, msg, clone); !errors.Is(err, ErrInvalidShare) {
				t.Fatal("tampered share accepted")
			}
		})
	}
	if err := VerifyShare(pk, []byte("other"), ss); err == nil {
		t.Fatal("share verified for wrong message")
	}
	oob := *ss
	oob.Index = 9
	if err := VerifyShare(pk, msg, &oob); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("out-of-range index accepted")
	}
}

func TestCombineQuorumRules(t *testing.T) {
	pk, ks := deal(t, 512, 2, 5)
	msg := []byte("m")
	s0, _ := SignShare(rand.Reader, pk, ks[0], msg)
	s1, _ := SignShare(rand.Reader, pk, ks[1], msg)
	if _, err := Combine(pk, msg, []*SigShare{s0, s1}); !errors.Is(err, share.ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
	if _, err := Combine(pk, msg, []*SigShare{s0, s0, s1}); err == nil {
		t.Fatal("duplicate shares satisfied the quorum")
	}
}

func TestCombineDetectsBadQuorum(t *testing.T) {
	pk, ks := deal(t, 512, 1, 4)
	msg := []byte("m")
	good, _ := SignShare(rand.Reader, pk, ks[0], msg)
	bad, _ := SignShare(rand.Reader, pk, ks[1], msg)
	bad.Xi = mathutilMul(bad.Xi, big.NewInt(2), pk.N)
	if _, err := Combine(pk, msg, []*SigShare{good, bad}); err == nil {
		t.Fatal("corrupted quorum produced a verifying signature")
	}
}

func mathutilMul(a, b, m *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), m)
}

func TestGenerateKeySmall(t *testing.T) {
	// Full key generation exercised at a small, fast modulus size.
	pk, ks, err := GenerateKey(rand.Reader, 256, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("fresh key")
	var shares []*SigShare
	for _, k := range ks[:2] {
		ss, err := SignShare(rand.Reader, pk, k, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyShare(pk, msg, ss); err != nil {
			t.Fatal(err)
		}
		shares = append(shares, ss)
	}
	sig, err := Combine(pk, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk, msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestFixtureErrors(t *testing.T) {
	if _, _, err := FixedTestKey(rand.Reader, 768, 1, 3); err == nil {
		t.Fatal("unknown fixture size accepted")
	}
	if _, _, err := FixedTestKey(rand.Reader, 512, 4, 4); err == nil {
		t.Fatal("bad threshold accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	pk, ks := deal(t, 512, 1, 3)
	msg := []byte("wire")
	ss, _ := SignShare(rand.Reader, pk, ks[0], msg)
	ss2, err := UnmarshalSigShare(ss.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pk, msg, ss2); err != nil {
		t.Fatal("round-tripped share invalid")
	}
	other, _ := SignShare(rand.Reader, pk, ks[1], msg)
	sig, err := Combine(pk, msg, []*SigShare{ss2, other})
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := UnmarshalSignature(sig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(pk, msg, sig2); err != nil {
		t.Fatal("round-tripped signature invalid")
	}
	if _, err := UnmarshalSigShare([]byte("junk")); err == nil {
		t.Fatal("junk share decoded")
	}
}

func TestDigestDeterministicAndFullDomain(t *testing.T) {
	pk, _ := deal(t, 512, 1, 3)
	d1 := digest(pk, []byte("a"))
	d2 := digest(pk, []byte("a"))
	d3 := digest(pk, []byte("b"))
	if d1.Cmp(d2) != 0 {
		t.Fatal("digest not deterministic")
	}
	if d1.Cmp(d3) == 0 {
		t.Fatal("distinct messages collide")
	}
	if d1.Cmp(pk.N) >= 0 || d1.Sign() < 0 {
		t.Fatal("digest out of range")
	}
}
