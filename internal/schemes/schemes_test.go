package schemes

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestRegistryCoversAllSix(t *testing.T) {
	reg := Registry()
	if len(reg) != 6 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	kinds := map[Kind]int{}
	for _, info := range reg {
		kinds[info.Kind]++
		if info.Rounds < 1 || info.KeyBits < 254 {
			t.Fatalf("implausible entry %+v", info)
		}
	}
	if kinds[KindCipher] != 2 || kinds[KindSignature] != 3 || kinds[KindRandomness] != 1 {
		t.Fatalf("kind distribution wrong: %v", kinds)
	}
	if _, err := Lookup(SG02); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("XX99"); err == nil {
		t.Fatal("unknown scheme found")
	}
	if len(All()) != 6 {
		t.Fatal("All() incomplete")
	}
}

func TestKindString(t *testing.T) {
	if KindCipher.String() != "cipher" || KindSignature.String() != "signature" ||
		KindRandomness.String() != "randomness" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still stringify")
	}
}

func TestHybridSealOpen(t *testing.T) {
	key, err := NewDEK(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("payload under the DEK")
	label := []byte("assoc")
	sealed, err := SealPayload(rand.Reader, key, msg, label)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenPayload(key, sealed, label)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
}

func TestHybridAuthFailures(t *testing.T) {
	key, _ := NewDEK(rand.Reader)
	sealed, _ := SealPayload(rand.Reader, key, []byte("m"), []byte("L"))

	// Wrong key.
	other, _ := NewDEK(rand.Reader)
	if _, err := OpenPayload(other, sealed, []byte("L")); err == nil {
		t.Fatal("wrong key accepted")
	}
	// Wrong label (associated data).
	if _, err := OpenPayload(key, sealed, []byte("M")); err == nil {
		t.Fatal("wrong label accepted")
	}
	// Flipped ciphertext bit.
	bad := append([]byte(nil), sealed...)
	bad[len(bad)-1] ^= 1
	if _, err := OpenPayload(key, bad, []byte("L")); err == nil {
		t.Fatal("tampered payload accepted")
	}
	// Truncated.
	if _, err := OpenPayload(key, sealed[:4], []byte("L")); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Bad key sizes.
	if _, err := SealPayload(rand.Reader, key[:7], []byte("m"), nil); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestXORBytes(t *testing.T) {
	a := []byte{0xff, 0x00, 0xaa}
	b := []byte{0x0f, 0xf0, 0x55}
	out, err := XORBytes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{0xf0, 0xf0, 0xff}) {
		t.Fatalf("xor = %x", out)
	}
	again, _ := XORBytes(out, b)
	if !bytes.Equal(again, a) {
		t.Fatal("xor not involutive")
	}
	if _, err := XORBytes(a, b[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
