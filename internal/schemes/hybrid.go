package schemes

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
)

// The threshold ciphers use hybrid encryption: the threshold layer
// encapsulates a 256-bit data-encapsulation key and the payload is
// sealed with an AEAD under that key. The paper uses ChaCha20-Poly1305;
// this reproduction substitutes AES-256-GCM, the stdlib AEAD with the
// same interface and negligible cost relative to the threshold KEM
// (documented in DESIGN.md).

// DEKSize is the data-encapsulation key size in bytes.
const DEKSize = 32

// ErrPayloadAuth is returned when AEAD opening fails, i.e. the payload
// was tampered with or the wrong key was reconstructed.
var ErrPayloadAuth = errors.New("schemes: payload authentication failed")

// NewDEK samples a fresh data-encapsulation key.
func NewDEK(rand io.Reader) ([]byte, error) {
	key := make([]byte, DEKSize)
	if _, err := io.ReadFull(rand, key); err != nil {
		return nil, fmt.Errorf("sample DEK: %w", err)
	}
	return key, nil
}

// SealPayload AEAD-encrypts plaintext under key, binding label as
// associated data. The nonce is prepended to the ciphertext.
func SealPayload(rand io.Reader, key, plaintext, label []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rand, nonce); err != nil {
		return nil, fmt.Errorf("sample nonce: %w", err)
	}
	sealed := aead.Seal(nil, nonce, plaintext, label)
	return append(nonce, sealed...), nil
}

// OpenPayload reverses SealPayload. The AEAD tag doubles as the paper's
// result verification for cipher schemes: a wrongly combined key cannot
// authenticate.
func OpenPayload(key, payload, label []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(payload) < aead.NonceSize() {
		return nil, ErrPayloadAuth
	}
	nonce, sealed := payload[:aead.NonceSize()], payload[aead.NonceSize():]
	plain, err := aead.Open(nil, nonce, sealed, label)
	if err != nil {
		return nil, ErrPayloadAuth
	}
	return plain, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != DEKSize {
		return nil, fmt.Errorf("schemes: DEK must be %d bytes, got %d", DEKSize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return aead, nil
}

// XORBytes returns a XOR b for equal-length slices; it implements the
// one-time-pad step of the TDH2/BZ03 key encapsulation.
func XORBytes(a, b []byte) ([]byte, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("schemes: xor length mismatch %d != %d", len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out, nil
}
