// Package bz03 implements the Baek-Zheng threshold cryptosystem (BZ03)
// over the BN254 Gap Diffie-Hellman groups. Like SG02 it is a
// non-interactive CCA-secure threshold cipher, but ciphertext and share
// validity are checked with pairing equations instead of zero-knowledge
// proofs (the paper's Table 1), and it uses the same hybrid
// key-encapsulation approach.
//
// Structure of a ciphertext for message m with label L:
//
//	U = r*G1
//	EncKey = H2(r*Y) XOR dek        with Y = x*G1 the public key
//	Payload = AEAD(dek, m, L)
//	W = r*H3(U, EncKey, Payload, L) ∈ G2
//
// Validity: e(G1, W) == e(U, H3(...)). Decryption share: δ_i = x_i*U,
// valid iff e(δ_i, G2) == e(U, VK_i) with VK_i = x_i*G2.
package bz03

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/pairing"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// Scheme-level errors suitable for errors.Is matching.
var (
	ErrInvalidCiphertext = errors.New("bz03: invalid ciphertext")
	ErrInvalidShare      = errors.New("bz03: invalid decryption share")
)

// PublicKey is the encryption key Y = x*G1 plus per-party verification
// keys VK[i-1] = x_i*G2.
type PublicKey struct {
	Y  *pairing.G1
	VK []*pairing.G2
	T  int
	N  int
}

// KeyShare is party i's share x_i of the decryption key.
type KeyShare struct {
	Index int
	X     *big.Int
}

// Deal runs the trusted-dealer setup.
func Deal(rand io.Reader, t, n int) (*PublicKey, []KeyShare, error) {
	if err := share.ValidateParams(t, n); err != nil {
		return nil, nil, err
	}
	x, err := mathutil.RandInt(rand, pairing.Order())
	if err != nil {
		return nil, nil, fmt.Errorf("sample secret: %w", err)
	}
	shares, err := share.Split(rand, x, t, n, pairing.Order())
	if err != nil {
		return nil, nil, err
	}
	pk := &PublicKey{Y: pairing.G1BaseMul(x), VK: make([]*pairing.G2, n), T: t, N: n}
	ks := make([]KeyShare, n)
	for i, s := range shares {
		ks[i] = KeyShare{Index: s.Index, X: s.Value}
		pk.VK[i] = pairing.G2BaseMul(s.Value)
	}
	return pk, ks, nil
}

// Ciphertext is a BZ03 hybrid ciphertext.
type Ciphertext struct {
	Label   []byte
	EncKey  []byte
	Payload []byte
	U       *pairing.G1
	W       *pairing.G2
}

// Encrypt produces a ciphertext of message bound to label.
func Encrypt(rand io.Reader, pk *PublicKey, message, label []byte) (*Ciphertext, error) {
	dek, err := schemes.NewDEK(rand)
	if err != nil {
		return nil, err
	}
	payload, err := schemes.SealPayload(rand, dek, message, label)
	if err != nil {
		return nil, err
	}
	r, err := mathutil.RandInt(rand, pairing.Order())
	if err != nil {
		return nil, fmt.Errorf("sample r: %w", err)
	}
	u := pairing.G1BaseMul(r)
	encKey, err := schemes.XORBytes(kdf(pk.Y.Mul(r)), dek)
	if err != nil {
		return nil, err
	}
	w := validityPoint(u, encKey, payload, label).Mul(r)
	return &Ciphertext{
		Label: append([]byte(nil), label...), EncKey: encKey, Payload: payload,
		U: u, W: w,
	}, nil
}

// VerifyCiphertext checks the pairing-based validity equation
// e(G1, W) == e(U, H3(U, EncKey, Payload, Label)).
func VerifyCiphertext(pk *PublicKey, ct *Ciphertext) error {
	if ct == nil || ct.U == nil || ct.W == nil || ct.U.IsIdentity() {
		return ErrInvalidCiphertext
	}
	if len(ct.EncKey) != schemes.DEKSize {
		return ErrInvalidCiphertext
	}
	h := validityPoint(ct.U, ct.EncKey, ct.Payload, ct.Label)
	if !pairing.PairingCheck(pairing.G1Generator(), ct.W, ct.U, h) {
		return ErrInvalidCiphertext
	}
	return nil
}

// DecShare is party i's decryption share δ_i = x_i*U. No ZKP is
// attached: validity is publicly checkable with a pairing.
type DecShare struct {
	Index int
	D     *pairing.G1
}

// DecryptShare produces party i's decryption share for a valid
// ciphertext.
func DecryptShare(pk *PublicKey, ks KeyShare, ct *Ciphertext) (*DecShare, error) {
	if err := VerifyCiphertext(pk, ct); err != nil {
		return nil, err
	}
	return &DecShare{Index: ks.Index, D: ct.U.Mul(ks.X)}, nil
}

// VerifyShare checks e(δ_i, G2) == e(U, VK_i).
func VerifyShare(pk *PublicKey, ct *Ciphertext, ds *DecShare) error {
	if ds == nil || ds.D == nil || ds.Index < 1 || ds.Index > pk.N {
		return ErrInvalidShare
	}
	if !pairing.PairingCheck(ds.D, pairing.G2Generator(), ct.U, pk.VK[ds.Index-1]) {
		return ErrInvalidShare
	}
	return nil
}

// Combine interpolates t+1 decryption shares into x*U, unwraps the DEK,
// and opens the payload (AEAD doubles as result verification).
func Combine(pk *PublicKey, ct *Ciphertext, dss []*DecShare) ([]byte, error) {
	if err := VerifyCiphertext(pk, ct); err != nil {
		return nil, err
	}
	if len(dss) < pk.T+1 {
		return nil, share.ErrNotEnoughShares
	}
	chosen := make(map[int]*pairing.G1, pk.T+1)
	for _, ds := range dss {
		if len(chosen) == pk.T+1 {
			break
		}
		chosen[ds.Index] = ds.D
	}
	if len(chosen) < pk.T+1 {
		return nil, share.ErrDuplicateIndex
	}
	subset := make([]int, 0, len(chosen))
	for idx := range chosen {
		subset = append(subset, idx)
	}
	acc := pairing.G1Identity()
	for idx, d := range chosen {
		lambda, err := share.LagrangeCoefficient(idx, subset, pairing.Order())
		if err != nil {
			return nil, err
		}
		acc = acc.Add(d.Mul(lambda))
	}
	dek, err := schemes.XORBytes(kdf(acc), ct.EncKey)
	if err != nil {
		return nil, err
	}
	msg, err := schemes.OpenPayload(dek, ct.Payload, ct.Label)
	if err != nil {
		return nil, fmt.Errorf("bz03 combine: %w", err)
	}
	return msg, nil
}

// kdf derives the 32-byte key-encapsulation pad H2(point).
func kdf(p *pairing.G1) []byte {
	h := sha256.Sum256(append([]byte("bz03/kdf"), p.Marshal()...))
	return h[:]
}

// validityPoint computes H3(U, EncKey, Payload, Label) ∈ G2.
func validityPoint(u *pairing.G1, encKey, payload, label []byte) *pairing.G2 {
	return pairing.HashToG2("bz03/validity", u.Marshal(), encKey, payload, label)
}

// Marshal encodes the ciphertext.
func (ct *Ciphertext) Marshal() []byte {
	return wire.NewWriter().
		Bytes(ct.Label).Bytes(ct.EncKey).Bytes(ct.Payload).
		Bytes(ct.U.Marshal()).Bytes(ct.W.Marshal()).Out()
}

// UnmarshalCiphertext decodes a ciphertext.
func UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	r := wire.NewReader(data)
	ct := &Ciphertext{
		Label:   r.Bytes(),
		EncKey:  r.Bytes(),
		Payload: r.Bytes(),
	}
	uRaw := r.Bytes()
	wRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bz03 ciphertext: %w", err)
	}
	u, ok := pairing.UnmarshalG1(uRaw)
	if !ok {
		return nil, fmt.Errorf("bz03 ciphertext U: %w", ErrInvalidCiphertext)
	}
	w, ok := pairing.UnmarshalG2(wRaw)
	if !ok {
		return nil, fmt.Errorf("bz03 ciphertext W: %w", ErrInvalidCiphertext)
	}
	ct.U, ct.W = u, w
	return ct, nil
}

// Marshal encodes the decryption share.
func (ds *DecShare) Marshal() []byte {
	return wire.NewWriter().Int(ds.Index).Bytes(ds.D.Marshal()).Out()
}

// UnmarshalDecShare decodes a decryption share.
func UnmarshalDecShare(data []byte) (*DecShare, error) {
	r := wire.NewReader(data)
	idx := r.Int()
	dRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("bz03 share: %w", err)
	}
	d, ok := pairing.UnmarshalG1(dRaw)
	if !ok {
		return nil, fmt.Errorf("bz03 share point: %w", ErrInvalidShare)
	}
	return &DecShare{Index: idx, D: d}, nil
}
