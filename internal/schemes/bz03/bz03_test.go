package bz03

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"thetacrypt/internal/pairing"
	"thetacrypt/internal/share"
)

func deal(t *testing.T, tt, n int) (*PublicKey, []KeyShare) {
	t.Helper()
	pk, ks, err := Deal(rand.Reader, tt, n)
	if err != nil {
		t.Fatal(err)
	}
	return pk, ks
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	msg := []byte("mempool tx payload")
	label := []byte("height-9")
	ct, err := Encrypt(rand.Reader, pk, msg, label)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCiphertext(pk, ct); err != nil {
		t.Fatalf("fresh ciphertext rejected: %v", err)
	}
	var shares []*DecShare
	for _, k := range []KeyShare{ks[0], ks[3]} {
		ds, err := DecryptShare(pk, k, ct)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyShare(pk, ct, ds); err != nil {
			t.Fatalf("valid share %d rejected: %v", ds.Index, err)
		}
		shares = append(shares, ds)
	}
	got, err := Combine(pk, ct, shares)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("decrypted %q, want %q", got, msg)
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	ct, _ := Encrypt(rand.Reader, pk, []byte("secret"), []byte("L"))

	mutations := map[string]func(*Ciphertext){
		"enckey":  func(c *Ciphertext) { c.EncKey[0] ^= 1 },
		"payload": func(c *Ciphertext) { c.Payload[0] ^= 1 },
		"label":   func(c *Ciphertext) { c.Label = []byte("other") },
		"u":       func(c *Ciphertext) { c.U = pairing.G1Generator() },
		"w":       func(c *Ciphertext) { c.W = pairing.G2Generator() },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			clone, err := UnmarshalCiphertext(ct.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			mutate(clone)
			if err := VerifyCiphertext(pk, clone); err == nil {
				t.Fatal("tampered ciphertext accepted")
			}
			if _, err := DecryptShare(pk, ks[0], clone); err == nil {
				t.Fatal("decrypt share produced for tampered ciphertext")
			}
		})
	}
}

func TestForgedShareRejected(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	ct, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	ds, _ := DecryptShare(pk, ks[0], ct)

	wrongIndex := &DecShare{Index: 2, D: ds.D}
	if err := VerifyShare(pk, ct, wrongIndex); err == nil {
		t.Fatal("share attributed to wrong party accepted")
	}
	forged := &DecShare{Index: 1, D: pairing.G1Generator()}
	if err := VerifyShare(pk, ct, forged); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("forged share accepted")
	}
	oob := &DecShare{Index: 42, D: ds.D}
	if err := VerifyShare(pk, ct, oob); !errors.Is(err, ErrInvalidShare) {
		t.Fatal("out-of-range index accepted")
	}
	// Shares are bound to the ciphertext's U: replaying against another
	// ciphertext fails.
	ct2, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	if err := VerifyShare(pk, ct2, ds); err == nil {
		t.Fatal("share replayed across ciphertexts")
	}
}

func TestCombineQuorumRules(t *testing.T) {
	pk, ks := deal(t, 2, 5)
	ct, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	d0, _ := DecryptShare(pk, ks[0], ct)
	d1, _ := DecryptShare(pk, ks[1], ct)
	if _, err := Combine(pk, ct, []*DecShare{d0, d1}); !errors.Is(err, share.ErrNotEnoughShares) {
		t.Fatalf("want ErrNotEnoughShares, got %v", err)
	}
	if _, err := Combine(pk, ct, []*DecShare{d0, d0, d1}); err == nil {
		t.Fatal("duplicate shares satisfied the quorum")
	}
}

func TestCorruptQuorumCannotDecrypt(t *testing.T) {
	pk, ks := deal(t, 1, 4)
	ct, _ := Encrypt(rand.Reader, pk, []byte("m"), nil)
	good, _ := DecryptShare(pk, ks[0], ct)
	bad, _ := DecryptShare(pk, ks[1], ct)
	bad.D = bad.D.Add(pairing.G1Generator())
	if _, err := Combine(pk, ct, []*DecShare{good, bad}); err == nil {
		t.Fatal("corrupted quorum still decrypted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	pk, ks := deal(t, 1, 3)
	ct, _ := Encrypt(rand.Reader, pk, []byte("roundtrip"), []byte("L"))
	ct2, err := UnmarshalCiphertext(ct.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCiphertext(pk, ct2); err != nil {
		t.Fatalf("round-tripped ciphertext invalid: %v", err)
	}
	ds, _ := DecryptShare(pk, ks[0], ct2)
	ds2, err := UnmarshalDecShare(ds.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShare(pk, ct2, ds2); err != nil {
		t.Fatalf("round-tripped share invalid: %v", err)
	}
	if _, err := UnmarshalCiphertext([]byte("junk")); err == nil {
		t.Fatal("junk ciphertext decoded")
	}
}

func TestAnyQuorumDecrypts(t *testing.T) {
	pk, ks := deal(t, 2, 7)
	msg := []byte("quorum independence")
	ct, _ := Encrypt(rand.Reader, pk, msg, nil)
	for _, subset := range [][]int{{0, 1, 2}, {4, 5, 6}} {
		var shares []*DecShare
		for _, i := range subset {
			ds, err := DecryptShare(pk, ks[i], ct)
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, ds)
		}
		got, err := Combine(pk, ct, shares)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("subset %v failed: %v", subset, err)
		}
	}
}
