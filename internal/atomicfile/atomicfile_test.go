package atomicfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node1.key")
	if err := WriteFile(path, []byte("first"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("first")) {
		t.Fatalf("got %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm %v, want 0600", fi.Mode().Perm())
	}
	if err := WriteFile(path, []byte("second, longer contents"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, []byte("second, longer contents")) {
		t.Fatalf("after replace got %q", got)
	}
}

func TestWriteFileLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory contains %v, want only out.json", names)
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), nil, 0o600); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
