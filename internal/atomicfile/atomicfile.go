// Package atomicfile provides crash-safe file replacement: the data is
// written to a temporary file in the target directory, fsynced, and
// renamed over the destination, so readers observe either the old or
// the new contents — never a truncated file. The durable keystore and
// the dealer's output files both rely on it.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data. The temporary file is
// created in the same directory (rename is only atomic within a
// filesystem) and both the file and its directory are fsynced before
// returning, so a crash immediately after WriteFile cannot lose the
// update.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: create temp: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure the temp file is removed; on success the rename
	// has already consumed it and the remove is a no-op.
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: sync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("atomicfile: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicfile: rename into %s: %w", path, err)
	}
	// Persist the directory entry; without this the rename itself can
	// be lost on power failure. Some filesystems reject directory
	// fsync — treat that as best-effort.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
