package pairing

import (
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
)

// G2 is a point on the sextic twist E'(Fp2): y^2 = x^3 + 3/ξ, in Jacobian
// coordinates. Only the order-r subgroup is exposed: constructors and
// UnmarshalG2 clear or check the cofactor 2p - r.
type G2 struct {
	x, y, z fp2
}

// G2Identity returns the point at infinity.
func G2Identity() *G2 {
	return &G2{x: fp2One(), y: fp2One(), z: fp2Zero()}
}

// G2Generator returns the standard order-r generator of the twist.
func G2Generator() *G2 {
	return &G2{x: bn.g2GenX.clone(), y: bn.g2GenY.clone(), z: fp2One()}
}

// G2BaseMul returns k * G2Generator().
func G2BaseMul(k *big.Int) *G2 { return G2Generator().Mul(k) }

// RandomG2 returns (k, k*G2) for a uniform scalar k.
func RandomG2(r io.Reader) (*big.Int, *G2, error) {
	k, err := mathutil.RandInt(r, bn.r)
	if err != nil {
		return nil, nil, err
	}
	return k, G2BaseMul(k), nil
}

// IsIdentity reports whether the point is at infinity.
func (p *G2) IsIdentity() bool { return p.z.isZero() }

// Add returns p + q.
func (p *G2) Add(q *G2) *G2 {
	if p.IsIdentity() {
		return q.clone()
	}
	if q.IsIdentity() {
		return p.clone()
	}
	pp := bn
	z1z1 := p.z.square(pp)
	z2z2 := q.z.square(pp)
	u1 := p.x.mul(z2z2, pp)
	u2 := q.x.mul(z1z1, pp)
	s1 := p.y.mul(q.z, pp).mul(z2z2, pp)
	s2 := q.y.mul(p.z, pp).mul(z1z1, pp)
	h := u2.sub(u1, pp)
	rr := s2.sub(s1, pp)
	if h.isZero() {
		if rr.isZero() {
			return p.Double()
		}
		return G2Identity()
	}
	i := h.dbl(pp).square(pp)
	j := h.mul(i, pp)
	rr = rr.dbl(pp)
	v := u1.mul(i, pp)
	x3 := rr.square(pp).sub(j, pp).sub(v.dbl(pp), pp)
	y3 := rr.mul(v.sub(x3, pp), pp).sub(s1.dbl(pp).mul(j, pp), pp)
	z3 := p.z.add(q.z, pp).square(pp).sub(z1z1, pp).sub(z2z2, pp).mul(h, pp)
	return &G2{x: x3, y: y3, z: z3}
}

// Double returns 2p.
func (p *G2) Double() *G2 {
	if p.IsIdentity() {
		return G2Identity()
	}
	pp := bn
	a := p.x.square(pp)
	b := p.y.square(pp)
	c := b.square(pp)
	d := p.x.add(b, pp).square(pp).sub(a, pp).sub(c, pp).dbl(pp)
	e := a.dbl(pp).add(a, pp)
	f := e.square(pp)
	x3 := f.sub(d.dbl(pp), pp)
	y3 := e.mul(d.sub(x3, pp), pp).sub(c.dbl(pp).dbl(pp).dbl(pp), pp)
	z3 := p.y.dbl(pp).mul(p.z, pp)
	return &G2{x: x3, y: y3, z: z3}
}

// Neg returns -p.
func (p *G2) Neg() *G2 {
	if p.IsIdentity() {
		return G2Identity()
	}
	return &G2{x: p.x.clone(), y: p.y.neg(bn), z: p.z.clone()}
}

// Mul returns k*p; k is reduced modulo r.
func (p *G2) Mul(k *big.Int) *G2 {
	kk := new(big.Int).Mod(k, bn.r)
	acc := G2Identity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = acc.Double()
		if kk.Bit(i) == 1 {
			acc = acc.Add(p)
		}
	}
	return acc
}

// mulRaw is scalar multiplication without reduction mod r, used for
// cofactor clearing.
func (p *G2) mulRaw(k *big.Int) *G2 {
	acc := G2Identity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = acc.Double()
		if k.Bit(i) == 1 {
			acc = acc.Add(p)
		}
	}
	return acc
}

// Equal reports whether two Jacobian representations denote the same
// affine point.
func (p *G2) Equal(q *G2) bool {
	if p.IsIdentity() || q.IsIdentity() {
		return p.IsIdentity() == q.IsIdentity()
	}
	pp := bn
	z1z1 := p.z.square(pp)
	z2z2 := q.z.square(pp)
	if !p.x.mul(z2z2, pp).equal(q.x.mul(z1z1, pp)) {
		return false
	}
	return p.y.mul(z2z2.mul(q.z, pp), pp).equal(q.y.mul(z1z1.mul(p.z, pp), pp))
}

// affine returns affine coordinates; ok is false at infinity.
func (p *G2) affine() (x, y fp2, ok bool) {
	if p.IsIdentity() {
		return fp2{}, fp2{}, false
	}
	pp := bn
	zinv := p.z.inv(pp)
	zinv2 := zinv.square(pp)
	return p.x.mul(zinv2, pp), p.y.mul(zinv2.mul(zinv, pp), pp), true
}

func (p *G2) clone() *G2 {
	return &G2{x: p.x.clone(), y: p.y.clone(), z: p.z.clone()}
}

// Marshal returns a 129-byte encoding: zero-prefixed zeros for infinity
// or 0x04 || x.c0 || x.c1 || y.c0 || y.c1.
func (p *G2) Marshal() []byte {
	out := make([]byte, 129)
	x, y, ok := p.affine()
	if !ok {
		return out
	}
	out[0] = 4
	copy(out[1:65], x.bytes())
	copy(out[65:], y.bytes())
	return out
}

// UnmarshalG2 decodes an encoding, checking the curve equation and
// membership in the order-r subgroup.
func UnmarshalG2(data []byte) (*G2, bool) {
	if len(data) != 129 {
		return nil, false
	}
	if data[0] == 0 {
		for _, b := range data[1:] {
			if b != 0 {
				return nil, false
			}
		}
		return G2Identity(), true
	}
	if data[0] != 4 {
		return nil, false
	}
	x, ok := fp2FromBytes(data[1:65], bn)
	if !ok {
		return nil, false
	}
	y, ok := fp2FromBytes(data[65:], bn)
	if !ok {
		return nil, false
	}
	if !onTwist(x, y) {
		return nil, false
	}
	pt := &G2{x: x, y: y, z: fp2One()}
	// mulRaw avoids the mod-r reduction in Mul, which would trivialize
	// the subgroup check (r mod r = 0).
	if !pt.mulRaw(bn.r).IsIdentity() {
		return nil, false
	}
	return pt, true
}

func onTwist(x, y fp2) bool {
	pp := bn
	lhs := y.square(pp)
	rhs := x.square(pp).mul(x, pp).add(pp.twistB, pp)
	return lhs.equal(rhs)
}

// HashToG2 maps domain-separated input onto the order-r subgroup of the
// twist by try-and-increment followed by cofactor clearing.
func HashToG2(domain string, data ...[]byte) *G2 {
	seed := hashSeed("thetacrypt/bn254g2/"+domain, data)
	for ctr := uint64(0); ; ctr += 2 {
		c0 := hashCandidate(seed, ctr, bn.p)
		c1 := hashCandidate(seed, ctr+1, bn.p)
		if c0 == nil || c1 == nil {
			continue
		}
		x := fp2{c0: c0, c1: c1}
		y2 := x.square(bn).mul(x, bn).add(bn.twistB, bn)
		y, ok := y2.sqrt(bn)
		if !ok {
			continue
		}
		pt := &G2{x: x, y: y, z: fp2One()}
		cleared := pt.mulRaw(bn.g2Cofactor)
		if cleared.IsIdentity() {
			continue
		}
		return cleared
	}
}
