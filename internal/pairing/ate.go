package pairing

import (
	"math/big"

	"thetacrypt/internal/mathutil"
)

// This file implements the optimal ate pairing, the default pairing used
// by Pair and PairingCheck. The Miller loop runs over 6u+2 (≈ 65 bits, in
// non-adjacent form) with point arithmetic on the twist and two closing
// Frobenius line steps. The slower Tate pairing in tate.go serves as an
// independent reference implementation; property tests check both.

// twistAffine is an affine point on the twist used inside the Miller loop.
type twistAffine struct {
	x, y fp2
}

// lineFunc is the sparse Fp12 line evaluation
// l(P) = yP + (-λ xP)·w + (λ x_T - y_T)·w^3 as full Fp12 element.
func lineFunc(lambda fp2, xt, yt fp2, px, py *big.Int) fp12 {
	c00 := fp2{c0: mathutil.Clone(py), c1: big.NewInt(0)}
	negXP := mathutil.SubMod(big.NewInt(0), px, bn.p)
	c10 := lambda.mulScalar(negXP, bn)
	c11 := lambda.mul(xt, bn).sub(yt, bn)
	return fp12{
		c0: fp6{c0: c00, c1: fp2Zero(), c2: fp2Zero()},
		c1: fp6{c0: c10, c1: c11, c2: fp2Zero()},
	}
}

// doubleStep doubles T on the twist and returns the tangent-line value
// at P.
func doubleStep(t *twistAffine, px, py *big.Int) fp12 {
	pp := bn
	// λ = 3x^2 / 2y
	num := t.x.square(pp).mulScalar(big.NewInt(3), pp)
	lambda := num.mul(t.y.dbl(pp).inv(pp), pp)
	l := lineFunc(lambda, t.x, t.y, px, py)
	x3 := lambda.square(pp).sub(t.x.dbl(pp), pp)
	y3 := lambda.mul(t.x.sub(x3, pp), pp).sub(t.y, pp)
	t.x, t.y = x3, y3
	return l
}

// addStep adds Q to T on the twist and returns the chord-line value at P.
// T and Q must be distinct non-inverse points, which holds throughout the
// optimal ate loop.
func addStep(t *twistAffine, q twistAffine, px, py *big.Int) fp12 {
	pp := bn
	lambda := q.y.sub(t.y, pp).mul(q.x.sub(t.x, pp).inv(pp), pp)
	l := lineFunc(lambda, t.x, t.y, px, py)
	x3 := lambda.square(pp).sub(t.x, pp).sub(q.x, pp)
	y3 := lambda.mul(t.x.sub(x3, pp), pp).sub(t.y, pp)
	t.x, t.y = x3, y3
	return l
}

// frobTwist applies the p-power Frobenius endomorphism to a twist point:
// π(x, y) = (conj(x)·ξ^((p-1)/3), conj(y)·ξ^((p-1)/2)).
func frobTwist(q twistAffine) twistAffine {
	pp := bn
	return twistAffine{
		x: q.x.conj(pp).mul(pp.frobGamma[2], pp),
		y: q.y.conj(pp).mul(pp.frobGamma[3], pp),
	}
}

// millerLoopAte computes f_{6u+2,Q}(P) times the two closing Frobenius
// lines, for affine P = (px, py) and twist point Q = (qx, qy).
func millerLoopAte(px, py *big.Int, qx, qy fp2) fp12 {
	pp := bn
	sixUPlus2 := new(big.Int).Mul(pp.u, big.NewInt(6))
	sixUPlus2.Add(sixUPlus2, big.NewInt(2))
	naf := mathutil.NAF(sixUPlus2)

	q := twistAffine{x: qx.clone(), y: qy.clone()}
	negQ := twistAffine{x: qx.clone(), y: qy.neg(pp)}
	t := twistAffine{x: qx.clone(), y: qy.clone()}

	f := fp12One()
	for i := len(naf) - 2; i >= 0; i-- {
		f = f.square(pp)
		f = f.mul(doubleStep(&t, px, py), pp)
		switch naf[i] {
		case 1:
			f = f.mul(addStep(&t, q, px, py), pp)
		case -1:
			f = f.mul(addStep(&t, negQ, px, py), pp)
		}
	}

	// Closing steps: add π(Q), then subtract π^2(Q).
	q1 := frobTwist(q)
	q2 := frobTwist(q1)
	negQ2 := twistAffine{x: q2.x, y: q2.y.neg(pp)}
	f = f.mul(addStep(&t, q1, px, py), pp)
	f = f.mul(addStep(&t, negQ2, px, py), pp)
	return f
}
