// Package pairing implements the BN254 pairing-friendly elliptic curve
// (also known as alt_bn128) from scratch on math/big: the quadratic /
// sextic / dodecic extension-field tower, the groups G1 = E(Fp) and
// G2 ⊂ E'(Fp2), hashing to both groups, and the reduced Tate pairing
// e: G1 × G2 → GT with a Frobenius-accelerated final exponentiation.
//
// BN254 is the curve used by the paper's BZ03 and BLS04 schemes
// (Table 3). The implementation favours auditability over constant-time
// execution; correctness is established through bilinearity and
// non-degeneracy property tests.
package pairing

import "math/big"

// bnParams collects the BN254 curve constants. The values are the
// standard alt_bn128 parameters (as used by Ethereum's precompiles).
type bnParams struct {
	// p is the base field prime, p = 36u^4 + 36u^3 + 24u^2 + 6u + 1.
	p *big.Int
	// r is the prime group order, r = 36u^4 + 36u^3 + 18u^2 + 6u + 1.
	r *big.Int
	// u is the BN generation parameter.
	u *big.Int
	// b is the G1 curve coefficient: y^2 = x^3 + 3.
	b *big.Int
	// g2Cofactor is #E'(Fp2)/r = 2p - r.
	g2Cofactor *big.Int
	// pPlus1Over4 is the exponent for square roots in Fp (p ≡ 3 mod 4).
	pPlus1Over4 *big.Int
	// xiToPMinus1Over6 powers are the Frobenius twist constants
	// γ_j = ξ^(j(p-1)/6) for j = 1..5, with ξ = 9 + i.
	frobGamma [6]fp2 // index 1..5 used
	// twistB is the twist coefficient b' = 3/ξ for E': y^2 = x^3 + b'.
	twistB fp2
	// g2Gen is the standard G2 generator on the twist.
	g2GenX, g2GenY fp2
}

var bn = newBNParams()

func newBNParams() *bnParams {
	p, _ := new(big.Int).SetString("21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)
	r, _ := new(big.Int).SetString("21888242871839275222246405745257275088548364400416034343698204186575808495617", 10)
	u, _ := new(big.Int).SetString("4965661367192848881", 10)

	params := &bnParams{
		p: p,
		r: r,
		u: u,
		b: big.NewInt(3),
	}
	params.g2Cofactor = new(big.Int).Sub(new(big.Int).Lsh(p, 1), r)
	params.pPlus1Over4 = new(big.Int).Rsh(new(big.Int).Add(p, big.NewInt(1)), 2)

	// ξ = 9 + i is the sextic non-residue defining the tower.
	xi := fp2{c0: big.NewInt(9), c1: big.NewInt(1)}

	// twistB = 3 / ξ.
	params.twistB = xi.inv(params).mulScalar(big.NewInt(3), params)

	// Frobenius constants γ_j = ξ^(j(p-1)/6).
	e := new(big.Int).Sub(p, big.NewInt(1))
	e.Div(e, big.NewInt(6))
	gamma1 := xi.exp(e, params)
	params.frobGamma[1] = gamma1
	for j := 2; j <= 5; j++ {
		params.frobGamma[j] = params.frobGamma[j-1].mul(gamma1, params)
	}

	// Standard alt_bn128 G2 generator.
	x0, _ := new(big.Int).SetString("10857046999023057135944570762232829481370756359578518086990519993285655852781", 10)
	x1, _ := new(big.Int).SetString("11559732032986387107991004021392285783925812861821192530917403151452391805634", 10)
	y0, _ := new(big.Int).SetString("8495653923123431417604973247489272438418190587263600148770280649306958101930", 10)
	y1, _ := new(big.Int).SetString("4082367875863433681332203403145435568316851327593401208105741076214120093531", 10)
	params.g2GenX = fp2{c0: x0, c1: x1}
	params.g2GenY = fp2{c0: y0, c1: y1}

	return params
}

// Order returns the prime order r of G1, G2 and GT.
func Order() *big.Int { return new(big.Int).Set(bn.r) }

// FieldModulus returns the base field prime p.
func FieldModulus() *big.Int { return new(big.Int).Set(bn.p) }
