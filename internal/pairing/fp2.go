package pairing

import (
	"math/big"

	"thetacrypt/internal/mathutil"
)

// fp2 is an element of Fp2 = Fp[i]/(i^2 + 1), represented as c0 + c1*i.
// All operations are functional: they return fresh values and never
// mutate their operands.
type fp2 struct {
	c0, c1 *big.Int
}

func fp2Zero() fp2 { return fp2{c0: big.NewInt(0), c1: big.NewInt(0)} }
func fp2One() fp2  { return fp2{c0: big.NewInt(1), c1: big.NewInt(0)} }

func (a fp2) isZero() bool { return a.c0.Sign() == 0 && a.c1.Sign() == 0 }

func (a fp2) equal(b fp2) bool {
	return a.c0.Cmp(b.c0) == 0 && a.c1.Cmp(b.c1) == 0
}

func (a fp2) clone() fp2 {
	return fp2{c0: mathutil.Clone(a.c0), c1: mathutil.Clone(a.c1)}
}

func (a fp2) add(b fp2, pp *bnParams) fp2 {
	return fp2{
		c0: mathutil.AddMod(a.c0, b.c0, pp.p),
		c1: mathutil.AddMod(a.c1, b.c1, pp.p),
	}
}

func (a fp2) sub(b fp2, pp *bnParams) fp2 {
	return fp2{
		c0: mathutil.SubMod(a.c0, b.c0, pp.p),
		c1: mathutil.SubMod(a.c1, b.c1, pp.p),
	}
}

func (a fp2) neg(pp *bnParams) fp2 {
	return fp2{
		c0: mathutil.SubMod(big.NewInt(0), a.c0, pp.p),
		c1: mathutil.SubMod(big.NewInt(0), a.c1, pp.p),
	}
}

func (a fp2) dbl(pp *bnParams) fp2 { return a.add(a, pp) }

// mul computes (a0 + a1 i)(b0 + b1 i) = (a0b0 - a1b1) + (a0b1 + a1b0) i.
func (a fp2) mul(b fp2, pp *bnParams) fp2 {
	t0 := new(big.Int).Mul(a.c0, b.c0)
	t1 := new(big.Int).Mul(a.c1, b.c1)
	t2 := new(big.Int).Mul(a.c0, b.c1)
	t3 := new(big.Int).Mul(a.c1, b.c0)
	return fp2{
		c0: new(big.Int).Mod(t0.Sub(t0, t1), pp.p),
		c1: new(big.Int).Mod(t2.Add(t2, t3), pp.p),
	}
}

// square computes (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i.
func (a fp2) square(pp *bnParams) fp2 {
	s := new(big.Int).Add(a.c0, a.c1)
	d := new(big.Int).Sub(a.c0, a.c1)
	m := new(big.Int).Mul(a.c0, a.c1)
	return fp2{
		c0: new(big.Int).Mod(s.Mul(s, d), pp.p),
		c1: new(big.Int).Mod(m.Lsh(m, 1), pp.p),
	}
}

// mulScalar multiplies both coefficients by an Fp scalar.
func (a fp2) mulScalar(k *big.Int, pp *bnParams) fp2 {
	return fp2{
		c0: mathutil.MulMod(a.c0, k, pp.p),
		c1: mathutil.MulMod(a.c1, k, pp.p),
	}
}

// conj returns the Fp2 conjugate c0 - c1*i, which equals a^p.
func (a fp2) conj(pp *bnParams) fp2 {
	return fp2{
		c0: mathutil.Clone(a.c0),
		c1: mathutil.SubMod(big.NewInt(0), a.c1, pp.p),
	}
}

// mulByXi multiplies by the sextic non-residue ξ = 9 + i:
// (9 a0 - a1) + (9 a1 + a0) i.
func (a fp2) mulByXi(pp *bnParams) fp2 {
	nine := big.NewInt(9)
	t0 := new(big.Int).Mul(a.c0, nine)
	t0.Sub(t0, a.c1)
	t1 := new(big.Int).Mul(a.c1, nine)
	t1.Add(t1, a.c0)
	return fp2{
		c0: new(big.Int).Mod(t0, pp.p),
		c1: new(big.Int).Mod(t1, pp.p),
	}
}

// inv returns 1/a = conj(a) / (a0^2 + a1^2).
func (a fp2) inv(pp *bnParams) fp2 {
	norm := new(big.Int).Mul(a.c0, a.c0)
	norm.Add(norm, new(big.Int).Mul(a.c1, a.c1))
	norm.Mod(norm, pp.p)
	ninv := new(big.Int).ModInverse(norm, pp.p)
	if ninv == nil {
		// Only the zero element is non-invertible in a field.
		return fp2Zero()
	}
	return fp2{
		c0: mathutil.MulMod(a.c0, ninv, pp.p),
		c1: mathutil.MulMod(mathutil.SubMod(big.NewInt(0), a.c1, pp.p), ninv, pp.p),
	}
}

// exp computes a^e by square-and-multiply.
func (a fp2) exp(e *big.Int, pp *bnParams) fp2 {
	acc := fp2One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc = acc.square(pp)
		if e.Bit(i) == 1 {
			acc = acc.mul(a, pp)
		}
	}
	return acc
}

// sqrt computes a square root in Fp2 if one exists, using the norm-based
// method for p ≡ 3 (mod 4). The result is verified by squaring.
func (a fp2) sqrt(pp *bnParams) (fp2, bool) {
	if a.isZero() {
		return fp2Zero(), true
	}
	if a.c1.Sign() == 0 {
		// a is in Fp: either sqrt(a0) in Fp or i*sqrt(-a0).
		if root, ok := mathutil.Sqrt3Mod4(a.c0, pp.p); ok {
			return fp2{c0: root, c1: big.NewInt(0)}, true
		}
		negA := mathutil.SubMod(big.NewInt(0), a.c0, pp.p)
		if root, ok := mathutil.Sqrt3Mod4(negA, pp.p); ok {
			return fp2{c0: big.NewInt(0), c1: root}, true
		}
		return fp2Zero(), false
	}
	// norm = a0^2 + a1^2 must be a square in Fp.
	norm := mathutil.AddMod(
		mathutil.MulMod(a.c0, a.c0, pp.p),
		mathutil.MulMod(a.c1, a.c1, pp.p), pp.p)
	s, ok := mathutil.Sqrt3Mod4(norm, pp.p)
	if !ok {
		return fp2Zero(), false
	}
	twoInv := new(big.Int).ModInverse(big.NewInt(2), pp.p)
	for _, sign := range []int{1, -1} {
		var delta *big.Int
		if sign == 1 {
			delta = mathutil.AddMod(a.c0, s, pp.p)
		} else {
			delta = mathutil.SubMod(a.c0, s, pp.p)
		}
		delta = mathutil.MulMod(delta, twoInv, pp.p)
		x0, ok := mathutil.Sqrt3Mod4(delta, pp.p)
		if !ok {
			continue
		}
		if x0.Sign() == 0 {
			continue
		}
		x1 := mathutil.MulMod(a.c1, twoInv, pp.p)
		x0inv := new(big.Int).ModInverse(x0, pp.p)
		x1 = mathutil.MulMod(x1, x0inv, pp.p)
		cand := fp2{c0: x0, c1: x1}
		if cand.square(pp).equal(fp2{c0: mathutil.Mod(a.c0, pp.p), c1: mathutil.Mod(a.c1, pp.p)}) {
			return cand, true
		}
	}
	return fp2Zero(), false
}

// bytes returns the fixed 64-byte big-endian encoding c0 || c1.
func (a fp2) bytes() []byte {
	out := make([]byte, 64)
	a.c0.FillBytes(out[:32])
	a.c1.FillBytes(out[32:])
	return out
}

func fp2FromBytes(data []byte, pp *bnParams) (fp2, bool) {
	if len(data) != 64 {
		return fp2{}, false
	}
	c0 := new(big.Int).SetBytes(data[:32])
	c1 := new(big.Int).SetBytes(data[32:])
	if c0.Cmp(pp.p) >= 0 || c1.Cmp(pp.p) >= 0 {
		return fp2{}, false
	}
	return fp2{c0: c0, c1: c1}, true
}
