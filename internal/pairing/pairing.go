package pairing

import (
	"math/big"

	"thetacrypt/internal/mathutil"
)

// GT is an element of the pairing target group, the order-r subgroup of
// Fp12*.
type GT struct {
	v fp12
}

// GTOne returns the neutral element of GT.
func GTOne() *GT { return &GT{v: fp12One()} }

// IsOne reports whether the element is the identity.
func (g *GT) IsOne() bool { return g.v.isOne() }

// Equal reports element equality.
func (g *GT) Equal(h *GT) bool { return g.v.equal(h.v) }

// Mul returns the product of two GT elements.
func (g *GT) Mul(h *GT) *GT { return &GT{v: g.v.mul(h.v, bn)} }

// Inv returns the inverse. GT elements lie in the cyclotomic subgroup,
// where inversion is conjugation.
func (g *GT) Inv() *GT { return &GT{v: g.v.conjugate(bn)} }

// Exp returns g^k with k reduced modulo r.
func (g *GT) Exp(k *big.Int) *GT {
	kk := new(big.Int).Mod(k, bn.r)
	return &GT{v: g.v.exp(kk, bn)}
}

// Marshal returns the canonical 384-byte encoding, suitable for hashing.
func (g *GT) Marshal() []byte { return g.v.bytes() }

// Pair computes the optimal ate pairing e(P, Q) ∈ GT.
func Pair(p *G1, q *G2) *GT {
	if p.IsIdentity() || q.IsIdentity() {
		return GTOne()
	}
	px, py, _ := p.affine()
	qx, qy, _ := q.affine()
	return &GT{v: finalExponentiation(millerLoopAte(px, py, qx, qy))}
}

// PairingCheck reports whether e(a1, b1) == e(a2, b2), the form used by
// BLS04 and BZ03 verification. It multiplies the Miller values of
// (a1, b1) and (a2, -b2) and applies a single final exponentiation, which
// halves the cost compared to two independent pairings.
func PairingCheck(a1 *G1, b1 *G2, a2 *G1, b2 *G2) bool {
	if a1.IsIdentity() || b1.IsIdentity() || a2.IsIdentity() || b2.IsIdentity() {
		return Pair(a1, b1).Equal(Pair(a2, b2))
	}
	p1x, p1y, _ := a1.affine()
	q1x, q1y, _ := b1.affine()
	p2x, p2y, _ := a2.affine()
	q2x, q2y, _ := b2.Neg().affine()
	f := millerLoopAte(p1x, p1y, q1x, q1y).mul(millerLoopAte(p2x, p2y, q2x, q2y), bn)
	return finalExponentiation(f).isOne()
}

// pairTate computes the reduced Tate pairing. It is retained as an
// independent reference implementation for property tests: both pairings
// must be bilinear and non-degenerate, and they expose disjoint Miller
// loop code paths.
//
// The Miller loop iterates over the group order r with line functions
// whose coefficients live in Fp (P-arithmetic); they are evaluated at the
// untwisted image ψ(Q) = (x_Q w^2, y_Q w^3) ∈ E(Fp12). Vertical lines and
// denominators lie in the subfield Fp6 and are eliminated by the final
// exponentiation, so they are skipped.
func pairTate(p *G1, q *G2) *GT {
	if p.IsIdentity() || q.IsIdentity() {
		return GTOne()
	}
	px, py, _ := p.affine()
	qx, qy, _ := q.affine()
	return &GT{v: finalExponentiation(millerLoopTate(px, py, qx, qy))}
}

// millerLoopTate computes f_{r,P}(ψ(Q)) for affine P = (px, py) and twist
// point Q = (qx, qy).
func millerLoopTate(px, py *big.Int, qx, qy fp2) fp12 {
	pp := bn
	f := fp12One()
	// T tracks multiples of P in affine coordinates over Fp.
	tx, ty := mathutil.Clone(px), mathutil.Clone(py)
	r := pp.r
	for i := r.BitLen() - 2; i >= 0; i-- {
		f = f.square(pp)
		f = f.mul(lineDouble(&tx, &ty, qx, qy), pp)
		if r.Bit(i) == 1 {
			if l, ok := lineAdd(&tx, &ty, px, py, qx, qy); ok {
				f = f.mul(l, pp)
			}
		}
	}
	return f
}

// lineDouble evaluates the tangent line at T = (tx, ty) at ψ(Q) and
// advances T to 2T. The affine slope λ = 3x^2 / 2y requires ty != 0, which
// holds for all points of odd prime order.
func lineDouble(tx, ty **big.Int, qx, qy fp2) fp12 {
	fp := bn.p
	x, y := *tx, *ty
	// λ = 3x^2 / (2y)
	num := mathutil.MulMod(big.NewInt(3), mathutil.MulMod(x, x, fp), fp)
	den := new(big.Int).ModInverse(mathutil.AddMod(y, y, fp), fp)
	lambda := mathutil.MulMod(num, den, fp)
	l := lineEval(lambda, x, y, qx, qy)
	// x3 = λ^2 - 2x ; y3 = λ(x - x3) - y
	x3 := mathutil.SubMod(mathutil.MulMod(lambda, lambda, fp), new(big.Int).Lsh(x, 1), fp)
	y3 := mathutil.SubMod(mathutil.MulMod(lambda, mathutil.SubMod(x, x3, fp), fp), y, fp)
	*tx, *ty = x3, y3
	return l
}

// lineAdd evaluates the line through T and P at ψ(Q) and advances T to
// T + P. ok is false for vertical lines (T = -P), whose contribution is
// eliminated by the final exponentiation; T is then set to infinity, which
// cannot occur before the last iteration of the Miller loop since r is the
// exact order of P.
func lineAdd(tx, ty **big.Int, px, py *big.Int, qx, qy fp2) (fp12, bool) {
	fp := bn.p
	x1, y1 := *tx, *ty
	if x1.Cmp(px) == 0 {
		if y1.Cmp(py) == 0 {
			return lineDouble(tx, ty, qx, qy), true
		}
		// Vertical line: T + P = O.
		*tx, *ty = big.NewInt(0), big.NewInt(0)
		return fp12{}, false
	}
	num := mathutil.SubMod(py, y1, fp)
	den := new(big.Int).ModInverse(mathutil.SubMod(px, x1, fp), fp)
	lambda := mathutil.MulMod(num, den, fp)
	l := lineEval(lambda, x1, y1, qx, qy)
	x3 := mathutil.SubMod(mathutil.SubMod(mathutil.MulMod(lambda, lambda, fp), x1, fp), px, fp)
	y3 := mathutil.SubMod(mathutil.MulMod(lambda, mathutil.SubMod(x1, x3, fp), fp), y1, fp)
	*tx, *ty = x3, y3
	return l, true
}

// lineEval computes l(ψ(Q)) = y_ψ - y_T - λ(x_ψ - x_T) as a sparse Fp12
// element, where ψ(Q) = (qx w^2, qy w^3):
//
//	constant term (Fp):        λ x_T - y_T
//	coefficient of v (= w^2):  -λ qx      (Fp2, in c0.c1)
//	coefficient of v w (= w^3): qy        (Fp2, in c1.c1)
func lineEval(lambda, xt, yt *big.Int, qx, qy fp2) fp12 {
	fp := bn.p
	c := mathutil.SubMod(mathutil.MulMod(lambda, xt, fp), yt, fp)
	negLambda := mathutil.SubMod(big.NewInt(0), lambda, fp)
	return fp12{
		c0: fp6{
			c0: fp2{c0: c, c1: big.NewInt(0)},
			c1: qx.mulScalar(negLambda, bn),
			c2: fp2Zero(),
		},
		c1: fp6{
			c0: fp2Zero(),
			c1: qy.clone(),
			c2: fp2Zero(),
		},
	}
}

// finalExponentiation raises the Miller value to (p^12 - 1)/r. The easy
// part (p^6-1)(p^2+1) uses conjugation, one inversion, and Frobenius; the
// hard part (p^4 - p^2 + 1)/r uses the standard BN addition chain with
// three exponentiations by the curve parameter u.
func finalExponentiation(in fp12) fp12 {
	pp := bn

	// Easy part: t1 = in^(p^6 - 1) = conj(in) * in^-1, then t1 ^= (p^2 + 1).
	t1 := in.conjugate(pp).mul(in.inv(pp), pp)
	t1 = t1.frobeniusP2(pp).mul(t1, pp)

	// Hard part (Devegili et al. addition chain).
	fp := t1.frobenius(pp)
	fp2v := t1.frobeniusP2(pp)
	fp3 := fp2v.frobenius(pp)

	fu := t1.exp(pp.u, pp)
	fu2 := fu.exp(pp.u, pp)
	fu3 := fu2.exp(pp.u, pp)

	y3 := fu.frobenius(pp)
	fu2p := fu2.frobenius(pp)
	fu3p := fu3.frobenius(pp)
	y2 := fu2.frobeniusP2(pp)

	y0 := fp.mul(fp2v, pp).mul(fp3, pp)
	y1 := t1.conjugate(pp)
	y5 := fu2.conjugate(pp)
	y3 = y3.conjugate(pp)
	y4 := fu.mul(fu2p, pp).conjugate(pp)
	y6 := fu3.mul(fu3p, pp).conjugate(pp)

	t0 := y6.square(pp).mul(y4, pp).mul(y5, pp)
	t1b := y3.mul(y5, pp).mul(t0, pp)
	t0 = t0.mul(y2, pp)
	t1b = t1b.square(pp).mul(t0, pp).square(pp)
	t0 = t1b.mul(y1, pp)
	t1b = t1b.mul(y0, pp)
	t0 = t0.square(pp).mul(t1b, pp)
	return t0
}
