package pairing

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestG1GeneratorOrder(t *testing.T) {
	g := G1Generator()
	if !onCurveG1(big.NewInt(1), big.NewInt(2)) {
		t.Fatal("G1 generator not on curve")
	}
	// (r-1)G == -G implies rG == O without tripping the mod-r reduction.
	rm1 := new(big.Int).Sub(bn.r, big.NewInt(1))
	if !g.Mul(rm1).Equal(g.Neg()) {
		t.Fatal("(r-1)G != -G")
	}
}

func TestG2GeneratorOnTwistAndOrder(t *testing.T) {
	g := G2Generator()
	if !onTwist(bn.g2GenX, bn.g2GenY) {
		t.Fatal("G2 generator not on twist")
	}
	if !g.mulRaw(bn.r).IsIdentity() {
		t.Fatal("rG2 != identity: generator not in order-r subgroup")
	}
}

func TestG1GroupLaws(t *testing.T) {
	a, pa, err := RandomG1(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, pb, _ := RandomG1(rand.Reader)
	if !pa.Add(pb).Equal(pb.Add(pa)) {
		t.Fatal("G1 addition not commutative")
	}
	sum := new(big.Int).Add(a, b)
	if !G1BaseMul(sum).Equal(pa.Add(pb)) {
		t.Fatal("(a+b)G != aG + bG in G1")
	}
	if !pa.Add(pa.Neg()).IsIdentity() {
		t.Fatal("P + (-P) != O in G1")
	}
	if !pa.Add(pa).Equal(pa.Double()) {
		t.Fatal("P + P != 2P in G1")
	}
	if !pa.Add(G1Identity()).Equal(pa) {
		t.Fatal("identity not neutral in G1")
	}
}

func TestG2GroupLaws(t *testing.T) {
	a, pa, err := RandomG2(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b, pb, _ := RandomG2(rand.Reader)
	if !pa.Add(pb).Equal(pb.Add(pa)) {
		t.Fatal("G2 addition not commutative")
	}
	sum := new(big.Int).Add(a, b)
	if !G2BaseMul(sum).Equal(pa.Add(pb)) {
		t.Fatal("(a+b)G != aG + bG in G2")
	}
	if !pa.Add(pa.Neg()).IsIdentity() {
		t.Fatal("P + (-P) != O in G2")
	}
	if !pa.Add(pa).Equal(pa.Double()) {
		t.Fatal("P + P != 2P in G2")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	e := Pair(G1Generator(), G2Generator())
	if e.IsOne() {
		t.Fatal("e(G1, G2) == 1: degenerate pairing")
	}
	if !e.Exp(bn.r).IsOne() {
		t.Fatal("e(G1, G2)^r != 1: pairing value outside order-r subgroup")
	}
}

func TestPairingBilinearity(t *testing.T) {
	a, _ := rand.Int(rand.Reader, bn.r)
	b, _ := rand.Int(rand.Reader, bn.r)

	base := Pair(G1Generator(), G2Generator())
	lhs := Pair(G1BaseMul(a), G2BaseMul(b))
	ab := new(big.Int).Mul(a, b)
	if !lhs.Equal(base.Exp(ab)) {
		t.Fatal("e(aP, bQ) != e(P, Q)^(ab)")
	}
	// Swapping the scalars between arguments must not matter.
	if !Pair(G1BaseMul(b), G2BaseMul(a)).Equal(lhs) {
		t.Fatal("e(bP, aQ) != e(aP, bQ)")
	}
}

func TestPairingAdditivity(t *testing.T) {
	_, p1, _ := RandomG1(rand.Reader)
	_, p2, _ := RandomG1(rand.Reader)
	_, q, _ := RandomG2(rand.Reader)
	lhs := Pair(p1.Add(p2), q)
	rhs := Pair(p1, q).Mul(Pair(p2, q))
	if !lhs.Equal(rhs) {
		t.Fatal("e(P1+P2, Q) != e(P1, Q) e(P2, Q)")
	}
}

func TestPairingIdentity(t *testing.T) {
	if !Pair(G1Identity(), G2Generator()).IsOne() {
		t.Fatal("e(O, Q) != 1")
	}
	if !Pair(G1Generator(), G2Identity()).IsOne() {
		t.Fatal("e(P, O) != 1")
	}
}

func TestPairingCheck(t *testing.T) {
	// e(aG1, G2) == e(G1, aG2).
	a, _ := rand.Int(rand.Reader, bn.r)
	if !PairingCheck(G1BaseMul(a), G2Generator(), G1Generator(), G2BaseMul(a)) {
		t.Fatal("PairingCheck rejected a valid relation")
	}
	if PairingCheck(G1BaseMul(a), G2Generator(), G1Generator(), G2Generator()) {
		t.Fatal("PairingCheck accepted an invalid relation")
	}
}

func TestG1MarshalRoundTrip(t *testing.T) {
	_, p, _ := RandomG1(rand.Reader)
	q, ok := UnmarshalG1(p.Marshal())
	if !ok {
		t.Fatal("unmarshal of valid G1 point rejected")
	}
	if !p.Equal(q) {
		t.Fatal("G1 marshal round trip mismatch")
	}
	id, ok := UnmarshalG1(G1Identity().Marshal())
	if !ok || !id.IsIdentity() {
		t.Fatal("G1 identity round trip mismatch")
	}
	if _, ok := UnmarshalG1(make([]byte, 3)); ok {
		t.Fatal("short G1 encoding accepted")
	}
	bad := p.Marshal()
	bad[10] ^= 1
	if _, ok := UnmarshalG1(bad); ok {
		t.Fatal("off-curve G1 encoding accepted")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	_, p, _ := RandomG2(rand.Reader)
	q, ok := UnmarshalG2(p.Marshal())
	if !ok {
		t.Fatal("unmarshal of valid G2 point rejected")
	}
	if !p.Equal(q) {
		t.Fatal("G2 marshal round trip mismatch")
	}
	id, ok := UnmarshalG2(G2Identity().Marshal())
	if !ok || !id.IsIdentity() {
		t.Fatal("G2 identity round trip mismatch")
	}
	bad := p.Marshal()
	bad[40] ^= 1
	if _, ok := UnmarshalG2(bad); ok {
		t.Fatal("off-twist G2 encoding accepted")
	}
}

func TestHashToG1(t *testing.T) {
	p := HashToG1("test", []byte("msg"))
	if p.IsIdentity() {
		t.Fatal("hash produced identity")
	}
	x, y, _ := p.affine()
	if !onCurveG1(x, y) {
		t.Fatal("hash output off curve")
	}
	if !p.Equal(HashToG1("test", []byte("msg"))) {
		t.Fatal("hash not deterministic")
	}
	if p.Equal(HashToG1("test", []byte("other"))) {
		t.Fatal("distinct messages collided")
	}
}

func TestHashToG2(t *testing.T) {
	p := HashToG2("test", []byte("msg"))
	if p.IsIdentity() {
		t.Fatal("hash produced identity")
	}
	if !p.mulRaw(bn.r).IsIdentity() {
		t.Fatal("hash output outside order-r subgroup")
	}
	if !p.Equal(HashToG2("test", []byte("msg"))) {
		t.Fatal("hash not deterministic")
	}
}

func TestFp2Sqrt(t *testing.T) {
	for i := 0; i < 8; i++ {
		c0, _ := rand.Int(rand.Reader, bn.p)
		c1, _ := rand.Int(rand.Reader, bn.p)
		a := fp2{c0: c0, c1: c1}
		sq := a.square(bn)
		root, ok := sq.sqrt(bn)
		if !ok {
			t.Fatal("square of an element reported as non-residue")
		}
		if !root.square(bn).equal(sq) {
			t.Fatal("sqrt result does not square back")
		}
	}
}

func TestFp12FieldLaws(t *testing.T) {
	randFp12 := func() fp12 {
		el := fp12One()
		for i := 0; i < 2; i++ {
			k, _ := rand.Int(rand.Reader, bn.r)
			el = el.mul(Pair(G1BaseMul(k), G2Generator()).v, bn)
		}
		return el
	}
	a := randFp12()
	b := randFp12()
	if !a.mul(b, bn).equal(b.mul(a, bn)) {
		t.Fatal("Fp12 multiplication not commutative")
	}
	if !a.mul(a.inv(bn), bn).isOne() {
		t.Fatal("a * a^-1 != 1 in Fp12")
	}
	if !a.square(bn).equal(a.mul(a, bn)) {
		t.Fatal("square != mul(self) in Fp12")
	}
	// Frobenius has order 12: applying it twelve times is the identity map.
	f := a
	for i := 0; i < 12; i++ {
		f = f.frobenius(bn)
	}
	if !f.equal(a) {
		t.Fatal("Frobenius^12 != identity")
	}
}

func TestGTExpHomomorphism(t *testing.T) {
	base := Pair(G1Generator(), G2Generator())
	a, _ := rand.Int(rand.Reader, bn.r)
	b, _ := rand.Int(rand.Reader, bn.r)
	lhs := base.Exp(a).Mul(base.Exp(b))
	rhs := base.Exp(new(big.Int).Add(a, b))
	if !lhs.Equal(rhs) {
		t.Fatal("GT exponent addition homomorphism violated")
	}
	if !base.Exp(a).Mul(base.Exp(a).Inv()).IsOne() {
		t.Fatal("g * g^-1 != 1 in GT")
	}
}

func BenchmarkPair(b *testing.B) {
	p := G1Generator()
	q := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(p, q)
	}
}

func BenchmarkG1ScalarMult(b *testing.B) {
	k, _ := rand.Int(rand.Reader, bn.r)
	p := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Mul(k)
	}
}

func BenchmarkG2ScalarMult(b *testing.B) {
	k, _ := rand.Int(rand.Reader, bn.r)
	p := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Mul(k)
	}
}

func TestAteBilinearityMatrix(t *testing.T) {
	// e(aP, bQ) == e(abP, Q) == e(P, abQ) for the default (ate) pairing.
	a, _ := rand.Int(rand.Reader, bn.r)
	b, _ := rand.Int(rand.Reader, bn.r)
	ab := new(big.Int).Mul(a, b)
	e1 := Pair(G1BaseMul(a), G2BaseMul(b))
	e2 := Pair(G1BaseMul(ab), G2Generator())
	e3 := Pair(G1Generator(), G2BaseMul(ab))
	if !e1.Equal(e2) || !e1.Equal(e3) {
		t.Fatal("ate pairing bilinearity violated")
	}
}

func TestTateReferencePairing(t *testing.T) {
	// The Tate reference implementation must independently be bilinear
	// and non-degenerate.
	a, _ := rand.Int(rand.Reader, bn.r)
	base := pairTate(G1Generator(), G2Generator())
	if base.IsOne() {
		t.Fatal("Tate pairing degenerate")
	}
	if !pairTate(G1BaseMul(a), G2Generator()).Equal(base.Exp(a)) {
		t.Fatal("Tate pairing not bilinear")
	}
	if !pairTate(G1Generator(), G2BaseMul(a)).Equal(base.Exp(a)) {
		t.Fatal("Tate pairing not bilinear in second argument")
	}
}

func BenchmarkPairTate(b *testing.B) {
	p := G1Generator()
	q := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairTate(p, q)
	}
}

func BenchmarkPairingCheck(b *testing.B) {
	a, _ := rand.Int(rand.Reader, bn.r)
	p := G1BaseMul(a)
	q := G2BaseMul(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !PairingCheck(p, G2Generator(), G1Generator(), q) {
			b.Fatal("check failed")
		}
	}
}
