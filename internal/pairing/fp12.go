package pairing

import "math/big"

// fp12 is an element of Fp12 = Fp6[w]/(w^2 - v), represented as c0 + c1*w.
// The pairing target group GT is the order-r subgroup of Fp12*.
type fp12 struct {
	c0, c1 fp6
}

func fp12One() fp12 { return fp12{c0: fp6One(), c1: fp6Zero()} }

func (a fp12) isOne() bool { return a.c0.equal(fp6One()) && a.c1.isZero() }

func (a fp12) equal(b fp12) bool { return a.c0.equal(b.c0) && a.c1.equal(b.c1) }

func (a fp12) mul(b fp12, pp *bnParams) fp12 {
	t0 := a.c0.mul(b.c0, pp)
	t1 := a.c1.mul(b.c1, pp)
	// c0 = t0 + v*t1 ; c1 = (a0+a1)(b0+b1) - t0 - t1
	c0 := t0.add(t1.mulByV(pp), pp)
	c1 := a.c0.add(a.c1, pp).mul(b.c0.add(b.c1, pp), pp).sub(t0, pp).sub(t1, pp)
	return fp12{c0: c0, c1: c1}
}

func (a fp12) square(pp *bnParams) fp12 {
	// Complex squaring: c0' = (c0 + c1)(c0 + v c1) - t - v t ; c1' = 2t
	// with t = c0 c1.
	t := a.c0.mul(a.c1, pp)
	s := a.c0.add(a.c1, pp).mul(a.c0.add(a.c1.mulByV(pp), pp), pp)
	c0 := s.sub(t, pp).sub(t.mulByV(pp), pp)
	c1 := t.add(t, pp)
	return fp12{c0: c0, c1: c1}
}

// conjugate maps c0 + c1 w to c0 - c1 w, which equals a^(p^6). For
// elements of the cyclotomic subgroup (all pairing values after the easy
// part) the conjugate is the inverse.
func (a fp12) conjugate(pp *bnParams) fp12 {
	return fp12{c0: a.c0.clone(), c1: a.c1.neg(pp)}
}

func (a fp12) inv(pp *bnParams) fp12 {
	// 1/(c0 + c1 w) = (c0 - c1 w) / (c0^2 - v c1^2)
	t := a.c0.square(pp).sub(a.c1.square(pp).mulByV(pp), pp)
	tinv := t.inv(pp)
	return fp12{c0: a.c0.mul(tinv, pp), c1: a.c1.neg(pp).mul(tinv, pp)}
}

func (a fp12) exp(e *big.Int, pp *bnParams) fp12 {
	acc := fp12One()
	for i := e.BitLen() - 1; i >= 0; i-- {
		acc = acc.square(pp)
		if e.Bit(i) == 1 {
			acc = acc.mul(a, pp)
		}
	}
	return acc
}

// frobenius applies the p-power Frobenius: with w^p = γ1 w,
// (g + h w)^p = g^p + h^p γ1 w, where g^p, h^p use the Fp6 Frobenius
// except that h's coefficients pick up odd γ constants:
// h = h0 + h1 v + h2 v^2 maps to conj(h0) γ1 + conj(h1) γ3 v + conj(h2) γ5 v^2.
func (a fp12) frobenius(pp *bnParams) fp12 {
	g := a.c0.frobenius(pp)
	h := fp6{
		c0: a.c1.c0.conj(pp).mul(pp.frobGamma[1], pp),
		c1: a.c1.c1.conj(pp).mul(pp.frobGamma[3], pp),
		c2: a.c1.c2.conj(pp).mul(pp.frobGamma[5], pp),
	}
	return fp12{c0: g, c1: h}
}

func (a fp12) frobeniusP2(pp *bnParams) fp12 {
	return a.frobenius(pp).frobenius(pp)
}

// bytes returns the canonical 384-byte encoding (12 field elements,
// big-endian, tower order c0.c0.c0, c0.c0.c1, ..., c1.c2.c1).
func (a fp12) bytes() []byte {
	out := make([]byte, 0, 384)
	for _, six := range []fp6{a.c0, a.c1} {
		for _, two := range []fp2{six.c0, six.c1, six.c2} {
			out = append(out, two.bytes()...)
		}
	}
	return out
}
