package pairing

import (
	"crypto/sha256"
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
)

// G1 is a point on E(Fp): y^2 = x^3 + 3, in Jacobian coordinates
// (x = X/Z^2, y = Y/Z^3). The group has prime order r (cofactor 1).
// Operations are functional and never mutate the receiver.
type G1 struct {
	x, y, z *big.Int
}

// G1Identity returns the point at infinity.
func G1Identity() *G1 {
	return &G1{x: big.NewInt(1), y: big.NewInt(1), z: big.NewInt(0)}
}

// G1Generator returns the standard generator (1, 2).
func G1Generator() *G1 {
	return &G1{x: big.NewInt(1), y: big.NewInt(2), z: big.NewInt(1)}
}

// G1BaseMul returns k * G1Generator().
func G1BaseMul(k *big.Int) *G1 { return G1Generator().Mul(k) }

// RandomG1 returns (k, k*G) for a uniform scalar k.
func RandomG1(r io.Reader) (*big.Int, *G1, error) {
	k, err := mathutil.RandInt(r, bn.r)
	if err != nil {
		return nil, nil, err
	}
	return k, G1BaseMul(k), nil
}

// IsIdentity reports whether the point is at infinity.
func (p *G1) IsIdentity() bool { return p.z.Sign() == 0 }

// Add returns p + q.
func (p *G1) Add(q *G1) *G1 {
	if p.IsIdentity() {
		return q.clone()
	}
	if q.IsIdentity() {
		return p.clone()
	}
	fp := bn.p
	z1z1 := mathutil.MulMod(p.z, p.z, fp)
	z2z2 := mathutil.MulMod(q.z, q.z, fp)
	u1 := mathutil.MulMod(p.x, z2z2, fp)
	u2 := mathutil.MulMod(q.x, z1z1, fp)
	s1 := mathutil.MulMod(mathutil.MulMod(p.y, q.z, fp), z2z2, fp)
	s2 := mathutil.MulMod(mathutil.MulMod(q.y, p.z, fp), z1z1, fp)
	h := mathutil.SubMod(u2, u1, fp)
	rr := mathutil.SubMod(s2, s1, fp)
	if h.Sign() == 0 {
		if rr.Sign() == 0 {
			return p.Double()
		}
		return G1Identity()
	}
	i := mathutil.MulMod(new(big.Int).Lsh(h, 1), new(big.Int).Lsh(h, 1), fp)
	j := mathutil.MulMod(h, i, fp)
	rr = mathutil.AddMod(rr, rr, fp)
	v := mathutil.MulMod(u1, i, fp)
	x3 := mathutil.SubMod(mathutil.SubMod(mathutil.MulMod(rr, rr, fp), j, fp), new(big.Int).Lsh(v, 1), fp)
	y3 := mathutil.SubMod(
		mathutil.MulMod(rr, mathutil.SubMod(v, x3, fp), fp),
		mathutil.MulMod(new(big.Int).Lsh(s1, 1), j, fp), fp)
	zs := mathutil.AddMod(p.z, q.z, fp)
	z3 := mathutil.MulMod(
		mathutil.SubMod(mathutil.SubMod(mathutil.MulMod(zs, zs, fp), z1z1, fp), z2z2, fp), h, fp)
	return &G1{x: x3, y: y3, z: z3}
}

// Double returns 2p using the a = 0 doubling formulas.
func (p *G1) Double() *G1 {
	if p.IsIdentity() {
		return G1Identity()
	}
	fp := bn.p
	a := mathutil.MulMod(p.x, p.x, fp)
	b := mathutil.MulMod(p.y, p.y, fp)
	c := mathutil.MulMod(b, b, fp)
	xb := mathutil.AddMod(p.x, b, fp)
	d := mathutil.SubMod(mathutil.SubMod(mathutil.MulMod(xb, xb, fp), a, fp), c, fp)
	d = mathutil.AddMod(d, d, fp)
	e := mathutil.AddMod(mathutil.AddMod(a, a, fp), a, fp)
	f := mathutil.MulMod(e, e, fp)
	x3 := mathutil.SubMod(f, new(big.Int).Lsh(d, 1), fp)
	c8 := new(big.Int).Lsh(c, 3)
	y3 := mathutil.SubMod(mathutil.MulMod(e, mathutil.SubMod(d, x3, fp), fp), c8, fp)
	z3 := mathutil.MulMod(new(big.Int).Lsh(p.y, 1), p.z, fp)
	return &G1{x: x3, y: y3, z: z3}
}

// Neg returns -p.
func (p *G1) Neg() *G1 {
	if p.IsIdentity() {
		return G1Identity()
	}
	return &G1{
		x: mathutil.Clone(p.x),
		y: mathutil.SubMod(big.NewInt(0), p.y, bn.p),
		z: mathutil.Clone(p.z),
	}
}

// Mul returns k*p; k is reduced modulo r.
func (p *G1) Mul(k *big.Int) *G1 {
	kk := new(big.Int).Mod(k, bn.r)
	acc := G1Identity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = acc.Double()
		if kk.Bit(i) == 1 {
			acc = acc.Add(p)
		}
	}
	return acc
}

// Equal reports whether two Jacobian representations denote the same
// affine point.
func (p *G1) Equal(q *G1) bool {
	if p.IsIdentity() || q.IsIdentity() {
		return p.IsIdentity() == q.IsIdentity()
	}
	fp := bn.p
	z1z1 := mathutil.MulMod(p.z, p.z, fp)
	z2z2 := mathutil.MulMod(q.z, q.z, fp)
	if mathutil.MulMod(p.x, z2z2, fp).Cmp(mathutil.MulMod(q.x, z1z1, fp)) != 0 {
		return false
	}
	z1c := mathutil.MulMod(z1z1, p.z, fp)
	z2c := mathutil.MulMod(z2z2, q.z, fp)
	return mathutil.MulMod(p.y, z2c, fp).Cmp(mathutil.MulMod(q.y, z1c, fp)) == 0
}

// affine returns the affine coordinates; ok is false at infinity.
func (p *G1) affine() (x, y *big.Int, ok bool) {
	if p.IsIdentity() {
		return nil, nil, false
	}
	fp := bn.p
	zinv := new(big.Int).ModInverse(p.z, fp)
	zinv2 := mathutil.MulMod(zinv, zinv, fp)
	x = mathutil.MulMod(p.x, zinv2, fp)
	y = mathutil.MulMod(p.y, mathutil.MulMod(zinv2, zinv, fp), fp)
	return x, y, true
}

func (p *G1) clone() *G1 {
	return &G1{x: mathutil.Clone(p.x), y: mathutil.Clone(p.y), z: mathutil.Clone(p.z)}
}

// Marshal returns a 65-byte encoding: 0x00-prefixed zeros for infinity or
// 0x04 || x || y.
func (p *G1) Marshal() []byte {
	out := make([]byte, 65)
	x, y, ok := p.affine()
	if !ok {
		return out
	}
	out[0] = 4
	x.FillBytes(out[1:33])
	y.FillBytes(out[33:])
	return out
}

// UnmarshalG1 decodes and validates a G1 encoding (on-curve check; the
// cofactor is 1 so no subgroup check is required).
func UnmarshalG1(data []byte) (*G1, bool) {
	if len(data) != 65 {
		return nil, false
	}
	if data[0] == 0 {
		for _, b := range data[1:] {
			if b != 0 {
				return nil, false
			}
		}
		return G1Identity(), true
	}
	if data[0] != 4 {
		return nil, false
	}
	x := new(big.Int).SetBytes(data[1:33])
	y := new(big.Int).SetBytes(data[33:])
	if x.Cmp(bn.p) >= 0 || y.Cmp(bn.p) >= 0 {
		return nil, false
	}
	if !onCurveG1(x, y) {
		return nil, false
	}
	return &G1{x: x, y: y, z: big.NewInt(1)}, true
}

func onCurveG1(x, y *big.Int) bool {
	fp := bn.p
	lhs := mathutil.MulMod(y, y, fp)
	rhs := mathutil.AddMod(mathutil.MulMod(mathutil.MulMod(x, x, fp), x, fp), bn.b, fp)
	return lhs.Cmp(rhs) == 0
}

// HashToG1 maps domain-separated input onto G1 by try-and-increment.
func HashToG1(domain string, data ...[]byte) *G1 {
	seed := hashSeed("thetacrypt/bn254g1/"+domain, data)
	for ctr := uint64(0); ; ctr++ {
		x := hashCandidate(seed, ctr, bn.p)
		if x == nil {
			continue
		}
		y2 := mathutil.AddMod(mathutil.MulMod(mathutil.MulMod(x, x, bn.p), x, bn.p), bn.b, bn.p)
		y, ok := mathutil.Sqrt3Mod4(y2, bn.p)
		if !ok {
			continue
		}
		if y.Bit(0) == 1 {
			y = mathutil.SubMod(big.NewInt(0), y, bn.p)
		}
		return &G1{x: x, y: y, z: big.NewInt(1)}
	}
}

func hashSeed(domain string, data [][]byte) []byte {
	h := sha256.New()
	h.Write([]byte(domain))
	for _, d := range data {
		var lenbuf [8]byte
		for i := 7; i >= 0; i-- {
			lenbuf[i] = byte(len(d) >> (8 * (7 - i)))
		}
		h.Write(lenbuf[:])
		h.Write(d)
	}
	return h.Sum(nil)
}

// hashCandidate expands seed||ctr to a field element, or nil when the
// digest falls outside [0, mod).
func hashCandidate(seed []byte, ctr uint64, mod *big.Int) *big.Int {
	h := sha256.New()
	h.Write(seed)
	var cb [8]byte
	for i := 7; i >= 0; i-- {
		cb[i] = byte(ctr >> (8 * (7 - i)))
	}
	h.Write(cb[:])
	x := new(big.Int).SetBytes(h.Sum(nil))
	if x.Cmp(mod) >= 0 {
		return nil
	}
	return x
}
