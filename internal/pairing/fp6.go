package pairing

// fp6 is an element of Fp6 = Fp2[v]/(v^3 - ξ), represented as
// c0 + c1*v + c2*v^2.
type fp6 struct {
	c0, c1, c2 fp2
}

func fp6Zero() fp6 { return fp6{c0: fp2Zero(), c1: fp2Zero(), c2: fp2Zero()} }
func fp6One() fp6  { return fp6{c0: fp2One(), c1: fp2Zero(), c2: fp2Zero()} }

func (a fp6) isZero() bool { return a.c0.isZero() && a.c1.isZero() && a.c2.isZero() }

func (a fp6) equal(b fp6) bool {
	return a.c0.equal(b.c0) && a.c1.equal(b.c1) && a.c2.equal(b.c2)
}

func (a fp6) add(b fp6, pp *bnParams) fp6 {
	return fp6{c0: a.c0.add(b.c0, pp), c1: a.c1.add(b.c1, pp), c2: a.c2.add(b.c2, pp)}
}

func (a fp6) sub(b fp6, pp *bnParams) fp6 {
	return fp6{c0: a.c0.sub(b.c0, pp), c1: a.c1.sub(b.c1, pp), c2: a.c2.sub(b.c2, pp)}
}

func (a fp6) neg(pp *bnParams) fp6 {
	return fp6{c0: a.c0.neg(pp), c1: a.c1.neg(pp), c2: a.c2.neg(pp)}
}

// mul uses the Karatsuba-style interpolation for cubic extensions.
func (a fp6) mul(b fp6, pp *bnParams) fp6 {
	t0 := a.c0.mul(b.c0, pp)
	t1 := a.c1.mul(b.c1, pp)
	t2 := a.c2.mul(b.c2, pp)

	// c0 = t0 + ξ((a1+a2)(b1+b2) - t1 - t2)
	s12 := a.c1.add(a.c2, pp).mul(b.c1.add(b.c2, pp), pp).sub(t1, pp).sub(t2, pp)
	c0 := t0.add(s12.mulByXi(pp), pp)

	// c1 = (a0+a1)(b0+b1) - t0 - t1 + ξ t2
	s01 := a.c0.add(a.c1, pp).mul(b.c0.add(b.c1, pp), pp).sub(t0, pp).sub(t1, pp)
	c1 := s01.add(t2.mulByXi(pp), pp)

	// c2 = (a0+a2)(b0+b2) - t0 - t2 + t1
	s02 := a.c0.add(a.c2, pp).mul(b.c0.add(b.c2, pp), pp).sub(t0, pp).sub(t2, pp)
	c2 := s02.add(t1, pp)

	return fp6{c0: c0, c1: c1, c2: c2}
}

func (a fp6) square(pp *bnParams) fp6 { return a.mul(a, pp) }

// mulByV multiplies by v: (c0 + c1 v + c2 v^2) * v = ξ c2 + c0 v + c1 v^2.
func (a fp6) mulByV(pp *bnParams) fp6 {
	return fp6{c0: a.c2.mulByXi(pp), c1: a.c0.clone(), c2: a.c1.clone()}
}

// mulByFp2 multiplies every coefficient by an Fp2 element.
func (a fp6) mulByFp2(k fp2, pp *bnParams) fp6 {
	return fp6{c0: a.c0.mul(k, pp), c1: a.c1.mul(k, pp), c2: a.c2.mul(k, pp)}
}

// inv computes the inverse using the standard norm-based method for cubic
// extensions.
func (a fp6) inv(pp *bnParams) fp6 {
	// A = c0^2 - ξ c1 c2
	A := a.c0.square(pp).sub(a.c1.mul(a.c2, pp).mulByXi(pp), pp)
	// B = ξ c2^2 - c0 c1
	B := a.c2.square(pp).mulByXi(pp).sub(a.c0.mul(a.c1, pp), pp)
	// C = c1^2 - c0 c2
	C := a.c1.square(pp).sub(a.c0.mul(a.c2, pp), pp)
	// F = c0 A + ξ(c2 B + c1 C)
	F := a.c2.mul(B, pp).add(a.c1.mul(C, pp), pp).mulByXi(pp).add(a.c0.mul(A, pp), pp)
	Finv := F.inv(pp)
	return fp6{c0: A.mul(Finv, pp), c1: B.mul(Finv, pp), c2: C.mul(Finv, pp)}
}

// frobenius applies the p-power Frobenius endomorphism:
// (c0 + c1 v + c2 v^2)^p = conj(c0) + conj(c1) γ2 v + conj(c2) γ4 v^2.
func (a fp6) frobenius(pp *bnParams) fp6 {
	return fp6{
		c0: a.c0.conj(pp),
		c1: a.c1.conj(pp).mul(pp.frobGamma[2], pp),
		c2: a.c2.conj(pp).mul(pp.frobGamma[4], pp),
	}
}

func (a fp6) clone() fp6 {
	return fp6{c0: a.c0.clone(), c1: a.c1.clone(), c2: a.c2.clone()}
}
