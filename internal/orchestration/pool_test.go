package orchestration

import (
	"context"
	"sync"
	"testing"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/frost"
)

// countingNet wraps a P2P endpoint and counts engine-level protocol
// broadcasts per instance — the observable round count of a run (the
// reliability layer's resends happen below this wrapper and are not
// counted).
type countingNet struct {
	network.P2P
	mu     *sync.Mutex
	counts map[string]int
}

func (c *countingNet) Broadcast(ctx context.Context, env network.Envelope) error {
	if env.Kind == network.KindProto {
		c.mu.Lock()
		c.counts[env.Instance]++
		c.mu.Unlock()
	}
	return c.P2P.Broadcast(ctx, env)
}

func (c *countingNet) Send(ctx context.Context, to int, env network.Envelope) error {
	if env.Kind == network.KindProto {
		c.mu.Lock()
		c.counts[env.Instance]++
		c.mu.Unlock()
	}
	return c.P2P.Send(ctx, to, env)
}

// poolCluster builds a KG20 cluster with nonce pooling at the given
// depth on every node and a broadcast counter shared across them. The
// background pooler is effectively disabled (1h interval) so tests
// control warm-up explicitly through WarmNoncePools.
func poolCluster(t *testing.T, tt, n, depth int) (*cluster, *countingNet) {
	t.Helper()
	counter := &countingNet{mu: &sync.Mutex{}, counts: make(map[string]int)}
	c := newCluster(t, tt, n, memnet.Options{}, func(cfg *Config) {
		cfg.FrostPoolDepth = depth
		cfg.PoolInterval = time.Hour
		cfg.Net = &countingNet{P2P: cfg.Net, mu: counter.mu, counts: counter.counts}
	})
	return c, counter
}

func (c *countingNet) count(instance string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[instance]
}

// signOnce submits one KG20 sign on the first engine only (the
// announce/adopt deployment model) and returns the instance ID after
// verifying the signature.
func signOnce(t *testing.T, c *cluster, session string, msg []byte) string {
	t.Helper()
	return signOnceOn(t, c, 0, session, msg)
}

// signOnceOn is signOnce submitting on the engine with the given index.
func signOnceOn(t *testing.T, c *cluster, engine int, session string, msg []byte) string {
	t.Helper()
	req := protocols.Request{Scheme: schemes.KG20, Op: protocols.OpSign, Payload: msg, Session: session}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	f, err := c.engines[engine].Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("sign failed: %v", res.Err)
	}
	pk := keys.MustPublic[*frost.PublicKey](c.nodes[0], schemes.KG20)
	sig, err := frost.UnmarshalSignature(pk.Group, res.Value)
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(pk, msg, sig); err != nil {
		t.Fatalf("signature does not verify: %v", err)
	}
	return req.InstanceID()
}

func warmPools(t *testing.T, c *cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, e := range c.engines {
		if err := e.WarmNoncePools(ctx); err != nil {
			t.Fatalf("engine %d warm: %v", i+1, err)
		}
	}
}

// TestFrostPooledSigningOneRound is the PR's headline claim: with a
// warm nonce pool, online FROST signing is ONE protocol message round —
// one broadcast per signer (the initiator's start and each follower's
// reply) — against two per signer on the classic path.
func TestFrostPooledSigningOneRound(t *testing.T) {
	const tt, n = 1, 4 // signer group {1, 2}
	c, counter := poolCluster(t, tt, n, 4)
	warmPools(t, c)

	id := signOnce(t, c, "pooled-1", []byte("one-round tx"))
	signers := tt + 1
	if got := counter.count(id); got != signers {
		t.Fatalf("pooled sign used %d protocol broadcasts, want %d (one per signer)", got, signers)
	}

	// The classic two-round path on the same topology, for contrast:
	// a cold pool (depth drained below) must still finish, at two
	// broadcasts per signer.
	st := c.engines[0].Stats().Crypto
	if st.NonceRefills == 0 {
		t.Fatal("warm-up did not refill the pool")
	}
	if st.NonceExhaustions != 0 {
		t.Fatalf("warm pool reported %d exhaustions", st.NonceExhaustions)
	}
}

// TestFrostColdPoolDegradesToTwoRounds: an exhausted (never warmed)
// pool must not fail the request — the protocol falls back to the
// classic two-round path, and the exhaustion is counted.
func TestFrostColdPoolDegradesToTwoRounds(t *testing.T) {
	const tt, n = 1, 4
	c, counter := poolCluster(t, tt, n, 4)
	// No warm-up: the initiator's Acquire fails and degrades.

	id := signOnce(t, c, "cold-1", []byte("two-round tx"))
	signers := tt + 1
	if got := counter.count(id); got != 2*signers {
		t.Fatalf("cold-pool sign used %d protocol broadcasts, want %d (two per signer)", got, 2*signers)
	}
	if st := c.engines[0].Stats().Crypto; st.NonceExhaustions == 0 {
		t.Fatal("cold-pool sign did not count an exhaustion")
	}
}

// TestFrostPooledNonSignerInitiator: a client may submit via a
// committee node OUTSIDE the fixed signer group (share index > t+1).
// Such a node banks no nonces and can never open a pooled round, so
// the signers must start the fresh two-round path spontaneously —
// deferring on a pooled start that never comes would stall the
// instance until expiry and fail the request.
func TestFrostPooledNonSignerInitiator(t *testing.T) {
	const tt, n = 1, 4 // signer group {1, 2}; node 3 is outside it
	c, counter := poolCluster(t, tt, n, 4)
	warmPools(t, c)

	id := signOnceOn(t, c, 2, "nonsigner-1", []byte("submitted via node 3"))
	signers := tt + 1
	if got := counter.count(id); got != 2*signers {
		t.Fatalf("non-signer-initiated sign used %d broadcasts, want %d (fresh two-round path)", got, 2*signers)
	}
	// The warm pool was not touched: no slot consumed, no exhaustion.
	if st := c.engines[0].Stats().Crypto; st.NonceExhaustions != 0 {
		t.Fatalf("non-signer initiator burned the pool: %d exhaustions", st.NonceExhaustions)
	}
}

// TestReshareInvalidatesPrecomputedMaterial is the precompute
// invalidation contract: nonces and coefficients banked under the old
// epoch are never used after a reshare — the first post-reshare sign
// degrades to the two-round path (stale material is unreachable, not
// silently reused), the signature still verifies under the unchanged
// public key, and a re-warmed pool restores the one-round path under
// the new epoch.
func TestReshareInvalidatesPrecomputedMaterial(t *testing.T) {
	const tt, n = 1, 4
	c, counter := poolCluster(t, tt, n, 4)
	warmPools(t, c)

	// Prime the Lagrange cache and the pool under epoch 1.
	preID := signOnce(t, c, "pre-reshare", []byte("epoch-1 tx"))
	if got := counter.count(preID); got != tt+1 {
		t.Fatalf("warm pre-reshare sign used %d broadcasts, want %d", got, tt+1)
	}

	// Same-committee proactive refresh of the KG20 key: epoch 1 -> 2.
	members := make([]int, n)
	for i := range members {
		members[i] = i + 1
	}
	spec := protocols.ReshareSpec{NewT: tt, Members: members}
	reshare := protocols.Request{Scheme: schemes.KG20, Op: protocols.OpReshare,
		Payload: spec.Marshal(), Epoch: keys.FirstEpoch, Session: "refresh-1"}
	waitAll(t, c.submitAll(t, reshare))
	for i, nk := range c.nodes {
		k, err := nk.Get(schemes.KG20, "")
		if err != nil {
			t.Fatal(err)
		}
		if k.Epoch != keys.FirstEpoch+1 {
			t.Fatalf("node %d at epoch %d after reshare", i+1, k.Epoch)
		}
	}

	// The reshare hook dropped the old-epoch banks: nothing usable
	// remains in any pool.
	for i, e := range c.engines {
		if d := e.Stats().Crypto.NoncePoolDepth; d != 0 {
			t.Fatalf("engine %d still banks %d nonces after reshare — stale material reachable", i+1, d)
		}
	}

	// First post-reshare sign: the epoch-2 pool is cold, so the run
	// must take the two-round path (never epoch-1 material) and still
	// produce a valid signature under the unchanged public key.
	postID := signOnce(t, c, "post-reshare", []byte("epoch-2 tx"))
	if got := counter.count(postID); got != 2*(tt+1) {
		t.Fatalf("post-reshare sign used %d broadcasts, want %d (stale pool must not serve)", got, 2*(tt+1))
	}

	// Re-warming banks under epoch 2 and restores the one-round path.
	warmPools(t, c)
	rewarmID := signOnce(t, c, "post-rewarm", []byte("epoch-2 pooled tx"))
	if got := counter.count(rewarmID); got != tt+1 {
		t.Fatalf("re-warmed sign used %d broadcasts, want %d", got, tt+1)
	}
}

// TestPoolerBackgroundRefill checks the engine's own maintenance loop:
// with a short interval the pool warms without any explicit call.
func TestPoolerBackgroundRefill(t *testing.T) {
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{}, func(cfg *Config) {
		cfg.FrostPoolDepth = 4
		cfg.PoolInterval = 20 * time.Millisecond
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if c.engines[0].Stats().Crypto.NoncePoolDepth > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background pooler never refilled the pool")
		}
		time.Sleep(10 * time.Millisecond)
	}
	signOnce(t, c, "bg-1", []byte("background-warmed tx"))
}

// TestCryptoStatsFlow: the engine's stats snapshot carries the
// precompute counters (the /v2/info surface reads exactly this).
func TestCryptoStatsFlow(t *testing.T) {
	const tt, n = 1, 4
	c, _ := poolCluster(t, tt, n, 4)
	warmPools(t, c)
	signOnce(t, c, "stats-1", []byte("counted tx"))

	st := c.engines[0].Stats().Crypto
	if st.NonceRefills == 0 {
		t.Fatalf("stats carry no refills: %+v", st)
	}
	if st.LagrangeHits+st.LagrangeMisses == 0 {
		t.Fatalf("stats carry no Lagrange traffic: %+v", st)
	}
	if st.BatchesVerified == 0 {
		t.Fatalf("stats carry no verified batches: %+v", st)
	}
}
