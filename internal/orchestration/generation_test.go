package orchestration

import (
	"bytes"
	"context"
	"testing"
	"time"

	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// pollStats waits until cond holds for an engine's snapshot.
func pollStats(t *testing.T, e *Engine, d time.Duration, cond func(Stats) bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	var last Stats
	for time.Now().Before(deadline) {
		last = e.Stats()
		if cond(last) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s; last stats: %+v", msg, last)
}

// TestResubmitAfterCapEvictionJoinsPeersFreshRun is the regression test
// for the cross-node retention desync: node 1 evicts a finished
// instance under its retention cap while its peers still retain
// theirs. A re-submission on node 1 starts generation 2 and announces
// it; the retained peers must supersede their stale generation-1 copy
// and participate in the fresh run, instead of treating the start as a
// duplicate and stalling the run until liveTTL expiry.
func TestResubmitAfterCapEvictionJoinsPeersFreshRun(t *testing.T) {
	const tt, n = 1, 3
	c := newCluster(t, tt, n, memnet.Options{}, func(cfg *Config) {
		cfg.RetainTTL = time.Minute // keep TTL/liveTTL expiry out of the test window
		cfg.RetainMax = 128
		if cfg.Keys.Index == 1 {
			cfg.RetainMax = 1 // only node 1 cap-evicts
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	reqA := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("gen-A")}
	reqB := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("gen-B")}

	fA, err := c.engines[0].Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	rA, err := fA.Wait(ctx)
	if err != nil || rA.Err != nil {
		t.Fatalf("first run: %v / %v", err, rA.Err)
	}
	// Every node must have retired its copy before the eviction step.
	for i, e := range c.engines {
		pollStats(t, e, 10*time.Second, func(st Stats) bool { return st.Finished >= 1 },
			"node "+string(rune('1'+i))+" never retired the first run")
	}

	// A second instance pushes A out of node 1's size-1 retention window;
	// the peers retain both.
	fB, err := c.engines[0].Submit(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}
	if rB, err := fB.Wait(ctx); err != nil || rB.Err != nil {
		t.Fatalf("second run: %v / %v", err, rB.Err)
	}
	pollStats(t, c.engines[0], 10*time.Second, func(st Stats) bool { return st.Evicted >= 1 },
		"node 1 never cap-evicted the first run")

	// Re-submit A on node 1. Without the generation tag the retained
	// peers would ignore the announcement and this run would stall until
	// liveTTL (minutes); with it, they join and it completes promptly.
	fA2, err := c.engines[0].Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	rerunCtx, cancelRerun := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancelRerun()
	rA2, err := fA2.Wait(rerunCtx)
	if err != nil {
		t.Fatalf("re-run after eviction stalled: %v", err)
	}
	if rA2.Err != nil {
		t.Fatalf("re-run failed: %v", rA2.Err)
	}
	if !bytes.Equal(rA.Value, rA2.Value) {
		t.Fatalf("re-run coin differs from the original: %x vs %x", rA2.Value, rA.Value)
	}
}
