package orchestration

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// pollStats waits until cond holds for an engine's snapshot.
func pollStats(t *testing.T, e *Engine, d time.Duration, cond func(Stats) bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	var last Stats
	for time.Now().Before(deadline) {
		last = e.Stats()
		if cond(last) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s; last stats: %+v", msg, last)
}

// TestResubmitAfterCapEvictionJoinsPeersFreshRun is the regression test
// for the cross-node retention desync: node 1 evicts a finished
// instance under its retention cap while its peers still retain
// theirs. A re-submission on node 1 starts generation 2 and announces
// it; the retained peers must supersede their stale generation-1 copy
// and participate in the fresh run, instead of treating the start as a
// duplicate and stalling the run until liveTTL expiry.
func TestResubmitAfterCapEvictionJoinsPeersFreshRun(t *testing.T) {
	const tt, n = 1, 3
	c := newCluster(t, tt, n, memnet.Options{}, func(cfg *Config) {
		cfg.RetainTTL = time.Minute // keep TTL/liveTTL expiry out of the test window
		cfg.RetainMax = 128
		if cfg.Keys.Index == 1 {
			cfg.RetainMax = 1 // only node 1 cap-evicts
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	reqA := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("gen-A")}
	reqB := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("gen-B")}

	fA, err := c.engines[0].Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	rA, err := fA.Wait(ctx)
	if err != nil || rA.Err != nil {
		t.Fatalf("first run: %v / %v", err, rA.Err)
	}
	// Every node must have retired its copy before the eviction step.
	for i, e := range c.engines {
		pollStats(t, e, 10*time.Second, func(st Stats) bool { return st.Finished >= 1 },
			"node "+string(rune('1'+i))+" never retired the first run")
	}

	// A second instance pushes A out of node 1's size-1 retention window;
	// the peers retain both.
	fB, err := c.engines[0].Submit(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}
	if rB, err := fB.Wait(ctx); err != nil || rB.Err != nil {
		t.Fatalf("second run: %v / %v", err, rB.Err)
	}
	pollStats(t, c.engines[0], 10*time.Second, func(st Stats) bool { return st.Evicted >= 1 },
		"node 1 never cap-evicted the first run")

	// Re-submit A on node 1. Without the generation tag the retained
	// peers would ignore the announcement and this run would stall until
	// liveTTL (minutes); with it, they join and it completes promptly.
	fA2, err := c.engines[0].Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	rerunCtx, cancelRerun := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancelRerun()
	rA2, err := fA2.Wait(rerunCtx)
	if err != nil {
		t.Fatalf("re-run after eviction stalled: %v", err)
	}
	if rA2.Err != nil {
		t.Fatalf("re-run failed: %v", rA2.Err)
	}
	if !bytes.Equal(rA.Value, rA2.Value) {
		t.Fatalf("re-run coin differs from the original: %x vs %x", rA2.Value, rA.Value)
	}
}

// TestGenerationMemorySurvivesTombstoneEviction is the regression test
// for the double-eviction stall: generation info used to live only in
// the tombstone, so once churn pushed an id's tombstone out of its
// bounded FIFO, a re-submission restarted at generation 1 — which peers
// still retaining generation N ignore, stalling the run until liveTTL.
// The gens backstop must keep answering with the next generation after
// the tombstone itself is gone.
func TestGenerationMemorySurvivesTombstoneEviction(t *testing.T) {
	c := newCluster(t, 1, 3, memnet.Options{}, func(cfg *Config) {
		cfg.RetainMax = 1 // tombstoneMax = 4: a handful of fillers evicts any tombstone
	})
	e := c.engines[0]

	e.mu.Lock()
	e.tombstoneLocked("doomed", 2)
	for i := 0; i < 8; i++ {
		e.tombstoneLocked(fmt.Sprintf("filler-%d", i), 1)
	}
	_, tombed := e.tombstones["doomed"]
	got := e.nextGenLocked("doomed")
	e.mu.Unlock()

	if tombed {
		t.Fatal("filler flood did not evict the tombstone; the test no longer exercises the double eviction")
	}
	if got != 3 {
		t.Fatalf("nextGen after tombstone eviction = %d, want 3", got)
	}
}

// TestGenerationMemoryBounded pins the backstop's own bounds: it may
// forget the oldest ids under FIFO pressure, but never grows past
// genMax, and updating a remembered id keeps the highest generation
// without duplicating its entry.
func TestGenerationMemoryBounded(t *testing.T) {
	c := newCluster(t, 1, 3, memnet.Options{}, func(cfg *Config) {
		cfg.RetainMax = 1 // genMax = 16
	})
	e := c.engines[0]

	e.mu.Lock()
	for i := 0; i < 100; i++ {
		e.tombstoneLocked(fmt.Sprintf("id-%d", i), i+1)
	}
	size, capacity := len(e.gens), e.genMax
	e.tombstoneLocked("id-99", 200)
	e.tombstoneLocked("id-99", 150) // lower generation must not regress the memory
	next := e.nextGenLocked("id-99")
	sizeAfter := len(e.gens)
	e.mu.Unlock()

	if size > capacity {
		t.Fatalf("gen memory grew to %d entries, cap is %d", size, capacity)
	}
	if sizeAfter != size {
		t.Fatalf("re-recording a remembered id changed the entry count: %d -> %d", size, sizeAfter)
	}
	if next != 201 {
		t.Fatalf("nextGen after update = %d, want 201", next)
	}
}
