package orchestration

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"testing"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
)

// cluster is an in-process Θ-network for tests.
type cluster struct {
	hub     *memnet.Hub
	nodes   []*keys.Keystore
	engines []*Engine
}

// newCluster builds the Θ-network; optional mutators tune every node's
// engine config (retention, queue, workers) before start.
func newCluster(t testing.TB, tt, n int, opts memnet.Options, mutate ...func(*Config)) *cluster {
	t.Helper()
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		RSABits: 512, UseRSAFixture: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, opts)
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Keys: nodes[i],
			Net:  hub.Endpoint(i + 1),
		}
		for _, m := range mutate {
			m(&cfg)
		}
		engines[i] = New(cfg)
	}
	c := &cluster{hub: hub, nodes: nodes, engines: engines}
	t.Cleanup(func() {
		for _, e := range engines {
			e.Stop()
		}
		hub.Close()
	})
	return c
}

// submitAll submits the request on every engine (the replicated-service
// deployment model) and returns all futures.
func (c *cluster) submitAll(t testing.TB, req protocols.Request) []*Future {
	t.Helper()
	futures := make([]*Future, len(c.engines))
	for i, e := range c.engines {
		f, err := e.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		futures[i] = f
	}
	return futures
}

func waitAll(t testing.TB, futures []*Future) []Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results := make([]Result, len(futures))
	for i, f := range futures {
		r, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if r.Err != nil {
			t.Fatalf("future %d: result error: %v", i, r.Err)
		}
		results[i] = r
	}
	return results
}

func TestAllSchemesEndToEnd(t *testing.T) {
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{Latency: memnet.Uniform(200 * time.Microsecond)})

	cases := []struct {
		name string
		req  func() protocols.Request
		chk  func(t *testing.T, value []byte)
	}{
		{
			name: "SG02 decrypt",
			req: func() protocols.Request {
				ct, err := sg02.Encrypt(rand.Reader, keys.MustPublic[*sg02.PublicKey](c.nodes[0], schemes.SG02), []byte("front-running tx"), []byte("L"))
				if err != nil {
					t.Fatal(err)
				}
				return protocols.Request{Scheme: schemes.SG02, Op: protocols.OpDecrypt, Payload: ct.Marshal()}
			},
			chk: func(t *testing.T, v []byte) {
				if string(v) != "front-running tx" {
					t.Fatalf("decrypted %q", v)
				}
			},
		},
		{
			name: "BLS04 sign",
			req: func() protocols.Request {
				return protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("blk")}
			},
			chk: func(t *testing.T, v []byte) {
				sig, err := bls04.UnmarshalSignature(v)
				if err != nil {
					t.Fatal(err)
				}
				if err := bls04.Verify(keys.MustPublic[*bls04.PublicKey](c.nodes[0], schemes.BLS04), []byte("blk"), sig); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "SH00 sign",
			req: func() protocols.Request {
				return protocols.Request{Scheme: schemes.SH00, Op: protocols.OpSign, Payload: []byte("cert")}
			},
			chk: func(t *testing.T, v []byte) {
				sig, err := sh00.UnmarshalSignature(v)
				if err != nil {
					t.Fatal(err)
				}
				if err := sh00.Verify(keys.MustPublic[*sh00.PublicKey](c.nodes[0], schemes.SH00), []byte("cert"), sig); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "KG20 sign",
			req: func() protocols.Request {
				return protocols.Request{Scheme: schemes.KG20, Op: protocols.OpSign, Payload: []byte("wallet tx")}
			},
			chk: func(t *testing.T, v []byte) {
				sig, err := frost.UnmarshalSignature(keys.MustPublic[*frost.PublicKey](c.nodes[0], schemes.KG20).Group, v)
				if err != nil {
					t.Fatal(err)
				}
				if err := frost.Verify(keys.MustPublic[*frost.PublicKey](c.nodes[0], schemes.KG20), []byte("wallet tx"), sig); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "CKS05 coin",
			req: func() protocols.Request {
				return protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("round-3")}
			},
			chk: func(t *testing.T, v []byte) {
				if len(v) != 32 {
					t.Fatalf("coin value %d bytes", len(v))
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results := waitAll(t, c.submitAll(t, tc.req()))
			// Every node produced the same result.
			first := results[0].Value
			for i, r := range results[1:] {
				if hex.EncodeToString(r.Value) != hex.EncodeToString(first) {
					t.Fatalf("node %d result differs", i+2)
				}
			}
			tc.chk(t, first)
		})
	}
}

func TestBZ03EndToEnd(t *testing.T) {
	// BZ03 runs separately: its pairing-heavy verification is the
	// slowest path and deserves its own timeout budget.
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{})
	ct, err := bz03.Encrypt(rand.Reader, keys.MustPublic[*bz03.PublicKey](c.nodes[0], schemes.BZ03), []byte("pairing payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req := protocols.Request{Scheme: schemes.BZ03, Op: protocols.OpDecrypt, Payload: ct.Marshal()}
	results := waitAll(t, c.submitAll(t, req))
	if string(results[0].Value) != "pairing payload" {
		t.Fatalf("decrypted %q", results[0].Value)
	}
}

func TestSingleNodeSubmissionPropagates(t *testing.T) {
	// A request submitted at ONE node must still complete everywhere via
	// the start announcement.
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{Latency: memnet.Uniform(100 * time.Microsecond)})
	req := protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("solo")}
	f, err := c.engines[2].Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	r, err := f.Wait(ctx)
	if err != nil || r.Err != nil {
		t.Fatalf("wait: %v / %v", err, r.Err)
	}
	sig, err := bls04.UnmarshalSignature(r.Value)
	if err != nil {
		t.Fatal(err)
	}
	if err := bls04.Verify(keys.MustPublic[*bls04.PublicKey](c.nodes[0], schemes.BLS04), []byte("solo"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestToleratesCrashedNodes(t *testing.T) {
	// With t = 1 and n = 4, one crashed node must not block progress for
	// non-interactive schemes.
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{})
	c.hub.Crash(4)
	req := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("crashed")}
	futures := make([]*Future, 0, 3)
	for _, e := range c.engines[:3] {
		f, err := e.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	waitAll(t, futures)
}

func TestCorruptSharesDoNotBlockProgress(t *testing.T) {
	// A Byzantine node sending garbage shares is detected (rejected
	// share callback) and the remaining honest quorum still completes.
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, memnet.Options{})
	defer hub.Close()

	var mu sync.Mutex
	rejected := 0
	engines := make([]*Engine, 0, 3)
	for i := 0; i < 3; i++ { // node 4 is the adversary, no engine
		engines = append(engines, New(Config{
			Keys: nodes[i],
			Net:  hub.Endpoint(i + 1),
			OnRejectedShare: func(string, error) {
				mu.Lock()
				rejected++
				mu.Unlock()
			},
		}))
	}
	defer func() {
		for _, e := range engines {
			e.Stop()
		}
	}()

	req := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("byz")}
	// The adversary floods garbage for the instance before honest nodes
	// even start it.
	adv := hub.Endpoint(4)
	garbage := network.Envelope{
		Instance: req.InstanceID(),
		Kind:     network.KindProto,
		Round:    1,
		Payload:  []byte("not a share"),
	}
	if err := adv.Broadcast(context.Background(), garbage); err != nil {
		t.Fatal(err)
	}

	futures := make([]*Future, 0, 3)
	for _, e := range engines {
		f, err := e.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	waitAll(t, futures)
	mu.Lock()
	defer mu.Unlock()
	if rejected == 0 {
		t.Fatal("garbage shares were not surfaced to the rejection hook")
	}
}

func TestDuplicateSubmissionJoinsInstance(t *testing.T) {
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{})
	req := protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("dup")}
	f1, _ := c.engines[0].Submit(context.Background(), req)
	f2, _ := c.engines[0].Submit(context.Background(), req)
	waitAll(t, []*Future{f1})
	_ = f2 // second future may or may not fire; the engine must not deadlock
	if c.engines[0].InstanceCount() != 1 {
		t.Fatalf("duplicate submission created %d instances", c.engines[0].InstanceCount())
	}
}

func TestSessionsSeparateInstances(t *testing.T) {
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{})
	r1 := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("x"), Session: "a"}
	r2 := protocols.Request{Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("x"), Session: "b"}
	if r1.InstanceID() == r2.InstanceID() {
		t.Fatal("sessions share an instance ID")
	}
	res1 := waitAll(t, c.submitAll(t, r1))
	res2 := waitAll(t, c.submitAll(t, r2))
	// Same coin name means the same coin value, even across sessions:
	// CKS05 is a deterministic function of the name.
	if hex.EncodeToString(res1[0].Value) != hex.EncodeToString(res2[0].Value) {
		t.Fatal("coin value changed across sessions")
	}
}

// TestSubmitBatch drives a batch of coin requests through one engine
// hand-off: all instances finish, duplicate flags reflect idempotent
// re-submission, and futures deliver in request order.
func TestSubmitBatch(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{})
	reqs := make([]protocols.Request, 8)
	for i := range reqs {
		reqs[i] = protocols.Request{
			Scheme:  schemes.CKS05,
			Op:      protocols.OpCoin,
			Payload: []byte("batch-coin"),
			Session: hex.EncodeToString([]byte{byte(i)}),
		}
	}
	subs, err := c.engines[0].SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != len(reqs) {
		t.Fatalf("got %d submissions for %d requests", len(subs), len(reqs))
	}
	for i, sub := range subs {
		if sub.Duplicate {
			t.Fatalf("fresh request %d flagged duplicate", i)
		}
		if sub.InstanceID != reqs[i].InstanceID() {
			t.Fatalf("submission %d id mismatch", i)
		}
		res, err := sub.Future.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if len(res.Value) == 0 {
			t.Fatalf("request %d produced empty coin", i)
		}
	}

	// Re-submitting the same batch joins the existing instances.
	resubs, err := c.engines[0].SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sub := range resubs {
		if !sub.Duplicate {
			t.Fatalf("re-submission %d not flagged duplicate", i)
		}
		res, err := sub.Future.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("re-submission %d failed: %v", i, res.Err)
		}
	}

	// Identical requests inside one batch share an instance; the second
	// occurrence is the duplicate.
	twice := []protocols.Request{reqs[0], reqs[0]}
	twin, err := c.engines[1].SubmitBatch(context.Background(), twice)
	if err != nil {
		t.Fatal(err)
	}
	if !twin[1].Duplicate {
		t.Fatal("in-batch duplicate not flagged")
	}
	if twin[0].InstanceID != twin[1].InstanceID {
		t.Fatal("in-batch duplicate got a different instance")
	}
}

// TestKeygenThroughEngines runs a full on-demand DKG through the
// engines and immediately signs under the new key — the engine-level
// half of the keychain contract: all nodes install the same key, the
// keygen result is the key ID, and the follow-up instance resolves
// even when its start announcement races a peer's still-finalizing
// DKG (the deferForKey retry path).
func TestKeygenThroughEngines(t *testing.T) {
	const tt, n = 1, 4
	c := newCluster(t, tt, n, memnet.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gen := protocols.Request{Scheme: schemes.KG20, KeyID: "engine-made", Op: protocols.OpKeyGen}
	f, err := c.engines[0].Submit(ctx, gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || string(res.Value) != "engine-made" {
		t.Fatalf("keygen result: %+v", res)
	}
	// Node 1 installed; submit the follow-up sign IMMEDIATELY, without
	// waiting for the peers' own finalizations — peers whose keystore
	// lags must park the start announcement and retry, not fail.
	sign := protocols.Request{Scheme: schemes.KG20, KeyID: "engine-made", Op: protocols.OpSign, Payload: []byte("raced")}
	sf, err := c.engines[0].Submit(ctx, sign)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sf.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Err != nil {
		t.Fatalf("sign under fresh key: %v", sres.Err)
	}
	// Eventually every node agrees on the installed public key.
	deadline := time.Now().Add(10 * time.Second)
	ref, err := keys.Public[*frost.PublicKey](c.nodes[0], schemes.KG20, "engine-made")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		for {
			pk, err := keys.Public[*frost.PublicKey](c.nodes[i], schemes.KG20, "engine-made")
			if err == nil {
				if !pk.Y.Equal(ref.Y) {
					t.Fatalf("node %d installed a different key", i+1)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never installed the key: %v", i+1, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	sig, err := frost.UnmarshalSignature(ref.Group, sres.Value)
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(ref, []byte("raced"), sig); err != nil {
		t.Fatal(err)
	}
}

// TestStartForMissingKeyEventuallyFails pins the other side of the
// retry: a start announcement under a key that never materializes is
// not retried forever — after the retry budget the instance fails
// with the typed missing-key error, visible to watchers.
func TestStartForMissingKeyEventuallyFails(t *testing.T) {
	const tt, n = 1, 2
	c := newCluster(t, tt, n, memnet.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := protocols.Request{Scheme: schemes.CKS05, KeyID: "never-installed", Op: protocols.OpCoin, Payload: []byte("x")}
	// Bypass the submit-path pre-check by injecting the start
	// announcement directly, as a peer would.
	env := network.Envelope{
		Instance: req.InstanceID(),
		Kind:     network.KindStart,
		Gen:      1,
		Payload:  req.Marshal(),
	}
	f := c.engines[0].Attach(req.InstanceID())
	c.engines[0].handle(event{env: &env})
	res, err := f.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, keys.ErrKeyUnknown) {
		t.Fatalf("want key-unknown failure, got %v", res.Err)
	}
}
