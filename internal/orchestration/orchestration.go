// Package orchestration implements the core layer's execution engine
// (the paper's Fig. 3): an instance manager tracking protocol instances,
// a protocol executor driving each instance's TRI state machine, and the
// dispatch of protocol messages to and from the network layer.
//
// Each engine runs a configurable number of worker goroutines that
// process events (client requests and network messages) sequentially;
// the default of one worker models the paper's deployment, where every
// Thetacrypt container is pinned to a single vCPU.
package orchestration

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/protocols"
)

// Errors returned by the engine.
var (
	ErrStopped   = errors.New("orchestration: engine stopped")
	ErrDuplicate = errors.New("orchestration: duplicate instance")
)

// Result is the outcome of a protocol instance on this node.
type Result struct {
	InstanceID string
	Value      []byte
	Err        error
	// Started and Finished delimit the server-side processing of the
	// request on this node, the paper's server-side latency.
	Started  time.Time
	Finished time.Time
}

// Future delivers the result of a submitted request.
type Future struct {
	ch chan Result
}

// Done returns the channel carrying the final result.
func (f *Future) Done() <-chan Result { return f.ch }

// Wait blocks for the result or context cancellation.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	select {
	case r := <-f.ch:
		return r, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Config assembles an engine.
type Config struct {
	// Keys is the node's key material (index, thresholds, shares).
	Keys *keys.Manager
	// Net is the node's P2P endpoint.
	Net network.P2P
	// Rand defaults to crypto/rand.Reader.
	Rand io.Reader
	// Workers is the number of event-processing goroutines (default 1,
	// modeling the paper's 1-vCPU pin).
	Workers int
	// QueueLen bounds the internal event queue (default 4096).
	QueueLen int
	// OnRejectedShare, when set, observes invalid shares (for metrics
	// and tests). It runs on the worker goroutine and must be fast.
	OnRejectedShare func(instanceID string, err error)
}

// Engine is one node's orchestration module.
type Engine struct {
	cfg  Config
	self int

	events chan event

	mu        sync.Mutex
	instances map[string]*instance
	stopped   bool

	stop chan struct{}
	done sync.WaitGroup
}

type instance struct {
	// mu serializes all access to the TRI protocol, which is not safe
	// for concurrent use (relevant when Workers > 1).
	mu       sync.Mutex
	proto    protocols.Protocol
	futures  []*Future
	started  time.Time
	finished bool
	result   Result
	// backlog holds protocol messages that arrived before the instance
	// was started on this node.
	backlog []protocols.ProtocolMessage
	// starting marks that a worker has claimed the instance for
	// protocol creation (guarded by Engine.mu). It distinguishes a
	// placeholder — created by Attach or by a peer share arriving
	// before the start announcement — from an instance whose protocol
	// is being (or has been) set up, so exactly one submission adopts
	// and starts each placeholder.
	starting bool
}

type event struct {
	// Exactly one of req/batch/env is meaningful.
	req    *protocols.Request
	future *Future
	batch  []batchItem
	env    *network.Envelope
}

// batchItem is one request of a batched submission.
type batchItem struct {
	req    protocols.Request
	future *Future
}

// New creates and starts an engine.
func New(cfg Config) *Engine {
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	e := &Engine{
		cfg:       cfg,
		self:      cfg.Keys.Keys().Index,
		events:    make(chan event, cfg.QueueLen),
		instances: make(map[string]*instance),
		stop:      make(chan struct{}),
	}
	e.done.Add(1)
	go e.pump()
	for i := 0; i < cfg.Workers; i++ {
		e.done.Add(1)
		go e.worker()
	}
	return e
}

// Stop shuts the engine down and waits for its goroutines.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	close(e.stop)
	e.done.Wait()
}

// Submit starts a protocol instance for the request on this node and
// announces it to the peers. The same request submitted on several nodes
// joins a single logical instance.
func (e *Engine) Submit(ctx context.Context, req protocols.Request) (*Future, error) {
	f := &Future{ch: make(chan Result, 1)}
	ev := event{req: &req, future: f}
	select {
	case e.events <- ev:
		return f, nil
	case <-e.stop:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submission describes one request of a batched submission: its
// deterministic instance id, the future delivering its result, and
// whether the request joined an instance that already existed on this
// node (idempotent re-submission).
type Submission struct {
	InstanceID string
	Future     *Future
	Duplicate  bool
}

// SubmitBatch starts protocol instances for 1..N requests with a single
// event-queue hand-off, amortizing dispatch across the batch: the whole
// batch is processed in one worker pass instead of N queue round-trips.
// Submissions are returned in request order. Duplicate detection is a
// snapshot taken at enqueue time; concurrent submitters racing on the
// same request still join one instance, only the flag is best-effort
// for the loser of the race.
func (e *Engine) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]Submission, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	subs := make([]Submission, len(reqs))
	items := make([]batchItem, len(reqs))
	inBatch := make(map[string]bool, len(reqs))
	e.mu.Lock()
	for i, req := range reqs {
		id := req.InstanceID()
		// A bare placeholder (created by Attach or an early peer share)
		// is not a running instance: the submission that adopts it is
		// still the first submission.
		inst, exists := e.instances[id]
		dup := exists && (inst.starting || inst.proto != nil)
		f := &Future{ch: make(chan Result, 1)}
		subs[i] = Submission{InstanceID: id, Future: f, Duplicate: dup || inBatch[id]}
		items[i] = batchItem{req: req, future: f}
		inBatch[id] = true
	}
	e.mu.Unlock()
	select {
	case e.events <- event{batch: items}:
		return subs, nil
	case <-e.stop:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// pump moves network envelopes into the event queue.
func (e *Engine) pump() {
	defer e.done.Done()
	for {
		select {
		case env, ok := <-e.cfg.Net.Receive():
			if !ok {
				return
			}
			select {
			case e.events <- event{env: &env}:
			case <-e.stop:
				return
			}
		case <-e.stop:
			return
		}
	}
}

// worker processes events sequentially.
func (e *Engine) worker() {
	defer e.done.Done()
	for {
		select {
		case ev := <-e.events:
			e.handle(ev)
		case <-e.stop:
			return
		}
	}
}

func (e *Engine) handle(ev event) {
	switch {
	case ev.req != nil:
		e.handleSubmit(*ev.req, ev.future)
	case ev.batch != nil:
		for _, item := range ev.batch {
			e.handleSubmit(item.req, item.future)
		}
	case ev.env != nil:
		e.handleEnvelope(*ev.env)
	}
}

// ensureInstance creates (or returns) the instance for a request. A
// placeholder instance — left behind by Attach or by a peer share that
// arrived before the start announcement — is adopted: its futures and
// backlog are kept and the protocol is created and started here. Lock
// order is always e.mu before inst.mu.
func (e *Engine) ensureInstance(req protocols.Request, announce bool, future *Future) (*instance, error) {
	id := req.InstanceID()
	e.mu.Lock()
	inst, ok := e.instances[id]
	adopt := false
	if ok {
		if inst.proto == nil && !inst.starting {
			inst.starting = true
			adopt = true
		}
	} else {
		inst = &instance{started: time.Now(), starting: true}
		e.instances[id] = inst
		adopt = true
	}
	e.mu.Unlock()
	if future != nil {
		inst.mu.Lock()
		if inst.finished {
			future.ch <- inst.result
		} else {
			inst.futures = append(inst.futures, future)
		}
		inst.mu.Unlock()
	}
	if !adopt {
		return inst, nil
	}

	proto, err := protocols.New(e.cfg.Rand, e.cfg.Keys.Keys(), req)
	if err == nil {
		// Publish under e.mu so handleEnvelope's proto==nil check is
		// race free.
		e.mu.Lock()
		inst.proto = proto
		e.mu.Unlock()
	}

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err != nil {
		e.finishLocked(id, inst, Result{InstanceID: id, Err: err})
		return nil, err
	}

	if announce {
		start := network.Envelope{
			Instance: id,
			Kind:     network.KindStart,
			Payload:  req.Marshal(),
		}
		if err := e.cfg.Net.Broadcast(context.Background(), start); err != nil {
			e.finishLocked(id, inst, Result{InstanceID: id, Err: fmt.Errorf("announce: %w", err)})
			return nil, err
		}
	}
	e.advanceLocked(id, inst, true)
	return inst, nil
}

func (e *Engine) handleSubmit(req protocols.Request, future *Future) {
	inst, err := e.ensureInstance(req, true, future)
	if err != nil {
		return // ensureInstance already finished the future
	}
	// Peer shares may have arrived before the local submission.
	e.drainBacklog(req.InstanceID(), inst)
}

func (e *Engine) handleEnvelope(env network.Envelope) {
	switch env.Kind {
	case network.KindStart:
		req, err := protocols.UnmarshalRequest(env.Payload)
		if err != nil {
			return // malformed announcement; ignore
		}
		if req.InstanceID() != env.Instance {
			return // inconsistent announcement; ignore
		}
		inst, err := e.ensureInstance(req, false, nil)
		if err != nil {
			return
		}
		e.drainBacklog(env.Instance, inst)
	case network.KindProto:
		e.mu.Lock()
		inst, ok := e.instances[env.Instance]
		if ok && inst.proto == nil {
			// Instance creation in flight; treat as unknown.
			ok = false
		}
		if !ok {
			// Share arrived before the start announcement: park it.
			if inst == nil {
				inst = &instance{started: time.Now()}
				e.instances[env.Instance] = inst
			}
			inst.backlog = append(inst.backlog, protocols.ProtocolMessage{
				Sender: env.From, Round: env.Round, Payload: env.Payload,
			})
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
		e.deliver(env.Instance, inst, protocols.ProtocolMessage{
			Sender: env.From, Round: env.Round, Payload: env.Payload,
		})
	}
}

// drainBacklog replays messages that arrived before the instance start.
func (e *Engine) drainBacklog(id string, inst *instance) {
	e.mu.Lock()
	backlog := inst.backlog
	inst.backlog = nil
	e.mu.Unlock()
	for _, msg := range backlog {
		e.deliver(id, inst, msg)
	}
}

func (e *Engine) deliver(id string, inst *instance, msg protocols.ProtocolMessage) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.finished || inst.proto == nil {
		return
	}
	if err := inst.proto.Update(msg); err != nil {
		if errors.Is(err, protocols.ErrShareRejected) {
			if e.cfg.OnRejectedShare != nil {
				e.cfg.OnRejectedShare(id, err)
			}
			return
		}
		// Non-share errors are protocol failures.
		e.finishLocked(id, inst, Result{InstanceID: id, Err: err})
		return
	}
	e.advanceLocked(id, inst, false)
}

// advanceLocked runs the TRI state machine: execute rounds while ready,
// send produced messages, and finalize when possible. inst.mu is held.
func (e *Engine) advanceLocked(id string, inst *instance, firstRound bool) {
	if inst.finished || inst.proto == nil {
		return
	}
	runRound := firstRound
	for {
		if runRound {
			out, err := inst.proto.DoRound()
			if err != nil {
				e.finishLocked(id, inst, Result{InstanceID: id, Err: err})
				return
			}
			if out != nil {
				env := network.Envelope{
					Instance: id,
					Kind:     network.KindProto,
					Round:    out.Round,
					Payload:  out.Payload,
				}
				// The transport hint selects P2P or TOB; with the
				// default stack both map to the P2P broadcast channel.
				if err := e.cfg.Net.Broadcast(context.Background(), env); err != nil {
					e.finishLocked(id, inst, Result{InstanceID: id, Err: fmt.Errorf("broadcast round %d: %w", out.Round, err)})
					return
				}
			}
		}
		if inst.proto.IsReadyToFinalize() {
			value, err := inst.proto.Finalize()
			e.finishLocked(id, inst, Result{InstanceID: id, Value: value, Err: err})
			return
		}
		if inst.proto.IsReadyForNextRound() {
			runRound = true
			continue
		}
		return
	}
}

// finishLocked completes an instance; inst.mu is held.
func (e *Engine) finishLocked(id string, inst *instance, res Result) {
	if inst.finished {
		return
	}
	inst.finished = true
	res.Started = inst.started
	res.Finished = time.Now()
	inst.result = res
	for _, f := range inst.futures {
		f.ch <- res
	}
	inst.futures = nil
}

// Attach registers a future on an instance (present or future), used by
// the service layer's result endpoint. The returned future fires
// immediately when the instance already finished.
func (e *Engine) Attach(id string) *Future {
	f := &Future{ch: make(chan Result, 1)}
	e.mu.Lock()
	inst, ok := e.instances[id]
	if !ok {
		inst = &instance{started: time.Now()}
		e.instances[id] = inst
	}
	e.mu.Unlock()
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.finished {
		f.ch <- inst.result
		return f
	}
	inst.futures = append(inst.futures, f)
	return f
}

// InstanceCount reports the number of tracked instances (for tests and
// metrics).
func (e *Engine) InstanceCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.instances)
}
