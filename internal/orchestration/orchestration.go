// Package orchestration implements the core layer's execution engine
// (the paper's Fig. 3): an instance manager tracking protocol instances,
// a protocol executor driving each instance's TRI state machine, and the
// dispatch of protocol messages to and from the network layer.
//
// Each engine runs a configurable number of worker goroutines that
// process events (client requests and network messages) sequentially;
// the default of one worker models the paper's deployment, where every
// Thetacrypt container is pinned to a single vCPU.
//
// The engine is built to run indefinitely under sustained load. Two
// subsystems bound its state:
//
//   - Instance lifecycle: finished instances stay retrievable for a
//     retention window (RetainTTL, capped at RetainMax instances) and
//     are then evicted by a background sweeper or by O(1) cap
//     enforcement at finish time. An evicted instance leaves a bounded
//     tombstone behind, so Attach and result queries report a typed
//     ErrExpired instead of silently recreating state, and a
//     re-submission of the same request starts a fresh instance.
//     Placeholders (watchers for ids this node never ran) and started
//     instances that never finish (a quorum that never forms) expire
//     the same way, so no path grows engine state without bound.
//
//   - Flow control: the event queue never blocks a submitter. When it
//     is saturated, Submit and SubmitBatch fail fast with a typed
//     ErrOverloaded that the service layer translates to HTTP 429 and
//     the client SDK retries with backoff.
//
// Stats exposes a snapshot of both subsystems for metrics and tests.
package orchestration

import (
	"container/list"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/precompute"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// Errors returned by the engine.
var (
	ErrStopped   = errors.New("orchestration: engine stopped")
	ErrDuplicate = errors.New("orchestration: duplicate instance")
	// ErrOverloaded reports that the event queue is saturated and the
	// submission was not admitted. The request had no effect; callers
	// retry with backoff.
	ErrOverloaded = errors.New("orchestration: engine overloaded, event queue full")
	// ErrExpired reports that an instance's result passed the retention
	// window and was evicted, or that a watched instance never
	// materialized within the window.
	ErrExpired = errors.New("orchestration: instance expired, result evicted after retention window")
)

// maxBacklog bounds the protocol messages parked for an instance that
// has not started on this node; beyond it, further early shares are
// dropped (a correct peer sends at most one share per round).
const maxBacklog = 1024

// Key-install retry: a peer's start announcement can race ahead of the
// DKG finalization that installs the key it refers to (each node
// finalizes on its own schedule). Instead of failing the instance with
// key_unknown, the engine re-enqueues the announcement with exponential
// backoff; early peer shares keep parking on the placeholder meanwhile.
// After the last retry the normal path runs and reports the typed
// missing-key failure.
const (
	keyRetryBase = 5 * time.Millisecond
	maxKeyRetry  = 9 // cumulative backoff ≈ 2.5s
)

// Result is the outcome of a protocol instance on this node.
type Result struct {
	InstanceID string
	Value      []byte
	Err        error
	// Started and Finished delimit the server-side processing of the
	// request on this node, the paper's server-side latency.
	Started  time.Time
	Finished time.Time
}

// Future delivers the result of a submitted request.
type Future struct {
	ch chan Result
}

// Done returns the channel carrying the final result.
func (f *Future) Done() <-chan Result { return f.ch }

// Wait blocks for the result or context cancellation.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	select {
	case r := <-f.ch:
		return r, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Config assembles an engine.
type Config struct {
	// Keys is the node's keystore (index, thresholds, named keys). The
	// engine reads it to resolve shares and OpKeyGen instances write
	// freshly generated keys into it.
	Keys *keys.Keystore
	// Net is the node's P2P endpoint.
	Net network.P2P
	// Rand defaults to crypto/rand.Reader.
	Rand io.Reader
	// Workers is the number of event-processing goroutines (default 1,
	// modeling the paper's 1-vCPU pin).
	Workers int
	// QueueLen bounds the internal event queue (default 4096). A full
	// queue rejects submissions with ErrOverloaded instead of blocking.
	QueueLen int
	// RetainTTL is how long a finished instance (and its result) stays
	// retrievable before the sweeper evicts it (default 2 minutes).
	RetainTTL time.Duration
	// RetainMax caps the number of finished instances retained at once
	// (default 4096); the oldest is evicted first, in O(1).
	RetainMax int
	// SweepInterval is the cadence of the background sweeper (default
	// RetainTTL/8, clamped to [10ms, 5s]).
	SweepInterval time.Duration
	// SendTimeout bounds each round broadcast onto the transport
	// (default 5s). The transport enqueues in O(1), so the deadline only
	// bites when a block-policy peer queue is saturated — backpressure
	// surfaces as a bounded wait instead of a wedged worker.
	SendTimeout time.Duration
	// OnRejectedShare, when set, observes invalid shares (for metrics
	// and tests). It runs on the worker goroutine and must be fast.
	OnRejectedShare func(instanceID string, err error)
	// RefreshInterval, when positive, schedules proactive key
	// refreshes: every interval the engine submits one same-committee
	// OpReshare per reshareable key, pinned to the key's current epoch
	// with a deterministic session. Every node of a deployment running
	// the same schedule converges on the same instance IDs, so the
	// refreshes are idempotent across the mesh; a node whose tick
	// fires late simply joins the instance its peers announced.
	RefreshInterval time.Duration
	// FrostPoolDepth, when positive, enables the FROST preprocessed
	// nonce pool: each KG20 key banks this many commitment slots per
	// epoch, turning online signing into a single message round while
	// the pool is warm. Zero disables pooling (two-round signing).
	FrostPoolDepth int
	// FrostPoolRefill is the pool's refill watermark (default
	// FrostPoolDepth/2): a refill run is scheduled when a key's banked
	// slots drop below it.
	FrostPoolRefill int
	// PoolInterval is the cadence of the background pool maintainer
	// (default 1s when FrostPoolDepth > 0). Each tick the designated
	// initiator (the node holding share index 1) submits deterministic
	// OpPoolRefill runs for every KG20 key below its watermark.
	PoolInterval time.Duration
	// Identity and Roster, when set, switch DKG and reshare instances
	// to sealed dealings: sub-shares travel as per-recipient ECIES
	// boxes and the protocols run complaint/justification rounds. All
	// nodes of a deployment must agree (the dealing wire format
	// changes). They are typically the same identity material the
	// secure transport authenticates with.
	Identity *identity.Key
	Roster   identity.Roster
}

// Stats is a point-in-time snapshot of the engine's lifecycle and flow
// control state.
type Stats struct {
	// Live counts instances not yet finished, including placeholders
	// awaiting adoption.
	Live int
	// Finished counts finished instances inside the retention window.
	Finished int
	// Evicted counts instances evicted since engine start (retention
	// cap, TTL expiry, and expired placeholders).
	Evicted uint64
	// QueueDepth and QueueCap describe the event queue.
	QueueDepth int
	QueueCap   int
	// RejectedShares counts invalid shares dropped by share
	// verification.
	RejectedShares uint64
	// Overloaded counts submissions rejected with ErrOverloaded.
	Overloaded uint64
	// PartialBroadcasts counts round broadcasts that failed for some —
	// but not all — peers; the run continues, since the surviving set
	// may still reach a quorum. A rising counter points at a lagging or
	// down peer (see Transport).
	PartialBroadcasts uint64
	// Transport is the P2P layer's per-peer health snapshot: link state
	// (up/dialing/down), outbound queue depth, and send/drop counters.
	Transport network.TransportStats
	// Crypto snapshots the precompute layer: Lagrange cache hit rate,
	// nonce pool depth and refills, and share-verification batching.
	Crypto precompute.Stats
}

// Engine is one node's orchestration module.
type Engine struct {
	cfg  Config
	self int
	// suite is the node-wide precompute layer (Lagrange cache, batch
	// verifier, optional nonce pool) threaded into every protocol
	// instance. Always non-nil.
	suite *precompute.Suite

	events chan event

	mu        sync.Mutex
	instances map[string]*instance
	stopped   bool
	// retained holds finished instances in finish order (*instance);
	// the front is always the next to evict, making both cap and TTL
	// eviction O(1) per instance.
	retained *list.List
	// placeholders holds bare instances awaiting adoption (creation
	// order): watchers for ids this node has not seen and parked early
	// shares. They expire after RetainTTL and are capped at
	// placeholderMax (oldest evicted first), so unauthenticated result
	// queries cannot grow engine state without bound.
	placeholders   *list.List
	placeholderMax int
	// live holds started instances in adoption order; a run that never
	// finishes (e.g. a quorum that never forms) is expired after
	// liveTTL, so no path grows engine state without bound.
	live    *list.List
	liveTTL time.Duration
	// tombstones remembers evicted instance ids (id -> element of
	// tombOrder) so lookups report ErrExpired instead of recreating
	// state; bounded FIFO of tombstoneMax entries.
	tombstones   map[string]*list.Element
	tombOrder    *list.List
	tombstoneMax int
	// gens is a second, longer memory of the highest generation an id
	// is known to have run as. It is written alongside every tombstone
	// but never cleared when the tombstone is superseded or pushed out
	// of its FIFO: without it, a double eviction (the tombstone itself
	// evicted by churn before the re-submission arrives) would restart
	// the id at generation 1, which peers still retaining generation N
	// ignore, stalling the run until liveTTL. Bounded FIFO of genMax.
	gens     map[string]*list.Element
	genOrder *list.List
	genMax   int
	evicted  uint64

	rejectedShares    atomic.Uint64
	overloaded        atomic.Uint64
	partialBroadcasts atomic.Uint64

	stop chan struct{}
	done sync.WaitGroup
}

type instance struct {
	id string
	// gen is the run generation of this id: a re-submission after a
	// retention eviction starts generation N+1, announced on the start
	// envelope, so peers that still retain generation N supersede their
	// stale copy and join the fresh run instead of stalling it
	// (guarded by Engine.mu; effectively immutable once the protocol is
	// published).
	gen int
	// mu serializes all access to the TRI protocol, which is not safe
	// for concurrent use (relevant when Workers > 1).
	mu       sync.Mutex
	proto    protocols.Protocol
	futures  []*Future
	started  time.Time
	finished bool
	result   Result
	// backlog holds protocol messages that arrived before the instance
	// (or its generation) was started on this node.
	backlog []backlogEntry
	// op/scheme/keyID mirror the request that started this instance
	// (set at adoption, read at finish for precompute invalidation).
	op     protocols.Operation
	scheme string
	keyID  string
	// starting marks that a worker has claimed the instance for
	// protocol creation (guarded by Engine.mu). It distinguishes a
	// placeholder — created by Attach or by a peer share arriving
	// before the start announcement — from an instance whose protocol
	// is being (or has been) set up, so exactly one submission adopts
	// and starts each placeholder.
	starting bool
	// relem/pelem/lelem are this instance's entries in Engine.retained,
	// Engine.placeholders, and Engine.live (guarded by Engine.mu; nil
	// when absent).
	relem, pelem, lelem *list.Element
	// adoptedAt is the live-run clock, set when a worker adopts the
	// instance; finishedAt is the retention clock, set when it is
	// retired into the retention window (both guarded by Engine.mu).
	adoptedAt  time.Time
	finishedAt time.Time
}

type event struct {
	// Exactly one of req/batch/env is meaningful.
	req    *protocols.Request
	future *Future
	batch  []batchItem
	env    *network.Envelope
	// keyRetries counts how often a start announcement was deferred
	// waiting for its key to be installed.
	keyRetries int
}

// batchItem is one request of a batched submission.
type batchItem struct {
	req    protocols.Request
	future *Future
}

// backlogEntry is one parked protocol message with the run generation
// it belongs to; entries of other generations are filtered at drain.
type backlogEntry struct {
	msg protocols.ProtocolMessage
	gen int
}

// tombstone remembers an evicted instance id and the generation it ran
// as, so a re-submission can announce the next generation.
type tombstone struct {
	id  string
	gen int
}

// New creates and starts an engine.
func New(cfg Config) *Engine {
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.RetainTTL <= 0 {
		cfg.RetainTTL = 2 * time.Minute
	}
	if cfg.RetainMax <= 0 {
		cfg.RetainMax = 4096
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.RetainTTL / 8
		if cfg.SweepInterval > 5*time.Second {
			cfg.SweepInterval = 5 * time.Second
		}
		if cfg.SweepInterval < 10*time.Millisecond {
			cfg.SweepInterval = 10 * time.Millisecond
		}
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = 5 * time.Second
	}
	if cfg.FrostPoolDepth > 0 && cfg.PoolInterval <= 0 {
		cfg.PoolInterval = time.Second
	}
	// A started instance gets several retention windows (with a floor)
	// to finish before it is expired: generous against slow protocol
	// runs, still a hard bound on stalled ones (e.g. a quorum that
	// never forms).
	liveTTL := 4 * cfg.RetainTTL
	if liveTTL < 2*time.Second {
		liveTTL = 2 * time.Second
	}
	e := &Engine{
		cfg:  cfg,
		self: cfg.Keys.Index,
		suite: precompute.NewSuite(cfg.Rand, precompute.Options{
			PoolDepth:  cfg.FrostPoolDepth,
			PoolRefill: cfg.FrostPoolRefill,
		}),
		events:         make(chan event, cfg.QueueLen),
		instances:      make(map[string]*instance),
		retained:       list.New(),
		placeholders:   list.New(),
		placeholderMax: 4 * cfg.RetainMax,
		live:           list.New(),
		liveTTL:        liveTTL,
		tombstones:     make(map[string]*list.Element),
		tombOrder:      list.New(),
		tombstoneMax:   4 * cfg.RetainMax,
		gens:           make(map[string]*list.Element),
		genOrder:       list.New(),
		genMax:         16 * cfg.RetainMax,
		stop:           make(chan struct{}),
	}
	e.done.Add(2)
	go e.pump()
	go e.sweeper()
	for i := 0; i < cfg.Workers; i++ {
		e.done.Add(1)
		go e.worker()
	}
	if cfg.RefreshInterval > 0 {
		e.done.Add(1)
		go e.refresher()
	}
	if cfg.FrostPoolDepth > 0 {
		e.done.Add(1)
		go e.pooler()
	}
	return e
}

// pooler keeps the FROST nonce pool warm: each tick it submits the
// deterministic refill runs for every KG20 key below its watermark.
// Results are not awaited; a failed refill retries next tick.
func (e *Engine) pooler() {
	defer e.done.Done()
	ticker := time.NewTicker(e.cfg.PoolInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, sub := range e.poolRefillRequests() {
				if _, err := e.Submit(context.Background(), sub); err != nil {
					continue
				}
			}
		case <-e.stop:
			return
		}
	}
}

// poolRefillRequests builds the OpPoolRefill requests this node should
// initiate right now: one per KG20 key whose bank for the current epoch
// is below the refill watermark. Only the key's designated initiator —
// the node holding share index 1 — submits, so concurrent refills never
// race on overlapping sequence ranges; the deterministic session
// ("pool-<epoch>-<run>-<base>") makes a straggler's own tick join the
// announced instance instead of forking a second one.
func (e *Engine) poolRefillRequests() []protocols.Request {
	pool := e.suite.NoncePool()
	if !pool.Enabled() {
		return nil
	}
	var reqs []protocols.Request
	for _, info := range e.cfg.Keys.List() {
		if info.Scheme != schemes.KG20 {
			continue
		}
		k, err := e.cfg.Keys.Get(info.Scheme, info.ID)
		if err != nil || k.Share == nil || k.MemberIndex(e.self) != 1 {
			continue
		}
		run, base, count, need := pool.NeedRefill(string(k.Scheme), k.ID, k.Epoch)
		if !need {
			continue
		}
		// The run id in the session keeps a restarted initiator's refill
		// (which starts over at base 0) from colliding with a retained
		// pre-restart instance of the same base.
		reqs = append(reqs, protocols.Request{
			Scheme:  schemes.KG20,
			KeyID:   k.ID,
			Op:      protocols.OpPoolRefill,
			Payload: protocols.MarshalPoolRefill(run, base, count),
			Session: fmt.Sprintf("pool-%d-%x-%d", k.Epoch, run, base),
			Epoch:   k.Epoch,
		})
	}
	return reqs
}

// WarmNoncePools fills the FROST nonce pools synchronously: it submits
// the due refill runs and waits for them to finish (or ctx to expire).
// Benchmarks and tests call it to measure the steady warm-pool state
// instead of racing the background pooler's first tick. A node that is
// not the designated initiator of any key returns immediately.
func (e *Engine) WarmNoncePools(ctx context.Context) error {
	for _, req := range e.poolRefillRequests() {
		f, err := e.Submit(ctx, req)
		if err != nil {
			return err
		}
		res, err := f.Wait(ctx)
		if err != nil {
			return err
		}
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// refresher drives the scheduled proactive refresh: each tick submits
// the deterministic same-committee reshare requests for the current
// keystore contents. An overloaded queue skips the key until the next
// tick; results are not awaited (failures surface in the instance
// lifecycle like any other run).
func (e *Engine) refresher() {
	defer e.done.Done()
	ticker := time.NewTicker(e.cfg.RefreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, req := range protocols.ProactiveRefreshRequests(e.cfg.Keys) {
				if _, err := e.Submit(context.Background(), req); err != nil {
					continue
				}
			}
		case <-e.stop:
			return
		}
	}
}

// Stop shuts the engine down and waits for its goroutines.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	e.mu.Unlock()
	close(e.stop)
	e.done.Wait()
}

// Submit starts a protocol instance for the request on this node and
// announces it to the peers. The same request submitted on several nodes
// joins a single logical instance. Submit never blocks on a saturated
// engine: it fails fast with ErrOverloaded and the caller retries.
func (e *Engine) Submit(ctx context.Context, req protocols.Request) (*Future, error) {
	f := &Future{ch: make(chan Result, 1)}
	if err := e.enqueueEvent(ctx, event{req: &req, future: f}); err != nil {
		return nil, err
	}
	return f, nil
}

// Submission describes one request of a batched submission: its
// deterministic instance id, the future delivering its result, and
// whether the request joined an instance that already existed on this
// node (idempotent re-submission).
type Submission struct {
	InstanceID string
	Future     *Future
	Duplicate  bool
}

// SubmitBatch starts protocol instances for 1..N requests with a single
// event-queue hand-off, amortizing dispatch across the batch: the whole
// batch is processed in one worker pass instead of N queue round-trips.
// Submissions are returned in request order. Duplicate detection is a
// snapshot taken at enqueue time; concurrent submitters racing on the
// same request still join one instance, only the flag is best-effort
// for the loser of the race. An instance evicted after its retention
// window does not count as existing: re-submitting it starts a fresh
// run. Like Submit, a saturated queue yields ErrOverloaded, not a stall.
func (e *Engine) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]Submission, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	subs := make([]Submission, len(reqs))
	items := make([]batchItem, len(reqs))
	inBatch := make(map[string]bool, len(reqs))
	e.mu.Lock()
	for i, req := range reqs {
		id := req.InstanceID()
		// A bare placeholder (created by Attach or an early peer share)
		// is not a running instance: the submission that adopts it is
		// still the first submission.
		inst, exists := e.instances[id]
		dup := exists && (inst.starting || inst.proto != nil)
		f := &Future{ch: make(chan Result, 1)}
		subs[i] = Submission{InstanceID: id, Future: f, Duplicate: dup || inBatch[id]}
		items[i] = batchItem{req: req, future: f}
		inBatch[id] = true
	}
	e.mu.Unlock()
	if err := e.enqueueEvent(ctx, event{batch: items}); err != nil {
		return nil, err
	}
	return subs, nil
}

// enqueueEvent admits one submission event without ever blocking on a
// full queue (admission control): saturation is reported as
// ErrOverloaded so the caller can shed or retry with backoff.
func (e *Engine) enqueueEvent(ctx context.Context, ev event) error {
	select {
	case <-e.stop:
		return ErrStopped
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	select {
	case e.events <- ev:
		return nil
	default:
		e.overloaded.Add(1)
		return ErrOverloaded
	}
}

// pump moves network envelopes into the event queue. Unlike client
// submissions, peer traffic is not shed on a full queue: blocking here
// propagates backpressure to the transport.
func (e *Engine) pump() {
	defer e.done.Done()
	for {
		select {
		case env, ok := <-e.cfg.Net.Receive():
			if !ok {
				return
			}
			select {
			case e.events <- event{env: &env}:
			case <-e.stop:
				return
			}
		case <-e.stop:
			return
		}
	}
}

// worker processes events sequentially.
func (e *Engine) worker() {
	defer e.done.Done()
	for {
		select {
		case ev := <-e.events:
			e.handle(ev)
		case <-e.stop:
			return
		}
	}
}

func (e *Engine) handle(ev event) {
	switch {
	case ev.req != nil:
		e.handleSubmit(*ev.req, ev.future)
	case ev.batch != nil:
		for _, item := range ev.batch {
			e.handleSubmit(item.req, item.future)
		}
	case ev.env != nil:
		e.handleEnvelope(*ev.env, ev.keyRetries)
	}
}

// ensureInstance creates (or returns) the instance for a request. A
// placeholder instance — left behind by Attach or by a peer share that
// arrived before the start announcement — is adopted: its futures and
// backlog are kept and the protocol is created and started here. A
// tombstoned (evicted) id is resurrected as a fresh instance of the
// next generation. A start announcement carrying a generation above
// the locally held copy supersedes it: the stale copy (typically a
// retained finished result whose peers already evicted theirs) is
// retired and this node joins the fresh run deliberately instead of
// stalling it until liveTTL expiry. gen is the announced generation
// (0 for a local submission, which derives it); from is the mesh node
// index that initiated the instance — self for a local submission, the
// start announcement's sender otherwise — so protocols can tell whether
// the initiator is able to open their optimized paths (FROST's pooled
// single round). Lock order is always e.mu before inst.mu. The
// instance is returned even on error, so callers can retire it.
func (e *Engine) ensureInstance(req protocols.Request, announce bool, future *Future, gen, from int) (*instance, error) {
	id := req.InstanceID()
	e.mu.Lock()
	inst, ok := e.instances[id]
	var superseded *instance
	if ok && gen > inst.gen && (inst.starting || inst.proto != nil) {
		superseded = inst
		e.supersedeLocked(inst)
		inst, ok = nil, false
	}
	adopt := false
	if ok {
		if inst.proto == nil && !inst.starting {
			g := gen
			if g == 0 {
				// Local adoption of a placeholder: join the newest run
				// hinted by parked shares, else start the next known
				// generation.
				g = e.nextGenLocked(id)
				for _, b := range inst.backlog {
					if b.gen > g {
						g = b.gen
					}
				}
			}
			if g > inst.gen {
				inst.gen = g
			}
			e.adoptLocked(inst)
			adopt = true
		}
	} else {
		g := gen
		if g == 0 {
			g = e.nextGenLocked(id)
		}
		e.clearTombstoneLocked(id)
		inst = &instance{id: id, started: time.Now(), gen: g}
		if superseded != nil {
			// Early shares of the fresh run may have parked on the old
			// copy; carry them over (drainBacklog filters by generation).
			inst.backlog = superseded.backlog
			superseded.backlog = nil
		}
		e.instances[id] = inst
		e.adoptLocked(inst)
		adopt = true
	}
	if adopt {
		inst.op = req.Op
		inst.scheme = string(req.Scheme)
		inst.keyID = req.EffectiveKeyID()
	}
	e.mu.Unlock()
	if superseded != nil {
		// Fail the stale copy's watchers (no-op when it had finished).
		e.expireAll([]*instance{superseded})
	}
	if future != nil {
		inst.mu.Lock()
		if inst.finished {
			future.ch <- inst.result
		} else {
			inst.futures = append(inst.futures, future)
		}
		inst.mu.Unlock()
	}
	if !adopt {
		return inst, nil
	}

	proto, err := protocols.NewWith(e.cfg.Rand, e.cfg.Keys, req, protocols.Env{
		Suite:         e.suite,
		Initiator:     announce,
		InitiatorNode: from,
		Identity:      e.cfg.Identity,
		Roster:        e.cfg.Roster,
	})
	if err == nil {
		// Publish under e.mu so handleEnvelope's proto==nil check is
		// race free.
		e.mu.Lock()
		inst.proto = proto
		e.mu.Unlock()
	}

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if err != nil {
		e.finishLocked(id, inst, Result{InstanceID: id, Err: err})
		return inst, err
	}

	if announce {
		start := network.Envelope{
			Instance: id,
			Kind:     network.KindStart,
			Gen:      inst.gen,
			Payload:  req.Marshal(),
		}
		if err := e.broadcast(start); err != nil {
			e.finishLocked(id, inst, Result{InstanceID: id, Err: fmt.Errorf("announce: %w", err)})
			return inst, err
		}
	}
	e.advanceLocked(id, inst, true)
	return inst, nil
}

// broadcast sends one envelope to every peer under the engine's send
// deadline (the transport enqueues in O(1); the deadline only bounds a
// saturated block-policy queue). A partial failure is tolerated only
// while a quorum is still feasible: the threshold protocol needs t+1
// shares including this node's own, so at least t of the attempted
// peers must have been reached. A tolerated incident is counted in
// Stats.PartialBroadcasts and the lagging peer shows in
// Stats.Transport. A quorum-killing failure, or one not attributable
// to specific peers (closed transport), is returned to fail the
// instance instead of letting it stall until retention expiry.
func (e *Engine) broadcast(env network.Envelope) error {
	ctx, cancel := context.WithTimeout(context.Background(), e.cfg.SendTimeout)
	defer cancel()
	err := e.cfg.Net.Broadcast(ctx, env)
	if err == nil {
		return nil
	}
	var be *network.BroadcastError
	if !errors.As(err, &be) {
		return err
	}
	// be.Peers is the count the transport actually attempted — the
	// authoritative denominator even when only part of the mesh is
	// registered (dynamic port assignment).
	if reached := be.Peers - len(be.Failed); reached >= e.cfg.Keys.T {
		e.partialBroadcasts.Add(1)
		return nil
	}
	return err
}

func (e *Engine) handleSubmit(req protocols.Request, future *Future) {
	inst, err := e.ensureInstance(req, true, future, 0, e.self)
	if err == nil {
		// Peer shares may have arrived before the local submission.
		e.drainBacklog(req.InstanceID(), inst)
	}
	e.retire(inst)
}

func (e *Engine) handleEnvelope(env network.Envelope, keyRetries int) {
	// Unversioned senders mean generation 1.
	gen := env.Gen
	if gen < 1 {
		gen = 1
	}
	switch env.Kind {
	case network.KindStart:
		req, err := protocols.UnmarshalRequest(env.Payload)
		if err != nil {
			return // malformed announcement; ignore
		}
		if req.InstanceID() != env.Instance {
			return // inconsistent announcement; ignore
		}
		if e.deferForKey(req, env, keyRetries) {
			return
		}
		inst, err := e.ensureInstance(req, false, nil, gen, env.From)
		if err == nil {
			e.drainBacklog(env.Instance, inst)
		}
		e.retire(inst)
	case network.KindProto:
		msg := protocols.ProtocolMessage{
			Sender: env.From, Round: env.Round, Payload: env.Payload,
		}
		e.mu.Lock()
		inst, ok := e.instances[env.Instance]
		if ok && inst.proto != nil {
			switch {
			case gen < inst.gen:
				e.mu.Unlock()
				return // stale share from a superseded run
			case gen > inst.gen:
				// Early share of a fresh run racing ahead of its start
				// announcement: park it; the superseding start carries
				// the backlog over.
				if len(inst.backlog) < maxBacklog {
					inst.backlog = append(inst.backlog, backlogEntry{msg: msg, gen: gen})
				}
				e.mu.Unlock()
				return
			}
			e.mu.Unlock()
			e.deliver(env.Instance, inst, msg)
			e.retire(inst)
			return
		}
		// Share arrived before the start announcement (or while the
		// instance creation is in flight): park it. Any new activity
		// for an evicted id supersedes its tombstone — a peer may be
		// legitimately re-running the instance.
		var evicted []*instance
		if inst == nil {
			e.clearTombstoneLocked(env.Instance)
			inst, evicted = e.newPlaceholderLocked(env.Instance)
		}
		if len(inst.backlog) < maxBacklog {
			inst.backlog = append(inst.backlog, backlogEntry{msg: msg, gen: gen})
		}
		e.mu.Unlock()
		e.expireAll(evicted)
	}
}

// deferForKey reports whether a peer start announcement should wait
// for its key: the referenced key is not installed yet (a DKG on this
// node may still be finalizing), or the announcement pins a future
// epoch (a reshare on this node may still be finalizing), and retries
// remain. The envelope is re-enqueued after an exponential backoff;
// meanwhile the instance stays a placeholder, so early peer shares
// keep parking. A request pinned BEHIND the key's current epoch does
// not defer — time cannot roll it forward, so it fails fast with the
// typed epoch error.
func (e *Engine) deferForKey(req protocols.Request, env network.Envelope, retries int) bool {
	if req.Op == protocols.OpKeyGen || retries >= maxKeyRetry {
		return false
	}
	if k, err := e.cfg.Keys.Get(req.Scheme, req.EffectiveKeyID()); err == nil && req.Epoch <= k.Epoch {
		return false
	}
	delay := keyRetryBase << retries
	time.AfterFunc(delay, func() {
		select {
		case e.events <- event{env: &env, keyRetries: retries + 1}:
		case <-e.stop:
		}
	})
	return true
}

// drainBacklog replays messages that arrived before the instance start.
// Only entries of the instance's own generation are delivered; shares
// of an even newer run stay parked for the superseding start, stale
// ones are dropped.
func (e *Engine) drainBacklog(id string, inst *instance) {
	e.mu.Lock()
	if inst.proto == nil {
		// The adopting worker has not published the protocol yet
		// (possible with Workers > 1 when a duplicate submission races
		// the adoption): draining now would feed the parked shares to
		// deliver, which discards them. The adopter drains afterwards.
		e.mu.Unlock()
		return
	}
	backlog := inst.backlog
	inst.backlog = nil
	gen := inst.gen
	var keep []backlogEntry
	for _, entry := range backlog {
		if entry.gen > gen {
			keep = append(keep, entry)
		}
	}
	inst.backlog = keep
	e.mu.Unlock()
	for _, entry := range backlog {
		if entry.gen == gen {
			e.deliver(id, inst, entry.msg)
		}
	}
}

func (e *Engine) deliver(id string, inst *instance, msg protocols.ProtocolMessage) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.finished || inst.proto == nil {
		return
	}
	if err := inst.proto.Update(msg); err != nil {
		if errors.Is(err, protocols.ErrShareRejected) {
			e.rejectedShares.Add(1)
			if e.cfg.OnRejectedShare != nil {
				e.cfg.OnRejectedShare(id, err)
			}
			return
		}
		// Non-share errors are protocol failures.
		e.finishLocked(id, inst, Result{InstanceID: id, Err: err})
		return
	}
	e.advanceLocked(id, inst, false)
}

// advanceLocked runs the TRI state machine: execute rounds while ready,
// send produced messages, and finalize when possible. inst.mu is held.
func (e *Engine) advanceLocked(id string, inst *instance, firstRound bool) {
	if inst.finished || inst.proto == nil {
		return
	}
	runRound := firstRound
	for {
		if runRound {
			out, err := inst.proto.DoRound()
			if err != nil {
				e.finishLocked(id, inst, Result{InstanceID: id, Err: err})
				return
			}
			if out != nil {
				env := network.Envelope{
					Instance: id,
					Kind:     network.KindProto,
					Round:    out.Round,
					Gen:      inst.gen,
					Payload:  out.Payload,
				}
				// The transport hint selects P2P or TOB; with the
				// default stack both map to the P2P broadcast channel.
				if err := e.broadcast(env); err != nil {
					e.finishLocked(id, inst, Result{InstanceID: id, Err: fmt.Errorf("broadcast round %d: %w", out.Round, err)})
					return
				}
			}
		}
		if inst.proto.IsReadyToFinalize() {
			value, err := inst.proto.Finalize()
			e.finishLocked(id, inst, Result{InstanceID: id, Value: value, Err: err})
			return
		}
		if inst.proto.IsReadyForNextRound() {
			runRound = true
			continue
		}
		return
	}
}

// finishLocked completes an instance; inst.mu is held. Retention
// bookkeeping happens in retire, which workers call once inst.mu is
// released (lock order forbids taking e.mu here).
func (e *Engine) finishLocked(id string, inst *instance, res Result) {
	if inst.finished {
		return
	}
	inst.finished = true
	res.Started = inst.started
	res.Finished = time.Now()
	inst.result = res
	for _, f := range inst.futures {
		f.ch <- res
	}
	inst.futures = nil
	if inst.op == protocols.OpReshare && res.Err == nil {
		// The reshare advanced the key's epoch: drop cached Lagrange
		// coefficients and banked nonces of the superseded sharing, so
		// stale precomputed material can never meet the new shares.
		if k, err := e.cfg.Keys.Get(schemes.ID(inst.scheme), inst.keyID); err == nil {
			e.suite.Invalidate(inst.scheme, inst.keyID, k.Epoch)
		}
	}
}

// retire moves a finished instance into the retention window and
// enforces the retention cap, evicting the oldest finished instances in
// O(1) each. It is idempotent and a no-op for unfinished instances.
func (e *Engine) retire(inst *instance) {
	if inst == nil {
		return
	}
	inst.mu.Lock()
	finished := inst.finished
	finishedAt := inst.result.Finished
	inst.mu.Unlock()
	if !finished {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if inst.relem != nil || e.instances[inst.id] != inst {
		return // already retired, or evicted and replaced
	}
	e.unlistLocked(inst)
	inst.finishedAt = finishedAt
	inst.relem = e.retained.PushBack(inst)
	for e.retained.Len() > e.cfg.RetainMax {
		e.evictLocked(e.retained.Front().Value.(*instance))
	}
}

// evictLocked removes a retained instance from the engine, leaving a
// tombstone; e.mu is held.
func (e *Engine) evictLocked(inst *instance) {
	if inst.relem != nil {
		e.retained.Remove(inst.relem)
		inst.relem = nil
	}
	if cur, ok := e.instances[inst.id]; ok && cur == inst {
		delete(e.instances, inst.id)
	}
	e.tombstoneLocked(inst.id, inst.gen)
	e.evicted++
}

// supersedeLocked detaches a stale copy of an instance (an older
// generation a peer is re-running) so a fresh instance can take its
// id; e.mu is held. No tombstone is left — the fresh run immediately
// replaces the entry. The caller expires the detached copy outside
// e.mu: a finished copy's watchers already fired, an unfinished one
// fails with ErrExpired.
func (e *Engine) supersedeLocked(inst *instance) {
	e.unlistLocked(inst)
	if inst.relem != nil {
		e.retained.Remove(inst.relem)
		inst.relem = nil
	}
	if cur, ok := e.instances[inst.id]; ok && cur == inst {
		delete(e.instances, inst.id)
	}
	e.evicted++
}

// nextGenLocked is the generation a fresh local submission of id should
// run as: one above the evicted run's, when remembered; e.mu is held.
// The gens FIFO backstops the tombstone, so generation memory survives
// the tombstone's own eviction or supersession.
func (e *Engine) nextGenLocked(id string) int {
	if elem, ok := e.tombstones[id]; ok {
		return elem.Value.(tombstone).gen + 1
	}
	if elem, ok := e.gens[id]; ok {
		return elem.Value.(tombstone).gen + 1
	}
	return 1
}

// newPlaceholderLocked registers a bare instance awaiting adoption and
// enforces the placeholder cap; e.mu is held. Evicted placeholders are
// returned for the caller to expire once e.mu is released (their
// watchers get ErrExpired). No tombstone is left — the id never ran
// here, so a later Attach may park a fresh watcher.
func (e *Engine) newPlaceholderLocked(id string) (*instance, []*instance) {
	inst := &instance{id: id, started: time.Now()}
	e.instances[id] = inst
	inst.pelem = e.placeholders.PushBack(inst)
	var evicted []*instance
	for e.placeholders.Len() > e.placeholderMax {
		old := e.placeholders.Front().Value.(*instance)
		e.unlistLocked(old)
		delete(e.instances, old.id)
		e.evicted++
		evicted = append(evicted, old)
	}
	return inst, evicted
}

// adoptLocked marks an instance as claimed for protocol creation and
// moves it onto the live-run sweep list; e.mu is held.
func (e *Engine) adoptLocked(inst *instance) {
	inst.starting = true
	if inst.pelem != nil {
		e.placeholders.Remove(inst.pelem)
		inst.pelem = nil
	}
	inst.adoptedAt = time.Now()
	inst.lelem = e.live.PushBack(inst)
}

// unlistLocked drops an instance from whichever sweep list holds it;
// e.mu is held.
func (e *Engine) unlistLocked(inst *instance) {
	if inst.pelem != nil {
		e.placeholders.Remove(inst.pelem)
		inst.pelem = nil
	}
	if inst.lelem != nil {
		e.live.Remove(inst.lelem)
		inst.lelem = nil
	}
}

// expireAll finishes evicted instances with ErrExpired, firing their
// watchers. Must be called without e.mu held (lock order).
func (e *Engine) expireAll(insts []*instance) {
	for _, inst := range insts {
		inst.mu.Lock()
		e.finishLocked(inst.id, inst, Result{InstanceID: inst.id, Err: ErrExpired})
		inst.mu.Unlock()
	}
}

// tombstoneLocked remembers an evicted id (and the generation it ran
// as) in the bounded FIFO; e.mu is held.
func (e *Engine) tombstoneLocked(id string, gen int) {
	e.rememberGenLocked(id, gen)
	if elem, ok := e.tombstones[id]; ok {
		if ts := elem.Value.(tombstone); gen > ts.gen {
			elem.Value = tombstone{id: id, gen: gen}
		}
		return
	}
	e.tombstones[id] = e.tombOrder.PushBack(tombstone{id: id, gen: gen})
	for e.tombOrder.Len() > e.tombstoneMax {
		front := e.tombOrder.Front()
		e.tombOrder.Remove(front)
		delete(e.tombstones, front.Value.(tombstone).id)
	}
}

// rememberGenLocked records the highest generation id is known to have
// run as; e.mu is held. Unlike the tombstone, this memory is not
// cleared by clearTombstoneLocked — only FIFO pressure forgets it.
func (e *Engine) rememberGenLocked(id string, gen int) {
	if elem, ok := e.gens[id]; ok {
		if ts := elem.Value.(tombstone); gen > ts.gen {
			elem.Value = tombstone{id: id, gen: gen}
		}
		return
	}
	e.gens[id] = e.genOrder.PushBack(tombstone{id: id, gen: gen})
	for e.genOrder.Len() > e.genMax {
		front := e.genOrder.Front()
		e.genOrder.Remove(front)
		delete(e.gens, front.Value.(tombstone).id)
	}
}

// clearTombstoneLocked forgets an evicted id (new activity supersedes
// the tombstone); e.mu is held. The generation memory in e.gens is
// deliberately kept: the superseding run still needs to announce a
// generation above the evicted one if it is ever resubmitted.
func (e *Engine) clearTombstoneLocked(id string) {
	if elem, ok := e.tombstones[id]; ok {
		e.tombOrder.Remove(elem)
		delete(e.tombstones, id)
	}
}

// sweeper periodically evicts finished instances past the retention
// TTL, placeholders that never materialized, and started instances
// that never finished within their run window.
func (e *Engine) sweeper() {
	defer e.done.Done()
	ticker := time.NewTicker(e.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.sweep(time.Now())
		case <-e.stop:
			return
		}
	}
}

// sweep runs one sweeper pass. Both lists are ordered by their
// respective clocks, so each pass touches only the entries it evicts.
func (e *Engine) sweep(now time.Time) {
	var expired []*instance
	e.mu.Lock()
	for front := e.retained.Front(); front != nil; front = e.retained.Front() {
		inst := front.Value.(*instance)
		if now.Sub(inst.finishedAt) < e.cfg.RetainTTL {
			break
		}
		e.evictLocked(inst)
	}
	// Bare placeholders that never materialized expire after RetainTTL.
	// No tombstone: the id never ran here.
	for front := e.placeholders.Front(); front != nil; front = e.placeholders.Front() {
		inst := front.Value.(*instance)
		if now.Sub(inst.started) < e.cfg.RetainTTL {
			break
		}
		e.unlistLocked(inst)
		delete(e.instances, inst.id)
		e.evicted++
		expired = append(expired, inst)
	}
	// Started instances that never finish (a quorum that never forms, a
	// wedged run) expire after the longer liveTTL, so engine state
	// stays bounded on every path.
	for front := e.live.Front(); front != nil; front = e.live.Front() {
		inst := front.Value.(*instance)
		if now.Sub(inst.adoptedAt) < e.liveTTL {
			break
		}
		if inst.proto == nil {
			break // protocol creation in flight; the next pass decides
		}
		e.unlistLocked(inst)
		delete(e.instances, inst.id)
		e.tombstoneLocked(inst.id, inst.gen)
		e.evicted++
		expired = append(expired, inst)
	}
	e.mu.Unlock()
	// Fail the expired instances' watchers outside e.mu (lock order).
	e.expireAll(expired)
}

// Attach registers a future on an instance (present or future), used by
// the service layer's result endpoint. The returned future fires
// immediately when the instance already finished, and immediately with
// ErrExpired when the instance was evicted after its retention window.
func (e *Engine) Attach(id string) *Future {
	f := &Future{ch: make(chan Result, 1)}
	e.mu.Lock()
	inst, ok := e.instances[id]
	var evicted []*instance
	if !ok {
		if _, tomb := e.tombstones[id]; tomb {
			e.mu.Unlock()
			f.ch <- Result{InstanceID: id, Err: ErrExpired}
			return f
		}
		inst, evicted = e.newPlaceholderLocked(id)
	}
	e.mu.Unlock()
	e.expireAll(evicted)
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.finished {
		f.ch <- inst.result
		return f
	}
	inst.futures = append(inst.futures, f)
	return f
}

// InstanceCount reports the number of tracked instances (for tests and
// metrics): live instances, placeholders, and retained finished results.
func (e *Engine) InstanceCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.instances)
}

// Stats snapshots the engine's lifecycle and flow control counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		Live:       len(e.instances) - e.retained.Len(),
		Finished:   e.retained.Len(),
		Evicted:    e.evicted,
		QueueDepth: len(e.events),
		QueueCap:   cap(e.events),
	}
	e.mu.Unlock()
	st.RejectedShares = e.rejectedShares.Load()
	st.Overloaded = e.overloaded.Load()
	st.PartialBroadcasts = e.partialBroadcasts.Load()
	st.Transport = e.cfg.Net.TransportStats()
	st.Crypto = e.suite.Stats()
	return st
}
