package orchestration

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"testing"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", msg)
}

func coinReq(session string) protocols.Request {
	return protocols.Request{
		Scheme: schemes.CKS05, Op: protocols.OpCoin,
		Payload: []byte("lifecycle"), Session: session,
	}
}

// TestRetentionCapBoundsMemory is the sustained-load acceptance test:
// far more requests than the retention cap are submitted and consumed,
// and every engine's instance count settles at the cap instead of
// growing without bound.
func TestRetentionCapBoundsMemory(t *testing.T) {
	const cap = 16
	const total = 96
	const wave = 16
	c := newCluster(t, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.RetainMax = cap
		cfg.RetainTTL = time.Hour // only the cap evicts here
	})
	for start := 0; start < total; start += wave {
		reqs := make([]protocols.Request, wave)
		for i := range reqs {
			reqs[i] = coinReq(fmt.Sprintf("cap-%d", start+i))
		}
		subs, err := c.engines[0].SubmitBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range subs {
			res, err := sub.Future.Wait(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Err != nil {
				t.Fatalf("instance %s failed: %v", sub.InstanceID, res.Err)
			}
		}
	}
	for i, e := range c.engines {
		e := e
		waitUntil(t, 20*time.Second, func() bool { return e.InstanceCount() == cap },
			fmt.Sprintf("engine %d: instance count %d, want retention cap %d", i+1, e.InstanceCount(), cap))
		st := e.Stats()
		if st.Finished != cap || st.Live != 0 {
			t.Fatalf("engine %d stats: %+v, want finished=%d live=0", i+1, st, cap)
		}
		if st.Evicted < total-cap {
			t.Fatalf("engine %d evicted %d, want >= %d", i+1, st.Evicted, total-cap)
		}
	}
}

// TestRetainTTLEvictsAndAttachExpires: after the retention window, the
// result is gone and Attach reports a typed ErrExpired immediately
// instead of parking a watcher forever.
func TestRetainTTLEvictsAndAttachExpires(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.RetainTTL = 80 * time.Millisecond
		cfg.SweepInterval = 10 * time.Millisecond
	})
	req := coinReq("ttl")
	waitAll(t, c.submitAll(t, req))
	id := req.InstanceID()

	e := c.engines[0]
	waitUntil(t, 10*time.Second, func() bool { return e.InstanceCount() == 0 },
		"finished instance never evicted by TTL sweep")
	if st := e.Stats(); st.Evicted == 0 || st.Finished != 0 {
		t.Fatalf("stats after TTL eviction: %+v", st)
	}

	select {
	case res := <-e.Attach(id).Done():
		if !errors.Is(res.Err, ErrExpired) {
			t.Fatalf("attach after expiry: got %v, want ErrExpired", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("attach on evicted instance did not resolve immediately")
	}
}

// TestResubmitAfterEvictionStartsFresh: an evicted instance does not
// count as a duplicate — re-submitting the request clears the tombstone
// and runs a fresh instance to completion on every node.
func TestResubmitAfterEvictionStartsFresh(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.RetainTTL = 80 * time.Millisecond
		cfg.SweepInterval = 10 * time.Millisecond
	})
	req := coinReq("fresh")
	first := waitAll(t, c.submitAll(t, req))

	for i, e := range c.engines {
		e := e
		waitUntil(t, 10*time.Second, func() bool { return e.InstanceCount() == 0 },
			fmt.Sprintf("engine %d never evicted the finished instance", i+1))
	}

	subs, err := c.engines[0].SubmitBatch(context.Background(), []protocols.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if subs[0].Duplicate {
		t.Fatal("re-submission after eviction flagged duplicate")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := subs[0].Future.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("fresh run failed: %v", res.Err)
	}
	// CKS05 is deterministic in the coin name: the fresh run reproduces
	// the evicted value.
	if string(res.Value) != string(first[0].Value) {
		t.Fatal("fresh run disagrees with the evicted result")
	}
	// The tombstone is gone: Attach serves the retained fresh result.
	select {
	case res := <-c.engines[0].Attach(req.InstanceID()).Done():
		if res.Err != nil {
			t.Fatalf("attach after fresh run: %v", res.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("attach after fresh run did not resolve")
	}
}

// TestPlaceholderWatchersExpire: a watcher attached to an id that never
// materializes is failed with ErrExpired by the sweeper, and the
// placeholder does not leak.
func TestPlaceholderWatchersExpire(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.RetainTTL = 80 * time.Millisecond
		cfg.SweepInterval = 10 * time.Millisecond
	})
	e := c.engines[0]
	f := e.Attach("never-started-instance")
	select {
	case res := <-f.Done():
		if !errors.Is(res.Err, ErrExpired) {
			t.Fatalf("placeholder watcher got %v, want ErrExpired", res.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("placeholder watcher never expired")
	}
	waitUntil(t, 5*time.Second, func() bool { return e.InstanceCount() == 0 },
		"expired placeholder still tracked")
}

// TestPlaceholderCapBoundsWatchers: attaching watchers for arbitrary
// unknown ids (the shape of an unauthenticated result-query flood)
// cannot grow engine state past the placeholder cap — the oldest
// placeholders are evicted with ErrExpired instead.
func TestPlaceholderCapBoundsWatchers(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.RetainMax = 2 // placeholder cap = 4 * RetainMax = 8
		cfg.RetainTTL = time.Hour
	})
	e := c.engines[0]
	const flood = 40
	futures := make([]*Future, flood)
	for i := range futures {
		futures[i] = e.Attach(fmt.Sprintf("bogus-id-%04d", i))
	}
	if got := e.InstanceCount(); got > 8 {
		t.Fatalf("watcher flood grew engine to %d instances, cap is 8", got)
	}
	// The overflowed watchers were expired, not silently dropped.
	for i := 0; i < flood-8; i++ {
		select {
		case res := <-futures[i].Done():
			if !errors.Is(res.Err, ErrExpired) {
				t.Fatalf("evicted watcher %d got %v, want ErrExpired", i, res.Err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("evicted watcher %d never resolved", i)
		}
	}
	if st := e.Stats(); st.Evicted < flood-8 {
		t.Fatalf("stats after flood: %+v", st)
	}
}

// TestDuplicateSubmitWithWorkers smoke-tests duplicate submissions
// racing adoption when several workers share the event queue (the
// backlog must survive until the adopter publishes the protocol).
func TestDuplicateSubmitWithWorkers(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.Workers = 4
	})
	for round := 0; round < 5; round++ {
		req := coinReq(fmt.Sprintf("workers-%d", round))
		var futures []*Future
		for _, e := range c.engines {
			for dup := 0; dup < 3; dup++ {
				f, err := e.Submit(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				futures = append(futures, f)
			}
		}
		// The first future per engine is enough: duplicates may share.
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		res, err := futures[0].Wait(ctx)
		cancel()
		if err != nil || res.Err != nil {
			t.Fatalf("round %d: %v / %v", round, err, res.Err)
		}
	}
}

// TestStalledRunExpires: a started instance whose quorum never forms
// (here: one live node of four) is expired by the sweeper after the
// live-run window — watchers get ErrExpired and the engine returns to
// zero tracked instances instead of leaking the stalled run.
func TestStalledRunExpires(t *testing.T) {
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(4, memnet.Options{})
	t.Cleanup(hub.Close)
	e := New(Config{
		Keys:          nodes[0],
		Net:           hub.Endpoint(1),
		RetainTTL:     80 * time.Millisecond, // liveTTL floors at 2s
		SweepInterval: 20 * time.Millisecond,
	})
	t.Cleanup(e.Stop)

	f, err := e.Submit(context.Background(), coinReq("stalled"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-f.Done():
		if !errors.Is(res.Err, ErrExpired) {
			t.Fatalf("stalled run resolved with %v, want ErrExpired", res.Err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("stalled run never expired")
	}
	waitUntil(t, 5*time.Second, func() bool { return e.InstanceCount() == 0 },
		"stalled instance still tracked after expiry")
	if st := e.Stats(); st.Evicted == 0 {
		t.Fatalf("stats after stalled-run expiry: %+v", st)
	}
}

// blockingNet wedges every Broadcast until released, pinning the worker
// so the event queue can be saturated deterministically.
type blockingNet struct {
	release chan struct{}
	in      chan network.Envelope
}

func (b *blockingNet) Send(context.Context, int, network.Envelope) error { return nil }
func (b *blockingNet) Broadcast(context.Context, network.Envelope) error {
	<-b.release
	return nil
}
func (b *blockingNet) Receive() <-chan network.Envelope       { return b.in }
func (b *blockingNet) TransportStats() network.TransportStats { return network.TransportStats{} }
func (b *blockingNet) Close() error                           { return nil }

// TestSubmitOverloadedFailsFast: a saturated event queue rejects both
// Submit and SubmitBatch with the typed ErrOverloaded instead of
// blocking the submitter, and the rejections are counted.
func TestSubmitOverloadedFailsFast(t *testing.T) {
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	bn := &blockingNet{release: make(chan struct{}), in: make(chan network.Envelope)}
	e := New(Config{
		Keys:     nodes[0],
		Net:      bn,
		QueueLen: 1,
	})
	t.Cleanup(e.Stop)
	t.Cleanup(func() { close(bn.release) }) // unwedge the worker before Stop

	ctx := context.Background()
	if _, err := e.Submit(ctx, coinReq("a")); err != nil {
		t.Fatal(err)
	}
	// The worker dequeues "a" and wedges in the start announcement.
	waitUntil(t, 5*time.Second, func() bool { return e.Stats().QueueDepth == 0 },
		"worker never picked up the first submission")
	if _, err := e.Submit(ctx, coinReq("b")); err != nil { // fills the queue
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := e.Submit(ctx, coinReq("c")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit on full queue: got %v, want ErrOverloaded", err)
	}
	if _, err := e.SubmitBatch(ctx, []protocols.Request{coinReq("d")}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch on full queue: got %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("overload rejection took %v, want fail-fast", elapsed)
	}
	st := e.Stats()
	if st.Overloaded != 2 || st.QueueDepth != 1 || st.QueueCap != 1 {
		t.Fatalf("stats after overload: %+v", st)
	}
}

// TestRejectedSharesCounted: the stats snapshot counts invalid shares
// alongside the existing observer hook.
func TestRejectedSharesCounted(t *testing.T) {
	c := newCluster(t, 1, 4, memnet.Options{})
	req := coinReq("rejected")
	garbage := network.Envelope{
		Instance: req.InstanceID(),
		Kind:     network.KindProto,
		Round:    1,
		Payload:  []byte("not a share"),
	}
	if err := c.hub.Endpoint(4).Broadcast(context.Background(), garbage); err != nil {
		t.Fatal(err)
	}
	futures := make([]*Future, 0, 3)
	for _, e := range c.engines[:3] {
		f, err := e.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	waitAll(t, futures)
	waitUntil(t, 5*time.Second, func() bool {
		var total uint64
		for _, e := range c.engines[:3] {
			total += e.Stats().RejectedShares
		}
		return total > 0
	}, "garbage shares not counted in stats")
}

// BenchmarkSustainedLoad drives waves of coin instances through a
// 4-node cluster with a small retention cap and reports the retained
// instance count, demonstrating bounded per-node state under sustained
// traffic.
func BenchmarkSustainedLoad(b *testing.B) {
	const cap = 32
	const wave = 8
	c := newCluster(b, 1, 4, memnet.Options{}, func(cfg *Config) {
		cfg.RetainMax = cap
		cfg.RetainTTL = time.Hour
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs := make([]protocols.Request, wave)
		for j := range reqs {
			reqs[j] = coinReq(fmt.Sprintf("bench-%d-%d", i, j))
		}
		subs, err := c.engines[0].SubmitBatch(context.Background(), reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, sub := range subs {
			res, err := sub.Future.Wait(context.Background())
			if err != nil || res.Err != nil {
				b.Fatalf("wait: %v / %v", err, res.Err)
			}
		}
	}
	b.StopTimer()
	waitUntil(b, 20*time.Second, func() bool { return c.engines[0].InstanceCount() <= cap },
		"instance count above retention cap after load")
	b.ReportMetric(float64(c.engines[0].InstanceCount()), "retained-instances")
	b.ReportMetric(float64(c.engines[0].Stats().Evicted), "evicted")
}
