package orchestration

import (
	"context"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
)

// scriptedNet returns a scripted error from Broadcast and a scripted
// transport snapshot, isolating the engine's broadcast-failure policy
// from any real transport.
type scriptedNet struct {
	broadcastErr error
	stats        network.TransportStats
	in           chan network.Envelope
}

func (s *scriptedNet) Send(context.Context, int, network.Envelope) error { return nil }
func (s *scriptedNet) Broadcast(context.Context, network.Envelope) error { return s.broadcastErr }
func (s *scriptedNet) Receive() <-chan network.Envelope                  { return s.in }
func (s *scriptedNet) TransportStats() network.TransportStats            { return s.stats }
func (s *scriptedNet) Close() error                                      { return nil }

func scriptedEngine(t *testing.T, tt int, net *scriptedNet) *Engine {
	t.Helper()
	nodes, err := keys.Deal(rand.Reader, tt, 4, keys.Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Keys: nodes[0], Net: net})
	t.Cleanup(e.Stop)
	return e
}

// TestPartialBroadcastFailureToleratedAndCounted: a broadcast that
// fails for some — but not all — peers must not fail the instance (the
// surviving set may still reach a quorum); the incident is counted and
// attributable through Stats.
func TestPartialBroadcastFailureToleratedAndCounted(t *testing.T) {
	net := &scriptedNet{
		in: make(chan network.Envelope),
		broadcastErr: network.NewBroadcastError(3, []*network.PeerError{
			{Peer: 3, Err: network.ErrPeerBacklogged},
		}),
	}
	e := scriptedEngine(t, 1, net)
	f, err := e.Submit(context.Background(), coinReq("partial"))
	if err != nil {
		t.Fatal(err)
	}
	// The announce failed for peer 3 only: the instance must stay live,
	// waiting for the quorum that peers 2 and 4 can still form.
	select {
	case res := <-f.Done():
		t.Fatalf("partially announced instance failed early: %+v", res)
	case <-time.After(100 * time.Millisecond):
	}
	// Both the announce and the first round share broadcast were
	// partial; each is counted.
	if st := e.Stats(); st.PartialBroadcasts < 1 || st.Live != 1 {
		t.Fatalf("stats = %+v, want partial broadcasts counted and a live instance", st)
	}
}

// TestTotalBroadcastFailureFailsInstance: a broadcast that reaches no
// peer at all fails the instance with the announce error.
func TestTotalBroadcastFailureFailsInstance(t *testing.T) {
	net := &scriptedNet{
		in: make(chan network.Envelope),
		broadcastErr: network.NewBroadcastError(3, []*network.PeerError{
			{Peer: 2, Err: network.ErrPeerBacklogged},
			{Peer: 3, Err: network.ErrPeerBacklogged},
			{Peer: 4, Err: network.ErrPeerBacklogged},
		}),
	}
	e := scriptedEngine(t, 1, net)
	f, err := e.Submit(context.Background(), coinReq("total"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-f.Done():
		if !errors.Is(res.Err, network.ErrPeerBacklogged) {
			t.Fatalf("total broadcast failure surfaced %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("totally unannounced instance never failed")
	}
	if st := e.Stats(); st.PartialBroadcasts != 0 {
		t.Fatalf("total failure counted as partial: %+v", st)
	}
}

// TestQuorumKillingPartialFailureFailsInstance: a partial failure that
// leaves fewer than t reachable peers cannot produce the t+1 shares
// the protocol needs — the engine must fail the instance immediately
// instead of letting it stall until retention expiry.
func TestQuorumKillingPartialFailureFailsInstance(t *testing.T) {
	net := &scriptedNet{
		in: make(chan network.Envelope),
		// t=2 needs 3 shares (self + 2 peers); only 1 peer was reached.
		broadcastErr: network.NewBroadcastError(3, []*network.PeerError{
			{Peer: 2, Err: network.ErrPeerBacklogged},
			{Peer: 4, Err: network.ErrPeerBacklogged},
		}),
	}
	e := scriptedEngine(t, 2, net)
	f, err := e.Submit(context.Background(), coinReq("no-quorum"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-f.Done():
		if !errors.Is(res.Err, network.ErrPeerBacklogged) {
			t.Fatalf("quorum-killing partial failure surfaced %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("quorum-impossible instance never failed")
	}
	if st := e.Stats(); st.PartialBroadcasts != 0 {
		t.Fatalf("quorum-killing failure counted as tolerable partial: %+v", st)
	}
}

// TestUnattributableBroadcastFailureFailsInstance: an error that names
// no peer (a closed transport) is not a partial outage and fails the
// instance.
func TestUnattributableBroadcastFailureFailsInstance(t *testing.T) {
	net := &scriptedNet{
		in:           make(chan network.Envelope),
		broadcastErr: network.ErrTransportClosed,
	}
	e := scriptedEngine(t, 1, net)
	f, err := e.Submit(context.Background(), coinReq("closed"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-f.Done():
		if !errors.Is(res.Err, network.ErrTransportClosed) {
			t.Fatalf("closed transport surfaced %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("instance never failed on a closed transport")
	}
}

// TestStatsCarryTransportSnapshot: Engine.Stats threads the transport's
// per-peer health through unchanged, the seam /v2/info serves to
// operators.
func TestStatsCarryTransportSnapshot(t *testing.T) {
	net := &scriptedNet{
		in: make(chan network.Envelope),
		stats: network.TransportStats{Peers: []network.PeerStats{
			{Peer: 2, State: network.PeerUp, QueueCap: 64, Sent: 7},
			{Peer: 3, State: network.PeerDown, QueueCap: 64, QueueDepth: 9, ConsecutiveFailures: 4},
		}},
	}
	e := scriptedEngine(t, 1, net)
	st := e.Stats()
	down, ok := st.Transport.Peer(3)
	if !ok || down.State != network.PeerDown || down.QueueDepth != 9 {
		t.Fatalf("transport snapshot lost the down peer: %+v", st.Transport)
	}
	if up, ok := st.Transport.Peer(2); !ok || up.Sent != 7 {
		t.Fatalf("transport snapshot lost the healthy peer: %+v", st.Transport)
	}
}
