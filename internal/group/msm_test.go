package group

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// naiveMSM is the reference per-term scalar-multiply-and-add.
func naiveMSM(g Group, points []Point, scalars []*big.Int) Point {
	acc := g.Identity()
	for i, p := range points {
		acc = acc.Add(p.Mul(scalars[i]))
	}
	return acc
}

func msmCase(t *testing.T, g Group, n int) ([]Point, []*big.Int) {
	t.Helper()
	pts := make([]Point, n)
	ks := make([]*big.Int, n)
	for i := range pts {
		k, err := g.RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = g.HashToPoint("msm-test", []byte{byte(i)})
		ks[i] = k
	}
	return pts, ks
}

func TestMultiScalarMulMatchesNaive(t *testing.T) {
	for _, g := range []Group{Edwards25519(), P256()} {
		t.Run(g.Name(), func(t *testing.T) {
			for _, n := range []int{1, 2, 7, 32} {
				pts, ks := msmCase(t, g, n)
				fast := MultiScalarMul(g, pts, ks)
				slow := naiveMSM(g, pts, ks)
				if !fast.Equal(slow) {
					t.Fatalf("n=%d: fast path disagrees with naive sum", n)
				}
			}
			// Scalars outside [0, order) reduce like Mul does.
			pts, ks := msmCase(t, g, 3)
			ks[0] = new(big.Int).Add(ks[0], g.Order())
			ks[1] = new(big.Int).Neg(ks[1])
			if !MultiScalarMul(g, pts, ks).Equal(naiveMSM(g, pts, ks)) {
				t.Fatal("unreduced scalars disagree with naive sum")
			}
			// Zero scalars contribute nothing.
			if !MultiScalarMul(g, pts, []*big.Int{big.NewInt(0), big.NewInt(0), big.NewInt(0)}).IsIdentity() {
				t.Fatal("all-zero MSM is not the identity")
			}
		})
	}
}

func TestMultiScalarMulEmptyAndMismatch(t *testing.T) {
	g := Edwards25519()
	if !MultiScalarMul(g, nil, nil).IsIdentity() {
		t.Fatal("empty MSM is not the identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice lengths did not panic")
		}
	}()
	MultiScalarMul(g, []Point{g.Generator()}, nil)
}

func TestRelationHolds(t *testing.T) {
	g := Edwards25519()
	a, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	neg := new(big.Int).Sub(g.Order(), a)
	good := Relation{Points: []Point{g.Generator(), g.Generator()}, Scalars: []*big.Int{a, neg}}
	if !good.Holds(g) {
		t.Fatal("a*G + (-a)*G rejected")
	}
	bad := Relation{Points: []Point{g.Generator()}, Scalars: []*big.Int{big.NewInt(1)}}
	if bad.Holds(g) {
		t.Fatal("1*G accepted as identity")
	}
}

func BenchmarkMSM32Fast(b *testing.B) {
	g := Edwards25519()
	pts := make([]Point, 32)
	ks := make([]*big.Int, 32)
	for i := range pts {
		k, err := g.RandomScalar(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		pts[i] = g.HashToPoint("msm-bench", []byte{byte(i)})
		ks[i] = k
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiScalarMul(g, pts, ks)
	}
}

func BenchmarkMSM32Naive(b *testing.B) {
	g := Edwards25519()
	pts := make([]Point, 32)
	ks := make([]*big.Int, 32)
	for i := range pts {
		k, err := g.RandomScalar(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		pts[i] = g.HashToPoint("msm-bench", []byte{byte(i)})
		ks[i] = k
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveMSM(g, pts, ks)
	}
}
