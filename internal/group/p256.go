package group

import (
	"crypto/elliptic"
	"crypto/sha256"
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
)

// p256Group wraps the standard library's NIST P-256 curve behind the Group
// interface. P-256 has a prime-order group (cofactor 1), so no subgroup
// checks are needed beyond the on-curve check. This implementation backs
// the group-choice ablation benchmark (A3 in DESIGN.md): it uses the
// stdlib's optimized scalar multiplication, in contrast to the portable
// math/big edwards25519 implementation.
type p256Group struct{}

// P256 returns the NIST P-256 group.
func P256() Group { return p256Group{} }

var _ Group = p256Group{}

func (p256Group) Name() string { return "p256" }

func (p256Group) Order() *big.Int { return elliptic.P256().Params().N }

func (p256Group) Identity() Point { return &p256Point{infinity: true} }

func (p256Group) Generator() Point {
	params := elliptic.P256().Params()
	return &p256Point{x: mathutil.Clone(params.Gx), y: mathutil.Clone(params.Gy)}
}

func (g p256Group) BaseMul(k *big.Int) Point {
	kk := new(big.Int).Mod(k, g.Order())
	if kk.Sign() == 0 {
		return g.Identity()
	}
	x, y := elliptic.P256().ScalarBaseMult(kk.Bytes())
	return &p256Point{x: x, y: y}
}

func (g p256Group) RandomScalar(r io.Reader) (*big.Int, error) {
	return randomScalar(r, g.Order())
}

func (g p256Group) HashToScalar(domain string, data ...[]byte) *big.Int {
	return hashToScalar(g.Order(), domain, data...)
}

// HashToPoint uses try-and-increment: derive candidate x coordinates from
// a counter-extended hash until one lies on the curve, then choose the
// even-y root deterministically.
func (g p256Group) HashToPoint(domain string, data ...[]byte) Point {
	params := elliptic.P256().Params()
	seedH := sha256.New()
	seedH.Write([]byte("thetacrypt/h2p/" + domain))
	for _, d := range data {
		var lenbuf [8]byte
		putUint64(lenbuf[:], uint64(len(d)))
		seedH.Write(lenbuf[:])
		seedH.Write(d)
	}
	seed := seedH.Sum(nil)
	for ctr := uint64(0); ; ctr++ {
		h := sha256.New()
		h.Write(seed)
		var cb [8]byte
		putUint64(cb[:], ctr)
		h.Write(cb[:])
		x := new(big.Int).SetBytes(h.Sum(nil))
		if x.Cmp(params.P) >= 0 {
			continue
		}
		// y^2 = x^3 - 3x + b
		y2 := new(big.Int).Mul(x, x)
		y2.Mul(y2, x)
		y2.Sub(y2, new(big.Int).Lsh(x, 1))
		y2.Sub(y2, x)
		y2.Add(y2, params.B)
		y2.Mod(y2, params.P)
		y, ok := mathutil.Sqrt3Mod4(y2, params.P)
		if !ok {
			continue
		}
		if y.Bit(0) == 1 {
			y = mathutil.SubMod(big.NewInt(0), y, params.P)
		}
		return &p256Point{x: x, y: y}
	}
}

func (p256Group) PointLen() int { return 33 }

func (g p256Group) UnmarshalPoint(data []byte) (Point, error) {
	if len(data) == 33 && data[0] == 0 {
		// Canonical identity encoding: 0x00 followed by zeros.
		for _, b := range data[1:] {
			if b != 0 {
				return nil, ErrInvalidPoint
			}
		}
		return g.Identity(), nil
	}
	x, y := elliptic.UnmarshalCompressed(elliptic.P256(), data)
	if x == nil {
		return nil, ErrInvalidPoint
	}
	return &p256Point{x: x, y: y}, nil
}

// p256Point is an affine P-256 point; the identity is represented
// explicitly because crypto/elliptic's affine formulas do not define a
// point at infinity.
type p256Point struct {
	x, y     *big.Int
	infinity bool
}

var _ Point = (*p256Point)(nil)

func (p *p256Point) Add(q Point) Point {
	qq, ok := q.(*p256Point)
	if !ok {
		panic("group: mixing p256 with foreign point")
	}
	if p.infinity {
		return qq.clone()
	}
	if qq.infinity {
		return p.clone()
	}
	// P + (-P) is the identity; crypto/elliptic's affine Add does not
	// represent it, so handle the case explicitly.
	if p.x.Cmp(qq.x) == 0 && p.y.Cmp(qq.y) != 0 {
		return &p256Point{infinity: true}
	}
	var x, y *big.Int
	if p.x.Cmp(qq.x) == 0 && p.y.Cmp(qq.y) == 0 {
		x, y = elliptic.P256().Double(p.x, p.y)
	} else {
		x, y = elliptic.P256().Add(p.x, p.y, qq.x, qq.y)
	}
	if x.Sign() == 0 && y.Sign() == 0 {
		return &p256Point{infinity: true}
	}
	return &p256Point{x: x, y: y}
}

func (p *p256Point) Neg() Point {
	if p.infinity {
		return &p256Point{infinity: true}
	}
	params := elliptic.P256().Params()
	return &p256Point{x: mathutil.Clone(p.x), y: mathutil.SubMod(big.NewInt(0), p.y, params.P)}
}

func (p *p256Point) Mul(k *big.Int) Point {
	if p.infinity {
		return &p256Point{infinity: true}
	}
	kk := new(big.Int).Mod(k, elliptic.P256().Params().N)
	if kk.Sign() == 0 {
		return &p256Point{infinity: true}
	}
	x, y := elliptic.P256().ScalarMult(p.x, p.y, kk.Bytes())
	return &p256Point{x: x, y: y}
}

func (p *p256Point) Equal(q Point) bool {
	qq, ok := q.(*p256Point)
	if !ok {
		return false
	}
	if p.infinity || qq.infinity {
		return p.infinity == qq.infinity
	}
	return p.x.Cmp(qq.x) == 0 && p.y.Cmp(qq.y) == 0
}

func (p *p256Point) IsIdentity() bool { return p.infinity }

func (p *p256Point) Marshal() []byte {
	if p.infinity {
		return make([]byte, 33)
	}
	return elliptic.MarshalCompressed(elliptic.P256(), p.x, p.y)
}

func (p *p256Point) clone() *p256Point {
	if p.infinity {
		return &p256Point{infinity: true}
	}
	return &p256Point{x: mathutil.Clone(p.x), y: mathutil.Clone(p.y)}
}
