// Package group defines the prime-order group abstraction shared by all
// discrete-logarithm based threshold schemes in Thetacrypt.
//
// Two implementations are provided: a from-scratch edwards25519 group
// (the curve used by SG02, KG20, and CKS05 in the paper's Table 3) and a
// wrapper around the standard library's NIST P-256 curve. Schemes are
// written against the Group/Point interfaces so the two can be swapped
// freely; the pairing-based schemes use internal/pairing instead.
package group

import (
	"crypto/sha512"
	"errors"
	"fmt"
	"io"
	"math/big"

	"thetacrypt/internal/mathutil"
)

// Point is an element of a prime-order group. Implementations are
// immutable: every operation returns a fresh Point and never mutates the
// receiver or its arguments.
type Point interface {
	// Add returns the group operation applied to the receiver and q.
	Add(q Point) Point
	// Neg returns the inverse element.
	Neg() Point
	// Mul returns the scalar multiple k*P. k is reduced modulo the group
	// order.
	Mul(k *big.Int) Point
	// Equal reports whether two points represent the same group element.
	Equal(q Point) bool
	// IsIdentity reports whether the point is the neutral element.
	IsIdentity() bool
	// Marshal returns the canonical fixed-length encoding.
	Marshal() []byte
}

// Group is a cyclic group of prime order with an associated generator and
// hash-to-group maps.
type Group interface {
	// Name returns a stable identifier ("edwards25519", "p256").
	Name() string
	// Order returns the prime group order (callers must not mutate it).
	Order() *big.Int
	// Identity returns the neutral element.
	Identity() Point
	// Generator returns the standard base point.
	Generator() Point
	// BaseMul returns k*G for the standard generator.
	BaseMul(k *big.Int) Point
	// RandomScalar returns a uniform scalar in [0, Order).
	RandomScalar(rand io.Reader) (*big.Int, error)
	// HashToScalar maps domain-separated input to a scalar.
	HashToScalar(domain string, data ...[]byte) *big.Int
	// HashToPoint maps domain-separated input to a group element of
	// unknown discrete logarithm.
	HashToPoint(domain string, data ...[]byte) Point
	// PointLen returns the length of Marshal output in bytes.
	PointLen() int
	// UnmarshalPoint decodes a canonical encoding, rejecting points that
	// are not valid elements of the prime-order group.
	UnmarshalPoint(data []byte) (Point, error)
}

// ErrInvalidPoint is returned by UnmarshalPoint for malformed or
// out-of-group encodings.
var ErrInvalidPoint = errors.New("group: invalid point encoding")

// ByName returns a registered group implementation.
func ByName(name string) (Group, error) {
	switch name {
	case "edwards25519":
		return Edwards25519(), nil
	case "p256":
		return P256(), nil
	default:
		return nil, fmt.Errorf("group: unknown group %q", name)
	}
}

// hashToScalar derives a scalar below order from SHA-512 over a
// domain-separated transcript. A 512-bit digest keeps the modular bias
// below 2^-256 for ~252-bit orders.
func hashToScalar(order *big.Int, domain string, data ...[]byte) *big.Int {
	h := sha512.New()
	h.Write([]byte(domain))
	for _, d := range data {
		// Length-prefix each chunk so transcripts are unambiguous.
		var lenbuf [8]byte
		putUint64(lenbuf[:], uint64(len(d)))
		h.Write(lenbuf[:])
		h.Write(d)
	}
	digest := h.Sum(nil)
	return new(big.Int).Mod(new(big.Int).SetBytes(digest), order)
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// randomScalar draws a uniform scalar in [0, order).
func randomScalar(r io.Reader, order *big.Int) (*big.Int, error) {
	return mathutil.RandInt(r, order)
}
