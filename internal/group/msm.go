package group

import "math/big"

// Relation is one linear point equation Σ Scalars[i]*Points[i] == 0
// (the group identity). Verification predicates that reduce to such
// relations — DLEQ proofs, FROST share checks — can be folded across
// many relations into one random-linear-combination multi-scalar
// multiplication by a batch verifier.
type Relation struct {
	Points  []Point
	Scalars []*big.Int
}

// Holds checks the relation individually with one MultiScalarMul.
func (r Relation) Holds(g Group) bool {
	return MultiScalarMul(g, r.Points, r.Scalars).IsIdentity()
}

// multiScalarMuler is the optional fast path a Group implementation can
// provide for MultiScalarMul. Implementations may assume the slices have
// equal, non-zero length and that every point belongs to the group.
type multiScalarMuler interface {
	multiScalarMul(points []Point, scalars []*big.Int) Point
}

// MultiScalarMul computes the multi-scalar multiplication
// Σ scalars[i]*points[i] in one pass. Groups that implement the internal
// fast path (edwards25519 shares one doubling chain across all terms)
// use it; any other group falls back to the naive per-term
// scalar-multiply-and-add, so callers can batch unconditionally. The
// empty sum is the identity; the slices must have equal length.
func MultiScalarMul(g Group, points []Point, scalars []*big.Int) Point {
	if len(points) != len(scalars) {
		panic("group: MultiScalarMul called with mismatched slice lengths")
	}
	if len(points) == 0 {
		return g.Identity()
	}
	if m, ok := g.(multiScalarMuler); ok {
		return m.multiScalarMul(points, scalars)
	}
	acc := g.Identity()
	for i, p := range points {
		acc = acc.Add(p.Mul(scalars[i]))
	}
	return acc
}

// multiScalarMul is the edwards25519 fast path: the interleaved binary
// method walks all scalars' bits from the top sharing a single doubling
// chain, so k terms cost one ~252-doubling pass plus the adds for set
// bits instead of k independent double-and-add ladders.
func (ed25519Group) multiScalarMul(points []Point, scalars []*big.Int) Point {
	pp := ed25519ParamsOnce()
	pts := make([]*ed25519Point, len(points))
	ks := make([]*big.Int, len(points))
	maxBits := 0
	for i, p := range points {
		ep, ok := p.(*ed25519Point)
		if !ok {
			panic("group: mixing edwards25519 with foreign point")
		}
		pts[i] = ep
		ks[i] = new(big.Int).Mod(scalars[i], pp.l)
		if bl := ks[i].BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	acc := ed25519Group{}.Identity().(*ed25519Point)
	for i := maxBits - 1; i >= 0; i-- {
		acc = acc.double()
		for j := range pts {
			if ks[j].Bit(i) == 1 {
				acc = acc.add(pts[j])
			}
		}
	}
	return acc
}
