package group

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func groupsUnderTest() []Group {
	return []Group{Edwards25519(), P256()}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"edwards25519", "p256"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, g.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestGeneratorOnGroup(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			gen := g.Generator()
			if gen.IsIdentity() {
				t.Fatal("generator is identity")
			}
			if !gen.Mul(g.Order()).IsIdentity() {
				t.Fatal("order*G != identity")
			}
		})
	}
}

func TestGroupLaws(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			a, _ := g.RandomScalar(rand.Reader)
			b, _ := g.RandomScalar(rand.Reader)
			pa := g.BaseMul(a)
			pb := g.BaseMul(b)

			// Commutativity.
			if !pa.Add(pb).Equal(pb.Add(pa)) {
				t.Fatal("addition not commutative")
			}
			// Identity.
			if !pa.Add(g.Identity()).Equal(pa) {
				t.Fatal("identity not neutral")
			}
			// Inverse.
			if !pa.Add(pa.Neg()).IsIdentity() {
				t.Fatal("P + (-P) != identity")
			}
			// Distributivity of scalar multiplication:
			// (a+b)G == aG + bG.
			sum := new(big.Int).Add(a, b)
			if !g.BaseMul(sum).Equal(pa.Add(pb)) {
				t.Fatal("(a+b)G != aG + bG")
			}
			// Associativity of scalars: (ab)G == a(bG).
			ab := new(big.Int).Mul(a, b)
			if !g.BaseMul(ab).Equal(pb.Mul(a)) {
				t.Fatal("(ab)G != a(bG)")
			}
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			k, _ := g.RandomScalar(rand.Reader)
			p := g.BaseMul(k)
			enc := p.Marshal()
			if len(enc) != g.PointLen() {
				t.Fatalf("Marshal length = %d, want %d", len(enc), g.PointLen())
			}
			q, err := g.UnmarshalPoint(enc)
			if err != nil {
				t.Fatalf("UnmarshalPoint: %v", err)
			}
			if !p.Equal(q) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			if _, err := g.UnmarshalPoint(nil); err == nil {
				t.Fatal("nil accepted")
			}
			if _, err := g.UnmarshalPoint(make([]byte, 5)); err == nil {
				t.Fatal("short encoding accepted")
			}
			bad := make([]byte, g.PointLen())
			for i := range bad {
				bad[i] = 0xff
			}
			if _, err := g.UnmarshalPoint(bad); err == nil {
				t.Fatal("all-ones encoding accepted")
			}
		})
	}
}

func TestHashToPoint(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			p1 := g.HashToPoint("test", []byte("a"))
			p2 := g.HashToPoint("test", []byte("a"))
			p3 := g.HashToPoint("test", []byte("b"))
			p4 := g.HashToPoint("other", []byte("a"))
			if !p1.Equal(p2) {
				t.Fatal("hash-to-point not deterministic")
			}
			if p1.Equal(p3) || p1.Equal(p4) {
				t.Fatal("hash-to-point collisions across inputs/domains")
			}
			if p1.IsIdentity() {
				t.Fatal("hash-to-point produced identity")
			}
			if !p1.Mul(g.Order()).IsIdentity() {
				t.Fatal("hash-to-point output outside prime-order subgroup")
			}
		})
	}
}

func TestHashToScalarDomainSeparation(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			s1 := g.HashToScalar("d1", []byte("x"))
			s2 := g.HashToScalar("d2", []byte("x"))
			if s1.Cmp(s2) == 0 {
				t.Fatal("domains collide")
			}
			if s1.Cmp(g.Order()) >= 0 || s1.Sign() < 0 {
				t.Fatal("scalar out of range")
			}
			// Length-prefixing must distinguish ("ab","c") from ("a","bc").
			a := g.HashToScalar("d", []byte("ab"), []byte("c"))
			b := g.HashToScalar("d", []byte("a"), []byte("bc"))
			if a.Cmp(b) == 0 {
				t.Fatal("transcript ambiguity")
			}
		})
	}
}

func TestScalarMulProperty(t *testing.T) {
	for _, g := range groupsUnderTest() {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			f := func(a, b uint64) bool {
				sa := new(big.Int).SetUint64(a)
				sb := new(big.Int).SetUint64(b)
				lhs := g.BaseMul(sa).Add(g.BaseMul(sb))
				rhs := g.BaseMul(new(big.Int).Add(sa, sb))
				return lhs.Equal(rhs)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEdwardsIdentityEncoding(t *testing.T) {
	g := Edwards25519()
	id := g.Identity()
	enc := id.Marshal()
	p, err := g.UnmarshalPoint(enc)
	if err != nil {
		t.Fatalf("unmarshal identity: %v", err)
	}
	if !p.IsIdentity() {
		t.Fatal("identity round trip lost")
	}
}

func TestMulZeroAndOne(t *testing.T) {
	for _, g := range groupsUnderTest() {
		t.Run(g.Name(), func(t *testing.T) {
			gen := g.Generator()
			if !gen.Mul(big.NewInt(0)).IsIdentity() {
				t.Fatal("0*G != identity")
			}
			if !gen.Mul(big.NewInt(1)).Equal(gen) {
				t.Fatal("1*G != G")
			}
			two := gen.Mul(big.NewInt(2))
			if !two.Equal(gen.Add(gen)) {
				t.Fatal("2*G != G+G")
			}
		})
	}
}

func BenchmarkScalarMult(b *testing.B) {
	for _, g := range groupsUnderTest() {
		g := g
		b.Run(g.Name(), func(b *testing.B) {
			k, _ := g.RandomScalar(rand.Reader)
			p := g.Generator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Mul(k)
			}
		})
	}
}
