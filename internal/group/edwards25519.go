package group

import (
	"crypto/sha512"
	"io"
	"math/big"
	"sync"

	"thetacrypt/internal/mathutil"
)

// edwards25519 implements the prime-order subgroup of the twisted Edwards
// curve -x^2 + y^2 = 1 + d*x^2*y^2 over GF(2^255-19), the curve underlying
// Ed25519. The implementation is written from scratch on math/big using
// extended coordinates (X:Y:Z:T) with the RFC 8032 formulas; it favours
// clarity and auditability over constant-time execution, matching the
// paper's use of a shared multi-scheme arithmetic library.

type ed25519Group struct{}

type ed25519Params struct {
	p     *big.Int // field prime 2^255 - 19
	l     *big.Int // subgroup order 2^252 + 27742317777372353535851937790883648493
	d     *big.Int // curve constant
	d2    *big.Int // 2d
	baseX *big.Int
	baseY *big.Int
	// sqrtM1 is sqrt(-1) = 2^((p-1)/4) mod p, used in point decoding.
	sqrtM1 *big.Int
}

var ed25519ParamsOnce = sync.OnceValue(func() *ed25519Params {
	p := new(big.Int).Lsh(big.NewInt(1), 255)
	p.Sub(p, big.NewInt(19))

	l, _ := new(big.Int).SetString("7237005577332262213973186563042994240857116359379907606001950938285454250989", 10)

	// d = -121665/121666 mod p
	inv := new(big.Int).ModInverse(big.NewInt(121666), p)
	d := new(big.Int).Mul(big.NewInt(-121665), inv)
	d.Mod(d, p)

	baseX, _ := new(big.Int).SetString("15112221349535400772501151409588531511454012693041857206046113283949847762202", 10)
	baseY, _ := new(big.Int).SetString("46316835694926478169428394003475163141307993866256225615783033603165251855960", 10)

	e := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 2)
	sqrtM1 := new(big.Int).Exp(big.NewInt(2), e, p)

	return &ed25519Params{
		p: p, l: l, d: d,
		d2:    new(big.Int).Mod(new(big.Int).Lsh(d, 1), p),
		baseX: baseX, baseY: baseY,
		sqrtM1: sqrtM1,
	}
})

// Edwards25519 returns the prime-order edwards25519 group.
func Edwards25519() Group { return ed25519Group{} }

var _ Group = ed25519Group{}

func (ed25519Group) Name() string { return "edwards25519" }

func (ed25519Group) Order() *big.Int { return ed25519ParamsOnce().l }

func (ed25519Group) Identity() Point {
	pp := ed25519ParamsOnce()
	return &ed25519Point{
		x: big.NewInt(0), y: big.NewInt(1), z: big.NewInt(1), t: big.NewInt(0), pp: pp,
	}
}

func (ed25519Group) Generator() Point {
	pp := ed25519ParamsOnce()
	return newEd25519Affine(pp, pp.baseX, pp.baseY)
}

func (g ed25519Group) BaseMul(k *big.Int) Point { return g.Generator().Mul(k) }

func (g ed25519Group) RandomScalar(r io.Reader) (*big.Int, error) {
	return randomScalar(r, g.Order())
}

func (g ed25519Group) HashToScalar(domain string, data ...[]byte) *big.Int {
	return hashToScalar(g.Order(), domain, data...)
}

// HashToPoint maps input to the prime-order subgroup using
// try-and-increment on candidate y coordinates followed by cofactor
// clearing (multiplication by 8).
func (g ed25519Group) HashToPoint(domain string, data ...[]byte) Point {
	pp := ed25519ParamsOnce()
	h := sha512.New()
	h.Write([]byte("thetacrypt/h2p/" + domain))
	for _, d := range data {
		var lenbuf [8]byte
		putUint64(lenbuf[:], uint64(len(d)))
		h.Write(lenbuf[:])
		h.Write(d)
	}
	seed := h.Sum(nil)
	ctr := uint64(0)
	for {
		hh := sha512.New()
		hh.Write(seed)
		var cb [8]byte
		putUint64(cb[:], ctr)
		hh.Write(cb[:])
		digest := hh.Sum(nil)
		var enc [32]byte
		copy(enc[:], digest[:32])
		cand, err := decodeEd25519(pp, enc[:])
		ctr++
		if err != nil {
			continue
		}
		// Clear the cofactor to land in the order-l subgroup.
		cleared := cand.double().double().double()
		if cleared.IsIdentity() {
			continue
		}
		return cleared
	}
}

func (ed25519Group) PointLen() int { return 32 }

func (g ed25519Group) UnmarshalPoint(data []byte) (Point, error) {
	pp := ed25519ParamsOnce()
	pt, err := decodeEd25519(pp, data)
	if err != nil {
		return nil, err
	}
	// Reject elements outside the prime-order subgroup: mixed-order points
	// would undermine the DLEQ proofs built on this group.
	if !pt.Mul(pp.l).IsIdentity() {
		return nil, ErrInvalidPoint
	}
	return pt, nil
}

// ed25519Point is a point in extended coordinates: x = X/Z, y = Y/Z,
// T = XY/Z.
type ed25519Point struct {
	x, y, z, t *big.Int
	pp         *ed25519Params
}

var _ Point = (*ed25519Point)(nil)

func newEd25519Affine(pp *ed25519Params, x, y *big.Int) *ed25519Point {
	return &ed25519Point{
		x:  mathutil.Clone(x),
		y:  mathutil.Clone(y),
		z:  big.NewInt(1),
		t:  mathutil.MulMod(x, y, pp.p),
		pp: pp,
	}
}

func (p *ed25519Point) Add(q Point) Point {
	qq, ok := q.(*ed25519Point)
	if !ok {
		// Mixing group implementations is a programming error; fail loud.
		panic("group: mixing edwards25519 with foreign point")
	}
	return p.add(qq)
}

// add implements the unified extended-coordinate addition (RFC 8032 §5.1.4).
func (p *ed25519Point) add(q *ed25519Point) *ed25519Point {
	fp := p.pp.p
	a := mathutil.MulMod(mathutil.SubMod(p.y, p.x, fp), mathutil.SubMod(q.y, q.x, fp), fp)
	b := mathutil.MulMod(mathutil.AddMod(p.y, p.x, fp), mathutil.AddMod(q.y, q.x, fp), fp)
	c := mathutil.MulMod(mathutil.MulMod(p.t, p.pp.d2, fp), q.t, fp)
	d := mathutil.MulMod(mathutil.AddMod(p.z, p.z, fp), q.z, fp)
	e := mathutil.SubMod(b, a, fp)
	f := mathutil.SubMod(d, c, fp)
	g := mathutil.AddMod(d, c, fp)
	h := mathutil.AddMod(b, a, fp)
	return &ed25519Point{
		x:  mathutil.MulMod(e, f, fp),
		y:  mathutil.MulMod(g, h, fp),
		t:  mathutil.MulMod(e, h, fp),
		z:  mathutil.MulMod(f, g, fp),
		pp: p.pp,
	}
}

// double implements dedicated point doubling (RFC 8032 §5.1.4).
func (p *ed25519Point) double() *ed25519Point {
	fp := p.pp.p
	a := mathutil.MulMod(p.x, p.x, fp)
	b := mathutil.MulMod(p.y, p.y, fp)
	zz := mathutil.MulMod(p.z, p.z, fp)
	c := mathutil.AddMod(zz, zz, fp)
	hh := mathutil.AddMod(a, b, fp)
	xy := mathutil.AddMod(p.x, p.y, fp)
	e := mathutil.SubMod(hh, mathutil.MulMod(xy, xy, fp), fp)
	g := mathutil.SubMod(a, b, fp)
	f := mathutil.AddMod(c, g, fp)
	return &ed25519Point{
		x:  mathutil.MulMod(e, f, fp),
		y:  mathutil.MulMod(g, hh, fp),
		t:  mathutil.MulMod(e, hh, fp),
		z:  mathutil.MulMod(f, g, fp),
		pp: p.pp,
	}
}

func (p *ed25519Point) Neg() Point {
	fp := p.pp.p
	return &ed25519Point{
		x:  mathutil.SubMod(big.NewInt(0), p.x, fp),
		y:  mathutil.Clone(p.y),
		z:  mathutil.Clone(p.z),
		t:  mathutil.SubMod(big.NewInt(0), p.t, fp),
		pp: p.pp,
	}
}

func (p *ed25519Point) Mul(k *big.Int) Point {
	kk := new(big.Int).Mod(k, p.pp.l)
	acc := ed25519Group{}.Identity().(*ed25519Point)
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = acc.double()
		if kk.Bit(i) == 1 {
			acc = acc.add(p)
		}
	}
	return acc
}

func (p *ed25519Point) Equal(q Point) bool {
	qq, ok := q.(*ed25519Point)
	if !ok {
		return false
	}
	fp := p.pp.p
	// x1/z1 == x2/z2  <=>  x1*z2 == x2*z1, same for y.
	if mathutil.MulMod(p.x, qq.z, fp).Cmp(mathutil.MulMod(qq.x, p.z, fp)) != 0 {
		return false
	}
	return mathutil.MulMod(p.y, qq.z, fp).Cmp(mathutil.MulMod(qq.y, p.z, fp)) == 0
}

func (p *ed25519Point) IsIdentity() bool {
	fp := p.pp.p
	return mathutil.Mod(p.x, fp).Sign() == 0 &&
		mathutil.Mod(p.y, fp).Cmp(mathutil.Mod(p.z, fp)) == 0
}

// Marshal produces the RFC 8032 encoding: 32 bytes little-endian y with the
// sign of x in the most significant bit.
func (p *ed25519Point) Marshal() []byte {
	fp := p.pp.p
	zinv := new(big.Int).ModInverse(p.z, fp)
	x := mathutil.MulMod(p.x, zinv, fp)
	y := mathutil.MulMod(p.y, zinv, fp)
	out := make([]byte, 32)
	yb := y.Bytes()
	// big.Int.Bytes is big-endian; reverse into little-endian.
	for i := range yb {
		out[i] = yb[len(yb)-1-i]
	}
	if x.Bit(0) == 1 {
		out[31] |= 0x80
	}
	return out
}

// decodeEd25519 decodes an RFC 8032 point encoding and validates the curve
// equation. It does not check subgroup membership; callers that need the
// prime-order subgroup use UnmarshalPoint.
func decodeEd25519(pp *ed25519Params, data []byte) (*ed25519Point, error) {
	if len(data) != 32 {
		return nil, ErrInvalidPoint
	}
	var buf [32]byte
	copy(buf[:], data)
	signX := buf[31] >> 7
	buf[31] &= 0x7f
	// Little-endian to big.Int.
	for i, j := 0, 31; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	y := new(big.Int).SetBytes(buf[:])
	if y.Cmp(pp.p) >= 0 {
		return nil, ErrInvalidPoint
	}
	// Recover x from y: x^2 = (y^2 - 1) / (d*y^2 + 1).
	y2 := mathutil.MulMod(y, y, pp.p)
	u := mathutil.SubMod(y2, big.NewInt(1), pp.p)
	v := mathutil.AddMod(mathutil.MulMod(pp.d, y2, pp.p), big.NewInt(1), pp.p)
	vinv := new(big.Int).ModInverse(v, pp.p)
	if vinv == nil {
		return nil, ErrInvalidPoint
	}
	x2 := mathutil.MulMod(u, vinv, pp.p)
	x, ok := sqrtEd25519(pp, x2)
	if !ok {
		return nil, ErrInvalidPoint
	}
	if x.Sign() == 0 && signX == 1 {
		return nil, ErrInvalidPoint
	}
	if uint8(x.Bit(0)) != signX {
		x = mathutil.SubMod(big.NewInt(0), x, pp.p)
	}
	return newEd25519Affine(pp, x, y), nil
}

// sqrtEd25519 computes a square root modulo p = 2^255-19 (p ≡ 5 mod 8)
// using the candidate a^((p+3)/8) and the sqrt(-1) correction.
func sqrtEd25519(pp *ed25519Params, a *big.Int) (*big.Int, bool) {
	e := new(big.Int).Add(pp.p, big.NewInt(3))
	e.Rsh(e, 3)
	r := new(big.Int).Exp(a, e, pp.p)
	r2 := mathutil.MulMod(r, r, pp.p)
	am := mathutil.Mod(a, pp.p)
	if r2.Cmp(am) == 0 {
		return r, true
	}
	negA := mathutil.SubMod(big.NewInt(0), am, pp.p)
	if r2.Cmp(negA) == 0 {
		return mathutil.MulMod(r, pp.sqrtM1, pp.p), true
	}
	return nil, false
}
