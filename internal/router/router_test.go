package router_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/router"
	"thetacrypt/internal/schemes"
)

// fakeCommittee is an in-memory api.Service with scripted keys and
// results, so the routing logic is tested without running protocols.
type fakeCommittee struct {
	mu        sync.Mutex
	keys      []api.KeyInfo
	results   map[string]api.Result
	submitted []protocols.Request
	reshared  []string
	down      bool
	n, t      int
	batchErr  error
}

func newFake(n, t int, keyIDs ...string) *fakeCommittee {
	f := &fakeCommittee{n: n, t: t, results: make(map[string]api.Result)}
	for _, id := range keyIDs {
		f.keys = append(f.keys, api.KeyInfo{Scheme: string(schemes.SG02), KeyID: id, Epoch: 1})
	}
	return f
}

func (f *fakeCommittee) unavailable() error {
	return api.Errf(api.CodeUnavailable, "committee down")
}

func (f *fakeCommittee) Submit(ctx context.Context, req protocols.Request) (api.Handle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return api.Handle{}, f.unavailable()
	}
	f.submitted = append(f.submitted, req)
	return api.Handle{InstanceID: req.InstanceID()}, nil
}

func (f *fakeCommittee) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]api.Handle, error) {
	if f.batchErr != nil {
		return nil, f.batchErr
	}
	hs := make([]api.Handle, len(reqs))
	for i, req := range reqs {
		h, err := f.Submit(ctx, req)
		if err != nil {
			return nil, err
		}
		hs[i] = h
	}
	return hs, nil
}

func (f *fakeCommittee) Wait(ctx context.Context, h api.Handle) (api.Result, error) {
	f.mu.Lock()
	res, ok := f.results[h.InstanceID]
	f.mu.Unlock()
	if ok {
		return res, nil
	}
	<-ctx.Done()
	return api.Result{}, ctx.Err()
}

func (f *fakeCommittee) Encrypt(ctx context.Context, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range f.keys {
		if k.Scheme == string(scheme) && k.KeyID == keyID {
			return append([]byte("ct:"), message...), nil
		}
	}
	return nil, api.Errf(api.CodeKeyUnknown, "no key %s/%s", scheme, keyID)
}

func (f *fakeCommittee) Info(ctx context.Context) (api.Info, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return api.Info{}, f.unavailable()
	}
	set := make(map[schemes.ID]bool)
	var present []schemes.ID
	for _, k := range f.keys {
		if id := schemes.ID(k.Scheme); !set[id] {
			set[id] = true
			present = append(present, id)
		}
	}
	return api.Info{N: f.n, T: f.t, Schemes: present, Keys: f.keys,
		Stats: &api.EngineStats{}}, nil
}

func (f *fakeCommittee) Keys(ctx context.Context) ([]api.KeyInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return nil, f.unavailable()
	}
	return append([]api.KeyInfo(nil), f.keys...), nil
}

func (f *fakeCommittee) GenerateKey(ctx context.Context, scheme schemes.ID, opts api.GenerateKeyOptions) (api.Handle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range f.keys {
		if k.Scheme == string(scheme) && k.KeyID == opts.KeyID {
			return api.Handle{}, api.Errf(api.CodeKeyExists, "key %s/%s exists", scheme, opts.KeyID)
		}
	}
	f.keys = append(f.keys, api.KeyInfo{Scheme: string(scheme), KeyID: opts.KeyID, Epoch: 1})
	return api.Handle{InstanceID: "keygen-" + opts.KeyID}, nil
}

func (f *fakeCommittee) ReshareKey(ctx context.Context, scheme schemes.ID, keyID string, opts api.ReshareOptions) (api.Handle, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, k := range f.keys {
		if k.Scheme == string(scheme) && k.KeyID == keyID {
			f.keys[i].Epoch++
			f.reshared = append(f.reshared, keyID)
			return api.Handle{InstanceID: "reshare-" + keyID}, nil
		}
	}
	return api.Handle{}, api.Errf(api.CodeKeyUnknown, "no key %s/%s", scheme, keyID)
}

var _ api.Service = (*fakeCommittee)(nil)

func signReq(keyID, session string) protocols.Request {
	return protocols.Request{
		Scheme:  schemes.SG02,
		KeyID:   keyID,
		Op:      protocols.OpSign,
		Payload: []byte("msg"),
		Session: session,
	}
}

func twoCommittees() (*fakeCommittee, *fakeCommittee, *router.Router) {
	a := newFake(4, 1, "shard-0")
	b := newFake(4, 1, "shard-1")
	rt := router.New([]router.Backend{
		{Name: "alpha", Service: a},
		{Name: "beta", Service: b},
	})
	return a, b, rt
}

func TestSubmitRoutesByKey(t *testing.T) {
	a, b, rt := twoCommittees()
	ctx := context.Background()

	h, err := rt.Submit(ctx, signReq("shard-1", "s1"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(b.submitted) != 1 || len(a.submitted) != 0 {
		t.Fatalf("request routed to (a=%d, b=%d) submissions, want (0, 1)", len(a.submitted), len(b.submitted))
	}

	// The handle's owner is cached: Wait goes straight to beta.
	b.results[h.InstanceID] = api.Result{InstanceID: h.InstanceID, Value: []byte("sig")}
	res, err := rt.Wait(ctx, h)
	if err != nil || string(res.Value) != "sig" {
		t.Fatalf("Wait = (%q, %v), want sig", res.Value, err)
	}

	if _, err := rt.Submit(ctx, signReq("nobody-has-this", "s2")); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key: code %q, want %q", api.CodeOf(err), api.CodeKeyUnknown)
	}
	if _, err := rt.Submit(ctx, protocols.Request{Scheme: "NOPE", Op: protocols.OpSign, Payload: []byte("m")}); api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("bad scheme: code %q, want %q", api.CodeOf(err), api.CodeSchemeUnknown)
	}
}

func TestSubmitBatchScatterGather(t *testing.T) {
	a, b, rt := twoCommittees()
	ctx := context.Background()

	reqs := []protocols.Request{
		signReq("shard-0", "b0"),
		signReq("shard-1", "b1"),
		signReq("shard-0", "b2"),
		signReq("shard-1", "b3"),
	}
	hs, err := rt.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(hs) != len(reqs) {
		t.Fatalf("got %d handles, want %d", len(hs), len(reqs))
	}
	// Handles come back in request order, regardless of scatter order.
	for i, h := range hs {
		if h.InstanceID != reqs[i].InstanceID() {
			t.Fatalf("handle %d = %q, want %q", i, h.InstanceID, reqs[i].InstanceID())
		}
	}
	if len(a.submitted) != 2 || len(b.submitted) != 2 {
		t.Fatalf("scatter split (a=%d, b=%d), want (2, 2)", len(a.submitted), len(b.submitted))
	}

	// A batch with an unroutable item is rejected whole, like an invalid
	// item on a single committee.
	bad := append(append([]protocols.Request(nil), reqs...), signReq("missing", "b4"))
	if _, err := rt.SubmitBatch(ctx, bad); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unroutable batch item: code %q, want %q", api.CodeOf(err), api.CodeKeyUnknown)
	}

	// A committee failing its sub-batch surfaces with its name and the
	// typed code intact through the aggregation.
	b.batchErr = api.Errf(api.CodeOverloaded, "queue full")
	_, err = rt.SubmitBatch(ctx, reqs)
	if api.CodeOf(err) != api.CodeOverloaded {
		t.Fatalf("scatter failure: code %q, want %q", api.CodeOf(err), api.CodeOverloaded)
	}
	if err == nil || !strings.Contains(err.Error(), `committee "beta"`) {
		t.Fatalf("scatter failure %v should name the committee", err)
	}
}

func TestWaitScatterFallback(t *testing.T) {
	_, b, rt := twoCommittees()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// The handle was accepted by another router replica: this router has
	// no owner cache entry and must scatter.
	b.results["mystery"] = api.Result{InstanceID: "mystery", Value: []byte("found")}
	res, err := rt.Wait(ctx, api.Handle{InstanceID: "mystery"})
	if err != nil || string(res.Value) != "found" {
		t.Fatalf("scatter Wait = (%q, %v), want found", res.Value, err)
	}

	// The winner was cached: a second Wait hits beta directly (alpha
	// would block forever, so a short deadline catches a wrong route).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if _, err := rt.Wait(ctx2, api.Handle{InstanceID: "mystery"}); err != nil {
		t.Fatalf("cached Wait: %v", err)
	}
}

func TestWaitEachStreamsAcrossCommittees(t *testing.T) {
	a, b, rt := twoCommittees()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	reqs := []protocols.Request{signReq("shard-0", "w0"), signReq("shard-1", "w1")}
	hs, err := rt.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	a.results[hs[0].InstanceID] = api.Result{InstanceID: hs[0].InstanceID, Value: []byte("r0")}
	b.results[hs[1].InstanceID] = api.Result{InstanceID: hs[1].InstanceID, Value: []byte("r1")}

	results, err := rt.WaitBatch(ctx, hs)
	if err != nil {
		t.Fatalf("WaitBatch: %v", err)
	}
	if string(results[0].Value) != "r0" || string(results[1].Value) != "r1" {
		t.Fatalf("WaitBatch order mixed up: %q, %q", results[0].Value, results[1].Value)
	}
}

func TestEncryptCheckOrder(t *testing.T) {
	_, _, rt := twoCommittees()
	ctx := context.Background()
	msg := []byte("m")

	if _, err := rt.Encrypt(ctx, "NOPE", "", msg, nil); api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("unknown scheme: code %q", api.CodeOf(err))
	}
	if _, err := rt.Encrypt(ctx, schemes.CKS05, "", msg, nil); api.CodeOf(err) != api.CodeSchemeNotCipher {
		t.Fatalf("non-cipher scheme: code %q", api.CodeOf(err))
	}
	if _, err := rt.Encrypt(ctx, schemes.BZ03, "", msg, nil); api.CodeOf(err) != api.CodeSchemeNoKeys {
		t.Fatalf("scheme without keys: code %q", api.CodeOf(err))
	}
	if _, err := rt.Encrypt(ctx, schemes.SG02, "missing", msg, nil); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key: code %q", api.CodeOf(err))
	}
	ct, err := rt.Encrypt(ctx, schemes.SG02, "shard-1", msg, nil)
	if err != nil || string(ct) != "ct:m" {
		t.Fatalf("Encrypt = (%q, %v)", ct, err)
	}
}

func TestGenerateKeyPlacement(t *testing.T) {
	a, b, rt := twoCommittees()
	ctx := context.Background()

	// alpha gets an extra key, so beta is least-loaded.
	a.keys = append(a.keys, api.KeyInfo{Scheme: string(schemes.CKS05), KeyID: "extra", Epoch: 1})

	if _, err := rt.GenerateKey(ctx, schemes.CKS05, api.GenerateKeyOptions{KeyID: "fresh"}); err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	if _, err := b.Keys(ctx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range b.keys {
		if k.KeyID == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresh key not placed on the least-loaded committee; beta keys: %+v", b.keys)
	}

	// Generating the same name again routes to the owner, which rejects.
	if _, err := rt.GenerateKey(ctx, schemes.CKS05, api.GenerateKeyOptions{KeyID: "fresh"}); api.CodeOf(err) != api.CodeKeyExists {
		t.Fatalf("duplicate keygen: code %q, want %q", api.CodeOf(err), api.CodeKeyExists)
	}
}

func TestReshareRoutesToOwner(t *testing.T) {
	a, b, rt := twoCommittees()
	ctx := context.Background()

	if _, err := rt.ReshareKey(ctx, schemes.SG02, "shard-1", api.ReshareOptions{}); err != nil {
		t.Fatalf("ReshareKey: %v", err)
	}
	if len(b.reshared) != 1 || len(a.reshared) != 0 {
		t.Fatalf("reshare hit (a=%d, b=%d), want (0, 1)", len(a.reshared), len(b.reshared))
	}
	if b.keys[0].Epoch != 2 {
		t.Fatalf("owner epoch = %d, want 2", b.keys[0].Epoch)
	}
	if _, err := rt.ReshareKey(ctx, schemes.SG02, "missing", api.ReshareOptions{}); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key reshare: code %q", api.CodeOf(err))
	}
}

func TestInfoMergesFleetAndMarksDown(t *testing.T) {
	a, b, rt := twoCommittees()
	ctx := context.Background()

	// Seed the placement while both are up, then take beta down.
	if _, err := rt.Keys(ctx); err != nil {
		t.Fatal(err)
	}
	b.down = true

	info, err := rt.Info(ctx)
	if err != nil {
		t.Fatalf("Info with one committee down: %v", err)
	}
	if len(info.Committees) != 2 {
		t.Fatalf("got %d committee blocks, want 2", len(info.Committees))
	}
	if info.Committees[0].Down || info.Committees[0].Name != "alpha" {
		t.Fatalf("alpha block wrong: %+v", info.Committees[0])
	}
	if !info.Committees[1].Down || info.Committees[1].Error == "" {
		t.Fatalf("beta should be marked down with an error: %+v", info.Committees[1])
	}
	if info.N != a.n || info.T != a.t {
		t.Fatalf("merged N/T = %d/%d, want the reachable committee's %d/%d", info.N, info.T, a.n, a.t)
	}
	// The down committee's keys vanish from the union until it returns.
	for _, k := range info.Keys {
		if k.KeyID == "shard-1" {
			t.Fatalf("down committee's key still listed: %+v", info.Keys)
		}
	}

	a.down = true
	if _, err := rt.Info(ctx); err == nil {
		t.Fatal("Info with every committee down should fail")
	}
	if _, err := rt.Keys(ctx); err == nil {
		t.Fatal("Keys with every committee down should fail")
	}
}

func TestKeysUnionShadowsDuplicates(t *testing.T) {
	// Both committees were dealt the same default key ID: the first
	// backend wins, the duplicate is shadowed, and the union lists it
	// once — so a router over identically-dealt committees looks like
	// one committee.
	a := newFake(4, 1, "default", "only-a")
	b := newFake(4, 1, "default", "only-b")
	rt := router.New([]router.Backend{{Service: a}, {Service: b}})

	keyList, err := rt.Keys(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, k := range keyList {
		counts[k.KeyID]++
	}
	if counts["default"] != 1 || counts["only-a"] != 1 || counts["only-b"] != 1 {
		t.Fatalf("union = %+v, want default once and both uniques", counts)
	}

	// The shadowed copy is unreachable: requests for the duplicate go to
	// the first backend.
	if _, err := rt.Submit(context.Background(), signReq("default", "dup")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(a.submitted) != 1 || len(b.submitted) != 0 {
		t.Fatalf("duplicate key routed to (a=%d, b=%d), want (1, 0)", len(a.submitted), len(b.submitted))
	}
}

func TestKeyResolvesOwningCommittee(t *testing.T) {
	_, _, rt := twoCommittees()
	ctx := context.Background()

	// Each shard's key is fetched from its owning committee.
	k0, err := rt.Key(ctx, schemes.SG02, "shard-0")
	if err != nil {
		t.Fatal(err)
	}
	if k0.KeyID != "shard-0" {
		t.Fatalf("fetched %+v", k0)
	}
	k1, err := rt.Key(ctx, schemes.SG02, "shard-1")
	if err != nil {
		t.Fatal(err)
	}
	if k1.KeyID != "shard-1" {
		t.Fatalf("fetched %+v", k1)
	}

	// A key nobody holds is key_unknown; a scheme outside the registry
	// is scheme_unknown, checked before placement.
	if _, err := rt.Key(ctx, schemes.SG02, "no-such"); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("unknown key: %v (code %s)", err, api.CodeOf(err))
	}
	if _, err := rt.Key(ctx, "NOPE", "shard-0"); api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("unknown scheme: %v (code %s)", err, api.CodeOf(err))
	}

	// A reshare through the router is visible in the fetched epoch.
	if _, err := rt.ReshareKey(ctx, schemes.SG02, "shard-1", api.ReshareOptions{}); err != nil {
		t.Fatal(err)
	}
	k1, err = rt.Key(ctx, schemes.SG02, "shard-1")
	if err != nil {
		t.Fatal(err)
	}
	if k1.Epoch != 2 {
		t.Fatalf("post-reshare fetch epoch %d, want 2", k1.Epoch)
	}
}
