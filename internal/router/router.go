// Package router implements the stateless router tier: the fourth
// api.Service implementation, fronting N independent committees and
// owning the placement map key_id -> committee. One committee's
// throughput is hard-capped by n and its sequencer; the router turns
// "a cluster" into "a fleet" by partitioning keys across committees
// and forwarding each request to the committee that holds its key.
//
// The router holds no protocol state: the placement map is seeded from
// the committees' own keystore metadata (Keys listings) and updated on
// GenerateKey/ReshareKey, and the handle-owner cache is a bounded
// routing shortcut, not a source of truth — a Wait for a handle the
// router has never seen (or has forgotten) is scattered to every
// committee and answered by the first that knows it. Any number of
// router replicas can therefore front the same fleet.
package router

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"thetacrypt/api"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// Backend is one committee behind the router: a name for listings and
// any api.Service fronting that committee (an embedded cluster, a
// client.Client pointed at a deployment, a single unit).
type Backend struct {
	Name    string
	Service api.Service
}

// ownerCacheMax bounds the handle -> committee shortcut cache; beyond
// it the oldest entries are forgotten and their Waits fall back to
// scatter/gather.
const ownerCacheMax = 65536

// placeKey addresses one named key in the placement map.
type placeKey struct {
	scheme schemes.ID
	id     string
}

// ownerEntry is one handle -> backend record in the bounded FIFO.
type ownerEntry struct {
	id  string
	idx int
}

// Router fronts several committees behind the one Service interface.
type Router struct {
	backends []Backend

	mu sync.Mutex
	// place maps each named key to the index of its owning backend.
	// First backend wins on duplicates (committees dealt the same
	// default key IDs): the shadowed copies are unreachable through the
	// router, which keeps listings and routing consistent.
	place map[placeKey]int
	// owners is the bounded handle -> backend cache (id -> element of
	// ownerOrder) recorded at submission, so Wait usually forwards
	// directly instead of scattering.
	owners     map[string]*list.Element
	ownerOrder *list.List
}

var (
	_ api.Service     = (*Router)(nil)
	_ api.BatchWaiter = (*Router)(nil)
	_ api.EachWaiter  = (*Router)(nil)
	_ api.KeyFetcher  = (*Router)(nil)
)

// New creates a router over the given committees. Backends without a
// name are named committee-1, committee-2, ... in order.
func New(backends []Backend) *Router {
	bs := make([]Backend, len(backends))
	copy(bs, backends)
	for i := range bs {
		if bs[i].Name == "" {
			bs[i].Name = fmt.Sprintf("committee-%d", i+1)
		}
	}
	return &Router{
		backends:   bs,
		place:      make(map[placeKey]int),
		owners:     make(map[string]*list.Element),
		ownerOrder: list.New(),
	}
}

// Backends returns the committees behind the router, in routing order.
func (r *Router) Backends() []Backend {
	out := make([]Backend, len(r.backends))
	copy(out, r.backends)
	return out
}

func effectiveKeyID(id string) string {
	if id == "" {
		return keys.DefaultKeyID
	}
	return id
}

// recordOwner caches which backend owns a handle, bounded FIFO.
func (r *Router) recordOwner(instanceID string, idx int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if elem, ok := r.owners[instanceID]; ok {
		elem.Value = ownerEntry{id: instanceID, idx: idx}
		return
	}
	r.owners[instanceID] = r.ownerOrder.PushBack(ownerEntry{id: instanceID, idx: idx})
	for r.ownerOrder.Len() > ownerCacheMax {
		front := r.ownerOrder.Front()
		r.ownerOrder.Remove(front)
		delete(r.owners, front.Value.(ownerEntry).id)
	}
}

// ownerIdx looks up the cached owner of a handle.
func (r *Router) ownerIdx(instanceID string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if elem, ok := r.owners[instanceID]; ok {
		return elem.Value.(ownerEntry).idx, true
	}
	return 0, false
}

// recordPlacement maps a key to its owning backend; an existing
// placement wins (first owner keeps the key until a reshare or keygen
// on another committee would collide, which the owner rejects).
func (r *Router) recordPlacement(scheme schemes.ID, keyID string, idx int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pk := placeKey{scheme: scheme, id: effectiveKeyID(keyID)}
	if _, ok := r.place[pk]; !ok {
		r.place[pk] = idx
	}
}

// ownerOf resolves the committee holding a key, refreshing the
// placement map from the committees' keystore metadata on a miss (a
// key generated through another router replica, or the first call).
func (r *Router) ownerOf(ctx context.Context, scheme schemes.ID, keyID string) (int, bool) {
	pk := placeKey{scheme: scheme, id: effectiveKeyID(keyID)}
	r.mu.Lock()
	idx, ok := r.place[pk]
	r.mu.Unlock()
	if ok {
		return idx, true
	}
	r.refreshPlacement(ctx)
	r.mu.Lock()
	idx, ok = r.place[pk]
	r.mu.Unlock()
	return idx, ok
}

// refreshPlacement seeds the placement map from every reachable
// committee's Keys listing, first backend winning on duplicates.
// Unreachable committees are skipped: their keys stay unplaced and
// requests for them fail with key_unknown until they return.
func (r *Router) refreshPlacement(ctx context.Context) {
	for i, b := range r.backends {
		list, err := b.Service.Keys(ctx)
		if err != nil {
			continue
		}
		for _, k := range list {
			r.recordPlacement(schemes.ID(k.Scheme), k.KeyID, i)
		}
	}
}

// schemeHasKeys reports whether any committee holds a key of the
// scheme (placement map only; callers refresh first).
func (r *Router) schemeHasKeys(scheme schemes.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for pk := range r.place {
		if pk.scheme == scheme {
			return true
		}
	}
	return false
}

// pickLeastLoaded chooses the committee for a new key: fewest placed
// keys, ties to the lowest index — a simple balance that spreads
// generated keys across the fleet.
func (r *Router) pickLeastLoaded() int {
	counts := make([]int, len(r.backends))
	r.mu.Lock()
	for _, idx := range r.place {
		counts[idx]++
	}
	r.mu.Unlock()
	best := 0
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[best] {
			best = i
		}
	}
	return best
}

// route resolves the committee a request belongs to. Keygens for a key
// nobody holds go to the least-loaded committee; keygens for an
// existing key go to its owner (which answers key_exists); everything
// else requires an owner or fails with key_unknown.
func (r *Router) route(ctx context.Context, req protocols.Request) (int, *api.Error) {
	if req.Op == protocols.OpKeyGen {
		if idx, ok := r.ownerOf(ctx, req.Scheme, req.KeyID); ok {
			return idx, nil
		}
		return r.pickLeastLoaded(), nil
	}
	idx, ok := r.ownerOf(ctx, req.Scheme, req.EffectiveKeyID())
	if !ok {
		return 0, api.Errf(api.CodeKeyUnknown, "no committee holds key %s/%s",
			req.Scheme, effectiveKeyID(req.KeyID))
	}
	return idx, nil
}

// Submit validates the request, forwards it to the owning committee,
// and records the handle's owner for Wait (Service interface).
func (r *Router) Submit(ctx context.Context, req protocols.Request) (api.Handle, error) {
	if e := api.ValidateRequest(req); e != nil {
		return api.Handle{}, e
	}
	idx, e := r.route(ctx, req)
	if e != nil {
		return api.Handle{}, e
	}
	h, err := r.backends[idx].Service.Submit(ctx, req)
	if err != nil {
		return api.Handle{}, err
	}
	r.recordOwner(h.InstanceID, idx)
	if req.Op == protocols.OpKeyGen {
		r.recordPlacement(req.Scheme, req.KeyID, idx)
	}
	return h, nil
}

// SubmitBatch validates and routes every request, then scatters the
// batch across the owning committees and gathers the handles back into
// request order. Routing failures reject the whole call like invalid
// requests do on a single committee; a committee's submission failure
// is reported per committee with the typed-code vocabulary intact
// (api.CodeOf sees through the aggregation).
func (r *Router) SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]api.Handle, error) {
	routes := make([]int, len(reqs))
	for i, req := range reqs {
		if e := api.ValidateRequest(req); e != nil {
			return nil, fmt.Errorf("thetacrypt: request %d rejected: %w", i, e)
		}
		idx, e := r.route(ctx, req)
		if e != nil {
			return nil, fmt.Errorf("thetacrypt: request %d rejected: %w", i, e)
		}
		routes[i] = idx
	}
	// Scatter: one sub-batch per distinct committee, concurrently.
	groups := make(map[int][]int)
	for i, idx := range routes {
		groups[idx] = append(groups[idx], i)
	}
	handles := make([]api.Handle, len(reqs))
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		errs  []error
	)
	for idx, positions := range groups {
		wg.Add(1)
		go func(idx int, positions []int) {
			defer wg.Done()
			sub := make([]protocols.Request, len(positions))
			for j, p := range positions {
				sub[j] = reqs[p]
			}
			hs, err := r.backends[idx].Service.SubmitBatch(ctx, sub)
			if err != nil {
				errMu.Lock()
				errs = append(errs, fmt.Errorf("committee %q: %w", r.backends[idx].Name, err))
				errMu.Unlock()
				return
			}
			for j, p := range positions {
				handles[p] = hs[j]
			}
		}(idx, positions)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	for i, h := range handles {
		r.recordOwner(h.InstanceID, routes[i])
		if reqs[i].Op == protocols.OpKeyGen {
			r.recordPlacement(reqs[i].Scheme, reqs[i].KeyID, routes[i])
		}
	}
	return handles, nil
}

// Wait forwards to the handle's cached owner; a handle the router does
// not remember (another replica accepted it, or the cache evicted it)
// is scattered to every committee and the first final result wins.
func (r *Router) Wait(ctx context.Context, h api.Handle) (api.Result, error) {
	if idx, ok := r.ownerIdx(h.InstanceID); ok {
		return r.backends[idx].Service.Wait(ctx, h)
	}
	return r.scatterWait(ctx, h)
}

// scatterWait races a Wait on every committee. Non-owners park a
// bounded placeholder that their engines expire on their own; the
// losers' waits are canceled as soon as a winner answers.
func (r *Router) scatterWait(ctx context.Context, h api.Handle) (api.Result, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res api.Result
		err error
		idx int
	}
	ch := make(chan outcome, len(r.backends))
	for i, b := range r.backends {
		go func(i int, b Backend) {
			res, err := b.Service.Wait(sctx, h)
			ch <- outcome{res: res, err: err, idx: i}
		}(i, b)
	}
	var firstErr error
	for range r.backends {
		o := <-ch
		if o.err == nil {
			r.recordOwner(h.InstanceID, o.idx)
			return o.res, nil
		}
		if firstErr == nil && !errors.Is(o.err, context.Canceled) {
			firstErr = o.err
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return api.Result{}, firstErr
}

// WaitBatch waits for every handle, grouped by owning committee, and
// returns results in handle order (api.BatchWaiter).
func (r *Router) WaitBatch(ctx context.Context, hs []api.Handle) ([]api.Result, error) {
	results := make([]api.Result, len(hs))
	err := r.WaitEach(ctx, hs, func(i int, res api.Result) { results[i] = res })
	if err != nil {
		return nil, err
	}
	return results, nil
}

// WaitEach groups the handles by owning committee and streams each
// group through the backend's own per-completion delivery, so results
// flow to fn as they finish across the fleet (api.EachWaiter). fn
// calls are serialized. Handles with no cached owner fall back to
// scatter waits.
func (r *Router) WaitEach(ctx context.Context, hs []api.Handle, fn func(i int, res api.Result)) error {
	var fnMu sync.Mutex
	groups := make(map[int][]int)
	var unknown []int
	for i, h := range hs {
		if idx, ok := r.ownerIdx(h.InstanceID); ok {
			groups[idx] = append(groups[idx], i)
		} else {
			unknown = append(unknown, i)
		}
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	recordErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for idx, positions := range groups {
		wg.Add(1)
		go func(idx int, positions []int) {
			defer wg.Done()
			sub := make([]api.Handle, len(positions))
			for j, p := range positions {
				sub[j] = hs[p]
			}
			err := api.WaitEach(ctx, r.backends[idx].Service, sub, func(j int, res api.Result) {
				fnMu.Lock()
				fn(positions[j], res)
				fnMu.Unlock()
			})
			if err != nil {
				recordErr(fmt.Errorf("committee %q: %w", r.backends[idx].Name, err))
			}
		}(idx, positions)
	}
	for _, i := range unknown {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.scatterWait(ctx, hs[i])
			if err != nil {
				recordErr(err)
				return
			}
			fnMu.Lock()
			fn(i, res)
			fnMu.Unlock()
		}(i)
	}
	wg.Wait()
	return firstErr
}

// Encrypt resolves the key's committee and forwards the local
// encryption there. The check order (unknown scheme, non-cipher
// scheme, scheme without keys anywhere, unknown key) matches the
// single-committee implementations, so the router classifies identical
// requests with identical codes.
func (r *Router) Encrypt(ctx context.Context, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error) {
	if _, err := schemes.Lookup(scheme); err != nil {
		return nil, api.Errf(api.CodeSchemeUnknown, "%v", err)
	}
	switch scheme {
	case schemes.SG02, schemes.BZ03:
	default:
		return nil, api.Errf(api.CodeSchemeNotCipher, "scheme %s does not encrypt", scheme)
	}
	idx, ok := r.ownerOf(ctx, scheme, keyID)
	if !ok {
		if !r.schemeHasKeys(scheme) {
			return nil, api.Errf(api.CodeSchemeNoKeys, "no %s keys dealt", scheme)
		}
		return nil, api.Errf(api.CodeKeyUnknown, "no committee holds key %s/%s",
			scheme, effectiveKeyID(keyID))
	}
	return r.backends[idx].Service.Encrypt(ctx, scheme, keyID, message, label)
}

// Info merges the fleet view: the union of the committees' keychains,
// the union of their schemes, uniform N/T when the committees agree
// (zero when they differ), and one CommitteeInfo block per backend —
// including Down markers for committees that did not answer. NodeIndex
// is zero: the router is not a committee member.
func (r *Router) Info(ctx context.Context) (api.Info, error) {
	infos := make([]*api.Info, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			info, err := b.Service.Info(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			infos[i] = &info
		}(i, b)
	}
	wg.Wait()

	merged := api.Info{Committees: make([]api.CommitteeInfo, len(r.backends))}
	var lists [][]api.KeyInfo
	allDown := true
	for i := range r.backends {
		if infos[i] == nil {
			merged.Committees[i] = api.CommitteeInfo{
				Name:  r.backends[i].Name,
				Down:  true,
				Error: errs[i].Error(),
			}
			lists = append(lists, nil)
			continue
		}
		allDown = false
		info := infos[i]
		schemeNames := make([]string, len(info.Schemes))
		for j, s := range info.Schemes {
			schemeNames[j] = string(s)
		}
		merged.Committees[i] = api.CommitteeInfo{
			Name:    r.backends[i].Name,
			N:       info.N,
			T:       info.T,
			Schemes: schemeNames,
			Keys:    len(info.Keys),
			Stats:   info.Stats,
		}
		lists = append(lists, info.Keys)
		// N/T report the committees' shared parameters when uniform;
		// heterogeneous fleets report zero (per-committee values live in
		// the Committees block).
		switch {
		case merged.N == 0 && merged.T == 0:
			merged.N, merged.T = info.N, info.T
		case merged.N != info.N || merged.T != info.T:
			merged.N, merged.T = 0, 0
		}
		for _, s := range info.Schemes {
			if !containsScheme(merged.Schemes, s) {
				merged.Schemes = append(merged.Schemes, s)
			}
		}
	}
	if allDown {
		return api.Info{}, fmt.Errorf("all %d committees unreachable: %w", len(r.backends), errs[0])
	}
	merged.Keys = r.mergeKeyLists(lists)
	return merged, nil
}

// Key resolves the committee holding the named key and fetches its
// metadata from there, so the router answers single-key lookups with
// the same 404 vocabulary as a single committee: unknown schemes are
// scheme_unknown, keys no committee holds are key_unknown
// (api.KeyFetcher).
func (r *Router) Key(ctx context.Context, scheme schemes.ID, keyID string) (api.KeyInfo, error) {
	if _, err := schemes.Lookup(scheme); err != nil {
		return api.KeyInfo{}, api.Errf(api.CodeSchemeUnknown, "%v", err)
	}
	idx, ok := r.ownerOf(ctx, scheme, keyID)
	if !ok {
		return api.KeyInfo{}, api.Errf(api.CodeKeyUnknown, "no committee holds key %s/%s",
			scheme, effectiveKeyID(keyID))
	}
	return api.FetchKey(ctx, r.backends[idx].Service, scheme, keyID)
}

// Keys lists the union of the committees' keychains, deduplicated by
// (scheme, key ID) with the placement owner's listing winning — the
// fleet's addressable key set (Service interface). Committees that do
// not answer are skipped (their keys vanish from the listing until
// they return); only a fully unreachable fleet is an error.
func (r *Router) Keys(ctx context.Context) ([]api.KeyInfo, error) {
	lists := make([][]api.KeyInfo, len(r.backends))
	errs := make([]error, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			lists[i], errs[i] = b.Service.Keys(ctx)
		}(i, b)
	}
	wg.Wait()
	reachable := false
	for i := range r.backends {
		if errs[i] == nil {
			reachable = true
		}
	}
	if !reachable {
		return nil, fmt.Errorf("all %d committees unreachable: %w", len(r.backends), errs[0])
	}
	return r.mergeKeyLists(lists), nil
}

// mergeKeyLists unions per-backend keychain listings: the placement
// owner's entry wins for each (scheme, key ID); unplaced keys are
// placed on the first backend that lists them.
func (r *Router) mergeKeyLists(lists [][]api.KeyInfo) []api.KeyInfo {
	var out []api.KeyInfo
	seen := make(map[placeKey]bool)
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, list := range lists {
		for _, k := range list {
			pk := placeKey{scheme: schemes.ID(k.Scheme), id: effectiveKeyID(k.KeyID)}
			owner, placed := r.place[pk]
			if !placed {
				r.place[pk] = i
				owner = i
			}
			if owner != i || seen[pk] {
				continue // shadowed duplicate of another committee's key
			}
			seen[pk] = true
			out = append(out, k)
		}
	}
	return out
}

func containsScheme(ids []schemes.ID, s schemes.ID) bool {
	for _, id := range ids {
		if id == s {
			return true
		}
	}
	return false
}

// GenerateKey places the new key on the least-loaded committee (or the
// owner of an existing key with the same ID, which rejects with
// key_exists) and forwards the keygen there. The key ID is assigned
// here when the caller left it empty, so placement and forwarding
// agree on the name (Service interface).
func (r *Router) GenerateKey(ctx context.Context, scheme schemes.ID, opts api.GenerateKeyOptions) (api.Handle, error) {
	req, e := api.KeygenRequest(scheme, opts)
	if e != nil {
		return api.Handle{}, e
	}
	opts.KeyID = req.KeyID
	idx, ok := r.ownerOf(ctx, scheme, req.KeyID)
	if !ok {
		idx = r.pickLeastLoaded()
	}
	h, err := r.backends[idx].Service.GenerateKey(ctx, scheme, opts)
	if err != nil {
		return api.Handle{}, err
	}
	r.recordOwner(h.InstanceID, idx)
	r.recordPlacement(scheme, req.KeyID, idx)
	return h, nil
}

// ReshareKey forwards the resharing to the committee owning the key —
// the natural home for reshare-driven membership change, since member
// indices are committee-local (Service interface).
func (r *Router) ReshareKey(ctx context.Context, scheme schemes.ID, keyID string, opts api.ReshareOptions) (api.Handle, error) {
	idx, ok := r.ownerOf(ctx, scheme, keyID)
	if !ok {
		return api.Handle{}, api.Errf(api.CodeKeyUnknown, "no committee holds key %s/%s",
			scheme, effectiveKeyID(keyID))
	}
	h, err := r.backends[idx].Service.ReshareKey(ctx, scheme, keyID, opts)
	if err != nil {
		return api.Handle{}, err
	}
	r.recordOwner(h.InstanceID, idx)
	return h, nil
}
