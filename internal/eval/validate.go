package eval

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"sort"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/sg02"
)

// encryptFor creates a real ciphertext for decrypt-type requests.
func encryptFor(id schemes.ID, nk *keys.Keystore, message []byte) ([]byte, error) {
	switch id {
	case schemes.SG02:
		ct, err := sg02.Encrypt(rand.Reader, keys.MustPublic[*sg02.PublicKey](nk, schemes.SG02), message, nil)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	case schemes.BZ03:
		ct, err := bz03.Encrypt(rand.Reader, keys.MustPublic[*bz03.PublicKey](nk, schemes.BZ03), message, nil)
		if err != nil {
			return nil, err
		}
		return ct.Marshal(), nil
	default:
		return nil, fmt.Errorf("eval: %q is not a cipher", id)
	}
}

// RunReal executes a small experiment cell on the REAL protocol stack:
// actual orchestration engines, actual crypto, the memnet transport with
// the deployment's latency matrix, wall-clock time. It exists to
// cross-validate the calibrated simulator (thetabench validate): at
// small scale and low rate, simulated and real latencies must agree.
func RunReal(spec RunSpec) (*RunResult, error) {
	d := spec.Deployment
	n := d.N
	quorum := d.T + 1

	op, payload, err := realRequestParts(spec)
	if err != nil {
		return nil, err
	}

	nodes, err := calibrationKeys(d.T, n)
	if err != nil {
		return nil, err
	}
	hub := memnet.NewHub(n, memnet.Options{
		Latency:    func(i, j int) time.Duration { return d.OneWay(i, j) },
		JitterFrac: spec.JitterFrac,
		Seed:       spec.Seed,
	})
	engines := make([]*orchestration.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = orchestration.New(orchestration.Config{
			Keys: nodes[i],
			Net:  hub.Endpoint(i + 1),
		})
	}
	defer func() {
		for _, e := range engines {
			e.Stop()
		}
		hub.Close()
	}()

	interval := time.Duration(float64(time.Second) / spec.Rate)
	deadline := time.Now().Add(spec.Duration)
	type sample struct {
		node int
		lat  time.Duration
	}
	var futures []*orchestration.Future
	futureNode := make(map[*orchestration.Future]int)
	seq := 0
	for time.Now().Before(deadline) {
		req := protocols.Request{
			Scheme:  spec.Scheme,
			Op:      op,
			Payload: payload,
			Session: fmt.Sprintf("real-%d", seq),
		}
		seq++
		// The replicated-service model: the request reaches every node.
		for i, e := range engines {
			f, err := e.Submit(context.Background(), req)
			if err != nil {
				return nil, err
			}
			futures = append(futures, f)
			futureNode[f] = i + 1
		}
		time.Sleep(interval)
	}

	ctx, cancel := context.WithTimeout(context.Background(), spec.Duration+30*time.Second)
	defer cancel()
	var samples []sample
	for _, f := range futures {
		res, err := f.Wait(ctx)
		if err != nil {
			break // drained what completed in time
		}
		if res.Err != nil {
			return nil, res.Err
		}
		samples = append(samples, sample{node: futureNode[f], lat: res.Finished.Sub(res.Started)})
	}

	// Aggregate with the same estimators as the simulator.
	out := &RunResult{Spec: spec, Offered: seq, Completed: len(samples) / n}
	nodeSamples := make([][]time.Duration, n+1)
	var all []time.Duration
	for _, s := range samples {
		nodeSamples[s.node] = append(nodeSamples[s.node], s.lat)
		all = append(all, s.lat)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out.L95All = percentile(all, 95)
	var nodeL95 []time.Duration
	for j := 1; j <= n; j++ {
		if len(nodeSamples[j]) == 0 {
			continue
		}
		sort.Slice(nodeSamples[j], func(a, b int) bool { return nodeSamples[j][a] < nodeSamples[j][b] })
		nodeL95 = append(nodeL95, percentile(nodeSamples[j], 95))
	}
	out.NodeL95 = nodeL95
	if len(nodeL95) > 0 {
		sorted := append([]time.Duration(nil), nodeL95...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		theta := float64(quorum) / float64(n) * 100
		out.LnetTheta = percentile(sorted, theta)
		out.Lnet50 = percentile(sorted, 50)
		out.Lnet95 = percentile(sorted, 95)
	}
	if len(all) > 0 {
		out.Throughput = float64(out.Completed) / spec.Duration.Seconds()
	}
	return out, nil
}

// realRequestParts builds the operation and payload for a scheme.
func realRequestParts(spec RunSpec) (protocols.Operation, []byte, error) {
	size := spec.PayloadSize
	if size <= 0 {
		size = 256
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(rand.Reader, payload); err != nil {
		return 0, nil, err
	}
	switch spec.Scheme {
	case schemes.SG02, schemes.BZ03:
		// Build a real ciphertext under the calibration keys.
		nodes, err := calibrationKeys(spec.Deployment.T, spec.Deployment.N)
		if err != nil {
			return 0, nil, err
		}
		ct, err := encryptFor(spec.Scheme, nodes[0], payload)
		if err != nil {
			return 0, nil, err
		}
		return protocols.OpDecrypt, ct, nil
	case schemes.SH00, schemes.BLS04, schemes.KG20:
		return protocols.OpSign, payload, nil
	case schemes.CKS05:
		return protocols.OpCoin, payload, nil
	default:
		return 0, nil, fmt.Errorf("eval: unknown scheme %q", spec.Scheme)
	}
}

// Validate runs one low-rate cell on both the simulator and the real
// stack and prints them side by side. The simulator models one vCPU per
// node (the paper's testbed); the real stack multiplexes every node onto
// the host's cores, so on a c-core machine expect the real numbers to be
// up to n/c times larger.
func Validate(w io.Writer, id schemes.ID, duration time.Duration) error {
	dep, err := DeploymentByName("DO-7-L")
	if err != nil {
		return err
	}
	spec := RunSpec{
		Scheme:     id,
		Deployment: dep,
		Rate:       4,
		Duration:   duration,
		Seed:       42,
	}
	simRes, err := Run(spec)
	if err != nil {
		return err
	}
	realRes, err := RunReal(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %-5s offered=%-4d L95=%8.2fms Lθ=%8.2fms\n",
		id, "sim", simRes.Offered, ms(simRes.L95All), ms(simRes.LnetTheta))
	fmt.Fprintf(w, "%-6s %-5s offered=%-4d L95=%8.2fms Lθ=%8.2fms\n",
		id, "real", realRes.Offered, ms(realRes.L95All), ms(realRes.LnetTheta))
	return nil
}
