package eval

import (
	"math"
	"sort"
	"time"
)

// percentile returns the p-th percentile (0-100) of sorted durations
// using nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// summarize computes the paper's metrics from per-request node states.
func summarize(spec RunSpec, costs SchemeCosts, states []*reqState, quorum, n int, duration, grace time.Duration) *RunResult {
	res := &RunResult{Spec: spec, Costs: costs, Offered: len(states)}

	// Per-node latency samples and global sample pool.
	nodeSamples := make([][]time.Duration, n+1)
	var all []time.Duration
	var firstDone, lastDone time.Duration
	firstDone = math.MaxInt64

	window := duration + grace
	for _, st := range states {
		finished := 0
		var reqQuorumDone time.Duration
		var doneTimes []time.Duration
		for j := 1; j <= n; j++ {
			if !st.finished[j] || st.done[j] > window {
				continue
			}
			finished++
			lat := st.done[j] - st.arrival[j]
			nodeSamples[j] = append(nodeSamples[j], lat)
			all = append(all, lat)
			doneTimes = append(doneTimes, st.done[j])
		}
		// A request counts as processed when a quorum of nodes produced
		// the result within the grace window.
		if finished >= quorum {
			res.Completed++
			sort.Slice(doneTimes, func(a, b int) bool { return doneTimes[a] < doneTimes[b] })
			reqQuorumDone = doneTimes[quorum-1]
			if reqQuorumDone < firstDone {
				firstDone = reqQuorumDone
			}
			if reqQuorumDone > lastDone {
				lastDone = reqQuorumDone
			}
		}
	}

	// Throughput estimator (paper Section 4.3): completed over the span
	// between first and last processed request; when load is high and
	// requests remain unprocessed, the full experiment window is used.
	if res.Completed > 0 {
		span := lastDone - firstDone
		if res.Completed < res.Offered {
			span = window
		}
		if span <= 0 {
			span = duration
		}
		res.Throughput = float64(res.Completed) / span.Seconds()
	}

	res.Samples = len(all)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.L95All = percentile(all, 95)

	// Node-level L95 distribution and the derived fairness metrics.
	var nodeL95 []time.Duration
	for j := 1; j <= n; j++ {
		if len(nodeSamples[j]) == 0 {
			continue
		}
		sort.Slice(nodeSamples[j], func(a, b int) bool { return nodeSamples[j][a] < nodeSamples[j][b] })
		nodeL95 = append(nodeL95, percentile(nodeSamples[j], 95))
	}
	res.NodeL95 = nodeL95
	if len(nodeL95) > 0 {
		sorted := append([]time.Duration(nil), nodeL95...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		theta := float64(quorum) / float64(n) * 100
		res.LnetTheta = percentile(sorted, theta)
		res.Lnet50 = percentile(sorted, 50)
		res.Lnet95 = percentile(sorted, 95)
		if res.LnetTheta > 0 {
			res.DeltaRes = float64(res.Lnet95-res.LnetTheta) / float64(res.LnetTheta)
		}
		if res.Lnet95 > 0 {
			res.EtaTheta = float64(res.LnetTheta) / float64(res.Lnet95)
		}
	}
	return res
}

// Knee finds the knee point of a throughput-latency series: the rate
// maximizing throughput/latency (the paper's optimal efficiency point).
func Knee(results []*RunResult) *RunResult {
	var best *RunResult
	var bestScore float64
	for _, r := range results {
		if r.Completed == 0 || r.L95All <= 0 {
			continue
		}
		score := r.Throughput / r.L95All.Seconds()
		if best == nil || score > bestScore {
			best, bestScore = r, score
		}
	}
	return best
}

// UsableCapacity reports the maximum observed throughput across a rate
// sweep (the rightmost point of the Fig 4 curves).
func UsableCapacity(results []*RunResult) float64 {
	var max float64
	for _, r := range results {
		if r.Throughput > max {
			max = r.Throughput
		}
	}
	return max
}
