// Package eval is the evaluation harness that regenerates every table
// and figure of the paper's Section 4. Because the original testbed (up
// to 127 DigitalOcean VMs across four regions, each Thetacrypt container
// pinned to one vCPU) is not available, the harness substitutes a
// calibrated discrete-event simulation: cryptographic service times are
// measured live from the real scheme implementations in this repository
// (internal/eval/costs.go), network delays come from a region round-trip
// matrix, and each node is modeled as a single-server queue (the 1-vCPU
// pin). Virtual time replaces wall-clock time; everything else — message
// flow, quorum rules, verification work, FROST's second round — follows
// the real protocol stack, which is itself exercised end-to-end by the
// integration tests and by `thetabench validate`.
package eval

import (
	"fmt"
	"time"
)

// Region is one of the paper's DigitalOcean regions.
type Region int

// Regions used in Table 2.
const (
	FRA1 Region = iota
	SYD1
	TOR1
	SFO3
)

var regionNames = [...]string{"FRA1", "SYD1", "TOR1", "SFO3"}

// String returns the region code.
func (r Region) String() string { return regionNames[r] }

// rttMillis is the region round-trip matrix in milliseconds. Intra
// data-center RTT is 0.65 ms (Table 2); inter-region values are typical
// public-cloud distances for the four regions.
var rttMillis = [4][4]float64{
	//            FRA1   SYD1   TOR1   SFO3
	/* FRA1 */ {0.65, 283.0, 92.0, 147.0},
	/* SYD1 */ {283.0, 0.65, 198.0, 138.0},
	/* TOR1 */ {92.0, 198.0, 0.65, 60.0},
	/* SFO3 */ {147.0, 138.0, 60.0, 0.65},
}

// Deployment is one Table 2 configuration.
type Deployment struct {
	// Name is the paper's acronym, e.g. "DO-31-G".
	Name string
	// N and T are the group size and threshold (quorum T+1).
	N, T int
	// Global spreads nodes across all four regions round-robin; local
	// puts everything in FRA1.
	Global bool
	// MaxRate is the top of the capacity sweep in req/s (Table 2).
	MaxRate int
}

// Table2 returns the paper's six deployment configurations.
func Table2() []Deployment {
	return []Deployment{
		{Name: "DO-7-L", N: 7, T: 2, Global: false, MaxRate: 1024},
		{Name: "DO-7-G", N: 7, T: 2, Global: true, MaxRate: 1024},
		{Name: "DO-31-L", N: 31, T: 10, Global: false, MaxRate: 512},
		{Name: "DO-31-G", N: 31, T: 10, Global: true, MaxRate: 512},
		{Name: "DO-127-L", N: 127, T: 42, Global: false, MaxRate: 64},
		{Name: "DO-127-G", N: 127, T: 42, Global: true, MaxRate: 64},
	}
}

// DeploymentByName looks a configuration up.
func DeploymentByName(name string) (Deployment, error) {
	for _, d := range Table2() {
		if d.Name == name {
			return d, nil
		}
	}
	return Deployment{}, fmt.Errorf("eval: unknown deployment %q", name)
}

// NodeRegion returns node i's region (1-indexed; region 0 is also the
// orchestrator/client's region, FRA1).
func (d Deployment) NodeRegion(i int) Region {
	if !d.Global {
		return FRA1
	}
	return Region((i - 1) % 4)
}

// OneWay returns the base one-way delay between two nodes. Node index 0
// denotes the orchestrator (client), which runs in FRA1.
func (d Deployment) OneWay(i, j int) time.Duration {
	ri, rj := FRA1, FRA1
	if i > 0 {
		ri = d.NodeRegion(i)
	}
	if j > 0 {
		rj = d.NodeRegion(j)
	}
	ms := rttMillis[ri][rj] / 2
	return time.Duration(ms * float64(time.Millisecond))
}

// AvgNetLatency reports the mean one-way delay between distinct nodes,
// the "network latency" column of Table 2.
func (d Deployment) AvgNetLatency() time.Duration {
	var sum time.Duration
	var cnt int
	for i := 1; i <= d.N; i++ {
		for j := 1; j <= d.N; j++ {
			if i == j {
				continue
			}
			sum += d.OneWay(i, j)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / time.Duration(cnt)
}
