package eval

import (
	"fmt"
	"io"
	"time"

	"thetacrypt/internal/schemes"
)

// Options scopes an experiment run.
type Options struct {
	// Duration is the virtual load window per capacity cell (paper:
	// 60 s; default here 5 s — the shape is rate-driven, not
	// duration-driven).
	Duration time.Duration
	// SteadyDuration is the virtual window for the steady-state runs
	// (paper: 5 min; default 30 s).
	SteadyDuration time.Duration
	// Schemes filters the scheme set (default: all six).
	Schemes []schemes.ID
	// Deployments filters Table 2 configurations by name.
	Deployments []string
	// Seed for deterministic runs.
	Seed uint64
}

func (o *Options) fill() {
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.SteadyDuration == 0 {
		o.SteadyDuration = 30 * time.Second
	}
	if len(o.Schemes) == 0 {
		o.Schemes = schemes.All()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o *Options) deployments() ([]Deployment, error) {
	if len(o.Deployments) == 0 {
		return Table2(), nil
	}
	out := make([]Deployment, 0, len(o.Deployments))
	for _, name := range o.Deployments {
		d, err := DeploymentByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// CapacitySweep runs the doubling-rate series of one (deployment,
// scheme) cell, Fig 4's data series.
func CapacitySweep(dep Deployment, id schemes.ID, opts Options) ([]*RunResult, error) {
	opts.fill()
	var out []*RunResult
	for rate := 1; rate <= dep.MaxRate; rate *= 2 {
		r, err := Run(RunSpec{
			Scheme:     id,
			Deployment: dep,
			Rate:       float64(rate),
			Duration:   opts.Duration,
			Seed:       opts.Seed + uint64(rate),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig4 regenerates the capacity test: throughput-latency series per
// deployment and scheme, with knee and usable capacity per cell.
func Fig4(w io.Writer, opts Options) error {
	opts.fill()
	deps, err := opts.deployments()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Figure 4: server-side throughput-latency (virtual duration %s per point)\n", opts.Duration)
	fmt.Fprintf(w, "%-10s %-6s %8s %12s %12s\n", "deploy", "scheme", "rate", "tput(req/s)", "L95(ms)")
	for _, dep := range deps {
		for _, id := range opts.Schemes {
			series, err := CapacitySweep(dep, id, opts)
			if err != nil {
				return err
			}
			for _, r := range series {
				fmt.Fprintf(w, "%-10s %-6s %8.0f %12.2f %12.2f\n",
					dep.Name, id, r.Spec.Rate, r.Throughput,
					float64(r.L95All)/float64(time.Millisecond))
			}
			knee := Knee(series)
			if knee != nil {
				fmt.Fprintf(w, "%-10s %-6s knee=%g req/s  usable=%.1f req/s\n",
					dep.Name, id, knee.Spec.Rate, UsableCapacity(series))
			}
		}
	}
	return nil
}

// SteadyState finds the knee of DO-31-G for a scheme and runs the long
// steady-state experiment at that rate (the paper's five-minute run).
func SteadyState(id schemes.ID, opts Options) (knee *RunResult, steady *RunResult, err error) {
	opts.fill()
	dep, err := DeploymentByName("DO-31-G")
	if err != nil {
		return nil, nil, err
	}
	series, err := CapacitySweep(dep, id, opts)
	if err != nil {
		return nil, nil, err
	}
	knee = Knee(series)
	if knee == nil {
		return nil, nil, fmt.Errorf("eval: no knee found for %s", id)
	}
	steady, err = Run(RunSpec{
		Scheme:     id,
		Deployment: dep,
		Rate:       knee.Spec.Rate,
		Duration:   opts.SteadyDuration,
		Seed:       opts.Seed + 1000,
	})
	if err != nil {
		return nil, nil, err
	}
	return knee, steady, nil
}

// Table4 regenerates the performance summary on DO-31-G: knee capacity,
// residual delay factor, and latency fairness index per scheme.
func Table4(w io.Writer, opts Options) error {
	opts.fill()
	fmt.Fprintf(w, "# Table 4: performance summary, DO-31-G (steady window %s)\n", opts.SteadyDuration)
	fmt.Fprintf(w, "%-6s %14s %8s %8s\n", "scheme", "knee(req/s)", "δres", "ηθ")
	for _, id := range opts.Schemes {
		knee, steady, err := SteadyState(id, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %14.0f %8.3f %8.3f\n", id, knee.Spec.Rate, steady.DeltaRes, steady.EtaTheta)
	}
	return nil
}

// Fig5a regenerates the percentile comparison (Lθ, L50, L95) of the
// steady-state runs at knee capacity on DO-31-G.
func Fig5a(w io.Writer, opts Options) error {
	opts.fill()
	fmt.Fprintf(w, "# Figure 5a: latency percentiles at knee capacity, DO-31-G\n")
	fmt.Fprintf(w, "%-6s %10s %10s %10s\n", "scheme", "Lθ(ms)", "L50(ms)", "L95(ms)")
	for _, id := range opts.Schemes {
		_, steady, err := SteadyState(id, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %10.1f %10.1f %10.1f\n", id,
			ms(steady.LnetTheta), ms(steady.Lnet50), ms(steady.Lnet95))
	}
	return nil
}

// Fig5b regenerates the payload-size sweep: Lθ for payloads from 256 B
// to 4 KiB at knee capacity on DO-31-G.
func Fig5b(w io.Writer, opts Options) error {
	opts.fill()
	dep, err := DeploymentByName("DO-31-G")
	if err != nil {
		return err
	}
	sizes := []int{256, 512, 1024, 2048, 4096}
	fmt.Fprintf(w, "# Figure 5b: Lθ per request payload size, DO-31-G at knee capacity\n")
	fmt.Fprintf(w, "%-6s", "scheme")
	for _, sz := range sizes {
		fmt.Fprintf(w, " %8dB", sz)
	}
	fmt.Fprintln(w)
	for _, id := range opts.Schemes {
		knee, _, err := SteadyState(id, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s", id)
		for _, sz := range sizes {
			// One seed across payload sizes: identical arrival patterns
			// isolate the payload effect from queueing noise.
			r, err := Run(RunSpec{
				Scheme:      id,
				Deployment:  dep,
				Rate:        knee.Spec.Rate,
				Duration:    opts.SteadyDuration,
				PayloadSize: sz,
				Seed:        opts.Seed + 2000,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %8.1f", ms(r.LnetTheta))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table1 prints the scheme inventory.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: threshold schemes in Thetacrypt")
	fmt.Fprintf(w, "%-10s %-6s %-9s %-12s %s\n", "kind", "scheme", "hardness", "verification", "reference")
	for _, info := range schemes.Registry() {
		fmt.Fprintf(w, "%-10s %-6s %-9s %-12s %s\n",
			info.Kind, info.ID, info.Hardness, info.Verification, info.Reference)
	}
}

// Table2Print prints the deployment configurations with the average
// one-way network latency of the region matrix.
func Table2Print(w io.Writer) {
	fmt.Fprintln(w, "# Table 2: deployment configurations")
	fmt.Fprintf(w, "%-10s %5s %5s %8s %16s %10s\n", "acronym", "size", "t", "regions", "avg 1-way lat", "max rate")
	for _, d := range Table2() {
		regions := "FRA1"
		if d.Global {
			regions = "4 (global)"
		}
		fmt.Fprintf(w, "%-10s %5d %5d %8s %13.2fms %7d r/s\n",
			d.Name, d.N, d.T+1, regions,
			float64(d.AvgNetLatency())/float64(time.Millisecond), d.MaxRate)
	}
}

// Table3 prints the schemes' benchmark parameters.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "# Table 3: schemes' parameters")
	fmt.Fprintf(w, "%-6s %-14s %10s %6s %12s\n", "scheme", "arithmetic", "key(bit)", "rounds", "comm.compl.")
	for _, info := range schemes.Registry() {
		fmt.Fprintf(w, "%-6s %-14s %10d %6d %12s\n",
			info.ID, info.Arithmetic, info.KeyBits, info.Rounds, info.Complexity)
	}
}

// MicroBench prints the calibrated primitive costs, the "traditional
// micro-benchmarking" view the paper contrasts with the system view.
func MicroBench(w io.Writer, t, n, payload int, ids []schemes.ID) error {
	if len(ids) == 0 {
		ids = schemes.All()
	}
	fmt.Fprintf(w, "# micro-benchmarks at t=%d n=%d payload=%dB\n", t, n, payload)
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s\n", "scheme", "round1", "share-gen", "share-vrfy", "combine")
	for _, id := range ids {
		c, err := Calibrate(id, t, n, payload)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %12s %12s %12s %12s\n", id, c.Round1, c.ShareGen, c.ShareVerify, c.Combine)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
