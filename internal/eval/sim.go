package eval

import (
	"container/heap"
	"math/rand/v2"
	"time"

	"thetacrypt/internal/schemes"
)

// The simulator: a discrete-event model of one Θ-network run. Each node
// is a non-preemptive single-server queue (the paper's 1-vCPU container
// pin) processing an explicit FIFO message queue, exactly like the
// orchestration engine's worker loop: the service time of a message is
// decided when it is popped (a share for a finished instance costs only
// a parse), and quorum-completing messages run the combine inline before
// the next message is served. Links add one-way delays from the
// deployment's region matrix plus uniform jitter.

// simEvent is one scheduled action in virtual time.
type simEvent struct {
	at  time.Duration
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventQueue []*simEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*simEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// sim is the event loop.
type sim struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	cutoff time.Duration
}

func newSim(seed uint64, cutoff time.Duration) *sim {
	return &sim{
		rng:    rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb)),
		cutoff: cutoff,
	}
}

// at schedules fn at absolute virtual time t.
func (s *sim) at(t time.Duration, fn func()) {
	s.seq++
	heap.Push(&s.queue, &simEvent{at: t, seq: s.seq, fn: fn})
}

// run drains the event queue until the cutoff.
func (s *sim) run() {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*simEvent)
		if ev.at > s.cutoff {
			return
		}
		s.now = ev.at
		ev.fn()
	}
}

// msgKind classifies node-queue messages.
type msgKind int

const (
	msgRequest msgKind = iota + 1
	msgShare
	msgCommit
)

type nodeMsg struct {
	kind msgKind
	k    int // request index
}

// nodeServer is the single-vCPU worker of one node.
type nodeServer struct {
	queue []nodeMsg
	busy  bool
}

// RunSpec describes one simulated experiment cell.
type RunSpec struct {
	Scheme     schemes.ID
	Deployment Deployment
	// Rate is the offered load in requests per second.
	Rate float64
	// Duration is the virtual load window (the paper uses 60 s for the
	// capacity test and 5 min for the steady state).
	Duration time.Duration
	// PayloadSize is the request payload in bytes (default 256).
	PayloadSize int
	// Precomputed enables FROST's one-round mode with precomputed,
	// pre-exchanged nonce commitments (ablation A2).
	Precomputed bool
	// Seed makes the run deterministic.
	Seed uint64
	// JitterFrac is the uniform link jitter (default 0.1).
	JitterFrac float64
}

// RunResult aggregates one cell's measurements.
type RunResult struct {
	Spec      RunSpec
	Costs     SchemeCosts
	Offered   int
	Completed int
	// Throughput is completed requests over the active interval, per
	// the paper's estimator.
	Throughput float64
	// L95All is the 95th percentile over all per-(request, node)
	// server-side latencies (Fig 4's y-axis).
	L95All time.Duration
	// NodeL95 is each node's 95th-percentile latency (basis of the
	// fairness metrics).
	NodeL95 []time.Duration
	// LnetTheta, Lnet50, Lnet95 are percentiles of the NodeL95
	// distribution with θ = (t+1)/n*100 (Fig 5a / Table 4).
	LnetTheta, Lnet50, Lnet95 time.Duration
	// Samples is the number of (request, node) completion samples.
	Samples int
	// Debug counters: gens, verifies, combines, parses completed.
	Debug [4]int
	// DeltaRes is the residual delay factor (L95-Lθ)/Lθ.
	DeltaRes float64
	// EtaTheta is the latency fairness index Lθ/L95.
	EtaTheta float64
}

// reqState tracks one request across the nodes.
type reqState struct {
	arrival  []time.Duration
	arrived  []bool
	acc      []int // accumulated shares per node (own + verified)
	commits  []int // FROST commitments received per node
	signed   []bool
	finished []bool
	done     []time.Duration
	pending  []int // shares buffered before the node can verify them
}

func newReqState(n int) *reqState {
	return &reqState{
		arrival:  make([]time.Duration, n+1),
		arrived:  make([]bool, n+1),
		acc:      make([]int, n+1),
		commits:  make([]int, n+1),
		signed:   make([]bool, n+1),
		finished: make([]bool, n+1),
		done:     make([]time.Duration, n+1),
		pending:  make([]int, n+1),
	}
}

// Run executes one simulated cell.
func Run(spec RunSpec) (*RunResult, error) {
	if spec.PayloadSize <= 0 {
		spec.PayloadSize = 256
	}
	if spec.JitterFrac == 0 {
		spec.JitterFrac = 0.1
	}
	costs, err := Calibrate(spec.Scheme, spec.Deployment.T, spec.Deployment.N, spec.PayloadSize)
	if err != nil {
		return nil, err
	}

	d := spec.Deployment
	n := d.N
	quorum := d.T + 1
	// The paper allows a grace period of up to 10% beyond the
	// experiment window; scaled-down runs get at least 2 s so tail
	// requests of low-rate global deployments can complete.
	grace := spec.Duration / 10
	if grace < 2*time.Second {
		grace = 2 * time.Second
	}
	cutoff := spec.Duration + grace
	s := newSim(spec.Seed, cutoff)
	var dbg [4]int

	delay := func(i, j int) time.Duration {
		base := d.OneWay(i, j)
		return base + time.Duration(float64(base)*s.rng.Float64()*spec.JitterFrac)
	}

	interactive := spec.Scheme == schemes.KG20
	isSigner := func(i int) bool { return i <= quorum }

	// Offered load: Poisson arrivals over the duration window.
	var emits []time.Duration
	for t := time.Duration(0); t < spec.Duration; {
		gap := time.Duration(s.rng.ExpFloat64() / spec.Rate * float64(time.Second))
		t += gap
		if t < spec.Duration {
			emits = append(emits, t)
		}
	}
	states := make([]*reqState, len(emits))
	for k := range states {
		states[k] = newReqState(n)
	}
	servers := make([]nodeServer, n+1)

	// The node worker loop. deliver enqueues a message; the server pops
	// one message at a time; service outcomes may run continuations
	// (combine, FROST signing) inline before the next pop.
	var startNext func(j int)
	deliver := func(j int, m nodeMsg) {
		servers[j].queue = append(servers[j].queue, m)
		if !servers[j].busy {
			startNext(j)
		}
	}

	// broadcastShare schedules delivery of node i's share to all peers.
	broadcastShare := func(k, i int) {
		for j := 1; j <= n; j++ {
			if j == i {
				continue
			}
			k, j := k, j
			s.at(s.now+delay(i, j), func() { deliver(j, nodeMsg{kind: msgShare, k: k}) })
		}
	}
	broadcastCommit := func(k, i int) {
		for j := 1; j <= n; j++ {
			if j == i {
				continue
			}
			k, j := k, j
			s.at(s.now+delay(i, j), func() { deliver(j, nodeMsg{kind: msgCommit, k: k}) })
		}
	}

	// resume frees the server and pops the next queued message.
	resume := func(j int) {
		servers[j].busy = false
		if len(servers[j].queue) > 0 {
			startNext(j)
		}
	}

	// combineCont runs the combine inline when node j holds a quorum,
	// mirroring the engine's advance loop (finalize happens in the same
	// worker step as the quorum-completing update).
	combineCont := func(k, j int) bool {
		st := states[k]
		if st.finished[j] || st.acc[j] < quorum {
			return false
		}
		s.at(s.now+costs.Combine, func() {
			dbg[2]++
			st.finished[j] = true
			st.done[j] = s.now
			resume(j)
		})
		return true
	}

	// signCont runs FROST round 2 inline at signer j once the
	// commitment set completed, then broadcasts the signature share.
	signCont := func(k, j int) bool {
		st := states[k]
		if !isSigner(j) || st.signed[j] || st.commits[j] < quorum {
			return false
		}
		st.signed[j] = true
		s.at(s.now+costs.ShareGen, func() {
			dbg[0]++
			st.acc[j]++ // own signature share
			broadcastShare(k, j)
			if !combineCont(k, j) {
				resume(j)
			}
		})
		return true
	}

	// drainPending re-enqueues shares buffered before node j was able to
	// verify them (instance not started, or FROST commitments missing).
	drainPending := func(k, j int) {
		st := states[k]
		for st.pending[j] > 0 {
			st.pending[j]--
			servers[j].queue = append(servers[j].queue, nodeMsg{kind: msgShare, k: k})
		}
	}

	startNext = func(j int) {
		srv := &servers[j]
		m := srv.queue[0]
		srv.queue = srv.queue[1:]
		srv.busy = true
		st := states[m.k]
		switch m.kind {
		case msgRequest:
			st.arrived[j] = true
			st.arrival[j] = s.now
			if interactive {
				if spec.Precomputed {
					// Commitments were exchanged ahead of time.
					st.commits[j] = quorum
					drainPending(m.k, j)
					if signCont(m.k, j) {
						return
					}
					s.at(s.now+costs.Parse, func() { resume(j) })
					return
				}
				if !isSigner(j) {
					s.at(s.now+costs.Parse, func() { resume(j) })
					return
				}
				// Round 1: nonce generation plus commitment broadcast.
				s.at(s.now+costs.Round1, func() {
					st.commits[j]++
					broadcastCommit(m.k, j)
					if !signCont(m.k, j) {
						resume(j)
					}
				})
				return
			}
			// Non-interactive: compute and broadcast the local share.
			drainPending(m.k, j)
			s.at(s.now+costs.ShareGen, func() {
				dbg[0]++
				st.acc[j]++ // own share
				broadcastShare(m.k, j)
				if !combineCont(m.k, j) {
					resume(j)
				}
			})
		case msgShare:
			if st.finished[j] {
				// Late share for a finished instance: parse and drop.
				dbg[3]++
				s.at(s.now+costs.Parse, func() { resume(j) })
				return
			}
			if !st.arrived[j] || (interactive && st.commits[j] < quorum) {
				// The real engine backlogs such shares without
				// verification work.
				st.pending[j]++
				s.at(s.now+costs.Parse, func() { resume(j) })
				return
			}
			s.at(s.now+costs.ShareVerify, func() {
				dbg[1]++
				st.acc[j]++
				if !combineCont(m.k, j) {
					resume(j)
				}
			})
		case msgCommit:
			s.at(s.now+costs.Parse, func() {
				st.commits[j]++
				if st.commits[j] >= quorum {
					drainPending(m.k, j)
					if signCont(m.k, j) {
						return
					}
				}
				resume(j)
			})
		}
	}

	// Schedule request deliveries from the orchestrator (node 0, FRA1).
	for k, emit := range emits {
		for j := 1; j <= n; j++ {
			k, j := k, j
			s.at(emit+delay(0, j), func() { deliver(j, nodeMsg{kind: msgRequest, k: k}) })
		}
	}

	s.run()

	res := summarize(spec, costs, states, quorum, n, spec.Duration, grace)
	res.Debug = dbg
	return res, nil
}
