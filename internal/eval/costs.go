package eval

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
)

// SchemeCosts holds the calibrated service times of one scheme at a
// specific (t, n) and payload size. They parameterize the simulator;
// every value is measured live from the real implementations, so the
// simulated system inherits the actual cryptographic cost structure of
// this codebase.
type SchemeCosts struct {
	// Round1 is FROST's nonce-commitment generation; zero for
	// non-interactive schemes.
	Round1 time.Duration
	// ShareGen computes the local share (round 2 for FROST), including
	// ciphertext verification for the ciphers.
	ShareGen time.Duration
	// ShareVerify validates one peer share.
	ShareVerify time.Duration
	// Combine assembles and checks the final result from a full quorum.
	Combine time.Duration
	// Parse is the fixed cost of receiving an envelope that needs no
	// cryptographic processing (late shares, commitment storage).
	Parse time.Duration
}

// reps per measured operation; the median damps scheduler noise.
const calReps = 3

type costKey struct {
	scheme  schemes.ID
	t, n    int
	payload int
}

var (
	costCacheMu sync.Mutex
	costCache   = map[costKey]SchemeCosts{}
	calKeysMu   sync.Mutex
	calKeys     = map[[2]int][]*keys.Keystore{}
)

// calibrationKeys deals (and caches) key material at the given (t, n).
func calibrationKeys(t, n int) ([]*keys.Keystore, error) {
	calKeysMu.Lock()
	defer calKeysMu.Unlock()
	k := [2]int{t, n}
	if nodes, ok := calKeys[k]; ok {
		return nodes, nil
	}
	nodes, err := keys.Deal(rand.Reader, t, n, keys.Options{UseRSAFixture: true})
	if err != nil {
		return nil, err
	}
	calKeys[k] = nodes
	return nodes, nil
}

// median3 measures fn calReps times and returns the median.
func median3(fn func()) time.Duration {
	var samples [calReps]time.Duration
	for i := range samples {
		start := time.Now()
		fn()
		samples[i] = time.Since(start)
	}
	// Insertion sort of three elements.
	for i := 1; i < len(samples); i++ {
		for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
			samples[j], samples[j-1] = samples[j-1], samples[j]
		}
	}
	return samples[calReps/2]
}

// Calibrate measures the scheme's service times at (t, n) with the given
// request payload size. Results are cached per configuration.
func Calibrate(id schemes.ID, t, n, payloadSize int) (SchemeCosts, error) {
	key := costKey{scheme: id, t: t, n: n, payload: payloadSize}
	costCacheMu.Lock()
	if c, ok := costCache[key]; ok {
		costCacheMu.Unlock()
		return c, nil
	}
	costCacheMu.Unlock()

	nodes, err := calibrationKeys(t, n)
	if err != nil {
		return SchemeCosts{}, err
	}
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	var costs SchemeCosts
	costs.Parse = 2 * time.Microsecond

	quorum := t + 1
	switch id {
	case schemes.SG02:
		pk := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02)
		ct, err := sg02.Encrypt(rand.Reader, pk, payload, []byte("cal"))
		if err != nil {
			return SchemeCosts{}, err
		}
		shares := make([]*sg02.DecShare, quorum)
		for i := 0; i < quorum; i++ {
			ds, err := sg02.DecryptShare(rand.Reader, pk, keys.MustShare[sg02.KeyShare](nodes[i], schemes.SG02), ct)
			if err != nil {
				return SchemeCosts{}, err
			}
			shares[i] = ds
		}
		costs.ShareGen = median3(func() {
			_, _ = sg02.DecryptShare(rand.Reader, pk, keys.MustShare[sg02.KeyShare](nodes[0], schemes.SG02), ct)
		})
		costs.ShareVerify = median3(func() { _ = sg02.VerifyShare(pk, ct, shares[0]) })
		costs.Combine = median3(func() { _, _ = sg02.Combine(pk, ct, shares) })

	case schemes.BZ03:
		pk := keys.MustPublic[*bz03.PublicKey](nodes[0], schemes.BZ03)
		ct, err := bz03.Encrypt(rand.Reader, pk, payload, []byte("cal"))
		if err != nil {
			return SchemeCosts{}, err
		}
		shares := make([]*bz03.DecShare, quorum)
		for i := 0; i < quorum; i++ {
			ds, err := bz03.DecryptShare(pk, keys.MustShare[bz03.KeyShare](nodes[i], schemes.BZ03), ct)
			if err != nil {
				return SchemeCosts{}, err
			}
			shares[i] = ds
		}
		costs.ShareGen = median3(func() { _, _ = bz03.DecryptShare(pk, keys.MustShare[bz03.KeyShare](nodes[0], schemes.BZ03), ct) })
		costs.ShareVerify = median3(func() { _ = bz03.VerifyShare(pk, ct, shares[0]) })
		costs.Combine = median3(func() { _, _ = bz03.Combine(pk, ct, shares) })

	case schemes.SH00:
		pk := keys.MustPublic[*sh00.PublicKey](nodes[0], schemes.SH00)
		shares := make([]*sh00.SigShare, quorum)
		for i := 0; i < quorum; i++ {
			ss, err := sh00.SignShare(rand.Reader, pk, keys.MustShare[sh00.KeyShare](nodes[i], schemes.SH00), payload)
			if err != nil {
				return SchemeCosts{}, err
			}
			shares[i] = ss
		}
		costs.ShareGen = median3(func() {
			_, _ = sh00.SignShare(rand.Reader, pk, keys.MustShare[sh00.KeyShare](nodes[0], schemes.SH00), payload)
		})
		costs.ShareVerify = median3(func() { _ = sh00.VerifyShare(pk, payload, shares[0]) })
		costs.Combine = median3(func() { _, _ = sh00.Combine(pk, payload, shares) })

	case schemes.BLS04:
		pk := keys.MustPublic[*bls04.PublicKey](nodes[0], schemes.BLS04)
		shares := make([]*bls04.SigShare, quorum)
		for i := 0; i < quorum; i++ {
			shares[i] = bls04.SignShare(keys.MustShare[bls04.KeyShare](nodes[i], schemes.BLS04), payload)
		}
		costs.ShareGen = median3(func() { _ = bls04.SignShare(keys.MustShare[bls04.KeyShare](nodes[0], schemes.BLS04), payload) })
		costs.ShareVerify = median3(func() { _ = bls04.VerifyShare(pk, payload, shares[0]) })
		costs.Combine = median3(func() { _, _ = bls04.Combine(pk, payload, shares) })

	case schemes.KG20:
		pk := keys.MustPublic[*frost.PublicKey](nodes[0], schemes.KG20)
		g := pk.Group
		nonces := make([]*frost.Nonce, quorum)
		comms := make([]*frost.NonceCommitment, quorum)
		for i := 0; i < quorum; i++ {
			nonce, comm, err := frost.GenerateNonce(rand.Reader, g, i+1)
			if err != nil {
				return SchemeCosts{}, err
			}
			nonces[i], comms[i] = nonce, comm
		}
		shares := make([]*frost.SignatureShare, quorum)
		for i := 0; i < quorum; i++ {
			ss, err := frost.Sign(pk, keys.MustShare[frost.KeyShare](nodes[i], schemes.KG20), nonces[i], payload, comms)
			if err != nil {
				return SchemeCosts{}, err
			}
			shares[i] = ss
		}
		costs.Round1 = median3(func() { _, _, _ = frost.GenerateNonce(rand.Reader, g, 1) })
		costs.ShareGen = median3(func() {
			_, _ = frost.Sign(pk, keys.MustShare[frost.KeyShare](nodes[0], schemes.KG20), nonces[0], payload, comms)
		})
		costs.ShareVerify = median3(func() { _ = frost.VerifyShare(pk, payload, comms, shares[0]) })
		costs.Combine = median3(func() { _, _ = frost.Combine(pk, payload, comms, shares) })

	case schemes.CKS05:
		pk := keys.MustPublic[*cks05.PublicKey](nodes[0], schemes.CKS05)
		shares := make([]*cks05.CoinShare, quorum)
		for i := 0; i < quorum; i++ {
			cs, err := cks05.Share(rand.Reader, pk, keys.MustShare[cks05.KeyShare](nodes[i], schemes.CKS05), payload)
			if err != nil {
				return SchemeCosts{}, err
			}
			shares[i] = cs
		}
		costs.ShareGen = median3(func() {
			_, _ = cks05.Share(rand.Reader, pk, keys.MustShare[cks05.KeyShare](nodes[0], schemes.CKS05), payload)
		})
		costs.ShareVerify = median3(func() { _ = cks05.VerifyShare(pk, payload, shares[0]) })
		costs.Combine = median3(func() { _, _ = cks05.Combine(pk, payload, shares) })

	default:
		return SchemeCosts{}, fmt.Errorf("eval: unknown scheme %q", id)
	}

	costCacheMu.Lock()
	costCache[key] = costs
	costCacheMu.Unlock()
	return costs, nil
}
