package eval

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"thetacrypt/internal/schemes"
)

func TestPercentile(t *testing.T) {
	data := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 5}, {95, 10}, {100, 10}, {10, 1}, {34, 4},
	}
	for _, tc := range cases {
		if got := percentile(data, tc.p); got != tc.want {
			t.Fatalf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestTable2Deployments(t *testing.T) {
	deps := Table2()
	if len(deps) != 6 {
		t.Fatalf("got %d deployments", len(deps))
	}
	for _, d := range deps {
		if d.N != 3*d.T+1 {
			t.Fatalf("%s: n=%d t=%d violates n=3t+1", d.Name, d.N, d.T)
		}
		// One-way latency is symmetric and positive.
		if d.OneWay(1, 2) != d.OneWay(2, 1) {
			t.Fatalf("%s: asymmetric link", d.Name)
		}
	}
	local, _ := DeploymentByName("DO-7-L")
	global, _ := DeploymentByName("DO-7-G")
	if local.OneWay(1, 2) >= time.Millisecond {
		t.Fatal("local deployment link too slow")
	}
	// In the global deployment some pair spans continents.
	var maxDelay time.Duration
	for i := 1; i <= 7; i++ {
		for j := 1; j <= 7; j++ {
			if d := global.OneWay(i, j); d > maxDelay {
				maxDelay = d
			}
		}
	}
	if maxDelay < 50*time.Millisecond {
		t.Fatalf("global deployment max one-way %v too small", maxDelay)
	}
	if _, err := DeploymentByName("DO-9000"); err == nil {
		t.Fatal("unknown deployment accepted")
	}
}

func TestSimDeterminism(t *testing.T) {
	dep, _ := DeploymentByName("DO-7-L")
	spec := RunSpec{Scheme: schemes.CKS05, Deployment: dep, Rate: 4, Duration: time.Second, Seed: 99}
	r1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Offered != r2.Offered || r1.Completed != r2.Completed || r1.L95All != r2.L95All {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestSimCompletesAtLowLoad(t *testing.T) {
	dep, _ := DeploymentByName("DO-7-L")
	r, err := Run(RunSpec{Scheme: schemes.CKS05, Deployment: dep, Rate: 2, Duration: 2 * time.Second, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != r.Offered {
		t.Fatalf("low load should complete everything: %d/%d", r.Completed, r.Offered)
	}
	// Unloaded latency is bounded by a few multiples of the crypto
	// costs plus network delay.
	unloaded := r.Costs.ShareGen + time.Duration(dep.T+1)*r.Costs.ShareVerify + r.Costs.Combine
	if r.L95All > 10*unloaded+100*time.Millisecond {
		t.Fatalf("unloaded L95 %v too high (budget %v)", r.L95All, unloaded)
	}
}

func TestGlobalDeploymentAddsLatency(t *testing.T) {
	local, _ := DeploymentByName("DO-7-L")
	global, _ := DeploymentByName("DO-7-G")
	spec := RunSpec{Scheme: schemes.CKS05, Rate: 2, Duration: 2 * time.Second, Seed: 7}
	spec.Deployment = local
	rl, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Deployment = global
	rg, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rg.L95All <= rl.L95All+20*time.Millisecond {
		t.Fatalf("global (%v) should be much slower than local (%v)", rg.L95All, rl.L95All)
	}
	// The paper's core observation: geography shifts latency but not
	// the computation-bound capacity. Verify the latency shift is at
	// least one WAN round trip.
	if rg.L95All-rl.L95All < 40*time.Millisecond {
		t.Fatal("WAN latency not reflected")
	}
}

func TestFrostPrecomputationAblation(t *testing.T) {
	dep, _ := DeploymentByName("DO-7-G")
	two, err := Run(RunSpec{Scheme: schemes.KG20, Deployment: dep, Rate: 2, Duration: 2 * time.Second, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(RunSpec{Scheme: schemes.KG20, Deployment: dep, Rate: 2, Duration: 2 * time.Second, Seed: 11, Precomputed: true})
	if err != nil {
		t.Fatal(err)
	}
	if two.Completed == 0 || one.Completed == 0 {
		t.Fatalf("no completions: two=%d one=%d", two.Completed, one.Completed)
	}
	// Dropping the commitment round must save at least a large fraction
	// of one WAN round trip at low load.
	if one.L95All+20*time.Millisecond >= two.L95All {
		t.Fatalf("precomputed (%v) not faster than two-round (%v)", one.L95All, two.L95All)
	}
}

func TestSchemeOrderingAtSmallScale(t *testing.T) {
	// Paper: in small deployments, local crypto dominates, so ECDH-based
	// schemes beat pairing-based ones.
	dep, _ := DeploymentByName("DO-7-L")
	cks, err := Run(RunSpec{Scheme: schemes.CKS05, Deployment: dep, Rate: 2, Duration: 2 * time.Second, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	bls, err := Run(RunSpec{Scheme: schemes.BLS04, Deployment: dep, Rate: 2, Duration: 2 * time.Second, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if cks.L95All >= bls.L95All {
		t.Fatalf("ECDH-based CKS05 (%v) should beat pairing-based BLS04 (%v) at small scale", cks.L95All, bls.L95All)
	}
}

func TestKneeAndUsableCapacity(t *testing.T) {
	mk := func(rate, tput float64, l95 time.Duration) *RunResult {
		return &RunResult{Spec: RunSpec{Rate: rate}, Completed: 1, Throughput: tput, L95All: l95}
	}
	series := []*RunResult{
		mk(1, 1, 100*time.Millisecond),
		mk(2, 2, 100*time.Millisecond),
		mk(4, 4, 110*time.Millisecond), // knee: best tput/latency
		mk(8, 5, 400*time.Millisecond),
		mk(16, 5.2, 2*time.Second),
	}
	knee := Knee(series)
	if knee == nil || knee.Spec.Rate != 4 {
		t.Fatalf("knee = %+v, want rate 4", knee)
	}
	if got := UsableCapacity(series); got != 5.2 {
		t.Fatalf("usable capacity = %v", got)
	}
	if Knee(nil) != nil {
		t.Fatal("empty knee should be nil")
	}
}

func TestStaticTables(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	if !strings.Contains(sb.String(), "SG02") || !strings.Contains(sb.String(), "randomness") {
		t.Fatal("Table 1 incomplete")
	}
	sb.Reset()
	Table2Print(&sb)
	if !strings.Contains(sb.String(), "DO-127-G") {
		t.Fatal("Table 2 incomplete")
	}
	sb.Reset()
	Table3(&sb)
	if !strings.Contains(sb.String(), "O(n^2)") {
		t.Fatal("Table 3 incomplete")
	}
}

func TestCalibrationCaching(t *testing.T) {
	c1, err := Calibrate(schemes.CKS05, 1, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Calibrate(schemes.CKS05, 1, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("calibration cache miss for identical key")
	}
	if c1.ShareGen <= 0 || c1.ShareVerify <= 0 || c1.Combine <= 0 {
		t.Fatalf("implausible costs: %+v", c1)
	}
}

func TestValidateSimAgainstRealStack(t *testing.T) {
	if testing.Short() {
		t.Skip("real-stack validation is wall-clock bound")
	}
	dep, _ := DeploymentByName("DO-7-L")
	spec := RunSpec{Scheme: schemes.CKS05, Deployment: dep, Rate: 4, Duration: 2 * time.Second, Seed: 42}
	simRes, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	realRes, err := RunReal(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sim Lθ=%v L95=%v | real Lθ=%v L95=%v (host cores: %d)",
		simRes.LnetTheta, simRes.L95All, realRes.LnetTheta, realRes.L95All, runtime.NumCPU())
	// The simulator gives each node a dedicated vCPU (the paper's
	// setup); the real stack multiplexes all n nodes onto the host's
	// cores. The real latency must therefore lie between the simulated
	// value and roughly n/cores times it (plus scheduling overhead).
	ratio := float64(realRes.L95All) / float64(simRes.L95All)
	inflation := float64(dep.N)/float64(runtime.NumCPU()) + 1
	if ratio < 0.2 || ratio > 5*inflation {
		t.Fatalf("sim/real divergence: ratio %.2f (allowed up to %.1f)", ratio, 5*inflation)
	}
}
