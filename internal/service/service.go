// Package service implements Thetacrypt's service layer (Section 3.4):
// the two RPC endpoints applications integrate against. The protocol API
// executes threshold protocols as a black box; the scheme API gives
// direct access to cryptographic primitives (here: encryption under the
// service's public keys and verification of results). The original
// system exposes these over gRPC/Protocol Buffers; this reproduction
// uses HTTP/1.1 with JSON bodies (stdlib net/http), preserving the
// two-endpoint shape.
package service

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/sg02"
)

// SubmitRequest is the protocol-API request body.
type SubmitRequest struct {
	Scheme  string `json:"scheme"`
	Op      string `json:"op"` // "sign" | "decrypt" | "coin"
	Payload []byte `json:"payload"`
	Session string `json:"session,omitempty"`
}

// SubmitResponse returns the instance handle.
type SubmitResponse struct {
	InstanceID string `json:"instance_id"`
}

// ResultResponse carries a finished instance's outcome.
type ResultResponse struct {
	InstanceID string `json:"instance_id"`
	Done       bool   `json:"done"`
	Value      []byte `json:"value,omitempty"`
	Error      string `json:"error,omitempty"`
	LatencyMS  int64  `json:"latency_ms"`
}

// EncryptRequest is the scheme-API encryption request.
type EncryptRequest struct {
	Scheme  string `json:"scheme"`
	Message []byte `json:"message"`
	Label   []byte `json:"label,omitempty"`
}

// EncryptResponse carries the marshaled ciphertext.
type EncryptResponse struct {
	Ciphertext []byte `json:"ciphertext"`
}

// InfoResponse describes the node and its schemes (scheme API).
type InfoResponse struct {
	NodeIndex int      `json:"node_index"`
	N         int      `json:"n"`
	T         int      `json:"t"`
	Schemes   []string `json:"schemes"`
}

// Server exposes the service layer over HTTP: the legacy /v1 endpoints
// and the /v2 API (batch submit, result streaming, structured errors,
// keychain management; see v2.go).
type Server struct {
	engine *orchestration.Engine
	keys   *keys.Keystore
	mux    *http.ServeMux

	// deadlines records the per-request deadlines set by v2 submissions
	// and enforced by the v2 results endpoints (shared with the generic
	// Front; see front.go).
	deadlines deadlineTable
}

// NewServer wires the endpoints.
func NewServer(engine *orchestration.Engine, store *keys.Keystore) *Server {
	s := &Server{
		engine:    engine,
		keys:      store,
		mux:       http.NewServeMux(),
		deadlines: newDeadlineTable(),
	}
	s.mux.HandleFunc("POST /v1/protocol/submit", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/protocol/result/{id}", s.handleResult)
	s.mux.HandleFunc("POST /v1/scheme/encrypt", s.handleEncrypt)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.registerV2()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var _ http.Handler = (*Server)(nil)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func parseOp(op string) (protocols.Operation, error) {
	switch op {
	case "sign":
		return protocols.OpSign, nil
	case "decrypt":
		return protocols.OpDecrypt, nil
	case "coin":
		return protocols.OpCoin, nil
	default:
		return 0, fmt.Errorf("service: unknown operation %q", op)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	op, err := parseOp(body.Op)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req := protocols.Request{
		Scheme:  schemes.ID(body.Scheme),
		Op:      op,
		Payload: body.Payload,
		Session: body.Session,
	}
	if _, err := schemes.Lookup(req.Scheme); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.engine.Submit(r.Context(), req); err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, orchestration.ErrOverloaded) {
			status = http.StatusTooManyRequests
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{InstanceID: req.InstanceID()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, errors.New("service: missing instance id"))
		return
	}
	future := s.engine.Attach(id)
	if r.URL.Query().Get("wait") != "1" {
		select {
		case res := <-future.Done():
			writeResult(w, id, res)
		default:
			writeJSON(w, http.StatusOK, ResultResponse{InstanceID: id, Done: false})
		}
		return
	}
	res, err := future.Wait(r.Context())
	if err != nil {
		httpError(w, http.StatusGatewayTimeout, err)
		return
	}
	writeResult(w, id, res)
}

func writeResult(w http.ResponseWriter, id string, res orchestration.Result) {
	out := ResultResponse{
		InstanceID: id,
		Done:       true,
		Value:      res.Value,
		LatencyMS:  res.Finished.Sub(res.Started).Milliseconds(),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleEncrypt is part of the scheme API: clients encrypt against the
// service public key locally at any node, without a threshold protocol.
func (s *Server) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	var body EncryptRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode body: %w", err))
		return
	}
	switch schemes.ID(body.Scheme) {
	case schemes.SG02:
		pk, err := keys.Public[*sg02.PublicKey](s.keys, schemes.SG02, "")
		if err != nil {
			httpError(w, http.StatusNotFound, errors.New("service: no SG02 keys"))
			return
		}
		ct, err := sg02.Encrypt(rand.Reader, pk, body.Message, body.Label)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, EncryptResponse{Ciphertext: ct.Marshal()})
	case schemes.BZ03:
		pk, err := keys.Public[*bz03.PublicKey](s.keys, schemes.BZ03, "")
		if err != nil {
			httpError(w, http.StatusNotFound, errors.New("service: no BZ03 keys"))
			return
		}
		ct, err := bz03.Encrypt(rand.Reader, pk, body.Message, body.Label)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, EncryptResponse{Ciphertext: ct.Marshal()})
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: scheme %q does not encrypt", body.Scheme))
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	var present []string
	for _, id := range s.keys.Schemes() {
		present = append(present, string(id))
	}
	writeJSON(w, http.StatusOK, InfoResponse{
		NodeIndex: s.keys.Index,
		N:         s.keys.N,
		T:         s.keys.T,
		Schemes:   present,
	})
}

// Client is the Go client of the service layer.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a node's service endpoint, e.g.
// "http://127.0.0.1:8080".
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{Timeout: 60 * time.Second}}
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("encode request: %w", err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("service: %s: %s", resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit starts a protocol instance.
func (c *Client) Submit(scheme schemes.ID, op, session string, payload []byte) (string, error) {
	var out SubmitResponse
	err := c.post("/v1/protocol/submit", SubmitRequest{
		Scheme: string(scheme), Op: op, Payload: payload, Session: session,
	}, &out)
	return out.InstanceID, err
}

// WaitResult blocks until the instance completes.
func (c *Client) WaitResult(instanceID string) (*ResultResponse, error) {
	var out ResultResponse
	resp, err := c.http.Get(c.base + "/v1/protocol/result/" + instanceID + "?wait=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("service: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return &out, fmt.Errorf("service: instance failed: %s", out.Error)
	}
	return &out, nil
}

// Encrypt calls the scheme API's local encryption.
func (c *Client) Encrypt(scheme schemes.ID, message, label []byte) ([]byte, error) {
	var out EncryptResponse
	err := c.post("/v1/scheme/encrypt", EncryptRequest{
		Scheme: string(scheme), Message: message, Label: label,
	}, &out)
	return out.Ciphertext, err
}

// Info fetches node metadata.
func (c *Client) Info() (*InfoResponse, error) {
	resp, err := c.http.Get(c.base + "/v1/info")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
