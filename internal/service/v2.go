package service

// The /v2 endpoints: batch submission, long-poll and SSE result
// streaming, structured machine-readable errors, idempotent
// re-submission, and per-request deadlines. The wire types live in the
// api package so the client SDK and this server cannot drift apart; v1
// (service.go) remains mounted for existing integrations.

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/sg02"
)

// Result-wait bounds: a long poll blocks at most maxWaitWindow even if
// the client asks for more; without an explicit timeout_ms it blocks up
// to defaultWaitWindow.
const (
	defaultWaitWindow = 30 * time.Second
	maxWaitWindow     = 2 * time.Minute
)

// maxResultIDs bounds one results query. Each id attaches a watcher to
// the engine (creating a placeholder for ids it has never seen), so an
// unbounded list would let a single request manufacture arbitrary
// engine state.
const maxResultIDs = 1024

// Submission bounds: one batch carries at most maxBatchItems requests
// and one body at most maxSubmitBody bytes (aligned with the
// transport's frame cap), so a single request cannot sidestep the
// engine's queue-slot admission control by sheer size.
const (
	maxBatchItems = 1024
	maxSubmitBody = 16 << 20
)

// Deadline-map bounds: entries are pruned once their deadline is
// deadlineGrace in the past (by then the engine has retired or evicted
// the instance), and capped at maxDeadlines outright, so fire-and-forget
// traffic cannot grow the service layer without bound.
const (
	deadlineGrace = 5 * time.Minute
	maxDeadlines  = 65536
)

func (s *Server) registerV2() {
	s.mux.HandleFunc("POST /v2/protocol/submit", s.handleSubmitV2)
	s.mux.HandleFunc("GET /v2/protocol/results", s.handleResultsV2)
	s.mux.HandleFunc("POST /v2/scheme/encrypt", s.handleEncryptV2)
	s.mux.HandleFunc("GET /v2/info", s.handleInfoV2)
	s.mux.HandleFunc("GET /v2/keys", s.handleKeysV2)
	s.mux.HandleFunc("GET /v2/keys/{scheme}/{id}", s.handleKeyV2)
	s.mux.HandleFunc("POST /v2/keys", s.handleGenerateKeyV2)
	s.mux.HandleFunc("POST /v2/keys/{id}/reshare", s.handleReshareKeyV2)
}

func writeErrorV2(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, api.HTTPStatus(e.Code), api.ErrorResponse{Error: e})
}

// engineError classifies an engine submission failure: a saturated
// queue is backpressure the client should retry (429), anything else is
// the node being unavailable.
func engineError(err error) *api.Error {
	switch {
	case errors.Is(err, orchestration.ErrOverloaded):
		return api.Errf(api.CodeOverloaded, "%v", err)
	default:
		return api.Errf(api.CodeUnavailable, "%v", err)
	}
}

// validateItem classifies an item's defects into the structured error
// model, funneling through the protocol module's validation seam, then
// resolves the named key against this node's keystore: a threshold
// operation under a key the node does not hold is rejected with
// key_unknown (404) before any instance state is created, identically
// to the embedded deployments; a keygen naming an installed key is
// rejected with key_exists (409).
func (s *Server) validateItem(it api.SubmitItem) (protocols.Request, *api.Error) {
	req, err := it.Request()
	if err != nil {
		var e *api.Error
		if errors.As(err, &e) {
			return protocols.Request{}, e
		}
		return protocols.Request{}, api.Errf(api.CodeBadRequest, "%v", err)
	}
	if e := api.ValidateRequest(req); e != nil {
		return protocols.Request{}, e
	}
	if e := api.CheckRequestKey(s.keys, req); e != nil {
		return protocols.Request{}, e
	}
	return req, nil
}

// handleSubmitV2 accepts a batch of 1..N requests in one body: one JSON
// decode and one engine hand-off for the whole batch. Invalid items
// fail individually; re-submissions are idempotent and flagged as
// duplicates. The status is 202 when at least one new instance started,
// 200 otherwise.
func (s *Server) handleSubmitV2(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.SubmitBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorV2(w, api.Errf(api.CodePayloadTooLarge, "body exceeds %d bytes", maxSubmitBody))
			return
		}
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	if len(body.Requests) == 0 {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "empty batch: need 1..N requests"))
		return
	}
	if len(body.Requests) > maxBatchItems {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "batch of %d exceeds limit %d", len(body.Requests), maxBatchItems))
		return
	}

	entries := make([]api.SubmitEntry, len(body.Requests))
	var reqs []protocols.Request
	var reqIdx []int // position of reqs[i] in entries
	for i, it := range body.Requests {
		req, e := s.validateItem(it)
		if e != nil {
			entries[i] = api.SubmitEntry{Error: e}
			continue
		}
		reqs = append(reqs, req)
		reqIdx = append(reqIdx, i)
	}

	var subs []orchestration.Submission
	if len(reqs) > 0 {
		var err error
		subs, err = s.engine.SubmitBatch(r.Context(), reqs)
		if err != nil {
			writeErrorV2(w, engineError(err))
			return
		}
	}
	status := http.StatusOK
	now := time.Now()
	for i, sub := range subs {
		entries[reqIdx[i]] = api.SubmitEntry{InstanceID: sub.InstanceID, Duplicate: sub.Duplicate}
		if !sub.Duplicate {
			status = http.StatusAccepted
			// Only the instance-creating submission sets the deadline
			// (a later duplicate's tighter timeout must not cut short
			// the waits of clients already attached), and it REPLACES
			// any deadline left over from a previous, since-evicted run
			// of the same request — a stale expired deadline must not
			// poison the fresh run with spurious timeouts.
			if ms := body.Requests[reqIdx[i]].TimeoutMS; ms > 0 {
				s.deadlines.set(sub.InstanceID, now.Add(time.Duration(ms)*time.Millisecond))
			} else {
				s.deadlines.clear(sub.InstanceID)
			}
		}
	}
	writeJSON(w, status, api.SubmitBatchResponse{Results: entries})
}

// resultEvent pairs a finished (or deadline-expired) instance with its
// position in the query.
type resultEvent struct {
	idx   int
	entry api.ResultEntry
}

// watchInstances attaches to every id and forwards one final entry per
// instance — completion or per-request deadline expiry — to the
// returned channel until ctx ends.
func (s *Server) watchInstances(ctx context.Context, ids []string) <-chan resultEvent {
	events := make(chan resultEvent, len(ids))
	for i, id := range ids {
		future := s.engine.Attach(id)
		deadline, hasDeadline := s.deadlines.get(id)
		go func(i int, id string, f *orchestration.Future) {
			// A result that is already available wins over an expired
			// deadline: the timeout bounds waiting, it does not
			// invalidate finished work.
			select {
			case res := <-f.Done():
				s.deadlines.clear(id)
				events <- resultEvent{idx: i, entry: finishedEntry(id, res)}
				return
			default:
			}
			var expire <-chan time.Time
			if hasDeadline {
				t := time.NewTimer(time.Until(deadline))
				defer t.Stop()
				expire = t.C
			}
			select {
			case res := <-f.Done():
				s.deadlines.clear(id)
				events <- resultEvent{idx: i, entry: finishedEntry(id, res)}
			case <-expire:
				events <- resultEvent{idx: i, entry: deadlineEntryFor(id)}
			case <-ctx.Done():
			}
		}(i, id, future)
	}
	return events
}

func finishedEntry(id string, res orchestration.Result) api.ResultEntry {
	entry := api.ResultEntry{
		InstanceID: id,
		Done:       true,
		Value:      res.Value,
		LatencyMS:  res.Finished.Sub(res.Started).Milliseconds(),
	}
	entry.Error = api.ClassifyResultErr(res.Err)
	return entry
}

// handleResultsV2 serves GET /v2/protocol/results?ids=a,b,c. Without
// stream=1 it long-polls: the response is sent once every instance is
// final or the wait window (timeout_ms, default 30s) elapses, pending
// instances reported with done=false. With stream=1 it emits one
// ResultEntry per SSE "data:" event as instances finish, over a single
// connection.
func (s *Server) handleResultsV2(w http.ResponseWriter, r *http.Request) {
	ids, window, e := parseResultsQuery(r)
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), window)
	defer cancel()

	events := s.watchInstances(ctx, ids)
	if r.URL.Query().Get("stream") == "1" {
		streamResults(ctx, w, len(ids), events)
		return
	}
	longPollResults(ctx, w, ids, events)
}

// parseResultsQuery validates the shared query grammar of the results
// endpoint (ids=a,b,c plus an optional timeout_ms wait window), used by
// both the engine-backed Server and the Service-backed Front.
func parseResultsQuery(r *http.Request) ([]string, time.Duration, *api.Error) {
	idsParam := r.URL.Query().Get("ids")
	if idsParam == "" {
		return nil, 0, api.Errf(api.CodeBadRequest, "missing ids query parameter")
	}
	ids := strings.Split(idsParam, ",")
	if len(ids) > maxResultIDs {
		return nil, 0, api.Errf(api.CodeBadRequest, "%d ids exceeds limit %d", len(ids), maxResultIDs)
	}
	window := defaultWaitWindow
	if msParam := r.URL.Query().Get("timeout_ms"); msParam != "" {
		ms, err := strconv.ParseInt(msParam, 10, 64)
		if err != nil || ms < 0 {
			return nil, 0, api.Errf(api.CodeBadRequest, "bad timeout_ms %q", msParam)
		}
		window = min(time.Duration(ms)*time.Millisecond, maxWaitWindow)
	}
	return ids, window, nil
}

// deadlineEntryFor is the final entry of an instance whose per-request
// deadline elapsed before its result arrived.
func deadlineEntryFor(id string) api.ResultEntry {
	return api.ResultEntry{
		InstanceID: id,
		Error:      api.Errf(api.CodeTimeout, "per-request deadline exceeded"),
	}
}

// longPollResults collects events until every instance is final or the
// wait window closes, then writes one response; instances still pending
// at the window are reported with done=false.
func longPollResults(ctx context.Context, w http.ResponseWriter, ids []string, events <-chan resultEvent) {
	entries := make([]api.ResultEntry, len(ids))
	for i, id := range ids {
		entries[i] = api.ResultEntry{InstanceID: id} // pending unless finalized below
	}
	remaining := len(ids)
	for remaining > 0 {
		select {
		case ev := <-events:
			entries[ev.idx] = ev.entry
			remaining--
		case <-ctx.Done():
			writeJSON(w, http.StatusOK, api.ResultsResponse{Results: entries})
			return
		}
	}
	writeJSON(w, http.StatusOK, api.ResultsResponse{Results: entries})
}

// streamResults writes one SSE event per final instance. The stream
// ends when every requested instance is final or the wait window
// closes; clients re-poll for instances they did not see.
func streamResults(ctx context.Context, w http.ResponseWriter, n int, events <-chan resultEvent) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErrorV2(w, api.Errf(api.CodeInternal, "streaming unsupported by transport"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for remaining := n; remaining > 0; remaining-- {
		select {
		case ev := <-events:
			data, err := json.Marshal(ev.entry)
			if err != nil {
				return
			}
			if _, err := w.Write([]byte("data: " + string(data) + "\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// handleEncryptV2 is the scheme API's local encryption with structured
// errors: scheme_unknown, scheme_not_cipher, or scheme_no_keys.
func (s *Server) handleEncryptV2(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.EncryptRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorV2(w, api.Errf(api.CodePayloadTooLarge, "body exceeds %d bytes", maxSubmitBody))
			return
		}
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	id := schemes.ID(body.Scheme)
	if _, err := schemes.Lookup(id); err != nil {
		writeErrorV2(w, api.Errf(api.CodeSchemeUnknown, "%v", err))
		return
	}
	switch id {
	case schemes.SG02, schemes.BZ03:
	default:
		writeErrorV2(w, api.Errf(api.CodeSchemeNotCipher, "scheme %s does not encrypt", id))
		return
	}
	if !s.keys.Has(id) {
		writeErrorV2(w, api.Errf(api.CodeSchemeNoKeys, "no %s keys dealt to this node", id))
		return
	}
	key, err := s.keys.Get(id, body.KeyID)
	if err != nil {
		writeErrorV2(w, api.Errf(api.CodeKeyUnknown, "%v", err))
		return
	}
	var ct interface{ Marshal() []byte }
	switch pk := key.Public.(type) {
	case *sg02.PublicKey:
		ct, err = sg02.Encrypt(rand.Reader, pk, body.Message, body.Label)
	case *bz03.PublicKey:
		ct, err = bz03.Encrypt(rand.Reader, pk, body.Message, body.Label)
	default:
		writeErrorV2(w, api.Errf(api.CodeInternal, "key %s/%s holds %T", id, key.ID, key.Public))
		return
	}
	if err != nil {
		writeErrorV2(w, api.Errf(api.CodeInternal, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.EncryptResponse{Ciphertext: ct.Marshal()})
}

func (s *Server) handleInfoV2(w http.ResponseWriter, _ *http.Request) {
	var present []string
	for _, id := range s.keys.Schemes() {
		present = append(present, string(id))
	}
	writeJSON(w, http.StatusOK, api.InfoResponse{
		APIVersion: 2,
		NodeIndex:  s.keys.Index,
		N:          s.keys.N,
		T:          s.keys.T,
		Schemes:    present,
		Keys:       api.KeyInfosOf(s.keys.List()),
		Stats:      api.EngineStatsOf(s.engine.Stats()),
	})
}

// handleKeysV2 lists the node's keychain (GET /v2/keys).
func (s *Server) handleKeysV2(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.KeysResponse{Keys: api.KeyInfosOf(s.keys.List())})
}

// handleKeyV2 resolves one named key (GET /v2/keys/{scheme}/{id}):
// scheme_unknown for a scheme outside the registry, key_unknown for a
// key the node does not hold, both 404.
func (s *Server) handleKeyV2(w http.ResponseWriter, r *http.Request) {
	id := schemes.ID(r.PathValue("scheme"))
	if _, err := schemes.Lookup(id); err != nil {
		writeErrorV2(w, api.Errf(api.CodeSchemeUnknown, "%v", err))
		return
	}
	info, e := api.KeyInfoFromStore(s.keys, id, r.PathValue("id"))
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	writeJSON(w, http.StatusOK, api.KeyResponse{Key: info})
}

// handleGenerateKeyV2 starts a distributed key generation
// (POST /v2/keys): the keygen request is built from the body via the
// shared api.KeygenRequest seam, pre-checked against the local
// keystore (key_exists 409), and submitted to the engine like any
// other protocol instance. The response carries the instance handle
// and the assigned key ID; completion is observed on the ordinary
// results endpoint, whose value is the key ID.
func (s *Server) handleGenerateKeyV2(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.GenerateKeyRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	req, e := api.KeygenRequest(schemes.ID(body.Scheme), api.GenerateKeyOptions{KeyID: body.KeyID, Group: body.Group})
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	if e := api.CheckRequestKey(s.keys, req); e != nil {
		writeErrorV2(w, e)
		return
	}
	if _, err := s.engine.Submit(r.Context(), req); err != nil {
		writeErrorV2(w, engineError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, api.GenerateKeyResponse{
		InstanceID: req.InstanceID(),
		KeyID:      req.KeyID,
	})
}

// handleReshareKeyV2 starts a live resharing of a named key
// (POST /v2/keys/{id}/reshare): the reshare request is built from the
// body via the shared api.ReshareRequest seam — which resolves the
// key's current epoch, threshold, and committee from the local
// keystore and pins the instance to that epoch — pre-checked like any
// submission, and handed to the engine. The response carries the
// instance handle and the target epoch; completion is observed on the
// ordinary results endpoint, whose value is the new epoch in decimal.
func (s *Server) handleReshareKeyV2(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.ReshareKeyRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	req, e := api.ReshareRequest(s.keys, schemes.ID(body.Scheme), r.PathValue("id"),
		api.ReshareOptions{NewT: body.NewT, Members: body.Members})
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	if e := api.CheckRequestKey(s.keys, req); e != nil {
		writeErrorV2(w, e)
		return
	}
	if _, err := s.engine.Submit(r.Context(), req); err != nil {
		writeErrorV2(w, engineError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, api.ReshareKeyResponse{
		InstanceID: req.InstanceID(),
		KeyID:      req.KeyID,
		Epoch:      req.Epoch + 1,
	})
}
