package service

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
)

// countingHandler counts HTTP requests reaching a node's service layer,
// the round-trip metric of the batch-amortization test.
type countingHandler struct {
	h http.Handler
	n atomic.Int64
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.n.Add(1)
	c.h.ServeHTTP(w, r)
}

// testServiceV2 spins up a full 4-node Θ-network with HTTP front ends
// and returns v2 SDK clients plus per-node request counters.
func testServiceV2(t *testing.T) ([]*client.Client, []*keys.Keystore, []*countingHandler) {
	t.Helper()
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.BLS04, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, memnet.Options{})
	clients := make([]*client.Client, n)
	counters := make([]*countingHandler, n)
	for i := 0; i < n; i++ {
		engine := orchestration.New(orchestration.Config{
			Keys: nodes[i],
			Net:  hub.Endpoint(i + 1),
		})
		counters[i] = &countingHandler{h: NewServer(engine, nodes[i])}
		srv := httptest.NewServer(counters[i])
		clients[i] = client.New(srv.URL)
		t.Cleanup(srv.Close)
		t.Cleanup(engine.Stop)
	}
	t.Cleanup(hub.Close)
	return clients, nodes, counters
}

// partialServiceV2 starts only one engine of a 4-node deployment, so no
// instance ever reaches its t+1 = 2 quorum: the fixture for deadline
// and timeout paths.
func partialServiceV2(t *testing.T) *client.Client {
	t.Helper()
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.BLS04},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(4, memnet.Options{})
	engine := orchestration.New(orchestration.Config{
		Keys: nodes[0],
		Net:  hub.Endpoint(1),
	})
	srv := httptest.NewServer(NewServer(engine, nodes[0]))
	t.Cleanup(srv.Close)
	t.Cleanup(engine.Stop)
	t.Cleanup(hub.Close)
	return client.New(srv.URL)
}

func TestV2SignThroughSDK(t *testing.T) {
	clients, nodes, _ := testServiceV2(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	msg := []byte("v2 signature")
	h, err := clients[1].Submit(ctx, protocols.Request{
		Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: msg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := clients[1].Wait(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sig, err := bls04.UnmarshalSignature(res.Value)
	if err != nil {
		t.Fatal(err)
	}
	if err := bls04.Verify(keys.MustPublic[*bls04.PublicKey](nodes[0], schemes.BLS04), msg, sig); err != nil {
		t.Fatal(err)
	}
	// Any node serves the result of the shared instance.
	res2, err := clients[3].Wait(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	if string(res2.Value) != string(res.Value) {
		t.Fatal("nodes disagree on result")
	}
}

func TestV2InfoThroughSDK(t *testing.T) {
	clients, _, _ := testServiceV2(t)
	info, err := clients[2].Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.NodeIndex != 3 || info.N != 4 || info.T != 1 || len(info.Schemes) != 3 {
		t.Fatalf("unexpected info: %+v", info)
	}
	// The engine snapshot carries the transport's per-peer health, so a
	// remote operator can spot a lagging peer from /v2/info alone.
	if info.Stats == nil || info.Stats.Transport == nil {
		t.Fatalf("info stats missing transport health: %+v", info.Stats)
	}
	if got := len(info.Stats.Transport.Peers); got != 3 {
		t.Fatalf("transport reports %d peers, want 3", got)
	}
	for _, ps := range info.Stats.Transport.Peers {
		if ps.State != "up" || ps.QueueCap == 0 {
			t.Fatalf("peer %d health = %+v, want up with a bounded queue", ps.Peer, ps)
		}
	}
	if !info.Stats.Transport.Reliable {
		t.Fatalf("transport not reporting the ack layer: %+v", info.Stats.Transport)
	}
}

// TestV2InfoReportsDeliveredCounters drives one instance through the
// deployment and asserts /v2/info exposes the ack layer's per-peer
// delivered/inflight accounting: the submitting node must eventually
// see its round broadcast acknowledged by every peer, with nothing
// left in flight.
func TestV2InfoReportsDeliveredCounters(t *testing.T) {
	clients, _, _ := testServiceV2(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	h, err := clients[0].Submit(ctx, protocols.Request{
		Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("delivered-stats"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := clients[0].Wait(ctx, h); err != nil || res.Err != nil {
		t.Fatalf("wait: %v / %v", err, res.Err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var last *api.TransportStats
	for time.Now().Before(deadline) {
		info, err := clients[0].Info(ctx)
		if err != nil {
			t.Fatal(err)
		}
		last = info.Stats.Transport
		allAcked := last != nil && len(last.Peers) == 3
		if allAcked {
			for _, ps := range last.Peers {
				if ps.Delivered < 1 || ps.Inflight != 0 {
					allAcked = false
				}
			}
		}
		if allAcked {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("per-peer delivery never fully acknowledged in /v2/info: %+v", last)
}

func TestV2UnknownSchemeThroughSDK(t *testing.T) {
	clients, _, _ := testServiceV2(t)
	_, err := clients[0].Submit(context.Background(), protocols.Request{
		Scheme: "NOPE", Op: protocols.OpSign, Payload: []byte("x"),
	})
	if api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("want %s, got %v (code %s)", api.CodeSchemeUnknown, err, api.CodeOf(err))
	}
}

func TestV2UnknownOpThroughSDK(t *testing.T) {
	clients, _, _ := testServiceV2(t)
	_, err := clients[0].Submit(context.Background(), protocols.Request{
		Scheme: schemes.BLS04, Op: protocols.Operation(9), Payload: []byte("x"),
	})
	if api.CodeOf(err) != api.CodeOpUnknown {
		t.Fatalf("want %s, got %v (code %s)", api.CodeOpUnknown, err, api.CodeOf(err))
	}
}

// postRaw sends a raw body to a v2 endpoint and decodes the structured
// error envelope.
func postRaw(t *testing.T, url, body string) (int, *api.Error) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 {
		return resp.StatusCode, nil
	}
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("non-2xx response without structured error: %v", err)
	}
	return resp.StatusCode, envelope.Error
}

func TestV2MalformedJSON(t *testing.T) {
	_, _, counters := testServiceV2(t)
	srv := httptest.NewServer(counters[0])
	t.Cleanup(srv.Close)
	status, e := postRaw(t, srv.URL+"/v2/protocol/submit", "{not json")
	if status != http.StatusBadRequest || e == nil || e.Code != api.CodeBadRequest {
		t.Fatalf("status %d error %+v", status, e)
	}
	status, e = postRaw(t, srv.URL+"/v2/scheme/encrypt", "[]")
	if status != http.StatusBadRequest || e == nil || e.Code != api.CodeBadRequest {
		t.Fatalf("status %d error %+v", status, e)
	}
}

func TestV2EmptyBatch(t *testing.T) {
	_, _, counters := testServiceV2(t)
	srv := httptest.NewServer(counters[0])
	t.Cleanup(srv.Close)
	status, e := postRaw(t, srv.URL+"/v2/protocol/submit", `{"requests":[]}`)
	if status != http.StatusBadRequest || e == nil || e.Code != api.CodeBadRequest {
		t.Fatalf("status %d error %+v", status, e)
	}
}

func TestV2EncryptErrors(t *testing.T) {
	clients, _, _ := testServiceV2(t)
	ctx := context.Background()
	// BZ03 is a cipher, but this deployment dealt no BZ03 keys.
	_, err := clients[0].Encrypt(ctx, schemes.BZ03, "", []byte("x"), nil)
	if api.CodeOf(err) != api.CodeSchemeNoKeys {
		t.Fatalf("want %s, got %v", api.CodeSchemeNoKeys, err)
	}
	// BLS04 exists but does not encrypt.
	_, err = clients[0].Encrypt(ctx, schemes.BLS04, "", []byte("x"), nil)
	if api.CodeOf(err) != api.CodeSchemeNotCipher {
		t.Fatalf("want %s, got %v", api.CodeSchemeNotCipher, err)
	}
	// Unknown scheme.
	_, err = clients[0].Encrypt(ctx, "NOPE", "", []byte("x"), nil)
	if api.CodeOf(err) != api.CodeSchemeUnknown {
		t.Fatalf("want %s, got %v", api.CodeSchemeUnknown, err)
	}
}

func TestV2IdempotentDuplicateSubmit(t *testing.T) {
	clients, _, counters := testServiceV2(t)
	srv := httptest.NewServer(counters[0])
	t.Cleanup(srv.Close)
	body := `{"requests":[{"scheme":"CKS05","op":"coin","payload":"ZHVw","session":"dup-1"}]}`

	resp1, err := http.Post(srv.URL+"/v2/protocol/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out1 api.SubmitBatchResponse
	if err := json.NewDecoder(resp1.Body).Decode(&out1); err != nil {
		t.Fatal(err)
	}
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp1.StatusCode)
	}
	if len(out1.Results) != 1 || out1.Results[0].Duplicate || out1.Results[0].InstanceID == "" {
		t.Fatalf("first submit: %+v", out1.Results)
	}

	// Identical re-submission: 200, same handle, flagged duplicate.
	resp2, err := http.Post(srv.URL+"/v2/protocol/submit", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out2 api.SubmitBatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit: status %d", resp2.StatusCode)
	}
	if !out2.Results[0].Duplicate || out2.Results[0].InstanceID != out1.Results[0].InstanceID {
		t.Fatalf("duplicate submit: %+v", out2.Results)
	}

	// The SDK surfaces the same flag, and the duplicate still resolves
	// to the shared instance's result.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req := protocols.Request{
		Scheme: schemes.CKS05, Op: protocols.OpCoin, Payload: []byte("dup"), Session: "dup-1",
	}
	entries, err := clients[0].SubmitDetailed(ctx, []protocols.Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if !entries[0].Duplicate {
		t.Fatalf("SDK re-submission not flagged duplicate: %+v", entries[0])
	}
	res, err := clients[0].Wait(ctx, api.Handle{InstanceID: entries[0].InstanceID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || len(res.Value) == 0 {
		t.Fatalf("duplicate instance result: %+v", res)
	}
}

func TestV2WaitContextDeadline(t *testing.T) {
	cl := partialServiceV2(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// The deployment has one live node of four: no quorum, no result.
	h, err := cl.Submit(ctx, protocols.Request{
		Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("never finishes"),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer waitCancel()
	start := time.Now()
	_, err = cl.Wait(waitCtx, h)
	if err == nil {
		t.Fatal("wait on quorum-less instance succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) && api.CodeOf(err) != api.CodeTimeout {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait did not respect deadline: %v", elapsed)
	}
}

func TestV2PerRequestDeadline(t *testing.T) {
	cl := partialServiceV2(t)
	// The submit context's deadline becomes the per-request deadline on
	// the server (timeout_ms).
	submitCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	h, err := cl.Submit(submitCtx, protocols.Request{
		Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("deadline-bound"),
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	// Waiting with a generous context still resolves at the request's
	// own deadline, as a structured timeout inside the result.
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	res, err := cl.Wait(waitCtx, h)
	if err != nil {
		t.Fatal(err)
	}
	if api.CodeOf(res.Err) != api.CodeTimeout {
		t.Fatalf("want %s inside result, got %+v", api.CodeTimeout, res)
	}
}

// TestV2BatchFewerRoundTrips is the acceptance benchmark: a batch of 32
// requests over HTTP completes with fewer round-trips than 32
// sequential v1 submit+poll cycles.
func TestV2BatchFewerRoundTrips(t *testing.T) {
	_, _, counters := testServiceV2(t)
	srv := httptest.NewServer(counters[0])
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const batchSize = 32

	// v1: one POST per submit, one GET per result.
	v1 := NewClient(srv.URL)
	before := counters[0].n.Load()
	for i := 0; i < batchSize; i++ {
		id, err := v1.Submit(schemes.CKS05, "coin", fmt.Sprintf("v1-%d", i), []byte("rt"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v1.WaitResult(id); err != nil {
			t.Fatal(err)
		}
	}
	v1Trips := counters[0].n.Load() - before

	// v2: the whole batch in one POST, all results over one SSE stream.
	v2 := client.New(srv.URL)
	reqs := make([]protocols.Request, batchSize)
	for i := range reqs {
		reqs[i] = protocols.Request{
			Scheme: schemes.CKS05, Op: protocols.OpCoin,
			Payload: []byte("rt"), Session: fmt.Sprintf("v2-%d", i),
		}
	}
	before = counters[0].n.Load()
	hs, err := v2.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := v2.WaitBatch(ctx, hs)
	if err != nil {
		t.Fatal(err)
	}
	v2Trips := counters[0].n.Load() - before

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch request %d failed: %v", i, res.Err)
		}
		if res.InstanceID != hs[i].InstanceID {
			t.Fatalf("result %d out of order: %s != %s", i, res.InstanceID, hs[i].InstanceID)
		}
		if len(res.Value) == 0 {
			t.Fatalf("batch request %d: empty coin", i)
		}
	}
	if v2Trips >= v1Trips {
		t.Fatalf("batch used %d round-trips, sequential v1 used %d", v2Trips, v1Trips)
	}
	if v2Trips > 4 {
		t.Fatalf("batch of %d took %d round-trips, want a handful", batchSize, v2Trips)
	}
	t.Logf("round-trips: v1 sequential=%d, v2 batch=%d", v1Trips, v2Trips)
	if v2.RoundTrips() != v2Trips {
		t.Fatalf("client round-trip counter %d disagrees with server count %d", v2.RoundTrips(), v2Trips)
	}
}

// TestV2StreamDeliversAsInstancesFinish exercises the SSE path with
// results arriving over a single connection.
func TestV2SSEStream(t *testing.T) {
	clients, _, _ := testServiceV2(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reqs := make([]protocols.Request, 5)
	for i := range reqs {
		reqs[i] = protocols.Request{
			Scheme: schemes.CKS05, Op: protocols.OpCoin,
			Payload: []byte("sse"), Session: fmt.Sprintf("sse-%d", i),
		}
	}
	hs, err := clients[2].SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	results, err := clients[2].WaitBatch(ctx, hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(hs) {
		t.Fatalf("got %d results for %d handles", len(results), len(hs))
	}
	for i, res := range results {
		if res.Err != nil || len(res.Value) == 0 {
			t.Fatalf("stream result %d: %+v", i, res)
		}
	}
}

// TestKeysEndpoints pins the raw HTTP contract of the keychain API:
// GET /v2/keys lists the keychain, POST /v2/keys runs a DKG whose
// instance resolves to the key ID on the ordinary results endpoint,
// the generated key is listed by every node and usable for submission
// under its ID, and the typed key errors carry their HTTP statuses
// (key_unknown 404, key_exists 409).
func TestKeysEndpoints(t *testing.T) {
	clients, nodes, _ := testServiceV2(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	base := clientBase(t, clients[0])

	// GET /v2/keys: one default key per dealt scheme.
	var list api.KeysResponse
	getJSON(t, base+"/v2/keys", &list)
	if len(list.Keys) != 3 {
		t.Fatalf("keychain: %+v", list.Keys)
	}
	for _, k := range list.Keys {
		if k.KeyID != keys.DefaultKeyID || !k.Default || len(k.PublicKey) == 0 {
			t.Fatalf("dealt key listing wrong: %+v", k)
		}
	}

	// POST /v2/keys: 202 with instance handle and key id.
	resp := postJSONRaw(t, base+"/v2/keys", `{"scheme":"CKS05","key_id":"http-key"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("generate status %d", resp.StatusCode)
	}
	var gen api.GenerateKeyResponse
	if err := json.NewDecoder(resp.Body).Decode(&gen); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gen.KeyID != "http-key" || gen.InstanceID == "" {
		t.Fatalf("generate response: %+v", gen)
	}
	// The keygen instance resolves on the ordinary results path with
	// the key ID as its value.
	res, err := clients[0].Wait(ctx, api.Handle{InstanceID: gen.InstanceID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || string(res.Value) != "http-key" {
		t.Fatalf("keygen result: %+v", res)
	}
	// Every node lists the generated key with the same public material.
	var ref []byte
	for i := range clients {
		deadline := time.Now().Add(10 * time.Second)
		for {
			ks, err := clients[i].Keys(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var pub []byte
			for _, k := range ks {
				if k.Scheme == "CKS05" && k.KeyID == "http-key" {
					pub = k.PublicKey
				}
			}
			if pub != nil {
				if i == 0 {
					ref = pub
				} else if string(pub) != string(ref) {
					t.Fatalf("node %d public key differs", i+1)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never listed the generated key", i+1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// The key is usable for submission under its ID, from any node.
	coin, err := api.Execute(ctx, clients[1], protocols.Request{
		Scheme: schemes.CKS05, KeyID: "http-key", Op: protocols.OpCoin, Payload: []byte("http-coin"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(coin) == 0 {
		t.Fatal("empty coin")
	}

	// key_exists carries HTTP 409.
	resp = postJSONRaw(t, base+"/v2/keys", `{"scheme":"CKS05","key_id":"http-key"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate generate status %d", resp.StatusCode)
	}
	var conflictBody api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&conflictBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if conflictBody.Error == nil || conflictBody.Error.Code != api.CodeKeyExists {
		t.Fatalf("conflict body: %+v", conflictBody)
	}

	// key_unknown carries HTTP 404, for submissions and encryption.
	resp = postJSONRaw(t, base+"/v2/protocol/submit",
		`{"requests":[{"scheme":"CKS05","key_id":"no-such","op":"coin","payload":"YQ=="}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with unknown key status %d (batch errors are per-item)", resp.StatusCode)
	}
	var batch api.SubmitBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != 1 || batch.Results[0].Error == nil || batch.Results[0].Error.Code != api.CodeKeyUnknown {
		t.Fatalf("batch entry: %+v", batch.Results)
	}
	resp = postJSONRaw(t, base+"/v2/scheme/encrypt", `{"scheme":"SG02","key_id":"no-such","message":"YQ=="}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("encrypt unknown key status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if _, err := clients[0].Encrypt(ctx, schemes.SG02, "no-such", []byte("x"), nil); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("client encrypt unknown key: %v", err)
	}

	// /v2/info lists the keychain inline.
	var info api.InfoResponse
	getJSON(t, base+"/v2/info", &info)
	if len(info.Keys) != 4 {
		t.Fatalf("info keychain: %+v", info.Keys)
	}
	_ = nodes
}

// TestSingleKeyEndpoint pins the raw HTTP contract of
// GET /v2/keys/{scheme}/{id}: 200 with the key's full record, 404
// key_unknown for a key the node does not hold, 400 scheme_unknown for
// a scheme outside the registry — and the client SDK's Key() speaking
// exactly that endpoint.
func TestSingleKeyEndpoint(t *testing.T) {
	clients, nodes, counters := testServiceV2(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	base := clientBase(t, clients[0])

	var kr api.KeyResponse
	getJSON(t, base+"/v2/keys/SG02/"+keys.DefaultKeyID, &kr)
	want, e := api.KeyInfoFromStore(nodes[0], schemes.SG02, "")
	if e != nil {
		t.Fatal(e)
	}
	if kr.Key.Scheme != want.Scheme || kr.Key.KeyID != want.KeyID || kr.Key.Epoch != want.Epoch ||
		!kr.Key.Default || string(kr.Key.PublicKey) != string(want.PublicKey) {
		t.Fatalf("single-key body %+v, want %+v", kr.Key, want)
	}

	resp, err := http.Get(base + "/v2/keys/SG02/no-such")
	if err != nil {
		t.Fatal(err)
	}
	var eb api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || eb.Error == nil || eb.Error.Code != api.CodeKeyUnknown {
		t.Fatalf("unknown key: status %d body %+v", resp.StatusCode, eb)
	}

	resp, err = http.Get(base + "/v2/keys/NOPE/whatever")
	if err != nil {
		t.Fatal(err)
	}
	eb = api.ErrorResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error == nil || eb.Error.Code != api.CodeSchemeUnknown {
		t.Fatalf("unknown scheme: status %d body %+v", resp.StatusCode, eb)
	}

	// The SDK's Key() resolves with ONE round-trip, not a listing fetch.
	before := counters[0].n.Load()
	got, err := clients[0].Key(ctx, schemes.SG02, "")
	if err != nil {
		t.Fatal(err)
	}
	if trips := counters[0].n.Load() - before; trips != 1 {
		t.Fatalf("client Key() used %d round-trips, want 1", trips)
	}
	if got.KeyID != want.KeyID || string(got.PublicKey) != string(want.PublicKey) {
		t.Fatalf("client Key() %+v, want %+v", got, want)
	}
	if _, err := clients[0].Key(ctx, schemes.SG02, "no-such"); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("client unknown key: %v (code %s)", err, api.CodeOf(err))
	}
}

// clientBase recovers the HTTP base URL a fixture client targets, for
// raw-HTTP assertions on statuses and bodies.
func clientBase(t *testing.T, c *client.Client) string {
	t.Helper()
	return c.BaseURL()
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSONRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
