package service

import (
	"crypto/rand"
	"net/http/httptest"
	"testing"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
)

// testService spins up a full 4-node Θ-network with HTTP front ends.
func testService(t *testing.T) ([]*Client, []*keys.Keystore) {
	t.Helper()
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.BLS04, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, memnet.Options{})
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		engine := orchestration.New(orchestration.Config{
			Keys: nodes[i],
			Net:  hub.Endpoint(i + 1),
		})
		srv := httptest.NewServer(NewServer(engine, nodes[i]))
		clients[i] = NewClient(srv.URL)
		t.Cleanup(srv.Close)
		t.Cleanup(engine.Stop)
	}
	t.Cleanup(hub.Close)
	return clients, nodes
}

func TestInfoEndpoint(t *testing.T) {
	clients, _ := testService(t)
	info, err := clients[0].Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.NodeIndex != 1 || info.N != 4 || info.T != 1 {
		t.Fatalf("unexpected info: %+v", info)
	}
	if len(info.Schemes) != 3 {
		t.Fatalf("schemes: %v", info.Schemes)
	}
}

func TestSignOverHTTP(t *testing.T) {
	clients, nodes := testService(t)
	id, err := clients[1].Submit(schemes.BLS04, "sign", "", []byte("http sig"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := clients[1].WaitResult(id)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := bls04.UnmarshalSignature(res.Value)
	if err != nil {
		t.Fatal(err)
	}
	if err := bls04.Verify(keys.MustPublic[*bls04.PublicKey](nodes[0], schemes.BLS04), []byte("http sig"), sig); err != nil {
		t.Fatal(err)
	}
	// Any node can serve the result of the shared instance.
	res2, err := clients[3].WaitResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(res2.Value) != string(res.Value) {
		t.Fatal("nodes disagree on result")
	}
}

func TestEncryptThenThresholdDecrypt(t *testing.T) {
	clients, _ := testService(t)
	// Scheme API: encrypt at node 3 (local operation).
	ct, err := clients[2].Encrypt(schemes.SG02, []byte("pending tx"), []byte("L"))
	if err != nil {
		t.Fatal(err)
	}
	// Protocol API: decrypt through the Θ-network.
	id, err := clients[0].Submit(schemes.SG02, "decrypt", "", ct)
	if err != nil {
		t.Fatal(err)
	}
	res, err := clients[0].WaitResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "pending tx" {
		t.Fatalf("decrypted %q", res.Value)
	}
}

func TestCoinOverHTTP(t *testing.T) {
	clients, _ := testService(t)
	id, err := clients[0].Submit(schemes.CKS05, "coin", "s1", []byte("beacon-0"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := clients[0].WaitResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Value) != 32 {
		t.Fatalf("coin %d bytes", len(res.Value))
	}
}

func TestBadRequests(t *testing.T) {
	clients, _ := testService(t)
	if _, err := clients[0].Submit("NOPE", "sign", "", []byte("x")); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := clients[0].Submit(schemes.BLS04, "frobnicate", "", []byte("x")); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := clients[0].Encrypt(schemes.BLS04, []byte("x"), nil); err == nil {
		t.Fatal("encrypt under signature scheme accepted")
	}
}
