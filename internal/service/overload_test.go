package service

// End-to-end coverage of the engine's flow control and retention
// semantics through the /v2 HTTP surface and the client SDK: queue
// saturation answers 429/overloaded (never a hang), and results evicted
// after the retention window answer the expired code.

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thetacrypt/api"
	"thetacrypt/client"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// stallNet wedges every Broadcast until released, pinning the engine
// worker so the event queue saturates deterministically.
type stallNet struct {
	release chan struct{}
	in      chan network.Envelope
}

func (s *stallNet) Send(context.Context, int, network.Envelope) error { return nil }
func (s *stallNet) Broadcast(context.Context, network.Envelope) error {
	<-s.release
	return nil
}
func (s *stallNet) Receive() <-chan network.Envelope       { return s.in }
func (s *stallNet) TransportStats() network.TransportStats { return network.TransportStats{} }
func (s *stallNet) Close() error                           { return nil }

func coinReq(session string) protocols.Request {
	return protocols.Request{
		Scheme: schemes.CKS05, Op: protocols.OpCoin,
		Payload: []byte("overload"), Session: session,
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestV2OverloadedEndToEnd saturates a node's engine queue and asserts
// the full path: typed ErrOverloaded in the engine, HTTP 429 with the
// overloaded code on the wire, surfaced as *api.Error by the SDK — all
// fail-fast, no hang.
func TestV2OverloadedEndToEnd(t *testing.T) {
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	sn := &stallNet{release: make(chan struct{}), in: make(chan network.Envelope)}
	engine := orchestration.New(orchestration.Config{
		Keys:     nodes[0],
		Net:      sn,
		QueueLen: 1,
	})
	srv := httptest.NewServer(NewServer(engine, nodes[0]))
	t.Cleanup(srv.Close)
	t.Cleanup(engine.Stop)
	t.Cleanup(func() { close(sn.release) }) // unwedge the worker before Stop

	// Retries disabled: the 429 must surface, not be absorbed.
	cl := client.New(srv.URL, client.WithRetry(0, 0))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := cl.Submit(ctx, coinReq("a")); err != nil { // admitted; worker wedges in the announce
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return engine.Stats().QueueDepth == 0 },
		"worker never picked up the first submission")
	if _, err := cl.Submit(ctx, coinReq("b")); err != nil { // fills the queue
		t.Fatal(err)
	}

	start := time.Now()
	_, err = cl.Submit(ctx, coinReq("c"))
	if api.CodeOf(err) != api.CodeOverloaded {
		t.Fatalf("saturated submit: got %v (code %s), want %s", err, api.CodeOf(err), api.CodeOverloaded)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("overload surfaced after %v, want fail-fast", elapsed)
	}

	// Raw wire check: HTTP 429 with the structured overloaded code.
	status, e := postRaw(t, srv.URL+"/v2/protocol/submit",
		`{"requests":[{"scheme":"CKS05","op":"coin","payload":"eA==","session":"d"}]}`)
	if status != 429 || e == nil || e.Code != api.CodeOverloaded {
		t.Fatalf("raw overloaded submit: status %d error %+v", status, e)
	}

	// The overload shows up in the node's stats.
	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats == nil || info.Stats.Overloaded < 2 || info.Stats.QueueCap != 1 {
		t.Fatalf("info stats after overload: %+v", info.Stats)
	}
}

// TestV2RetryAfterOverload: with the retry policy enabled (the
// default), the SDK absorbs a transient overload once capacity frees up
// and the submission succeeds.
func TestV2RetryAfterOverload(t *testing.T) {
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	sn := &stallNet{release: make(chan struct{}), in: make(chan network.Envelope)}
	engine := orchestration.New(orchestration.Config{
		Keys:     nodes[0],
		Net:      sn,
		QueueLen: 1,
	})
	srv := httptest.NewServer(NewServer(engine, nodes[0]))
	t.Cleanup(srv.Close)
	t.Cleanup(engine.Stop)

	cl := client.New(srv.URL, client.WithRetry(8, 20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := cl.Submit(ctx, coinReq("r-a")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return engine.Stats().QueueDepth == 0 },
		"worker never picked up the first submission")
	if _, err := cl.Submit(ctx, coinReq("r-b")); err != nil {
		t.Fatal(err)
	}
	// Release the wedge shortly after the next submit starts seeing
	// 429s; its backoff retries must then get through.
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(sn.release)
	}()
	if _, err := cl.Submit(ctx, coinReq("r-c")); err != nil {
		t.Fatalf("retry never recovered from transient overload: %v", err)
	}
	if engine.Stats().Overloaded == 0 {
		t.Fatal("test never actually hit the overload path")
	}
}

// TestV2BatchSizeCapped: a batch beyond maxBatchItems is rejected up
// front with bad_request — one request cannot sidestep queue admission
// control by sheer size.
func TestV2BatchSizeCapped(t *testing.T) {
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(4, memnet.Options{})
	t.Cleanup(hub.Close)
	engine := orchestration.New(orchestration.Config{
		Keys: nodes[0],
		Net:  hub.Endpoint(1),
	})
	t.Cleanup(engine.Stop)
	srv := httptest.NewServer(NewServer(engine, nodes[0]))
	t.Cleanup(srv.Close)

	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"scheme":"CKS05","op":"coin","payload":"eA==","session":"s%d"}`, i)
	}
	sb.WriteString(`]}`)
	status, e := postRaw(t, srv.URL+"/v2/protocol/submit", sb.String())
	if status != 400 || e == nil || e.Code != api.CodeBadRequest {
		t.Fatalf("oversized batch: status %d error %+v", status, e)
	}
	if engine.InstanceCount() != 0 {
		t.Fatalf("rejected batch still created %d instances", engine.InstanceCount())
	}
}

// TestV2StaleDeadlineDoesNotPoisonFreshRun: after an instance times
// out and is evicted, re-submitting the request replaces the stale
// expired deadline — the fresh run's polls report pending, not an
// immediate spurious timeout.
func TestV2StaleDeadlineDoesNotPoisonFreshRun(t *testing.T) {
	// One live node of four: no quorum forms, so the instance stalls,
	// its deadline expires, and liveTTL (2s floor) evicts it.
	nodes, err := keys.Deal(rand.Reader, 1, 4, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(4, memnet.Options{})
	t.Cleanup(hub.Close)
	engine := orchestration.New(orchestration.Config{
		Keys:          nodes[0],
		Net:           hub.Endpoint(1),
		RetainTTL:     80 * time.Millisecond,
		SweepInterval: 20 * time.Millisecond,
	})
	t.Cleanup(engine.Stop)
	srv := httptest.NewServer(NewServer(engine, nodes[0]))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// First run with a short per-request deadline.
	submitCtx, submitCancel := context.WithTimeout(ctx, 200*time.Millisecond)
	h, err := cl.Submit(submitCtx, coinReq("stale-deadline"))
	submitCancel()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Wait(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	if api.CodeOf(res.Err) != api.CodeTimeout {
		t.Fatalf("first run: want timeout in result, got %+v", res)
	}
	waitFor(t, 15*time.Second, func() bool { return engine.InstanceCount() == 0 },
		"stalled instance never evicted")

	// Fresh run, submitted without a deadline: polls must show it
	// pending, not replay the first run's expired deadline.
	if _, err := cl.Submit(ctx, coinReq("stale-deadline")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v2/protocol/results?ids=" + h.InstanceID + "&timeout_ms=300")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.ResultsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("results: %+v", out)
	}
	if e := out.Results[0].Error; e != nil && e.Code == api.CodeTimeout {
		t.Fatalf("fresh run poisoned by stale deadline: %+v", out.Results[0])
	}
}

// TestV2ExpiredResultEndToEnd: a result queried after the retention
// window reports the structured expired code through the SDK.
func TestV2ExpiredResultEndToEnd(t *testing.T) {
	const tt, n = 1, 4
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		Schemes: []schemes.ID{schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := memnet.NewHub(n, memnet.Options{})
	engines := make([]*orchestration.Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = orchestration.New(orchestration.Config{
			Keys:          nodes[i],
			Net:           hub.Endpoint(i + 1),
			RetainTTL:     100 * time.Millisecond,
			SweepInterval: 10 * time.Millisecond,
		})
		t.Cleanup(engines[i].Stop)
	}
	t.Cleanup(hub.Close)
	srv := httptest.NewServer(NewServer(engines[0], nodes[0]))
	t.Cleanup(srv.Close)
	cl := client.New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	h, err := cl.Submit(ctx, coinReq("expire"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Wait(ctx, h)
	if err != nil || res.Err != nil {
		t.Fatalf("first wait: %v / %v", err, res.Err)
	}
	waitFor(t, 10*time.Second, func() bool { return engines[0].Stats().Finished == 0 },
		"result never evicted by the retention sweep")

	late, err := cl.Wait(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	if api.CodeOf(late.Err) != api.CodeExpired {
		t.Fatalf("wait after retention window: got %+v, want code %s", late, api.CodeExpired)
	}
}
