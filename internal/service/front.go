package service

// Front serves the /v2 HTTP surface over any api.Service. Where Server
// is bound to one node's engine and keystore, Front is bound only to
// the Service interface, so the same endpoints — and the same client
// SDK — work in front of an embedded cluster or a sharding router. The
// router deployment (cmd/thetacrypt -router) is Front over
// router.Router: a stateless HTTP tier that owns no shares and no
// engine, only a placement map.
//
// Behavioral differences from Server, both inherent to the Service
// seam: submissions cannot report the idempotent-duplicate flag (the
// seam returns handles, not creation/join distinction), so re-accepted
// items answer 202 without duplicate=true; and a re-submission's
// timeout_ms replaces the instance's deadline rather than being ignored
// for duplicates.

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt/api"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// Front is the Service-backed HTTP handler.
type Front struct {
	svc       api.Service
	mux       *http.ServeMux
	deadlines deadlineTable
}

// NewFront wires the /v2 endpoints over svc.
func NewFront(svc api.Service) *Front {
	f := &Front{svc: svc, mux: http.NewServeMux(), deadlines: newDeadlineTable()}
	f.mux.HandleFunc("POST /v2/protocol/submit", f.handleSubmit)
	f.mux.HandleFunc("GET /v2/protocol/results", f.handleResults)
	f.mux.HandleFunc("POST /v2/scheme/encrypt", f.handleEncrypt)
	f.mux.HandleFunc("GET /v2/info", f.handleInfo)
	f.mux.HandleFunc("GET /v2/keys", f.handleKeys)
	f.mux.HandleFunc("GET /v2/keys/{scheme}/{id}", f.handleKey)
	f.mux.HandleFunc("POST /v2/keys", f.handleGenerateKey)
	f.mux.HandleFunc("POST /v2/keys/{id}/reshare", f.handleReshareKey)
	return f
}

// ServeHTTP implements http.Handler.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) { f.mux.ServeHTTP(w, r) }

var _ http.Handler = (*Front)(nil)

// asAPIError surfaces a Service error's structured form; errors that
// carry no code (transport failures to a backing committee, mostly)
// degrade to unavailable rather than internal, since retrying against a
// recovered backend is the right client move.
func asAPIError(err error) *api.Error {
	var e *api.Error
	if errors.As(err, &e) {
		return e
	}
	return api.Errf(api.CodeUnavailable, "%v", err)
}

// handleSubmit mirrors Server.handleSubmitV2 over the Service seam:
// items failing stateless validation fail individually; the valid rest
// go through one SubmitBatch. A batch the service rejects as a whole
// (the router does this when an item names a key no committee holds) is
// degraded to per-item submission, recovering the per-item error model
// — submission is idempotent, so items accepted before the rejection
// are unaffected by the re-submit.
func (f *Front) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.SubmitBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorV2(w, api.Errf(api.CodePayloadTooLarge, "body exceeds %d bytes", maxSubmitBody))
			return
		}
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	if len(body.Requests) == 0 {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "empty batch: need 1..N requests"))
		return
	}
	if len(body.Requests) > maxBatchItems {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "batch of %d exceeds limit %d", len(body.Requests), maxBatchItems))
		return
	}

	entries := make([]api.SubmitEntry, len(body.Requests))
	var reqs []protocols.Request
	var reqIdx []int // position of reqs[i] in entries
	for i, it := range body.Requests {
		req, err := it.Request()
		if err != nil {
			var e *api.Error
			if !errors.As(err, &e) {
				e = api.Errf(api.CodeBadRequest, "%v", err)
			}
			entries[i] = api.SubmitEntry{Error: e}
			continue
		}
		if e := api.ValidateRequest(req); e != nil {
			entries[i] = api.SubmitEntry{Error: e}
			continue
		}
		reqs = append(reqs, req)
		reqIdx = append(reqIdx, i)
	}

	var hs []api.Handle
	if len(reqs) > 0 {
		var err error
		hs, err = f.svc.SubmitBatch(r.Context(), reqs)
		if err != nil {
			hs = make([]api.Handle, len(reqs))
			for i, req := range reqs {
				h, err := f.svc.Submit(r.Context(), req)
				if err != nil {
					entries[reqIdx[i]] = api.SubmitEntry{Error: asAPIError(err)}
					continue
				}
				hs[i] = h
			}
		}
	}
	status := http.StatusOK
	now := time.Now()
	for i, h := range hs {
		if h.InstanceID == "" {
			continue // per-item fallback already recorded the error
		}
		entries[reqIdx[i]] = api.SubmitEntry{InstanceID: h.InstanceID}
		status = http.StatusAccepted
		if ms := body.Requests[reqIdx[i]].TimeoutMS; ms > 0 {
			f.deadlines.set(h.InstanceID, now.Add(time.Duration(ms)*time.Millisecond))
		} else {
			f.deadlines.clear(h.InstanceID)
		}
	}
	writeJSON(w, status, api.SubmitBatchResponse{Results: entries})
}

// handleResults serves the same long-poll/SSE grammar as the Server,
// sourcing completions from the Service's streaming wait instead of
// engine futures.
func (f *Front) handleResults(w http.ResponseWriter, r *http.Request) {
	ids, window, e := parseResultsQuery(r)
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), window)
	defer cancel()

	events := f.watch(ctx, ids)
	if r.URL.Query().Get("stream") == "1" {
		streamResults(ctx, w, len(ids), events)
		return
	}
	longPollResults(ctx, w, ids, events)
}

// watch forwards one final entry per instance — completion from the
// Service or per-request deadline expiry, whichever lands first — to
// the returned channel until ctx ends. The channel is buffered for one
// event per id and each id emits at most once, so neither producer can
// block.
func (f *Front) watch(ctx context.Context, ids []string) <-chan resultEvent {
	events := make(chan resultEvent, len(ids))
	fired := make([]atomic.Bool, len(ids))
	emit := func(i int, entry api.ResultEntry) {
		if fired[i].CompareAndSwap(false, true) {
			events <- resultEvent{idx: i, entry: entry}
		}
	}
	hs := make([]api.Handle, len(ids))
	for i, id := range ids {
		hs[i] = api.Handle{InstanceID: id}
	}
	go func() {
		// A wait-level failure (context closed, every committee down for
		// a scattered id) leaves its ids pending; the long-poll window
		// reports them with done=false and the client re-polls.
		_ = api.WaitEach(ctx, f.svc, hs, func(i int, res api.Result) {
			f.deadlines.clear(ids[i])
			emit(i, resultEntryOf(res))
		})
	}()
	for i, id := range ids {
		if d, ok := f.deadlines.get(id); ok {
			go func(i int, d time.Time) {
				t := time.NewTimer(time.Until(d))
				defer t.Stop()
				select {
				case <-t.C:
					emit(i, deadlineEntryFor(ids[i]))
				case <-ctx.Done():
				}
			}(i, d)
		}
	}
	return events
}

// resultEntryOf converts a Service result to its wire entry. Result.Err
// is already classified by the Service implementation; an unclassified
// error is an implementation gap reported as internal.
func resultEntryOf(res api.Result) api.ResultEntry {
	entry := api.ResultEntry{
		InstanceID: res.InstanceID,
		Done:       true,
		Value:      res.Value,
		LatencyMS:  res.ServerLatency.Milliseconds(),
	}
	if res.Err != nil {
		var e *api.Error
		if !errors.As(res.Err, &e) {
			e = api.Errf(api.CodeInternal, "%v", res.Err)
		}
		entry.Error = e
	}
	return entry
}

func (f *Front) handleEncrypt(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.EncryptRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorV2(w, api.Errf(api.CodePayloadTooLarge, "body exceeds %d bytes", maxSubmitBody))
			return
		}
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	ct, err := f.svc.Encrypt(r.Context(), schemes.ID(body.Scheme), body.KeyID, body.Message, body.Label)
	if err != nil {
		writeErrorV2(w, asAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, api.EncryptResponse{Ciphertext: ct})
}

func (f *Front) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := f.svc.Info(r.Context())
	if err != nil {
		writeErrorV2(w, asAPIError(err))
		return
	}
	present := make([]string, len(info.Schemes))
	for i, id := range info.Schemes {
		present[i] = string(id)
	}
	writeJSON(w, http.StatusOK, api.InfoResponse{
		APIVersion: 2,
		NodeIndex:  info.NodeIndex,
		N:          info.N,
		T:          info.T,
		Schemes:    present,
		Keys:       info.Keys,
		Stats:      info.Stats,
		Committees: info.Committees,
	})
}

func (f *Front) handleKeys(w http.ResponseWriter, r *http.Request) {
	list, err := f.svc.Keys(r.Context())
	if err != nil {
		writeErrorV2(w, asAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, api.KeysResponse{Keys: list})
}

// handleKey resolves one named key (GET /v2/keys/{scheme}/{id}) through
// the Service's direct lookup when it has one, else by filtering the
// listing — same 404 grammar as the engine-backed Server.
func (f *Front) handleKey(w http.ResponseWriter, r *http.Request) {
	id := schemes.ID(r.PathValue("scheme"))
	if _, err := schemes.Lookup(id); err != nil {
		writeErrorV2(w, api.Errf(api.CodeSchemeUnknown, "%v", err))
		return
	}
	info, err := api.FetchKey(r.Context(), f.svc, id, r.PathValue("id"))
	if err != nil {
		writeErrorV2(w, asAPIError(err))
		return
	}
	writeJSON(w, http.StatusOK, api.KeyResponse{Key: info})
}

// handleGenerateKey pre-assigns the key ID through the shared keygen
// seam — so the 202 response can name the key even when the body left
// it blank — then hands the generation to the Service, which places it
// (the router picks the least-loaded committee).
func (f *Front) handleGenerateKey(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.GenerateKeyRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	req, e := api.KeygenRequest(schemes.ID(body.Scheme), api.GenerateKeyOptions{KeyID: body.KeyID, Group: body.Group})
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	h, err := f.svc.GenerateKey(r.Context(), schemes.ID(body.Scheme),
		api.GenerateKeyOptions{KeyID: req.KeyID, Group: body.Group})
	if err != nil {
		writeErrorV2(w, asAPIError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, api.GenerateKeyResponse{
		InstanceID: h.InstanceID,
		KeyID:      req.KeyID,
	})
}

// handleReshareKey forwards the reshare through the Service (the router
// sends it to the key's owning committee). The target epoch in the 202
// response is resolved best-effort from the Service's key listing; the
// authoritative value is the instance's result.
func (f *Front) handleReshareKey(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBody)
	var body api.ReshareKeyRequest
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErrorV2(w, api.Errf(api.CodeBadRequest, "decode body: %v", err))
		return
	}
	scheme, keyID := schemes.ID(body.Scheme), r.PathValue("id")
	h, err := f.svc.ReshareKey(r.Context(), scheme, keyID,
		api.ReshareOptions{NewT: body.NewT, Members: body.Members})
	if err != nil {
		writeErrorV2(w, asAPIError(err))
		return
	}
	resp := api.ReshareKeyResponse{InstanceID: h.InstanceID, KeyID: keyID}
	if keyList, err := f.svc.Keys(r.Context()); err == nil {
		for _, k := range keyList {
			if k.Scheme == string(scheme) && k.KeyID == keyID {
				resp.Epoch = k.Epoch + 1
				break
			}
		}
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// deadlineTable is the bounded per-instance deadline map shared by
// Server and Front: v2 submissions record timeout_ms here and the
// results endpoints enforce it.
type deadlineTable struct {
	mu    *sync.Mutex
	byID  map[string]time.Time
	order *list.List
}

// deadlineRecord is one insertion-ordered entry for pruning.
type deadlineRecord struct {
	id       string
	deadline time.Time
}

func newDeadlineTable() deadlineTable {
	return deadlineTable{mu: &sync.Mutex{}, byID: make(map[string]time.Time), order: list.New()}
}

func (t deadlineTable) set(id string, d time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byID[id] = d
	t.order.PushBack(deadlineRecord{id: id, deadline: d})
	t.pruneLocked(time.Now())
}

func (t deadlineTable) get(id string) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d, ok := t.byID[id]
	return d, ok
}

// clear drops an instance's deadline (observed-finished instances, and
// fresh runs submitted without one). The order-list entry goes stale
// and is dropped by the next prune. Expired deadlines of unfinished
// instances are kept until the grace window passes, so polls keep
// reporting the timeout while the engine still tracks the instance.
func (t deadlineTable) clear(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byID, id)
}

// pruneLocked bounds the table: entries whose deadline passed more than
// deadlineGrace ago are dropped (by then the engine has retired or
// evicted the instance, whose own expired/tombstone semantics take
// over), and the hard cap evicts oldest-first. t.mu is held.
func (t deadlineTable) pruneLocked(now time.Time) {
	for front := t.order.Front(); front != nil; front = t.order.Front() {
		rec := front.Value.(deadlineRecord)
		over := t.order.Len() > maxDeadlines
		if !over && now.Before(rec.deadline.Add(deadlineGrace)) {
			break
		}
		t.order.Remove(front)
		if d, ok := t.byID[rec.id]; ok && d.Equal(rec.deadline) {
			delete(t.byID, rec.id)
		}
	}
}
