package mathutil

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFactorial(t *testing.T) {
	cases := map[int]int64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got.Int64() != want {
			t.Fatalf("%d! = %v, want %d", n, got, want)
		}
	}
}

func TestSafePrimeSmall(t *testing.T) {
	p, q, err := SafePrime(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ProbablyPrime(32) || !q.ProbablyPrime(32) {
		t.Fatal("outputs not prime")
	}
	want := new(big.Int).Add(new(big.Int).Lsh(q, 1), big.NewInt(1))
	if p.Cmp(want) != 0 {
		t.Fatal("p != 2q+1")
	}
	if _, _, err := SafePrime(rand.Reader, 4); err == nil {
		t.Fatal("tiny bit length accepted")
	}
}

func TestNAF(t *testing.T) {
	// Reconstruct the value from its NAF digits and check the
	// non-adjacency property.
	f := func(v uint32) bool {
		k := new(big.Int).SetUint64(uint64(v))
		digits := NAF(k)
		acc := new(big.Int)
		pow := big.NewInt(1)
		for i, d := range digits {
			if d != 0 && i+1 < len(digits) && digits[i+1] != 0 {
				return false // adjacent non-zeros
			}
			acc.Add(acc, new(big.Int).Mul(big.NewInt(int64(d)), pow))
			pow = new(big.Int).Lsh(pow, 1)
		}
		return acc.Cmp(k) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if NAF(big.NewInt(-1)) != nil {
		t.Fatal("negative NAF should be nil")
	}
}

func TestSqrt3Mod4(t *testing.T) {
	p := big.NewInt(23) // 23 ≡ 3 mod 4
	for a := int64(1); a < 23; a++ {
		sq := new(big.Int).Mod(big.NewInt(a*a), p)
		root, ok := Sqrt3Mod4(sq, p)
		if !ok {
			t.Fatalf("square %d reported as non-residue", sq)
		}
		if MulMod(root, root, p).Cmp(sq) != 0 {
			t.Fatalf("sqrt(%v)^2 != %v", sq, sq)
		}
	}
	// 5 is a non-residue mod 23.
	if _, ok := Sqrt3Mod4(big.NewInt(5), p); ok {
		t.Fatal("non-residue accepted")
	}
}

func TestExpModNegative(t *testing.T) {
	m := big.NewInt(97)
	a := big.NewInt(5)
	inv := ExpMod(a, big.NewInt(-1), m)
	if MulMod(a, inv, m).Int64() != 1 {
		t.Fatal("a * a^-1 != 1")
	}
	// Non-invertible base with negative exponent yields 0 by contract.
	if ExpMod(big.NewInt(0), big.NewInt(-1), m).Sign() != 0 {
		t.Fatal("contract for non-invertible base violated")
	}
}

func TestInvMod(t *testing.T) {
	m := big.NewInt(10)
	if _, err := InvMod(big.NewInt(4), m); err == nil {
		t.Fatal("gcd(4,10)=2 has no inverse")
	}
	inv, err := InvMod(big.NewInt(3), m)
	if err != nil {
		t.Fatal(err)
	}
	if MulMod(big.NewInt(3), inv, m).Int64() != 1 {
		t.Fatal("3 * inv(3) != 1 mod 10")
	}
}

func TestRandBounds(t *testing.T) {
	max := big.NewInt(100)
	for i := 0; i < 50; i++ {
		v, err := RandInt(rand.Reader, max)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() < 0 || v.Cmp(max) >= 0 {
			t.Fatalf("RandInt out of range: %v", v)
		}
		nz, err := RandNonZero(rand.Reader, max)
		if err != nil {
			t.Fatal(err)
		}
		if nz.Sign() == 0 {
			t.Fatal("RandNonZero returned zero")
		}
	}
	if _, err := RandInt(rand.Reader, big.NewInt(0)); err == nil {
		t.Fatal("zero bound accepted")
	}
}

func TestEqualConstTime(t *testing.T) {
	a := big.NewInt(123456)
	b := big.NewInt(123456)
	c := big.NewInt(123457)
	if !EqualConstTime(a, b) || EqualConstTime(a, c) {
		t.Fatal("EqualConstTime wrong")
	}
}
