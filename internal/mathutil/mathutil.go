// Package mathutil provides shared arbitrary-precision arithmetic helpers
// used by the group, pairing, secret-sharing, and RSA substrates.
//
// All helpers operate on math/big values and never retain references to
// their arguments.
package mathutil

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	// ErrNoInverse is returned when a modular inverse does not exist.
	ErrNoInverse = errors.New("mathutil: no modular inverse")

	zero = big.NewInt(0)
	one  = big.NewInt(1)
	two  = big.NewInt(2)
)

// RandInt returns a uniformly random integer in [0, max).
func RandInt(r io.Reader, max *big.Int) (*big.Int, error) {
	if max.Sign() <= 0 {
		return nil, fmt.Errorf("mathutil: non-positive bound %v", max)
	}
	v, err := rand.Int(r, max)
	if err != nil {
		return nil, fmt.Errorf("random int: %w", err)
	}
	return v, nil
}

// RandNonZero returns a uniformly random integer in [1, max).
func RandNonZero(r io.Reader, max *big.Int) (*big.Int, error) {
	if max.Cmp(two) < 0 {
		return nil, fmt.Errorf("mathutil: bound %v too small", max)
	}
	for {
		v, err := RandInt(r, max)
		if err != nil {
			return nil, err
		}
		if v.Sign() != 0 {
			return v, nil
		}
	}
}

// Mod returns a mod m normalized into [0, m).
func Mod(a, m *big.Int) *big.Int {
	return new(big.Int).Mod(a, m)
}

// AddMod returns (a + b) mod m.
func AddMod(a, b, m *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Add(a, b), m)
}

// SubMod returns (a - b) mod m, normalized into [0, m).
func SubMod(a, b, m *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Sub(a, b), m)
}

// MulMod returns (a * b) mod m.
func MulMod(a, b, m *big.Int) *big.Int {
	return new(big.Int).Mod(new(big.Int).Mul(a, b), m)
}

// ExpMod returns a^e mod m. Negative exponents invert a first.
func ExpMod(a, e, m *big.Int) *big.Int {
	if e.Sign() < 0 {
		inv := new(big.Int).ModInverse(a, m)
		if inv == nil {
			// Caller contract requires a invertible for negative exponents;
			// surface a deterministic zero rather than a nil deref downstream.
			return new(big.Int)
		}
		return new(big.Int).Exp(inv, new(big.Int).Neg(e), m)
	}
	return new(big.Int).Exp(a, e, m)
}

// InvMod returns the modular inverse of a mod m.
func InvMod(a, m *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(a, m)
	if inv == nil {
		return nil, ErrNoInverse
	}
	return inv, nil
}

// Factorial returns n! as a big integer.
func Factorial(n int) *big.Int {
	f := new(big.Int).Set(one)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// SafePrime generates a safe prime p = 2q + 1 with the given bit length,
// returning (p, q). It retries candidate Sophie Germain primes until both
// q and 2q+1 pass probabilistic primality testing.
func SafePrime(r io.Reader, bits int) (p, q *big.Int, err error) {
	if bits < 16 {
		return nil, nil, fmt.Errorf("mathutil: safe prime bit length %d too small", bits)
	}
	for {
		q, err = rand.Prime(r, bits-1)
		if err != nil {
			return nil, nil, fmt.Errorf("generate prime: %w", err)
		}
		p = new(big.Int).Lsh(q, 1)
		p.Add(p, one)
		if p.ProbablyPrime(32) {
			return p, q, nil
		}
	}
}

// Sqrt3Mod4 computes a square root of a modulo a prime p with p ≡ 3 (mod 4)
// using the exponent (p+1)/4. It reports ok=false when a is not a quadratic
// residue.
func Sqrt3Mod4(a, p *big.Int) (root *big.Int, ok bool) {
	e := new(big.Int).Add(p, one)
	e.Rsh(e, 2)
	root = new(big.Int).Exp(a, e, p)
	check := MulMod(root, root, p)
	return root, check.Cmp(Mod(a, p)) == 0
}

// Jacobi wraps big.Jacobi with normalization.
func Jacobi(a, p *big.Int) int {
	return big.Jacobi(new(big.Int).Mod(a, p), p)
}

// NAF returns the non-adjacent form of a non-negative integer as digits in
// {-1, 0, 1}, least-significant first.
func NAF(k *big.Int) []int8 {
	if k.Sign() < 0 {
		return nil
	}
	n := new(big.Int).Set(k)
	var digits []int8
	four := big.NewInt(4)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			mod4 := new(big.Int).Mod(n, four).Int64()
			var d int8
			if mod4 == 1 {
				d = 1
			} else {
				d = -1
			}
			digits = append(digits, d)
			n.Sub(n, big.NewInt(int64(d)))
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

// Clone returns a defensive copy of a big integer, mapping nil to nil.
func Clone(a *big.Int) *big.Int {
	if a == nil {
		return nil
	}
	return new(big.Int).Set(a)
}

// EqualConstTime reports whether a == b without early exit on the byte
// representation. Both values must be non-negative.
func EqualConstTime(a, b *big.Int) bool {
	ab, bb := a.Bytes(), b.Bytes()
	if len(ab) != len(bb) {
		return a.Cmp(b) == 0
	}
	var v byte
	for i := range ab {
		v |= ab[i] ^ bb[i]
	}
	return v == 0
}
