package tob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
)

func newTOBClusterOn(t *testing.T, hub *memnet.Hub, n, leader int) []*Sequencer {
	t.Helper()
	seqs := make([]*Sequencer, n)
	for i := 1; i <= n; i++ {
		s, err := New(hub.Endpoint(i), i, leader)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i-1] = s
	}
	t.Cleanup(func() {
		for _, s := range seqs {
			_ = s.Close()
		}
	})
	return seqs
}

func newTOBCluster(t *testing.T, n, leader int) []*Sequencer {
	t.Helper()
	hub := memnet.NewHub(n, memnet.Options{Latency: memnet.Uniform(100 * time.Microsecond), JitterFrac: 0.5, Seed: 7})
	return newTOBClusterOn(t, hub, n, leader)
}

func collect(t *testing.T, s *Sequencer, count int) []string {
	t.Helper()
	out := make([]string, 0, count)
	timeout := time.After(10 * time.Second)
	for len(out) < count {
		select {
		case env := <-s.Delivered():
			out = append(out, string(env.Payload))
		case <-timeout:
			t.Fatalf("timed out after %d/%d deliveries", len(out), count)
		}
	}
	return out
}

func TestTotalOrder(t *testing.T) {
	const n, msgs = 4, 20
	seqs := newTOBCluster(t, n, 1)

	// Every node submits concurrently; all nodes must deliver the same
	// sequence.
	for i, s := range seqs {
		s := s
		i := i
		go func() {
			for m := 0; m < msgs; m++ {
				env := network.Envelope{
					Instance: "bcast",
					Payload:  []byte(fmt.Sprintf("n%d-m%d", i+1, m)),
				}
				if err := s.Submit(context.Background(), env); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	total := n * msgs
	sequences := make([][]string, n)
	for i, s := range seqs {
		sequences[i] = collect(t, s, total)
	}
	for i := 1; i < n; i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("node %d delivered %q at position %d, node 1 delivered %q",
					i+1, sequences[i][j], j, sequences[0][j])
			}
		}
	}
}

func TestLeaderSubmitsToo(t *testing.T) {
	seqs := newTOBCluster(t, 3, 2)
	if err := seqs[1].Submit(context.Background(), network.Envelope{Payload: []byte("from leader")}); err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		got := collect(t, s, 1)
		if got[0] != "from leader" {
			t.Fatalf("delivered %q", got[0])
		}
	}
}

func TestSenderOrderPreservedThroughSequencer(t *testing.T) {
	// A single submitter's messages must be delivered in submission
	// order (FIFO through the sequencer's per-link ordering).
	seqs := newTOBCluster(t, 3, 1)
	const msgs = 10
	for m := 0; m < msgs; m++ {
		if err := seqs[2].Submit(context.Background(), network.Envelope{
			Payload: []byte(fmt.Sprintf("m%02d", m)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, seqs[0], msgs)
	for m := 0; m < msgs; m++ {
		want := fmt.Sprintf("m%02d", m)
		if got[m] != want {
			t.Fatalf("position %d: got %q, want %q (FIFO violated)", m, got[m], want)
		}
	}
}

// TestCloseDuringLeaderSubmit races leader-side submissions (which
// deliver on the caller's goroutine) against Close. Before the
// delivery guard this panicked with "send on closed channel" whenever
// Close won the race while a submit was parked on the full out
// channel; the test drives that window repeatedly and must stay clean
// under -race.
func TestCloseDuringLeaderSubmit(t *testing.T) {
	const iterations = 150
	// Heavy oversubscription widens the racy window: a submitter must
	// be preempted between its closed-check and its channel send, and
	// stay descheduled until Close finishes.
	const submitters = 128
	for i := 0; i < iterations; i++ {
		hub := memnet.NewHub(1, memnet.Options{})
		s, err := New(hub.Endpoint(1), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		// A drainer keeps out unsaturated, so submitters are actively
		// sending — not parked — when Close lands.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range s.Delivered() {
			}
		}()
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := s.Submit(context.Background(), network.Envelope{Payload: []byte("race")})
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("submit: %v", err)
						}
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(i%5) * 200 * time.Microsecond)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if err := s.Submit(context.Background(), network.Envelope{Payload: []byte("late")}); !errors.Is(err, ErrClosed) {
			t.Fatalf("submit after close: got %v, want ErrClosed", err)
		}
		hub.Close()
	}
}

// lossyStats is a network.P2P stub whose TransportStats reports a lossy
// queue policy without the ack layer — the configuration tob.New must
// refuse.
type lossyStats struct {
	network.P2P
	policy network.QueuePolicy
}

func (l lossyStats) TransportStats() network.TransportStats {
	return network.TransportStats{Policy: l.policy, Reliable: false}
}

func TestNewRejectsLossyUnacknowledgedTransport(t *testing.T) {
	hub := memnet.NewHub(1, memnet.Options{})
	defer hub.Close()
	for _, policy := range []network.QueuePolicy{network.PolicyDropOldest, network.PolicyFailFast} {
		_, err := New(lossyStats{P2P: hub.Endpoint(1), policy: policy}, 1, 1)
		if !errors.Is(err, ErrLossyTransport) {
			t.Fatalf("policy %v accepted: %v", policy, err)
		}
	}
	// The block policy is lossless even without acks.
	s, err := New(lossyStats{P2P: hub.Endpoint(1), policy: network.PolicyBlock}, 1, 1)
	if err != nil {
		t.Fatalf("block policy rejected: %v", err)
	}
	_ = s.Close()
	// A reliable transport makes the lossy policies acceptable: the ack
	// layer resends what the queue drops.
	lossyHub := memnet.NewHub(1, memnet.Options{Policy: network.PolicyDropOldest})
	defer lossyHub.Close()
	s2, err := New(lossyHub.Endpoint(1), 1, 1)
	if err != nil {
		t.Fatalf("lossy policy on a reliable transport rejected: %v", err)
	}
	_ = s2.Close()
}

func TestSubmitFailsFastWhenLeaderDown(t *testing.T) {
	hub := memnet.NewHub(3, memnet.Options{})
	seqs := newTOBClusterOn(t, hub, 3, 1)
	defer hub.Close()

	// Healthy: a follower submission is delivered everywhere.
	if err := seqs[2].Submit(context.Background(), network.Envelope{Payload: []byte("pre")}); err != nil {
		t.Fatal(err)
	}
	collect(t, seqs[1], 1)

	hub.Crash(1)
	time.Sleep(3 * leaderProbeInterval) // let the cached health verdict expire
	err := seqs[2].Submit(context.Background(), network.Envelope{Payload: []byte("lost")})
	if !errors.Is(err, ErrLeaderDown) {
		t.Fatalf("submit with a dead leader returned %v, want ErrLeaderDown", err)
	}
	// The leader itself orders locally and is unaffected by its own
	// link state; followers recover once the leader is back.
	hub.Restart(1)
	time.Sleep(3 * leaderProbeInterval) // same: outlive the cached verdict
	if err := seqs[2].Submit(context.Background(), network.Envelope{Payload: []byte("post")}); err != nil {
		t.Fatalf("submit after leader restart: %v", err)
	}
	got := collect(t, seqs[1], 1)
	if got[0] != "post" {
		t.Fatalf("delivered %q after restart, want post", got[0])
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(1, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := Validate(0, 1, 4); err == nil {
		t.Fatal("self=0 accepted")
	}
	if err := Validate(1, 5, 4); err == nil {
		t.Fatal("leader out of range accepted")
	}
}
