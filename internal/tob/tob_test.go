package tob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"thetacrypt/internal/network"
	"thetacrypt/internal/network/memnet"
)

func newTOBCluster(t *testing.T, n, leader int) []*Sequencer {
	t.Helper()
	hub := memnet.NewHub(n, memnet.Options{Latency: memnet.Uniform(100 * time.Microsecond), JitterFrac: 0.5, Seed: 7})
	seqs := make([]*Sequencer, n)
	for i := 1; i <= n; i++ {
		seqs[i-1] = New(hub.Endpoint(i), i, leader)
	}
	t.Cleanup(func() {
		for _, s := range seqs {
			_ = s.Close()
		}
	})
	return seqs
}

func collect(t *testing.T, s *Sequencer, count int) []string {
	t.Helper()
	out := make([]string, 0, count)
	timeout := time.After(10 * time.Second)
	for len(out) < count {
		select {
		case env := <-s.Delivered():
			out = append(out, string(env.Payload))
		case <-timeout:
			t.Fatalf("timed out after %d/%d deliveries", len(out), count)
		}
	}
	return out
}

func TestTotalOrder(t *testing.T) {
	const n, msgs = 4, 20
	seqs := newTOBCluster(t, n, 1)

	// Every node submits concurrently; all nodes must deliver the same
	// sequence.
	for i, s := range seqs {
		s := s
		i := i
		go func() {
			for m := 0; m < msgs; m++ {
				env := network.Envelope{
					Instance: "bcast",
					Payload:  []byte(fmt.Sprintf("n%d-m%d", i+1, m)),
				}
				if err := s.Submit(context.Background(), env); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	total := n * msgs
	sequences := make([][]string, n)
	for i, s := range seqs {
		sequences[i] = collect(t, s, total)
	}
	for i := 1; i < n; i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("node %d delivered %q at position %d, node 1 delivered %q",
					i+1, sequences[i][j], j, sequences[0][j])
			}
		}
	}
}

func TestLeaderSubmitsToo(t *testing.T) {
	seqs := newTOBCluster(t, 3, 2)
	if err := seqs[1].Submit(context.Background(), network.Envelope{Payload: []byte("from leader")}); err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		got := collect(t, s, 1)
		if got[0] != "from leader" {
			t.Fatalf("delivered %q", got[0])
		}
	}
}

func TestSenderOrderPreservedThroughSequencer(t *testing.T) {
	// A single submitter's messages must be delivered in submission
	// order (FIFO through the sequencer's per-link ordering).
	seqs := newTOBCluster(t, 3, 1)
	const msgs = 10
	for m := 0; m < msgs; m++ {
		if err := seqs[2].Submit(context.Background(), network.Envelope{
			Payload: []byte(fmt.Sprintf("m%02d", m)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, seqs[0], msgs)
	for m := 0; m < msgs; m++ {
		want := fmt.Sprintf("m%02d", m)
		if got[m] != want {
			t.Fatalf("position %d: got %q, want %q (FIFO violated)", m, got[m], want)
		}
	}
}

// TestCloseDuringLeaderSubmit races leader-side submissions (which
// deliver on the caller's goroutine) against Close. Before the
// delivery guard this panicked with "send on closed channel" whenever
// Close won the race while a submit was parked on the full out
// channel; the test drives that window repeatedly and must stay clean
// under -race.
func TestCloseDuringLeaderSubmit(t *testing.T) {
	const iterations = 150
	// Heavy oversubscription widens the racy window: a submitter must
	// be preempted between its closed-check and its channel send, and
	// stay descheduled until Close finishes.
	const submitters = 128
	for i := 0; i < iterations; i++ {
		hub := memnet.NewHub(1, memnet.Options{})
		s := New(hub.Endpoint(1), 1, 1)
		var wg sync.WaitGroup
		// A drainer keeps out unsaturated, so submitters are actively
		// sending — not parked — when Close lands.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range s.Delivered() {
			}
		}()
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := s.Submit(context.Background(), network.Envelope{Payload: []byte("race")})
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("submit: %v", err)
						}
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(i%5) * 200 * time.Microsecond)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if err := s.Submit(context.Background(), network.Envelope{Payload: []byte("late")}); !errors.Is(err, ErrClosed) {
			t.Fatalf("submit after close: got %v, want ErrClosed", err)
		}
		hub.Close()
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(1, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := Validate(0, 1, 4); err == nil {
		t.Fatal("self=0 accepted")
	}
	if err := Validate(1, 5, 4); err == nil {
		t.Fatal("leader out of range accepted")
	}
}
