// Package tob implements a sequencer-based total-order broadcast channel
// on top of the P2P layer. The paper treats TOB as a black box provided
// by the hosting platform (typically a blockchain); this implementation
// provides the same interface — every correct node delivers the same
// sequence of messages — with a designated sequencer assigning sequence
// numbers. Fault tolerance of the sequencer itself is out of scope, as
// it is for the paper's host-platform assumption.
package tob

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"thetacrypt/internal/network"
)

// ErrClosed is returned by Submit after the endpoint was closed.
var ErrClosed = errors.New("tob: sequencer closed")

// ErrLossyTransport is returned by New when the transport's queue
// policy can drop frames and the transport has no ack layer to resend
// them: the sequencer protocol has no retransmission of its own, so a
// single evicted ORDER frame would leave a permanent gap in the
// sequence and wedge every follower's delivery.
var ErrLossyTransport = errors.New("tob: transport queue policy is lossy and unacknowledged; the sequencer requires lossless delivery")

// ErrLeaderDown is returned by Submit when the transport reports the
// sequencer leader's link down: queueing into a dead link would only
// grow the backlog, so callers fail fast and decide themselves whether
// to retry, park, or escalate. The leader link's health is visible to
// operators in TransportStats (and through /v2/info on a service node).
var ErrLeaderDown = errors.New("tob: sequencer leader is down")

// Envelope kinds used on the underlying P2P channel. Values are disjoint
// from the orchestration kinds so a misrouted message is detectable.
const (
	kindSubmit network.Kind = 100 + iota
	kindOrder
)

// Sequencer is one node's endpoint of the TOB channel. It must run on a
// dedicated P2P transport (not shared with the orchestration traffic)
// that either uses the lossless network.PolicyBlock (the default) or
// runs the ack layer (TransportStats reports Reliable, as tcpnet and
// memnet do): the sequencer protocol has no retransmission of its own,
// so without one of the two, a lossy queue policy evicting one ORDER
// frame would leave a permanent gap in the sequence and wedge every
// follower's delivery. New enforces this with ErrLossyTransport. Note
// that even on a reliable transport, drop-oldest can definitively lose
// frames once the in-flight window itself overflows; size AckWindow
// for the expected outage, or keep the block policy.
type Sequencer struct {
	p2p    network.P2P
	self   int
	leader int

	mu      sync.Mutex
	nextSeq int // leader: next sequence number to assign
	nextDel int // next sequence number to deliver
	pending map[int]network.Envelope
	closed  bool
	// lastProbe/leaderErr cache the leader-health verdict between
	// TransportStats samples: a full snapshot locks every peer link, so
	// the Submit hot path reuses the last verdict for a probe interval.
	lastProbe time.Time
	leaderErr error
	// delivering tracks in-flight sends on out. A leader-side Submit
	// runs order→enqueue on the caller's goroutine, so Close must wait
	// for those sends to drain before it may close(out); entries are
	// added under mu while closed is still false, which makes the
	// wait race free.
	delivering sync.WaitGroup

	out  chan network.Envelope
	stop chan struct{}
	done chan struct{}
	// sendCtx bounds the sequencer's own sends (ORDER broadcasts run on
	// the ordering path, not a caller's context); canceled by Close so a
	// blocked enqueue cannot outlive the endpoint.
	sendCtx    context.Context
	sendCancel context.CancelFunc
}

var _ network.TOB = (*Sequencer)(nil)

// New creates a TOB endpoint for node self (1-indexed) with the given
// sequencer (leader) index. It validates the transport's delivery
// guarantees: a lossy queue policy (drop-oldest, fail-fast) on a
// transport without the ack layer is rejected with ErrLossyTransport.
func New(p2p network.P2P, self, leader int) (*Sequencer, error) {
	if ts := p2p.TransportStats(); !ts.Reliable && ts.Policy != network.PolicyBlock {
		return nil, fmt.Errorf("%w (policy %v)", ErrLossyTransport, ts.Policy)
	}
	sendCtx, sendCancel := context.WithCancel(context.Background())
	s := &Sequencer{
		p2p:        p2p,
		self:       self,
		leader:     leader,
		nextSeq:    1,
		nextDel:    1,
		pending:    make(map[int]network.Envelope),
		out:        make(chan network.Envelope, 1024),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		sendCtx:    sendCtx,
		sendCancel: sendCancel,
	}
	go s.run()
	return s, nil
}

// Submit hands an envelope to the ordering service. After Close it
// fails with ErrClosed; a submission racing Close may be silently
// dropped (as it would be in flight on a real network). When the
// transport reports the leader's link down (dial or write failures
// observed), Submit fails fast with ErrLeaderDown instead of queueing
// into the dead link.
func (s *Sequencer) Submit(ctx context.Context, env network.Envelope) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	env.From = s.self
	if s.self == s.leader {
		s.order(env)
		return nil
	}
	if err := s.leaderDown(); err != nil {
		return err
	}
	wrapped := network.Envelope{
		From:     s.self,
		Instance: env.Instance,
		Kind:     kindSubmit,
		Payload:  env.Marshal(),
	}
	return s.p2p.Send(ctx, s.leader, wrapped)
}

// leaderProbeInterval paces how often Submit samples TransportStats
// for the leader link's health.
const leaderProbeInterval = 10 * time.Millisecond

// leaderDown returns ErrLeaderDown while the transport reports the
// leader link down with observed failures, sampling the (per-peer
// lock-sweeping) TransportStats snapshot at most once per probe
// interval and reusing the verdict in between.
func (s *Sequencer) leaderDown() error {
	s.mu.Lock()
	if time.Since(s.lastProbe) < leaderProbeInterval {
		err := s.leaderErr
		s.mu.Unlock()
		return err
	}
	s.lastProbe = time.Now()
	s.mu.Unlock()
	var verdict error
	// ConsecutiveFailures distinguishes an observed outage from the
	// initial not-yet-dialed state, which is also reported Down.
	if ps, ok := s.p2p.TransportStats().Peer(s.leader); ok &&
		ps.State == network.PeerDown && ps.ConsecutiveFailures > 0 {
		verdict = fmt.Errorf("%w: peer %d (%s)", ErrLeaderDown, s.leader, ps.LastError)
	}
	s.mu.Lock()
	s.leaderErr = verdict
	s.mu.Unlock()
	return verdict
}

// Delivered returns the totally ordered stream.
func (s *Sequencer) Delivered() <-chan network.Envelope { return s.out }

// Close stops the endpoint.
func (s *Sequencer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.sendCancel()
	close(s.stop)
	<-s.done
	// Closing stop unblocks any delivery stuck on a full out channel;
	// wait for those in-flight sends before closing the channel, or a
	// leader-side Submit racing Close would panic on send-on-closed.
	s.delivering.Wait()
	close(s.out)
	return s.p2p.Close()
}

// order assigns the next sequence number and broadcasts the ORDER
// message (leader only).
func (s *Sequencer) order(env network.Envelope) {
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()
	ordered := network.Envelope{
		From:     s.leader,
		Instance: env.Instance,
		Kind:     kindOrder,
		Round:    seq,
		Payload:  env.Marshal(),
	}
	// Deliver locally and broadcast to the others. The transport
	// enqueues in O(1); sendCtx only bounds a block-policy queue that is
	// full, so a backlogged peer cannot wedge the ordering path past
	// Close.
	s.enqueue(seq, env)
	_ = s.p2p.Broadcast(s.sendCtx, ordered)
}

// enqueue buffers an ordered message and flushes the in-order prefix.
func (s *Sequencer) enqueue(seq int, env network.Envelope) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.pending[seq] = env
	var ready []network.Envelope
	for {
		next, ok := s.pending[s.nextDel]
		if !ok {
			break
		}
		delete(s.pending, s.nextDel)
		s.nextDel++
		ready = append(ready, next)
	}
	if len(ready) > 0 {
		s.delivering.Add(1) // registered before mu is released: Close cannot have set closed yet
	}
	s.mu.Unlock()
	if len(ready) == 0 {
		return
	}
	defer s.delivering.Done()
	for _, e := range ready {
		select {
		case s.out <- e:
		case <-s.stop:
			return
		}
	}
}

func (s *Sequencer) run() {
	defer close(s.done)
	for {
		select {
		case env, ok := <-s.p2p.Receive():
			if !ok {
				return
			}
			switch env.Kind {
			case kindSubmit:
				if s.self != s.leader {
					continue // not ours to order
				}
				inner, err := network.UnmarshalEnvelope(env.Payload)
				if err != nil {
					continue
				}
				s.order(inner)
			case kindOrder:
				if env.From != s.leader {
					continue // only the sequencer may order
				}
				inner, err := network.UnmarshalEnvelope(env.Payload)
				if err != nil {
					continue
				}
				s.enqueue(env.Round, inner)
			}
		case <-s.stop:
			return
		}
	}
}

// Validate reports configuration errors early.
func Validate(self, leader, n int) error {
	if self < 1 || self > n || leader < 1 || leader > n {
		return fmt.Errorf("tob: invalid self=%d leader=%d n=%d", self, leader, n)
	}
	return nil
}
