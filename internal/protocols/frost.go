package protocols

import (
	"fmt"
	"io"

	"thetacrypt/internal/schemes/frost"
)

// frostProtocol is the two-round FROST (KG20) signing protocol behind
// the TRI: round 1 exchanges nonce commitments among the a-priori fixed
// signer group (the lowest t+1 indices, per the paper's fixed signing
// group), round 2 exchanges signature shares. With precomputed and
// pre-exchanged commitments the protocol starts directly in round 2,
// which is FROST's single-round optimization.
//
// FROST is not robust: the protocol waits for the contributions of all
// signers in the group, and an invalid share aborts the instance at
// finalization while identifying the culprit.
type frostProtocol struct {
	rand io.Reader
	pk   *frost.PublicKey
	ks   frost.KeyShare
	msg  []byte

	signers []int // the fixed signer group, ascending
	inGroup bool

	round       int
	nonce       *frost.Nonce
	commitments map[int]*frost.NonceCommitment
	pending     map[int][]byte // round-2 payloads awaiting verification
	shares      map[int]*frost.SignatureShare
	finalized   bool
}

// NewFrost creates a FROST signing instance for the key share ks under
// the group public key pk. If nonce and preComms are non-nil (a
// precomputed batch entry plus the pre-exchanged commitments of the
// whole signer group), round 1 is skipped.
func NewFrost(rand io.Reader, pk *frost.PublicKey, ks frost.KeyShare, msg []byte, nonce *frost.Nonce, preComms []*frost.NonceCommitment) Protocol {
	signers := make([]int, pk.T+1)
	for i := range signers {
		signers[i] = i + 1
	}
	p := &frostProtocol{
		rand: rand, pk: pk, ks: ks, msg: msg,
		signers:     signers,
		inGroup:     ks.Index <= pk.T+1,
		round:       1,
		commitments: make(map[int]*frost.NonceCommitment, pk.T+1),
		pending:     make(map[int][]byte),
		shares:      make(map[int]*frost.SignatureShare, pk.T+1),
	}
	if nonce != nil && preComms != nil {
		p.nonce = nonce
		for _, c := range preComms {
			p.commitments[c.Index] = c
		}
		p.round = 2
	}
	return p
}

func (p *frostProtocol) commitmentSetComplete() bool {
	for _, idx := range p.signers {
		if _, ok := p.commitments[idx]; !ok {
			return false
		}
	}
	return true
}

func (p *frostProtocol) commitmentList() []*frost.NonceCommitment {
	out := make([]*frost.NonceCommitment, 0, len(p.signers))
	for _, idx := range p.signers {
		out = append(out, p.commitments[idx])
	}
	return out
}

func (p *frostProtocol) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	switch p.round {
	case 1:
		p.round = 0 // wait for commitments; IsReadyForNextRound advances
		if !p.inGroup {
			return nil, nil
		}
		nonce, comm, err := frost.GenerateNonce(p.rand, p.pk.Group, p.ks.Index)
		if err != nil {
			return nil, fmt.Errorf("frost round 1: %w", err)
		}
		p.nonce = nonce
		p.commitments[comm.Index] = comm
		return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: comm.Marshal()}, nil
	case 2:
		p.round = 0
		if !p.inGroup {
			return nil, nil
		}
		ss, err := frost.Sign(p.pk, p.ks, p.nonce, p.msg, p.commitmentList())
		if err != nil {
			return nil, fmt.Errorf("frost round 2: %w", err)
		}
		p.shares[ss.Index] = ss
		return &RoundOutput{Round: 2, Transport: TransportP2P, Payload: ss.Marshal()}, nil
	default:
		return nil, nil
	}
}

func (p *frostProtocol) Update(msg ProtocolMessage) error {
	if p.finalized {
		return nil
	}
	switch msg.Round {
	case 1:
		comm, err := frost.UnmarshalNonceCommitment(p.pk.Group, msg.Payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrShareRejected, err)
		}
		if comm.Index != msg.Sender {
			return fmt.Errorf("%w: commitment index %d from sender %d", ErrShareRejected, comm.Index, msg.Sender)
		}
		if _, dup := p.commitments[comm.Index]; dup {
			return nil // idempotent redelivery
		}
		p.commitments[comm.Index] = comm
		p.drainPending()
		return nil
	case 2:
		if !p.commitmentSetComplete() {
			// Shares can arrive before the last commitment on slow
			// links; verification is deferred until the set is complete.
			p.pending[msg.Sender] = msg.Payload
			return nil
		}
		return p.acceptShare(msg.Sender, msg.Payload)
	default:
		return fmt.Errorf("%w: unknown round %d", ErrShareRejected, msg.Round)
	}
}

func (p *frostProtocol) drainPending() {
	if !p.commitmentSetComplete() {
		return
	}
	for sender, payload := range p.pending {
		// Invalid queued shares are dropped; FROST aborts at combine if
		// the signer set is incomplete.
		_ = p.acceptShare(sender, payload)
		delete(p.pending, sender)
	}
}

func (p *frostProtocol) acceptShare(sender int, payload []byte) error {
	ss, err := frost.UnmarshalSignatureShare(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if ss.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, ss.Index, sender)
	}
	if err := frost.VerifyShare(p.pk, p.msg, p.commitmentList(), ss); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	p.shares[ss.Index] = ss
	return nil
}

func (p *frostProtocol) IsReadyForNextRound() bool {
	if p.finalized || p.round != 0 {
		return false
	}
	if p.nonce == nil && p.inGroup {
		return false // round 1 not executed yet
	}
	// Advance to round 2 once all signer commitments are known and we
	// have not signed yet.
	if p.commitmentSetComplete() && p.inGroup {
		if _, signed := p.shares[p.ks.Index]; !signed {
			p.round = 2
			return true
		}
	}
	return false
}

func (p *frostProtocol) IsReadyToFinalize() bool {
	if p.finalized || !p.commitmentSetComplete() {
		return false
	}
	p.drainPending()
	for _, idx := range p.signers {
		if _, ok := p.shares[idx]; !ok {
			return false
		}
	}
	return true
}

func (p *frostProtocol) Finalize() ([]byte, error) {
	if !p.IsReadyToFinalize() {
		return nil, ErrNotReady
	}
	shares := make([]*frost.SignatureShare, 0, len(p.signers))
	for _, idx := range p.signers {
		shares = append(shares, p.shares[idx])
	}
	sig, err := frost.Combine(p.pk, p.msg, p.commitmentList(), shares)
	if err != nil {
		return nil, err
	}
	p.finalized = true
	return sig.Marshal(), nil
}
