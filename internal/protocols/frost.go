package protocols

import (
	"fmt"
	"io"

	"thetacrypt/internal/precompute"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// frostProtocol is the FROST (KG20) signing protocol behind the TRI.
//
// Fresh mode is the paper's two-round protocol: round 1 exchanges nonce
// commitments among the a-priori fixed signer group (the lowest t+1
// indices), round 2 exchanges signature shares.
//
// Pooled mode is FROST's single-round optimization backed by the
// engine's preprocessed nonce pool: the initiator consumes a banked
// slot whose commitments every signer already holds, signs immediately,
// and broadcasts one round-3 message carrying the slot's sequence
// number, the commitment set, and its own signature share. Each signer
// claims the same slot from its local pool (consuming the secret nonce
// BEFORE signing) and answers with a round-3 reply carrying just its
// share — one message round end to end. A cold or exhausted pool
// degrades to the fresh two-round path; it never fails the request.
//
// When pooling is enabled and the initiator is inside the signer
// group, a non-initiating signer defers its first round until a message
// reveals which mode the initiator chose (round 1/2 → fresh, round 3 →
// pooled). An initiator outside the signer group can never open a
// pooled round (it banks no nonces), so in that case — and with pooling
// disabled — everyone starts in fresh mode directly, byte-identical to
// the pre-pool behavior.
//
// FROST is not robust: the protocol waits for the contributions of all
// signers in the group, and an invalid share aborts the instance at
// finalization while identifying the culprit. A signer that lost its
// banked nonce for a claimed slot (e.g. a restart) cannot join that
// pooled round and fails the instance locally.
type frostProtocol struct {
	rand io.Reader
	pk   *frost.PublicKey
	ks   frost.KeyShare
	msg  []byte
	env  frostEnv

	signers []int // the fixed signer group, ascending
	inGroup bool

	mode        int
	round       int
	nonce       *frost.Nonce
	pooledSeq   uint64
	seqKnown    bool
	commitments map[int]*frost.NonceCommitment
	pending     map[int]pendingShare // share payloads awaiting verification
	shares      map[int]*frost.SignatureShare
	finalized   bool
}

// Protocol modes; see the type comment.
const (
	frostModeUndecided = iota
	frostModeFresh
	frostModePooled
)

// pendingShare is a share message parked until the commitment set is
// complete (round 2 fresh shares and round 3 pooled replies).
type pendingShare struct {
	round   int
	payload []byte
}

// frostEnv is the engine environment threaded into a FROST instance.
// The zero value disables pooling, caching, and batching.
type frostEnv struct {
	src       share.CoefficientSource
	batch     *precompute.BatchVerifier
	pool      *precompute.NoncePool
	scheme    string
	keyID     string
	epoch     int
	initiator bool
	// initiatorShare is the committee share index of the node that
	// initiated the instance (0: not a committee member / unknown). It
	// decides whether deferring on the initiator's mode choice is safe:
	// only an initiator inside the fixed signer group can ever send a
	// pooled start.
	initiatorShare int
}

// NewFrost creates a FROST signing instance for the key share ks under
// the group public key pk, with no engine environment (no pool, direct
// verification). If nonce and preComms are non-nil (a precomputed batch
// entry plus the pre-exchanged commitments of the whole signer group),
// round 1 is skipped.
func NewFrost(rand io.Reader, pk *frost.PublicKey, ks frost.KeyShare, msg []byte, nonce *frost.Nonce, preComms []*frost.NonceCommitment) Protocol {
	p := newFrostWith(rand, pk, ks, msg, frostEnv{}).(*frostProtocol)
	if nonce != nil && preComms != nil {
		p.nonce = nonce
		for _, c := range preComms {
			p.commitments[c.Index] = c
		}
		p.round = 2
	}
	return p
}

// newFrostWith creates a FROST signing instance bound to the engine
// environment.
func newFrostWith(rand io.Reader, pk *frost.PublicKey, ks frost.KeyShare, msg []byte, env frostEnv) Protocol {
	signers := make([]int, pk.T+1)
	for i := range signers {
		signers[i] = i + 1
	}
	p := &frostProtocol{
		rand: rand, pk: pk, ks: ks, msg: msg, env: env,
		signers:     signers,
		inGroup:     ks.Index <= pk.T+1,
		mode:        frostModeFresh,
		round:       1,
		commitments: make(map[int]*frost.NonceCommitment, pk.T+1),
		pending:     make(map[int]pendingShare),
		shares:      make(map[int]*frost.SignatureShare, pk.T+1),
	}
	if env.pool.Enabled() {
		switch {
		case env.initiator && p.inGroup:
			p.mode = frostModePooled // attempt; DoRound may degrade to fresh
		case env.initiator:
			// Submitting node outside the signer group: it has no banked
			// nonce to open a pooled round with, so the run is fresh from
			// the start (the signers reach the same conclusion below).
		case env.initiatorShare >= 1 && env.initiatorShare <= pk.T+1:
			p.mode = frostModeUndecided // first message decides
		default:
			// The announcing node is outside the signer group (or not a
			// committee member at all): a pooled start can never come, so
			// deferring would stall the instance until expiry. Signers
			// start the fresh two-round path spontaneously — the pre-pool
			// behavior.
		}
	}
	return p
}

func (p *frostProtocol) commitmentSetComplete() bool {
	for _, idx := range p.signers {
		if _, ok := p.commitments[idx]; !ok {
			return false
		}
	}
	return true
}

func (p *frostProtocol) commitmentList() []*frost.NonceCommitment {
	out := make([]*frost.NonceCommitment, 0, len(p.signers))
	for _, idx := range p.signers {
		out = append(out, p.commitments[idx])
	}
	return out
}

func (p *frostProtocol) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	switch {
	case p.round == 1 && p.mode == frostModeUndecided:
		// Deferred follower: the initiator's first message decides
		// between the fresh and pooled paths.
		return nil, nil
	case p.round == 1 && p.mode == frostModePooled:
		p.round = 0
		if out, ok, err := p.startPooled(); ok || err != nil {
			return out, err
		}
		// Cold or exhausted pool: degrade to the two-round path.
		p.mode = frostModeFresh
		return p.startFresh()
	case p.round == 1:
		p.round = 0
		return p.startFresh()
	case p.round == 2:
		p.round = 0
		if !p.inGroup {
			return nil, nil
		}
		ss, err := frost.SignWith(p.env.src, p.pk, p.ks, p.nonce, p.msg, p.commitmentList())
		if err != nil {
			return nil, fmt.Errorf("frost round 2: %w", err)
		}
		p.shares[ss.Index] = ss
		if p.mode == frostModePooled {
			// Follower's single message: the round-3 reply.
			return &RoundOutput{Round: 3, Transport: TransportP2P,
				Payload: marshalPooled(p.pooledSeq, nil, ss)}, nil
		}
		return &RoundOutput{Round: 2, Transport: TransportP2P, Payload: ss.Marshal()}, nil
	default:
		return nil, nil
	}
}

// startFresh runs the classic round 1: generate a nonce pair and
// broadcast its commitment.
func (p *frostProtocol) startFresh() (*RoundOutput, error) {
	if !p.inGroup {
		return nil, nil
	}
	nonce, comm, err := frost.GenerateNonce(p.rand, p.pk.Group, p.ks.Index)
	if err != nil {
		return nil, fmt.Errorf("frost round 1: %w", err)
	}
	p.nonce = nonce
	p.commitments[comm.Index] = comm
	return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: comm.Marshal()}, nil
}

// startPooled attempts the single-round path: consume a banked slot
// with a complete commitment set, sign, and broadcast seq + set + own
// share in one message. ok is false when the pool has no usable slot.
func (p *frostProtocol) startPooled() (*RoundOutput, bool, error) {
	seq, nonce, comms, ok := p.env.pool.Acquire(p.env.scheme, p.env.keyID, p.env.epoch, p.signers)
	if !ok {
		return nil, false, nil
	}
	p.pooledSeq, p.seqKnown = seq, true
	p.nonce = nonce
	for _, c := range comms {
		p.commitments[c.Index] = c
	}
	ss, err := frost.SignWith(p.env.src, p.pk, p.ks, nonce, p.msg, p.commitmentList())
	if err != nil {
		// The nonce is already consumed (consume-then-sign); failing
		// here aborts the instance rather than ever reusing it.
		return nil, true, fmt.Errorf("frost pooled round: %w", err)
	}
	p.shares[ss.Index] = ss
	return &RoundOutput{Round: 3, Transport: TransportP2P,
		Payload: marshalPooled(seq, p.commitmentList(), ss)}, true, nil
}

// marshalPooled encodes a round-3 message: the pool slot, the
// commitment set (initiator start) or none (follower reply), and the
// sender's signature share.
func marshalPooled(seq uint64, comms []*frost.NonceCommitment, ss *frost.SignatureShare) []byte {
	w := wire.NewWriter().Uint64(seq).Int(len(comms))
	for _, c := range comms {
		w.Bytes(c.Marshal())
	}
	return w.Bytes(ss.Marshal()).Out()
}

func (p *frostProtocol) Update(msg ProtocolMessage) error {
	if p.finalized {
		return nil
	}
	switch msg.Round {
	case 1:
		if p.mode == frostModePooled {
			return fmt.Errorf("%w: fresh commitment from %d in a pooled run", ErrShareRejected, msg.Sender)
		}
		p.mode = frostModeFresh
		comm, err := frost.UnmarshalNonceCommitment(p.pk.Group, msg.Payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrShareRejected, err)
		}
		if comm.Index != msg.Sender {
			return fmt.Errorf("%w: commitment index %d from sender %d", ErrShareRejected, comm.Index, msg.Sender)
		}
		if _, dup := p.commitments[comm.Index]; dup {
			return nil // idempotent redelivery
		}
		p.commitments[comm.Index] = comm
		p.drainPending()
		return nil
	case 2:
		if p.mode == frostModePooled {
			return fmt.Errorf("%w: fresh share from %d in a pooled run", ErrShareRejected, msg.Sender)
		}
		p.mode = frostModeFresh
		if !p.commitmentSetComplete() {
			// Shares can arrive before the last commitment on slow
			// links; verification is deferred until the set is complete.
			p.pending[msg.Sender] = pendingShare{round: 2, payload: msg.Payload}
			return nil
		}
		return p.acceptShare(msg.Sender, msg.Payload)
	case 3:
		return p.updatePooled(msg)
	default:
		return fmt.Errorf("%w: unknown round %d", ErrShareRejected, msg.Round)
	}
}

// updatePooled handles round-3 traffic: the initiator's start (seq +
// commitment set + share) or a follower's reply (seq + share).
func (p *frostProtocol) updatePooled(msg ProtocolMessage) error {
	if p.mode == frostModeFresh && p.nonce != nil {
		return fmt.Errorf("%w: pooled message from %d in a fresh run", ErrShareRejected, msg.Sender)
	}
	r := wire.NewReader(msg.Payload)
	seq := r.Uint64()
	count := r.Int()
	if err := r.Err(); err != nil || count < 0 || count > p.pk.N {
		return fmt.Errorf("%w: malformed pooled message from %d", ErrShareRejected, msg.Sender)
	}
	if count == 0 {
		// Follower reply. Before the initiator's start arrives there is
		// no commitment set to verify against: park it.
		shareRaw := r.Bytes()
		if err := r.Err(); err != nil {
			return fmt.Errorf("%w: truncated pooled reply from %d", ErrShareRejected, msg.Sender)
		}
		p.mode = frostModePooled
		if !p.seqKnown || !p.commitmentSetComplete() {
			p.pending[msg.Sender] = pendingShare{round: 3, payload: msg.Payload}
			return nil
		}
		if seq != p.pooledSeq {
			return fmt.Errorf("%w: pooled reply for slot %d, run uses %d", ErrShareRejected, seq, p.pooledSeq)
		}
		return p.acceptShare(msg.Sender, shareRaw)
	}

	// Initiator start.
	if p.seqKnown && seq != p.pooledSeq {
		return fmt.Errorf("%w: conflicting pooled start for slot %d, run uses %d", ErrShareRejected, seq, p.pooledSeq)
	}
	if count != len(p.signers) {
		return fmt.Errorf("%w: pooled start with %d commitments, want %d", ErrShareRejected, count, len(p.signers))
	}
	comms := make([]*frost.NonceCommitment, count)
	for i := range comms {
		c, err := frost.UnmarshalNonceCommitment(p.pk.Group, r.Bytes())
		if err != nil {
			return fmt.Errorf("%w: bad commitment in pooled start from %d", ErrShareRejected, msg.Sender)
		}
		comms[i] = c
	}
	shareRaw := r.Bytes()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: truncated pooled start from %d", ErrShareRejected, msg.Sender)
	}
	p.mode = frostModePooled
	if p.inGroup && p.nonce == nil {
		// Consume our secret for this slot BEFORE any signing can
		// happen, and cross-check the initiator's set against the
		// commitment we banked ourselves: a forged set would otherwise
		// bind our nonce to commitments we never saw.
		nonce, own, ok := p.env.pool.Claim(p.env.scheme, p.env.keyID, p.env.epoch, seq, p.ks.Index)
		if !ok {
			// Not a rejectable peer fault: without the banked secret this
			// node can never contribute, so the instance fails here
			// rather than stalling until expiry.
			return fmt.Errorf("frost: pool slot %d not banked on this node (restarted or already consumed)", seq)
		}
		var mine *frost.NonceCommitment
		for _, c := range comms {
			if c.Index == p.ks.Index {
				mine = c
				break
			}
		}
		if mine == nil || own == nil || !mine.D.Equal(own.D) || !mine.E.Equal(own.E) {
			return fmt.Errorf("frost: pooled start misrepresents this node's commitment for slot %d", seq)
		}
		p.nonce = nonce
	}
	p.pooledSeq, p.seqKnown = seq, true
	for _, c := range comms {
		if c.Index >= 1 && c.Index <= p.pk.N {
			p.commitments[c.Index] = c
		}
	}
	if !p.commitmentSetComplete() {
		return fmt.Errorf("%w: pooled start misses signer commitments", ErrShareRejected)
	}
	if err := p.acceptShare(msg.Sender, shareRaw); err != nil {
		return err
	}
	p.drainPending()
	return nil
}

func (p *frostProtocol) drainPending() {
	if !p.commitmentSetComplete() {
		return
	}
	for sender, ps := range p.pending {
		// Invalid queued shares are dropped; FROST aborts at combine if
		// the signer set is incomplete.
		switch ps.round {
		case 2:
			_ = p.acceptShare(sender, ps.payload)
		case 3:
			r := wire.NewReader(ps.payload)
			seq := r.Uint64()
			r.Int() // count, zero for replies
			shareRaw := r.Bytes()
			if r.Err() == nil && p.seqKnown && seq == p.pooledSeq {
				_ = p.acceptShare(sender, shareRaw)
			}
		}
		delete(p.pending, sender)
	}
}

func (p *frostProtocol) acceptShare(sender int, payload []byte) error {
	ss, err := frost.UnmarshalSignatureShare(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if ss.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, ss.Index, sender)
	}
	rels, err := frost.ShareRelations(p.env.src, p.pk, p.msg, p.commitmentList(), ss)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if err := p.env.batch.Verify(p.pk.Group, rels); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, frost.ErrInvalidShare)
	}
	p.shares[ss.Index] = ss
	return nil
}

func (p *frostProtocol) IsReadyForNextRound() bool {
	if p.finalized || !p.inGroup {
		return false
	}
	if _, signed := p.shares[p.ks.Index]; signed {
		return false
	}
	switch p.mode {
	case frostModeUndecided:
		return false
	case frostModePooled:
		// Follower path: slot claimed, commitment set known, not signed.
		if p.nonce != nil && p.commitmentSetComplete() {
			p.round = 2
			return true
		}
		return false
	default:
		if p.round == 1 {
			// A deferred follower whose run turned out fresh still owes
			// its round 1.
			return p.nonce == nil
		}
		if p.round != 0 || p.nonce == nil {
			return false
		}
		if p.commitmentSetComplete() {
			p.round = 2
			return true
		}
		return false
	}
}

func (p *frostProtocol) IsReadyToFinalize() bool {
	if p.finalized || !p.commitmentSetComplete() {
		return false
	}
	p.drainPending()
	for _, idx := range p.signers {
		if _, ok := p.shares[idx]; !ok {
			return false
		}
	}
	return true
}

func (p *frostProtocol) Finalize() ([]byte, error) {
	if !p.IsReadyToFinalize() {
		return nil, ErrNotReady
	}
	shares := make([]*frost.SignatureShare, 0, len(p.signers))
	for _, idx := range p.signers {
		shares = append(shares, p.shares[idx])
	}
	sig, err := frost.Combine(p.pk, p.msg, p.commitmentList(), shares)
	if err != nil {
		return nil, err
	}
	p.finalized = true
	return sig.Marshal(), nil
}
