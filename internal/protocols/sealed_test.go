package protocols

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"thetacrypt/internal/dkg"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	sharepkg "thetacrypt/internal/share"
)

// testEnvs generates per-node identity keys and a shared roster for a
// sealed-mode deployment of n nodes.
func testEnvs(t *testing.T, n int) []Env {
	t.Helper()
	roster := make(identity.Roster, n)
	ids := make([]*identity.Key, n)
	for i := 1; i <= n; i++ {
		k, err := identity.Generate(rand.Reader, i)
		if err != nil {
			t.Fatal(err)
		}
		ids[i-1] = k
		roster[i] = k.Public()
	}
	envs := make([]Env, n)
	for i := range envs {
		envs[i] = Env{Identity: ids[i], Roster: roster}
	}
	return envs
}

// TestSealedKeygenHappyPath runs the sealed three-round DKG end to end:
// every node deals boxes, nobody complains, all four dealers qualify,
// and the installed key signs.
func TestSealedKeygenHappyPath(t *testing.T) {
	nodes := dealNodes(t, 1, 4)
	envs := testEnvs(t, 4)
	gen := Request{Scheme: schemes.KG20, KeyID: "sealed-1", Op: OpKeyGen}
	protos := make([]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := NewWith(rand.Reader, nk, gen, envs[i])
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
	}
	results := drive(t, protos)
	for i, v := range results {
		if string(v) != "sealed-1" {
			t.Fatalf("node %d keygen result %q", i+1, v)
		}
	}
	for i, p := range protos {
		qual := p.(*keygenProtocol).part.Qualified()
		if len(qual) != 4 {
			t.Fatalf("node %d qualified %v, want all four dealers", i+1, qual)
		}
	}
	ref, err := keys.Public[*frost.PublicKey](nodes[0], schemes.KG20, "sealed-1")
	if err != nil {
		t.Fatal(err)
	}
	for i, nk := range nodes {
		pk, err := keys.Public[*frost.PublicKey](nk, schemes.KG20, "sealed-1")
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		if !pk.Y.Equal(ref.Y) {
			t.Fatalf("node %d public key differs", i+1)
		}
	}
	sign := Request{Scheme: schemes.KG20, KeyID: "sealed-1", Op: OpSign, Payload: []byte("under a sealed DKG key")}
	sp := make([]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, sign)
		if err != nil {
			t.Fatal(err)
		}
		sp[i] = p
	}
	out := drive(t, sp)
	sig, err := frost.UnmarshalSignature(ref.Group, out[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(ref, sign.Payload, sig); err != nil {
		t.Fatal(err)
	}
}

// TestSealedDealingCarriesNoPlaintextSubShares captures node 1's actual
// dealing (via the fault-injection seam, used here only to observe) and
// asserts the broadcast payload contains none of the sub-share scalars.
func TestSealedDealingCarriesNoPlaintextSubShares(t *testing.T) {
	nodes := dealNodes(t, 1, 4)
	envs := testEnvs(t, 4)
	var captured *dkg.Dealing
	TestFaultDealing = func(node int, d *dkg.Dealing) {
		if node == 1 {
			captured = d
		}
	}
	defer func() { TestFaultDealing = nil }()
	p, err := NewWith(rand.Reader, nodes[0], Request{Scheme: schemes.KG20, KeyID: "capture", Op: OpKeyGen}, envs[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.DoRound()
	if err != nil {
		t.Fatal(err)
	}
	if captured == nil || out == nil {
		t.Fatal("no dealing captured")
	}
	for j, s := range captured.SubShares {
		if raw := s.Value.Bytes(); len(raw) > 8 && bytes.Contains(out.Payload, raw) {
			t.Fatalf("sub-share for party %d appears in the broadcast payload", j+1)
		}
	}
}

// TestSealedKeygenDisqualifiesFaultyDealer corrupts node 2's sub-share
// for node 3 before sealing. Node 3's box opens but fails Feldman
// verification, so it complains; node 2's justification reveals the
// same bad share, fails on every node — including node 2 itself — and
// the dealer is disqualified deterministically while the run completes
// with the remaining three dealers.
func TestSealedKeygenDisqualifiesFaultyDealer(t *testing.T) {
	nodes := dealNodes(t, 1, 4)
	envs := testEnvs(t, 4)
	TestFaultDealing = func(node int, d *dkg.Dealing) {
		if node == 2 {
			d.SubShares[2].Value = big.NewInt(42) // f_2(3) forged
		}
	}
	defer func() { TestFaultDealing = nil }()
	gen := Request{Scheme: schemes.KG20, KeyID: "sealed-faulty", Op: OpKeyGen}
	protos := make([]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := NewWith(rand.Reader, nk, gen, envs[i])
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
	}
	results := drive(t, protos)
	for i, v := range results {
		if string(v) != "sealed-faulty" {
			t.Fatalf("node %d keygen result %q", i+1, v)
		}
	}
	for i, p := range protos {
		qual := p.(*keygenProtocol).part.Qualified()
		if len(qual) != 3 || qual[0] != 1 || qual[1] != 3 || qual[2] != 4 {
			t.Fatalf("node %d qualified %v, want [1 3 4]", i+1, qual)
		}
	}
	ref, err := keys.Public[*frost.PublicKey](nodes[0], schemes.KG20, "sealed-faulty")
	if err != nil {
		t.Fatal(err)
	}
	for i, nk := range nodes {
		pk, err := keys.Public[*frost.PublicKey](nk, schemes.KG20, "sealed-faulty")
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		if !pk.Y.Equal(ref.Y) {
			t.Fatalf("node %d public key differs after disqualification", i+1)
		}
	}
}

// TestSealedReshare runs a sealed same-committee refresh: dealings are
// boxed to the new members, the complaint round is empty, the epoch
// advances, the public key is preserved, and decryption still works.
func TestSealedReshare(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.SG02)
	envs := testEnvs(t, 4)
	pk := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02)
	msg := []byte("sealed reshare keeps the key")
	ct, err := sg02.Encrypt(rand.Reader, pk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Scheme: schemes.SG02, Op: OpReshare,
		Payload: identitySpec(1, 4).Marshal(), Epoch: keys.FirstEpoch}
	protos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := NewWith(rand.Reader, nk, req, envs[i])
		if err != nil {
			t.Fatal(err)
		}
		protos[i+1] = p
	}
	for idx, val := range driveNodes(t, protos) {
		if string(val) != "2" {
			t.Fatalf("node %d reshare result %q, want \"2\"", idx, val)
		}
	}
	for i, nk := range nodes {
		if !keys.MustPublic[*sg02.PublicKey](nk, schemes.SG02).H.Equal(pk.H) {
			t.Fatalf("node %d public key changed across the sealed refresh", i+1)
		}
	}
	dec := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal()}
	decProtos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, dec)
		if err != nil {
			t.Fatal(err)
		}
		decProtos[i+1] = p
	}
	for idx, val := range driveNodes(t, decProtos) {
		if string(val) != string(msg) {
			t.Fatalf("node %d decrypted %q after sealed refresh", idx, val)
		}
	}
}

// TestSealedReshareDisqualifiesFaultyDealer corrupts old member 2's
// reshare sub-share for new member 3: the complaint round drops dealer
// 2 identically on every node, and the refresh completes from the
// remaining dealers with the public key preserved.
func TestSealedReshareDisqualifiesFaultyDealer(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.SG02)
	envs := testEnvs(t, 4)
	pk := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02)
	TestFaultReshareDealing = func(node int, d *sharepkg.ReshareDealing) {
		if node == 2 {
			d.SubShares[2].Value = big.NewInt(42) // sub-share for new member 3 forged
		}
	}
	defer func() { TestFaultReshareDealing = nil }()
	req := Request{Scheme: schemes.SG02, Op: OpReshare,
		Payload: identitySpec(1, 4).Marshal(), Epoch: keys.FirstEpoch}
	protos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := NewWith(rand.Reader, nk, req, envs[i])
		if err != nil {
			t.Fatal(err)
		}
		protos[i+1] = p
	}
	for idx, val := range driveNodes(t, protos) {
		if string(val) != "2" {
			t.Fatalf("node %d reshare result %q, want \"2\"", idx, val)
		}
	}
	for idx, p := range protos {
		rp := p.(*reshareProtocol)
		if _, ok := rp.dealings[2]; ok {
			t.Fatalf("node %d kept faulty dealer 2 qualified", idx)
		}
		if len(rp.dealings) != 3 {
			t.Fatalf("node %d has %d qualified dealers, want 3", idx, len(rp.dealings))
		}
	}
	for i, nk := range nodes {
		k, err := nk.Get(schemes.SG02, "")
		if err != nil {
			t.Fatal(err)
		}
		if k.Epoch != 2 {
			t.Fatalf("node %d at epoch %d after reshare", i+1, k.Epoch)
		}
		if !keys.MustPublic[*sg02.PublicKey](nk, schemes.SG02).H.Equal(pk.H) {
			t.Fatalf("node %d public key changed", i+1)
		}
	}
	// The refreshed shares still decrypt.
	ct, err := sg02.Encrypt(rand.Reader, keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02), []byte("post-complaint"), nil)
	if err != nil {
		t.Fatal(err)
	}
	dec := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal()}
	decProtos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, dec)
		if err != nil {
			t.Fatal(err)
		}
		decProtos[i+1] = p
	}
	for idx, val := range driveNodes(t, decProtos) {
		if string(val) != "post-complaint" {
			t.Fatalf("node %d decrypted %q", idx, val)
		}
	}
}

// TestSealedKeygenNeedsFullRoster pins the configuration contract: a
// sealed DKG cannot start unless every deployment node is rostered.
func TestSealedKeygenNeedsFullRoster(t *testing.T) {
	nodes := dealNodes(t, 1, 4)
	envs := testEnvs(t, 4)
	partial := make(identity.Roster)
	for i := 1; i <= 3; i++ { // node 4 missing
		partial[i] = envs[i-1].Roster[i]
	}
	env := Env{Identity: envs[0].Identity, Roster: partial}
	_, err := NewWith(rand.Reader, nodes[0], Request{Scheme: schemes.KG20, KeyID: "short", Op: OpKeyGen}, env)
	if err == nil {
		t.Fatal("sealed keygen started with a partial roster")
	}
}
