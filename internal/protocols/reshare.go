package protocols

import (
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"

	"thetacrypt/internal/dkg"
	"thetacrypt/internal/group"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	sharepkg "thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// ReshareSpec is the OpReshare payload: the target threshold and
// committee of the new sharing. A spec equal to the key's current
// parameters is a proactive refresh; any other spec is a membership
// change (grow, shrink, or replace nodes).
type ReshareSpec struct {
	// NewT is the new corruption threshold (quorum NewT+1).
	NewT int
	// Members lists the mesh node indices of the new committee in
	// share-index order: Members[j-1] receives share j. It must be
	// strictly ascending, so equivalent specs marshal identically and
	// every node derives the same instance ID.
	Members []int
}

// Marshal encodes the spec canonically.
func (s ReshareSpec) Marshal() []byte {
	w := wire.NewWriter().Int(s.NewT).Int(len(s.Members))
	for _, m := range s.Members {
		w.Int(m)
	}
	return w.Out()
}

// UnmarshalReshareSpec decodes an OpReshare payload.
func UnmarshalReshareSpec(data []byte) (ReshareSpec, error) {
	r := wire.NewReader(data)
	s := ReshareSpec{NewT: r.Int()}
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return ReshareSpec{}, fmt.Errorf("reshare spec: %w", err)
	}
	if cnt < 0 || cnt > 1<<16 {
		return ReshareSpec{}, fmt.Errorf("reshare spec: implausible committee size %d", cnt)
	}
	s.Members = make([]int, cnt)
	for i := range s.Members {
		s.Members[i] = r.Int()
	}
	if err := r.Err(); err != nil {
		return ReshareSpec{}, fmt.Errorf("reshare spec: %w", err)
	}
	return s, nil
}

// Validate checks the spec's structural invariants.
func (s ReshareSpec) Validate() error {
	if err := sharepkg.ValidateParams(s.NewT, len(s.Members)); err != nil {
		return err
	}
	prev := 0
	for _, m := range s.Members {
		if m <= prev {
			return fmt.Errorf("reshare spec: members %v not strictly ascending node indices", s.Members)
		}
		prev = m
	}
	return nil
}

// reshareProtocol runs the internal/share reshare primitives as a TRI
// instance, the runtime half of the key lifecycle: every old committee
// member broadcasts one dealing (a Feldman-committed sub-sharing of
// its OWN share, addressed to the new committee), every node — old
// member, new member, or plain observer keeping the public half —
// verifies every dealing against the old verification keys, and
// finalization installs the next-epoch key. Like the DKG, readiness is
// "heard from every old member" and qualification is decided at
// finalization; because all sub-shares travel in the broadcast and are
// all verified by everyone, the qualified dealer set is identical on
// every honest node. Both CombineReshares and NewVerificationKeys use
// exactly the sorted first oldT+1 qualified dealers, so all nodes
// derive the SAME new polynomial — a necessity, not an optimization:
// different dealer subsets yield different (all valid) sharings.
//
// In sealed mode (identity-keyed deployments) the dealing's sub-shares
// travel as per-recipient ECIES boxes instead, so only the new member a
// sub-share addresses can check it — and the instance reuses the DKG's
// complaint machinery: new members broadcast complaints about
// unopenable or invalid boxes (round 2, everyone speaks), accused
// dealers broadcast the disputed sub-shares (round 3), and dealers with
// unanswered complaints are dropped from the qualified set identically
// on every node before the subset is chosen.
//
// The instance result is the new epoch in decimal.
type reshareProtocol struct {
	store  *keys.Keystore
	key    *keys.Key
	scheme schemes.ID
	g      group.Group
	oldVK  []group.Point
	oldPub group.Point
	rand   io.Reader

	spec       ReshareSpec
	newEpoch   int
	oldMembers []int // node index per old share index
	oldT       int
	myOldIdx   int      // this node's old share index (0: not an old member)
	myOldVal   *big.Int // this node's old share scalar
	myNewIdx   int      // this node's new share index (0: leaving the committee)

	processed map[int]bool                     // old share indices heard from
	dealings  map[int]*sharepkg.ReshareDealing // verified dealings by old share index
	started   bool
	finalized bool

	// Sealed mode.
	sealed    bool
	id        *identity.Key
	roster    identity.Roster
	instID    string
	round     int          // last round this node broadcast
	meshN     int          // deployment size: rounds 2 and 3 hear from every node
	heardComp map[int]bool // complaint-round messages consumed, by mesh node
	heardJust map[int]bool // justification-round messages consumed, by mesh node
	mine      map[int]bool // dealers (old share index) this node complains about
	log       *dkg.ComplaintLog
}

// newReshare builds the reshare instance for an OpReshare request.
// Epoch pinning is strict for reshares — the request's epoch must
// equal the key's current epoch even when zero (a pre-epoch legacy
// key), so two nodes straddling a previous reshare can never deal from
// different sharings inside one instance.
func newReshare(rand io.Reader, store *keys.Keystore, k *keys.Key, req Request, env Env) (Protocol, error) {
	if !keys.SupportsReshare(req.Scheme) {
		return nil, fmt.Errorf("%w: scheme %s is deal-only", ErrReshareUnsupported, req.Scheme)
	}
	spec, err := UnmarshalReshareSpec(req.Payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReshareUnsupported, err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReshareUnsupported, err)
	}
	for _, m := range spec.Members {
		if m > store.N {
			return nil, fmt.Errorf("%w: member %d outside deployment of %d nodes", ErrReshareUnsupported, m, store.N)
		}
	}
	g, pub, vk, err := dlView(k)
	if err != nil {
		return nil, err
	}
	oldT, oldN := k.Params()
	oldMembers := k.Members
	if oldMembers == nil {
		oldMembers = make([]int, oldN)
		for i := range oldMembers {
			oldMembers[i] = i + 1
		}
	}
	p := &reshareProtocol{
		store:      store,
		key:        k,
		scheme:     req.Scheme,
		g:          g,
		oldVK:      vk,
		oldPub:     pub,
		rand:       rand,
		spec:       spec,
		newEpoch:   k.Epoch + 1,
		oldMembers: oldMembers,
		oldT:       oldT,
		myNewIdx:   memberPos(spec.Members, store.Index),
		processed:  make(map[int]bool, oldN),
		dealings:   make(map[int]*sharepkg.ReshareDealing, oldN),
	}
	if idx, val, ok := dlShare(k); ok {
		p.myOldIdx, p.myOldVal = idx, val
	}
	if env.Identity != nil {
		// Boxes go to the NEW committee, so those are the roster
		// entries a sealed reshare needs.
		for _, m := range spec.Members {
			if _, err := env.Roster.Lookup(m); err != nil {
				return nil, fmt.Errorf("%w: sealed reshare dealings need the new committee rostered: %v", ErrReshareUnsupported, err)
			}
		}
		p.sealed = true
		p.id = env.Identity
		p.roster = env.Roster
		p.instID = req.InstanceID()
		p.meshN = store.N
		p.heardComp = make(map[int]bool, store.N)
		p.heardJust = make(map[int]bool, store.N)
		p.mine = make(map[int]bool)
		p.log = dkg.NewComplaintLog()
	}
	return p, nil
}

func (p *reshareProtocol) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	if p.sealed {
		return p.doRoundSealed()
	}
	if p.started {
		return nil, nil // single-round: nothing to do later
	}
	p.started = true
	if p.myOldIdx == 0 {
		// Not an old member: nothing to deal, only receive.
		return nil, nil
	}
	d, err := sharepkg.Reshare(p.rand, p.g, sharepkg.Share{Index: p.myOldIdx, Value: p.myOldVal},
		p.spec.NewT, len(p.spec.Members))
	if err != nil {
		return nil, fmt.Errorf("reshare deal: %w", err)
	}
	// Self-account the local dealing; the broadcast goes to the peers.
	p.processed[p.myOldIdx] = true
	p.dealings[p.myOldIdx] = d
	return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: marshalReshareDealing(d)}, nil
}

func (p *reshareProtocol) doRoundSealed() (*RoundOutput, error) {
	switch p.round {
	case 0:
		p.started = true
		p.round = 1
		if p.myOldIdx == 0 {
			// Not an old member: nothing to deal. We still speak in the
			// complaint and justification rounds like everyone else.
			return nil, nil
		}
		d, err := sharepkg.Reshare(p.rand, p.g, sharepkg.Share{Index: p.myOldIdx, Value: p.myOldVal},
			p.spec.NewT, len(p.spec.Members))
		if err != nil {
			return nil, fmt.Errorf("reshare deal: %w", err)
		}
		if TestFaultReshareDealing != nil {
			TestFaultReshareDealing(p.store.Index, d)
		}
		p.processed[p.myOldIdx] = true
		p.dealings[p.myOldIdx] = d
		boxes, err := sealSubShares(p.rand, p.id, p.roster, "reshare", p.instID, d.SubShares, p.spec.Members)
		if err != nil {
			return nil, fmt.Errorf("reshare seal: %w", err)
		}
		return &RoundOutput{Round: 1, Transport: TransportP2P,
			Payload: marshalSealedDealing(d.Commitment.Points, boxes)}, nil
	case 1:
		// Every old dealing heard: broadcast complaints (only new
		// members can have any; everyone speaks so the round completes).
		p.round = 2
		p.heardComp[p.store.Index] = true
		dealers := make([]int, 0, len(p.mine))
		for d := range p.mine {
			dealers = append(dealers, d)
		}
		sort.Ints(dealers)
		return &RoundOutput{Round: 2, Transport: TransportP2P,
			Payload: marshalComplaints(dealers)}, nil
	case 2:
		// Answer the complaints against us as a dealer, and process our
		// own justifications locally so our ledger matches our peers'.
		p.round = 3
		p.heardJust[p.store.Index] = true
		var js []sharepkg.Share
		if d := p.dealings[p.myOldIdx]; p.myOldIdx > 0 && d != nil {
			for _, j := range p.log.Against(p.myOldIdx) {
				if j >= 1 && j <= len(p.spec.Members) {
					js = append(js, d.SubShares[j-1].Clone())
				}
			}
		}
		for _, s := range js {
			p.receiveJustification(p.myOldIdx, s)
		}
		return &RoundOutput{Round: 3, Transport: TransportP2P,
			Payload: marshalJustifications(js)}, nil
	default:
		return nil, nil
	}
}

func (p *reshareProtocol) Update(msg ProtocolMessage) error {
	if p.sealed {
		return p.updateSealed(msg)
	}
	if p.finalized {
		return nil // late or redelivered dealing
	}
	oldIdx := memberPos(p.oldMembers, msg.Sender)
	if oldIdx == 0 {
		return fmt.Errorf("%w: node %d is not an old committee member", ErrShareRejected, msg.Sender)
	}
	if p.processed[oldIdx] {
		return nil
	}
	newN := len(p.spec.Members)
	com, subs, err := unmarshalDealing(p.g, newN, msg.Payload)
	if err != nil {
		return fmt.Errorf("%w: reshare dealing from %d: %v", ErrShareRejected, msg.Sender, err)
	}
	// As in the DKG, the dealing counts as processed even when it
	// disqualifies its dealer: readiness is "heard from every old
	// member", qualification is decided at finalization.
	p.processed[oldIdx] = true
	d := &sharepkg.ReshareDealing{Dealer: oldIdx, Commitment: com, SubShares: subs}
	// The commitment must share exactly the dealer's old share (its
	// public key equals the old verification key) at the new degree.
	if err := sharepkg.VerifyReshareDealing(p.g, d, p.oldVK[oldIdx-1], p.spec.NewT); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	// Verify ALL sub-shares, not just our own: a dealer invalid for
	// ANY recipient is excluded identically on every honest node,
	// keeping the qualified set — and with it the new polynomial —
	// deterministic.
	for _, s := range subs {
		if !com.VerifyShare(s) {
			return fmt.Errorf("%w: dealer %d sent an invalid reshare sub-share for party %d",
				ErrShareRejected, oldIdx, s.Index)
		}
	}
	p.dealings[oldIdx] = d
	return nil
}

// updateSealed consumes one sealed-mode broadcast: a sealed dealing, a
// complaint list, or a justification list. The split of verdicts
// mirrors the DKG: publicly-checkable failures (garbled broadcasts, a
// commitment that does not share the dealer's old share) drop the
// dealer identically on every node; a box only its recipient can open
// is judged through the complaint round.
func (p *reshareProtocol) updateSealed(msg ProtocolMessage) error {
	if p.finalized {
		return nil
	}
	newN := len(p.spec.Members)
	switch msg.Round {
	case 1:
		oldIdx := memberPos(p.oldMembers, msg.Sender)
		if oldIdx == 0 {
			return fmt.Errorf("%w: node %d is not an old committee member", ErrShareRejected, msg.Sender)
		}
		if p.processed[oldIdx] {
			return nil
		}
		p.processed[oldIdx] = true
		com, boxes, err := unmarshalSealedDealing(p.g, newN, msg.Payload)
		if err != nil {
			// Never stored: the dealer stays unqualified on all nodes.
			return fmt.Errorf("%w: sealed reshare dealing from %d: %v", ErrShareRejected, msg.Sender, err)
		}
		d := &sharepkg.ReshareDealing{Dealer: oldIdx, Commitment: com, SubShares: make([]sharepkg.Share, newN)}
		if err := sharepkg.VerifyReshareDealing(p.g, d, p.oldVK[oldIdx-1], p.spec.NewT); err != nil {
			return fmt.Errorf("%w: %v", ErrShareRejected, err)
		}
		// The commitment is publicly valid: keep the dealing. Our own
		// sub-share comes out of our box — or, failing that, out of the
		// dealer's justification.
		p.dealings[oldIdx] = d
		if p.myNewIdx > 0 {
			pt, err := p.id.Open(boxContext("reshare", p.instID, msg.Sender, p.store.Index), boxes[p.myNewIdx-1])
			if err != nil {
				p.complain(oldIdx)
				return fmt.Errorf("%w: dealer %d box for new member %d does not open", ErrShareRejected, oldIdx, p.myNewIdx)
			}
			s, err := unmarshalSubShare(pt)
			if err != nil || s.Index != p.myNewIdx {
				p.complain(oldIdx)
				return fmt.Errorf("%w: dealer %d sealed a malformed reshare sub-share", ErrShareRejected, oldIdx)
			}
			if !com.VerifyShare(s) {
				p.complain(oldIdx)
				return fmt.Errorf("%w: dealer %d sent an invalid reshare sub-share for party %d", ErrShareRejected, oldIdx, p.myNewIdx)
			}
			d.SubShares[p.myNewIdx-1] = s
		}
		return nil
	case 2:
		if p.heardComp[msg.Sender] {
			return nil
		}
		p.heardComp[msg.Sender] = true
		dealers, err := unmarshalComplaints(msg.Payload, len(p.oldMembers))
		if err != nil {
			return fmt.Errorf("%w: reshare complaint list from %d: %v", ErrShareRejected, msg.Sender, err)
		}
		complainer := memberPos(p.spec.Members, msg.Sender)
		if complainer == 0 {
			// Only new members hold boxes; a complaint from anyone else
			// is noise and carries no weight.
			if len(dealers) > 0 {
				return fmt.Errorf("%w: node %d complained without being a new member", ErrShareRejected, msg.Sender)
			}
			return nil
		}
		for _, dealer := range dealers {
			p.log.Complain(complainer, dealer)
		}
		return nil
	case 3:
		if p.heardJust[msg.Sender] {
			return nil
		}
		p.heardJust[msg.Sender] = true
		js, err := unmarshalJustifications(msg.Payload, newN)
		if err != nil {
			return fmt.Errorf("%w: reshare justification list from %d: %v", ErrShareRejected, msg.Sender, err)
		}
		oldIdx := memberPos(p.oldMembers, msg.Sender)
		if oldIdx == 0 {
			if len(js) > 0 {
				return fmt.Errorf("%w: node %d justified without being a dealer", ErrShareRejected, msg.Sender)
			}
			return nil
		}
		// Invalid justifications are simply not recorded: the complaint
		// stands and Finalize drops the dealer.
		for _, s := range js {
			p.receiveJustification(oldIdx, s)
		}
		return nil
	default:
		return fmt.Errorf("%w: reshare round %d from %d", ErrShareRejected, msg.Round, msg.Sender)
	}
}

// complain records that dealer oldIdx's box for this node (a new
// member) is missing or invalid, for broadcast in the complaint round.
func (p *reshareProtocol) complain(oldIdx int) {
	if p.myNewIdx == 0 {
		return
	}
	p.mine[oldIdx] = true
	p.log.Complain(p.myNewIdx, oldIdx)
}

// receiveJustification verifies a dealer's revealed sub-share against
// its stored commitment; a verifying share discharges the matching
// complaint, and one addressed to this node is adopted in place of the
// box that failed.
func (p *reshareProtocol) receiveJustification(oldIdx int, s sharepkg.Share) {
	d := p.dealings[oldIdx]
	if d == nil || s.Index < 1 || s.Index > len(p.spec.Members) || s.Value == nil {
		return
	}
	if !d.Commitment.VerifyShare(s) {
		return
	}
	p.log.Resolve(oldIdx, s.Index)
	if s.Index == p.myNewIdx {
		d.SubShares[p.myNewIdx-1] = s.Clone()
	}
}

func (p *reshareProtocol) IsReadyForNextRound() bool {
	if !p.sealed || p.finalized {
		return false
	}
	switch p.round {
	case 1:
		return len(p.processed) == len(p.oldMembers)
	case 2:
		return len(p.heardComp) == p.meshN
	default:
		return false
	}
}

func (p *reshareProtocol) IsReadyToFinalize() bool {
	if p.sealed {
		return p.round == 3 && !p.finalized && len(p.heardJust) == p.meshN
	}
	return p.started && !p.finalized && len(p.processed) == len(p.oldMembers)
}

func (p *reshareProtocol) Finalize() ([]byte, error) {
	if !p.IsReadyToFinalize() {
		return nil, ErrNotReady
	}
	if p.sealed {
		// Complaints and justifications were all broadcast: every node
		// drops the same unanswered dealers before choosing the subset.
		for _, d := range p.log.Unresolved() {
			delete(p.dealings, d)
		}
	}
	qual := make([]int, 0, len(p.dealings))
	for d := range p.dealings {
		qual = append(qual, d)
	}
	sort.Ints(qual)
	if len(qual) < p.oldT+1 {
		return nil, fmt.Errorf("reshare: only %d qualified dealers, need %d", len(qual), p.oldT+1)
	}
	// Exactly the first oldT+1 qualified dealers, on every node.
	subset := qual[:p.oldT+1]
	newN := len(p.spec.Members)
	coms := make(map[int]*sharepkg.FeldmanCommitment, len(subset))
	for _, d := range subset {
		coms[d] = p.dealings[d].Commitment
	}
	vk, pub, err := sharepkg.NewVerificationKeys(p.g, p.oldT, newN, coms)
	if err != nil {
		return nil, fmt.Errorf("reshare: %w", err)
	}
	if !pub.Equal(p.oldPub) {
		return nil, fmt.Errorf("reshare: new sharing does not preserve the public key")
	}
	var shr any
	if p.myNewIdx > 0 {
		subs := make(map[int]sharepkg.Share, len(subset))
		for _, d := range subset {
			s := p.dealings[d].SubShares[p.myNewIdx-1]
			if s.Value == nil {
				// Cannot happen for a qualified dealer: our box either
				// opened or the justification we required was adopted.
				return nil, fmt.Errorf("reshare: no sub-share from qualified dealer %d", d)
			}
			subs[d] = s
		}
		x, err := sharepkg.CombineReshares(p.g, p.myNewIdx, p.oldT, subs)
		if err != nil {
			return nil, fmt.Errorf("reshare combine: %w", err)
		}
		if !p.g.BaseMul(x).Equal(vk[p.myNewIdx-1]) {
			return nil, fmt.Errorf("reshare: combined share inconsistent with new verification key")
		}
		shr = dlMakeShare(p.scheme, p.myNewIdx, x)
	}
	newPub, err := rebuildPublic(p.key, vk, p.spec.NewT, newN)
	if err != nil {
		return nil, err
	}
	next := &keys.Key{
		ID:      p.key.ID,
		Scheme:  p.scheme,
		Group:   p.key.Group,
		Public:  newPub,
		Share:   shr,
		Epoch:   p.newEpoch,
		Members: append([]int(nil), p.spec.Members...),
	}
	if err := p.store.Replace(next); err != nil {
		// A concurrent reshare advanced the key first.
		return nil, err
	}
	p.finalized = true
	return []byte(strconv.Itoa(p.newEpoch)), nil
}

// marshalReshareDealing encodes a dealing with the same framing as the
// DKG broadcast (commitment points, then sub-shares); the dealer
// identity is implied by the envelope sender, exactly as in the DKG.
func marshalReshareDealing(d *sharepkg.ReshareDealing) []byte {
	w := wire.NewWriter()
	w.Int(len(d.Commitment.Points))
	for _, pt := range d.Commitment.Points {
		w.Bytes(pt.Marshal())
	}
	w.Int(len(d.SubShares))
	for _, s := range d.SubShares {
		w.Int(s.Index)
		w.BigInt(s.Value)
	}
	return w.Out()
}

// memberPos returns the 1-based position of node in members, 0 when
// absent.
func memberPos(members []int, node int) int {
	for i, m := range members {
		if m == node {
			return i + 1
		}
	}
	return 0
}

// dlView extracts the discrete-log view shared by the reshareable
// schemes: the group, the public point, and the verification keys.
func dlView(k *keys.Key) (group.Group, group.Point, []group.Point, error) {
	switch pk := k.Public.(type) {
	case *sg02.PublicKey:
		return pk.Group, pk.H, pk.VK, nil
	case *frost.PublicKey:
		return pk.Group, pk.Y, pk.VK, nil
	case *cks05.PublicKey:
		return pk.Group, pk.Y, pk.VK, nil
	default:
		return nil, nil, nil, fmt.Errorf("%w: key %s/%s has no DL sharing", ErrReshareUnsupported, k.Scheme, k.ID)
	}
}

// dlShare extracts the share index and scalar of a reshareable key's
// share material.
func dlShare(k *keys.Key) (int, *big.Int, bool) {
	switch s := k.Share.(type) {
	case sg02.KeyShare:
		return s.Index, s.X, true
	case frost.KeyShare:
		return s.Index, s.X, true
	case cks05.KeyShare:
		return s.Index, s.X, true
	default:
		return 0, nil, false
	}
}

// dlMakeShare wraps a reshared scalar in the scheme's key-share type.
func dlMakeShare(scheme schemes.ID, index int, x *big.Int) any {
	switch scheme {
	case schemes.SG02:
		return sg02.KeyShare{Index: index, X: x}
	case schemes.KG20:
		return frost.KeyShare{Index: index, X: x}
	case schemes.CKS05:
		return cks05.KeyShare{Index: index, X: x}
	default:
		return nil
	}
}

// rebuildPublic carries a key's public point into its next epoch with
// the reshared verification keys and parameters.
func rebuildPublic(k *keys.Key, vk []group.Point, newT, newN int) (any, error) {
	switch pk := k.Public.(type) {
	case *sg02.PublicKey:
		return &sg02.PublicKey{Group: pk.Group, H: pk.H, VK: vk, T: newT, N: newN}, nil
	case *frost.PublicKey:
		return &frost.PublicKey{Group: pk.Group, Y: pk.Y, VK: vk, T: newT, N: newN}, nil
	case *cks05.PublicKey:
		return &cks05.PublicKey{Group: pk.Group, Y: pk.Y, VK: vk, T: newT, N: newN}, nil
	default:
		return nil, fmt.Errorf("%w: key %s/%s has no DL sharing", ErrReshareUnsupported, k.Scheme, k.ID)
	}
}

// ProactiveRefreshRequests builds one same-committee OpReshare request
// per reshareable key in the store, pinned to the key's current epoch
// with a deterministic session — every node of a deployment building
// the requests independently converges on the same instance IDs, so a
// scheduled refresh is idempotent across the mesh.
func ProactiveRefreshRequests(store *keys.Keystore) []Request {
	var out []Request
	for _, info := range store.List() {
		if !keys.SupportsReshare(info.Scheme) {
			continue
		}
		members := info.Members
		if members == nil {
			members = make([]int, info.N)
			for i := range members {
				members[i] = i + 1
			}
		}
		spec := ReshareSpec{NewT: info.T, Members: members}
		out = append(out, Request{
			Scheme:  info.Scheme,
			KeyID:   info.ID,
			Op:      OpReshare,
			Payload: spec.Marshal(),
			Session: fmt.Sprintf("refresh-%d", info.Epoch),
			Epoch:   info.Epoch,
		})
	}
	return out
}
