package protocols

import (
	"errors"
	"fmt"
	"io"

	"thetacrypt/internal/dkg"
	"thetacrypt/internal/group"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	sharepkg "thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// keygenProtocol runs Pedersen's JF-DKG (internal/dkg) as a TRI
// protocol instance, making key generation an on-demand operation of
// the protocol API: every node broadcasts one dealing (its Feldman
// commitments plus the sub-shares), verifies the dealings of all n
// participants, and finalizes by installing the combined (t, n) key
// into its keystore under the request's key ID. The instance result is
// the key ID, so clients learn the name of the key they created from
// the ordinary result path.
//
// Unlike the threshold operations, key generation involves all n
// parties, and the happy-path qualified-set agreement assumes every
// dealing reaches every node — which the reliable transport provides.
// A dealing whose sub-share fails verification disqualifies that
// dealer on the receiving node; fewer than t+1 qualified dealers abort
// the instance (dkg.ErrTooFewDealers).
//
// Sub-shares travel inside the broadcast dealing. The reproduction's
// transports are unauthenticated plaintext, so point-to-point delivery
// would expose them identically; a production deployment would wrap
// the mesh in TLS and send each sub-share privately (the full system
// encrypts them per recipient).
type keygenProtocol struct {
	store  *keys.Keystore
	scheme schemes.ID
	keyID  string
	g      group.Group
	part   *dkg.Participant
	rand   io.Reader

	n, self   int
	processed map[int]bool // dealers whose dealing was consumed (or rejected)
	started   bool
	finalized bool
}

// newKeygen builds the DKG instance for an OpKeyGen request. The
// request payload names the DL group (empty = edwards25519).
func newKeygen(rand io.Reader, store *keys.Keystore, req Request) (Protocol, error) {
	if !keys.SupportsDKG(req.Scheme) {
		return nil, fmt.Errorf("%w: scheme %s is deal-only", ErrKeygenUnsupported, req.Scheme)
	}
	g := group.Edwards25519()
	if len(req.Payload) > 0 {
		var err error
		if g, err = group.ByName(string(req.Payload)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrKeygenUnsupported, err)
		}
	}
	if _, err := store.Get(req.Scheme, req.KeyID); err == nil {
		return nil, fmt.Errorf("%w: %s/%s", keys.ErrKeyExists, req.Scheme, req.KeyID)
	}
	part, err := dkg.NewParticipant(g, store.Index, store.T, store.N)
	if err != nil {
		return nil, fmt.Errorf("protocols keygen: %w", err)
	}
	return &keygenProtocol{
		store:     store,
		scheme:    req.Scheme,
		keyID:     req.KeyID,
		g:         g,
		part:      part,
		n:         store.N,
		self:      store.Index,
		rand:      rand,
		processed: make(map[int]bool, store.N),
	}, nil
}

func (p *keygenProtocol) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	if p.started {
		return nil, nil // single-round: nothing to do later
	}
	p.started = true
	dealing, err := p.part.Deal(p.rand)
	if err != nil {
		return nil, fmt.Errorf("keygen deal: %w", err)
	}
	p.processed[p.self] = true // Deal self-accounts commitment and sub-share
	return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: marshalDealing(dealing)}, nil
}

func (p *keygenProtocol) Update(msg ProtocolMessage) error {
	if p.finalized || p.processed[msg.Sender] {
		return nil // late or redelivered dealing
	}
	com, subs, err := unmarshalDealing(p.g, p.n, msg.Payload)
	if err != nil {
		return fmt.Errorf("%w: dealing from %d: %v", ErrShareRejected, msg.Sender, err)
	}
	// The dealing counts as processed even when it disqualifies its
	// dealer: readiness is "heard from everyone", qualification is
	// decided at finalization.
	p.processed[msg.Sender] = true
	// All n sub-shares travel in the broadcast, so every node verifies
	// every one of them — not just its own — before accepting the
	// dealing. A dealer whose dealing is invalid for ANY recipient is
	// excluded identically on all honest nodes, keeping the qualified
	// set (and therefore the installed key) deterministic.
	for _, s := range subs {
		if !com.VerifyShare(s) {
			return fmt.Errorf("%w: dealer %d sent an invalid sub-share for party %d",
				ErrShareRejected, msg.Sender, s.Index)
		}
	}
	if err := p.part.ReceiveCommitment(&dkg.PublicDealing{Dealer: msg.Sender, Commitment: com}); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if err := p.part.ReceiveSubShare(msg.Sender, subs[p.self-1]); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	return nil
}

func (p *keygenProtocol) IsReadyForNextRound() bool { return false }

func (p *keygenProtocol) IsReadyToFinalize() bool {
	return p.started && !p.finalized && len(p.processed) == p.n
}

func (p *keygenProtocol) Finalize() ([]byte, error) {
	if !p.IsReadyToFinalize() {
		return nil, ErrNotReady
	}
	res, err := p.part.Finalize()
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	key := &keys.Key{ID: p.keyID, Scheme: p.scheme, Epoch: keys.FirstEpoch}
	switch p.scheme {
	case schemes.SG02:
		key.Public = &sg02.PublicKey{Group: p.g, H: res.PublicKey, VK: res.VK, T: p.store.T, N: p.n}
		key.Share = sg02.KeyShare{Index: res.Index, X: res.Share}
	case schemes.KG20:
		key.Public = &frost.PublicKey{Group: p.g, Y: res.PublicKey, VK: res.VK, T: p.store.T, N: p.n}
		key.Share = frost.KeyShare{Index: res.Index, X: res.Share}
	case schemes.CKS05:
		key.Public = &cks05.PublicKey{Group: p.g, Y: res.PublicKey, VK: res.VK, T: p.store.T, N: p.n}
		key.Share = cks05.KeyShare{Index: res.Index, X: res.Share}
	default:
		return nil, fmt.Errorf("%w: scheme %s", ErrKeygenUnsupported, p.scheme)
	}
	if err := p.store.Add(key); err != nil {
		// A concurrent generation won the (scheme, id) slot.
		if errors.Is(err, keys.ErrKeyExists) {
			return nil, err
		}
		return nil, fmt.Errorf("keygen install: %w", err)
	}
	p.finalized = true
	return []byte(p.keyID), nil
}

// marshalDealing encodes one dealer's broadcast: the t+1 Feldman
// commitment points and the n sub-shares.
func marshalDealing(d *dkg.Dealing) []byte {
	w := wire.NewWriter()
	w.Int(len(d.Commitment.Points))
	for _, pt := range d.Commitment.Points {
		w.Bytes(pt.Marshal())
	}
	w.Int(len(d.SubShares))
	for _, s := range d.SubShares {
		w.Int(s.Index)
		w.BigInt(s.Value)
	}
	return w.Out()
}

// unmarshalDealing decodes a dealer's broadcast; n bounds the expected
// sub-share count.
func unmarshalDealing(g group.Group, n int, data []byte) (*sharepkg.FeldmanCommitment, []sharepkg.Share, error) {
	r := wire.NewReader(data)
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if cnt < 1 || cnt > n+1 {
		return nil, nil, fmt.Errorf("dealing with %d commitment points", cnt)
	}
	pts := make([]group.Point, cnt)
	for i := 0; i < cnt; i++ {
		raw := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		pt, err := g.UnmarshalPoint(raw)
		if err != nil {
			return nil, nil, err
		}
		pts[i] = pt
	}
	scnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if scnt != n {
		return nil, nil, fmt.Errorf("dealing with %d sub-shares for %d parties", scnt, n)
	}
	subs := make([]sharepkg.Share, scnt)
	for i := 0; i < scnt; i++ {
		subs[i] = sharepkg.Share{Index: r.Int(), Value: r.BigInt()}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	for i, s := range subs {
		if s.Index != i+1 || s.Value == nil {
			return nil, nil, fmt.Errorf("dealing sub-share %d malformed", i)
		}
	}
	return &sharepkg.FeldmanCommitment{Group: g, Points: pts}, subs, nil
}
